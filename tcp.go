package shadow

import (
	"net"

	"shadowedit/internal/client"
	"shadowedit/internal/server"
	"shadowedit/internal/wire"
)

// ServeTCP runs a shadow server over a real TCP (or any net.Listener)
// listener, for the cmd/shadowd daemon. It blocks until the listener closes
// or the server is closed. Server-side connections are write-buffered: the
// session writers batch message bursts and flush on idle, so the client
// side must stay unbuffered but the server side turns a notify→pull→delta
// burst into one segment.
func ServeTCP(srv *Server, ln net.Listener) error {
	return srv.Serve(server.AcceptorFunc(func() (wire.Conn, error) {
		conn, err := ln.Accept()
		if err != nil {
			return nil, err
		}
		return wire.NewBufferedStreamConn(conn, 32<<10), nil
	}))
}

// DialTCP opens a shadow session to a server at addr over real TCP, for the
// cmd/shadow CLI.
func DialTCP(addr string, cfg ClientConfig) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	cl, err := client.Connect(wire.NewStreamConn(conn), cfg)
	if err != nil {
		_ = conn.Close()
		return nil, err
	}
	return cl, nil
}
