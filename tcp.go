package shadow

import (
	"context"
	"fmt"
	"net"
	"sort"
	"time"

	"shadowedit/internal/client"
	"shadowedit/internal/server"
	"shadowedit/internal/wire"
)

// ServeTCP runs a shadow server over a real TCP (or any net.Listener)
// listener, for the cmd/shadowd daemon. It blocks until the listener closes
// or the server is closed. Server-side connections are write-buffered: the
// session writers batch message bursts and flush on idle, so the client
// side must stay unbuffered but the server side turns a notify→pull→delta
// burst into one segment.
func ServeTCP(srv *Server, ln net.Listener) error {
	return srv.Serve(server.AcceptorFunc(func() (wire.Conn, error) {
		conn, err := ln.Accept()
		if err != nil {
			return nil, err
		}
		return wire.NewBufferedStreamConn(conn, 32<<10), nil
	}))
}

// DialTCP opens a shadow session to a server at addr over real TCP, for the
// cmd/shadow CLI. Unless the config supplies its own Dial function, one
// redialing addr is installed, so TCP sessions get the fault-tolerant
// reconnect layer automatically.
func DialTCP(ctx context.Context, addr string, cfg ClientConfig) (*Client, error) {
	if cfg.Dial == nil {
		cfg.Dial = func() (wire.Conn, error) {
			d := net.Dialer{Timeout: 30 * time.Second}
			conn, err := d.Dial("tcp", addr)
			if err != nil {
				return nil, err
			}
			return wire.NewStreamConn(conn), nil
		}
	}
	cl, err := client.Connect(ctx, nil, cfg)
	if err != nil {
		return nil, err
	}
	return cl, nil
}

// dialTCPConn dials one TCP peer and wraps it for the wire layer.
func dialTCPConn(addr string) (wire.Conn, error) {
	d := net.Dialer{Timeout: 30 * time.Second}
	conn, err := d.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return wire.NewStreamConn(conn), nil
}

// sortedMemberNames returns the map's keys sorted, so every instance and
// client derives the identical placement ring from the identical name set.
func sortedMemberNames(members map[string]string) []string {
	names := make([]string, 0, len(members))
	for name := range members {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// JoinClusterTCP joins a server to a shadow-cache cluster over real TCP:
// members maps every instance name (this one included) to its shadowd
// address. All instances must be started with the same member set, and the
// instance name must match what clients pass to DialClusterTCP, or
// placement disagrees. Used by cmd/shadowd's -peers flag.
func JoinClusterTCP(srv *Server, instance string, members map[string]string) {
	srv.JoinCluster(ServerClusterSpec{
		Instance: instance,
		Members:  sortedMemberNames(members),
		Dial: func(member string) (wire.Conn, error) {
			addr, ok := members[member]
			if !ok {
				return nil, fmt.Errorf("shadow: unknown cluster member %q", member)
			}
			return dialTCPConn(addr)
		},
	})
}

// DialClusterTCP opens a routed session to every member of a shadow-cache
// cluster over real TCP (name -> address, same names the servers were
// started with). Each member session gets a redialing Dial, so cluster TCP
// sessions are fault tolerant; a member that stays down is routed around
// via the placement ring's successor list. Used by cmd/shadow's -cluster
// flag.
func DialClusterTCP(ctx context.Context, members map[string]string, cfg ClientConfig) (*ClusterClient, error) {
	cms := make([]client.ClusterMember, 0, len(members))
	for _, name := range sortedMemberNames(members) {
		addr := members[name]
		cms = append(cms, client.ClusterMember{
			Name: name,
			Dial: func() (wire.Conn, error) { return dialTCPConn(addr) },
		})
	}
	return client.ConnectCluster(ctx, cms, cfg)
}
