package shadow

import (
	"context"
	"net"
	"time"

	"shadowedit/internal/client"
	"shadowedit/internal/server"
	"shadowedit/internal/wire"
)

// ServeTCP runs a shadow server over a real TCP (or any net.Listener)
// listener, for the cmd/shadowd daemon. It blocks until the listener closes
// or the server is closed. Server-side connections are write-buffered: the
// session writers batch message bursts and flush on idle, so the client
// side must stay unbuffered but the server side turns a notify→pull→delta
// burst into one segment.
func ServeTCP(srv *Server, ln net.Listener) error {
	return srv.Serve(server.AcceptorFunc(func() (wire.Conn, error) {
		conn, err := ln.Accept()
		if err != nil {
			return nil, err
		}
		return wire.NewBufferedStreamConn(conn, 32<<10), nil
	}))
}

// DialTCP opens a shadow session to a server at addr over real TCP, for the
// cmd/shadow CLI. Unless the config supplies its own Dial function, one
// redialing addr is installed, so TCP sessions get the fault-tolerant
// reconnect layer automatically.
func DialTCP(ctx context.Context, addr string, cfg ClientConfig) (*Client, error) {
	if cfg.Dial == nil {
		cfg.Dial = func() (wire.Conn, error) {
			d := net.Dialer{Timeout: 30 * time.Second}
			conn, err := d.Dial("tcp", addr)
			if err != nil {
				return nil, err
			}
			return wire.NewStreamConn(conn), nil
		}
	}
	cl, err := client.Connect(ctx, nil, cfg)
	if err != nil {
		return nil, err
	}
	return cl, nil
}
