package shadow

import (
	"context"

	"math/rand"
	"sync"

	"bytes"
	"errors"
	"fmt"
	"shadowedit/internal/naming"
	"strings"
	"testing"
	"time"

	"shadowedit/internal/jobs"
	"shadowedit/internal/wire"
	"shadowedit/internal/workload"
)

// newTestCluster builds a LAN cluster with one workstation, failing the test
// on error.
func newTestCluster(t *testing.T, cfg ClusterConfig) (*Cluster, *Workstation) {
	t.Helper()
	if cfg.Link.BitsPerSecond == 0 {
		cfg.Link = LAN
	}
	cluster, err := NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cluster.Close)
	return cluster, cluster.NewWorkstation("ws1")
}

func connect(t *testing.T, ws *Workstation, user string) *Client {
	t.Helper()
	c, err := ws.Connect(context.Background(), user)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = c.Close() })
	return c
}

func write(t *testing.T, ws *Workstation, path string, content []byte) {
	t.Helper()
	if err := ws.WriteFile(path, content); err != nil {
		t.Fatal(err)
	}
}

func TestEndToEndSubmitAndWait(t *testing.T) {
	_, ws := newTestCluster(t, ClusterConfig{})
	c := connect(t, ws, "comer")

	data := []byte("gamma\nalpha\nbeta\n")
	write(t, ws, "/u/comer/data.txt", data)
	write(t, ws, "/u/comer/run.job", []byte("sort data.txt\nwc data.txt\n"))

	job, err := c.Submit(context.Background(), "/u/comer/run.job", []string{"/u/comer/data.txt"}, SubmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	rec, err := c.Wait(context.Background(), job)
	if err != nil {
		t.Fatal(err)
	}
	if rec.State != wire.JobDone || rec.ExitCode != 0 {
		t.Fatalf("job record = %+v", rec)
	}
	// Remote output must equal a local run over the same inputs.
	local := jobs.Execute(jobs.Request{
		Script: []byte("sort data.txt\nwc data.txt\n"),
		Inputs: map[string][]byte{"data.txt": data},
	})
	if !bytes.Equal(rec.Stdout, local.Stdout) {
		t.Fatalf("remote stdout %q != local %q", rec.Stdout, local.Stdout)
	}
	// Results are stored in the default output file.
	out, err := ws.ReadFile("/home/comer/job-" + fmt.Sprint(job) + ".out")
	if err != nil {
		t.Fatalf("output file: %v", err)
	}
	if !bytes.Equal(out, local.Stdout) {
		t.Fatal("stored output file differs from delivered stdout")
	}
}

func TestEditResubmitUsesDeltas(t *testing.T) {
	// The paper's core scenario: second submission of a slightly edited
	// file must move delta bytes, not the whole file.
	_, ws := newTestCluster(t, ClusterConfig{})
	c := connect(t, ws, "comer")

	gen := workload.NewGenerator(1)
	content := gen.File(100 * 1024)
	write(t, ws, "/u/comer/heat.f", content)
	write(t, ws, "/u/comer/run.job", []byte("wc heat.f\n"))

	job1, err := c.Submit(context.Background(), "/u/comer/run.job", []string{"/u/comer/heat.f"}, SubmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Wait(context.Background(), job1); err != nil {
		t.Fatal(err)
	}
	m1 := c.Metrics()
	if m1.FullBytes < int64(len(content)) {
		t.Fatalf("first submission moved %d full bytes, want >= %d", m1.FullBytes, len(content))
	}

	// Edit 1% and resubmit.
	edited := gen.Modify(content, 1, workload.EditMixed)
	write(t, ws, "/u/comer/heat.f", edited)
	job2, err := c.Submit(context.Background(), "/u/comer/run.job", []string{"/u/comer/heat.f"}, SubmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	rec, err := c.Wait(context.Background(), job2)
	if err != nil {
		t.Fatal(err)
	}
	m2 := c.Metrics()
	deltaMoved := m2.DeltaBytes - m1.DeltaBytes
	fullMoved := m2.FullBytes - m1.FullBytes
	if fullMoved != 0 {
		t.Fatalf("resubmission moved %d full bytes, want 0 (delta expected)", fullMoved)
	}
	if deltaMoved <= 0 || deltaMoved > int64(len(content))/5 {
		t.Fatalf("resubmission delta bytes = %d, want small and positive", deltaMoved)
	}
	// And the job must have seen the *edited* content.
	local := jobs.Execute(jobs.Request{
		Script: []byte("wc heat.f\n"),
		Inputs: map[string][]byte{"heat.f": edited},
	})
	if !bytes.Equal(rec.Stdout, local.Stdout) {
		t.Fatalf("remote ran stale content:\nremote %q\nlocal  %q", rec.Stdout, local.Stdout)
	}
}

func TestShadowEditorCycle(t *testing.T) {
	_, ws := newTestCluster(t, ClusterConfig{})
	c := connect(t, ws, "griffioen")
	sed := ws.NewShadowEditor(c)

	// First session creates the file.
	if _, err := sed.Edit("/u/g/model.dat", EditorFunc(func(b []byte) ([]byte, error) {
		return []byte("x=1\ny=2\n"), nil
	})); err != nil {
		t.Fatal(err)
	}
	// Second session appends; postprocessor notifies automatically.
	res2, err := sed.Edit("/u/g/model.dat", EditorFunc(func(b []byte) ([]byte, error) {
		return append(b, []byte("z=3\n")...), nil
	}))
	if err != nil {
		t.Fatal(err)
	}
	if res2.Version != 2 {
		t.Fatalf("second edit produced version %d, want 2", res2.Version)
	}

	write(t, ws, "/u/g/run.job", []byte("cat model.dat\n"))
	job, err := c.Submit(context.Background(), "/u/g/run.job", []string{"/u/g/model.dat"}, SubmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	rec, err := c.Wait(context.Background(), job)
	if err != nil {
		t.Fatal(err)
	}
	if string(rec.Stdout) != "x=1\ny=2\nz=3\n" {
		t.Fatalf("stdout = %q", rec.Stdout)
	}
}

func TestStatusLifecycle(t *testing.T) {
	_, ws := newTestCluster(t, ClusterConfig{})
	c := connect(t, ws, "u")

	write(t, ws, "/f.dat", []byte("hello\n"))
	write(t, ws, "/run.job", []byte("wc f.dat\n"))
	job, err := c.Submit(context.Background(), "/run.job", []string{"/f.dat"}, SubmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Wait(context.Background(), job); err != nil {
		t.Fatal(err)
	}
	st, err := c.Status(context.Background(), job)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != wire.JobDone {
		t.Fatalf("status = %+v, want done", st)
	}
	all, err := c.StatusAll(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 1 || all[0].Job != job {
		t.Fatalf("StatusAll = %+v", all)
	}
	// Unknown job is a clean error.
	if _, err := c.Status(context.Background(), 9999); err == nil {
		t.Fatal("Status(9999) succeeded")
	}
}

func TestSubmitErrors(t *testing.T) {
	_, ws := newTestCluster(t, ClusterConfig{})
	c := connect(t, ws, "u")
	write(t, ws, "/data", []byte("x\n"))
	write(t, ws, "/bad.job", []byte("frobnicate data\n"))
	write(t, ws, "/missing.job", []byte("wc data\nwc other\n"))
	write(t, ws, "/good.job", []byte("wc data\n"))

	if _, err := c.Submit(context.Background(), "/bad.job", []string{"/data"}, SubmitOptions{}); err == nil {
		t.Fatal("submit with unknown command succeeded")
	}
	if _, err := c.Submit(context.Background(), "/missing.job", []string{"/data"}, SubmitOptions{}); err == nil {
		t.Fatal("submit missing a referenced file succeeded")
	}
	if _, err := c.Submit(context.Background(), "/ghost.job", []string{"/data"}, SubmitOptions{}); err == nil {
		t.Fatal("submit with nonexistent script succeeded")
	}
	// The session survives all three failures.
	job, err := c.Submit(context.Background(), "/good.job", []string{"/data"}, SubmitOptions{})
	if err != nil {
		t.Fatalf("good submit after errors: %v", err)
	}
	if _, err := c.Wait(context.Background(), job); err != nil {
		t.Fatal(err)
	}
}

func TestJobWithCommandFailures(t *testing.T) {
	_, ws := newTestCluster(t, ClusterConfig{})
	c := connect(t, ws, "u")
	write(t, ws, "/d", []byte("x\n"))
	// grep of a file that was submitted but pattern fails? Use a job
	// whose command fails at runtime: head with a bad count.
	write(t, ws, "/run.job", []byte("head -x d\nwc d\n"))
	if _, err := c.Submit(context.Background(), "/run.job", []string{"/d"}, SubmitOptions{}); err != nil {
		// head -x parses as flag "-x": runtime error. Either rejection
		// at parse or runtime failure is acceptable; if rejected we
		// are done.
		return
	}
}

func TestJobRuntimeErrorReported(t *testing.T) {
	_, ws := newTestCluster(t, ClusterConfig{})
	c := connect(t, ws, "u")
	write(t, ws, "/d", []byte("b\na\n"))
	// expand with an absurd factor fails at runtime.
	write(t, ws, "/run.job", []byte("expand 999999999 d\nsort d\n"))
	job, err := c.Submit(context.Background(), "/run.job", []string{"/d"}, SubmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	rec, err := c.Wait(context.Background(), job)
	if err != nil {
		t.Fatal(err)
	}
	if rec.ExitCode == 0 {
		t.Fatal("failing command reported exit 0")
	}
	if len(rec.Stderr) == 0 {
		t.Fatal("no stderr for failing command")
	}
	if string(rec.Stdout) != "a\nb\n" {
		t.Fatalf("later commands did not run: stdout = %q", rec.Stdout)
	}
	// Error file stored.
	if _, err := ws.ReadFile(fmt.Sprintf("/home/u/job-%d.err", job)); err != nil {
		t.Fatalf("error file: %v", err)
	}
}

func TestCacheEvictionFallsBackToFull(t *testing.T) {
	cluster, ws := newTestCluster(t, ClusterConfig{})
	c := connect(t, ws, "u")

	gen := workload.NewGenerator(2)
	content := gen.File(50 * 1024)
	write(t, ws, "/big.dat", content)
	write(t, ws, "/run.job", []byte("wc big.dat\n"))

	job1, err := c.Submit(context.Background(), "/run.job", []string{"/big.dat"}, SubmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Wait(context.Background(), job1); err != nil {
		t.Fatal(err)
	}

	// Disaster strikes: the remote machine ran out of disk space and
	// removed the cached copy (§5.1).
	cluster.Server().Cache().Flush()

	edited := gen.Modify(content, 2, workload.EditMixed)
	write(t, ws, "/big.dat", edited)
	before := c.Metrics()
	job2, err := c.Submit(context.Background(), "/run.job", []string{"/big.dat"}, SubmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	rec, err := c.Wait(context.Background(), job2)
	if err != nil {
		t.Fatal(err)
	}
	after := c.Metrics()
	if after.FullBytes-before.FullBytes < int64(len(edited)) {
		t.Fatal("eviction did not trigger a full retransmission")
	}
	local := jobs.Execute(jobs.Request{Script: []byte("wc big.dat\n"), Inputs: map[string][]byte{"big.dat": edited}})
	if !bytes.Equal(rec.Stdout, local.Stdout) {
		t.Fatal("output wrong after eviction fallback")
	}
}

func TestMultipleClientsOneServer(t *testing.T) {
	// "Multiple clients can have connections open to a server
	// simultaneously" (§6.1).
	cluster, _ := newTestCluster(t, ClusterConfig{})
	const users = 4
	type result struct {
		user string
		rec  JobRecord
		err  error
	}
	results := make(chan result, users)
	for i := 0; i < users; i++ {
		ws := cluster.NewWorkstation(fmt.Sprintf("ws-extra-%d", i))
		user := fmt.Sprintf("user%d", i)
		go func(ws *Workstation, user string, i int) {
			var res result
			res.user = user
			defer func() { results <- res }()
			c, err := ws.Connect(context.Background(), user)
			if err != nil {
				res.err = err
				return
			}
			defer c.Close()
			data := []byte(fmt.Sprintf("payload of %s\nrow two\n", user))
			if err := ws.WriteFile("/data.txt", data); err != nil {
				res.err = err
				return
			}
			if err := ws.WriteFile("/run.job", []byte("cat data.txt\n")); err != nil {
				res.err = err
				return
			}
			job, err := c.Submit(context.Background(), "/run.job", []string{"/data.txt"}, SubmitOptions{})
			if err != nil {
				res.err = err
				return
			}
			res.rec, res.err = c.Wait(context.Background(), job)
		}(ws, user, i)
	}
	for i := 0; i < users; i++ {
		res := <-results
		if res.err != nil {
			t.Fatalf("%s: %v", res.user, res.err)
		}
		if !strings.Contains(string(res.rec.Stdout), res.user) {
			t.Fatalf("%s got someone else's output: %q", res.user, res.rec.Stdout)
		}
	}
}

func TestNFSAliasesShareOneCacheEntry(t *testing.T) {
	// Two workstations mount the same exported file system; the same
	// file submitted from both must cache once (§6.5).
	cluster, _ := newTestCluster(t, ClusterConfig{})
	fileServer := cluster.NewWorkstation("filesrv")
	wsA := cluster.NewWorkstation("wsa")
	wsB := cluster.NewWorkstation("wsb")
	wsA.FS().Mount("/proj1", "filesrv", "/usr")
	wsB.FS().Mount("/others", "filesrv", "/usr")

	if err := fileServer.WriteFile("/usr/shared.dat", []byte("shared content\n")); err != nil {
		t.Fatal(err)
	}
	write(t, wsA, "/run.job", []byte("wc shared.dat\n"))
	write(t, wsB, "/run.job", []byte("wc shared.dat\n"))

	ca := connect(t, wsA, "alice")
	cb := connect(t, wsB, "bob")

	ja, err := ca.Submit(context.Background(), "/run.job", []string{"/proj1/shared.dat"}, SubmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ca.Wait(context.Background(), ja); err != nil {
		t.Fatal(err)
	}
	jb, err := cb.Submit(context.Background(), "/run.job", []string{"/others/shared.dat"}, SubmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cb.Wait(context.Background(), jb); err != nil {
		t.Fatal(err)
	}
	// One shadow file, not two: both names resolved to filesrv:/usr/shared.dat.
	if n := cluster.Server().Directory().Len(); n != 1 {
		t.Fatalf("directory has %d entries, want 1 (aliases must share)", n)
	}
}

func TestOutputRoutingToAnotherHost(t *testing.T) {
	// §8.3: "routing the output to different hosts", e.g. one with a
	// high-speed printer.
	cluster, ws := newTestCluster(t, ClusterConfig{})
	printerWS := cluster.NewWorkstation("printer-host")
	printerClient := connect(t, printerWS, "operator")
	c := connect(t, ws, "u")

	write(t, ws, "/d", []byte("route me\n"))
	write(t, ws, "/run.job", []byte("cat d\n"))
	job, err := c.Submit(context.Background(), "/run.job", []string{"/d"}, SubmitOptions{RouteHost: "printer-host"})
	if err != nil {
		t.Fatal(err)
	}
	// The *printer host's* client receives the output.
	rec, err := printerClient.Wait(context.Background(), job)
	if err != nil {
		t.Fatal(err)
	}
	if string(rec.Stdout) != "route me\n" {
		t.Fatalf("routed stdout = %q", rec.Stdout)
	}
	if _, err := printerWS.ReadFile(fmt.Sprintf("/home/operator/routed-job-%d.out", job)); err != nil {
		t.Fatalf("routed output file: %v", err)
	}
}

func TestReverseShadowOutputDelta(t *testing.T) {
	// §8.3 reverse shadow processing: repeated runs of a job with large,
	// slowly changing output ship output deltas.
	_, ws := newTestCluster(t, ClusterConfig{})
	environment := DefaultEnvironment("u")
	environment.WantOutputDelta = true
	c, err := ws.ConnectSession(context.Background(), SessionConfig{Env: environment})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	gen := workload.NewGenerator(3)
	content := gen.File(40 * 1024)
	write(t, ws, "/sim.dat", content)
	write(t, ws, "/run.job", []byte("expand 4 sim.dat\n"))

	job1, err := c.Submit(context.Background(), "/run.job", []string{"/sim.dat"}, SubmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	rec1, err := c.Wait(context.Background(), job1)
	if err != nil {
		t.Fatal(err)
	}
	m1 := c.Metrics()

	// Tiny edit; the expanded output changes proportionally little.
	edited := gen.Modify(content, 1, workload.EditReplace)
	write(t, ws, "/sim.dat", edited)
	job2, err := c.Submit(context.Background(), "/run.job", []string{"/sim.dat"}, SubmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	rec2, err := c.Wait(context.Background(), job2)
	if err != nil {
		t.Fatal(err)
	}
	m2 := c.Metrics()

	outBytes := m2.OutputBytes - m1.OutputBytes
	if outBytes >= int64(len(rec2.Stdout))/2 {
		t.Fatalf("second run moved %d output bytes for %d bytes of output; delta expected",
			outBytes, len(rec2.Stdout))
	}
	// Delivered output must still be exact.
	local := jobs.Execute(jobs.Request{Script: []byte("expand 4 sim.dat\n"), Inputs: map[string][]byte{"sim.dat": edited}})
	if !bytes.Equal(rec2.Stdout, local.Stdout) {
		t.Fatal("reverse-shadowed output reconstruction wrong")
	}
	if bytes.Equal(rec1.Stdout, rec2.Stdout) {
		t.Fatal("test is vacuous: outputs identical")
	}
}

func TestCompressionReducesTraffic(t *testing.T) {
	_, ws := newTestCluster(t, ClusterConfig{})
	environment := DefaultEnvironment("u")
	environment.Compress = true
	c, err := ws.ConnectSession(context.Background(), SessionConfig{Env: environment})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	content := bytes.Repeat([]byte("highly repetitive scientific data row\n"), 2000)
	write(t, ws, "/z.dat", content)
	write(t, ws, "/run.job", []byte("wc z.dat\n"))
	job, err := c.Submit(context.Background(), "/run.job", []string{"/z.dat"}, SubmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	rec, err := c.Wait(context.Background(), job)
	if err != nil {
		t.Fatal(err)
	}
	m := c.Metrics()
	if m.FullBytes >= int64(len(content))/2 {
		t.Fatalf("compressed first transfer moved %d bytes of %d", m.FullBytes, len(content))
	}
	local := jobs.Execute(jobs.Request{Script: []byte("wc z.dat\n"), Inputs: map[string][]byte{"z.dat": content}})
	if !bytes.Equal(rec.Stdout, local.Stdout) {
		t.Fatal("output wrong with compression on")
	}
}

func TestRJEBaselineAlwaysFull(t *testing.T) {
	_, ws := newTestCluster(t, ClusterConfig{})
	rc, err := ws.ConnectRJE("u")
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()

	gen := workload.NewGenerator(4)
	content := gen.File(30 * 1024)
	write(t, ws, "/base.dat", content)
	write(t, ws, "/run.job", []byte("wc base.dat\n"))

	var expected int64
	for round := 1; round <= 3; round++ {
		expected += int64(len(content))
		job, err := rc.Submit("/run.job", []string{"/base.dat"})
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		res, err := rc.Wait(job)
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if res.ExitCode != 0 {
			t.Fatalf("round %d: exit %d, stderr %q", round, res.ExitCode, res.Stderr)
		}
		// Edit slightly for the next round.
		content = gen.Modify(content, 2, workload.EditMixed)
		write(t, ws, "/base.dat", content)
	}
	m := rc.Metrics()
	if m.FullBytes < expected {
		t.Fatalf("baseline moved %d full bytes over 3 rounds, want >= %d (no deltas ever)",
			m.FullBytes, expected)
	}
	if m.DeltaBytes != 0 {
		t.Fatal("baseline moved delta bytes")
	}
}

func TestVirtualTimeShadowBeatsBaseline(t *testing.T) {
	// The headline claim, in miniature: on a slow link, the second
	// submission is far faster with shadow editing.
	runCycle := func(shadowMode bool) time.Duration {
		cluster, err := NewCluster(ClusterConfig{Link: Cypress})
		if err != nil {
			t.Fatal(err)
		}
		defer cluster.Close()
		ws := cluster.NewWorkstation("ws")
		gen := workload.NewGenerator(5)
		content := gen.File(50 * 1024)
		if err := ws.WriteFile("/f.dat", content); err != nil {
			t.Fatal(err)
		}
		if err := ws.WriteFile("/run.job", []byte("checksum f.dat\n")); err != nil {
			t.Fatal(err)
		}

		if shadowMode {
			c, err := ws.Connect(context.Background(), "u")
			if err != nil {
				t.Fatal(err)
			}
			defer c.Close()
			j1, err := c.Submit(context.Background(), "/run.job", []string{"/f.dat"}, SubmitOptions{})
			if err != nil {
				t.Fatal(err)
			}
			if _, err := c.Wait(context.Background(), j1); err != nil {
				t.Fatal(err)
			}
			edited := gen.Modify(content, 1, workload.EditMixed)
			if err := ws.WriteFile("/f.dat", edited); err != nil {
				t.Fatal(err)
			}
			start := ws.Host().Now()
			j2, err := c.Submit(context.Background(), "/run.job", []string{"/f.dat"}, SubmitOptions{})
			if err != nil {
				t.Fatal(err)
			}
			if _, err := c.Wait(context.Background(), j2); err != nil {
				t.Fatal(err)
			}
			return ws.Host().Now() - start
		}
		rc, err := ws.ConnectRJE("u")
		if err != nil {
			t.Fatal(err)
		}
		defer rc.Close()
		j1, err := rc.Submit("/run.job", []string{"/f.dat"})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := rc.Wait(j1); err != nil {
			t.Fatal(err)
		}
		edited := gen.Modify(content, 1, workload.EditMixed)
		if err := ws.WriteFile("/f.dat", edited); err != nil {
			t.Fatal(err)
		}
		start := ws.Host().Now()
		j2, err := rc.Submit("/run.job", []string{"/f.dat"})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := rc.Wait(j2); err != nil {
			t.Fatal(err)
		}
		return ws.Host().Now() - start
	}

	shadowTime := runCycle(true)
	batchTime := runCycle(false)
	speedup := float64(batchTime) / float64(shadowTime)
	t.Logf("50K file, 1%% modified, Cypress: shadow %v vs batch %v (%.1fx)", shadowTime, batchTime, speedup)
	if speedup < 4 {
		t.Fatalf("speedup = %.2f, want >= 4 (paper reports 4-25x)", speedup)
	}
}

func TestClientCloseThenUseFails(t *testing.T) {
	_, ws := newTestCluster(t, ClusterConfig{})
	c := connect(t, ws, "u")
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.StatusAll(context.Background()); err == nil {
		t.Fatal("StatusAll after Close succeeded")
	}
}

func TestServerCloseDisconnectsClients(t *testing.T) {
	cluster, ws := newTestCluster(t, ClusterConfig{})
	c := connect(t, ws, "u")
	cluster.Close()
	if _, err := c.StatusAll(context.Background()); err == nil {
		t.Fatal("StatusAll after server close succeeded")
	}
}

func TestUnchangedFileResubmissionMovesAlmostNothing(t *testing.T) {
	_, ws := newTestCluster(t, ClusterConfig{})
	c := connect(t, ws, "u")
	content := workload.NewGenerator(6).File(64 * 1024)
	write(t, ws, "/f", content)
	write(t, ws, "/run.job", []byte("wc f\n"))

	j1, err := c.Submit(context.Background(), "/run.job", []string{"/f"}, SubmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Wait(context.Background(), j1); err != nil {
		t.Fatal(err)
	}
	m1 := c.Metrics()
	// Submit again without editing: no file bytes should move at all.
	j2, err := c.Submit(context.Background(), "/run.job", []string{"/f"}, SubmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Wait(context.Background(), j2); err != nil {
		t.Fatal(err)
	}
	m2 := c.Metrics()
	if m2.FullBytes != m1.FullBytes || m2.DeltaBytes != m1.DeltaBytes {
		t.Fatalf("unchanged resubmission moved file bytes: %+v -> %+v", m1, m2)
	}
}

func TestMultipleServersOneClient(t *testing.T) {
	// "a client can have simultaneous connections to multiple servers"
	// (§6.1): the same workstation submits to two supercomputers.
	cluster, ws := newTestCluster(t, ClusterConfig{})
	if _, err := cluster.AddServer("cray2", DefaultServerConfig("cray2")); err != nil {
		t.Fatal(err)
	}

	envA := DefaultEnvironment("u")
	cA, err := ws.ConnectSession(context.Background(), SessionConfig{Server: "super", Env: envA})
	if err != nil {
		t.Fatal(err)
	}
	defer cA.Close()
	envB := DefaultEnvironment("u")
	envB.DefaultHost = "cray2"
	cB, err := ws.ConnectSession(context.Background(), SessionConfig{Env: envB}) // environment's default host wins
	if err != nil {
		t.Fatal(err)
	}
	defer cB.Close()
	if cB.ServerName() != "cray2" {
		t.Fatalf("connected to %q, want cray2", cB.ServerName())
	}

	write(t, ws, "/d.dat", []byte("two servers\n"))
	write(t, ws, "/run.job", []byte("cat d.dat\n"))

	jobA, err := cA.Submit(context.Background(), "/run.job", []string{"/d.dat"}, SubmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	jobB, err := cB.Submit(context.Background(), "/run.job", []string{"/d.dat"}, SubmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	recA, err := cA.Wait(context.Background(), jobA)
	if err != nil {
		t.Fatal(err)
	}
	recB, err := cB.Wait(context.Background(), jobB)
	if err != nil {
		t.Fatal(err)
	}
	if string(recA.Stdout) != "two servers\n" || string(recB.Stdout) != "two servers\n" {
		t.Fatalf("outputs: %q / %q", recA.Stdout, recB.Stdout)
	}
	// Each server cached its own shadow copy independently.
	if cluster.Server().Directory().Len() != 1 || cluster.ServerNamed("cray2").Directory().Len() != 1 {
		t.Fatal("each server should have interned the file once")
	}
	// The client's job database tracks jobs per server.
	if len(cA.Jobs().List()) != 1 || len(cB.Jobs().List()) != 1 {
		t.Fatal("job databases confused across servers")
	}
}

func TestAddServerDuplicateRejected(t *testing.T) {
	cluster, _ := newTestCluster(t, ClusterConfig{})
	if _, err := cluster.AddServer("super", DefaultServerConfig("super")); err == nil {
		t.Fatal("duplicate AddServer succeeded")
	}
}

func TestTildeNamingSurvivesTreeMigration(t *testing.T) {
	// §5.3 Tilde naming: a tilde tree migrates between hosts "without
	// altering the user's view". Because the protocol file id derives
	// from the tree's absolute name, the server's shadow cache remains
	// valid across the migration — the post-migration resubmission still
	// travels as a delta.
	cluster, ws := newTestCluster(t, ClusterConfig{})
	// A second workstation holds the tree after migration.
	ws2 := cluster.NewWorkstation("ws2")
	_ = ws2

	cluster.Universe.DefineTree("proj.heat", "ws1", "/export/heat")
	tilde := cluster.Universe.NewTildeSpace()
	tilde.Bind("~heat", "proj.heat")

	environment := DefaultEnvironment("u")
	c, err := ws.ConnectSession(context.Background(), SessionConfig{Env: environment, Tilde: tilde})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	gen := workload.NewGenerator(21)
	content := gen.File(60 * 1024)
	if err := tilde.WriteFile("~heat/sim.dat", content); err != nil {
		t.Fatal(err)
	}
	write(t, ws, "/run.job", []byte("wc sim.dat\n"))

	job1, err := c.Submit(context.Background(), "/run.job", []string{"~heat/sim.dat"}, SubmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Wait(context.Background(), job1); err != nil {
		t.Fatal(err)
	}
	m1 := c.Metrics()

	// Migrate the tree to ws2 (content moves with it), then edit 2%.
	edited := gen.Modify(content, 2, workload.EditMixed)
	if err := ws2.WriteFile("/disk/heat/sim.dat", edited); err != nil {
		t.Fatal(err)
	}
	cluster.Universe.DefineTree("proj.heat", "ws2", "/disk/heat")

	job2, err := c.Submit(context.Background(), "/run.job", []string{"~heat/sim.dat"}, SubmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	rec, err := c.Wait(context.Background(), job2)
	if err != nil {
		t.Fatal(err)
	}
	m2 := c.Metrics()
	if m2.FullBytes != m1.FullBytes {
		t.Fatalf("migration forced a full retransmission (%d -> %d full bytes); the tilde file id should have kept the cache valid",
			m1.FullBytes, m2.FullBytes)
	}
	if m2.DeltaBytes <= m1.DeltaBytes {
		t.Fatal("no delta moved for the post-migration edit")
	}
	local := jobs.Execute(jobs.Request{Script: []byte("wc sim.dat\n"), Inputs: map[string][]byte{"sim.dat": edited}})
	if !bytes.Equal(rec.Stdout, local.Stdout) {
		t.Fatalf("post-migration output wrong: %q vs %q", rec.Stdout, local.Stdout)
	}
}

func TestTildeWithoutSpaceConfigured(t *testing.T) {
	_, ws := newTestCluster(t, ClusterConfig{})
	c := connect(t, ws, "u")
	write(t, ws, "/run.job", []byte("wc x\n"))
	if _, err := c.Submit(context.Background(), "/run.job", []string{"~tree/x"}, SubmitOptions{}); err == nil {
		t.Fatal("tilde path accepted without a tilde space")
	}
}

func TestModelBasedRandomOperations(t *testing.T) {
	// Model-based property test of the whole system: a random stream of
	// edits, submissions, evictions and cache flushes. After every
	// submission the job's remote output must equal a local execution
	// over the files' current contents — regardless of how the cache was
	// sabotaged in between. This exercises delta transfer, full
	// fallback, duplicate pulls and pruning against one oracle.
	cluster, ws := newTestCluster(t, ClusterConfig{})
	c := connect(t, ws, "u")
	rng := rand.New(rand.NewSource(2024))
	gen := workload.NewGenerator(2024)

	files := []string{"/a.dat", "/b.dat", "/c.dat"}
	contents := make(map[string][]byte, len(files))
	for _, f := range files {
		contents[f] = gen.File(4*1024 + rng.Intn(8*1024))
		write(t, ws, f, contents[f])
	}

	for op := 0; op < 120; op++ {
		switch rng.Intn(10) {
		case 0, 1, 2, 3: // edit a file
			f := files[rng.Intn(len(files))]
			percent := []float64{0.5, 2, 10, 50}[rng.Intn(4)]
			kind := []workload.EditKind{workload.EditMixed, workload.EditReplace, workload.EditInsert, workload.EditDelete}[rng.Intn(4)]
			contents[f] = gen.Modify(contents[f], percent, kind)
			write(t, ws, f, contents[f])
		case 4: // evict one cached entry by force
			cache := cluster.Server().Cache()
			st := cache.Stats()
			if st.Entries > 0 {
				// Evict ids 1..N blindly; misses are harmless.
				cache.Evict(naming.ShadowID(rng.Intn(4) + 1))
			}
		case 5: // total cache loss
			if rng.Intn(3) == 0 {
				cluster.Server().Cache().Flush()
			}
		default: // submit over a random non-empty subset and verify
			k := rng.Intn(len(files)) + 1
			perm := rng.Perm(len(files))[:k]
			var paths []string
			var script bytes.Buffer
			inputs := make(map[string][]byte, k)
			for _, idx := range perm {
				f := files[idx]
				paths = append(paths, f)
				base := strings.TrimPrefix(f, "/")
				fmt.Fprintf(&script, "checksum %s\nwc %s\n", base, base)
				inputs[base] = contents[f]
			}
			write(t, ws, "/model.job", script.Bytes())
			job, err := c.Submit(context.Background(), "/model.job", paths, SubmitOptions{})
			if err != nil {
				t.Fatalf("op %d: submit: %v", op, err)
			}
			rec, err := c.Wait(context.Background(), job)
			if err != nil {
				t.Fatalf("op %d: wait: %v", op, err)
			}
			local := jobs.Execute(jobs.Request{Script: script.Bytes(), Inputs: inputs})
			if !bytes.Equal(rec.Stdout, local.Stdout) || rec.ExitCode != local.ExitCode {
				t.Fatalf("op %d: remote/local divergence\nremote: %q (exit %d)\nlocal:  %q (exit %d)",
					op, rec.Stdout, rec.ExitCode, local.Stdout, local.ExitCode)
			}
		}
	}
	// Sanity: the system really did mix transfer modes under this churn.
	m := c.Metrics()
	if m.DeltaSends == 0 || m.FullSends < 2 {
		t.Fatalf("model test did not exercise both paths: %+v", m)
	}
}

func TestConnectionDropMidCycle(t *testing.T) {
	// Failure injection: the server vanishes between submit and wait.
	cluster, ws := newTestCluster(t, ClusterConfig{})
	c := connect(t, ws, "u")
	write(t, ws, "/d", []byte("x\n"))
	write(t, ws, "/slow.job", []byte("stall 300ms\nwc d\n"))
	job, err := c.Submit(context.Background(), "/slow.job", []string{"/d"}, SubmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	cluster.Close() // pulls the plug while the job runs
	if _, err := c.Wait(context.Background(), job); err == nil {
		t.Fatal("Wait succeeded after server death")
	}
	// The client reports the failure on subsequent calls too.
	if _, err := c.StatusAll(context.Background()); err == nil {
		t.Fatal("StatusAll succeeded after server death")
	}
}

func TestReconnectAfterServerRestartRetransmitsFull(t *testing.T) {
	// A server restart empties its cache (it is best-effort storage, not
	// a database). A reconnecting client's resubmission transfers full
	// content again and everything proceeds.
	cluster, ws := newTestCluster(t, ClusterConfig{})
	c := connect(t, ws, "u")
	gen := workload.NewGenerator(31)
	content := gen.File(20 * 1024)
	write(t, ws, "/f", content)
	write(t, ws, "/run.job", []byte("wc f\n"))
	job, err := c.Submit(context.Background(), "/run.job", []string{"/f"}, SubmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Wait(context.Background(), job); err != nil {
		t.Fatal(err)
	}
	_ = c.Close()

	// "Restart": flush all server state that a process restart would lose.
	cluster.Server().Cache().Flush()

	c2 := connect(t, ws, "u")
	edited := gen.Modify(content, 1, workload.EditMixed)
	write(t, ws, "/f", edited)
	job2, err := c2.Submit(context.Background(), "/run.job", []string{"/f"}, SubmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	rec, err := c2.Wait(context.Background(), job2)
	if err != nil {
		t.Fatal(err)
	}
	if rec.ExitCode != 0 {
		t.Fatalf("job failed after restart: %+v", rec)
	}
	if m := c2.Metrics(); m.FullBytes < int64(len(edited)) {
		t.Fatalf("expected full retransmission after restart, moved %d full bytes", m.FullBytes)
	}
}

func TestClientRestartWithSavedStoreKeepsDeltas(t *testing.T) {
	// The paper's client keeps old versions in the shadow environment so
	// they survive between sessions. A restarting client that restores
	// its version store can still answer the server's pulls with deltas
	// — no full retransmission even though the process came back fresh.
	_, ws := newTestCluster(t, ClusterConfig{})
	c := connect(t, ws, "u")

	gen := workload.NewGenerator(51)
	content := gen.File(40 * 1024)
	write(t, ws, "/f", content)
	write(t, ws, "/run.job", []byte("wc f\n"))
	job, err := c.Submit(context.Background(), "/run.job", []string{"/f"}, SubmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Wait(context.Background(), job); err != nil {
		t.Fatal(err)
	}

	// Persist the shadow environment's version store, then "restart".
	var saved bytes.Buffer
	if err := c.Store().Save(&saved); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}

	restored, err := LoadVersionStore(&saved, 1)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := ws.ConnectSession(context.Background(), SessionConfig{Env: DefaultEnvironment("u"), Store: restored})
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()

	edited := gen.Modify(content, 2, workload.EditMixed)
	write(t, ws, "/f", edited)
	job2, err := c2.Submit(context.Background(), "/run.job", []string{"/f"}, SubmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c2.Wait(context.Background(), job2); err != nil {
		t.Fatal(err)
	}
	m := c2.Metrics()
	if m.FullBytes != 0 {
		t.Fatalf("restarted client moved %d full bytes; restored store should have enabled a delta", m.FullBytes)
	}
	if m.DeltaBytes == 0 {
		t.Fatal("no delta moved after restart")
	}
}

func TestOutputHeldAcrossClientReconnect(t *testing.T) {
	// The submitter's connection dies while the job runs; the server
	// holds the finished output and delivers it when the same user at
	// the same workstation reconnects. The job also remains visible to
	// status queries from the new session.
	_, ws := newTestCluster(t, ClusterConfig{})
	c := connect(t, ws, "u")
	write(t, ws, "/d", []byte("persist me\n"))
	write(t, ws, "/slow.job", []byte("stall 250ms\ncat d\n"))
	job, err := c.Submit(context.Background(), "/slow.job", []string{"/d"}, SubmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Drop the connection while the job is still stalling.
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	time.Sleep(400 * time.Millisecond) // job finishes with nobody connected

	c2 := connect(t, ws, "u")
	rec, err := c2.Wait(context.Background(), job)
	if err != nil {
		t.Fatal(err)
	}
	if string(rec.Stdout) != "persist me\n" {
		t.Fatalf("reconnected output = %q", rec.Stdout)
	}
	st, err := c2.Status(context.Background(), job)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != wire.JobDone {
		t.Fatalf("status after reconnect = %+v", st)
	}
	all, err := c2.StatusAll(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 1 || all[0].Job != job {
		t.Fatalf("StatusAll after reconnect = %+v", all)
	}
}

func TestOtherUserCannotClaimHeldOutput(t *testing.T) {
	// Held output is keyed by (user, host): a different user at the same
	// workstation must not receive it.
	_, ws := newTestCluster(t, ClusterConfig{})
	c := connect(t, ws, "alice")
	write(t, ws, "/d", []byte("secret\n"))
	write(t, ws, "/slow.job", []byte("stall 250ms\ncat d\n"))
	job, err := c.Submit(context.Background(), "/slow.job", []string{"/d"}, SubmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	time.Sleep(400 * time.Millisecond)

	mallory := connect(t, ws, "mallory")
	if _, err := mallory.Status(context.Background(), job); err == nil {
		t.Fatal("another user could query the job")
	}
	if rec, ok := mallory.Jobs().Get("super", job); ok && rec.Delivered {
		t.Fatal("another user received the held output")
	}
	// The rightful owner still gets it.
	alice := connect(t, ws, "alice")
	rec, err := alice.Wait(context.Background(), job)
	if err != nil || string(rec.Stdout) != "secret\n" {
		t.Fatalf("owner redelivery failed: %v", err)
	}
}

func TestLineOutageThenRecovery(t *testing.T) {
	// The long-haul line fails mid-session (§2.2's unreliable low-speed
	// lines). Client operations fail cleanly while the line is down; a
	// fresh session after the line heals resumes, receives held output,
	// and the next submission still benefits from the intact cache.
	cluster, ws := newTestCluster(t, ClusterConfig{})
	link, ok := cluster.Network.LinkBetween("ws1", "super")
	if !ok {
		t.Fatal("no link between ws1 and super")
	}
	c := connect(t, ws, "u")
	gen := workload.NewGenerator(61)
	content := gen.File(30 * 1024)
	write(t, ws, "/f", content)
	write(t, ws, "/slow.job", []byte("stall 200ms\nwc f\n"))
	job, err := c.Submit(context.Background(), "/slow.job", []string{"/f"}, SubmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Wait(context.Background(), job); err != nil {
		t.Fatal(err)
	}

	// The line fails while a second job runs.
	job2, err := c.Submit(context.Background(), "/slow.job", []string{"/f"}, SubmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	link.SetDown(true)
	// Client-side operations now fail cleanly (the session cannot reach
	// the server; either the request send fails or the reader dies).
	if _, err := c.Status(context.Background(), job2); err == nil {
		t.Log("status squeaked through on buffered state; acceptable")
	}
	_ = c.Close()

	// Heal and reconnect: the held output of job2 arrives.
	link.SetDown(false)
	c2 := connect(t, ws, "u")
	rec, err := c2.Wait(context.Background(), job2)
	if err != nil {
		t.Fatal(err)
	}
	if rec.State != wire.JobDone {
		t.Fatalf("job2 after outage = %+v", rec)
	}
	// Cache survived; a 1% edit still travels as a delta.
	edited := gen.Modify(content, 1, workload.EditMixed)
	write(t, ws, "/f", edited)
	before := c2.Metrics()
	job3, err := c2.Submit(context.Background(), "/slow.job", []string{"/f"}, SubmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c2.Wait(context.Background(), job3); err != nil {
		t.Fatal(err)
	}
	after := c2.Metrics()
	if after.FullBytes != before.FullBytes {
		t.Fatalf("post-outage resubmission moved full bytes (%d -> %d)", before.FullBytes, after.FullBytes)
	}
}

func TestFullClientStateRestart(t *testing.T) {
	// The complete restart story: version store AND job database saved,
	// client restarted, both restored. The job history is intact and the
	// next submission still travels as a delta.
	_, ws := newTestCluster(t, ClusterConfig{})
	c := connect(t, ws, "u")
	gen := workload.NewGenerator(71)
	content := gen.File(20 * 1024)
	write(t, ws, "/f", content)
	write(t, ws, "/run.job", []byte("wc f\n"))
	job, err := c.Submit(context.Background(), "/run.job", []string{"/f"}, SubmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Wait(context.Background(), job); err != nil {
		t.Fatal(err)
	}

	var storeBuf, jobsBuf bytes.Buffer
	if err := c.Store().Save(&storeBuf); err != nil {
		t.Fatal(err)
	}
	if err := c.Jobs().Save(&jobsBuf); err != nil {
		t.Fatal(err)
	}
	_ = c.Close()

	store, err := LoadVersionStore(&storeBuf, 1)
	if err != nil {
		t.Fatal(err)
	}
	jobdb, err := LoadJobDB(&jobsBuf)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := ws.ConnectSession(context.Background(), SessionConfig{
		Env:   DefaultEnvironment("u"),
		Store: store,
		Jobs:  jobdb,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()

	// The old job's record (with its delivered output) is still there.
	rec, ok := c2.Jobs().Get("super", job)
	if !ok || !rec.Delivered {
		t.Fatalf("restored job record = %+v, %v", rec, ok)
	}
	// And delta capability survived.
	write(t, ws, "/f", gen.Modify(content, 1, workload.EditMixed))
	job2, err := c2.Submit(context.Background(), "/run.job", []string{"/f"}, SubmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c2.Wait(context.Background(), job2); err != nil {
		t.Fatal(err)
	}
	if m := c2.Metrics(); m.FullBytes != 0 || m.DeltaBytes == 0 {
		t.Fatalf("restart lost delta capability: %+v", m)
	}
}

func TestConcurrentSoakWithChaos(t *testing.T) {
	// Three clients run random edit/submit cycles concurrently against
	// one server while a chaos goroutine injects cache evictions,
	// flushes and brief link outages. Every delivered job output must
	// match local execution; transient failures are allowed only while
	// a client's link is down.
	cluster, _ := newTestCluster(t, ClusterConfig{})
	const clients = 3
	stopChaos := make(chan struct{})
	chaosDone := make(chan struct{})
	go func() {
		defer close(chaosDone)
		rng := rand.New(rand.NewSource(99))
		for {
			select {
			case <-stopChaos:
				return
			default:
			}
			switch rng.Intn(3) {
			case 0:
				cluster.Server().Cache().Flush()
			case 1:
				cluster.Server().Cache().Evict(naming.ShadowID(rng.Intn(8) + 1))
			case 2:
				// Nothing this round.
			}
			time.Sleep(5 * time.Millisecond)
		}
	}()

	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for i := 0; i < clients; i++ {
		ws := cluster.NewWorkstation(fmt.Sprintf("soak%d", i))
		wg.Add(1)
		go func(ws *Workstation, i int) {
			defer wg.Done()
			errs <- func() error {
				rng := rand.New(rand.NewSource(int64(1000 + i)))
				gen := workload.NewGenerator(int64(2000 + i))
				c, err := ws.Connect(context.Background(), fmt.Sprintf("soaker%d", i))
				if err != nil {
					return err
				}
				defer c.Close()
				content := gen.File(6 * 1024)
				if err := ws.WriteFile("/d.dat", content); err != nil {
					return err
				}
				script := "checksum d.dat\nwc d.dat\n"
				if err := ws.WriteFile("/run.job", []byte(script)); err != nil {
					return err
				}
				for round := 0; round < 25; round++ {
					job, err := c.Submit(context.Background(), "/run.job", []string{"/d.dat"}, SubmitOptions{})
					if err != nil {
						return fmt.Errorf("round %d: submit: %w", round, err)
					}
					rec, err := c.Wait(context.Background(), job)
					if err != nil {
						return fmt.Errorf("round %d: wait: %w", round, err)
					}
					local := jobs.Execute(jobs.Request{
						Script: []byte(script),
						Inputs: map[string][]byte{"d.dat": content},
					})
					if !bytes.Equal(rec.Stdout, local.Stdout) {
						return fmt.Errorf("round %d: output mismatch", round)
					}
					content = gen.Modify(content, float64(rng.Intn(20))+1, workload.EditMixed)
					if err := ws.WriteFile("/d.dat", content); err != nil {
						return err
					}
				}
				return nil
			}()
		}(ws, i)
	}
	wg.Wait()
	close(stopChaos)
	<-chaosDone
	for i := 0; i < clients; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
}

func TestCapillaryTopology(t *testing.T) {
	// The paper's deployment: workstation -> Cypress capillary ->
	// gateway -> ARPANET backbone -> supercomputer. The whole shadow
	// cycle works over two store-and-forward hops, and the slow last
	// mile dominates the cost.
	cluster, err := NewCluster(ClusterConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	ws := cluster.NewWorkstationCapillary("homews", "purdue-gw", Cypress, ARPANET)
	c, err := ws.Connect(context.Background(), "u")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	gen := workload.NewGenerator(81)
	content := gen.File(24 * 1024) // 20s on Cypress, 3.5s on ARPANET
	write(t, ws, "/f", content)
	write(t, ws, "/run.job", []byte("checksum f\n"))
	start := ws.Host().Now()
	job, err := c.Submit(context.Background(), "/run.job", []string{"/f"}, SubmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	rec, err := c.Wait(context.Background(), job)
	if err != nil {
		t.Fatal(err)
	}
	if rec.ExitCode != 0 {
		t.Fatalf("capillary job failed: %+v", rec)
	}
	elapsed := ws.Host().Now() - start
	// Cypress serialization alone is ~20.5s; the backbone adds ~3.5s of
	// store-and-forward plus latencies.
	if elapsed < 23*time.Second || elapsed > 32*time.Second {
		t.Fatalf("capillary first submission took %v, want ~24-30s", elapsed)
	}

	// Resubmission after a small edit is still delta-cheap end to end.
	write(t, ws, "/f", gen.Modify(content, 1, workload.EditMixed))
	start = ws.Host().Now()
	job2, err := c.Submit(context.Background(), "/run.job", []string{"/f"}, SubmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Wait(context.Background(), job2); err != nil {
		t.Fatal(err)
	}
	delta := ws.Host().Now() - start
	if delta*5 >= elapsed {
		t.Fatalf("capillary resubmission %v not far below first %v", delta, elapsed)
	}
}

func TestAutoReconnectRidesOutBounce(t *testing.T) {
	// A forced mid-session disconnect must be invisible to the caller:
	// the session layer redials, resumes, and the next submission works.
	_, ws := newTestCluster(t, ClusterConfig{})
	c, err := ws.ConnectSession(context.Background(), SessionConfig{
		Env:           DefaultEnvironment("u"),
		AutoReconnect: true,
		Retry:         RetryPolicy{MaxAttempts: 10, BaseDelay: time.Millisecond, MaxDelay: 10 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	gen := workload.NewGenerator(31)
	content := gen.File(8 * 1024)
	write(t, ws, "/run.job", []byte("checksum d.dat\n"))
	write(t, ws, "/d.dat", content)

	runCycle := func() []byte {
		t.Helper()
		job, err := c.Submit(context.Background(), "/run.job", []string{"/d.dat"}, SubmitOptions{})
		if err != nil {
			t.Fatal(err)
		}
		rec, err := c.Wait(context.Background(), job)
		if err != nil {
			t.Fatal(err)
		}
		return rec.Stdout
	}
	reference := func() []byte {
		return jobs.Execute(jobs.Request{
			Script: []byte("checksum d.dat\n"),
			Inputs: map[string][]byte{"d.dat": content},
		}).Stdout
	}

	if got, want := runCycle(), reference(); !bytes.Equal(got, want) {
		t.Fatalf("pre-bounce output = %q, want %q", got, want)
	}

	c.Bounce()

	content = gen.Modify(content, 5, workload.EditReplace)
	write(t, ws, "/d.dat", content)
	if got, want := runCycle(), reference(); !bytes.Equal(got, want) {
		t.Fatalf("post-bounce output = %q, want %q", got, want)
	}
	if n := c.Metrics().Reconnects; n < 1 {
		t.Fatalf("reconnects = %d, want >= 1", n)
	}
}

func TestAutoReconnectUnderLinkFaults(t *testing.T) {
	// Sustained frame loss on the workstation's link: every cycle must
	// still complete with byte-identical output.
	cluster, ws := newTestCluster(t, ClusterConfig{ServerName: "super"})
	link, ok := cluster.Network.LinkBetween("ws1", "super")
	if !ok {
		t.Fatal("no link between ws1 and super")
	}
	link.SetFaults(FaultSpec{Seed: 17, DropRate: 0.08})

	cfg := SessionConfig{
		Env:           DefaultEnvironment("u"),
		AutoReconnect: true,
		Retry:         RetryPolicy{MaxAttempts: 40, BaseDelay: time.Millisecond, MaxDelay: 20 * time.Millisecond},
	}
	var c *Client
	var err error
	for i := 0; ; i++ {
		c, err = ws.ConnectSession(context.Background(), cfg)
		if err == nil {
			break
		}
		if i > 50 {
			t.Fatalf("connect never succeeded: %v", err)
		}
		ws.Host().Process(10 * time.Millisecond)
	}
	defer c.Close()

	gen := workload.NewGenerator(37)
	content := gen.File(4 * 1024)
	write(t, ws, "/run.job", []byte("checksum d.dat\n"))

	for cyc := 0; cyc < 15; cyc++ {
		content = gen.Modify(content, 5, workload.EditReplace)
		write(t, ws, "/d.dat", content)
		job, err := c.Submit(context.Background(), "/run.job", []string{"/d.dat"}, SubmitOptions{})
		if err != nil {
			t.Fatalf("cycle %d submit: %v", cyc, err)
		}
		rec, err := c.Wait(context.Background(), job)
		if err != nil {
			t.Fatalf("cycle %d wait: %v", cyc, err)
		}
		want := jobs.Execute(jobs.Request{
			Script: []byte("checksum d.dat\n"),
			Inputs: map[string][]byte{"d.dat": content},
		}).Stdout
		if !bytes.Equal(rec.Stdout, want) {
			t.Fatalf("cycle %d output = %q, want %q", cyc, rec.Stdout, want)
		}
	}
	dropped, _, _ := link.FaultStats()
	if dropped == 0 {
		t.Skip("fault pattern produced no drops; nothing exercised")
	}
}

func TestDisconnectWithoutAutoReconnectFails(t *testing.T) {
	// The compatibility contract: without AutoReconnect a severed
	// connection ends the session with ErrDisconnected.
	_, ws := newTestCluster(t, ClusterConfig{})
	c, err := ws.Connect(context.Background(), "u")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.Bounce()
	write(t, ws, "/run.job", []byte("echo hi\n"))
	deadline := time.Now().Add(5 * time.Second)
	for {
		_, err = c.Submit(context.Background(), "/run.job", nil, SubmitOptions{})
		if err != nil || time.Now().After(deadline) {
			break
		}
	}
	if !errors.Is(err, ErrDisconnected) {
		t.Fatalf("submit after bounce = %v, want ErrDisconnected", err)
	}
}
