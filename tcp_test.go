package shadow_test

import (
	"context"

	"bytes"
	"net"
	"testing"

	shadow "shadowedit"
)

// TestTCPDeployment drives the real-TCP path the cmd/shadowd and cmd/shadow
// binaries use: a server on a loopback listener, a client over DialTCP, one
// full job cycle.
func TestTCPDeployment(t *testing.T) {
	srv := shadow.NewServer(shadow.DefaultServerConfig("tcp-super"))
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- shadow.ServeTCP(srv, ln) }()
	defer func() {
		_ = ln.Close()
		srv.Close()
		<-serveDone
	}()

	universe := shadow.NewUniverse("tcp-dom")
	universe.AddHost("laptop")
	if err := universe.WriteFile("laptop", "/run.job", []byte("sort d\nwc d\n")); err != nil {
		t.Fatal(err)
	}
	if err := universe.WriteFile("laptop", "/d", []byte("z\na\nm\n")); err != nil {
		t.Fatal(err)
	}

	c, err := shadow.DialTCP(context.Background(), ln.Addr().String(), shadow.ClientConfig{
		User:     "tcpuser",
		Universe: universe,
		Host:     "laptop",
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if c.ServerName() != "tcp-super" {
		t.Fatalf("server name = %q", c.ServerName())
	}

	job, err := c.Submit(context.Background(), "/run.job", []string{"/d"}, shadow.SubmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	rec, err := c.Wait(context.Background(), job)
	if err != nil {
		t.Fatal(err)
	}
	want := "a\nm\nz\n      3       3       6 d\n"
	if string(rec.Stdout) != want {
		t.Fatalf("stdout = %q, want %q", rec.Stdout, want)
	}

	// Deltas work over TCP too: edit a larger file and resubmit.
	big := bytes.Repeat([]byte("stable line of content for the tcp delta check\n"), 200)
	if err := universe.WriteFile("laptop", "/big", big); err != nil {
		t.Fatal(err)
	}
	if err := universe.WriteFile("laptop", "/big.job", []byte("wc big\n")); err != nil {
		t.Fatal(err)
	}
	jobA, err := c.Submit(context.Background(), "/big.job", []string{"/big"}, shadow.SubmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Wait(context.Background(), jobA); err != nil {
		t.Fatal(err)
	}
	if err := universe.WriteFile("laptop", "/big", append(big, []byte("tail\n")...)); err != nil {
		t.Fatal(err)
	}
	jobB, err := c.Submit(context.Background(), "/big.job", []string{"/big"}, shadow.SubmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Wait(context.Background(), jobB); err != nil {
		t.Fatal(err)
	}
	if m := c.Metrics(); m.DeltaSends != 1 {
		t.Fatalf("delta sends over TCP = %d, want 1 (%+v)", m.DeltaSends, m)
	}
}

// TestTCPMultipleClients checks concurrent real-TCP sessions.
func TestTCPMultipleClients(t *testing.T) {
	srv := shadow.NewServer(shadow.DefaultServerConfig("tcp-super"))
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- shadow.ServeTCP(srv, ln) }()
	defer func() {
		_ = ln.Close()
		srv.Close()
		<-serveDone
	}()

	const clients = 3
	errs := make(chan error, clients)
	for i := 0; i < clients; i++ {
		go func(i int) {
			errs <- func() error {
				universe := shadow.NewUniverse("dom")
				host := "h" + string(rune('0'+i))
				universe.AddHost(host)
				if err := universe.WriteFile(host, "/j", []byte("echo ok\n")); err != nil {
					return err
				}
				c, err := shadow.DialTCP(context.Background(), ln.Addr().String(), shadow.ClientConfig{
					User: "u", Universe: universe, Host: host,
				})
				if err != nil {
					return err
				}
				defer c.Close()
				job, err := c.Submit(context.Background(), "/j", nil, shadow.SubmitOptions{})
				if err != nil {
					return err
				}
				_, err = c.Wait(context.Background(), job)
				return err
			}()
		}(i)
	}
	for i := 0; i < clients; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
}
