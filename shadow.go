// Package shadow is a distributed service for supercomputer access by
// shadow editing, reproducing Comer, Griffioen & Yavatkar (Purdue
// CSD-TR-722, 1987; ICDCS 1988).
//
// A shadow client runs at each workstation and a shadow server at each
// supercomputer site. Files submitted with batch jobs are cached ("shadow
// files") at the remote site; after each editing session the client
// notifies the server, which pulls just the *differences* between the
// cached version and the new one — so the repeated edit–submit–fetch cycle
// of scientific computing moves kilobytes instead of re-shipping whole
// files over slow long-haul links.
//
// The package exposes two deployment styles:
//
//   - Cluster: an in-process simulated deployment over a virtual-clock
//     network (internal/netsim) whose links reproduce the paper's 9600 bps
//     Cypress and 56 kbps ARPANET lines. All experiments, examples and
//     integration tests run on it; virtual seconds match what the real
//     lines would take while wall-clock time stays in microseconds.
//
//   - ServeTCP/DialTCP: the same protocol over real TCP connections, for
//     the cmd/shadowd and cmd/shadow binaries.
//
// Quickstart:
//
//	cluster, _ := shadow.NewCluster(shadow.ClusterConfig{Link: shadow.ARPANET})
//	defer cluster.Close()
//	ws := cluster.NewWorkstation("sun3")
//	ctx := context.Background()
//	c, _ := ws.Connect(ctx, "comer")
//	ws.WriteFile("/u/comer/run.job", []byte("wc heat.f\n"))
//	ws.WriteFile("/u/comer/heat.f", heatSource)
//	job, _ := c.Submit(ctx, "/u/comer/run.job", []string{"/u/comer/heat.f"}, shadow.SubmitOptions{})
//	rec, _ := c.Wait(ctx, job)
//	fmt.Printf("%s", rec.Stdout)
//
// Every blocking client call takes a context and honors its deadline or
// cancellation. Sessions opened with SessionConfig.AutoReconnect survive
// connection loss: the client re-dials with backoff, resumes the session
// (the server holds undelivered output for it), and retries interrupted
// requests idempotently. Failures surface through a typed taxonomy —
// ErrDisconnected, ErrRetriesExhausted, ErrDeadlineExceeded, ErrBaseEvicted
// — all matchable with errors.Is.
package shadow

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"

	"shadowedit/internal/cache"
	"shadowedit/internal/client"
	"shadowedit/internal/diff"
	"shadowedit/internal/editor"
	"shadowedit/internal/env"
	"shadowedit/internal/metrics"
	"shadowedit/internal/naming"
	"shadowedit/internal/netsim"
	"shadowedit/internal/obs"
	"shadowedit/internal/rje"
	"shadowedit/internal/server"
	"shadowedit/internal/vcs"
	"shadowedit/internal/wire"
)

// Re-exported core types: these are the package's public API surface; the
// internal packages they alias are implementation layout, not contract.
type (
	// Client is a workstation's connection to one shadow server.
	Client = client.Client
	// ClientConfig parametrizes Connect.
	ClientConfig = client.Config
	// SubmitOptions are the optional submit arguments (§6.2).
	SubmitOptions = client.SubmitOptions
	// Workspace is a tree-level handle on a directory: Sync reconciles it
	// with the server in O(difference) messages (protocol v4), Submit
	// resolves job paths relative to the root. Obtain one with
	// Client.Workspace.
	Workspace = client.Workspace
	// SyncStats summarizes one Workspace.Sync call.
	SyncStats = client.SyncStats
	// SyncMode names the reconciliation strategy a Sync used.
	SyncMode = client.SyncMode
	// NotifyResult reports a commit-and-notify's outcome: file reference,
	// new version, bytes on the wire (0 = unchanged, nothing sent).
	NotifyResult = client.NotifyResult
	// ClusterClient is a workstation's routed connection to every member of
	// a shadow-cache cluster (protocol v5); obtain one with
	// Workstation.ConnectCluster.
	ClusterClient = client.ClusterClient
	// ClusterMember names one shadow-cache cluster instance and how to
	// dial it (for standalone ConnectCluster deployments).
	ClusterMember = client.ClusterMember
	// ClusterJob identifies a job within a shadow-cache cluster.
	ClusterJob = client.ClusterJob
	// ServerClusterSpec parametrizes Server.JoinCluster for standalone
	// deployments; the simulated Cluster's EnablePeering builds it itself.
	ServerClusterSpec = server.ClusterSpec
	// RetryPolicy shapes the client's reconnection and retry backoff.
	RetryPolicy = client.RetryPolicy
	// Server is a shadow server instance.
	Server = server.Server
	// ServerConfig parametrizes a Server.
	ServerConfig = server.Config
	// PullPolicy selects the server's demand-driven retrieval timing.
	PullPolicy = server.PullPolicy
	// Environment is a user's shadow environment (customization record).
	Environment = env.Environment
	// JobRecord is the client-side record of a submitted job.
	JobRecord = env.JobRecord
	// JobState is a job's lifecycle state.
	JobState = wire.JobState
	// FileRef is a globally unique (domain id, file id) file name.
	FileRef = wire.FileRef
	// LinkSpec describes a network link (speed, latency, overhead).
	LinkSpec = netsim.Spec
	// FaultSpec injects seeded, deterministic faults (frame drops, latency
	// spikes, link flaps) into a link, via Cluster.Network.LinkBetween and
	// Link.SetFaults. The zero value injects nothing.
	FaultSpec = netsim.FaultSpec
	// Editor is a conventional editor wrapped by the shadow editor.
	Editor = editor.Editor
	// EditorFunc adapts a function to Editor.
	EditorFunc = editor.Func
	// ShadowEditor wraps an Editor with the shadow postprocessor.
	ShadowEditor = editor.Shadow
	// RJEClient is the conventional full-transfer baseline client.
	RJEClient = rje.Client
	// Universe is a naming domain: hosts, mounts, symlinks and files.
	Universe = naming.Universe
	// TildeSpace is a user's personal tilde-tree bindings (§5.3).
	TildeSpace = naming.TildeSpace
	// VersionStore is the client-side version store (§6.3.2); save it
	// with its Save method and restore with LoadVersionStore.
	VersionStore = vcs.Store
	// JobDB is the client-side job database; save it with its Save
	// method and restore with LoadJobDB.
	JobDB = env.JobDB
	// MetricsSnapshot is a point-in-time view of transfer counters.
	MetricsSnapshot = metrics.Snapshot
	// Algorithm selects a differencing algorithm.
	Algorithm = diff.Algorithm
	// CachePolicy selects the shadow cache's eviction policy.
	CachePolicy = cache.Policy
)

// Link specs matching the paper's evaluation networks.
var (
	// Cypress is the 9600 baud Cypress network of Figure 1.
	Cypress = netsim.Cypress
	// ARPANET is the 56 kbps ARPANET path of Figures 2 and 3.
	ARPANET = netsim.ARPANET
	// LAN is a fast local network for tests.
	LAN = netsim.LAN
)

// Differencing algorithms.
const (
	// HuntMcIlroy is the paper prototype's algorithm (UNIX diff).
	HuntMcIlroy = diff.HuntMcIlroy
	// Myers is the Miller–Myers alternative (§8.3).
	Myers = diff.Myers
	// TichyBlockMove is Tichy's block-move alternative (§8.3).
	TichyBlockMove = diff.TichyBlockMove
)

// Pull policies.
const (
	// PullEager retrieves updates as soon as a notify arrives.
	PullEager = server.PullEager
	// PullLazy retrieves updates only when a job needs them.
	PullLazy = server.PullLazy
	// PullLoadAware defers retrievals while the host is busy.
	PullLoadAware = server.PullLoadAware
)

// Cache policies.
const (
	// CacheLRU evicts least-recently-used entries first.
	CacheLRU = cache.LRU
	// CacheLargestFirst evicts the biggest entries first.
	CacheLargestFirst = cache.LargestFirst
)

// Workspace sync modes.
const (
	// SyncTree is Merkle-tree reconciliation (protocol v4).
	SyncTree = client.SyncTree
	// SyncPerFile is the classic one-notify-per-file fallback.
	SyncPerFile = client.SyncPerFile
)

// The client's typed error taxonomy, re-exported for errors.Is matching.
var (
	// ErrDisconnected reports an operation that failed because the
	// connection to the server was lost (and, without auto-reconnect,
	// cannot come back).
	ErrDisconnected = client.ErrDisconnected
	// ErrRetriesExhausted reports that reconnection or request retries
	// gave up after the configured number of attempts.
	ErrRetriesExhausted = client.ErrRetriesExhausted
	// ErrDeadlineExceeded reports a per-RPC or caller deadline expiry;
	// matching errors also satisfy errors.Is(err, context.DeadlineExceeded).
	ErrDeadlineExceeded = client.ErrDeadlineExceeded
	// ErrBaseEvicted reports a delta whose base version is gone when the
	// full-transfer fallback could not be arranged either.
	ErrBaseEvicted = client.ErrBaseEvicted
)

// DefaultEnvironment returns the automatic per-user customization record.
func DefaultEnvironment(user string) Environment { return env.Default(user) }

// DefaultServerConfig returns a production-shaped server configuration.
func DefaultServerConfig(name string) ServerConfig { return server.Defaults(name) }

// NewServer creates a standalone shadow server (for real deployments; the
// simulated Cluster creates its own).
func NewServer(cfg ServerConfig) *Server { return server.New(cfg) }

// NewUniverse creates a naming domain for standalone clients.
func NewUniverse(domain string) *Universe { return naming.NewUniverse(domain) }

// ParseAlgorithm maps an algorithm name ("hunt-mcilroy", "myers", "tichy"
// and their aliases) to its identifier.
func ParseAlgorithm(name string) (Algorithm, error) { return env.ParseAlgorithm(name) }

// LoadVersionStore restores a version store serialized with
// (*VersionStore).Save, applying the given retention limit from now on.
func LoadVersionStore(r io.Reader, retain int) (*VersionStore, error) {
	return vcs.Load(r, retain)
}

// LoadJobDB restores a job database serialized with (*JobDB).Save.
func LoadJobDB(r io.Reader) (*JobDB, error) { return env.LoadJobDB(r) }

// EdScriptEditor returns an Editor that applies a classic ed script — the
// editing dialect the paper's prototype was built around.
func EdScriptEditor(script string) Editor { return editor.EdScript(script) }

// AppendEditor returns an Editor that appends text.
func AppendEditor(text string) Editor { return editor.Append(text) }

// ClusterConfig parametrizes an in-process simulated deployment.
type ClusterConfig struct {
	// Domain is the naming domain id; defaults to "nfs.sim".
	Domain string
	// ServerName is the supercomputer's host name; defaults to "super".
	ServerName string
	// Link is the spec used for workstation links; defaults to ARPANET.
	Link LinkSpec
	// Server overrides the server configuration; zero means
	// DefaultServerConfig(ServerName) with the cluster clock attached.
	Server *ServerConfig
}

// Cluster is an in-process deployment: one or more shadow servers on
// simulated supercomputer hosts, plus any number of workstations, all
// sharing a naming universe (one NFS domain) and a virtual-clock network.
// "Multiple clients can have connections open to a server simultaneously,
// and a client can have simultaneous connections to multiple servers"
// (§6.1).
type Cluster struct {
	Network  *netsim.Network
	Universe *Universe

	link LinkSpec

	mu           sync.Mutex
	servers      map[string]*serverEntry
	defaultName  string
	workstations []*Workstation
	closed       bool
}

type serverEntry struct {
	srv      *Server
	host     *netsim.Host
	listener *netsim.Listener
}

// serverPort is the shadow server's well-known port in simulations.
const serverPort = 517

// NewCluster builds and starts a simulated deployment with one server.
func NewCluster(cfg ClusterConfig) (*Cluster, error) {
	if cfg.Domain == "" {
		cfg.Domain = "nfs.sim"
	}
	if cfg.ServerName == "" {
		cfg.ServerName = "super"
	}
	if cfg.Link.BitsPerSecond == 0 {
		cfg.Link = ARPANET
	}
	c := &Cluster{
		Network:     netsim.New(),
		Universe:    naming.NewUniverse(cfg.Domain),
		link:        cfg.Link,
		servers:     make(map[string]*serverEntry),
		defaultName: cfg.ServerName,
	}
	var scfg ServerConfig
	if cfg.Server != nil {
		scfg = *cfg.Server
	} else {
		scfg = DefaultServerConfig(cfg.ServerName)
	}
	if _, err := c.AddServer(cfg.ServerName, scfg); err != nil {
		return nil, err
	}
	return c, nil
}

// AddServer starts another shadow server in the cluster (a second
// supercomputer site). Existing workstations are linked to it.
func (c *Cluster) AddServer(name string, scfg ServerConfig) (*Server, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil, ErrClosed
	}
	if _, dup := c.servers[name]; dup {
		return nil, fmt.Errorf("shadow: server %q already exists", name)
	}
	host := c.Network.Host(name)
	if scfg.Name == "" {
		scfg.Name = name
	}
	if scfg.Clock == nil {
		scfg.Clock = host
	}
	srv := server.New(scfg)
	lst, err := host.Listen(serverPort)
	if err != nil {
		return nil, fmt.Errorf("shadow: %w", err)
	}
	go func() {
		_ = srv.Serve(server.AcceptorFunc(func() (wire.Conn, error) {
			return lst.Accept()
		}))
	}()
	c.servers[name] = &serverEntry{srv: srv, host: host, listener: lst}
	for _, ws := range c.workstations {
		c.Network.Connect(ws.host, host, c.link)
	}
	return srv, nil
}

// EnablePeering joins the named servers (all of them, when none are named)
// into one shadow-cache cluster: server hosts are connected pairwise with
// link (zero value: LAN, the realistic topology — instances of one site
// share a machine room even when clients reach them over long-haul lines),
// and each instance joins the placement ring under its host name. Call it
// after the servers exist and before clients connect; clients reach the
// cluster with Workstation.ConnectCluster naming the same members.
func (c *Cluster) EnablePeering(link LinkSpec, names ...string) error {
	if link.BitsPerSecond == 0 {
		link = LAN
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return ErrClosed
	}
	if len(names) == 0 {
		for name := range c.servers {
			names = append(names, name)
		}
		sort.Strings(names)
	}
	entries := make([]*serverEntry, len(names))
	for i, name := range names {
		e, ok := c.servers[name]
		if !ok {
			return fmt.Errorf("shadow: no server %q", name)
		}
		entries[i] = e
	}
	for i := range entries {
		for j := i + 1; j < len(entries); j++ {
			c.Network.Connect(entries[i].host, entries[j].host, link)
		}
	}
	members := append([]string(nil), names...)
	for i, name := range names {
		host := entries[i].host
		entries[i].srv.JoinCluster(server.ClusterSpec{
			Instance: name,
			Members:  members,
			Dial: func(member string) (wire.Conn, error) {
				return host.Dial(member, serverPort)
			},
		})
	}
	return nil
}

// Server returns the cluster's default shadow server.
func (c *Cluster) Server() *Server { return c.ServerNamed(c.defaultName) }

// ServerNamed returns a server by host name (nil if absent).
func (c *Cluster) ServerNamed(name string) *Server {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.servers[name]
	if !ok {
		return nil
	}
	return e.srv
}

// ServerHost returns the default supercomputer's simulated host (its
// virtual clock).
func (c *Cluster) ServerHost() *netsim.Host {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.servers[c.defaultName].host
}

// StopServer shuts one server down — listener and all sessions — for
// failover experiments. The simulated host and its links remain, so dials
// to it fail fast with connection-refused rather than no-route.
func (c *Cluster) StopServer(name string) error {
	c.mu.Lock()
	e, ok := c.servers[name]
	if ok {
		delete(c.servers, name)
	}
	c.mu.Unlock()
	if !ok {
		return fmt.Errorf("shadow: no server %q", name)
	}
	_ = e.listener.Close()
	e.srv.Close()
	return nil
}

// Close shuts the deployment down.
func (c *Cluster) Close() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	entries := make([]*serverEntry, 0, len(c.servers))
	for _, e := range c.servers {
		entries = append(entries, e)
	}
	c.mu.Unlock()
	for _, e := range entries {
		_ = e.listener.Close()
		e.srv.Close()
	}
}

// NewWorkstation adds a workstation linked to every server with the
// cluster's link spec, and registers it in the naming universe.
func (c *Cluster) NewWorkstation(name string) *Workstation {
	return c.NewWorkstationLink(name, c.link)
}

// NewWorkstationCapillary adds a workstation that reaches the cluster's
// servers through a gateway: a (typically slow) last-mile link to the
// gateway and a backbone link from the gateway to every server. This is the
// paper's deployment picture — "Cypress ... is suitable for setting up
// capillary connections from user sites to the NSFnet backbone" — and every
// message pays store-and-forward costs on both hops.
func (c *Cluster) NewWorkstationCapillary(name, gateway string, lastMile, backbone LinkSpec) *Workstation {
	host := c.Network.Host(name)
	gw := c.Network.Host(gateway)
	c.Universe.AddHost(name)
	c.Network.Connect(host, gw, lastMile)
	ws := &Workstation{cluster: c, name: name, host: host}
	c.mu.Lock()
	for _, e := range c.servers {
		c.Network.Connect(gw, e.host, backbone)
	}
	c.workstations = append(c.workstations, ws)
	c.mu.Unlock()
	return ws
}

// NewWorkstationLink adds a workstation with a custom link spec.
func (c *Cluster) NewWorkstationLink(name string, link LinkSpec) *Workstation {
	host := c.Network.Host(name)
	c.Universe.AddHost(name)
	ws := &Workstation{cluster: c, name: name, host: host}
	c.mu.Lock()
	for _, e := range c.servers {
		c.Network.Connect(host, e.host, link)
	}
	c.workstations = append(c.workstations, ws)
	c.mu.Unlock()
	return ws
}

// Workstation is one user machine in a cluster.
type Workstation struct {
	cluster *Cluster
	name    string
	host    *netsim.Host
}

// Name returns the workstation's host name.
func (w *Workstation) Name() string { return w.name }

// Host returns the simulated host (its virtual clock).
func (w *Workstation) Host() *netsim.Host { return w.host }

// WriteFile stores a local file (absolute path).
func (w *Workstation) WriteFile(path string, content []byte) error {
	return w.cluster.Universe.WriteFile(w.name, path, content)
}

// ReadFile reads a local file (absolute path).
func (w *Workstation) ReadFile(path string) ([]byte, error) {
	return w.cluster.Universe.ReadFile(w.name, path)
}

// FS returns the workstation's file-system model for mounts and symlinks.
func (w *Workstation) FS() *naming.FS {
	fs, _ := w.cluster.Universe.Host(w.name)
	return fs
}

// Connect opens a shadow session to the default server with the default
// environment for user. It is shorthand for
// ConnectSession(ctx, SessionConfig{Env: DefaultEnvironment(user)});
// every knob beyond the user name lives on SessionConfig.
func (w *Workstation) Connect(ctx context.Context, user string) (*Client, error) {
	return w.ConnectSession(ctx, SessionConfig{Env: DefaultEnvironment(user)})
}

// ConnectTo opens a shadow session to the named server with a customized
// environment.
//
// Deprecated: ConnectTo predates SessionConfig and adds nothing over it.
// Use ConnectSession(ctx, SessionConfig{Server: server, Env: environment}).
func (w *Workstation) ConnectTo(ctx context.Context, server string, environment Environment) (*Client, error) {
	return w.ConnectSession(ctx, SessionConfig{Server: server, Env: environment})
}

// ConnectEnv opens a shadow session to the default server (or the
// environment's DefaultHost) with a customized environment.
//
// Deprecated: ConnectEnv predates SessionConfig and adds nothing over it.
// Use ConnectSession(ctx, SessionConfig{Env: environment}).
func (w *Workstation) ConnectEnv(ctx context.Context, environment Environment) (*Client, error) {
	return w.ConnectSession(ctx, SessionConfig{Env: environment})
}

// SessionConfig customizes a workstation session.
type SessionConfig struct {
	// Server names the supercomputer; empty falls back to the
	// environment's DefaultHost, then the cluster default.
	Server string
	// Env is the user's shadow environment.
	Env Environment
	// Tilde optionally supplies the user's tilde-tree bindings.
	Tilde *TildeSpace
	// Store optionally seeds the version store (restored with
	// LoadVersionStore after a restart) so retained versions survive
	// client restarts.
	Store *VersionStore
	// Jobs optionally seeds the job database (restored with LoadJobDB)
	// so job records survive client restarts.
	Jobs *JobDB
	// PerFileSync forces Workspace.Sync onto the classic one-notify-per-
	// file path even when the server speaks protocol v4 (comparison and
	// diagnosis; tree reconciliation is otherwise used automatically).
	PerFileSync bool
	// Obs, when set, gives the client an observer: cycle latency lands in
	// its histogram and, when its tracer is set, the client mints the
	// cycle traces that sessions — and, in a cluster, peer fetches on
	// other members — attach their spans to.
	Obs *obs.Observer

	// AutoReconnect makes the session fault tolerant: a lost connection
	// is re-dialed with backoff (advancing the workstation's virtual
	// clock, so backoff outlasts simulated outages), the session resumed,
	// and interrupted requests retried idempotently.
	AutoReconnect bool
	// Retry shapes the reconnect/retry backoff when AutoReconnect is on;
	// zero-value fields take the client's documented defaults.
	Retry RetryPolicy
	// RPCTimeout bounds each attempt of a synchronous round trip when
	// AutoReconnect is on; zero disables per-attempt deadlines.
	RPCTimeout time.Duration
}

// ConnectSession opens a fully customized shadow session.
func (w *Workstation) ConnectSession(ctx context.Context, cfg SessionConfig) (*Client, error) {
	serverName := cfg.Server
	if serverName == "" {
		serverName = cfg.Env.DefaultHost
	}
	if serverName == "" {
		serverName = w.cluster.defaultName
	}
	conn, err := w.host.Dial(serverName, serverPort)
	if err != nil {
		return nil, fmt.Errorf("shadow: dial: %w", err)
	}
	ccfg := client.Config{
		User:        cfg.Env.User,
		Universe:    w.cluster.Universe,
		Host:        w.name,
		Env:         cfg.Env,
		Tilde:       cfg.Tilde,
		Store:       cfg.Store,
		Jobs:        cfg.Jobs,
		Clock:       w.host,
		PerFileSync: cfg.PerFileSync,
		Obs:         cfg.Obs,
	}
	if cfg.AutoReconnect {
		ccfg.Dial = func() (wire.Conn, error) {
			return w.host.Dial(serverName, serverPort)
		}
		// Backoff advances the workstation's virtual clock: in simulated
		// time the client genuinely waits, which is what lets it outlast
		// a link-flap window.
		ccfg.Sleep = func(ctx context.Context, d time.Duration) error {
			w.host.Process(d)
			return ctx.Err()
		}
		ccfg.Retry = cfg.Retry
		ccfg.RPCTimeout = cfg.RPCTimeout
	}
	cl, err := client.Connect(ctx, conn, ccfg)
	if err != nil {
		_ = conn.Close()
		return nil, err
	}
	return cl, nil
}

// ConnectCluster opens a routed session to a shadow-cache cluster: one
// connection per named member, all sharing a version store and job
// database, with each file's traffic routed to its placement-ring owner.
// The member names must match the server names passed to EnablePeering or
// placement disagrees. Cluster sessions always auto-reconnect (backoff
// advances the workstation's virtual clock); cfg.Retry and cfg.RPCTimeout
// shape the policy, and a member that stays unreachable past its retry
// budget is routed around via the ring's successor list.
func (w *Workstation) ConnectCluster(ctx context.Context, cfg SessionConfig, members ...string) (*ClusterClient, error) {
	if len(members) == 0 {
		return nil, errors.New("shadow: ConnectCluster needs at least one member name")
	}
	ccfg := client.Config{
		User:        cfg.Env.User,
		Universe:    w.cluster.Universe,
		Host:        w.name,
		Env:         cfg.Env,
		Tilde:       cfg.Tilde,
		Store:       cfg.Store,
		Jobs:        cfg.Jobs,
		Clock:       w.host,
		PerFileSync: cfg.PerFileSync,
		Obs:         cfg.Obs,
		Retry:       cfg.Retry,
		RPCTimeout:  cfg.RPCTimeout,
		Sleep: func(ctx context.Context, d time.Duration) error {
			w.host.Process(d)
			return ctx.Err()
		},
	}
	cms := make([]client.ClusterMember, len(members))
	for i, name := range members {
		name := name
		cms[i] = client.ClusterMember{
			Name: name,
			Dial: func() (wire.Conn, error) { return w.host.Dial(name, serverPort) },
		}
	}
	return client.ConnectCluster(ctx, cms, ccfg)
}

// ConnectRJE opens a conventional (full-transfer) baseline session to the
// default server.
func (w *Workstation) ConnectRJE(user string) (*RJEClient, error) {
	conn, err := w.host.Dial(w.cluster.defaultName, serverPort)
	if err != nil {
		return nil, fmt.Errorf("shadow: dial: %w", err)
	}
	cl, err := rje.Connect(conn, user, w.cluster.Universe, w.name)
	if err != nil {
		_ = conn.Close()
		return nil, err
	}
	return cl, nil
}

// NewShadowEditor returns the workstation's shadow editor bound to a client.
func (w *Workstation) NewShadowEditor(c *Client) *ShadowEditor {
	return editor.NewShadow(w.cluster.Universe, w.name, c)
}

// ErrClosed reports use of a closed cluster.
var ErrClosed = errors.New("shadow: cluster closed")
