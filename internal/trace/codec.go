package trace

import (
	"encoding/binary"
	"errors"
	"fmt"
	"time"
)

// ErrBadRecord reports an undecodable span or record payload.
var ErrBadRecord = errors.New("trace: bad record")

// Binary span/record codec, mirroring the wire package's uvarint idiom.
// The admin endpoint serves completed traces in this form
// (/tracez?id=N&format=bin) so external collectors can archive them
// compactly; the format is versionless — records are self-contained and
// never streamed across protocol versions.

// AppendSpan appends the binary encoding of one span to buf.
func AppendSpan(buf []byte, s Span) []byte {
	buf = binary.AppendUvarint(buf, s.Trace)
	buf = binary.AppendUvarint(buf, s.ID)
	buf = binary.AppendUvarint(buf, s.Parent)
	buf = appendString(buf, s.Name)
	buf = binary.AppendUvarint(buf, uint64(s.Start))
	buf = binary.AppendUvarint(buf, uint64(s.End))
	buf = binary.AppendUvarint(buf, s.Session)
	buf = binary.AppendUvarint(buf, s.Job)
	buf = appendString(buf, s.File)
	buf = appendString(buf, s.Detail)
	return buf
}

// DecodeSpan parses one span from the front of buf, returning the rest.
func DecodeSpan(buf []byte) (Span, []byte, error) {
	var s Span
	var err error
	if s.Trace, buf, err = readUvarint(buf); err != nil {
		return s, nil, err
	}
	if s.ID, buf, err = readUvarint(buf); err != nil {
		return s, nil, err
	}
	if s.Parent, buf, err = readUvarint(buf); err != nil {
		return s, nil, err
	}
	if s.Name, buf, err = readString(buf); err != nil {
		return s, nil, err
	}
	var v uint64
	if v, buf, err = readUvarint(buf); err != nil {
		return s, nil, err
	}
	s.Start = time.Duration(v)
	if v, buf, err = readUvarint(buf); err != nil {
		return s, nil, err
	}
	s.End = time.Duration(v)
	if s.Session, buf, err = readUvarint(buf); err != nil {
		return s, nil, err
	}
	if s.Job, buf, err = readUvarint(buf); err != nil {
		return s, nil, err
	}
	if s.File, buf, err = readString(buf); err != nil {
		return s, nil, err
	}
	if s.Detail, buf, err = readString(buf); err != nil {
		return s, nil, err
	}
	return s, buf, nil
}

// EncodeRecord serializes a whole trace record.
func EncodeRecord(rec Record) []byte {
	buf := binary.AppendUvarint(nil, rec.ID)
	buf = binary.AppendUvarint(buf, uint64(len(rec.Spans)))
	for _, s := range rec.Spans {
		buf = AppendSpan(buf, s)
	}
	return buf
}

// DecodeRecord parses a record produced by EncodeRecord, rejecting
// trailing bytes.
func DecodeRecord(buf []byte) (Record, error) {
	var rec Record
	var err error
	if rec.ID, buf, err = readUvarint(buf); err != nil {
		return rec, err
	}
	var n uint64
	if n, buf, err = readUvarint(buf); err != nil {
		return rec, err
	}
	// A span encodes to at least 10 bytes; cap the prealloc by what the
	// payload could possibly hold so a corrupt count can't balloon memory.
	if n > uint64(len(buf)) {
		return rec, fmt.Errorf("%w: span count %d exceeds payload", ErrBadRecord, n)
	}
	rec.Spans = make([]Span, 0, n)
	for i := uint64(0); i < n; i++ {
		var s Span
		if s, buf, err = DecodeSpan(buf); err != nil {
			return rec, err
		}
		rec.Spans = append(rec.Spans, s)
	}
	if len(buf) != 0 {
		return rec, fmt.Errorf("%w: %d trailing bytes", ErrBadRecord, len(buf))
	}
	return rec, nil
}

func appendString(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

func readUvarint(buf []byte) (uint64, []byte, error) {
	v, n := binary.Uvarint(buf)
	if n <= 0 {
		return 0, nil, fmt.Errorf("%w: bad uvarint", ErrBadRecord)
	}
	return v, buf[n:], nil
}

func readString(buf []byte) (string, []byte, error) {
	n, rest, err := readUvarint(buf)
	if err != nil {
		return "", nil, err
	}
	if n > uint64(len(rest)) {
		return "", nil, fmt.Errorf("%w: string length %d exceeds payload", ErrBadRecord, n)
	}
	return string(rest[:n]), rest[n:], nil
}
