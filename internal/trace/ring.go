package trace

import "sync/atomic"

// Event is one flight-recorder entry: a protocol or span event a session
// recently saw. Events are tiny on purpose — the ring records always-on,
// so an entry is a few words, not a full span.
type Event struct {
	// At is the observer-clock stamp (virtual under netsim).
	At int64
	// Kind classifies the event ("recv", "send", "span", "fault", ...).
	Kind string
	// Name is the protocol message or span name.
	Name string
	// Trace is the associated trace id, 0 when untraced.
	Trace uint64
	// Detail is a short free-form annotation.
	Detail string
}

// Ring is the per-session flight recorder: a fixed-size lock-free buffer
// of the most recent events. Writers never block and never allocate beyond
// the event itself; the ring simply overwrites its oldest slot. Record is
// safe for concurrent use from any number of goroutines; Snapshot may run
// concurrently with writers and returns a best-effort consistent view
// (an entry being overwritten during the copy shows either its old or new
// value — both were real events).
//
// All methods are nil-safe: a nil *Ring discards every event, so sessions
// without tracing pay one pointer test.
type Ring struct {
	mask  uint64
	pos   atomic.Uint64
	slots []atomic.Pointer[Event]
}

// NewRing builds a ring holding size events, rounded up to a power of two
// (minimum 16).
func NewRing(size int) *Ring {
	n := 16
	for n < size {
		n <<= 1
	}
	return &Ring{mask: uint64(n - 1), slots: make([]atomic.Pointer[Event], n)}
}

// Record appends an event. Lock-free: claim a slot index with one atomic
// add, then publish the event pointer into it.
func (r *Ring) Record(ev Event) {
	if r == nil {
		return
	}
	idx := r.pos.Add(1) - 1
	r.slots[idx&r.mask].Store(&ev)
}

// Len returns the number of events currently held (at most the ring size).
func (r *Ring) Len() int {
	if r == nil {
		return 0
	}
	n := r.pos.Load()
	if n > r.mask+1 {
		n = r.mask + 1
	}
	return int(n)
}

// Snapshot copies the held events, oldest first.
func (r *Ring) Snapshot() []Event {
	if r == nil {
		return nil
	}
	pos := r.pos.Load()
	size := r.mask + 1
	start := uint64(0)
	if pos > size {
		start = pos - size
	}
	out := make([]Event, 0, pos-start)
	for i := start; i < pos; i++ {
		if p := r.slots[i&r.mask].Load(); p != nil {
			out = append(out, *p)
		}
	}
	return out
}
