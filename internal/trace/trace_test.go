package trace

import (
	"bytes"
	"encoding/json"
	"reflect"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"shadowedit/internal/wire"
)

// fakeClock is a manually advanced observer clock.
type fakeClock struct {
	mu  sync.Mutex
	now time.Duration
}

func (c *fakeClock) Now() time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now += d
	c.mu.Unlock()
}

func TestTraceAssembly(t *testing.T) {
	tr := New(Config{})
	clk := &fakeClock{}

	root := tr.StartTrace("cycle", clk.Now)
	if root == nil {
		t.Fatal("StartTrace returned nil with Sample=1")
	}
	if !root.Context().Valid() {
		t.Fatal("root context invalid")
	}
	clk.Advance(5 * time.Millisecond)

	child := tr.StartSpan(root.Context(), "server.pull", clk.Now)
	child.SetSession(7).SetFile("d//f").Annotate("pull-immediate")
	clk.Advance(3 * time.Millisecond)
	child.Finish()
	clk.Advance(2 * time.Millisecond)
	root.Finish()
	tr.EndTrace(root.Trace)

	recs := tr.Completed()
	if len(recs) != 1 {
		t.Fatalf("Completed = %d records, want 1", len(recs))
	}
	rec := recs[0]
	if rec.ID != root.Trace {
		t.Fatalf("record id %d, want %d", rec.ID, root.Trace)
	}
	if len(rec.Spans) != 2 {
		t.Fatalf("spans = %d, want 2", len(rec.Spans))
	}
	if rec.Name() != "cycle" {
		t.Fatalf("Name = %q, want cycle", rec.Name())
	}
	if rec.Duration() != 10*time.Millisecond {
		t.Fatalf("Duration = %v, want 10ms", rec.Duration())
	}
	// Canonical order: spans sort by start time, so the root (t=0) comes
	// before the child (t=5ms) even though the child finished first.
	if rec.Spans[0].Name != "cycle" || rec.Spans[0].Parent != 0 {
		t.Fatalf("first span = %+v", rec.Spans[0])
	}
	if rec.Spans[1].Name != "server.pull" || rec.Spans[1].Parent != root.ID {
		t.Fatalf("second span = %+v", rec.Spans[1])
	}
	if rec.Spans[1].Session != 7 || rec.Spans[1].File != "d//f" || rec.Spans[1].Detail != "pull-immediate" {
		t.Fatalf("attributes lost: %+v", rec.Spans[1])
	}

	st := tr.Stats()
	if st.Minted != 1 || st.Spans != 2 || st.Completed != 1 || st.Active != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestNilSafety(t *testing.T) {
	var tr *Tracer
	clk := &fakeClock{}
	sp := tr.StartTrace("cycle", clk.Now)
	if sp != nil {
		t.Fatal("nil tracer minted a span")
	}
	// The nil span absorbs the whole instrumentation chain.
	sp.SetSession(1).SetJob(2).SetFile("f").Annotate("x").Finish()
	if sp.Context().Valid() {
		t.Fatal("nil span has a valid context")
	}
	if tr.StartSpan(wire.TraceContext{TraceID: 9, SpanID: 1}, "s", clk.Now) != nil {
		t.Fatal("nil tracer started a child span")
	}
	tr.EndTrace(9)
	if tr.Completed() != nil || tr.Slowest(5) != nil {
		t.Fatal("nil tracer returned records")
	}
	if tr.Stats() != (Stats{}) {
		t.Fatal("nil tracer has stats")
	}
	if _, ok := tr.Lookup(9); ok {
		t.Fatal("nil tracer found a record")
	}

	// Live tracer, invalid parent: also a nil span.
	live := New(Config{})
	if live.StartSpan(wire.TraceContext{}, "s", clk.Now) != nil {
		t.Fatal("invalid parent produced a span")
	}
}

func TestSampling(t *testing.T) {
	tr := New(Config{Sample: 3})
	clk := &fakeClock{}
	var minted int
	for i := 0; i < 9; i++ {
		if sp := tr.StartTrace("cycle", clk.Now); sp != nil {
			minted++
			sp.Finish()
			tr.EndTrace(sp.Trace)
		}
	}
	if minted != 3 {
		t.Fatalf("minted %d of 9 with Sample=3, want 3", minted)
	}
	st := tr.Stats()
	if st.Minted != 3 || st.Unsampled != 6 {
		t.Fatalf("stats = %+v", st)
	}
	// Propagated contexts are always honored regardless of rate: the
	// minting side already made the sampling decision.
	sp := tr.StartSpan(wire.TraceContext{TraceID: 424242, SpanID: 1}, "server.pull", clk.Now)
	if sp == nil {
		t.Fatal("propagated context was re-sampled away")
	}
	sp.Finish()
}

func TestEndTraceIdempotentAndLateSpans(t *testing.T) {
	tr := New(Config{})
	clk := &fakeClock{}
	root := tr.StartTrace("cycle", clk.Now)
	root.Finish()
	tr.EndTrace(root.Trace)
	tr.EndTrace(root.Trace) // second end: no-op
	tr.EndTrace(99999)      // unknown: no-op

	// A span finishing after EndTrace still lands in the completed record
	// (the other side of a shared tracer may close the trace first).
	late := tr.StartSpan(root.Context(), "server.output", clk.Now)
	late.Finish()

	rec, ok := tr.Lookup(root.Trace)
	if !ok {
		t.Fatal("completed trace not found")
	}
	if len(rec.Spans) != 2 {
		t.Fatalf("spans = %d, want 2 (late span lost)", len(rec.Spans))
	}
	if tr.Stats().Completed != 1 {
		t.Fatalf("Completed = %d, want 1", tr.Stats().Completed)
	}
}

func TestActiveEviction(t *testing.T) {
	tr := New(Config{MaxActive: 4, Capacity: 8})
	clk := &fakeClock{}
	var spans []*Span
	for i := 0; i < 6; i++ {
		spans = append(spans, tr.StartTrace("cycle", clk.Now))
	}
	st := tr.Stats()
	if st.Active != 4 {
		t.Fatalf("Active = %d, want 4", st.Active)
	}
	if st.Evicted != 2 {
		t.Fatalf("Evicted = %d, want 2", st.Evicted)
	}
	// The evicted traces are in the completed ring (empty but present).
	if _, ok := tr.Lookup(spans[0].Trace); !ok {
		t.Fatal("evicted trace not in completed ring")
	}
}

func TestCompletedRingEviction(t *testing.T) {
	tr := New(Config{Capacity: 4})
	clk := &fakeClock{}
	var ids []uint64
	for i := 0; i < 6; i++ {
		sp := tr.StartTrace("cycle", clk.Now)
		sp.Finish()
		tr.EndTrace(sp.Trace)
		ids = append(ids, sp.Trace)
	}
	recs := tr.Completed()
	if len(recs) != 4 {
		t.Fatalf("Completed = %d, want 4", len(recs))
	}
	if recs[0].ID != ids[2] || recs[3].ID != ids[5] {
		t.Fatalf("ring holds %d..%d, want %d..%d", recs[0].ID, recs[3].ID, ids[2], ids[5])
	}
	if _, ok := tr.Lookup(ids[0]); ok {
		t.Fatal("evicted record still found")
	}
}

func TestMaxSpansCap(t *testing.T) {
	tr := New(Config{MaxSpans: 3})
	clk := &fakeClock{}
	root := tr.StartTrace("cycle", clk.Now)
	for i := 0; i < 5; i++ {
		tr.StartSpan(root.Context(), "s", clk.Now).Finish()
	}
	root.Finish()
	tr.EndTrace(root.Trace)
	rec, _ := tr.Lookup(root.Trace)
	if len(rec.Spans) != 3 {
		t.Fatalf("spans = %d, want 3 (cap)", len(rec.Spans))
	}
	if tr.Stats().DroppedSpans != 3 {
		t.Fatalf("DroppedSpans = %d, want 3", tr.Stats().DroppedSpans)
	}
}

func TestSlowestOrdering(t *testing.T) {
	tr := New(Config{})
	clk := &fakeClock{}
	durations := []time.Duration{3 * time.Millisecond, 9 * time.Millisecond, 1 * time.Millisecond}
	for _, d := range durations {
		sp := tr.StartTrace("cycle", clk.Now)
		clk.Advance(d)
		sp.Finish()
		tr.EndTrace(sp.Trace)
	}
	recs := tr.Slowest(2)
	if len(recs) != 2 {
		t.Fatalf("Slowest(2) = %d records", len(recs))
	}
	if recs[0].Duration() != 9*time.Millisecond || recs[1].Duration() != 3*time.Millisecond {
		t.Fatalf("order = %v, %v", recs[0].Duration(), recs[1].Duration())
	}
}

func TestOriginInTraceID(t *testing.T) {
	tr := New(Config{Origin: 0xBEEF})
	clk := &fakeClock{}
	sp := tr.StartTrace("cycle", clk.Now)
	if sp.Trace>>40 != 0xBEEF {
		t.Fatalf("trace id %x missing origin high bits", sp.Trace)
	}
}

func TestTracerConcurrency(t *testing.T) {
	tr := New(Config{Capacity: 32, MaxActive: 64})
	clk := &fakeClock{}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				root := tr.StartTrace("cycle", clk.Now)
				child := tr.StartSpan(root.Context(), "server.pull", clk.Now)
				child.Finish()
				root.Finish()
				tr.EndTrace(root.Trace)
			}
		}()
	}
	wg.Wait()
	st := tr.Stats()
	if st.Minted != 1600 {
		t.Fatalf("Minted = %d, want 1600", st.Minted)
	}
	if st.Completed+st.Evicted != 1600 {
		t.Fatalf("Completed+Evicted = %d, want 1600", st.Completed+st.Evicted)
	}
}

func TestRingBasics(t *testing.T) {
	r := NewRing(4) // rounds up to 16
	if r.Len() != 0 || r.Snapshot() != nil && len(r.Snapshot()) != 0 {
		t.Fatal("fresh ring not empty")
	}
	for i := 0; i < 20; i++ {
		r.Record(Event{At: int64(i), Kind: "recv", Name: "NOTIFY"})
	}
	evs := r.Snapshot()
	if len(evs) != 16 {
		t.Fatalf("Snapshot = %d events, want 16", len(evs))
	}
	if evs[0].At != 4 || evs[15].At != 19 {
		t.Fatalf("window = [%d..%d], want [4..19]", evs[0].At, evs[15].At)
	}
	if r.Len() != 16 {
		t.Fatalf("Len = %d, want 16", r.Len())
	}
}

func TestRingNil(t *testing.T) {
	var r *Ring
	r.Record(Event{Kind: "recv"})
	if r.Snapshot() != nil || r.Len() != 0 {
		t.Fatal("nil ring returned events")
	}
}

func TestRingConcurrent(t *testing.T) {
	r := NewRing(64)
	var writers sync.WaitGroup
	for g := 0; g < 4; g++ {
		writers.Add(1)
		go func(g int) {
			defer writers.Done()
			for i := 0; i < 5000; i++ {
				r.Record(Event{At: int64(g*10000 + i), Kind: "send", Name: "PULL"})
			}
		}(g)
	}
	// A concurrent reader snapshots while writers race; every observed
	// event must be whole (never torn), which the race detector also
	// verifies at the memory level.
	stop := make(chan struct{})
	readerDone := make(chan struct{})
	go func() {
		defer close(readerDone)
		for {
			select {
			case <-stop:
				return
			default:
			}
			for _, ev := range r.Snapshot() {
				if ev.Kind != "send" || ev.Name != "PULL" {
					t.Errorf("torn event: %+v", ev)
					return
				}
			}
		}
	}()
	writers.Wait()
	close(stop)
	<-readerDone
	if got := r.Len(); got != 64 {
		t.Fatalf("Len = %d, want 64", got)
	}
}

func TestCodecRoundTripProperty(t *testing.T) {
	f := func(traceID, id, parent, session, job uint64, start, end int64, name, file, detail string) bool {
		s := Span{
			Trace: traceID, ID: id, Parent: parent,
			Name:  name,
			Start: time.Duration(start) & (1<<62 - 1), End: time.Duration(end) & (1<<62 - 1),
			Session: session, Job: job, File: file, Detail: detail,
		}
		buf := AppendSpan(nil, s)
		got, rest, err := DecodeSpan(buf)
		if err != nil || len(rest) != 0 {
			return false
		}
		return reflect.DeepEqual(got, s)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestRecordCodecRoundTrip(t *testing.T) {
	rec := Record{ID: 7, Spans: []Span{
		{Trace: 7, ID: 1, Name: "cycle", Start: 0, End: 10 * time.Millisecond},
		{Trace: 7, ID: 2, Parent: 1, Name: "server.pull", Session: 3, Job: 9,
			File: "d//f", Detail: "delta", Start: time.Millisecond, End: 4 * time.Millisecond},
	}}
	got, err := DecodeRecord(EncodeRecord(rec))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, rec) {
		t.Fatalf("round trip:\n got %+v\nwant %+v", got, rec)
	}
}

func TestDecodeRecordRejectsCorruption(t *testing.T) {
	rec := Record{ID: 7, Spans: []Span{{Trace: 7, ID: 1, Name: "cycle"}}}
	buf := EncodeRecord(rec)
	for cut := 0; cut < len(buf); cut++ {
		if _, err := DecodeRecord(buf[:cut]); err == nil {
			t.Fatalf("%d/%d byte prefix decoded", cut, len(buf))
		}
	}
	if _, err := DecodeRecord(append(buf, 0xFF)); err == nil {
		t.Fatal("trailing byte accepted")
	}
	// A count larger than the payload could hold must be rejected, not
	// allocated.
	huge := binary_AppendUvarint(nil, 1)
	huge = binary_AppendUvarint(huge, 1<<40)
	if _, err := DecodeRecord(huge); err == nil {
		t.Fatal("absurd span count accepted")
	}
}

// binary_AppendUvarint avoids importing encoding/binary in the test just
// for two calls — delegate to the package's own helper via appendString's
// sibling. (Kept local: the codec's encoder is exercised elsewhere.)
func binary_AppendUvarint(buf []byte, v uint64) []byte {
	for v >= 0x80 {
		buf = append(buf, byte(v)|0x80)
		v >>= 7
	}
	return append(buf, byte(v))
}

func TestWriteChrome(t *testing.T) {
	rec := Record{ID: 7, Spans: []Span{
		{Trace: 7, ID: 1, Name: "cycle", Start: 0, End: 10 * time.Millisecond},
		{Trace: 7, ID: 2, Parent: 1, Name: "server.pull", Session: 3,
			File: "d//f", Detail: "delta", Start: time.Millisecond, End: 4 * time.Millisecond},
	}}
	var buf bytes.Buffer
	if err := WriteChrome(&buf, rec); err != nil {
		t.Fatal(err)
	}
	var out struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("not valid JSON: %v", err)
	}
	if len(out.TraceEvents) != 2 {
		t.Fatalf("events = %d, want 2", len(out.TraceEvents))
	}
	ev := out.TraceEvents[1]
	if ev["ph"] != "X" || ev["name"] != "server.pull" {
		t.Fatalf("event = %v", ev)
	}
	if ev["ts"].(float64) != 1000 || ev["dur"].(float64) != 3000 {
		t.Fatalf("ts/dur = %v/%v, want 1000/3000 µs", ev["ts"], ev["dur"])
	}
	if ev["tid"].(float64) != 3 {
		t.Fatalf("tid = %v, want session 3", ev["tid"])
	}
}
