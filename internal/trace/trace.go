// Package trace is the distributed cycle-tracing subsystem: Dapper-style
// spans assembled into per-cycle causal traces, propagated between client
// and server through the wire protocol's optional trace-context header
// (wire.TraceContext, protocol version 2).
//
// The client mints a trace id when a cycle starts — an editor postprocessor
// notify or an explicit submit — and every message it sends for that cycle
// carries the context, so one trace covers client notify → server pull
// decision → delta/full transfer → cache apply → job queue wait → job run →
// output delivery → client fetch. Each process records its spans into its
// own Tracer; in-process simulations may share one Tracer between client
// and server, producing a single end-to-end timeline.
//
// Determinism: a Tracer holds no clock of its own. Span timestamps come
// from the clock of whichever obs.Observer started the span, so simulated
// deployments stamp spans with netsim virtual time and a seeded run's
// traces are byte-identical across repetitions. Trace and span ids are
// plain counters (the trace id carries a caller-supplied origin in its high
// bits), never random.
//
// The package also provides the per-session flight recorder (Ring): a
// fixed-size lock-free buffer of recent protocol/span events, cheap enough
// to run always-on and dumped when a session disconnects, faults, or one of
// its jobs fails.
package trace

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"shadowedit/internal/wire"
)

// Config parametrizes a Tracer. The zero value selects the documented
// defaults.
type Config struct {
	// Capacity bounds the completed-trace ring (default 128): /tracez
	// shows at most this many recent traces, oldest evicted first.
	Capacity int
	// MaxActive bounds concurrently assembling traces (default 1024). A
	// trace that never ends (its client vanished mid-cycle) is force-
	// completed when the table overflows, so the tracer's memory stays
	// bounded under any workload.
	MaxActive int
	// Sample is the mint sampling rate: 1 traces every cycle, N traces one
	// cycle in N, <= 0 behaves as 1. Sampling is decided deterministically
	// from the mint counter, never randomly. Propagated contexts are
	// always honored: the minting side already made the decision.
	Sample int
	// Origin distinguishes id spaces when several minting tracers feed one
	// collector: its low 24 bits become the trace id's high bits. Zero is
	// fine for a single minter.
	Origin uint64
	// MaxSpans bounds the spans kept per trace (default 512); later spans
	// are dropped and counted, so a pathological cycle cannot balloon one
	// record.
	MaxSpans int
}

func (c Config) withDefaults() Config {
	if c.Capacity <= 0 {
		c.Capacity = 128
	}
	if c.MaxActive <= 0 {
		c.MaxActive = 1024
	}
	if c.Sample <= 0 {
		c.Sample = 1
	}
	if c.MaxSpans <= 0 {
		c.MaxSpans = 512
	}
	return c
}

// Span is one timed operation within a trace. Exported fields are the
// span's identity and attributes; they are written between start and
// Finish by the owning goroutine and must not be mutated afterwards.
//
// All methods are nil-safe: a nil *Span (tracing off, or an unsampled
// cycle) accepts every call as a no-op, so instrumentation points never
// branch on whether tracing is enabled.
type Span struct {
	// Trace is the owning trace id; ID this span's id; Parent the id of
	// the span that caused it (0 for a root).
	Trace, ID, Parent uint64
	// Name identifies the operation, dotted by side: "cycle",
	// "server.pull", "client.answer-pull", ...
	Name string
	// Start and End are observer-clock stamps (virtual time under netsim).
	Start, End time.Duration
	// Session and Job attribute the span (0 = not applicable).
	Session, Job uint64
	// File is the file reference key the span concerns, if any.
	File string
	// Detail is a free-form annotation ("pull-immediate", "exit 0", ...).
	Detail string

	tracer *Tracer
	clock  func() time.Duration
}

// Context returns the propagation context naming this span as parent.
func (s *Span) Context() wire.TraceContext {
	if s == nil {
		return wire.TraceContext{}
	}
	return wire.TraceContext{TraceID: s.Trace, SpanID: s.ID}
}

// SetSession attributes the span to a server session. Returns s (chainable).
func (s *Span) SetSession(id uint64) *Span {
	if s != nil {
		s.Session = id
	}
	return s
}

// SetJob attributes the span to a job.
func (s *Span) SetJob(id uint64) *Span {
	if s != nil {
		s.Job = id
	}
	return s
}

// SetFile attributes the span to a file reference key.
func (s *Span) SetFile(key string) *Span {
	if s != nil {
		s.File = key
	}
	return s
}

// Annotate sets the span's free-form detail.
func (s *Span) Annotate(detail string) *Span {
	if s != nil {
		s.Detail = detail
	}
	return s
}

// Finish stamps the span's end time and hands it to the tracer. Calling
// Finish more than once records the span more than once; don't.
func (s *Span) Finish() {
	if s == nil {
		return
	}
	s.FinishAt(s.clock())
}

// FinishAt records the span with an explicit end stamp instead of reading
// the clock. Paths that finish a span after handing work to another
// goroutine use it under simulated time, where a late clock read could
// absorb unrelated arrivals that already advanced the shared virtual clock.
func (s *Span) FinishAt(end time.Duration) {
	if s == nil {
		return
	}
	s.End = end
	s.tracer.addSpan(s)
}

// Record is one assembled trace: its spans in finish order.
type Record struct {
	// ID is the trace id.
	ID uint64
	// Spans holds the trace's spans in the order they finished.
	Spans []Span
}

// Name returns the trace's root span name (the span with Parent 0), or the
// first span's name when no root finished.
func (r Record) Name() string {
	for _, s := range r.Spans {
		if s.Parent == 0 {
			return s.Name
		}
	}
	if len(r.Spans) > 0 {
		return r.Spans[0].Name
	}
	return ""
}

// Bounds returns the earliest start and latest end across the spans.
func (r Record) Bounds() (start, end time.Duration) {
	for i, s := range r.Spans {
		if i == 0 || s.Start < start {
			start = s.Start
		}
		if s.End > end {
			end = s.End
		}
	}
	return start, end
}

// Duration is the trace's wall (or virtual) extent: latest end minus
// earliest start.
func (r Record) Duration() time.Duration {
	start, end := r.Bounds()
	return end - start
}

// Stats summarizes a tracer's lifetime activity.
type Stats struct {
	// Minted counts StartTrace calls that produced a trace (sampled in).
	Minted int64
	// Unsampled counts StartTrace calls the sampling rate skipped.
	Unsampled int64
	// Spans counts spans recorded into traces.
	Spans int64
	// DroppedSpans counts spans that found no live trace (arrived after
	// the record was evicted, or past the per-trace span cap).
	DroppedSpans int64
	// Completed counts traces moved to the completed ring by EndTrace.
	Completed int64
	// Evicted counts active traces force-completed by MaxActive overflow.
	Evicted int64
	// Active is the number of traces still assembling.
	Active int
}

// Tracer assembles spans into traces and keeps a bounded ring of recently
// completed ones. All methods are safe for concurrent use and nil-safe: a
// nil *Tracer is a disabled tracer whose StartTrace/StartSpan return nil
// spans.
type Tracer struct {
	cfg Config

	mintCount atomic.Uint64 // StartTrace calls, drives id minting and sampling
	nextSpan  atomic.Uint64

	mu      sync.Mutex
	active  map[uint64]*Record // trace id -> assembling record
	order   []uint64           // active ids in creation order (eviction)
	done    []Record           // circular completed ring, len == cfg.Capacity
	doneAt  map[uint64]int     // trace id -> physical index in done
	doneN   int                // completed records currently held
	donePtr int                // next overwrite position

	minted, unsampled, spans, droppedSpans, completed, evicted int64
}

// New builds a Tracer.
func New(cfg Config) *Tracer {
	cfg = cfg.withDefaults()
	return &Tracer{
		cfg:    cfg,
		active: make(map[uint64]*Record),
		done:   make([]Record, cfg.Capacity),
		doneAt: make(map[uint64]int),
	}
}

// StartTrace mints a new trace and returns its root span, stamped with
// clock. Returns nil when the tracer is nil or the sampling rate skips this
// cycle — the nil span then absorbs the whole instrumentation path.
func (t *Tracer) StartTrace(name string, clock func() time.Duration) *Span {
	if t == nil {
		return nil
	}
	n := t.mintCount.Add(1)
	if t.cfg.Sample > 1 && n%uint64(t.cfg.Sample) != 0 {
		t.mu.Lock()
		t.unsampled++
		t.mu.Unlock()
		return nil
	}
	id := (t.cfg.Origin&0xFFFFFF)<<40 | (n & 0xFFFFFFFFFF)
	sp := &Span{
		Trace:  id,
		ID:     t.nextSpan.Add(1),
		Name:   name,
		Start:  clock(),
		tracer: t,
		clock:  clock,
	}
	t.mu.Lock()
	t.minted++
	t.ensureActiveLocked(id)
	t.mu.Unlock()
	return sp
}

// StartSpan opens a child span under a propagated context. Returns nil when
// the tracer is nil or the context is invalid (the peer did not trace this
// cycle), so un-instrumented traffic costs one branch.
func (t *Tracer) StartSpan(parent wire.TraceContext, name string, clock func() time.Duration) *Span {
	if t == nil || !parent.Valid() {
		return nil
	}
	sp := &Span{
		Trace:  parent.TraceID,
		ID:     t.nextSpan.Add(1),
		Parent: parent.SpanID,
		Name:   name,
		Start:  clock(),
		tracer: t,
		clock:  clock,
	}
	t.mu.Lock()
	t.ensureActiveLocked(parent.TraceID)
	t.mu.Unlock()
	return sp
}

// ensureActiveLocked creates the assembly record for a trace id if neither
// the active table nor the completed ring holds it, evicting the oldest
// active trace on overflow. Caller holds t.mu.
func (t *Tracer) ensureActiveLocked(id uint64) {
	if _, ok := t.active[id]; ok {
		return
	}
	if at, ok := t.doneAt[id]; ok && t.done[at].ID == id {
		return // late spans for a completed trace append there
	}
	for len(t.active) >= t.cfg.MaxActive && len(t.order) > 0 {
		victim := t.order[0]
		t.order = t.order[1:]
		if rec, ok := t.active[victim]; ok {
			delete(t.active, victim)
			t.evicted++
			t.pushDoneLocked(*rec)
		}
	}
	t.active[id] = &Record{ID: id}
	t.order = append(t.order, id)
}

// addSpan appends a finished span to its trace — active or recently
// completed — or drops it.
func (t *Tracer) addSpan(s *Span) {
	if t == nil {
		return
	}
	span := *s
	span.tracer, span.clock = nil, nil
	t.mu.Lock()
	defer t.mu.Unlock()
	if rec, ok := t.active[span.Trace]; ok {
		if len(rec.Spans) >= t.cfg.MaxSpans {
			t.droppedSpans++
			return
		}
		rec.Spans = append(rec.Spans, span)
		t.spans++
		return
	}
	if at, ok := t.doneAt[span.Trace]; ok && t.done[at].ID == span.Trace {
		// The trace already completed (the other side closed it first);
		// keep the late span so shared-tracer timelines stay whole.
		if len(t.done[at].Spans) >= t.cfg.MaxSpans {
			t.droppedSpans++
			return
		}
		t.done[at].Spans = append(t.done[at].Spans, span)
		t.spans++
		return
	}
	t.droppedSpans++
}

// EndTrace moves a trace from assembly to the completed ring. Idempotent:
// ending an already-completed or unknown trace is a no-op, so both sides of
// a shared tracer may call it.
func (t *Tracer) EndTrace(id uint64) {
	if t == nil || id == 0 {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	rec, ok := t.active[id]
	if !ok {
		return
	}
	delete(t.active, id)
	t.completed++
	t.pushDoneLocked(*rec)
}

// pushDoneLocked appends a record to the circular completed ring. Caller
// holds t.mu.
func (t *Tracer) pushDoneLocked(rec Record) {
	at := t.donePtr
	if old := t.done[at]; old.ID != 0 {
		delete(t.doneAt, old.ID)
	}
	t.done[at] = rec
	t.doneAt[rec.ID] = at
	t.donePtr = (t.donePtr + 1) % len(t.done)
	if t.doneN < len(t.done) {
		t.doneN++
	}
}

// Completed returns copies of the completed traces, oldest first, each
// record's spans in canonical order.
func (t *Tracer) Completed() []Record {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Record, 0, t.doneN)
	start := (t.donePtr - t.doneN + len(t.done)) % len(t.done)
	for i := 0; i < t.doneN; i++ {
		rec := t.done[(start+i)%len(t.done)]
		rec.Spans = append([]Span(nil), rec.Spans...)
		sortSpans(rec.Spans)
		out = append(out, rec)
	}
	return out
}

// sortSpans puts a record copy's spans in canonical order. Spans are stored
// in finish order, which depends on real goroutine interleaving even when
// timestamps come from a simulated clock; read paths sort by the virtual
// timeline instead so a seeded netsim run renders byte-identical traces
// every time.
func sortSpans(spans []Span) {
	sort.Slice(spans, func(a, b int) bool {
		x, y := &spans[a], &spans[b]
		if x.Start != y.Start {
			return x.Start < y.Start
		}
		if x.End != y.End {
			return x.End < y.End
		}
		if x.Name != y.Name {
			return x.Name < y.Name
		}
		if x.Session != y.Session {
			return x.Session < y.Session
		}
		if x.File != y.File {
			return x.File < y.File
		}
		return x.Detail < y.Detail
	})
}

// Slowest returns up to n completed traces ordered slowest first (duration
// descending, trace id ascending on ties — a total, deterministic order).
// n <= 0 returns all.
func (t *Tracer) Slowest(n int) []Record {
	recs := t.Completed()
	sort.Slice(recs, func(a, b int) bool {
		da, db := recs[a].Duration(), recs[b].Duration()
		if da != db {
			return da > db
		}
		return recs[a].ID < recs[b].ID
	})
	if n > 0 && len(recs) > n {
		recs = recs[:n]
	}
	return recs
}

// Lookup finds a completed trace by id.
func (t *Tracer) Lookup(id uint64) (Record, bool) {
	if t == nil {
		return Record{}, false
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	at, ok := t.doneAt[id]
	if !ok || t.done[at].ID != id {
		return Record{}, false
	}
	rec := t.done[at]
	rec.Spans = append([]Span(nil), rec.Spans...)
	sortSpans(rec.Spans)
	return rec, true
}

// Stats returns the tracer's lifetime counters. Nil-safe (zero Stats).
func (t *Tracer) Stats() Stats {
	if t == nil {
		return Stats{}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return Stats{
		Minted:       t.minted,
		Unsampled:    t.unsampled,
		Spans:        t.spans,
		DroppedSpans: t.droppedSpans,
		Completed:    t.completed,
		Evicted:      t.evicted,
		Active:       len(t.active),
	}
}
