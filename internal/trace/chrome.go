package trace

import (
	"encoding/json"
	"io"
)

// chromeEvent is one entry of the Chrome trace-event format ("X" complete
// events), the JSON schema Perfetto and chrome://tracing load directly.
type chromeEvent struct {
	Name string            `json:"name"`
	Ph   string            `json:"ph"`
	Ts   float64           `json:"ts"`  // microseconds
	Dur  float64           `json:"dur"` // microseconds
	Pid  uint64            `json:"pid"`
	Tid  uint64            `json:"tid"`
	Args map[string]string `json:"args,omitempty"`
}

type chromeFile struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// WriteChrome renders a trace record as Chrome trace-event JSON, loadable
// in Perfetto (ui.perfetto.dev) or chrome://tracing. Spans become "X"
// (complete) events; the session id becomes the tid lane so client-side
// spans (session 0 → lane 1) and each server session get separate rows.
func WriteChrome(w io.Writer, rec Record) error {
	events := make([]chromeEvent, 0, len(rec.Spans))
	for _, s := range rec.Spans {
		tid := s.Session
		if tid == 0 {
			tid = 1
		}
		args := map[string]string{
			"trace": formatID(s.Trace),
			"span":  formatID(s.ID),
		}
		if s.Parent != 0 {
			args["parent"] = formatID(s.Parent)
		}
		if s.Job != 0 {
			args["job"] = formatID(s.Job)
		}
		if s.File != "" {
			args["file"] = s.File
		}
		if s.Detail != "" {
			args["detail"] = s.Detail
		}
		events = append(events, chromeEvent{
			Name: s.Name,
			Ph:   "X",
			Ts:   float64(s.Start.Nanoseconds()) / 1e3,
			Dur:  float64((s.End - s.Start).Nanoseconds()) / 1e3,
			Pid:  1,
			Tid:  tid,
			Args: args,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(chromeFile{TraceEvents: events, DisplayTimeUnit: "ms"})
}

func formatID(v uint64) string {
	const digits = "0123456789"
	if v == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = digits[v%10]
		v /= 10
	}
	return string(buf[i:])
}
