// Package cache implements the server-side shadow store: the best-effort
// cache of submitted files kept at the supercomputer site (§5.1).
//
// "Caching does not guarantee that a duplicate copy of the user's file will
// always be available at the remote host. ... The software takes advantage of
// a cached file if it is at the remote host, but in the worst case it would
// have to send the entire file." Accordingly, the cache may refuse or evict
// any entry at any time; correctness never depends on a hit. The remote host
// decides how much disk to spend and which files leave first — here a byte
// capacity plus a pluggable eviction policy.
//
// Entries hold the newest version of each shadow file; files pinned by
// running jobs are never evicted until unpinned.
//
// Storage is content-addressed: an entry is a manifest of chunk refs into a
// shared, refcounted chunk store (internal/chunk), so identical content
// across users, files and versions is resident once. Byte accounting — and
// the capacity the eviction policy defends — is at unique-chunk granularity:
// a million near-identical files cost one copy of the shared chunks plus
// each file's private ones. Evicting an entry releases its manifest's
// references; a chunk's bytes are freed only when the last manifest (or
// in-flight transfer) referencing it lets go, which is also what makes
// re-fetching an evicted file cheap — the transfer path requests only the
// chunks that are actually gone.
//
// The store is lock-striped: entries are spread over shardCount shards keyed
// by a mixed ShadowID hash, so concurrent sessions touching different files
// never contend. Byte accounting and hit/miss/eviction statistics are
// atomics read without any lock. Victim selection under capacity pressure is
// still a global decision — the policy ("least recently used anywhere",
// "largest anywhere") matches the single-lock implementation exactly — so
// bounded Puts serialize on one eviction mutex while scanning shards one at
// a time; unbounded caches (the common server configuration) never take it.
//
// The store is introspectable without perturbing it: Stats reads the atomic
// counters, and Entries copies each shard's contents under that shard's own
// lock (a per-shard-consistent snapshot) — this is what shadowd's /cachez
// admin page renders; see OBSERVABILITY.md.
package cache

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"shadowedit/internal/chunk"
	"shadowedit/internal/naming"
)

// Policy selects which unpinned entry leaves first under pressure.
type Policy int

// Eviction policies.
const (
	// LRU evicts the least recently used entry first.
	LRU Policy = iota + 1
	// LargestFirst evicts the biggest entry first, maximizing the count
	// of files that stay cached (small files benefit the most per byte
	// from shadowing's avoided round trips).
	LargestFirst
)

// String names the policy.
func (p Policy) String() string {
	switch p {
	case LRU:
		return "lru"
	case LargestFirst:
		return "largest-first"
	default:
		return fmt.Sprintf("policy(%d)", int(p))
	}
}

// ErrTooLarge reports content bigger than the whole cache; best-effort
// semantics mean the caller simply proceeds uncached.
var ErrTooLarge = errors.New("cache: content exceeds capacity")

// Entry is one cached shadow file version. Content is assembled fresh from
// the chunk store on every lookup — the caller owns it.
type Entry struct {
	ID      naming.ShadowID
	Version uint64
	Content []byte
}

// Stats counts cache activity.
type Stats struct {
	Hits      int64
	Misses    int64
	Evictions int64
	Rejected  int64
	// Bytes is the unique-chunk bytes resident in the underlying store —
	// the quantity the capacity bounds.
	Bytes int64
	// LogicalBytes is the sum of the entries' content lengths: what a
	// whole-file cache would hold. LogicalBytes/Bytes is the dedup ratio.
	LogicalBytes int64
	Entries      int
	// Chunk-store accounting (see chunk.StoreStats).
	Chunks     int
	ChunkPuts  int64
	ChunkDups  int64
	ChunkFrees int64
}

// DedupRatio is logical over unique bytes (1.0 when the store is empty or
// nothing dedups).
func (s Stats) DedupRatio() float64 {
	if s.Bytes <= 0 {
		return 1
	}
	return float64(s.LogicalBytes) / float64(s.Bytes)
}

// shardCount is the number of lock stripes; a power of two so the shard
// index is a mask of the mixed hash.
const shardCount = 16

// Cache is a bounded, concurrency-safe shadow store.
type Cache struct {
	capacity int64
	policy   Policy
	params   chunk.Params
	store    *chunk.Store

	shards [shardCount]shard

	// evictMu serializes capacity-bounded Puts so the room check and the
	// eviction scan are atomic with respect to each other. Reads, pins and
	// unbounded Puts never take it.
	evictMu sync.Mutex

	// onEvict, when set, observes every entry that leaves the cache —
	// policy eviction, explicit Evict, a rejected Put dropping its stale
	// predecessor, Flush. Replacement by a newer version is not a removal
	// and is not reported. Called after the shard lock is dropped, so the
	// hook may take its own locks; set it once, before concurrent use.
	onEvict func(naming.ShadowID)

	logicalBytes atomic.Int64
	seq          atomic.Int64

	hits      atomic.Int64
	misses    atomic.Int64
	evictions atomic.Int64
	rejected  atomic.Int64
}

type shard struct {
	mu      sync.Mutex
	entries map[naming.ShadowID]*slot
}

type slot struct {
	version  uint64
	manifest chunk.Manifest
	size     int64 // logical content length
	lastUsed int64
	pins     int
}

// shardOf mixes the id (sequential intern order would otherwise map
// neighbouring files to neighbouring shards unevenly) and picks a stripe.
func (c *Cache) shardOf(id naming.ShadowID) *shard {
	h := uint64(id)
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	return &c.shards[h&(shardCount-1)]
}

// New returns a cache bounded to capacity bytes of unique chunk content
// (<= 0 means unbounded) with the given eviction policy.
func New(capacity int64, policy Policy) *Cache {
	if policy != LRU && policy != LargestFirst {
		policy = LRU
	}
	c := &Cache{
		capacity: capacity,
		policy:   policy,
		params:   chunk.DefaultParams,
		store:    chunk.NewStore(),
	}
	for i := range c.shards {
		c.shards[i].entries = make(map[naming.ShadowID]*slot)
	}
	return c
}

// ChunkStore exposes the underlying chunk store. The transfer path uses it
// directly: resolving a manifest's refs against resident chunks, pinning
// chunks for in-flight assemblies, and storing arriving chunk data.
func (c *Cache) ChunkStore() *chunk.Store { return c.store }

// SetEvictHook installs fn to observe every entry removal (see onEvict).
// Holders that key side state by entry — the server's retained peer deltas —
// use it to drop that state in lockstep with the cache, so their footprint
// can never outgrow the cache's own. Must be called before the cache sees
// concurrent use; a nil fn removes the hook.
func (c *Cache) SetEvictHook(fn func(naming.ShadowID)) { c.onEvict = fn }

// evicted reports one removed entry to the hook. Callers must have dropped
// every shard lock first.
func (c *Cache) evicted(id naming.ShadowID) {
	if c.onEvict != nil {
		c.onEvict(id)
	}
}

// Params returns the chunking parameters the cache splits content with.
func (c *Cache) Params() chunk.Params { return c.params }

// Get returns the cached entry for id, if present, and refreshes its
// recency. The content is assembled from the chunk store into a fresh
// buffer the caller owns.
func (c *Cache) Get(id naming.ShadowID) (Entry, bool) {
	sh := c.shardOf(id)
	sh.mu.Lock()
	s, ok := sh.entries[id]
	if !ok {
		sh.mu.Unlock()
		c.misses.Add(1)
		return Entry{}, false
	}
	s.lastUsed = c.seq.Add(1)
	e := c.assembleLocked(id, s)
	sh.mu.Unlock()
	c.hits.Add(1)
	return e, true
}

// Peek is Get without touching recency or hit statistics.
func (c *Cache) Peek(id naming.ShadowID) (Entry, bool) {
	sh := c.shardOf(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	s, ok := sh.entries[id]
	if !ok {
		return Entry{}, false
	}
	return c.assembleLocked(id, s), true
}

// Version returns the cached version number of id without assembling its
// content — the cheap lookup for call sites that only plan (pull decisions,
// overtaken checks).
func (c *Cache) Version(id naming.ShadowID) (uint64, bool) {
	sh := c.shardOf(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	s, ok := sh.entries[id]
	if !ok {
		return 0, false
	}
	return s.version, true
}

// Manifest returns the cached version and manifest of id. The manifest is
// the entry's own — the caller must not modify it, and it is only guaranteed
// to stay backed by resident chunks while the entry lives (callers that need
// the chunks past the shard's lifetime take their own refs).
func (c *Cache) Manifest(id naming.ShadowID) (uint64, chunk.Manifest, bool) {
	sh := c.shardOf(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	s, ok := sh.entries[id]
	if !ok {
		return 0, nil, false
	}
	return s.version, s.manifest, true
}

// Fingerprint returns the cached version of id and the fingerprint of its
// manifest — the Merkle leaf hash directory reconciliation summarizes the
// entry by. Computed under the shard lock, so it is always consistent with
// one resident version (an entry mid-replacement yields either the old or
// the new fingerprint, never a mixture).
func (c *Cache) Fingerprint(id naming.ShadowID) (uint64, chunk.Hash, bool) {
	sh := c.shardOf(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	s, ok := sh.entries[id]
	if !ok {
		return 0, chunk.Hash{}, false
	}
	return s.version, s.manifest.Fingerprint(), true
}

// assembleLocked reconstructs a slot's content while the shard lock pins its
// manifest (eviction takes the same lock, so the chunks cannot be released
// mid-assembly). A failed assembly is a refcounting bug; the cache treats it
// as a miss rather than serving corrupt content.
func (c *Cache) assembleLocked(id naming.ShadowID, s *slot) Entry {
	content, ok := c.store.Assemble(s.manifest)
	if !ok {
		// Unreachable unless refcounts are broken; fail loudly in tests.
		panic(fmt.Sprintf("cache: entry %d lost chunks", id))
	}
	return Entry{ID: id, Version: s.version, Content: content}
}

// Put stores version content for id, replacing any older version and
// splitting the content into the shared chunk store (already-resident chunks
// are deduplicated, not stored again). Under a capacity bound, unpinned
// entries are evicted until unique bytes fit; eviction is best-effort — if
// everything else is pinned the cache may briefly exceed its bound rather
// than refuse fresh content. Content bigger than the whole cache is rejected
// up front with ErrTooLarge, and callers must not treat that as fatal.
func (c *Cache) Put(id naming.ShadowID, version uint64, content []byte) error {
	size := int64(len(content))
	// Content that can never fit is rejected up front — evicting the
	// whole cache first would sacrifice everyone else's entries for
	// nothing. (Unique bytes can only be <= the content length, so this
	// conservative check errs toward accepting.)
	if c.capacity > 0 && size > c.capacity {
		c.reject(id)
		return ErrTooLarge
	}
	m := c.store.AddManifest(content, c.params)
	c.install(id, version, m, size)
	return nil
}

// PutOwned is Put for callers handing over a buffer they no longer need.
// Chunk data is copied into the store either way, so the two are equivalent
// now; the name survives for the arrival path's call sites.
func (c *Cache) PutOwned(id naming.ShadowID, version uint64, content []byte) error {
	return c.Put(id, version, content)
}

// PutManifest stores an entry whose chunks are already resident: the caller
// transfers one reference per manifest entry to the cache (the chunked
// arrival path holds those refs from resolving and receiving the transfer).
// The manifest must not be used by the caller afterwards.
func (c *Cache) PutManifest(id naming.ShadowID, version uint64, m chunk.Manifest) {
	c.install(id, version, m, m.TotalLen())
}

// install replaces the entry for id and enforces the capacity bound.
func (c *Cache) install(id naming.ShadowID, version uint64, m chunk.Manifest, size int64) {
	sh := c.shardOf(id)
	if c.capacity <= 0 {
		// Unbounded: fully shard-local.
		sh.mu.Lock()
		old := c.storeLocked(sh, id, version, m, size)
		sh.mu.Unlock()
		c.store.ReleaseManifest(old)
		return
	}
	c.evictMu.Lock()
	defer c.evictMu.Unlock()
	sh.mu.Lock()
	old := c.storeLocked(sh, id, version, m, size)
	sh.mu.Unlock()
	c.store.ReleaseManifest(old)
	// Only install (under evictMu) grows unique bytes, so the loop cannot
	// be starved by concurrent growth.
	for c.store.UniqueBytes() > c.capacity {
		if !c.evictOne(id) {
			break
		}
	}
}

// reject counts a failed Put and drops any stale unpinned old version of id.
func (c *Cache) reject(id naming.ShadowID) {
	c.rejected.Add(1)
	sh := c.shardOf(id)
	sh.mu.Lock()
	var old chunk.Manifest
	removed := false
	if s, ok := sh.entries[id]; ok && s.pins == 0 {
		c.logicalBytes.Add(-s.size)
		old = s.manifest
		delete(sh.entries, id)
		removed = true
	}
	sh.mu.Unlock()
	c.store.ReleaseManifest(old)
	if removed {
		c.evicted(id)
	}
}

// storeLocked installs the manifest under sh.mu, which must be held, and
// returns the replaced entry's manifest for the caller to release once the
// shard lock is dropped.
func (c *Cache) storeLocked(sh *shard, id naming.ShadowID, version uint64, m chunk.Manifest, size int64) chunk.Manifest {
	seq := c.seq.Add(1)
	if old, ok := sh.entries[id]; ok {
		c.logicalBytes.Add(size - old.size)
		prev := old.manifest
		old.version = version
		old.manifest = m
		old.size = size
		old.lastUsed = seq
		return prev
	}
	sh.entries[id] = &slot{
		version:  version,
		manifest: m,
		size:     size,
		lastUsed: seq,
	}
	c.logicalBytes.Add(size)
	return nil
}

// evictOne removes one unpinned victim per policy, scanning every shard for
// the global best candidate (identical choice to the single-lock cache) and
// then revalidating under the victim's shard lock — a pin that raced the
// scan spares the entry and the scan repeats. Returns false when no victim
// exists. Caller holds evictMu, so at most one eviction scan runs at a time
// and no shard lock is ever held while another is taken. Releasing the
// victim's manifest frees only the chunks no other manifest (and no
// in-flight assembly) still references.
func (c *Cache) evictOne(keep naming.ShadowID) bool {
	for {
		var (
			victimShard *shard
			victim      naming.ShadowID
			found       bool
			best        int64 = -1
			oldest      int64 = math.MaxInt64
		)
		for i := range c.shards {
			sh := &c.shards[i]
			sh.mu.Lock()
			for id, s := range sh.entries {
				if s.pins > 0 || id == keep {
					continue
				}
				switch c.policy {
				case LargestFirst:
					if s.size > best {
						best = s.size
						victim, victimShard, found = id, sh, true
					}
				default: // LRU
					if s.lastUsed < oldest {
						oldest = s.lastUsed
						victim, victimShard, found = id, sh, true
					}
				}
			}
			sh.mu.Unlock()
		}
		if !found {
			return false
		}
		victimShard.mu.Lock()
		if s, ok := victimShard.entries[victim]; ok && s.pins == 0 {
			c.logicalBytes.Add(-s.size)
			m := s.manifest
			delete(victimShard.entries, victim)
			victimShard.mu.Unlock()
			c.store.ReleaseManifest(m)
			c.evictions.Add(1)
			c.evicted(victim)
			return true
		}
		victimShard.mu.Unlock()
		// The chosen victim was pinned or removed after the scan; pick
		// again without it.
	}
}

// Pin marks id in use (for example by a queued or running job); pinned
// entries survive eviction. Pins nest.
func (c *Cache) Pin(id naming.ShadowID) bool {
	sh := c.shardOf(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	s, ok := sh.entries[id]
	if !ok {
		return false
	}
	s.pins++
	return true
}

// Unpin releases one pin.
func (c *Cache) Unpin(id naming.ShadowID) {
	sh := c.shardOf(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if s, ok := sh.entries[id]; ok && s.pins > 0 {
		s.pins--
	}
}

// Evict forcibly removes an entry (even a pinned one); used by tests and by
// operators reclaiming disk. Reports whether the entry existed.
func (c *Cache) Evict(id naming.ShadowID) bool {
	sh := c.shardOf(id)
	sh.mu.Lock()
	s, ok := sh.entries[id]
	if !ok {
		sh.mu.Unlock()
		return false
	}
	c.logicalBytes.Add(-s.size)
	m := s.manifest
	delete(sh.entries, id)
	sh.mu.Unlock()
	c.store.ReleaseManifest(m)
	c.evictions.Add(1)
	c.evicted(id)
	return true
}

// Flush empties the cache (server restart, disk scrubbed).
func (c *Cache) Flush() {
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		manifests := make([]chunk.Manifest, 0, len(sh.entries))
		ids := make([]naming.ShadowID, 0, len(sh.entries))
		for id, s := range sh.entries {
			c.logicalBytes.Add(-s.size)
			manifests = append(manifests, s.manifest)
			ids = append(ids, id)
			delete(sh.entries, id)
		}
		sh.mu.Unlock()
		for _, m := range manifests {
			c.store.ReleaseManifest(m)
		}
		for _, id := range ids {
			c.evicted(id)
		}
	}
}

// Stats returns a snapshot of the counters.
func (c *Cache) Stats() Stats {
	cs := c.store.Stats()
	return Stats{
		Hits:         c.hits.Load(),
		Misses:       c.misses.Load(),
		Evictions:    c.evictions.Load(),
		Rejected:     c.rejected.Load(),
		Bytes:        cs.UniqueBytes,
		LogicalBytes: c.logicalBytes.Load(),
		Entries:      c.Len(),
		Chunks:       cs.Chunks,
		ChunkPuts:    cs.Puts,
		ChunkDups:    cs.Dups,
		ChunkFrees:   cs.Frees,
	}
}

// Bytes returns the unique chunk bytes resident in the store — the quantity
// the capacity bounds.
func (c *Cache) Bytes() int64 { return c.store.UniqueBytes() }

// LogicalBytes returns the sum of the entries' content lengths.
func (c *Cache) LogicalBytes() int64 { return c.logicalBytes.Load() }

// Len returns the number of cached entries.
func (c *Cache) Len() int {
	n := 0
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		n += len(sh.entries)
		sh.mu.Unlock()
	}
	return n
}

// Capacity returns the configured byte capacity (<= 0 means unbounded).
func (c *Cache) Capacity() int64 { return c.capacity }

// Policy returns the configured eviction policy.
func (c *Cache) Policy() Policy { return c.policy }

// EntryInfo describes one cached entry without exposing its content —
// what an operator inspecting the cache (shadowd's /cachez) needs to see.
type EntryInfo struct {
	Shard   int
	ID      naming.ShadowID
	Version uint64
	// Size is the logical content length; Chunks the manifest's ref count.
	Size     int
	Chunks   int
	Pins     int
	LastUsed int64 // recency sequence number; higher = used more recently
}

// Entries snapshots every cached entry's metadata, shard by shard. Each
// shard is locked only while it is copied, so the snapshot is per-shard
// consistent (concurrent Puts may land between shards — fine for an
// operator view, which is best effort like the cache itself).
func (c *Cache) Entries() []EntryInfo {
	var out []EntryInfo
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		for id, s := range sh.entries {
			out = append(out, EntryInfo{
				Shard:    i,
				ID:       id,
				Version:  s.version,
				Size:     int(s.size),
				Chunks:   len(s.manifest),
				Pins:     s.pins,
				LastUsed: s.lastUsed,
			})
		}
		sh.mu.Unlock()
	}
	return out
}
