// Package cache implements the server-side shadow store: the best-effort
// cache of submitted files kept at the supercomputer site (§5.1).
//
// "Caching does not guarantee that a duplicate copy of the user's file will
// always be available at the remote host. ... The software takes advantage of
// a cached file if it is at the remote host, but in the worst case it would
// have to send the entire file." Accordingly, the cache may refuse or evict
// any entry at any time; correctness never depends on a hit. The remote host
// decides how much disk to spend and which files leave first — here a byte
// capacity plus a pluggable eviction policy.
//
// Entries hold the newest version of each shadow file; files pinned by
// running jobs are never evicted until unpinned.
//
// The store is lock-striped: entries are spread over shardCount shards keyed
// by a mixed ShadowID hash, so concurrent sessions touching different files
// never contend. Byte accounting and hit/miss/eviction statistics are
// atomics read without any lock. Victim selection under capacity pressure is
// still a global decision — the policy ("least recently used anywhere",
// "largest anywhere") matches the single-lock implementation exactly — so
// bounded Puts serialize on one eviction mutex while scanning shards one at
// a time; unbounded caches (the common server configuration) never take it.
//
// The store is introspectable without perturbing it: Stats reads the atomic
// counters, and Entries copies each shard's contents under that shard's own
// lock (a per-shard-consistent snapshot) — this is what shadowd's /cachez
// admin page renders; see OBSERVABILITY.md.
package cache

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"shadowedit/internal/naming"
)

// Policy selects which unpinned entry leaves first under pressure.
type Policy int

// Eviction policies.
const (
	// LRU evicts the least recently used entry first.
	LRU Policy = iota + 1
	// LargestFirst evicts the biggest entry first, maximizing the count
	// of files that stay cached (small files benefit the most per byte
	// from shadowing's avoided round trips).
	LargestFirst
)

// String names the policy.
func (p Policy) String() string {
	switch p {
	case LRU:
		return "lru"
	case LargestFirst:
		return "largest-first"
	default:
		return fmt.Sprintf("policy(%d)", int(p))
	}
}

// ErrTooLarge reports content bigger than the whole cache; best-effort
// semantics mean the caller simply proceeds uncached.
var ErrTooLarge = errors.New("cache: content exceeds capacity")

// Entry is one cached shadow file version.
type Entry struct {
	ID      naming.ShadowID
	Version uint64
	Content []byte
}

// Stats counts cache activity.
type Stats struct {
	Hits      int64
	Misses    int64
	Evictions int64
	Rejected  int64
	Bytes     int64
	Entries   int
}

// shardCount is the number of lock stripes; a power of two so the shard
// index is a mask of the mixed hash.
const shardCount = 16

// Cache is a bounded, concurrency-safe shadow store.
type Cache struct {
	capacity int64
	policy   Policy

	shards [shardCount]shard

	// evictMu serializes capacity-bounded Puts so the room check and the
	// eviction scan are atomic with respect to each other. Reads, pins and
	// unbounded Puts never take it.
	evictMu sync.Mutex

	bytes atomic.Int64
	seq   atomic.Int64

	hits      atomic.Int64
	misses    atomic.Int64
	evictions atomic.Int64
	rejected  atomic.Int64
}

type shard struct {
	mu      sync.Mutex
	entries map[naming.ShadowID]*slot
}

type slot struct {
	entry    Entry
	lastUsed int64
	pins     int
}

// shardOf mixes the id (sequential intern order would otherwise map
// neighbouring files to neighbouring shards unevenly) and picks a stripe.
func (c *Cache) shardOf(id naming.ShadowID) *shard {
	h := uint64(id)
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	return &c.shards[h&(shardCount-1)]
}

// New returns a cache bounded to capacity bytes of content (<= 0 means
// unbounded) with the given eviction policy.
func New(capacity int64, policy Policy) *Cache {
	if policy != LRU && policy != LargestFirst {
		policy = LRU
	}
	c := &Cache{capacity: capacity, policy: policy}
	for i := range c.shards {
		c.shards[i].entries = make(map[naming.ShadowID]*slot)
	}
	return c
}

// Get returns the cached entry for id, if present, and refreshes its
// recency. The returned content must not be modified.
func (c *Cache) Get(id naming.ShadowID) (Entry, bool) {
	sh := c.shardOf(id)
	sh.mu.Lock()
	s, ok := sh.entries[id]
	if !ok {
		sh.mu.Unlock()
		c.misses.Add(1)
		return Entry{}, false
	}
	s.lastUsed = c.seq.Add(1)
	e := s.entry
	sh.mu.Unlock()
	c.hits.Add(1)
	return e, true
}

// Peek is Get without touching recency or hit statistics.
func (c *Cache) Peek(id naming.ShadowID) (Entry, bool) {
	sh := c.shardOf(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	s, ok := sh.entries[id]
	if !ok {
		return Entry{}, false
	}
	return s.entry, true
}

// Put stores version content for id, replacing any older version, evicting
// other unpinned entries as needed. The content is copied. Best-effort: if
// the content cannot fit (bigger than capacity, or everything else is
// pinned), Put returns ErrTooLarge and the cache simply does not hold the
// file — callers must not treat that as fatal.
func (c *Cache) Put(id naming.ShadowID, version uint64, content []byte) error {
	return c.put(id, version, append([]byte(nil), content...))
}

// PutOwned is Put taking ownership of content without copying; the caller
// must not touch the slice afterwards. The server's arrival path uses it —
// applied deltas and full transfers are freshly built buffers, so the
// defensive copy would be pure allocation.
func (c *Cache) PutOwned(id naming.ShadowID, version uint64, content []byte) error {
	return c.put(id, version, content)
}

func (c *Cache) put(id naming.ShadowID, version uint64, content []byte) error {
	size := int64(len(content))
	// Content that can never fit is rejected up front — evicting the
	// whole cache first would sacrifice everyone else's entries for
	// nothing.
	if c.capacity > 0 && size > c.capacity {
		c.reject(id)
		return ErrTooLarge
	}
	sh := c.shardOf(id)
	if c.capacity <= 0 {
		// Unbounded: fully shard-local.
		sh.mu.Lock()
		c.storeLocked(sh, id, version, content, size)
		sh.mu.Unlock()
		return nil
	}
	c.evictMu.Lock()
	defer c.evictMu.Unlock()
	for {
		sh.mu.Lock()
		var oldSize int64
		if old, ok := sh.entries[id]; ok {
			oldSize = int64(len(old.entry.Content))
		}
		// The entry's own old bytes are reusable; everything else must
		// be evicted per policy. Only put (under evictMu) grows bytes,
		// so the check cannot be invalidated concurrently.
		if c.bytes.Load()-oldSize+size <= c.capacity {
			c.storeLocked(sh, id, version, content, size)
			sh.mu.Unlock()
			return nil
		}
		sh.mu.Unlock()
		if !c.evictOne(id) {
			// No victim available. Best effort: the cache simply
			// does not hold the new version. A stale unpinned old
			// version is dropped rather than silently served; a
			// pinned one stays (a job still needs it) and remains
			// accurately versioned.
			c.reject(id)
			return ErrTooLarge
		}
	}
}

// reject counts a failed Put and drops any stale unpinned old version of id.
func (c *Cache) reject(id naming.ShadowID) {
	c.rejected.Add(1)
	sh := c.shardOf(id)
	sh.mu.Lock()
	if old, ok := sh.entries[id]; ok && old.pins == 0 {
		c.bytes.Add(-int64(len(old.entry.Content)))
		delete(sh.entries, id)
	}
	sh.mu.Unlock()
}

// storeLocked installs content under sh.mu, which must be held.
func (c *Cache) storeLocked(sh *shard, id naming.ShadowID, version uint64, content []byte, size int64) {
	seq := c.seq.Add(1)
	if old, ok := sh.entries[id]; ok {
		c.bytes.Add(size - int64(len(old.entry.Content)))
		old.entry.Version = version
		old.entry.Content = content
		old.lastUsed = seq
		return
	}
	sh.entries[id] = &slot{
		entry:    Entry{ID: id, Version: version, Content: content},
		lastUsed: seq,
	}
	c.bytes.Add(size)
}

// evictOne removes one unpinned victim per policy, scanning every shard for
// the global best candidate (identical choice to the single-lock cache) and
// then revalidating under the victim's shard lock — a pin that raced the
// scan spares the entry and the scan repeats. Returns false when no victim
// exists. Caller holds evictMu, so at most one eviction scan runs at a time
// and no shard lock is ever held while another is taken.
func (c *Cache) evictOne(keep naming.ShadowID) bool {
	for {
		var (
			victimShard *shard
			victim      naming.ShadowID
			found       bool
			best        int64 = -1
			oldest      int64 = math.MaxInt64
		)
		for i := range c.shards {
			sh := &c.shards[i]
			sh.mu.Lock()
			for id, s := range sh.entries {
				if s.pins > 0 || id == keep {
					continue
				}
				switch c.policy {
				case LargestFirst:
					if int64(len(s.entry.Content)) > best {
						best = int64(len(s.entry.Content))
						victim, victimShard, found = id, sh, true
					}
				default: // LRU
					if s.lastUsed < oldest {
						oldest = s.lastUsed
						victim, victimShard, found = id, sh, true
					}
				}
			}
			sh.mu.Unlock()
		}
		if !found {
			return false
		}
		victimShard.mu.Lock()
		if s, ok := victimShard.entries[victim]; ok && s.pins == 0 {
			c.bytes.Add(-int64(len(s.entry.Content)))
			delete(victimShard.entries, victim)
			victimShard.mu.Unlock()
			c.evictions.Add(1)
			return true
		}
		victimShard.mu.Unlock()
		// The chosen victim was pinned or removed after the scan; pick
		// again without it.
	}
}

// Pin marks id in use (for example by a queued or running job); pinned
// entries survive eviction. Pins nest.
func (c *Cache) Pin(id naming.ShadowID) bool {
	sh := c.shardOf(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	s, ok := sh.entries[id]
	if !ok {
		return false
	}
	s.pins++
	return true
}

// Unpin releases one pin.
func (c *Cache) Unpin(id naming.ShadowID) {
	sh := c.shardOf(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if s, ok := sh.entries[id]; ok && s.pins > 0 {
		s.pins--
	}
}

// Evict forcibly removes an entry (even a pinned one); used by tests and by
// operators reclaiming disk. Reports whether the entry existed.
func (c *Cache) Evict(id naming.ShadowID) bool {
	sh := c.shardOf(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	s, ok := sh.entries[id]
	if !ok {
		return false
	}
	c.bytes.Add(-int64(len(s.entry.Content)))
	delete(sh.entries, id)
	c.evictions.Add(1)
	return true
}

// Flush empties the cache (server restart, disk scrubbed).
func (c *Cache) Flush() {
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		for id, s := range sh.entries {
			c.bytes.Add(-int64(len(s.entry.Content)))
			delete(sh.entries, id)
		}
		sh.mu.Unlock()
	}
}

// Stats returns a snapshot of the counters.
func (c *Cache) Stats() Stats {
	return Stats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Evictions: c.evictions.Load(),
		Rejected:  c.rejected.Load(),
		Bytes:     c.bytes.Load(),
		Entries:   c.Len(),
	}
}

// Bytes returns the cached content bytes.
func (c *Cache) Bytes() int64 { return c.bytes.Load() }

// Len returns the number of cached entries.
func (c *Cache) Len() int {
	n := 0
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		n += len(sh.entries)
		sh.mu.Unlock()
	}
	return n
}

// Capacity returns the configured byte capacity (<= 0 means unbounded).
func (c *Cache) Capacity() int64 { return c.capacity }

// Policy returns the configured eviction policy.
func (c *Cache) Policy() Policy { return c.policy }

// EntryInfo describes one cached entry without exposing its content —
// what an operator inspecting the cache (shadowd's /cachez) needs to see.
type EntryInfo struct {
	Shard    int
	ID       naming.ShadowID
	Version  uint64
	Size     int
	Pins     int
	LastUsed int64 // recency sequence number; higher = used more recently
}

// Entries snapshots every cached entry's metadata, shard by shard. Each
// shard is locked only while it is copied, so the snapshot is per-shard
// consistent (concurrent Puts may land between shards — fine for an
// operator view, which is best effort like the cache itself).
func (c *Cache) Entries() []EntryInfo {
	var out []EntryInfo
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		for id, s := range sh.entries {
			out = append(out, EntryInfo{
				Shard:    i,
				ID:       id,
				Version:  s.entry.Version,
				Size:     len(s.entry.Content),
				Pins:     s.pins,
				LastUsed: s.lastUsed,
			})
		}
		sh.mu.Unlock()
	}
	return out
}
