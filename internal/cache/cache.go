// Package cache implements the server-side shadow store: the best-effort
// cache of submitted files kept at the supercomputer site (§5.1).
//
// "Caching does not guarantee that a duplicate copy of the user's file will
// always be available at the remote host. ... The software takes advantage of
// a cached file if it is at the remote host, but in the worst case it would
// have to send the entire file." Accordingly, the cache may refuse or evict
// any entry at any time; correctness never depends on a hit. The remote host
// decides how much disk to spend and which files leave first — here a byte
// capacity plus a pluggable eviction policy.
//
// Entries hold the newest version of each shadow file; files pinned by
// running jobs are never evicted until unpinned.
package cache

import (
	"errors"
	"fmt"
	"sync"

	"shadowedit/internal/naming"
)

// Policy selects which unpinned entry leaves first under pressure.
type Policy int

// Eviction policies.
const (
	// LRU evicts the least recently used entry first.
	LRU Policy = iota + 1
	// LargestFirst evicts the biggest entry first, maximizing the count
	// of files that stay cached (small files benefit the most per byte
	// from shadowing's avoided round trips).
	LargestFirst
)

// String names the policy.
func (p Policy) String() string {
	switch p {
	case LRU:
		return "lru"
	case LargestFirst:
		return "largest-first"
	default:
		return fmt.Sprintf("policy(%d)", int(p))
	}
}

// ErrTooLarge reports content bigger than the whole cache; best-effort
// semantics mean the caller simply proceeds uncached.
var ErrTooLarge = errors.New("cache: content exceeds capacity")

// Entry is one cached shadow file version.
type Entry struct {
	ID      naming.ShadowID
	Version uint64
	Content []byte
}

// Stats counts cache activity.
type Stats struct {
	Hits      int64
	Misses    int64
	Evictions int64
	Rejected  int64
	Bytes     int64
	Entries   int
}

// Cache is a bounded, concurrency-safe shadow store.
type Cache struct {
	mu       sync.Mutex
	capacity int64
	policy   Policy
	entries  map[naming.ShadowID]*slot
	bytes    int64
	seq      int64
	stats    Stats
}

type slot struct {
	entry    Entry
	lastUsed int64
	pins     int
}

// New returns a cache bounded to capacity bytes of content (<= 0 means
// unbounded) with the given eviction policy.
func New(capacity int64, policy Policy) *Cache {
	if policy != LRU && policy != LargestFirst {
		policy = LRU
	}
	return &Cache{
		capacity: capacity,
		policy:   policy,
		entries:  make(map[naming.ShadowID]*slot),
	}
}

// Get returns the cached entry for id, if present, and refreshes its
// recency. The returned content must not be modified.
func (c *Cache) Get(id naming.ShadowID) (Entry, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	s, ok := c.entries[id]
	if !ok {
		c.stats.Misses++
		return Entry{}, false
	}
	c.seq++
	s.lastUsed = c.seq
	c.stats.Hits++
	return s.entry, true
}

// Peek is Get without touching recency or hit statistics.
func (c *Cache) Peek(id naming.ShadowID) (Entry, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	s, ok := c.entries[id]
	if !ok {
		return Entry{}, false
	}
	return s.entry, true
}

// Put stores version content for id, replacing any older version, evicting
// other unpinned entries as needed. Best-effort: if the content cannot fit
// (bigger than capacity, or everything else is pinned), Put returns
// ErrTooLarge and the cache simply does not hold the file — callers must not
// treat that as fatal.
func (c *Cache) Put(id naming.ShadowID, version uint64, content []byte) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	size := int64(len(content))
	old := c.entries[id]
	var oldSize int64
	if old != nil {
		oldSize = int64(len(old.entry.Content))
	}
	// Content that can never fit is rejected up front — evicting the
	// whole cache first would sacrifice everyone else's entries for
	// nothing.
	if c.capacity > 0 && size > c.capacity {
		c.stats.Rejected++
		if old != nil && old.pins == 0 {
			c.bytes -= oldSize
			delete(c.entries, id)
		}
		return ErrTooLarge
	}
	// Guarantee room before mutating anything: the entry's own old bytes
	// are reusable, everything else must be evicted per policy.
	if c.capacity > 0 {
		for c.bytes-oldSize+size > c.capacity {
			if c.evictOneLocked(id) {
				continue
			}
			// No victim available. Best effort: the cache simply
			// does not hold the new version. A stale unpinned old
			// version is dropped rather than silently served; a
			// pinned one stays (a job still needs it) and remains
			// accurately versioned.
			c.stats.Rejected++
			if old != nil && old.pins == 0 {
				c.bytes -= oldSize
				delete(c.entries, id)
			}
			return ErrTooLarge
		}
	}
	c.seq++
	if old != nil {
		c.bytes += size - oldSize
		old.entry.Version = version
		old.entry.Content = append([]byte(nil), content...)
		old.lastUsed = c.seq
		return nil
	}
	c.entries[id] = &slot{
		entry:    Entry{ID: id, Version: version, Content: append([]byte(nil), content...)},
		lastUsed: c.seq,
	}
	c.bytes += size
	return nil
}

// evictOneLocked removes one unpinned victim per policy. Returns false when
// no victim exists.
func (c *Cache) evictOneLocked(keep naming.ShadowID) bool {
	var victim naming.ShadowID
	found := false
	switch c.policy {
	case LargestFirst:
		var best int64 = -1
		for id, s := range c.entries {
			if s.pins > 0 || id == keep {
				continue
			}
			if int64(len(s.entry.Content)) > best {
				best = int64(len(s.entry.Content))
				victim = id
				found = true
			}
		}
	default: // LRU
		var oldest int64 = 1<<63 - 1
		for id, s := range c.entries {
			if s.pins > 0 || id == keep {
				continue
			}
			if s.lastUsed < oldest {
				oldest = s.lastUsed
				victim = id
				found = true
			}
		}
	}
	if !found {
		return false
	}
	c.bytes -= int64(len(c.entries[victim].entry.Content))
	delete(c.entries, victim)
	c.stats.Evictions++
	return true
}

// Pin marks id in use (for example by a queued or running job); pinned
// entries survive eviction. Pins nest.
func (c *Cache) Pin(id naming.ShadowID) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	s, ok := c.entries[id]
	if !ok {
		return false
	}
	s.pins++
	return true
}

// Unpin releases one pin.
func (c *Cache) Unpin(id naming.ShadowID) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if s, ok := c.entries[id]; ok && s.pins > 0 {
		s.pins--
	}
}

// Evict forcibly removes an entry (even a pinned one); used by tests and by
// operators reclaiming disk. Reports whether the entry existed.
func (c *Cache) Evict(id naming.ShadowID) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	s, ok := c.entries[id]
	if !ok {
		return false
	}
	c.bytes -= int64(len(s.entry.Content))
	delete(c.entries, id)
	c.stats.Evictions++
	return true
}

// Flush empties the cache (server restart, disk scrubbed).
func (c *Cache) Flush() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.entries = make(map[naming.ShadowID]*slot)
	c.bytes = 0
}

// Stats returns a snapshot of the counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := c.stats
	st.Bytes = c.bytes
	st.Entries = len(c.entries)
	return st
}

// Bytes returns the cached content bytes.
func (c *Cache) Bytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.bytes
}

// Len returns the number of cached entries.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Capacity returns the configured byte capacity (<= 0 means unbounded).
func (c *Cache) Capacity() int64 { return c.capacity }
