package cache

import (
	"sync"

	"shadowedit/internal/naming"
	"shadowedit/internal/wire"
)

// Flights coalesces concurrent retrievals of the same shadow file across
// sessions: when several clients notify (or several jobs need) the same
// file version, only the first pull goes out on the wire — the arrival
// feeds every waiter, because the cache and the job waiting-index are
// global. The paper's demand-driven design (§5.2) makes this safe: a pull
// is a server-side optimization, never a protocol obligation, so answering
// one pull satisfies everyone who wanted the content.
//
// Each flight remembers which session issued the pull (the owner). When a
// session dies, ReleaseOwner returns its in-flight fetches so the server
// can re-issue them through a surviving session — otherwise jobs waiting on
// a coalesced pull would hang on a dead connection.
type Flights struct {
	shards [shardCount]flightShard
}

type flightShard struct {
	mu sync.Mutex
	m  map[naming.ShadowID]flight
}

type flight struct {
	ref   wire.FileRef
	want  uint64
	owner uint64
	tc    wire.TraceContext
}

// PendingFetch is one released in-flight retrieval: the file, the version
// that was being fetched when its owning session died, and the trace
// context of the cycle that initiated the fetch — a re-issued pull stays
// part of the original causal trace.
type PendingFetch struct {
	Ref  wire.FileRef
	Want uint64
	TC   wire.TraceContext
}

// NewFlights returns an empty flight table.
func NewFlights() *Flights {
	f := &Flights{}
	for i := range f.shards {
		f.shards[i].m = make(map[naming.ShadowID]flight)
	}
	return f
}

func (f *Flights) shardOf(id naming.ShadowID) *flightShard {
	h := uint64(id)
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	return &f.shards[h&(shardCount-1)]
}

// Begin registers intent to fetch version want of id from session owner,
// attributing the fetch to trace context tc (zero when untraced). It
// reports true when the caller should issue the pull; false when a fetch
// covering this version is already in flight and the pull coalesces.
func (f *Flights) Begin(id naming.ShadowID, ref wire.FileRef, want, owner uint64, tc wire.TraceContext) bool {
	sh := f.shardOf(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if fl, ok := sh.m[id]; ok && fl.want >= want {
		return false
	}
	sh.m[id] = flight{ref: ref, want: want, owner: owner, tc: tc}
	return true
}

// Force unconditionally records a fetch, replacing any in-flight entry —
// the forced-full-pull path, where the previous flight's answer proved
// unusable.
func (f *Flights) Force(id naming.ShadowID, ref wire.FileRef, want, owner uint64, tc wire.TraceContext) {
	sh := f.shardOf(id)
	sh.mu.Lock()
	sh.m[id] = flight{ref: ref, want: want, owner: owner, tc: tc}
	sh.mu.Unlock()
}

// Done clears the flight for id once a version at least as new as the one
// being fetched has arrived. An older arrival leaves the flight open.
func (f *Flights) Done(id naming.ShadowID, version uint64) {
	sh := f.shardOf(id)
	sh.mu.Lock()
	if fl, ok := sh.m[id]; ok && fl.want <= version {
		delete(sh.m, id)
	}
	sh.mu.Unlock()
}

// Release removes the flight for id if the given session still owns it —
// the undo path when a re-homed pull fails on a session that died between
// being chosen and the send, after its own ReleaseOwner pass already ran.
func (f *Flights) Release(id naming.ShadowID, owner uint64) {
	sh := f.shardOf(id)
	sh.mu.Lock()
	if fl, ok := sh.m[id]; ok && fl.owner == owner {
		delete(sh.m, id)
	}
	sh.mu.Unlock()
}

// ReleaseOwner removes every flight owned by a (dead) session and returns
// the fetches that were outstanding so they can be re-issued elsewhere.
func (f *Flights) ReleaseOwner(owner uint64) []PendingFetch {
	var out []PendingFetch
	for i := range f.shards {
		sh := &f.shards[i]
		sh.mu.Lock()
		for id, fl := range sh.m {
			if fl.owner == owner {
				out = append(out, PendingFetch{Ref: fl.ref, Want: fl.want, TC: fl.tc})
				delete(sh.m, id)
			}
		}
		sh.mu.Unlock()
	}
	return out
}

// Pending reports the version an in-flight fetch of id is waiting for, and
// whether one exists. Cluster peer serving uses it: an owner that is already
// pulling a version at least as new as a peer wants can park the peer's
// request on the arrival instead of declining it.
func (f *Flights) Pending(id naming.ShadowID) (uint64, bool) {
	sh := f.shardOf(id)
	sh.mu.Lock()
	fl, ok := sh.m[id]
	sh.mu.Unlock()
	return fl.want, ok
}

// Len reports the number of in-flight fetches (tests and introspection).
func (f *Flights) Len() int {
	n := 0
	for i := range f.shards {
		sh := &f.shards[i]
		sh.mu.Lock()
		n += len(sh.m)
		sh.mu.Unlock()
	}
	return n
}
