package cache

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"shadowedit/internal/naming"
)

func content(n int, fill byte) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = fill
	}
	return b
}

func TestPutGet(t *testing.T) {
	c := New(1000, LRU)
	if err := c.Put(1, 3, []byte("hello")); err != nil {
		t.Fatal(err)
	}
	e, ok := c.Get(1)
	if !ok {
		t.Fatal("Get missed a stored entry")
	}
	if e.Version != 3 || string(e.Content) != "hello" {
		t.Fatalf("entry = %+v", e)
	}
	if _, ok := c.Get(2); ok {
		t.Fatal("Get hit an absent entry")
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Entries != 1 || st.Bytes != 5 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestPutReplacesVersion(t *testing.T) {
	c := New(1000, LRU)
	if err := c.Put(1, 1, content(100, 'a')); err != nil {
		t.Fatal(err)
	}
	if err := c.Put(1, 2, content(50, 'b')); err != nil {
		t.Fatal(err)
	}
	e, _ := c.Get(1)
	if e.Version != 2 || len(e.Content) != 50 {
		t.Fatalf("entry = v%d len%d, want v2 len50", e.Version, len(e.Content))
	}
	if c.Bytes() != 50 {
		t.Fatalf("Bytes = %d, want 50", c.Bytes())
	}
	if c.Len() != 1 {
		t.Fatalf("Len = %d, want 1", c.Len())
	}
}

func TestPutCopiesContent(t *testing.T) {
	c := New(0, LRU)
	buf := []byte("abc")
	if err := c.Put(1, 1, buf); err != nil {
		t.Fatal(err)
	}
	buf[0] = 'X'
	e, _ := c.Get(1)
	if string(e.Content) != "abc" {
		t.Fatal("Put aliased caller's buffer")
	}
}

func TestLRUEviction(t *testing.T) {
	c := New(300, LRU)
	for id := naming.ShadowID(1); id <= 3; id++ {
		if err := c.Put(id, 1, content(100, byte(id))); err != nil {
			t.Fatal(err)
		}
	}
	// Touch 1 so 2 becomes LRU.
	c.Get(1)
	if err := c.Put(4, 1, content(100, 4)); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Peek(2); ok {
		t.Fatal("LRU entry 2 not evicted")
	}
	for _, id := range []naming.ShadowID{1, 3, 4} {
		if _, ok := c.Peek(id); !ok {
			t.Fatalf("entry %d wrongly evicted", id)
		}
	}
	if c.Stats().Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", c.Stats().Evictions)
	}
}

func TestLargestFirstEviction(t *testing.T) {
	c := New(350, LargestFirst)
	sizes := map[naming.ShadowID]int{1: 200, 2: 50, 3: 100}
	for id, n := range sizes {
		if err := c.Put(id, 1, content(n, byte(id))); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Put(4, 1, content(80, 4)); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Peek(1); ok {
		t.Fatal("largest entry 1 not evicted first")
	}
	for _, id := range []naming.ShadowID{2, 3, 4} {
		if _, ok := c.Peek(id); !ok {
			t.Fatalf("entry %d wrongly evicted", id)
		}
	}
}

func TestPinnedNeverEvicted(t *testing.T) {
	c := New(250, LRU)
	if err := c.Put(1, 1, content(100, 1)); err != nil {
		t.Fatal(err)
	}
	if !c.Pin(1) {
		t.Fatal("Pin failed")
	}
	if err := c.Put(2, 1, content(100, 2)); err != nil {
		t.Fatal(err)
	}
	// Needs 100 more: must evict 2 (LRU would pick 1, but 1 is pinned).
	if err := c.Put(3, 1, content(100, 3)); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Peek(1); !ok {
		t.Fatal("pinned entry evicted")
	}
	if _, ok := c.Peek(2); ok {
		t.Fatal("unpinned entry survived over pinned")
	}

	// With everything pinned the best-effort cache accepts fresh content
	// and briefly exceeds its bound rather than refuse it; the pinned
	// residents survive untouched.
	c.Pin(3)
	if err := c.Put(4, 1, content(200, 4)); err != nil {
		t.Fatalf("Put with all pinned = %v, want best-effort accept", err)
	}
	for _, id := range []naming.ShadowID{1, 3, 4} {
		if _, ok := c.Peek(id); !ok {
			t.Fatalf("entry %d missing after over-bound Put", id)
		}
	}
	if c.Bytes() <= 250 {
		t.Fatalf("Bytes = %d, expected over-bound while all pinned", c.Bytes())
	}
	// Unpin frees entry 1 for eviction; the next bounded Put reclaims it.
	c.Unpin(1)
	if err := c.Put(5, 1, content(100, 5)); err != nil {
		t.Fatalf("Put after Unpin: %v", err)
	}
	if _, ok := c.Peek(1); ok {
		t.Fatal("entry 1 should be evictable after Unpin")
	}
	if _, ok := c.Peek(3); !ok {
		t.Fatal("pinned entry 3 evicted")
	}
}

func TestPinNesting(t *testing.T) {
	c := New(0, LRU)
	if err := c.Put(1, 1, []byte("x")); err != nil {
		t.Fatal(err)
	}
	c.Pin(1)
	c.Pin(1)
	c.Unpin(1)
	// Still pinned once; force-evict is allowed, but policy eviction is
	// not — a tiny cache with its sole entry pinned accepts new content
	// over-bound instead of evicting the pin.
	small := New(1, LRU)
	if err := small.Put(2, 1, []byte("y")); err != nil {
		t.Fatal(err)
	}
	small.Pin(2)
	if err := small.Put(3, 1, []byte("z")); err != nil {
		t.Fatalf("Put = %v, want best-effort accept while sole entry pinned", err)
	}
	if _, ok := small.Peek(2); !ok {
		t.Fatal("pinned entry evicted by over-bound Put")
	}
	small.Unpin(2)
	if err := small.Put(4, 1, []byte("w")); err != nil {
		t.Fatal(err)
	}
	if _, ok := small.Peek(2); ok {
		t.Fatal("unpinned entry survived capacity pressure")
	}
}

func TestPinMissing(t *testing.T) {
	c := New(0, LRU)
	if c.Pin(9) {
		t.Fatal("Pin of absent id succeeded")
	}
	c.Unpin(9) // must not panic
}

func TestContentLargerThanCapacityRejected(t *testing.T) {
	c := New(100, LRU)
	if err := c.Put(1, 1, content(101, 'x')); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("Put = %v, want ErrTooLarge", err)
	}
	if c.Len() != 0 || c.Bytes() != 0 {
		t.Fatalf("cache not empty after rejection: len=%d bytes=%d", c.Len(), c.Bytes())
	}
	if c.Stats().Rejected != 1 {
		t.Fatalf("rejected = %d, want 1", c.Stats().Rejected)
	}
}

func TestOversizeReplacementDropsOldVersion(t *testing.T) {
	// If the new version no longer fits, keeping the stale old version
	// would risk serving outdated content; it must go.
	c := New(100, LRU)
	if err := c.Put(1, 1, content(50, 'a')); err != nil {
		t.Fatal(err)
	}
	if err := c.Put(1, 2, content(200, 'b')); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("Put = %v, want ErrTooLarge", err)
	}
	if _, ok := c.Peek(1); ok {
		t.Fatal("stale version survived oversize replacement")
	}
}

func TestUnboundedCache(t *testing.T) {
	c := New(0, LRU)
	for id := naming.ShadowID(1); id <= 100; id++ {
		if err := c.Put(id, 1, content(1000, byte(id))); err != nil {
			t.Fatal(err)
		}
	}
	if c.Len() != 100 {
		t.Fatalf("Len = %d, want 100", c.Len())
	}
	if c.Stats().Evictions != 0 {
		t.Fatal("unbounded cache evicted")
	}
}

func TestEvictAndFlush(t *testing.T) {
	c := New(0, LRU)
	if err := c.Put(1, 1, []byte("abc")); err != nil {
		t.Fatal(err)
	}
	if !c.Evict(1) {
		t.Fatal("Evict existing returned false")
	}
	if c.Evict(1) {
		t.Fatal("Evict absent returned true")
	}
	if err := c.Put(2, 1, []byte("def")); err != nil {
		t.Fatal(err)
	}
	c.Flush()
	if c.Len() != 0 || c.Bytes() != 0 {
		t.Fatal("Flush left entries behind")
	}
}

func TestPolicyString(t *testing.T) {
	if LRU.String() != "lru" || LargestFirst.String() != "largest-first" {
		t.Fatal("policy names wrong")
	}
	if Policy(9).String() != "policy(9)" {
		t.Fatal("unknown policy name wrong")
	}
}

func TestUnknownPolicyDefaultsToLRU(t *testing.T) {
	c := New(10, Policy(42))
	if c.policy != LRU {
		t.Fatal("unknown policy did not default to LRU")
	}
}

func TestPropertyBytesAccountingUnderRandomOps(t *testing.T) {
	// Invariants under a random op stream: LogicalBytes() equals the sum
	// of stored content lengths, unique bytes never exceed logical bytes,
	// capacity holds whenever nothing is pinned to block eviction, and
	// pinned entries survive policy eviction.
	rng := rand.New(rand.NewSource(99))
	const capacity = 5000
	for _, policy := range []Policy{LRU, LargestFirst} {
		c := New(capacity, policy)
		pinned := make(map[naming.ShadowID]int)
		anyPinned := func() bool {
			for _, n := range pinned {
				if n > 0 {
					return true
				}
			}
			return false
		}
		for op := 0; op < 3000; op++ {
			id := naming.ShadowID(rng.Intn(20) + 1)
			switch rng.Intn(10) {
			case 0:
				if c.Pin(id) {
					pinned[id]++
				}
			case 1:
				if pinned[id] > 0 {
					c.Unpin(id)
					pinned[id]--
				}
			case 2:
				c.Get(id)
			case 3:
				if pinned[id] == 0 {
					if c.Evict(id) {
						// force-evicted
					}
				}
			default:
				size := rng.Intn(1500)
				err := c.Put(id, uint64(op), content(size, byte(id)))
				if err != nil && !errors.Is(err, ErrTooLarge) {
					t.Fatalf("Put: %v", err)
				}
				// Eviction only runs during bounded Puts; with no pins
				// blocking it, the bound must hold afterwards.
				if !anyPinned() && c.Bytes() > capacity {
					t.Fatalf("op %d: bytes %d exceeds capacity with nothing pinned", op, c.Bytes())
				}
			}
			if c.Bytes() > c.LogicalBytes() {
				t.Fatalf("op %d: unique %d exceeds logical %d", op, c.Bytes(), c.LogicalBytes())
			}
			for id, pins := range pinned {
				if pins > 0 {
					if _, ok := c.Peek(id); !ok {
						t.Fatalf("op %d: pinned %d missing", op, id)
					}
				}
			}
		}
		// Recompute the logical byte total from scratch.
		var total int64
		for id := naming.ShadowID(1); id <= 20; id++ {
			if e, ok := c.Peek(id); ok {
				total += int64(len(e.Content))
			}
		}
		if total != c.LogicalBytes() {
			t.Fatalf("%v: bytes accounting drifted: recount=%d, LogicalBytes=%d", policy, total, c.LogicalBytes())
		}
		// Draining the cache must return every chunk to the store.
		c.Flush()
		if c.Bytes() != 0 || c.LogicalBytes() != 0 {
			t.Fatalf("%v: flush left bytes behind: unique=%d logical=%d", policy, c.Bytes(), c.LogicalBytes())
		}
	}
}

func TestConcurrentAccess(t *testing.T) {
	c := New(10000, LRU)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < 500; i++ {
				id := naming.ShadowID(rng.Intn(10) + 1)
				switch rng.Intn(4) {
				case 0:
					_ = c.Put(id, uint64(i), content(rng.Intn(300), byte(g)))
				case 1:
					c.Get(id)
				case 2:
					if c.Pin(id) {
						c.Unpin(id)
					}
				case 3:
					c.Stats()
				}
			}
		}(g)
	}
	wg.Wait()
	if c.Bytes() < 0 || c.Bytes() > c.LogicalBytes() {
		t.Fatalf("bytes out of range after concurrency: unique=%d logical=%d", c.Bytes(), c.LogicalBytes())
	}
	c.Flush()
	if c.Bytes() != 0 || c.LogicalBytes() != 0 {
		t.Fatalf("flush left bytes behind: unique=%d logical=%d", c.Bytes(), c.LogicalBytes())
	}
}

func TestStatsSnapshotIsolated(t *testing.T) {
	c := New(0, LRU)
	if err := c.Put(1, 1, []byte("x")); err != nil {
		t.Fatal(err)
	}
	st := c.Stats()
	st.Hits = 999
	if c.Stats().Hits == 999 {
		t.Fatal("Stats returned a live reference")
	}
}

func ExampleCache() {
	c := New(1<<20, LRU)
	_ = c.Put(1, 1, []byte("version one\n"))
	if e, ok := c.Get(1); ok {
		fmt.Printf("v%d: %s", e.Version, e.Content)
	}
	// Output: v1: version one
}

func TestOversizedPutDoesNotEvictOthers(t *testing.T) {
	// Content that can never fit must be rejected before sacrificing
	// anyone else's entries.
	c := New(100, LRU)
	for id := naming.ShadowID(1); id <= 4; id++ {
		if err := c.Put(id, 1, content(25, byte(id))); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Put(9, 1, content(500, 9)); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("oversized Put = %v, want ErrTooLarge", err)
	}
	if c.Len() != 4 {
		t.Fatalf("oversized Put evicted residents: %d left, want 4", c.Len())
	}
	if c.Stats().Evictions != 0 {
		t.Fatalf("evictions = %d, want 0", c.Stats().Evictions)
	}
}

func TestEvictHookObservesEveryRemoval(t *testing.T) {
	c := New(250, LRU)
	var gone []naming.ShadowID
	c.SetEvictHook(func(id naming.ShadowID) { gone = append(gone, id) })

	// Installs are not removals.
	if err := c.Put(1, 1, content(100, 1)); err != nil {
		t.Fatal(err)
	}
	if err := c.Put(2, 1, content(100, 2)); err != nil {
		t.Fatal(err)
	}
	if len(gone) != 0 {
		t.Fatalf("hook fired on install: %v", gone)
	}
	// Replacement by a newer version is not a removal either.
	if err := c.Put(2, 2, content(100, 3)); err != nil {
		t.Fatal(err)
	}
	if len(gone) != 0 {
		t.Fatalf("hook fired on replacement: %v", gone)
	}

	// Capacity pressure evicts the LRU entry (1).
	if err := c.Put(3, 1, content(100, 4)); err != nil {
		t.Fatal(err)
	}
	// An oversized replacement drops its stale predecessor (3).
	if err := c.Put(3, 2, content(500, 5)); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("oversized Put = %v, want ErrTooLarge", err)
	}
	// Explicit removal (2), then Flush for whatever remains.
	if !c.Evict(2) {
		t.Fatal("Evict(2) reported the entry missing")
	}
	if err := c.Put(4, 1, content(50, 6)); err != nil {
		t.Fatal(err)
	}
	c.Flush()

	want := []naming.ShadowID{1, 3, 2, 4}
	if len(gone) != len(want) {
		t.Fatalf("hook saw %v, want %v", gone, want)
	}
	for i, id := range want {
		if gone[i] != id {
			t.Fatalf("hook saw %v, want %v", gone, want)
		}
	}
}
