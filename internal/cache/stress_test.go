package cache

import (
	"errors"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"shadowedit/internal/naming"
	"shadowedit/internal/wire"
)

// TestStressShardedOps hammers a bounded cache from many goroutines with the
// full operation mix — Put, PutOwned, Get, Peek, Pin/Unpin, forced Evict and
// the occasional Flush — across enough distinct IDs to populate every shard.
// Run with -race this is the striping soundness check; afterwards the atomic
// byte accounting must agree with a from-scratch recount and the capacity
// bound must hold.
func TestStressShardedOps(t *testing.T) {
	const (
		workers  = 16
		opsEach  = 4000
		ids      = 64
		capacity = 64 << 10
	)
	for _, policy := range []Policy{LRU, LargestFirst} {
		c := New(capacity, policy)
		var wg sync.WaitGroup
		for g := 0; g < workers; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(int64(g) * 7919))
				pins := make(map[naming.ShadowID]int)
				for i := 0; i < opsEach; i++ {
					id := naming.ShadowID(rng.Intn(ids) + 1)
					switch rng.Intn(12) {
					case 0:
						if c.Pin(id) {
							pins[id]++
						}
					case 1:
						if pins[id] > 0 {
							c.Unpin(id)
							pins[id]--
						}
					case 2:
						c.Get(id)
					case 3:
						c.Peek(id)
					case 4:
						if pins[id] == 0 {
							c.Evict(id)
						}
					case 5:
						if g == 0 && i%1000 == 999 {
							c.Flush()
						}
					case 6:
						err := c.PutOwned(id, uint64(i), content(rng.Intn(2048), byte(id)))
						if err != nil && !errors.Is(err, ErrTooLarge) {
							t.Errorf("PutOwned: %v", err)
							return
						}
					default:
						err := c.Put(id, uint64(i), content(rng.Intn(2048), byte(id)))
						if err != nil && !errors.Is(err, ErrTooLarge) {
							t.Errorf("Put: %v", err)
							return
						}
					}
				}
				// Release every pin this goroutine still holds so the final
				// state has no pinned entries left behind.
				for id, n := range pins {
					for ; n > 0; n-- {
						c.Unpin(id)
					}
				}
			}(g)
		}
		wg.Wait()

		// Eviction is best-effort (a transient pin can block it during the
		// run), but with every pin released a final bounded Put would
		// restore the bound; here we only require unique <= logical and an
		// exact logical recount.
		if c.Bytes() > c.LogicalBytes() {
			t.Fatalf("%v: unique %d exceeds logical %d", policy, c.Bytes(), c.LogicalBytes())
		}
		var recount int64
		for id := naming.ShadowID(1); id <= ids; id++ {
			if e, ok := c.Peek(id); ok {
				recount += int64(len(e.Content))
			}
		}
		if recount != c.LogicalBytes() {
			t.Fatalf("%v: byte accounting drifted: recount=%d, LogicalBytes=%d", policy, recount, c.LogicalBytes())
		}
		st := c.Stats()
		if st.Bytes != c.Bytes() || st.Entries != c.Len() {
			t.Fatalf("%v: stats disagree with cache: %+v", policy, st)
		}
		// Draining the cache must return every chunk to the store.
		c.Flush()
		if c.Bytes() != 0 || c.LogicalBytes() != 0 {
			t.Fatalf("%v: flush left bytes behind: unique=%d logical=%d", policy, c.Bytes(), c.LogicalBytes())
		}
	}
}

// TestStressUnboundedOps is the same mix against an unbounded cache, which
// takes the pure shard-local fast path (no eviction mutex at all).
func TestStressUnboundedOps(t *testing.T) {
	const workers, opsEach, ids = 16, 3000, 64
	c := New(0, LRU)
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g) * 104729))
			for i := 0; i < opsEach; i++ {
				id := naming.ShadowID(rng.Intn(ids) + 1)
				switch rng.Intn(5) {
				case 0:
					c.Get(id)
				case 1:
					if c.Pin(id) {
						c.Unpin(id)
					}
				case 2:
					c.Evict(id)
				default:
					_ = c.Put(id, uint64(i), content(rng.Intn(1024), byte(id)))
				}
			}
		}(g)
	}
	wg.Wait()
	var recount int64
	for id := naming.ShadowID(1); id <= ids; id++ {
		if e, ok := c.Peek(id); ok {
			recount += int64(len(e.Content))
		}
	}
	if recount != c.LogicalBytes() {
		t.Fatalf("byte accounting drifted: recount=%d, LogicalBytes=%d", recount, c.LogicalBytes())
	}
	if c.Bytes() > c.LogicalBytes() {
		t.Fatalf("unique %d exceeds logical %d", c.Bytes(), c.LogicalBytes())
	}
}

func flightRef(i int) wire.FileRef {
	return wire.FileRef{Domain: "d", FileID: string(rune('a' + i%26))}
}

func TestFlightsBeginCoalesces(t *testing.T) {
	f := NewFlights()
	ref := flightRef(0)
	if !f.Begin(1, ref, 3, 10, wire.TraceContext{}) {
		t.Fatal("first Begin should win")
	}
	if f.Begin(1, ref, 3, 11, wire.TraceContext{}) {
		t.Fatal("same-version Begin should coalesce")
	}
	if f.Begin(1, ref, 2, 11, wire.TraceContext{}) {
		t.Fatal("older-version Begin should coalesce behind a newer fetch")
	}
	if !f.Begin(1, ref, 5, 11, wire.TraceContext{}) {
		t.Fatal("newer-version Begin should supersede the in-flight fetch")
	}
	// An arrival older than the in-flight want leaves the flight open.
	f.Done(1, 4)
	if f.Len() != 1 {
		t.Fatalf("Len after stale Done = %d, want 1", f.Len())
	}
	f.Done(1, 5)
	if f.Len() != 0 {
		t.Fatalf("Len after Done = %d, want 0", f.Len())
	}
	if !f.Begin(1, ref, 3, 12, wire.TraceContext{}) {
		t.Fatal("Begin after Done should win again")
	}
}

func TestFlightsForceReplaces(t *testing.T) {
	f := NewFlights()
	ref := flightRef(1)
	if !f.Begin(2, ref, 9, 1, wire.TraceContext{}) {
		t.Fatal("Begin should win")
	}
	// Force re-homes the fetch at a lower version (the full-repull path).
	f.Force(2, ref, 1, 2, wire.TraceContext{})
	f.Done(2, 1)
	if f.Len() != 0 {
		t.Fatalf("Len = %d, want 0: Force should have replaced want", f.Len())
	}
}

// TestFlightsConcurrentSingleWinner races many sessions into Begin for the
// same file version: exactly one may be told to issue the pull.
func TestFlightsConcurrentSingleWinner(t *testing.T) {
	f := NewFlights()
	for round := 0; round < 64; round++ {
		id := naming.ShadowID(round + 1)
		var winners atomic.Int32
		var wg sync.WaitGroup
		for g := 0; g < 16; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				if f.Begin(id, flightRef(round), 1, uint64(g), wire.TraceContext{}) {
					winners.Add(1)
				}
			}(g)
		}
		wg.Wait()
		if winners.Load() != 1 {
			t.Fatalf("round %d: %d winners, want exactly 1", round, winners.Load())
		}
	}
}

func TestFlightsReleaseOwner(t *testing.T) {
	f := NewFlights()
	for i := 0; i < 10; i++ {
		owner := uint64(1 + i%2)
		if !f.Begin(naming.ShadowID(i+1), flightRef(i), uint64(i+1), owner, wire.TraceContext{}) {
			t.Fatalf("Begin %d should win", i)
		}
	}
	released := f.ReleaseOwner(1)
	if len(released) != 5 {
		t.Fatalf("ReleaseOwner(1) returned %d fetches, want 5", len(released))
	}
	for _, p := range released {
		if p.Want == 0 || p.Ref.FileID == "" {
			t.Fatalf("released fetch incomplete: %+v", p)
		}
	}
	if f.Len() != 5 {
		t.Fatalf("Len after release = %d, want 5", f.Len())
	}
	if again := f.ReleaseOwner(1); len(again) != 0 {
		t.Fatalf("second ReleaseOwner(1) returned %d fetches, want 0", len(again))
	}
}
