// Package env implements the shadow environment (§6.3.1): "a database that
// contains the information about the status of all the jobs submitted and
// customization information for each user."
//
// The environment is set up automatically with defaults, and the user may
// customize it (default host, editor, version retention, delta algorithm,
// compression, output routing). It persists as a simple line-oriented
// key=value text format so it survives across sessions and is editable by
// hand, in the spirit of the original UNIX prototype.
package env

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"shadowedit/internal/diff"
)

// ErrBadEnvironment reports an unparsable or invalid environment.
var ErrBadEnvironment = errors.New("env: bad environment")

// Environment is one user's customization record.
type Environment struct {
	// User is the owner.
	User string
	// DefaultHost is the supercomputer used when submit names none.
	DefaultHost string
	// Editor is the encapsulated editor command ("specified through an
	// environment variable" in the prototype).
	Editor string
	// RetainVersions bounds old versions kept beyond protocol needs.
	RetainVersions int
	// Algorithm selects the differencing algorithm.
	Algorithm diff.Algorithm
	// Compress enables the compression layer on bulk transfers.
	Compress bool
	// OutputFile and ErrorFile are the default result file names; %J
	// expands to the job id.
	OutputFile string
	ErrorFile  string
	// WantOutputDelta enables reverse shadow processing of job output.
	WantOutputDelta bool
}

// Default returns the automatic environment for a user: sensible behaviour
// with no setup, per the transparency objective.
func Default(user string) Environment {
	return Environment{
		User:            user,
		DefaultHost:     "",
		Editor:          "ed",
		RetainVersions:  1,
		Algorithm:       diff.HuntMcIlroy,
		Compress:        false,
		OutputFile:      "job-%J.out",
		ErrorFile:       "job-%J.err",
		WantOutputDelta: false,
	}
}

// Validate checks internal consistency.
func (e Environment) Validate() error {
	if e.User == "" {
		return fmt.Errorf("%w: empty user", ErrBadEnvironment)
	}
	if e.RetainVersions < 0 {
		return fmt.Errorf("%w: negative retention", ErrBadEnvironment)
	}
	switch e.Algorithm {
	case diff.HuntMcIlroy, diff.Myers, diff.TichyBlockMove:
	default:
		return fmt.Errorf("%w: unknown algorithm %d", ErrBadEnvironment, e.Algorithm)
	}
	return nil
}

// ExpandOutput renders the OutputFile template for a job id.
func (e Environment) ExpandOutput(job uint64) string {
	return expand(e.OutputFile, job)
}

// ExpandError renders the ErrorFile template for a job id.
func (e Environment) ExpandError(job uint64) string {
	return expand(e.ErrorFile, job)
}

func expand(tmpl string, job uint64) string {
	return strings.ReplaceAll(tmpl, "%J", strconv.FormatUint(job, 10))
}

// Marshal renders the environment in its text form.
func (e Environment) Marshal() []byte {
	kv := map[string]string{
		"user":         e.User,
		"default-host": e.DefaultHost,
		"editor":       e.Editor,
		"retain":       strconv.Itoa(e.RetainVersions),
		"algorithm":    e.Algorithm.String(),
		"compress":     strconv.FormatBool(e.Compress),
		"output-file":  e.OutputFile,
		"error-file":   e.ErrorFile,
		"output-delta": strconv.FormatBool(e.WantOutputDelta),
	}
	keys := make([]string, 0, len(kv))
	for k := range kv {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var sb strings.Builder
	sb.WriteString("# shadow environment\n")
	for _, k := range keys {
		fmt.Fprintf(&sb, "%s=%s\n", k, kv[k])
	}
	return []byte(sb.String())
}

// Parse reads the text form back. Unknown keys are rejected so typos do not
// silently disable customization; missing keys keep their defaults.
func Parse(data []byte) (Environment, error) {
	e := Default("")
	for ln, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		key, value, found := strings.Cut(line, "=")
		if !found {
			return Environment{}, fmt.Errorf("%w: line %d: no '='", ErrBadEnvironment, ln+1)
		}
		key = strings.TrimSpace(key)
		value = strings.TrimSpace(value)
		switch key {
		case "user":
			e.User = value
		case "default-host":
			e.DefaultHost = value
		case "editor":
			e.Editor = value
		case "retain":
			n, err := strconv.Atoi(value)
			if err != nil {
				return Environment{}, fmt.Errorf("%w: retain: %v", ErrBadEnvironment, err)
			}
			e.RetainVersions = n
		case "algorithm":
			alg, err := ParseAlgorithm(value)
			if err != nil {
				return Environment{}, err
			}
			e.Algorithm = alg
		case "compress":
			b, err := strconv.ParseBool(value)
			if err != nil {
				return Environment{}, fmt.Errorf("%w: compress: %v", ErrBadEnvironment, err)
			}
			e.Compress = b
		case "output-file":
			e.OutputFile = value
		case "error-file":
			e.ErrorFile = value
		case "output-delta":
			b, err := strconv.ParseBool(value)
			if err != nil {
				return Environment{}, fmt.Errorf("%w: output-delta: %v", ErrBadEnvironment, err)
			}
			e.WantOutputDelta = b
		default:
			return Environment{}, fmt.Errorf("%w: unknown key %q", ErrBadEnvironment, key)
		}
	}
	if err := e.Validate(); err != nil {
		return Environment{}, err
	}
	return e, nil
}

// ParseAlgorithm maps an algorithm name to its identifier.
func ParseAlgorithm(name string) (diff.Algorithm, error) {
	switch strings.ToLower(name) {
	case "hunt-mcilroy", "hm", "diff":
		return diff.HuntMcIlroy, nil
	case "myers", "miller-myers":
		return diff.Myers, nil
	case "tichy", "block-move":
		return diff.TichyBlockMove, nil
	default:
		return 0, fmt.Errorf("%w: unknown algorithm %q", ErrBadEnvironment, name)
	}
}
