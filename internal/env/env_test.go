package env

import (
	"errors"
	"strings"
	"testing"

	"shadowedit/internal/diff"
)

func TestDefaultValid(t *testing.T) {
	e := Default("comer")
	if err := e.Validate(); err != nil {
		t.Fatalf("default invalid: %v", err)
	}
	if e.Algorithm != diff.HuntMcIlroy {
		t.Error("default algorithm should be hunt-mcilroy (the prototype's diff)")
	}
	if e.RetainVersions < 0 {
		t.Error("negative default retention")
	}
}

func TestMarshalParseRoundTrip(t *testing.T) {
	e := Default("yavatkar")
	e.DefaultHost = "cyber205"
	e.Editor = "vi"
	e.RetainVersions = 3
	e.Algorithm = diff.TichyBlockMove
	e.Compress = true
	e.OutputFile = "res-%J.txt"
	e.ErrorFile = "res-%J.err"
	e.WantOutputDelta = true

	got, err := Parse(e.Marshal())
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if got != e {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, e)
	}
}

func TestParsePartialKeepsDefaults(t *testing.T) {
	got, err := Parse([]byte("user=griffioen\ndefault-host=cray\n"))
	if err != nil {
		t.Fatal(err)
	}
	if got.User != "griffioen" || got.DefaultHost != "cray" {
		t.Fatalf("parsed = %+v", got)
	}
	def := Default("")
	if got.Editor != def.Editor || got.Algorithm != def.Algorithm {
		t.Fatal("unspecified keys lost their defaults")
	}
}

func TestParseIgnoresCommentsAndBlanks(t *testing.T) {
	text := "# a comment\n\nuser=x\n   \n# another\n"
	got, err := Parse([]byte(text))
	if err != nil {
		t.Fatal(err)
	}
	if got.User != "x" {
		t.Fatalf("user = %q", got.User)
	}
}

func TestParseErrors(t *testing.T) {
	tests := []struct {
		name string
		give string
	}{
		{name: "no equals", give: "user=x\njunk line\n"},
		{name: "unknown key", give: "user=x\ncolour=blue\n"},
		{name: "bad retain", give: "user=x\nretain=lots\n"},
		{name: "negative retain", give: "user=x\nretain=-2\n"},
		{name: "bad bool", give: "user=x\ncompress=sometimes\n"},
		{name: "bad algorithm", give: "user=x\nalgorithm=psychic\n"},
		{name: "empty user", give: "user=\n"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := Parse([]byte(tt.give)); !errors.Is(err, ErrBadEnvironment) {
				t.Fatalf("Parse = %v, want ErrBadEnvironment", err)
			}
		})
	}
}

func TestParseAlgorithmAliases(t *testing.T) {
	tests := []struct {
		give string
		want diff.Algorithm
	}{
		{"hunt-mcilroy", diff.HuntMcIlroy},
		{"HM", diff.HuntMcIlroy},
		{"diff", diff.HuntMcIlroy},
		{"myers", diff.Myers},
		{"Miller-Myers", diff.Myers},
		{"tichy", diff.TichyBlockMove},
		{"block-move", diff.TichyBlockMove},
	}
	for _, tt := range tests {
		got, err := ParseAlgorithm(tt.give)
		if err != nil || got != tt.want {
			t.Errorf("ParseAlgorithm(%q) = (%v, %v), want %v", tt.give, got, err, tt.want)
		}
	}
	if _, err := ParseAlgorithm("nope"); err == nil {
		t.Error("ParseAlgorithm accepted garbage")
	}
}

func TestExpandTemplates(t *testing.T) {
	e := Default("u")
	if got := e.ExpandOutput(17); got != "job-17.out" {
		t.Errorf("ExpandOutput = %q", got)
	}
	if got := e.ExpandError(17); got != "job-17.err" {
		t.Errorf("ExpandError = %q", got)
	}
	e.OutputFile = "fixed.out"
	if got := e.ExpandOutput(17); got != "fixed.out" {
		t.Errorf("template without %%J = %q", got)
	}
}

func TestValidateRejectsBadAlgorithm(t *testing.T) {
	e := Default("u")
	e.Algorithm = diff.Algorithm(77)
	if err := e.Validate(); !errors.Is(err, ErrBadEnvironment) {
		t.Fatalf("Validate = %v, want ErrBadEnvironment", err)
	}
}

func TestMarshalIsStableAndCommented(t *testing.T) {
	e := Default("u")
	a, b := string(e.Marshal()), string(e.Marshal())
	if a != b {
		t.Fatal("Marshal not deterministic")
	}
	if !strings.HasPrefix(a, "#") {
		t.Fatal("Marshal output missing header comment")
	}
}
