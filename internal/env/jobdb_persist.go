package env

import (
	"bufio"
	"encoding/base64"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"

	"shadowedit/internal/wire"
)

// Persistence for the job database: the shadow environment "contains the
// information about the status of all the jobs submitted", which the
// prototype kept on disk so a user could query job status across sessions.
// The text format is line oriented, one job per record, editable by hand
// like the rest of the environment.

// ErrCorruptJobDB reports an unreadable serialized job database.
var ErrCorruptJobDB = errors.New("env: corrupt job database")

// Save serializes the database.
func (db *JobDB) Save(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString("# shadow job database v1\n"); err != nil {
		return err
	}
	for _, rec := range db.List() {
		fmt.Fprintf(bw, "job %s %d\n", rec.Server, rec.ID)
		fmt.Fprintf(bw, "  state %d\n", rec.State)
		if rec.Detail != "" {
			fmt.Fprintf(bw, "  detail %s\n", encodeField(rec.Detail))
		}
		if rec.OutputFile != "" {
			fmt.Fprintf(bw, "  output-file %s\n", encodeField(rec.OutputFile))
		}
		if rec.ErrorFile != "" {
			fmt.Fprintf(bw, "  error-file %s\n", encodeField(rec.ErrorFile))
		}
		if rec.Delivered {
			fmt.Fprintf(bw, "  exit %d\n", rec.ExitCode)
			fmt.Fprintf(bw, "  stdout %s\n", base64.StdEncoding.EncodeToString(rec.Stdout))
			fmt.Fprintf(bw, "  stderr %s\n", base64.StdEncoding.EncodeToString(rec.Stderr))
			fmt.Fprintf(bw, "  delivered\n")
		}
	}
	return bw.Flush()
}

// encodeField makes a string single-line safe.
func encodeField(s string) string {
	return base64.StdEncoding.EncodeToString([]byte(s))
}

func decodeField(s string) (string, error) {
	b, err := base64.StdEncoding.DecodeString(s)
	if err != nil {
		return "", fmt.Errorf("%w: %v", ErrCorruptJobDB, err)
	}
	return string(b), nil
}

// LoadJobDB restores a database saved with Save.
func LoadJobDB(r io.Reader) (*JobDB, error) {
	db := NewJobDB()
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16<<20)
	var cur *JobRecord
	flush := func() {
		if cur != nil {
			db.Record(*cur)
			cur = nil
		}
	}
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		key, rest, _ := strings.Cut(line, " ")
		switch key {
		case "job":
			flush()
			server, idStr, ok := strings.Cut(rest, " ")
			if !ok {
				return nil, fmt.Errorf("%w: line %d: bad job header", ErrCorruptJobDB, lineNo)
			}
			id, err := strconv.ParseUint(idStr, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("%w: line %d: %v", ErrCorruptJobDB, lineNo, err)
			}
			cur = &JobRecord{Server: server, ID: id}
		case "state", "detail", "output-file", "error-file", "exit", "stdout", "stderr", "delivered":
			if cur == nil {
				return nil, fmt.Errorf("%w: line %d: field outside job record", ErrCorruptJobDB, lineNo)
			}
			if err := applyField(cur, key, rest); err != nil {
				return nil, fmt.Errorf("%w: line %d: %v", ErrCorruptJobDB, lineNo, err)
			}
		default:
			return nil, fmt.Errorf("%w: line %d: unknown field %q", ErrCorruptJobDB, lineNo, key)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorruptJobDB, err)
	}
	flush()
	return db, nil
}

func applyField(rec *JobRecord, key, rest string) error {
	switch key {
	case "state":
		v, err := strconv.ParseUint(rest, 10, 8)
		if err != nil {
			return err
		}
		rec.State = wire.JobState(v)
	case "detail":
		s, err := decodeField(rest)
		if err != nil {
			return err
		}
		rec.Detail = s
	case "output-file":
		s, err := decodeField(rest)
		if err != nil {
			return err
		}
		rec.OutputFile = s
	case "error-file":
		s, err := decodeField(rest)
		if err != nil {
			return err
		}
		rec.ErrorFile = s
	case "exit":
		v, err := strconv.ParseInt(rest, 10, 32)
		if err != nil {
			return err
		}
		rec.ExitCode = int32(v)
	case "stdout":
		b, err := base64.StdEncoding.DecodeString(rest)
		if err != nil {
			return err
		}
		rec.Stdout = b
	case "stderr":
		b, err := base64.StdEncoding.DecodeString(rest)
		if err != nil {
			return err
		}
		rec.Stderr = b
	case "delivered":
		rec.Delivered = true
	}
	return nil
}
