package env

import (
	"sort"
	"sync"

	"shadowedit/internal/wire"
)

// JobRecord is the client-side record of one submitted job. "The client
// maintains the information on the status of all the jobs" (§6.2).
type JobRecord struct {
	// Server is the supercomputer host the job was submitted to (a user
	// may access more than one).
	Server string
	// ID is the server-assigned job identifier.
	ID uint64
	// State is the last known lifecycle state.
	State wire.JobState
	// Detail is the server's last status text.
	Detail string
	// OutputFile and ErrorFile are where results are stored locally.
	OutputFile string
	ErrorFile  string
	// Stdout, Stderr and ExitCode hold the delivered results once the
	// job completes.
	Stdout   []byte
	Stderr   []byte
	ExitCode int32
	// Delivered marks that output arrived and was acknowledged.
	Delivered bool
}

// jobKey identifies a job across servers.
type jobKey struct {
	server string
	id     uint64
}

// JobDB tracks every job a client has submitted, across all servers.
type JobDB struct {
	mu   sync.Mutex
	jobs map[jobKey]*JobRecord
}

// NewJobDB returns an empty database.
func NewJobDB() *JobDB {
	return &JobDB{jobs: make(map[jobKey]*JobRecord)}
}

// Record stores a new job entry (typically at submit time). If output for
// the job was already delivered — possible when a job with no inputs
// finishes before the submitter's bookkeeping runs — the delivered results
// are preserved and only the metadata fields are filled in.
func (db *JobDB) Record(rec JobRecord) {
	db.mu.Lock()
	defer db.mu.Unlock()
	k := jobKey{server: rec.Server, id: rec.ID}
	if old, ok := db.jobs[k]; ok && old.Delivered {
		old.OutputFile = rec.OutputFile
		old.ErrorFile = rec.ErrorFile
		return
	}
	cp := rec
	db.jobs[k] = &cp
}

// UpdateState records a state transition reported by the server.
func (db *JobDB) UpdateState(server string, id uint64, state wire.JobState, detail string) {
	db.mu.Lock()
	defer db.mu.Unlock()
	k := jobKey{server: server, id: id}
	rec, ok := db.jobs[k]
	if !ok {
		rec = &JobRecord{Server: server, ID: id}
		db.jobs[k] = rec
	}
	rec.State = state
	rec.Detail = detail
}

// SetOutput stores a job's delivered results and marks it delivered.
func (db *JobDB) SetOutput(server string, id uint64, state wire.JobState, exitCode int32, stdout, stderr []byte) {
	db.mu.Lock()
	defer db.mu.Unlock()
	k := jobKey{server: server, id: id}
	rec, ok := db.jobs[k]
	if !ok {
		rec = &JobRecord{Server: server, ID: id}
		db.jobs[k] = rec
	}
	rec.State = state
	rec.ExitCode = exitCode
	rec.Stdout = append([]byte(nil), stdout...)
	rec.Stderr = append([]byte(nil), stderr...)
	rec.Delivered = true
}

// Get returns a copy of the record for (server, id).
func (db *JobDB) Get(server string, id uint64) (JobRecord, bool) {
	db.mu.Lock()
	defer db.mu.Unlock()
	rec, ok := db.jobs[jobKey{server: server, id: id}]
	if !ok {
		return JobRecord{}, false
	}
	return cloneRecord(rec), true
}

// List returns copies of all records, ordered by server then id.
func (db *JobDB) List() []JobRecord {
	db.mu.Lock()
	defer db.mu.Unlock()
	out := make([]JobRecord, 0, len(db.jobs))
	for _, rec := range db.jobs {
		out = append(out, cloneRecord(rec))
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Server != out[j].Server {
			return out[i].Server < out[j].Server
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// Pending returns the jobs not yet in a terminal state.
func (db *JobDB) Pending() []JobRecord {
	all := db.List()
	var out []JobRecord
	for _, rec := range all {
		if !rec.State.Terminal() {
			out = append(out, rec)
		}
	}
	return out
}

func cloneRecord(rec *JobRecord) JobRecord {
	cp := *rec
	cp.Stdout = append([]byte(nil), rec.Stdout...)
	cp.Stderr = append([]byte(nil), rec.Stderr...)
	return cp
}
