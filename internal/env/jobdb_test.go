package env

import (
	"sync"
	"testing"

	"shadowedit/internal/wire"
)

func TestJobDBRecordAndGet(t *testing.T) {
	db := NewJobDB()
	db.Record(JobRecord{Server: "s1", ID: 1, State: wire.JobQueued, OutputFile: "a.out"})
	rec, ok := db.Get("s1", 1)
	if !ok || rec.State != wire.JobQueued || rec.OutputFile != "a.out" {
		t.Fatalf("Get = %+v, %v", rec, ok)
	}
	if _, ok := db.Get("s1", 2); ok {
		t.Fatal("Get found unknown job")
	}
	if _, ok := db.Get("s2", 1); ok {
		t.Fatal("Get crossed servers")
	}
}

func TestJobDBUpdateState(t *testing.T) {
	db := NewJobDB()
	db.Record(JobRecord{Server: "s", ID: 1, State: wire.JobQueued})
	db.UpdateState("s", 1, wire.JobRunning, "cpu 2")
	rec, _ := db.Get("s", 1)
	if rec.State != wire.JobRunning || rec.Detail != "cpu 2" {
		t.Fatalf("rec = %+v", rec)
	}
	// Update for an unseen job creates a stub (server knows best).
	db.UpdateState("s", 9, wire.JobDone, "")
	if rec, ok := db.Get("s", 9); !ok || rec.State != wire.JobDone {
		t.Fatalf("stub rec = %+v, %v", rec, ok)
	}
}

func TestJobDBSetOutput(t *testing.T) {
	db := NewJobDB()
	db.Record(JobRecord{Server: "s", ID: 1, State: wire.JobRunning})
	db.SetOutput("s", 1, wire.JobDone, 0, []byte("results\n"), []byte(""))
	rec, _ := db.Get("s", 1)
	if !rec.Delivered || rec.State != wire.JobDone || string(rec.Stdout) != "results\n" {
		t.Fatalf("rec = %+v", rec)
	}
}

func TestJobDBListOrdering(t *testing.T) {
	db := NewJobDB()
	db.Record(JobRecord{Server: "beta", ID: 2})
	db.Record(JobRecord{Server: "alpha", ID: 9})
	db.Record(JobRecord{Server: "beta", ID: 1})
	got := db.List()
	if len(got) != 3 {
		t.Fatalf("List len = %d", len(got))
	}
	if got[0].Server != "alpha" || got[1].ID != 1 || got[2].ID != 2 {
		t.Fatalf("List order = %+v", got)
	}
}

func TestJobDBPending(t *testing.T) {
	db := NewJobDB()
	db.Record(JobRecord{Server: "s", ID: 1, State: wire.JobQueued})
	db.Record(JobRecord{Server: "s", ID: 2, State: wire.JobDone})
	db.Record(JobRecord{Server: "s", ID: 3, State: wire.JobRunning})
	db.Record(JobRecord{Server: "s", ID: 4, State: wire.JobFailed})
	pending := db.Pending()
	if len(pending) != 2 || pending[0].ID != 1 || pending[1].ID != 3 {
		t.Fatalf("Pending = %+v", pending)
	}
}

func TestJobDBGetReturnsCopy(t *testing.T) {
	db := NewJobDB()
	db.SetOutput("s", 1, wire.JobDone, 0, []byte("abc"), nil)
	rec, _ := db.Get("s", 1)
	rec.Stdout[0] = 'X'
	again, _ := db.Get("s", 1)
	if string(again.Stdout) != "abc" {
		t.Fatal("Get aliases stored output")
	}
}

func TestJobDBConcurrent(t *testing.T) {
	db := NewJobDB()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				id := uint64(i % 10)
				db.Record(JobRecord{Server: "s", ID: id, State: wire.JobQueued})
				db.UpdateState("s", id, wire.JobRunning, "")
				db.Get("s", id)
				db.List()
			}
		}(g)
	}
	wg.Wait()
	if got := len(db.List()); got != 10 {
		t.Fatalf("List len = %d, want 10", got)
	}
}
