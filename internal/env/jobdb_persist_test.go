package env

import (
	"bytes"
	"errors"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"shadowedit/internal/wire"
)

func TestJobDBSaveLoadRoundTrip(t *testing.T) {
	db := NewJobDB()
	db.Record(JobRecord{
		Server: "super", ID: 1, State: wire.JobQueued,
		OutputFile: "out with spaces.txt", ErrorFile: "e\nwith newline",
		Detail: "collecting",
	})
	db.SetOutput("super", 2, wire.JobDone, 3, []byte("result\nbytes\x00binary"), []byte("warnings\n"))
	db.Record(JobRecord{Server: "cray", ID: 1, State: wire.JobRunning})

	var buf bytes.Buffer
	if err := db.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadJobDB(&buf)
	if err != nil {
		t.Fatal(err)
	}
	want := db.List()
	got := loaded.List()
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, want)
	}
}

func TestJobDBSaveLoadEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := NewJobDB().Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadJobDB(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded.List()) != 0 {
		t.Fatal("empty db loaded non-empty")
	}
}

func TestLoadJobDBErrors(t *testing.T) {
	tests := []struct {
		name string
		give string
	}{
		{name: "field outside record", give: "state 1\n"},
		{name: "bad job header", give: "job onlyserver\n"},
		{name: "bad id", give: "job s abc\n"},
		{name: "unknown field", give: "job s 1\ncolour blue\n"},
		{name: "bad state", give: "job s 1\nstate x\n"},
		{name: "bad base64", give: "job s 1\ndetail ***\n"},
		{name: "bad exit", give: "job s 1\nexit zero\n"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := LoadJobDB(strings.NewReader(tt.give)); !errors.Is(err, ErrCorruptJobDB) {
				t.Fatalf("LoadJobDB = %v, want ErrCorruptJobDB", err)
			}
		})
	}
}

func TestLoadJobDBNeverPanics(t *testing.T) {
	f := func(b []byte) bool {
		_, _ = LoadJobDB(bytes.NewReader(b))
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func TestJobDBSaveIsCommentedText(t *testing.T) {
	db := NewJobDB()
	db.Record(JobRecord{Server: "s", ID: 1, State: wire.JobQueued})
	var buf bytes.Buffer
	if err := db.Save(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "#") || !strings.Contains(out, "job s 1") {
		t.Fatalf("save format:\n%s", out)
	}
}
