package vcs

import (
	"bytes"
	"testing"
)

// FuzzLoad explores the store loader with arbitrary streams: reject or
// accept without panicking; accepted stores must round trip through Save.
func FuzzLoad(f *testing.F) {
	s := NewStore(2)
	s.Commit(ref, []byte("v1\n"))
	s.Commit(ref, []byte("v2\n"))
	s.Ack(ref, 2)
	var buf bytes.Buffer
	_ = s.Save(&buf)
	f.Add(buf.Bytes())
	f.Add([]byte("SVS1"))
	f.Fuzz(func(t *testing.T, data []byte) {
		loaded, err := Load(bytes.NewReader(data), 1)
		if err != nil {
			return
		}
		var out bytes.Buffer
		if err := loaded.Save(&out); err != nil {
			t.Fatalf("Save of accepted store: %v", err)
		}
		if _, err := Load(&out, 1); err != nil {
			t.Fatalf("re-Load of saved store: %v", err)
		}
	})
}
