package vcs

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
	"testing/quick"

	"shadowedit/internal/diff"
	"shadowedit/internal/wire"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	s := NewStore(2)
	refs := []wire.FileRef{
		{Domain: "d", FileID: "h:/a"},
		{Domain: "d", FileID: "h:/b"},
	}
	for i := 1; i <= 4; i++ {
		for _, r := range refs {
			s.Commit(r, []byte(fmt.Sprintf("%s content v%d\n", r.FileID, i)))
		}
	}
	s.Ack(refs[0], 3)

	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf, 2)
	if err != nil {
		t.Fatal(err)
	}

	for _, r := range refs {
		wantVers := s.Versions(r)
		gotVers := loaded.Versions(r)
		if fmt.Sprint(gotVers) != fmt.Sprint(wantVers) {
			t.Fatalf("%s versions = %v, want %v", r, gotVers, wantVers)
		}
		for _, v := range wantVers {
			orig, err := s.Get(r, v)
			if err != nil {
				t.Fatal(err)
			}
			got, err := loaded.Get(r, v)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got.Content, orig.Content) || got.Sum != orig.Sum {
				t.Fatalf("%s v%d content mismatch after load", r, v)
			}
		}
	}
	if loaded.Acked(refs[0]) != 3 || loaded.Acked(refs[1]) != 0 {
		t.Fatalf("acked state lost: %d, %d", loaded.Acked(refs[0]), loaded.Acked(refs[1]))
	}
	// The loaded store can still produce deltas from the acked base.
	if _, err := loaded.DeltaFrom(refs[0], 3, 4, diff.HuntMcIlroy); err != nil {
		t.Fatalf("DeltaFrom after load: %v", err)
	}
	// And committing continues from the right version number.
	v, changed := loaded.Commit(refs[0], []byte("new content\n"))
	if !changed || v != 5 {
		t.Fatalf("post-load commit = v%d (changed %v), want v5", v, changed)
	}
}

func TestSaveLoadEmptyStore(t *testing.T) {
	var buf bytes.Buffer
	if err := NewStore(1).Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded.Files()) != 0 {
		t.Fatal("empty store loaded non-empty")
	}
}

func TestLoadRejectsCorruption(t *testing.T) {
	s := NewStore(1)
	s.Commit(ref, []byte("abc\n"))
	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		t.Fatal(err)
	}
	valid := buf.Bytes()

	tests := []struct {
		name string
		give []byte
	}{
		{name: "empty", give: nil},
		{name: "bad magic", give: []byte("XXXX")},
		{name: "truncated", give: valid[:len(valid)-2]},
		{name: "truncated header", give: valid[:5]},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := Load(bytes.NewReader(tt.give), 1); !errors.Is(err, ErrCorruptStore) {
				t.Fatalf("Load = %v, want ErrCorruptStore", err)
			}
		})
	}
}

func TestLoadNeverPanics(t *testing.T) {
	f := func(b []byte) bool {
		_, _ = Load(bytes.NewReader(b), 1)
		_, _ = Load(bytes.NewReader(append([]byte("SVS1"), b...)), 1)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestSaveDeterministic(t *testing.T) {
	s := NewStore(3)
	for i := 0; i < 5; i++ {
		s.Commit(wire.FileRef{Domain: "d", FileID: fmt.Sprintf("f%d", i)}, []byte("x\n"))
	}
	var a, b bytes.Buffer
	if err := s.Save(&a); err != nil {
		t.Fatal(err)
	}
	if err := s.Save(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("Save not deterministic")
	}
}
