package vcs

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"shadowedit/internal/diff"
	"shadowedit/internal/wire"
)

var ref = wire.FileRef{Domain: "dom", FileID: "h:/u/heat.f"}

func TestCommitVersionsAscend(t *testing.T) {
	s := NewStore(10)
	v1, ch1 := s.Commit(ref, []byte("one\n"))
	v2, ch2 := s.Commit(ref, []byte("two\n"))
	v3, ch3 := s.Commit(ref, []byte("three\n"))
	if !ch1 || !ch2 || !ch3 {
		t.Fatal("changed flags wrong")
	}
	if v1 != 1 || v2 != 2 || v3 != 3 {
		t.Fatalf("versions = %d,%d,%d, want 1,2,3", v1, v2, v3)
	}
	head, ok := s.Head(ref)
	if !ok || head.Number != 3 || string(head.Content) != "three\n" {
		t.Fatalf("head = %+v", head)
	}
}

func TestCommitUnchangedContentNoNewVersion(t *testing.T) {
	s := NewStore(10)
	v1, _ := s.Commit(ref, []byte("same\n"))
	v2, changed := s.Commit(ref, []byte("same\n"))
	if changed {
		t.Fatal("identical commit reported changed")
	}
	if v2 != v1 {
		t.Fatalf("identical commit bumped version: %d -> %d", v1, v2)
	}
	if st := s.Stats(); st.Versions != 1 {
		t.Fatalf("versions stored = %d, want 1", st.Versions)
	}
}

func TestGetSpecificVersions(t *testing.T) {
	s := NewStore(10)
	s.Commit(ref, []byte("a\n"))
	s.Commit(ref, []byte("b\n"))
	v, err := s.Get(ref, 1)
	if err != nil || string(v.Content) != "a\n" {
		t.Fatalf("Get(1) = %+v, %v", v, err)
	}
	if _, err := s.Get(ref, 9); !errors.Is(err, ErrVersionGone) {
		t.Fatalf("Get(9) err = %v, want ErrVersionGone", err)
	}
	if _, err := s.Get(wire.FileRef{Domain: "x", FileID: "y"}, 1); !errors.Is(err, ErrUnknownFile) {
		t.Fatalf("Get(unknown) err = %v, want ErrUnknownFile", err)
	}
}

func TestDeltaFromReconstructs(t *testing.T) {
	s := NewStore(10)
	base := []byte("l1\nl2\nl3\n")
	next := []byte("l1\nl2 edited\nl3\nl4\n")
	s.Commit(ref, base)
	s.Commit(ref, next)
	d, err := s.DeltaFrom(ref, 1, 2, diff.HuntMcIlroy)
	if err != nil {
		t.Fatal(err)
	}
	got, err := d.Apply(base)
	if err != nil || !bytes.Equal(got, next) {
		t.Fatalf("delta apply = %q, %v", got, err)
	}
}

func TestDeltaFromSkipsIntermediateVersions(t *testing.T) {
	// Server holds v1; client is at v4: one delta bridges them.
	s := NewStore(10)
	contents := [][]byte{[]byte("a\n"), []byte("a\nb\n"), []byte("a\nb\nc\n"), []byte("a\nZ\nc\n")}
	for _, c := range contents {
		s.Commit(ref, c)
	}
	d, err := s.DeltaFrom(ref, 1, 4, diff.Myers)
	if err != nil {
		t.Fatal(err)
	}
	got, err := d.Apply(contents[0])
	if err != nil || !bytes.Equal(got, contents[3]) {
		t.Fatalf("cross-version delta broken: %v", err)
	}
}

func TestAckPrunesOldVersions(t *testing.T) {
	s := NewStore(0)
	for i := 1; i <= 5; i++ {
		s.Commit(ref, []byte(fmt.Sprintf("content v%d\n", i)))
	}
	// Nothing acked: with retain 0 only protected versions survive; head
	// is protected, acked (none) adds nothing.
	vs := s.Versions(ref)
	if len(vs) != 1 || vs[0] != 5 {
		t.Fatalf("pre-ack versions = %v, want [5]", vs)
	}
	s.Commit(ref, []byte("content v6\n"))
	s.Ack(ref, 6)
	vs = s.Versions(ref)
	if len(vs) != 1 || vs[0] != 6 {
		t.Fatalf("post-ack versions = %v, want [6]", vs)
	}
}

func TestAckedVersionSurvivesPruning(t *testing.T) {
	s := NewStore(0)
	s.Commit(ref, []byte("v1\n"))
	s.Ack(ref, 1)
	s.Commit(ref, []byte("v2\n"))
	s.Commit(ref, []byte("v3\n"))
	vs := s.Versions(ref)
	// v1 (acked, server's base) and v3 (head) must survive; v2 may go.
	if len(vs) != 2 || vs[0] != 1 || vs[1] != 3 {
		t.Fatalf("versions = %v, want [1 3]", vs)
	}
	// The delta the server will ask for (1 -> 3) must be computable.
	if _, err := s.DeltaFrom(ref, 1, 3, diff.HuntMcIlroy); err != nil {
		t.Fatalf("DeltaFrom(acked, head): %v", err)
	}
	// v2 must be gone (retain 0).
	if _, err := s.Get(ref, 2); !errors.Is(err, ErrVersionGone) {
		t.Fatalf("Get(2) err = %v, want ErrVersionGone", err)
	}
}

func TestRetentionLimitKeepsExtraVersions(t *testing.T) {
	s := NewStore(2)
	for i := 1; i <= 6; i++ {
		s.Commit(ref, []byte(fmt.Sprintf("v%d\n", i)))
	}
	s.Ack(ref, 6)
	vs := s.Versions(ref)
	// Protected: 6 (head+acked). Retained extras: 2 newest prunable (4,5).
	if len(vs) != 3 || vs[0] != 4 || vs[1] != 5 || vs[2] != 6 {
		t.Fatalf("versions = %v, want [4 5 6]", vs)
	}
}

func TestSetRetainTightensOnNextOp(t *testing.T) {
	s := NewStore(5)
	for i := 1; i <= 5; i++ {
		s.Commit(ref, []byte(fmt.Sprintf("v%d\n", i)))
	}
	s.SetRetain(0)
	s.Ack(ref, 5)
	if vs := s.Versions(ref); len(vs) != 1 {
		t.Fatalf("versions after tightening = %v, want just head", vs)
	}
}

func TestAckBeyondHeadClamps(t *testing.T) {
	s := NewStore(0)
	s.Commit(ref, []byte("v1\n"))
	s.Ack(ref, 99)
	if got := s.Acked(ref); got != 1 {
		t.Fatalf("Acked = %d, want clamped 1", got)
	}
}

func TestAckUnknownFileIsNoop(t *testing.T) {
	s := NewStore(0)
	s.Ack(ref, 1) // must not panic
	if s.Acked(ref) != 0 {
		t.Fatal("Ack invented state for unknown file")
	}
}

func TestAckNeverRegresses(t *testing.T) {
	s := NewStore(3)
	s.Commit(ref, []byte("v1\n"))
	s.Commit(ref, []byte("v2\n"))
	s.Ack(ref, 2)
	s.Ack(ref, 1)
	if got := s.Acked(ref); got != 2 {
		t.Fatalf("Acked regressed to %d", got)
	}
}

func TestForget(t *testing.T) {
	s := NewStore(1)
	s.Commit(ref, []byte("x\n"))
	s.Forget(ref)
	if _, ok := s.Head(ref); ok {
		t.Fatal("Head found forgotten file")
	}
	if len(s.Files()) != 0 {
		t.Fatal("Files lists forgotten file")
	}
}

func TestFilesLists(t *testing.T) {
	s := NewStore(1)
	refs := []wire.FileRef{
		{Domain: "d", FileID: "a"},
		{Domain: "d", FileID: "b"},
	}
	for _, r := range refs {
		s.Commit(r, []byte("x\n"))
	}
	got := s.Files()
	if len(got) != 2 {
		t.Fatalf("Files = %v", got)
	}
}

func TestHeadReturnsCopy(t *testing.T) {
	s := NewStore(1)
	s.Commit(ref, []byte("abc\n"))
	h, _ := s.Head(ref)
	h.Content[0] = 'X'
	h2, _ := s.Head(ref)
	if string(h2.Content) != "abc\n" {
		t.Fatal("Head aliases internal storage")
	}
}

func TestDeltaFromPrunedBaseFails(t *testing.T) {
	s := NewStore(0)
	s.Commit(ref, []byte("v1\n"))
	s.Commit(ref, []byte("v2\n"))
	s.Commit(ref, []byte("v3\n")) // v1, v2 pruned (nothing acked)
	if _, err := s.DeltaFrom(ref, 1, 3, diff.HuntMcIlroy); !errors.Is(err, ErrVersionGone) {
		t.Fatalf("err = %v, want ErrVersionGone", err)
	}
}

func TestStats(t *testing.T) {
	s := NewStore(0)
	s.Commit(ref, []byte("aaaa\n"))
	s.Commit(ref, []byte("bbbb\n"))
	st := s.Stats()
	if st.Committed != 2 || st.Files != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if st.Pruned != 1 { // v1 pruned on second commit
		t.Fatalf("pruned = %d, want 1", st.Pruned)
	}
	if st.Bytes != 5 {
		t.Fatalf("bytes = %d, want 5", st.Bytes)
	}
}

func TestPropertyInvariantsUnderRandomOps(t *testing.T) {
	// Invariants under random commit/ack streams:
	//  1. head is always retained;
	//  2. the newest acked version is always retained;
	//  3. DeltaFrom(acked, head) always succeeds when acked > 0;
	//  4. retained version count <= 2 + retain.
	rng := rand.New(rand.NewSource(17))
	for _, retain := range []int{0, 1, 3} {
		s := NewStore(retain)
		var head uint64
		for op := 0; op < 1000; op++ {
			if head == 0 || rng.Intn(3) > 0 {
				v, _ := s.Commit(ref, []byte(fmt.Sprintf("content %d\n", rng.Intn(1000))))
				head = v
			} else {
				s.Ack(ref, uint64(rng.Intn(int(head)))+1)
			}
			h, ok := s.Head(ref)
			if !ok || h.Number != head {
				t.Fatalf("op %d: head lost (have %v)", op, h.Number)
			}
			if acked := s.Acked(ref); acked > 0 {
				if _, err := s.Get(ref, acked); err != nil {
					t.Fatalf("op %d: acked version %d pruned: %v", op, acked, err)
				}
				if _, err := s.DeltaFrom(ref, acked, head, diff.HuntMcIlroy); err != nil {
					t.Fatalf("op %d: DeltaFrom(acked=%d, head=%d): %v", op, acked, head, err)
				}
			}
			if n := len(s.Versions(ref)); n > 2+retain {
				t.Fatalf("op %d: %d versions retained, limit %d", op, n, 2+retain)
			}
		}
	}
}

func TestConcurrentCommitsDistinctFiles(t *testing.T) {
	s := NewStore(2)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			r := wire.FileRef{Domain: "d", FileID: fmt.Sprintf("f%d", g)}
			for i := 0; i < 100; i++ {
				v, _ := s.Commit(r, []byte(fmt.Sprintf("%d-%d\n", g, i)))
				if i%10 == 0 {
					s.Ack(r, v)
				}
			}
		}(g)
	}
	wg.Wait()
	if got := len(s.Files()); got != 8 {
		t.Fatalf("files = %d, want 8", got)
	}
	for g := 0; g < 8; g++ {
		r := wire.FileRef{Domain: "d", FileID: fmt.Sprintf("f%d", g)}
		h, ok := s.Head(r)
		if !ok || h.Number != 100 {
			t.Fatalf("file %d head = %v", g, h.Number)
		}
	}
}
