package vcs

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sort"

	"shadowedit/internal/diff"
	"shadowedit/internal/wire"
)

// Persistence for the version store. The paper's prototype kept old
// versions as ordinary files in the shadow environment so they survived
// between sessions; here the whole store serializes to a single stream so a
// restarting client keeps its retained versions — and therefore its ability
// to answer server pulls with deltas instead of full transfers.
//
// Layout (all integers uvarint unless noted):
//
//	magic "SVS1"
//	nfiles
//	per file:
//	  domain string, fileID string   (uvarint length + bytes)
//	  acked
//	  nversions
//	  per version: number, content (uvarint length + bytes)
//
// Checksums are recomputed on load, so a corrupted stream is rejected
// rather than silently trusted.

const persistMagic = "SVS1"

// ErrCorruptStore reports an unreadable serialized store.
var ErrCorruptStore = errors.New("vcs: corrupt store stream")

// Save serializes the store.
func (s *Store) Save(w io.Writer) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(persistMagic); err != nil {
		return err
	}
	// Sort by the rendered ref so the stream layout is unchanged from when
	// the map was keyed by ref.String(); this is a cold path, the
	// allocations don't matter.
	keys := make([]wire.FileRef, 0, len(s.files))
	for k := range s.files {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i].String() < keys[j].String() })
	writeUvarint(bw, uint64(len(keys)))
	for _, k := range keys {
		h := s.files[k]
		writeString(bw, h.ref.Domain)
		writeString(bw, h.ref.FileID)
		writeUvarint(bw, h.acked)
		writeUvarint(bw, uint64(len(h.versions)))
		for _, v := range h.versions {
			writeUvarint(bw, v.Number)
			writeBytes(bw, v.Content)
		}
	}
	return bw.Flush()
}

// Load restores a store saved with Save, applying the given retention limit
// from now on.
func Load(r io.Reader, retain int) (*Store, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(persistMagic))
	if _, err := io.ReadFull(br, magic); err != nil || string(magic) != persistMagic {
		return nil, fmt.Errorf("%w: bad magic", ErrCorruptStore)
	}
	s := NewStore(retain)
	nfiles, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorruptStore, err)
	}
	for i := uint64(0); i < nfiles; i++ {
		h := &history{}
		h.ref.Domain, err = readString(br)
		if err != nil {
			return nil, err
		}
		h.ref.FileID, err = readString(br)
		if err != nil {
			return nil, err
		}
		h.acked, err = binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrCorruptStore, err)
		}
		nvers, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrCorruptStore, err)
		}
		var prev uint64
		for j := uint64(0); j < nvers; j++ {
			number, err := binary.ReadUvarint(br)
			if err != nil {
				return nil, fmt.Errorf("%w: %v", ErrCorruptStore, err)
			}
			if number <= prev {
				return nil, fmt.Errorf("%w: version numbers not ascending", ErrCorruptStore)
			}
			prev = number
			content, err := readBytes(br)
			if err != nil {
				return nil, err
			}
			h.versions = append(h.versions, Version{
				Number:  number,
				Content: content,
				Sum:     diff.Checksum(content),
			})
		}
		if h.acked != 0 && !h.retains(h.acked) {
			return nil, fmt.Errorf("%w: acked version %d missing for %s", ErrCorruptStore, h.acked, h.ref)
		}
		s.files[h.ref] = h
	}
	return s, nil
}

func writeUvarint(w *bufio.Writer, v uint64) {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], v)
	_, _ = w.Write(buf[:n])
}

func writeString(w *bufio.Writer, s string) {
	writeUvarint(w, uint64(len(s)))
	_, _ = w.WriteString(s)
}

func writeBytes(w *bufio.Writer, b []byte) {
	writeUvarint(w, uint64(len(b)))
	_, _ = w.Write(b)
}

// maxPersistChunk bounds a single string/content read while loading.
const maxPersistChunk = 1 << 30

func readString(br *bufio.Reader) (string, error) {
	b, err := readBytes(br)
	if err != nil {
		return "", err
	}
	return string(b), nil
}

func readBytes(br *bufio.Reader) ([]byte, error) {
	n, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorruptStore, err)
	}
	if n > maxPersistChunk {
		return nil, fmt.Errorf("%w: chunk of %d bytes", ErrCorruptStore, n)
	}
	// Grow with the data actually present rather than trusting the
	// declared length with one big allocation: a corrupt or hostile
	// stream could otherwise demand gigabytes up front.
	var buf bytes.Buffer
	if _, err := io.CopyN(&buf, br, int64(n)); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorruptStore, err)
	}
	return buf.Bytes(), nil
}
