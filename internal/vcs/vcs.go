// Package vcs implements the client-side version control of the shadow
// environment (§6.3.2).
//
// "On the client side, the system associates a version number with each
// file. Thus, every time a file is edited, a new version is created and
// identified separately from the previous versions." The server later pulls
// either a delta between the version it holds and the current version, or a
// full copy when no usable base survives.
//
// Retention follows the paper: "To avoid retaining the old versions
// indefinitely, the client deletes older versions after the server
// acknowledges the receipt of a later version. In addition, a user may
// specify, as part of customization, a limit on the number of older versions
// that should be retained at any time."
//
// Safety invariant maintained here: the newest acknowledged version and the
// head version are never pruned, so any Pull the server can legitimately
// issue (base = its cached, acknowledged version) can always be answered
// with a delta.
package vcs

import (
	"errors"
	"fmt"
	"sync"

	"shadowedit/internal/chunk"
	"shadowedit/internal/diff"
	"shadowedit/internal/wire"
)

// Errors reported by the store.
var (
	// ErrUnknownFile reports a file never committed.
	ErrUnknownFile = errors.New("vcs: unknown file")
	// ErrVersionGone reports a version that has been pruned (or never
	// existed); the caller falls back to a full transfer.
	ErrVersionGone = errors.New("vcs: version not retained")
)

// Version is one stored version of a file.
type Version struct {
	Number  uint64
	Content []byte
	Sum     uint32
	// manifest is the version's content-defined chunking, computed lazily
	// by ManifestFor and memoized with the version; pruning a version drops
	// its manifest with it. Never set on the copies Get/Head hand out.
	manifest chunk.Manifest
}

// Stats counts store activity.
type Stats struct {
	Files     int
	Versions  int
	Committed int64
	Pruned    int64
	Bytes     int64
}

// Store holds version chains for the files a user shadows.
//
// The map is keyed by the FileRef value itself: FileRef is a comparable
// struct, so lookups with a ref in hand cost nothing, where a string key
// would pay a ref.String() allocation on every store operation — several
// times per submit cycle.
type Store struct {
	mu        sync.Mutex
	retain    int
	files     map[wire.FileRef]*history
	committed int64
	pruned    int64
}

type history struct {
	ref      wire.FileRef
	versions []Version // ascending by Number
	acked    uint64
}

// NewStore creates a store retaining at most retain prunable old versions
// per file beyond the protected ones (head and newest acknowledged).
func NewStore(retain int) *Store {
	if retain < 0 {
		retain = 0
	}
	return &Store{retain: retain, files: make(map[wire.FileRef]*history)}
}

// SetRetain changes the retention limit for subsequent pruning.
func (s *Store) SetRetain(n int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if n < 0 {
		n = 0
	}
	s.retain = n
}

// Commit records content as the newest version of ref, returning its version
// number. Committing bytes identical to the current head creates no new
// version and reports changed=false.
func (s *Store) Commit(ref wire.FileRef, content []byte) (version uint64, changed bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	h, ok := s.files[ref]
	if !ok {
		h = &history{ref: ref}
		s.files[ref] = h
	}
	sum := diff.Checksum(content)
	if n := len(h.versions); n > 0 {
		head := h.versions[n-1]
		if head.Sum == sum && len(head.Content) == len(content) {
			return head.Number, false
		}
	}
	next := uint64(1)
	if n := len(h.versions); n > 0 {
		next = h.versions[n-1].Number + 1
	}
	h.versions = append(h.versions, Version{
		Number:  next,
		Content: append([]byte(nil), content...),
		Sum:     sum,
	})
	s.committed++
	s.pruneLocked(h)
	return next, true
}

// CommitAtLeast is Commit for a client whose store was freshly created (for
// example after a restart without restoring state) while the server already
// tracks higher version numbers for the file: the new version's number is
// forced to at least minNumber so the server's notion of "newest" keeps
// ascending.
func (s *Store) CommitAtLeast(ref wire.FileRef, content []byte, minNumber uint64) (version uint64, changed bool) {
	s.mu.Lock()
	h, ok := s.files[ref]
	if ok && len(h.versions) > 0 && h.versions[len(h.versions)-1].Number >= minNumber {
		s.mu.Unlock()
		return s.Commit(ref, content)
	}
	if !ok {
		h = &history{ref: ref}
		s.files[ref] = h
	}
	h.versions = append(h.versions, Version{
		Number:  minNumber,
		Content: append([]byte(nil), content...),
		Sum:     diff.Checksum(content),
	})
	s.committed++
	s.pruneLocked(h)
	s.mu.Unlock()
	return minNumber, true
}

// Head returns the newest version of ref. The content is a private copy the
// caller owns; use HeadShared on paths where the copy matters.
func (s *Store) Head(ref wire.FileRef) (Version, bool) {
	v, ok := s.HeadShared(ref)
	if !ok {
		return Version{}, false
	}
	return cloneVersion(v), true
}

// HeadShared is Head without the content copy. The returned Content is the
// store's own backing array: committed content is immutable (Commit stores a
// private copy and nothing ever writes it again; pruning only drops
// references), so the slice stays valid and constant indefinitely — but the
// caller must treat it as read-only.
func (s *Store) HeadShared(ref wire.FileRef) (Version, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	h, ok := s.files[ref]
	if !ok || len(h.versions) == 0 {
		return Version{}, false
	}
	return h.versions[len(h.versions)-1], true
}

// Get returns a specific retained version of ref. The content is a private
// copy the caller owns; use GetShared on paths where the copy matters.
func (s *Store) Get(ref wire.FileRef, number uint64) (Version, error) {
	v, err := s.GetShared(ref, number)
	if err != nil {
		return Version{}, err
	}
	return cloneVersion(v), nil
}

// GetShared is Get without the content copy; the same read-only sharing
// contract as HeadShared applies.
func (s *Store) GetShared(ref wire.FileRef, number uint64) (Version, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	h, ok := s.files[ref]
	if !ok {
		return Version{}, fmt.Errorf("%w: %s", ErrUnknownFile, ref)
	}
	for _, v := range h.versions {
		if v.Number == number {
			return v, nil
		}
	}
	return Version{}, fmt.Errorf("%w: %s v%d", ErrVersionGone, ref, number)
}

// DeltaFrom computes the delta that upgrades base to want using algorithm.
// It fails with ErrVersionGone when either version is no longer retained —
// the signal to fall back to a FileFull transfer.
//
// The returned delta's inserted lines alias the stored content of the want
// version (see diff.Compute); since committed content is immutable, the
// delta stays valid until encoded, which is all the pull path does with it.
func (s *Store) DeltaFrom(ref wire.FileRef, base, want uint64, algorithm diff.Algorithm) (*diff.Delta, error) {
	baseV, err := s.GetShared(ref, base)
	if err != nil {
		return nil, err
	}
	wantV, err := s.GetShared(ref, want)
	if err != nil {
		return nil, err
	}
	return diff.Compute(algorithm, baseV.Content, wantV.Content)
}

// ManifestFor returns the content-defined chunk manifest of a retained
// version together with its shared content, computing and memoizing the
// manifest on first use. The manifest and content are the store's own —
// read-only for the caller, valid indefinitely (committed content is
// immutable and a memoized manifest is never rewritten). ErrVersionGone
// signals the version was pruned: the v3 transfer path then answers for the
// head instead, exactly as the delta path falls back.
func (s *Store) ManifestFor(ref wire.FileRef, number uint64) (chunk.Manifest, []byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	h, ok := s.files[ref]
	if !ok {
		return nil, nil, fmt.Errorf("%w: %s", ErrUnknownFile, ref)
	}
	for i := range h.versions {
		if h.versions[i].Number == number {
			if h.versions[i].manifest == nil {
				h.versions[i].manifest = chunk.Split(h.versions[i].Content, chunk.DefaultParams)
			}
			return h.versions[i].manifest, h.versions[i].Content, nil
		}
	}
	return nil, nil, fmt.Errorf("%w: %s v%d", ErrVersionGone, ref, number)
}

// ChunkByHash looks a chunk up by content address across the retained
// versions of ref, newest first (the freshest copy of shared content is the
// most likely to stay retained). The returned bytes alias the store's
// immutable version content — read-only, but valid indefinitely. It reports
// ok=false when no retained version contains the chunk, the cue to answer a
// ChunkReq without that chunk.
func (s *Store) ChunkByHash(ref wire.FileRef, want chunk.Hash) ([]byte, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	h, ok := s.files[ref]
	if !ok {
		return nil, false
	}
	for i := len(h.versions) - 1; i >= 0; i-- {
		v := &h.versions[i]
		if v.manifest == nil {
			v.manifest = chunk.Split(v.Content, chunk.DefaultParams)
		}
		off := 0
		for _, r := range v.manifest {
			if r.Hash == want {
				return v.Content[off : off+int(r.Len)], true
			}
			off += int(r.Len)
		}
	}
	return nil, false
}

// Ack records that the server has stored version number of ref, then prunes
// versions the protocol can no longer need, subject to the retention limit.
//
// An ack for a version that is no longer retained (the user edited past it
// before the ack arrived, and pruning took it) is ignored: protecting a
// version whose content is gone is meaningless, and the server's next Pull
// from that base simply falls back to a full transfer.
func (s *Store) Ack(ref wire.FileRef, number uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	h, ok := s.files[ref]
	if !ok || len(h.versions) == 0 {
		return
	}
	head := h.versions[len(h.versions)-1].Number
	if number > head {
		number = head
	}
	if number <= h.acked || !h.retains(number) {
		return
	}
	h.acked = number
	s.pruneLocked(h)
}

// retains reports whether the version is still stored.
func (h *history) retains(number uint64) bool {
	for _, v := range h.versions {
		if v.Number == number {
			return true
		}
	}
	return false
}

// Acked returns the newest acknowledged version number of ref (0 if none).
func (s *Store) Acked(ref wire.FileRef) uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	h, ok := s.files[ref]
	if !ok {
		return 0
	}
	return h.acked
}

// pruneLocked drops prunable versions beyond the retention limit. Protected:
// the head and the newest acknowledged version.
func (s *Store) pruneLocked(h *history) {
	if len(h.versions) == 0 {
		return
	}
	headNum := h.versions[len(h.versions)-1].Number
	protected := func(v Version) bool {
		return v.Number == headNum || (h.acked != 0 && v.Number == h.acked)
	}
	// The retain budget keeps the NEWEST prunable versions, so with m
	// prunable versions total, the first m-retain of them (oldest first)
	// are dropped. Two counting passes make the rebuild in-place and
	// allocation-free.
	m := 0
	for _, v := range h.versions {
		if !protected(v) {
			m++
		}
	}
	drop := m - s.retain
	if drop <= 0 {
		return
	}
	kept := h.versions[:0]
	for _, v := range h.versions {
		if !protected(v) && drop > 0 {
			drop--
			s.pruned++
			continue
		}
		kept = append(kept, v)
	}
	// Release the dropped versions' content instead of pinning it in the
	// slice's tail.
	for i := len(kept); i < len(h.versions); i++ {
		h.versions[i] = Version{}
	}
	h.versions = kept
}

// Versions returns the retained version numbers of ref, ascending.
func (s *Store) Versions(ref wire.FileRef) []uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	h, ok := s.files[ref]
	if !ok {
		return nil
	}
	out := make([]uint64, len(h.versions))
	for i, v := range h.versions {
		out[i] = v.Number
	}
	return out
}

// Files returns the refs with at least one retained version.
func (s *Store) Files() []wire.FileRef {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]wire.FileRef, 0, len(s.files))
	for _, h := range s.files {
		if len(h.versions) > 0 {
			out = append(out, h.ref)
		}
	}
	return out
}

// Forget drops all state for ref.
func (s *Store) Forget(ref wire.FileRef) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.files, ref)
}

// Stats returns a snapshot of store counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := Stats{
		Files:     len(s.files),
		Committed: s.committed,
		Pruned:    s.pruned,
	}
	for _, h := range s.files {
		st.Versions += len(h.versions)
		for _, v := range h.versions {
			st.Bytes += int64(len(v.Content))
		}
	}
	return st
}

func cloneVersion(v Version) Version {
	return Version{
		Number:  v.Number,
		Content: append([]byte(nil), v.Content...),
		Sum:     v.Sum,
	}
}
