// Package compress provides the optional data-compression layer the paper
// lists as future work (§8.3: "We also plan to explore data compression
// techniques to improve the efficiency of data transfer").
//
// Payloads (deltas, full files, job output) are DEFLATE-compressed before
// transmission when that actually shrinks them; a one-byte header records
// whether the body is compressed, so expansion on incompressible data is
// capped at one byte.
package compress

import (
	"bytes"
	"compress/flate"
	"errors"
	"fmt"
	"io"
)

// Errors reported by Decode.
var (
	// ErrCorrupt reports undecodable input.
	ErrCorrupt = errors.New("compress: corrupt payload")
)

const (
	tagRaw  = 0
	tagZlib = 1
)

// maxDecoded bounds decompression output to resist decompression bombs.
const maxDecoded = 256 << 20

// Encode returns payload in the framed format, compressed if compression
// helps. The empty payload encodes to a single raw tag byte.
func Encode(payload []byte) []byte {
	var buf bytes.Buffer
	buf.WriteByte(tagZlib)
	w, err := flate.NewWriter(&buf, flate.BestSpeed)
	if err == nil {
		if _, err = w.Write(payload); err == nil {
			err = w.Close()
		}
	}
	if err == nil && buf.Len() < len(payload)+1 {
		return buf.Bytes()
	}
	out := make([]byte, 1+len(payload))
	out[0] = tagRaw
	copy(out[1:], payload)
	return out
}

// Decode reverses Encode.
func Decode(framed []byte) ([]byte, error) {
	if len(framed) == 0 {
		return nil, fmt.Errorf("%w: empty", ErrCorrupt)
	}
	body := framed[1:]
	switch framed[0] {
	case tagRaw:
		return append([]byte(nil), body...), nil
	case tagZlib:
		r := flate.NewReader(bytes.NewReader(body))
		defer r.Close()
		out, err := io.ReadAll(io.LimitReader(r, maxDecoded+1))
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
		}
		if len(out) > maxDecoded {
			return nil, fmt.Errorf("%w: decompressed payload too large", ErrCorrupt)
		}
		return out, nil
	default:
		return nil, fmt.Errorf("%w: unknown tag %d", ErrCorrupt, framed[0])
	}
}

// Ratio returns encoded size over raw size — below 1.0 means compression
// helped. Raw size zero reports 1.0.
func Ratio(raw, encoded int) float64 {
	if raw == 0 {
		return 1.0
	}
	return float64(encoded) / float64(raw)
}
