package compress

import (
	"bytes"
	"testing"
)

// FuzzRoundTrip checks Decode(Encode(x)) == x for arbitrary payloads and
// that Decode never panics on arbitrary framed input.
func FuzzRoundTrip(f *testing.F) {
	f.Add([]byte("hello world"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, payload []byte) {
		got, err := Decode(Encode(payload))
		if err != nil {
			t.Fatalf("Decode(Encode): %v", err)
		}
		if !bytes.Equal(got, payload) {
			t.Fatal("round trip mismatch")
		}
		_, _ = Decode(payload) // arbitrary input must not panic
	})
}
