package compress

import (
	"bytes"
	"crypto/rand"
	"errors"
	"strings"
	"testing"
	"testing/quick"
)

func TestRoundTrip(t *testing.T) {
	tests := []struct {
		name string
		give []byte
	}{
		{name: "empty", give: nil},
		{name: "tiny", give: []byte("x")},
		{name: "text", give: []byte(strings.Repeat("the quick brown fox\n", 200))},
		{name: "binary zeros", give: make([]byte, 4096)},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			enc := Encode(tt.give)
			got, err := Decode(enc)
			if err != nil {
				t.Fatalf("Decode: %v", err)
			}
			if !bytes.Equal(got, tt.give) {
				t.Fatalf("round trip mismatch: %d bytes vs %d", len(got), len(tt.give))
			}
		})
	}
}

func TestCompressibleShrinks(t *testing.T) {
	payload := []byte(strings.Repeat("velocity pressure gradient tensor\n", 500))
	enc := Encode(payload)
	if len(enc) >= len(payload)/2 {
		t.Fatalf("compressible payload barely shrank: %d -> %d", len(payload), len(enc))
	}
}

func TestIncompressibleExpandsByAtMostOneByte(t *testing.T) {
	payload := make([]byte, 8192)
	if _, err := rand.Read(payload); err != nil {
		t.Fatal(err)
	}
	enc := Encode(payload)
	if len(enc) > len(payload)+1 {
		t.Fatalf("incompressible payload expanded: %d -> %d", len(payload), len(enc))
	}
	got, err := Decode(enc)
	if err != nil || !bytes.Equal(got, payload) {
		t.Fatalf("round trip failed: %v", err)
	}
}

func TestDecodeErrors(t *testing.T) {
	tests := []struct {
		name string
		give []byte
	}{
		{name: "empty", give: nil},
		{name: "unknown tag", give: []byte{9, 1, 2}},
		{name: "corrupt deflate", give: []byte{1, 0xFF, 0xFF, 0xFF}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := Decode(tt.give); !errors.Is(err, ErrCorrupt) {
				t.Fatalf("Decode = %v, want ErrCorrupt", err)
			}
		})
	}
}

func TestDecodeNeverPanics(t *testing.T) {
	f := func(b []byte) bool {
		_, _ = Decode(b)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickRoundTrip(t *testing.T) {
	f := func(b []byte) bool {
		got, err := Decode(Encode(b))
		return err == nil && bytes.Equal(got, b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func TestRatio(t *testing.T) {
	if Ratio(0, 5) != 1.0 {
		t.Error("Ratio with zero raw should be 1.0")
	}
	if Ratio(100, 50) != 0.5 {
		t.Error("Ratio(100, 50) != 0.5")
	}
}
