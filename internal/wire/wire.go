// Package wire defines the shadow protocol: the messages exchanged between
// the client at a user's workstation and the shadow server at a
// supercomputer site, and their binary encoding.
//
// The protocol follows the paper's demand-driven design (§5.2, §6.4):
// notifications and submit requests are short messages that carry no bulk
// data; the server decides when to PULL file contents, and bulk transfer
// happens as deltas against cached versions whenever possible, falling back
// to full contents when the cache has no usable base. Job output is pushed
// to the client on completion (or routed to a third host), optionally as a
// delta against previously delivered output ("reverse shadow processing",
// §8.3).
package wire

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// ProtocolVersion identifies this revision of the shadow protocol.
// Version 2 added the optional trace-context header (see TraceContext);
// version 3 added the chunk transfer frames (FileManifest, ChunkReq,
// ChunkData) and the negotiated-version field on HelloOK; version 4 added
// the directory reconciliation frames (TreeHead, TreeDiff, BatchNotify);
// version 5 added the cluster peer frames (PeerHello, PeerNotify,
// PeerDelta, PeerChunk).
// The body encodings of all pre-existing messages are unchanged, so the
// server accepts every version down to MinProtocolVersion; chunk frames
// only flow on sessions where both ends advertised version 3, tree frames
// only where both advertised version 4, and peer frames only on
// server-to-server sessions where both ends advertised version 5.
const ProtocolVersion = 5

// MinProtocolVersion is the oldest protocol revision the server still
// speaks. Version-1 peers never set the trace flag, so their frames decode
// exactly as before.
const MinProtocolVersion = 1

// MaxFrame bounds a single protocol frame; larger transfers are rejected
// rather than buffered without limit.
const MaxFrame = 64 << 20

// Conn is the message transport the protocol runs over. netsim.Conn
// implements it for simulated links; StreamConn adapts any reliable byte
// stream (for example a *net.TCPConn) for real deployments.
type Conn interface {
	// Send transmits one message payload.
	Send(payload []byte) error
	// Recv blocks for the next message payload.
	Recv() ([]byte, error)
	// Close releases the transport.
	Close() error
}

// Kind discriminates protocol messages.
type Kind uint8

// Protocol message kinds.
const (
	KindHello Kind = iota + 1
	KindHelloOK
	KindNotify
	KindPull
	KindFileDelta
	KindFileFull
	KindFileAck
	KindSubmit
	KindSubmitOK
	KindStatusReq
	KindStatusReply
	KindOutput
	KindOutputAck
	KindOutputFullReq
	KindError
	KindBye
	KindFileManifest
	KindChunkReq
	KindChunkData
	KindTreeHead
	KindTreeDiff
	KindBatchNotify
	KindPeerHello
	KindPeerNotify
	KindPeerDelta
	KindPeerChunk
)

var kindNames = map[Kind]string{
	KindHello:         "HELLO",
	KindHelloOK:       "HELLO_OK",
	KindNotify:        "NOTIFY",
	KindPull:          "PULL",
	KindFileDelta:     "FILE_DELTA",
	KindFileFull:      "FILE_FULL",
	KindFileAck:       "FILE_ACK",
	KindSubmit:        "SUBMIT",
	KindSubmitOK:      "SUBMIT_OK",
	KindStatusReq:     "STATUS_REQ",
	KindStatusReply:   "STATUS_REPLY",
	KindOutput:        "OUTPUT",
	KindOutputAck:     "OUTPUT_ACK",
	KindOutputFullReq: "OUTPUT_FULL_REQ",
	KindError:         "ERROR",
	KindBye:           "BYE",
	KindFileManifest:  "FILE_MANIFEST",
	KindChunkReq:      "CHUNK_REQ",
	KindChunkData:     "CHUNK_DATA",
	KindTreeHead:      "TREE_HEAD",
	KindTreeDiff:      "TREE_DIFF",
	KindBatchNotify:   "BATCH_NOTIFY",
	KindPeerHello:     "PEER_HELLO",
	KindPeerNotify:    "PEER_NOTIFY",
	KindPeerDelta:     "PEER_DELTA",
	KindPeerChunk:     "PEER_CHUNK",
}

// String returns the protocol name of the kind.
func (k Kind) String() string {
	if n, ok := kindNames[k]; ok {
		return n
	}
	return fmt.Sprintf("KIND(%d)", uint8(k))
}

// Errors reported by the codec.
var (
	// ErrBadMessage reports an undecodable message.
	ErrBadMessage = errors.New("wire: bad message")
	// ErrFrameTooLarge reports a frame exceeding MaxFrame.
	ErrFrameTooLarge = errors.New("wire: frame too large")
)

// FileRef is the globally unique name of a user file: the (domain id, file
// id) pair of the paper's naming design (§5.3). Domain identifies a naming
// domain (for example one NFS universe); FileID is unique within it (for
// example "host:/abs/path" after alias and mount resolution).
type FileRef struct {
	Domain string
	FileID string
}

// String renders the reference as domain//fileid.
func (f FileRef) String() string { return f.Domain + "//" + f.FileID }

// JobState is the lifecycle state of a submitted job.
type JobState uint8

// Job lifecycle states.
const (
	// JobQueued means the job awaits scheduling (the server may still be
	// retrieving its files).
	JobQueued JobState = iota + 1
	// JobFetching means the server is pulling input files it needs.
	JobFetching
	// JobRunning means the job is executing at the supercomputer.
	JobRunning
	// JobDone means the job finished and output is available/delivered.
	JobDone
	// JobFailed means the job could not be run or exited with an error.
	JobFailed
)

var jobStateNames = map[JobState]string{
	JobQueued:   "queued",
	JobFetching: "fetching",
	JobRunning:  "running",
	JobDone:     "done",
	JobFailed:   "failed",
}

// String returns the lower-case state name.
func (s JobState) String() string {
	if n, ok := jobStateNames[s]; ok {
		return n
	}
	return fmt.Sprintf("state(%d)", uint8(s))
}

// Terminal reports whether the state is final.
func (s JobState) Terminal() bool { return s == JobDone || s == JobFailed }

// traceFlag is set on the frame's kind byte when a trace-context header
// follows it. Message kinds are small constants (1..16), so the high bit is
// never part of a legitimate kind value — version-1 frames can never carry
// it, which is what keeps the header backward compatible.
const traceFlag = 0x80

// TraceContext is the causal metadata a frame may carry: the cycle's trace
// id and the sending side's span id, in the style of Dapper/X-Trace
// propagation. The zero value means "untraced"; untraced frames are encoded
// exactly as protocol version 1 did.
type TraceContext struct {
	TraceID uint64
	SpanID  uint64
}

// Valid reports whether the context names a real trace.
func (tc TraceContext) Valid() bool { return tc.TraceID != 0 }

// Message is one protocol message.
type Message interface {
	// Kind returns the message discriminator.
	Kind() Kind
	// encode appends the message body (not the kind byte).
	encode(e *encoder)
	// decode parses the message body.
	decode(d *decoder)
}

// encPool recycles encoder structs: m.encode(e) is an interface call, so a
// stack-allocated encoder escapes and would otherwise cost one heap
// allocation per marshalled message.
var encPool = sync.Pool{New: func() any { return new(encoder) }}

// decPool recycles decoder structs for the same reason (m.decode(d)).
var decPool = sync.Pool{New: func() any { return new(decoder) }}

// Marshal serializes a message, kind byte first (untraced).
func Marshal(m Message) []byte {
	return MarshalTraced(m, TraceContext{})
}

// MarshalTraced serializes a message with an optional trace-context header.
// An invalid (zero) context produces exactly the version-1 encoding: the
// flag bit is only set when there is a header to read, so tracing-off
// traffic is byte-identical to the untraced protocol.
func MarshalTraced(m Message, tc TraceContext) []byte {
	return AppendMarshal(make([]byte, 0, 64), m, tc)
}

// AppendMarshal appends the frame for m (kind byte first, optional trace
// header, body) to dst and returns the extended slice. It is the
// allocation-free form of MarshalTraced: callers that own a reusable scratch
// buffer pass dst = scratch[:0] and pay nothing on the steady state. The
// encoder struct itself comes from a pool.
func AppendMarshal(dst []byte, m Message, tc TraceContext) []byte {
	e := encPool.Get().(*encoder)
	e.buf = dst
	if tc.Valid() {
		e.byte(byte(m.Kind()) | traceFlag)
		e.uvarint(tc.TraceID)
		e.uvarint(tc.SpanID)
	} else {
		e.byte(byte(m.Kind()))
	}
	m.encode(e)
	out := e.buf
	e.buf = nil
	encPool.Put(e)
	return out
}

// Unmarshal parses a message produced by Marshal or MarshalTraced,
// discarding any trace context.
func Unmarshal(buf []byte) (Message, error) {
	m, _, err := UnmarshalTraced(buf)
	return m, err
}

// UnmarshalTraced parses a message and its trace-context header, when
// present. Frames without the flag (every version-1 frame) decode with a
// zero context.
//
// The returned message owns every byte it carries: the decoder copies
// strings and byte fields out of buf, so the caller may recycle buf the
// moment UnmarshalTraced returns (the zero-copy receive path relies on
// this).
func UnmarshalTraced(buf []byte) (Message, TraceContext, error) {
	d := decPool.Get().(*decoder)
	m, tc, err := unmarshalWith(d, buf, nil)
	d.buf, d.err = nil, nil
	decPool.Put(d)
	return m, tc, err
}

// UnmarshalInto parses a frame whose kind is known in advance into a
// caller-supplied message, avoiding the per-frame message allocation. The
// frame's kind byte must match into.Kind() or ErrBadMessage is returned.
// into should be a zero value (or a value whose every field the caller is
// happy to have overwritten); trailing optional fields keep their previous
// value when the frame omits them, exactly as they would stay zero on a
// fresh struct.
func UnmarshalInto(into Message, buf []byte) (TraceContext, error) {
	d := decPool.Get().(*decoder)
	_, tc, err := unmarshalWith(d, buf, into)
	d.buf, d.err = nil, nil
	decPool.Put(d)
	return tc, err
}

func unmarshalWith(d *decoder, buf []byte, into Message) (Message, TraceContext, error) {
	var tc TraceContext
	if len(buf) == 0 {
		return nil, tc, fmt.Errorf("%w: empty", ErrBadMessage)
	}
	d.buf, d.err = buf[1:], nil
	if buf[0]&traceFlag != 0 {
		tc.TraceID = d.uvarint()
		tc.SpanID = d.uvarint()
		if d.err != nil {
			return nil, TraceContext{}, fmt.Errorf("%w: bad trace header: %v", ErrBadMessage, d.err)
		}
		if !tc.Valid() {
			return nil, TraceContext{}, fmt.Errorf("%w: trace flag with zero trace id", ErrBadMessage)
		}
	}
	kind := Kind(buf[0] &^ traceFlag)
	var m Message
	if into != nil {
		if kind != into.Kind() {
			return nil, TraceContext{}, fmt.Errorf("%w: kind %d, want %s", ErrBadMessage, kind, into.Kind())
		}
		m = into
	} else {
		m = newMessage(kind)
		if m == nil {
			return nil, TraceContext{}, fmt.Errorf("%w: unknown kind %d", ErrBadMessage, kind)
		}
	}
	m.decode(d)
	if d.err != nil {
		return nil, TraceContext{}, fmt.Errorf("%w: %s: %v", ErrBadMessage, kind, d.err)
	}
	if len(d.buf) != 0 {
		return nil, TraceContext{}, fmt.Errorf("%w: %s: %d trailing bytes", ErrBadMessage, kind, len(d.buf))
	}
	return m, tc, nil
}

func newMessage(k Kind) Message {
	switch k {
	case KindHello:
		return &Hello{}
	case KindHelloOK:
		return &HelloOK{}
	case KindNotify:
		return &Notify{}
	case KindPull:
		return &Pull{}
	case KindFileDelta:
		return &FileDelta{}
	case KindFileFull:
		return &FileFull{}
	case KindFileAck:
		return &FileAck{}
	case KindSubmit:
		return &Submit{}
	case KindSubmitOK:
		return &SubmitOK{}
	case KindStatusReq:
		return &StatusReq{}
	case KindStatusReply:
		return &StatusReply{}
	case KindOutput:
		return &Output{}
	case KindOutputAck:
		return &OutputAck{}
	case KindOutputFullReq:
		return &OutputFullReq{}
	case KindError:
		return &ErrorMsg{}
	case KindBye:
		return &Bye{}
	case KindFileManifest:
		return &FileManifest{}
	case KindChunkReq:
		return &ChunkReq{}
	case KindChunkData:
		return &ChunkData{}
	case KindTreeHead:
		return &TreeHead{}
	case KindTreeDiff:
		return &TreeDiff{}
	case KindBatchNotify:
		return &BatchNotify{}
	case KindPeerHello:
		return &PeerHello{}
	case KindPeerNotify:
		return &PeerNotify{}
	case KindPeerDelta:
		return &PeerDelta{}
	case KindPeerChunk:
		return &PeerChunk{}
	default:
		return nil
	}
}

// Send marshals and transmits a message (untraced).
func Send(c Conn, m Message) error {
	return c.Send(Marshal(m))
}

// SendTraced marshals and transmits a message carrying tc. A zero context
// sends the plain version-1 frame.
func SendTraced(c Conn, m Message, tc TraceContext) error {
	return c.Send(MarshalTraced(m, tc))
}

// NonRetainingSender marks transports whose Send finishes with the payload
// before returning — the bytes are copied to the wire (or into an internal
// write buffer) and the caller may reuse the slice immediately. StreamConn
// qualifies; netsim connections do NOT (a simulated link enqueues the very
// slice it was handed and delivers it later), which is why buffer-reusing
// senders must probe for this capability instead of assuming it.
type NonRetainingSender interface {
	// SendDoesNotRetain is a marker; it never needs calling.
	SendDoesNotRetain()
}

// sendPool recycles marshal scratch for SendShared. Buffers, not arrays, so
// grown scratch is kept across messages.
var sendPool = sync.Pool{New: func() any { return new([]byte) }}

// SendShared marshals m into pooled scratch and transmits it, recycling the
// scratch afterwards — zero steady-state allocations per message. It is only
// safe (and only taken) when c's Send does not retain the payload; for every
// other transport it falls back to a fresh MarshalTraced, so simulated links
// keep exactly the per-message buffers they had before pooling existed.
func SendShared(c Conn, m Message, tc TraceContext) error {
	if _, ok := c.(NonRetainingSender); !ok {
		return SendTraced(c, m, tc)
	}
	bp := sendPool.Get().(*[]byte)
	buf := AppendMarshal((*bp)[:0], m, tc)
	err := c.Send(buf)
	if cap(buf) <= MaxFrame {
		*bp = buf
	}
	sendPool.Put(bp)
	return err
}

// ReusableReceiver is implemented by transports that can hand out a frame in
// a connection-owned buffer which is recycled by the next receive call.
// Ownership rule: the returned slice is valid only until the next
// RecvReuse/Recv on the same connection; callers must fully consume (or
// copy) it before receiving again. UnmarshalTraced satisfies this by
// copying every field out of the frame.
type ReusableReceiver interface {
	// RecvReuse blocks for the next message payload, returned in a buffer
	// owned by the connection.
	RecvReuse() ([]byte, error)
}

// ScheduledSender is implemented by virtual-time transports whose
// transmissions can be scheduled to begin at an explicit instant. An
// asynchronous writer stamps each message with Now() when it is queued and
// transmits with SendScheduled, so pipelining does not distort virtual
// timing: the local clock may advance (the receive side runs concurrently)
// between enqueue and the actual write.
type ScheduledSender interface {
	Now() time.Duration
	SendScheduled(payload []byte, start time.Duration) error
}

// Recv receives and unmarshals the next message, discarding any trace
// context.
func Recv(c Conn) (Message, error) {
	m, _, err := RecvTraced(c)
	return m, err
}

// RecvTraced receives the next message together with its trace context
// (zero when the peer sent an untraced frame).
func RecvTraced(c Conn) (Message, TraceContext, error) {
	buf, err := c.Recv()
	if err != nil {
		return nil, TraceContext{}, err
	}
	if len(buf) > MaxFrame {
		return nil, TraceContext{}, ErrFrameTooLarge
	}
	return UnmarshalTraced(buf)
}

// RecvTracedReuse is RecvTraced over the zero-copy receive path: on
// transports implementing ReusableReceiver, the raw frame lands in a
// connection-owned buffer that the next receive recycles. Because
// UnmarshalTraced copies every field out of the frame, the returned Message
// is unconditionally safe to retain; only the raw frame bytes are recycled.
// Intended for exclusive receive loops (one goroutine draining a
// connection); other transports fall back to the allocating Recv.
func RecvTracedReuse(c Conn) (Message, TraceContext, error) {
	rr, ok := c.(ReusableReceiver)
	if !ok {
		return RecvTraced(c)
	}
	buf, err := rr.RecvReuse()
	if err != nil {
		return nil, TraceContext{}, err
	}
	if len(buf) > MaxFrame {
		return nil, TraceContext{}, ErrFrameTooLarge
	}
	return UnmarshalTraced(buf)
}
