// Package wire defines the shadow protocol: the messages exchanged between
// the client at a user's workstation and the shadow server at a
// supercomputer site, and their binary encoding.
//
// The protocol follows the paper's demand-driven design (§5.2, §6.4):
// notifications and submit requests are short messages that carry no bulk
// data; the server decides when to PULL file contents, and bulk transfer
// happens as deltas against cached versions whenever possible, falling back
// to full contents when the cache has no usable base. Job output is pushed
// to the client on completion (or routed to a third host), optionally as a
// delta against previously delivered output ("reverse shadow processing",
// §8.3).
package wire

import (
	"errors"
	"fmt"
	"time"
)

// ProtocolVersion identifies this revision of the shadow protocol.
// Version 2 added the optional trace-context header (see TraceContext);
// the body encodings of all messages are unchanged, so the server accepts
// every version down to MinProtocolVersion.
const ProtocolVersion = 2

// MinProtocolVersion is the oldest protocol revision the server still
// speaks. Version-1 peers never set the trace flag, so their frames decode
// exactly as before.
const MinProtocolVersion = 1

// MaxFrame bounds a single protocol frame; larger transfers are rejected
// rather than buffered without limit.
const MaxFrame = 64 << 20

// Conn is the message transport the protocol runs over. netsim.Conn
// implements it for simulated links; StreamConn adapts any reliable byte
// stream (for example a *net.TCPConn) for real deployments.
type Conn interface {
	// Send transmits one message payload.
	Send(payload []byte) error
	// Recv blocks for the next message payload.
	Recv() ([]byte, error)
	// Close releases the transport.
	Close() error
}

// Kind discriminates protocol messages.
type Kind uint8

// Protocol message kinds.
const (
	KindHello Kind = iota + 1
	KindHelloOK
	KindNotify
	KindPull
	KindFileDelta
	KindFileFull
	KindFileAck
	KindSubmit
	KindSubmitOK
	KindStatusReq
	KindStatusReply
	KindOutput
	KindOutputAck
	KindOutputFullReq
	KindError
	KindBye
)

var kindNames = map[Kind]string{
	KindHello:         "HELLO",
	KindHelloOK:       "HELLO_OK",
	KindNotify:        "NOTIFY",
	KindPull:          "PULL",
	KindFileDelta:     "FILE_DELTA",
	KindFileFull:      "FILE_FULL",
	KindFileAck:       "FILE_ACK",
	KindSubmit:        "SUBMIT",
	KindSubmitOK:      "SUBMIT_OK",
	KindStatusReq:     "STATUS_REQ",
	KindStatusReply:   "STATUS_REPLY",
	KindOutput:        "OUTPUT",
	KindOutputAck:     "OUTPUT_ACK",
	KindOutputFullReq: "OUTPUT_FULL_REQ",
	KindError:         "ERROR",
	KindBye:           "BYE",
}

// String returns the protocol name of the kind.
func (k Kind) String() string {
	if n, ok := kindNames[k]; ok {
		return n
	}
	return fmt.Sprintf("KIND(%d)", uint8(k))
}

// Errors reported by the codec.
var (
	// ErrBadMessage reports an undecodable message.
	ErrBadMessage = errors.New("wire: bad message")
	// ErrFrameTooLarge reports a frame exceeding MaxFrame.
	ErrFrameTooLarge = errors.New("wire: frame too large")
)

// FileRef is the globally unique name of a user file: the (domain id, file
// id) pair of the paper's naming design (§5.3). Domain identifies a naming
// domain (for example one NFS universe); FileID is unique within it (for
// example "host:/abs/path" after alias and mount resolution).
type FileRef struct {
	Domain string
	FileID string
}

// String renders the reference as domain//fileid.
func (f FileRef) String() string { return f.Domain + "//" + f.FileID }

// JobState is the lifecycle state of a submitted job.
type JobState uint8

// Job lifecycle states.
const (
	// JobQueued means the job awaits scheduling (the server may still be
	// retrieving its files).
	JobQueued JobState = iota + 1
	// JobFetching means the server is pulling input files it needs.
	JobFetching
	// JobRunning means the job is executing at the supercomputer.
	JobRunning
	// JobDone means the job finished and output is available/delivered.
	JobDone
	// JobFailed means the job could not be run or exited with an error.
	JobFailed
)

var jobStateNames = map[JobState]string{
	JobQueued:   "queued",
	JobFetching: "fetching",
	JobRunning:  "running",
	JobDone:     "done",
	JobFailed:   "failed",
}

// String returns the lower-case state name.
func (s JobState) String() string {
	if n, ok := jobStateNames[s]; ok {
		return n
	}
	return fmt.Sprintf("state(%d)", uint8(s))
}

// Terminal reports whether the state is final.
func (s JobState) Terminal() bool { return s == JobDone || s == JobFailed }

// traceFlag is set on the frame's kind byte when a trace-context header
// follows it. Message kinds are small constants (1..16), so the high bit is
// never part of a legitimate kind value — version-1 frames can never carry
// it, which is what keeps the header backward compatible.
const traceFlag = 0x80

// TraceContext is the causal metadata a frame may carry: the cycle's trace
// id and the sending side's span id, in the style of Dapper/X-Trace
// propagation. The zero value means "untraced"; untraced frames are encoded
// exactly as protocol version 1 did.
type TraceContext struct {
	TraceID uint64
	SpanID  uint64
}

// Valid reports whether the context names a real trace.
func (tc TraceContext) Valid() bool { return tc.TraceID != 0 }

// Message is one protocol message.
type Message interface {
	// Kind returns the message discriminator.
	Kind() Kind
	// encode appends the message body (not the kind byte).
	encode(e *encoder)
	// decode parses the message body.
	decode(d *decoder)
}

// Marshal serializes a message, kind byte first (untraced).
func Marshal(m Message) []byte {
	return MarshalTraced(m, TraceContext{})
}

// MarshalTraced serializes a message with an optional trace-context header.
// An invalid (zero) context produces exactly the version-1 encoding: the
// flag bit is only set when there is a header to read, so tracing-off
// traffic is byte-identical to the untraced protocol.
func MarshalTraced(m Message, tc TraceContext) []byte {
	e := &encoder{buf: make([]byte, 0, 64)}
	if tc.Valid() {
		e.byte(byte(m.Kind()) | traceFlag)
		e.uvarint(tc.TraceID)
		e.uvarint(tc.SpanID)
	} else {
		e.byte(byte(m.Kind()))
	}
	m.encode(e)
	return e.buf
}

// Unmarshal parses a message produced by Marshal or MarshalTraced,
// discarding any trace context.
func Unmarshal(buf []byte) (Message, error) {
	m, _, err := UnmarshalTraced(buf)
	return m, err
}

// UnmarshalTraced parses a message and its trace-context header, when
// present. Frames without the flag (every version-1 frame) decode with a
// zero context.
func UnmarshalTraced(buf []byte) (Message, TraceContext, error) {
	var tc TraceContext
	if len(buf) == 0 {
		return nil, tc, fmt.Errorf("%w: empty", ErrBadMessage)
	}
	d := &decoder{buf: buf[1:]}
	if buf[0]&traceFlag != 0 {
		tc.TraceID = d.uvarint()
		tc.SpanID = d.uvarint()
		if d.err != nil {
			return nil, TraceContext{}, fmt.Errorf("%w: bad trace header: %v", ErrBadMessage, d.err)
		}
		if !tc.Valid() {
			return nil, TraceContext{}, fmt.Errorf("%w: trace flag with zero trace id", ErrBadMessage)
		}
	}
	kind := Kind(buf[0] &^ traceFlag)
	m := newMessage(kind)
	if m == nil {
		return nil, TraceContext{}, fmt.Errorf("%w: unknown kind %d", ErrBadMessage, kind)
	}
	m.decode(d)
	if d.err != nil {
		return nil, TraceContext{}, fmt.Errorf("%w: %s: %v", ErrBadMessage, kind, d.err)
	}
	if len(d.buf) != 0 {
		return nil, TraceContext{}, fmt.Errorf("%w: %s: %d trailing bytes", ErrBadMessage, kind, len(d.buf))
	}
	return m, tc, nil
}

func newMessage(k Kind) Message {
	switch k {
	case KindHello:
		return &Hello{}
	case KindHelloOK:
		return &HelloOK{}
	case KindNotify:
		return &Notify{}
	case KindPull:
		return &Pull{}
	case KindFileDelta:
		return &FileDelta{}
	case KindFileFull:
		return &FileFull{}
	case KindFileAck:
		return &FileAck{}
	case KindSubmit:
		return &Submit{}
	case KindSubmitOK:
		return &SubmitOK{}
	case KindStatusReq:
		return &StatusReq{}
	case KindStatusReply:
		return &StatusReply{}
	case KindOutput:
		return &Output{}
	case KindOutputAck:
		return &OutputAck{}
	case KindOutputFullReq:
		return &OutputFullReq{}
	case KindError:
		return &ErrorMsg{}
	case KindBye:
		return &Bye{}
	default:
		return nil
	}
}

// Send marshals and transmits a message (untraced).
func Send(c Conn, m Message) error {
	return c.Send(Marshal(m))
}

// SendTraced marshals and transmits a message carrying tc. A zero context
// sends the plain version-1 frame.
func SendTraced(c Conn, m Message, tc TraceContext) error {
	return c.Send(MarshalTraced(m, tc))
}

// ScheduledSender is implemented by virtual-time transports whose
// transmissions can be scheduled to begin at an explicit instant. An
// asynchronous writer stamps each message with Now() when it is queued and
// transmits with SendScheduled, so pipelining does not distort virtual
// timing: the local clock may advance (the receive side runs concurrently)
// between enqueue and the actual write.
type ScheduledSender interface {
	Now() time.Duration
	SendScheduled(payload []byte, start time.Duration) error
}

// Recv receives and unmarshals the next message, discarding any trace
// context.
func Recv(c Conn) (Message, error) {
	m, _, err := RecvTraced(c)
	return m, err
}

// RecvTraced receives the next message together with its trace context
// (zero when the peer sent an untraced frame).
func RecvTraced(c Conn) (Message, TraceContext, error) {
	buf, err := c.Recv()
	if err != nil {
		return nil, TraceContext{}, err
	}
	if len(buf) > MaxFrame {
		return nil, TraceContext{}, ErrFrameTooLarge
	}
	return UnmarshalTraced(buf)
}
