package wire

import "fmt"

// Hello opens a session: the client identifies its user and naming domain.
type Hello struct {
	// Protocol is the client's protocol version.
	Protocol uint32
	// User is the submitting user's name.
	User string
	// Domain is the client's naming domain id (§5.3).
	Domain string
	// ClientHost is the host the client runs on, used for output routing.
	ClientHost string
}

// Kind implements Message.
func (*Hello) Kind() Kind { return KindHello }

func (m *Hello) encode(e *encoder) {
	e.uvarint(uint64(m.Protocol))
	e.string(m.User)
	e.string(m.Domain)
	e.string(m.ClientHost)
}

func (m *Hello) decode(d *decoder) {
	m.Protocol = uint32(d.uvarint())
	m.User = d.string()
	m.Domain = d.string()
	m.ClientHost = d.string()
}

// HelloOK accepts a session.
type HelloOK struct {
	// Session identifies the session at the server.
	Session uint64
	// ServerName is the server's advertised host name.
	ServerName string
	// Protocol is the protocol version the server agrees to speak on this
	// session — min(client's Hello.Protocol, server's ProtocolVersion). It
	// is a trailing optional the server only encodes when the client
	// advertised version 3 or newer: older clients receive the exact
	// pre-v3 frame (their decoders reject trailing bytes), and a zero
	// value on the client side therefore means "classic protocol".
	Protocol uint32
}

// Kind implements Message.
func (*HelloOK) Kind() Kind { return KindHelloOK }

func (m *HelloOK) encode(e *encoder) {
	e.uvarint(m.Session)
	e.string(m.ServerName)
	if m.Protocol != 0 {
		e.uvarint(uint64(m.Protocol))
	}
}

func (m *HelloOK) decode(d *decoder) {
	m.Session = d.uvarint()
	m.ServerName = d.string()
	if d.err == nil && len(d.buf) > 0 {
		m.Protocol = uint32(d.uvarint())
	}
}

// Notify tells the server a new version of a file exists (§6.4). It carries
// no content: the server pulls when it chooses (demand-driven flow control).
type Notify struct {
	File    FileRef
	Version uint64
	// Size and Sum describe the new version so the server can plan.
	Size int64
	Sum  uint32
}

// Kind implements Message.
func (*Notify) Kind() Kind { return KindNotify }

func (m *Notify) encode(e *encoder) {
	e.fileRef(m.File)
	e.uvarint(m.Version)
	e.uvarint(uint64(m.Size))
	e.uint32(m.Sum)
}

func (m *Notify) decode(d *decoder) {
	m.File = d.fileRef()
	m.Version = d.uvarint()
	m.Size = int64(d.uvarint())
	m.Sum = d.uint32()
}

// Pull asks the client for file content. HaveVersion is the newest version
// the server's cache holds (0 if none); the client answers with a FileDelta
// from that base when it still retains it, or a FileFull otherwise.
type Pull struct {
	File        FileRef
	HaveVersion uint64
	WantVersion uint64
}

// Kind implements Message.
func (*Pull) Kind() Kind { return KindPull }

func (m *Pull) encode(e *encoder) {
	e.fileRef(m.File)
	e.uvarint(m.HaveVersion)
	e.uvarint(m.WantVersion)
}

func (m *Pull) decode(d *decoder) {
	m.File = d.fileRef()
	m.HaveVersion = d.uvarint()
	m.WantVersion = d.uvarint()
}

// FileDelta carries the changes from BaseVersion to Version of a file as an
// encoded, self-verifying diff (see internal/diff), optionally compressed.
type FileDelta struct {
	File        FileRef
	BaseVersion uint64
	Version     uint64
	Encoded     []byte
	Compressed  bool
}

// Kind implements Message.
func (*FileDelta) Kind() Kind { return KindFileDelta }

func (m *FileDelta) encode(e *encoder) {
	e.fileRef(m.File)
	e.uvarint(m.BaseVersion)
	e.uvarint(m.Version)
	e.bytes(m.Encoded)
	e.bool(m.Compressed)
}

func (m *FileDelta) decode(d *decoder) {
	m.File = d.fileRef()
	m.BaseVersion = d.uvarint()
	m.Version = d.uvarint()
	m.Encoded = d.bytes()
	m.Compressed = d.bool()
}

// FileFull carries a complete version of a file — the fallback when no
// common base exists (first submission, or the cache evicted it).
type FileFull struct {
	File       FileRef
	Version    uint64
	Content    []byte
	Sum        uint32
	Compressed bool
}

// Kind implements Message.
func (*FileFull) Kind() Kind { return KindFileFull }

func (m *FileFull) encode(e *encoder) {
	e.fileRef(m.File)
	e.uvarint(m.Version)
	e.bytes(m.Content)
	e.uint32(m.Sum)
	e.bool(m.Compressed)
}

func (m *FileFull) decode(d *decoder) {
	m.File = d.fileRef()
	m.Version = d.uvarint()
	m.Content = d.bytes()
	m.Sum = d.uint32()
	m.Compressed = d.bool()
}

// FileAck confirms the server has stored the given version; the client may
// prune older retained versions (§6.3.2).
type FileAck struct {
	File    FileRef
	Version uint64
}

// Kind implements Message.
func (*FileAck) Kind() Kind { return KindFileAck }

func (m *FileAck) encode(e *encoder) {
	e.fileRef(m.File)
	e.uvarint(m.Version)
}

func (m *FileAck) decode(d *decoder) {
	m.File = d.fileRef()
	m.Version = d.uvarint()
}

// JobInput names one data file a job needs, pinned to a version.
type JobInput struct {
	File    FileRef
	Version uint64
	// As is the name the job's commands use to refer to the file.
	As string
}

// Submit requests execution of a job (§6.2). The job command file travels
// inline (it is small); data files are referenced by (file, version) and
// pulled by the server on demand.
type Submit struct {
	// Script is the job command file: one command per line.
	Script []byte
	// Inputs are the data files the commands read.
	Inputs []JobInput
	// OutputFile and ErrorFile optionally name where the client stores
	// results (paper: "optional arguments allow the user to specify the
	// names of files into which the system stores output and error
	// messages").
	OutputFile string
	ErrorFile  string
	// RouteHost optionally names a different host to deliver output to
	// (§8.3 "routing the output to different hosts").
	RouteHost string
	// WantOutputDelta asks for reverse shadow processing: if the server
	// cached the previous output of this same script, send a delta.
	WantOutputDelta bool
	// ClientTag, when nonzero, makes the submission idempotent: a client
	// that retries a SUBMIT over a new connection (its SUBMIT_OK may have
	// been lost) sends the same tag, and the server answers with the
	// already-created job instead of running it twice. Zero means
	// untagged; untagged submissions encode exactly as before this field
	// existed (it is a trailing optional), so clients that never retry
	// produce byte-identical wire traffic.
	ClientTag uint64
}

// Kind implements Message.
func (*Submit) Kind() Kind { return KindSubmit }

func (m *Submit) encode(e *encoder) {
	e.bytes(m.Script)
	e.uvarint(uint64(len(m.Inputs)))
	for _, in := range m.Inputs {
		e.fileRef(in.File)
		e.uvarint(in.Version)
		e.string(in.As)
	}
	e.string(m.OutputFile)
	e.string(m.ErrorFile)
	e.string(m.RouteHost)
	e.bool(m.WantOutputDelta)
	if m.ClientTag != 0 {
		e.uvarint(m.ClientTag)
	}
}

func (m *Submit) decode(d *decoder) {
	m.Script = d.bytes()
	n := d.uvarint()
	if d.err == nil && n > uint64(len(d.buf)) {
		d.fail("input count exceeds frame")
		return
	}
	m.Inputs = make([]JobInput, 0, n)
	for i := uint64(0); i < n && d.err == nil; i++ {
		var in JobInput
		in.File = d.fileRef()
		in.Version = d.uvarint()
		in.As = d.string()
		m.Inputs = append(m.Inputs, in)
	}
	m.OutputFile = d.string()
	m.ErrorFile = d.string()
	m.RouteHost = d.string()
	m.WantOutputDelta = d.bool()
	if d.err == nil && len(d.buf) > 0 {
		m.ClientTag = d.uvarint()
	}
}

// SubmitOK acknowledges a submission with the job identifier used by status
// queries.
type SubmitOK struct {
	Job uint64
}

// Kind implements Message.
func (*SubmitOK) Kind() Kind { return KindSubmitOK }

func (m *SubmitOK) encode(e *encoder) { e.uvarint(m.Job) }
func (m *SubmitOK) decode(d *decoder) { m.Job = d.uvarint() }

// StatusReq queries one job, or all of the session's jobs when All is set.
type StatusReq struct {
	Job uint64
	All bool
}

// Kind implements Message.
func (*StatusReq) Kind() Kind { return KindStatusReq }

func (m *StatusReq) encode(e *encoder) {
	e.uvarint(m.Job)
	e.bool(m.All)
}

func (m *StatusReq) decode(d *decoder) {
	m.Job = d.uvarint()
	m.All = d.bool()
}

// JobStatus reports one job's state.
type JobStatus struct {
	Job    uint64
	State  JobState
	Detail string
}

// StatusReply answers a StatusReq.
type StatusReply struct {
	Jobs []JobStatus
}

// Kind implements Message.
func (*StatusReply) Kind() Kind { return KindStatusReply }

func (m *StatusReply) encode(e *encoder) {
	e.uvarint(uint64(len(m.Jobs)))
	for _, j := range m.Jobs {
		e.uvarint(j.Job)
		e.byte(byte(j.State))
		e.string(j.Detail)
	}
}

func (m *StatusReply) decode(d *decoder) {
	n := d.uvarint()
	if d.err == nil && n > uint64(len(d.buf)) {
		d.fail("job count exceeds frame")
		return
	}
	m.Jobs = make([]JobStatus, 0, n)
	for i := uint64(0); i < n && d.err == nil; i++ {
		var j JobStatus
		j.Job = d.uvarint()
		j.State = JobState(d.byte())
		j.Detail = d.string()
		m.Jobs = append(m.Jobs, j)
	}
}

// OutputMode says how Output carries the job's stdout.
type OutputMode uint8

// Output transfer modes.
const (
	// OutputFull carries the complete stdout bytes.
	OutputFull OutputMode = iota + 1
	// OutputDelta carries an encoded diff against the previous output
	// delivered for the same script (reverse shadow processing).
	OutputDelta
)

// Output delivers a finished job's results. Stderr always travels in full
// (it is small and rarely repeats); stdout may travel as a delta.
type Output struct {
	Job      uint64
	State    JobState
	ExitCode int32
	Mode     OutputMode
	// Stdout holds full bytes (OutputFull) or an encoded diff
	// (OutputDelta) whose base is the previous output the client holds.
	Stdout     []byte
	Stderr     []byte
	Compressed bool
}

// Kind implements Message.
func (*Output) Kind() Kind { return KindOutput }

func (m *Output) encode(e *encoder) {
	e.uvarint(m.Job)
	e.byte(byte(m.State))
	e.uint32(uint32(m.ExitCode))
	e.byte(byte(m.Mode))
	e.bytes(m.Stdout)
	e.bytes(m.Stderr)
	e.bool(m.Compressed)
}

func (m *Output) decode(d *decoder) {
	m.Job = d.uvarint()
	m.State = JobState(d.byte())
	m.ExitCode = int32(d.uint32())
	m.Mode = OutputMode(d.byte())
	m.Stdout = d.bytes()
	m.Stderr = d.bytes()
	m.Compressed = d.bool()
}

// OutputAck confirms delivery so the server can release or recycle its
// cached copy of the output.
type OutputAck struct {
	Job uint64
}

// Kind implements Message.
func (*OutputAck) Kind() Kind { return KindOutputAck }

func (m *OutputAck) encode(e *encoder) { e.uvarint(m.Job) }
func (m *OutputAck) decode(d *decoder) { m.Job = d.uvarint() }

// OutputFullReq asks the server to resend a job's output in full, used when
// an output delta's base is gone on the client.
type OutputFullReq struct {
	Job uint64
}

// Kind implements Message.
func (*OutputFullReq) Kind() Kind { return KindOutputFullReq }

func (m *OutputFullReq) encode(e *encoder) { e.uvarint(m.Job) }
func (m *OutputFullReq) decode(d *decoder) { m.Job = d.uvarint() }

// ErrorMsg reports a protocol-level failure for a request.
type ErrorMsg struct {
	Code uint32
	Text string
}

// Error codes.
const (
	CodeInternal uint32 = iota + 1
	CodeBadRequest
	CodeUnknownFile
	CodeUnknownJob
	CodeUnknownVersion
	CodeOverloaded
)

// Kind implements Message.
func (*ErrorMsg) Kind() Kind { return KindError }

func (m *ErrorMsg) encode(e *encoder) {
	e.uint32(m.Code)
	e.string(m.Text)
}

func (m *ErrorMsg) decode(d *decoder) {
	m.Code = d.uint32()
	m.Text = d.string()
}

// Error renders the message as an error string.
func (m *ErrorMsg) Error() string {
	return fmt.Sprintf("shadow server error %d: %s", m.Code, m.Text)
}

// Bye closes a session gracefully.
type Bye struct{}

// Kind implements Message.
func (*Bye) Kind() Kind { return KindBye }

func (m *Bye) encode(*encoder) {}
func (m *Bye) decode(*decoder) {}
