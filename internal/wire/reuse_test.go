package wire

import (
	"bytes"
	"errors"
	"fmt"
	"net"
	"reflect"
	"testing"
)

// The buffer-reuse fast paths (AppendMarshal, UnmarshalInto, SendShared,
// RecvReuse) must be byte- and value-equivalent to the allocating paths, and
// recycled buffers must never leak bytes into a previously returned message.
// These tests pin both properties; the stress variants are meant to run
// under -race.

func TestAppendMarshalMatchesMarshalTraced(t *testing.T) {
	var scratch []byte
	for _, tc := range []TraceContext{{}, {TraceID: 0xBEEF, SpanID: 7}} {
		for _, m := range sampleMessages() {
			want := MarshalTraced(m, tc)
			// Reuse one scratch across every message: stale bytes from
			// the previous frame must never shine through.
			scratch = AppendMarshal(scratch[:0], m, tc)
			if !bytes.Equal(scratch, want) {
				t.Fatalf("%s (tc=%+v): AppendMarshal differs from MarshalTraced\n got %x\nwant %x",
					m.Kind(), tc, scratch, want)
			}
		}
	}
}

// zeroOf returns a fresh zero message of m's concrete type.
func zeroOf(m Message) Message {
	return reflect.New(reflect.TypeOf(m).Elem()).Interface().(Message)
}

func TestUnmarshalIntoRoundTrip(t *testing.T) {
	want := TraceContext{TraceID: 5, SpanID: 6}
	for _, m := range sampleMessages() {
		buf := MarshalTraced(m, want)
		into := zeroOf(m)
		tc, err := UnmarshalInto(into, buf)
		if err != nil {
			t.Fatalf("%s: UnmarshalInto: %v", m.Kind(), err)
		}
		if tc != want {
			t.Fatalf("%s: trace context %+v, want %+v", m.Kind(), tc, want)
		}
		if !reflect.DeepEqual(into, m) {
			t.Fatalf("%s: UnmarshalInto mismatch:\n got %#v\nwant %#v", m.Kind(), into, m)
		}
	}
}

func TestUnmarshalIntoKindMismatch(t *testing.T) {
	buf := Marshal(&Bye{})
	if _, err := UnmarshalInto(&Notify{}, buf); !errors.Is(err, ErrBadMessage) {
		t.Fatalf("kind mismatch not rejected: %v", err)
	}
}

func TestUnmarshalIntoTruncatedNeverPanics(t *testing.T) {
	for _, m := range sampleMessages() {
		full := Marshal(m)
		for n := 0; n < len(full); n++ {
			// Every strict prefix must either decode cleanly (messages
			// with optional trailing fields) or fail — never panic.
			_, _ = UnmarshalInto(zeroOf(m), full[:n])
		}
	}
	if _, err := UnmarshalInto(&Bye{}, nil); !errors.Is(err, ErrBadMessage) {
		t.Fatalf("empty frame not rejected: %v", err)
	}
}

// stressContent derives frame i's payload deterministically so the receiver
// can verify any retained message later.
func stressContent(i int) []byte {
	b := make([]byte, i%97+1)
	for j := range b {
		b[j] = byte(i*31 + j)
	}
	return b
}

// TestRecvReuseRetainedMessageSurvives drives a one-directional stream the
// way the client readloop and server session loop do — SendShared on one
// end, RecvTracedReuse on the other — and checks, for every frame, that the
// message decoded from the PREVIOUS frame is still intact after the receive
// buffer has been recycled underneath it.
func TestRecvReuseRetainedMessageSurvives(t *testing.T) {
	c1, c2 := net.Pipe()
	src, dst := NewStreamConn(c1), NewStreamConn(c2)
	defer src.Close()
	defer dst.Close()

	const frames = 2000
	errc := make(chan error, 1)
	go func() {
		defer close(errc)
		for i := 0; i < frames; i++ {
			m := &FileFull{
				File:    FileRef{Domain: "d", FileID: fmt.Sprintf("f%d", i%7)},
				Version: uint64(i),
				Content: stressContent(i),
				Sum:     uint32(i),
			}
			var tc TraceContext
			if i%2 == 1 {
				tc = TraceContext{TraceID: uint64(i), SpanID: uint64(i) + 1}
			}
			if err := SendShared(src, m, tc); err != nil {
				errc <- err
				return
			}
		}
	}()

	var prev *FileFull
	for i := 0; i < frames; i++ {
		m, tc, err := RecvTracedReuse(dst)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		ff, ok := m.(*FileFull)
		if !ok {
			t.Fatalf("frame %d: got %T", i, m)
		}
		if ff.Version != uint64(i) || !bytes.Equal(ff.Content, stressContent(i)) {
			t.Fatalf("frame %d corrupt: version %d, content %x", i, ff.Version, ff.Content)
		}
		if i%2 == 1 && (tc.TraceID != uint64(i) || tc.SpanID != uint64(i)+1) {
			t.Fatalf("frame %d: trace context %+v", i, tc)
		}
		// The receive buffer for frame i has overwritten frame i-1's
		// bytes by now; the decoded message must not have noticed.
		if prev != nil {
			if prev.Version != uint64(i-1) || !bytes.Equal(prev.Content, stressContent(i-1)) {
				t.Fatalf("frame %d: retained message %d was clobbered by buffer reuse", i, i-1)
			}
		}
		prev = ff
	}
	if err := <-errc; err != nil {
		t.Fatalf("sender: %v", err)
	}
}

// TestRecvReuseBidirectionalStress runs both directions of one connection
// pair at once — each side a dedicated SendShared writer and a dedicated
// RecvTracedReuse reader, the client+server shape — so the pooled encoders,
// send scratch and per-connection receive buffers are all exercised
// concurrently. Run with -race, this is the aliasing regression net.
func TestRecvReuseBidirectionalStress(t *testing.T) {
	c1, c2 := net.Pipe()
	a, b := NewStreamConn(c1), NewStreamConn(c2)
	defer a.Close()
	defer b.Close()

	const frames = 1000
	run := func(conn *StreamConn, errc chan<- error) {
		go func() {
			for i := 0; i < frames; i++ {
				m := &Output{Job: uint64(i), State: JobDone, Stdout: stressContent(i)}
				if err := SendShared(conn, m, TraceContext{TraceID: uint64(i + 1)}); err != nil {
					errc <- fmt.Errorf("send %d: %w", i, err)
					return
				}
			}
			errc <- nil
		}()
		go func() {
			var prev *Output
			for i := 0; i < frames; i++ {
				m, _, err := RecvTracedReuse(conn)
				if err != nil {
					errc <- fmt.Errorf("recv %d: %w", i, err)
					return
				}
				out, ok := m.(*Output)
				if !ok || out.Job != uint64(i) || !bytes.Equal(out.Stdout, stressContent(i)) {
					errc <- fmt.Errorf("recv %d: corrupt %#v", i, m)
					return
				}
				if prev != nil && !bytes.Equal(prev.Stdout, stressContent(i-1)) {
					errc <- fmt.Errorf("recv %d: previous message clobbered", i)
					return
				}
				prev = out
			}
			errc <- nil
		}()
	}
	errc := make(chan error, 4)
	run(a, errc)
	run(b, errc)
	for i := 0; i < 4; i++ {
		if err := <-errc; err != nil {
			t.Fatal(err)
		}
	}
}
