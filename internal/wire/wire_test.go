package wire

import (
	"errors"
	"net"
	"reflect"
	"testing"
	"testing/quick"
)

// sampleMessages is one fully-populated instance of every message type.
func sampleMessages() []Message {
	ref := FileRef{Domain: "nfs.purdue", FileID: "arthur:/u/comer/heat.f"}
	return []Message{
		&Hello{Protocol: ProtocolVersion, User: "comer", Domain: "nfs.purdue", ClientHost: "arthur"},
		&HelloOK{Session: 42, ServerName: "cyber205"},
		&HelloOK{Session: 43, ServerName: "cyber205", Protocol: ChunkProtocolVersion},
		&Notify{File: ref, Version: 7, Size: 102400, Sum: 0xDEADBEEF},
		&Pull{File: ref, HaveVersion: 6, WantVersion: 7},
		&FileDelta{File: ref, BaseVersion: 6, Version: 7, Encoded: []byte{1, 2, 3}, Compressed: true},
		&FileFull{File: ref, Version: 7, Content: []byte("hello\nworld\n"), Sum: 99, Compressed: false},
		&FileAck{File: ref, Version: 7},
		&Submit{
			Script: []byte("wc heat.f\n"),
			Inputs: []JobInput{
				{File: ref, Version: 7, As: "heat.f"},
				{File: FileRef{Domain: "nfs.purdue", FileID: "arthur:/u/comer/mesh.dat"}, Version: 2, As: "mesh.dat"},
			},
			OutputFile:      "run.out",
			ErrorFile:       "run.err",
			RouteHost:       "printer-host",
			WantOutputDelta: true,
		},
		&SubmitOK{Job: 1001},
		&StatusReq{Job: 1001, All: false},
		&StatusReq{All: true},
		&StatusReply{Jobs: []JobStatus{
			{Job: 1001, State: JobRunning, Detail: "running for 3s"},
			{Job: 1002, State: JobQueued, Detail: ""},
		}},
		&Output{Job: 1001, State: JobDone, ExitCode: 0, Mode: OutputFull,
			Stdout: []byte("120 heat.f\n"), Stderr: nil, Compressed: false},
		&Output{Job: 1002, State: JobFailed, ExitCode: -1, Mode: OutputDelta,
			Stdout: []byte{9, 9}, Stderr: []byte("no such command\n"), Compressed: true},
		&OutputAck{Job: 1001},
		&OutputFullReq{Job: 1002},
		&ErrorMsg{Code: CodeUnknownFile, Text: "never heard of it"},
		&FileManifest{
			File: ref, Version: 7, Sum: 0xFEEDF00D,
			Chunks: []ChunkRef{
				{Hash: [16]byte{1, 2, 3}, Len: 1024},
				{Hash: [16]byte{4, 5, 6}, Len: 512},
				{Hash: [16]byte{1, 2, 3}, Len: 1024}, // repeated chunk
			},
			Inline: []InlineChunk{{Index: 1, Data: []byte("fresh bytes")}},
		},
		&ChunkReq{File: ref, Version: 7, Hashes: [][16]byte{{4, 5, 6}, {7, 8, 9}}},
		&ChunkData{File: ref, Version: 7, Chunks: []ChunkBlob{
			{Hash: [16]byte{4, 5, 6}, Data: []byte("chunk body")},
			{Hash: [16]byte{7, 8, 9}, Data: nil},
		}},
		&TreeHead{Root: "arthur:/u/comer/project", Hash: [16]byte{0xAA, 1, 2}, Count: 10000},
		&TreeHead{Root: "arthur:/u/comer/empty", Hash: [16]byte{0xBB}},
		&TreeDiff{Root: "arthur:/u/comer/project",
			Want: []string{"", "src/pkg01"}, Dirs: []TreeDir{}},
		&TreeDiff{Root: "arthur:/u/comer/project", Want: []string{}, Dirs: []TreeDir{
			{Path: "", Entries: []TreeEntry{
				{Name: "src", Hash: [16]byte{1}, Dir: true},
				{Name: "run.job", Hash: [16]byte{2}},
			}},
			{Path: "src/pkg01", Entries: []TreeEntry{}},
		}},
		&TreeDiff{Root: "arthur:/u/comer/project",
			Want: []string{}, Dirs: []TreeDir{}, InSync: true},
		&BatchNotify{
			Notifies: []NotifyEntry{
				{File: ref, Version: 7, Size: 102400, Sum: 0xDEADBEEF},
				{File: FileRef{Domain: "nfs.purdue", FileID: "arthur:/u/comer/mesh.dat"}, Version: 1, Size: 12, Sum: 7},
			},
			Removed: []FileRef{{Domain: "nfs.purdue", FileID: "arthur:/u/comer/old.f"}},
		},
		&BatchNotify{Notifies: []NotifyEntry{}, Removed: []FileRef{}},
		&PeerHello{Instance: "shadow-b"},
		&PeerNotify{File: ref, HaveVersion: 6, WantVersion: 7},
		&PeerDelta{File: ref, BaseVersion: 6, Version: 7, Encoded: []byte{1, 2, 3}, Compressed: true},
		&PeerDelta{File: ref}, // negative: "can't serve, pull from the client"
		&PeerChunk{File: ref, Version: 7, Sum: 0xFEEDF00D, Chunks: []ChunkRef{
			{Hash: [16]byte{1, 2, 3}, Len: 1024},
			{Hash: [16]byte{4, 5, 6}, Len: 512},
		}},
		&Bye{},
	}
}

func TestMarshalRoundTripEveryMessage(t *testing.T) {
	for _, m := range sampleMessages() {
		t.Run(m.Kind().String(), func(t *testing.T) {
			buf := Marshal(m)
			got, err := Unmarshal(buf)
			if err != nil {
				t.Fatalf("Unmarshal: %v", err)
			}
			if !reflect.DeepEqual(got, m) {
				t.Fatalf("round trip mismatch:\n got %#v\nwant %#v", got, m)
			}
		})
	}
}

func TestMarshalTracedRoundTripEveryMessage(t *testing.T) {
	tc := TraceContext{TraceID: 0xABCDE12345, SpanID: 77}
	for _, m := range sampleMessages() {
		t.Run(m.Kind().String(), func(t *testing.T) {
			buf := MarshalTraced(m, tc)
			got, gotTC, err := UnmarshalTraced(buf)
			if err != nil {
				t.Fatalf("UnmarshalTraced: %v", err)
			}
			if gotTC != tc {
				t.Fatalf("trace context = %+v, want %+v", gotTC, tc)
			}
			if !reflect.DeepEqual(got, m) {
				t.Fatalf("round trip mismatch:\n got %#v\nwant %#v", got, m)
			}
			// Plain Unmarshal must accept the traced frame too (it just
			// drops the header) — old decode paths keep working.
			if got2, err := Unmarshal(buf); err != nil || !reflect.DeepEqual(got2, m) {
				t.Fatalf("Unmarshal of traced frame: %#v, %v", got2, err)
			}
		})
	}
}

// TestUntracedFramesUnchanged pins backward compatibility: a zero context
// must produce the exact version-1 encoding, and version-1 frames decode
// with a zero context.
func TestUntracedFramesUnchanged(t *testing.T) {
	for _, m := range sampleMessages() {
		plain := Marshal(m)
		traced := MarshalTraced(m, TraceContext{})
		if !reflect.DeepEqual(plain, traced) {
			t.Fatalf("%s: zero-context frame differs from untraced frame", m.Kind())
		}
		_, tc, err := UnmarshalTraced(plain)
		if err != nil {
			t.Fatalf("%s: %v", m.Kind(), err)
		}
		if tc.Valid() {
			t.Fatalf("%s: untraced frame decoded with context %+v", m.Kind(), tc)
		}
	}
}

// TestTraceContextPropertyRoundTrip is the property test for the
// trace-context header codec: any (message, context) pair survives
// encode/decode, and the flag bit appears exactly when the context is valid.
func TestTraceContextPropertyRoundTrip(t *testing.T) {
	samples := sampleMessages()
	f := func(pick uint8, traceID, spanID uint64) bool {
		m := samples[int(pick)%len(samples)]
		tc := TraceContext{TraceID: traceID, SpanID: spanID}
		buf := MarshalTraced(m, tc)
		if (buf[0]&traceFlag != 0) != tc.Valid() {
			return false
		}
		got, gotTC, err := UnmarshalTraced(buf)
		if err != nil {
			return false
		}
		if tc.Valid() {
			if gotTC != tc {
				return false
			}
		} else if gotTC.Valid() {
			return false
		}
		return reflect.DeepEqual(got, m)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

func TestTracedRejectsZeroTraceID(t *testing.T) {
	// A flagged frame whose header names trace 0 is malformed — an encoder
	// never produces it, so the decoder refuses rather than guessing.
	buf := []byte{byte(KindBye) | traceFlag, 0x00, 0x05}
	if _, _, err := UnmarshalTraced(buf); !errors.Is(err, ErrBadMessage) {
		t.Fatalf("err = %v, want ErrBadMessage", err)
	}
}

func TestUnmarshalRejectsTruncations(t *testing.T) {
	for _, m := range sampleMessages() {
		buf := Marshal(m)
		// HELLO_OK's Protocol field is trailing-optional by design: cutting
		// exactly it off yields a valid pre-v3 frame. That cut is the one
		// legitimate truncation in the whole corpus.
		optionalCut := -1
		if ok, isOK := m.(*HelloOK); isOK && ok.Protocol != 0 {
			base := *ok
			base.Protocol = 0
			optionalCut = len(Marshal(&base))
		}
		for cut := 0; cut < len(buf); cut++ {
			if cut == optionalCut {
				got, err := Unmarshal(buf[:cut])
				if err != nil {
					t.Fatalf("%s: protocol-less prefix rejected: %v", m.Kind(), err)
				}
				if got.(*HelloOK).Protocol != 0 {
					t.Fatalf("%s: truncated frame decoded a protocol", m.Kind())
				}
				continue
			}
			if _, err := Unmarshal(buf[:cut]); err == nil {
				// Some prefixes happen to decode as a shorter
				// valid message of the same kind only if all
				// fields were consumed; trailing-byte checks
				// make that impossible, so any success is a
				// bug.
				t.Fatalf("%s: %d/%d byte prefix decoded", m.Kind(), cut, len(buf))
			}
		}
		tc := TraceContext{TraceID: 1 << 40, SpanID: 9}
		traced := MarshalTraced(m, tc)
		tracedOptionalCut := -1
		if ok, isOK := m.(*HelloOK); isOK && ok.Protocol != 0 {
			base := *ok
			base.Protocol = 0
			tracedOptionalCut = len(MarshalTraced(&base, tc))
		}
		for cut := 0; cut < len(traced); cut++ {
			if cut == tracedOptionalCut {
				continue
			}
			if _, _, err := UnmarshalTraced(traced[:cut]); err == nil {
				t.Fatalf("%s: %d/%d byte traced prefix decoded", m.Kind(), cut, len(traced))
			}
		}
	}
}

func TestUnmarshalRejectsTrailing(t *testing.T) {
	buf := append(Marshal(&Bye{}), 0xFF)
	if _, err := Unmarshal(buf); err == nil {
		t.Fatal("trailing bytes accepted")
	}
}

func TestUnmarshalRejectsUnknownKind(t *testing.T) {
	if _, err := Unmarshal([]byte{0xEE}); !errors.Is(err, ErrBadMessage) {
		t.Fatalf("err = %v, want ErrBadMessage", err)
	}
	if _, err := Unmarshal(nil); !errors.Is(err, ErrBadMessage) {
		t.Fatalf("err = %v, want ErrBadMessage", err)
	}
}

func TestUnmarshalNeverPanics(t *testing.T) {
	f := func(b []byte) bool {
		_, _ = Unmarshal(b)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

func TestUnmarshalFuzzEveryKindPrefix(t *testing.T) {
	// Force the body decoder of each kind to run against random bodies.
	f := func(kindSeed uint8, body []byte) bool {
		kind := byte(kindSeed%uint8(KindPeerChunk) + 1)
		_, _ = Unmarshal(append([]byte{kind}, body...))
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

func TestKindString(t *testing.T) {
	if KindNotify.String() != "NOTIFY" {
		t.Errorf("KindNotify = %q", KindNotify.String())
	}
	if Kind(200).String() != "KIND(200)" {
		t.Errorf("unknown kind = %q", Kind(200).String())
	}
}

func TestJobStateHelpers(t *testing.T) {
	tests := []struct {
		state    JobState
		name     string
		terminal bool
	}{
		{JobQueued, "queued", false},
		{JobFetching, "fetching", false},
		{JobRunning, "running", false},
		{JobDone, "done", true},
		{JobFailed, "failed", true},
		{JobState(99), "state(99)", false},
	}
	for _, tt := range tests {
		if got := tt.state.String(); got != tt.name {
			t.Errorf("%d.String() = %q, want %q", tt.state, got, tt.name)
		}
		if got := tt.state.Terminal(); got != tt.terminal {
			t.Errorf("%v.Terminal() = %v, want %v", tt.state, got, tt.terminal)
		}
	}
}

func TestFileRefString(t *testing.T) {
	ref := FileRef{Domain: "d", FileID: "h:/p"}
	if ref.String() != "d//h:/p" {
		t.Errorf("String = %q", ref.String())
	}
}

func TestErrorMsgIsError(t *testing.T) {
	var err error = &ErrorMsg{Code: CodeOverloaded, Text: "busy"}
	if err.Error() != "shadow server error 6: busy" {
		t.Errorf("Error() = %q", err.Error())
	}
}

func TestStreamConnRoundTrip(t *testing.T) {
	a, b := net.Pipe()
	ca, cb := NewStreamConn(a), NewStreamConn(b)
	defer ca.Close()
	defer cb.Close()

	done := make(chan error, 1)
	go func() {
		msg, err := Recv(cb)
		if err != nil {
			done <- err
			return
		}
		done <- Send(cb, msg)
	}()
	want := &Notify{File: FileRef{Domain: "d", FileID: "f"}, Version: 3, Size: 10, Sum: 7}
	if err := Send(ca, want); err != nil {
		t.Fatal(err)
	}
	got, err := Recv(ca)
	if err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("echo = %#v, want %#v", got, want)
	}
}

func TestStreamConnRejectsOversizedSend(t *testing.T) {
	a, _ := net.Pipe()
	c := NewStreamConn(a)
	defer c.Close()
	if err := c.Send(make([]byte, MaxFrame+1)); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("err = %v, want ErrFrameTooLarge", err)
	}
}

func TestStreamConnRejectsOversizedRecv(t *testing.T) {
	a, b := net.Pipe()
	c := NewStreamConn(b)
	defer c.Close()
	go func() {
		// Header advertising a giant frame.
		_, _ = a.Write([]byte{0xFF, 0xFF, 0xFF, 0xFF})
	}()
	if _, err := c.Recv(); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("err = %v, want ErrFrameTooLarge", err)
	}
}

func TestStreamConnEmptyFrame(t *testing.T) {
	a, b := net.Pipe()
	ca, cb := NewStreamConn(a), NewStreamConn(b)
	go func() { _ = ca.Send(nil) }()
	got, err := cb.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("Recv = %v, want empty", got)
	}
}
