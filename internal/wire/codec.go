package wire

import (
	"bufio"
	"encoding/binary"
	"errors"
	"io"
	"sync"
)

// encoder appends primitive fields to a buffer.
type encoder struct {
	buf []byte
}

func (e *encoder) byte(b byte)       { e.buf = append(e.buf, b) }
func (e *encoder) uvarint(v uint64)  { e.buf = binary.AppendUvarint(e.buf, v) }
func (e *encoder) uint32(v uint32)   { e.buf = binary.LittleEndian.AppendUint32(e.buf, v) }
func (e *encoder) string(s string)   { e.uvarint(uint64(len(s))); e.buf = append(e.buf, s...) }
func (e *encoder) bytes(b []byte)    { e.uvarint(uint64(len(b))); e.buf = append(e.buf, b...) }
func (e *encoder) fileRef(f FileRef) { e.string(f.Domain); e.string(f.FileID) }
func (e *encoder) bool(v bool) {
	if v {
		e.byte(1)
	} else {
		e.byte(0)
	}
}

// decoder reads primitive fields, latching the first error.
//
// Decoded strings are interned in a per-decoder table: protocol strings
// (domains, file ids, user and host names) recur on every cycle of a
// session, and decoders are pooled, so the steady state decodes them
// without allocating. The table is capped and flushed wholesale if a
// workload somehow produces unbounded distinct strings.
type decoder struct {
	buf      []byte
	err      error
	interned map[string]string
}

const (
	// maxInternedLen bounds the size of strings worth interning — beyond
	// this they are unlikely to recur and would pin memory in the pool.
	maxInternedLen = 256
	// maxInternedEntries caps the intern table; reaching it flushes the
	// table rather than evicting piecemeal.
	maxInternedEntries = 4096
)

func (d *decoder) fail(msg string) {
	if d.err == nil {
		d.err = errors.New(msg)
	}
}

func (d *decoder) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if n < 0 || n > len(d.buf) {
		d.fail("truncated")
		return nil
	}
	out := d.buf[:n]
	d.buf = d.buf[n:]
	return out
}

func (d *decoder) byte() byte {
	b := d.take(1)
	if len(b) != 1 {
		return 0
	}
	return b[0]
}

func (d *decoder) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.buf)
	if n <= 0 {
		d.fail("bad uvarint")
		return 0
	}
	d.buf = d.buf[n:]
	return v
}

func (d *decoder) uint32() uint32 {
	b := d.take(4)
	if len(b) != 4 {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (d *decoder) string() string {
	n := d.uvarint()
	if d.err == nil && n > uint64(len(d.buf)) {
		d.fail("string length exceeds frame")
		return ""
	}
	b := d.take(int(n))
	if len(b) == 0 {
		return ""
	}
	if len(b) > maxInternedLen {
		return string(b)
	}
	// The map lookup keyed by string(b) does not allocate; only a miss
	// materializes the string.
	if s, ok := d.interned[string(b)]; ok {
		return s
	}
	if d.interned == nil {
		d.interned = make(map[string]string, 64)
	} else if len(d.interned) >= maxInternedEntries {
		clear(d.interned)
	}
	s := string(b)
	d.interned[s] = s
	return s
}

func (d *decoder) bytes() []byte {
	n := d.uvarint()
	if d.err == nil && n > uint64(len(d.buf)) {
		d.fail("byte length exceeds frame")
		return nil
	}
	b := d.take(int(n))
	if b == nil {
		return nil
	}
	return append([]byte(nil), b...)
}

func (d *decoder) bool() bool { return d.byte() != 0 }

func (d *decoder) fileRef() FileRef {
	return FileRef{Domain: d.string(), FileID: d.string()}
}

// Flusher is implemented by connections that buffer writes; callers that
// batch messages (the server's pipelined session writers) flush when a
// burst ends. Connections without buffering simply don't implement it.
type Flusher interface {
	Flush() error
}

// StreamConn adapts a reliable byte stream (a real TCP connection, a
// net.Pipe, a file) to the message-oriented Conn interface using 4-byte
// big-endian length framing.
//
// Unbuffered, each Send issues exactly one Write (header and payload are
// coalesced into one buffer) — one syscall per message on a socket. With
// NewBufferedStreamConn, frames accumulate in a write buffer until Flush,
// so a burst of messages costs one syscall total.
//
// Send copies the payload before returning (into the write buffer or the
// coalescing scratch), so callers may reuse payload slices across sends —
// StreamConn implements NonRetainingSender. RecvReuse reads frames into a
// connection-owned buffer pre-sized from a running high-water mark, so a
// steady receive loop performs no per-frame allocation.
type StreamConn struct {
	rw io.ReadWriteCloser

	sendMu  sync.Mutex
	bw      *bufio.Writer // nil when unbuffered
	sendBuf []byte        // unbuffered Send scratch, guarded by sendMu
	sendHW  int           // high-water frame size, guides scratch retention
	sendHdr [4]byte       // header scratch: a local would escape through bw.Write

	recvMu  sync.Mutex
	recvBuf []byte  // RecvReuse scratch, guarded by recvMu
	recvHW  int     // high-water frame size, guides scratch retention
	recvHdr [4]byte // header scratch: a local would escape through io.ReadFull
}

var (
	_ Conn               = (*StreamConn)(nil)
	_ Flusher            = (*StreamConn)(nil)
	_ NonRetainingSender = (*StreamConn)(nil)
	_ ReusableReceiver   = (*StreamConn)(nil)
)

// SendDoesNotRetain marks that Send finishes with the payload before
// returning; see NonRetainingSender.
func (s *StreamConn) SendDoesNotRetain() {}

// NewStreamConn frames messages over rw.
func NewStreamConn(rw io.ReadWriteCloser) *StreamConn {
	return &StreamConn{rw: rw}
}

// NewBufferedStreamConn frames messages over rw through a write buffer of
// the given size (<= 0 selects a default). The caller owns flushing: a
// message is not on the wire until Flush returns. Request/response peers
// that never flush will deadlock — use this only with an explicit
// flush-on-idle discipline, like the server's session writers.
func NewBufferedStreamConn(rw io.ReadWriteCloser, size int) *StreamConn {
	if size <= 0 {
		size = 32 << 10
	}
	return &StreamConn{rw: rw, bw: bufio.NewWriterSize(rw, size)}
}

// Send writes one length-prefixed frame.
func (s *StreamConn) Send(payload []byte) error {
	if len(payload) > MaxFrame {
		return ErrFrameTooLarge
	}
	s.sendMu.Lock()
	defer s.sendMu.Unlock()
	binary.BigEndian.PutUint32(s.sendHdr[:], uint32(len(payload)))
	if s.bw != nil {
		// Buffered: both pieces land in the buffer; the flush decides
		// when the syscall happens.
		if _, err := s.bw.Write(s.sendHdr[:]); err != nil {
			return err
		}
		_, err := s.bw.Write(payload)
		return err
	}
	// Unbuffered: coalesce header+payload so the frame is one Write —
	// and, on a socket, one syscall and one segment instead of two.
	s.sendBuf = append(s.sendBuf[:0], s.sendHdr[:]...)
	s.sendBuf = append(s.sendBuf, payload...)
	s.sendHW = highWater(s.sendHW, len(s.sendBuf))
	_, err := s.rw.Write(s.sendBuf)
	if cap(s.sendBuf) > 64<<10 && s.sendHW <= 64<<10 {
		// Don't pin a huge scratch after an outlier transfer; keep it
		// when frames of this size are the steady state.
		s.sendBuf = nil
	}
	return err
}

// highWater tracks a running high-water mark that rises instantly and decays
// slowly, so scratch buffers stay pre-sized for the steady state while
// one-off outliers stop pinning memory after a while.
func highWater(hw, n int) int {
	if n > hw {
		return n
	}
	return hw - (hw-n)/16
}

// Flush pushes buffered frames to the underlying stream; a no-op without a
// buffer.
func (s *StreamConn) Flush() error {
	s.sendMu.Lock()
	defer s.sendMu.Unlock()
	if s.bw == nil {
		return nil
	}
	return s.bw.Flush()
}

// Recv reads one length-prefixed frame into a fresh buffer the caller owns.
func (s *StreamConn) Recv() ([]byte, error) {
	s.recvMu.Lock()
	defer s.recvMu.Unlock()
	n, err := s.recvLen()
	if err != nil {
		return nil, err
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(s.rw, payload); err != nil {
		return nil, err
	}
	return payload, nil
}

// RecvReuse reads one length-prefixed frame into the connection's receive
// scratch, which is pre-sized from a running high-water mark of frame sizes.
// The returned slice is owned by the connection and valid only until the
// next Recv/RecvReuse call; see ReusableReceiver for the ownership rules.
func (s *StreamConn) RecvReuse() ([]byte, error) {
	s.recvMu.Lock()
	defer s.recvMu.Unlock()
	n, err := s.recvLen()
	if err != nil {
		return nil, err
	}
	s.recvHW = highWater(s.recvHW, n)
	if cap(s.recvBuf) < n || (cap(s.recvBuf) > 64<<10 && s.recvHW <= 64<<10) {
		s.recvBuf = make([]byte, max(n, s.recvHW))
	}
	payload := s.recvBuf[:n]
	if _, err := io.ReadFull(s.rw, payload); err != nil {
		return nil, err
	}
	return payload, nil
}

// recvLen reads and validates one frame header; the caller holds recvMu.
func (s *StreamConn) recvLen() (int, error) {
	if _, err := io.ReadFull(s.rw, s.recvHdr[:]); err != nil {
		return 0, err
	}
	n := binary.BigEndian.Uint32(s.recvHdr[:])
	if n > MaxFrame {
		return 0, ErrFrameTooLarge
	}
	return int(n), nil
}

// Close closes the underlying stream.
func (s *StreamConn) Close() error { return s.rw.Close() }
