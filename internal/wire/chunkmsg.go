package wire

// Protocol version 3: chunk transfer frames. A v3 client answers a Pull with
// a FileManifest — the wanted version as an ordered list of content-addressed
// chunk refs, inlining the chunks the server most likely lacks (those absent
// from the pull's HaveVersion base). The server resolves every ref it already
// holds from its chunk store and requests only the gaps with a ChunkReq; the
// client answers with ChunkData. A version is therefore never retransmitted
// wholesale: after cache pressure evicts a file, re-fetching it costs exactly
// the chunks that are actually gone.

// ChunkProtocolVersion is the first protocol version with the chunk
// transfer frames; peers negotiate them only when both ends advertise it
// (the server echoes the agreed version on HelloOK.Protocol).
const ChunkProtocolVersion = 3

// chunkHashLen is the wire size of a chunk address (truncated SHA-256;
// must match chunk.HashSize).
const chunkHashLen = 16

// chunkRefWireLen is the minimum encoded size of one ChunkRef (hash plus at
// least one length byte) — the count-guard floor for manifest decoding.
const chunkRefWireLen = chunkHashLen + 1

// ChunkRef is one manifest entry on the wire: a chunk's content address and
// its length. Offsets are implicit (chunks are contiguous in order).
type ChunkRef struct {
	Hash [chunkHashLen]byte
	Len  uint32
}

// InlineChunk carries one chunk's bytes piggybacked on a FileManifest,
// identified by its index into the manifest's Chunks.
type InlineChunk struct {
	Index uint32
	Data  []byte
}

// rawHash appends a fixed-size hash.
func (e *encoder) rawHash(h [chunkHashLen]byte) { e.buf = append(e.buf, h[:]...) }

// rawHash reads a fixed-size hash.
func (d *decoder) rawHash() (h [chunkHashLen]byte) {
	b := d.take(chunkHashLen)
	if len(b) == chunkHashLen {
		copy(h[:], b)
	}
	return h
}

// FileManifest is the v3 answer to a Pull: the wanted version described as
// chunk refs, with the chunks the sender believes the receiver lacks inlined.
type FileManifest struct {
	File    FileRef
	Version uint64
	// Sum is the whole-content checksum, verified after assembly exactly
	// as FileFull's is.
	Sum    uint32
	Chunks []ChunkRef
	Inline []InlineChunk
}

// Kind implements Message.
func (*FileManifest) Kind() Kind { return KindFileManifest }

// PayloadLen approximates the frame's transfer payload: the encoded refs
// plus the inline chunk bytes (for byte accounting, not exact encoding size).
func (m *FileManifest) PayloadLen() int {
	n := len(m.Chunks) * chunkRefWireLen
	for _, ic := range m.Inline {
		n += len(ic.Data)
	}
	return n
}

func (m *FileManifest) encode(e *encoder) {
	e.fileRef(m.File)
	e.uvarint(m.Version)
	e.uint32(m.Sum)
	e.uvarint(uint64(len(m.Chunks)))
	for _, c := range m.Chunks {
		e.rawHash(c.Hash)
		e.uvarint(uint64(c.Len))
	}
	e.uvarint(uint64(len(m.Inline)))
	for _, ic := range m.Inline {
		e.uvarint(uint64(ic.Index))
		e.bytes(ic.Data)
	}
}

func (m *FileManifest) decode(d *decoder) {
	m.File = d.fileRef()
	m.Version = d.uvarint()
	m.Sum = d.uint32()
	n := d.uvarint()
	if d.err == nil && n > uint64(len(d.buf))/chunkRefWireLen {
		d.fail("chunk count exceeds frame")
		return
	}
	m.Chunks = make([]ChunkRef, 0, n)
	for i := uint64(0); i < n && d.err == nil; i++ {
		var c ChunkRef
		c.Hash = d.rawHash()
		c.Len = uint32(d.uvarint())
		m.Chunks = append(m.Chunks, c)
	}
	n = d.uvarint()
	if d.err == nil && n > uint64(len(d.buf))/2 {
		d.fail("inline count exceeds frame")
		return
	}
	m.Inline = make([]InlineChunk, 0, n)
	for i := uint64(0); i < n && d.err == nil; i++ {
		var ic InlineChunk
		ic.Index = uint32(d.uvarint())
		ic.Data = d.bytes()
		m.Inline = append(m.Inline, ic)
	}
}

// ChunkReq asks the peer for the listed chunks of a file version it just
// described in a FileManifest — the "missing chunks only" fallback that
// replaces whole-file retransmission.
type ChunkReq struct {
	File    FileRef
	Version uint64
	Hashes  [][chunkHashLen]byte
}

// Kind implements Message.
func (*ChunkReq) Kind() Kind { return KindChunkReq }

func (m *ChunkReq) encode(e *encoder) {
	e.fileRef(m.File)
	e.uvarint(m.Version)
	e.uvarint(uint64(len(m.Hashes)))
	for _, h := range m.Hashes {
		e.rawHash(h)
	}
}

func (m *ChunkReq) decode(d *decoder) {
	m.File = d.fileRef()
	m.Version = d.uvarint()
	n := d.uvarint()
	if d.err == nil && n > uint64(len(d.buf))/chunkHashLen {
		d.fail("hash count exceeds frame")
		return
	}
	m.Hashes = make([][chunkHashLen]byte, 0, n)
	for i := uint64(0); i < n && d.err == nil; i++ {
		m.Hashes = append(m.Hashes, d.rawHash())
	}
}

// ChunkBlob is one chunk's bytes, addressed by its hash.
type ChunkBlob struct {
	Hash [chunkHashLen]byte
	Data []byte
}

// ChunkData answers a ChunkReq with the chunks the sender still holds. A
// requested chunk the sender no longer has is simply omitted; an incomplete
// answer makes the requester drop its pending assembly and re-pull, which
// converges on the sender's current head.
type ChunkData struct {
	File    FileRef
	Version uint64
	Chunks  []ChunkBlob
}

// Kind implements Message.
func (*ChunkData) Kind() Kind { return KindChunkData }

// PayloadLen approximates the frame's transfer payload: each chunk's address
// plus its bytes.
func (m *ChunkData) PayloadLen() int {
	n := 0
	for _, c := range m.Chunks {
		n += chunkHashLen + len(c.Data)
	}
	return n
}

func (m *ChunkData) encode(e *encoder) {
	e.fileRef(m.File)
	e.uvarint(m.Version)
	e.uvarint(uint64(len(m.Chunks)))
	for _, c := range m.Chunks {
		e.rawHash(c.Hash)
		e.bytes(c.Data)
	}
}

func (m *ChunkData) decode(d *decoder) {
	m.File = d.fileRef()
	m.Version = d.uvarint()
	n := d.uvarint()
	if d.err == nil && n > uint64(len(d.buf))/chunkRefWireLen {
		d.fail("chunk count exceeds frame")
		return
	}
	m.Chunks = make([]ChunkBlob, 0, n)
	for i := uint64(0); i < n && d.err == nil; i++ {
		var c ChunkBlob
		c.Hash = d.rawHash()
		c.Data = d.bytes()
		m.Chunks = append(m.Chunks, c)
	}
}
