package wire

import (
	"encoding/hex"
	"testing"
	"testing/quick"
)

// TestPreV5FramesByteIdentical pins the exact wire bytes of representative
// v1–v4 frames. Adding the v5 peer kinds must not perturb a single byte of
// existing traffic: v4-and-older peers negotiate their own version on the
// HelloOK trailing-optional field and never see a peer frame, so their
// streams have to stay byte-identical to what pre-v5 builds produced. The
// hex strings were captured from the v4 encoder; a mismatch here means the
// encoding of a pre-existing message changed.
func TestPreV5FramesByteIdentical(t *testing.T) {
	ref := FileRef{Domain: "nfs.purdue", FileID: "arthur:/u/comer/heat.f"}
	golden := []struct {
		msg Message
		hex string
	}{
		{&Hello{Protocol: 4, User: "comer", Domain: "nfs.purdue", ClientHost: "arthur"},
			"010405636f6d65720a6e66732e70757264756506617274687572"},
		{&HelloOK{Session: 42, ServerName: "cyber205"},
			"022a086379626572323035"},
		{&HelloOK{Session: 43, ServerName: "cyber205", Protocol: 3},
			"022b08637962657232303503"},
		{&Notify{File: ref, Version: 7, Size: 102400, Sum: 0xDEADBEEF},
			"030a6e66732e707572647565166172746875723a2f752f636f6d65722f686561742e660780a006efbeadde"},
		{&Pull{File: ref, HaveVersion: 6, WantVersion: 7},
			"040a6e66732e707572647565166172746875723a2f752f636f6d65722f686561742e660607"},
		{&FileDelta{File: ref, BaseVersion: 6, Version: 7, Encoded: []byte{1, 2, 3}, Compressed: true},
			"050a6e66732e707572647565166172746875723a2f752f636f6d65722f686561742e6606070301020301"},
		{&FileAck{File: ref, Version: 7},
			"070a6e66732e707572647565166172746875723a2f752f636f6d65722f686561742e6607"},
		{&Submit{Script: []byte("wc heat.f\n"), Inputs: []JobInput{{File: ref, Version: 7, As: "heat.f"}}, WantOutputDelta: true},
			"080a776320686561742e660a010a6e66732e707572647565166172746875723a2f752f636f6d65722f686561742e660706686561742e6600000001"},
		{&FileManifest{File: ref, Version: 7, Sum: 0xFEEDF00D, Chunks: []ChunkRef{{Hash: [16]byte{1, 2, 3}, Len: 1024}}, Inline: []InlineChunk{{Index: 0, Data: []byte("x")}}},
			"110a6e66732e707572647565166172746875723a2f752f636f6d65722f686561742e66070df0edfe0101020300000000000000000000000000800801000178"},
		{&TreeHead{Root: "arthur:/u/comer/project", Hash: [16]byte{0xAA, 1, 2}, Count: 10000},
			"14176172746875723a2f752f636f6d65722f70726f6a656374aa010200000000000000000000000000904e"},
		{&BatchNotify{Notifies: []NotifyEntry{{File: ref, Version: 7, Size: 12, Sum: 9}}},
			"16010a6e66732e707572647565166172746875723a2f752f636f6d65722f686561742e66070c0900000000"},
		{&Bye{}, "10"},
	}
	for _, g := range golden {
		want, err := hex.DecodeString(g.hex)
		if err != nil {
			t.Fatalf("bad golden hex for %s: %v", g.msg.Kind(), err)
		}
		got := Marshal(g.msg)
		if hex.EncodeToString(got) != g.hex {
			t.Errorf("%s frame changed:\n got %x\nwant %x", g.msg.Kind(), got, want)
		}
	}
}

// TestPeerKindsAboveV4Range pins that the new kinds sit strictly above every
// v4 kind: a v4 decoder rejects them as unknown instead of misparsing them
// as something else, and v4 senders can never emit them by accident.
func TestPeerKindsAboveV4Range(t *testing.T) {
	for _, k := range []Kind{KindPeerHello, KindPeerNotify, KindPeerDelta, KindPeerChunk} {
		if k <= KindBatchNotify {
			t.Errorf("kind %s = %d overlaps the v4 kind range", k, k)
		}
		if uint8(k)&traceFlag != 0 {
			t.Errorf("kind %s = %d collides with the trace flag", k, k)
		}
	}
	if PeerProtocolVersion != ProtocolVersion {
		t.Errorf("PeerProtocolVersion = %d, ProtocolVersion = %d", PeerProtocolVersion, ProtocolVersion)
	}
}

// TestPeerDeltaNegative pins the negative-answer convention.
func TestPeerDeltaNegative(t *testing.T) {
	if !(&PeerDelta{File: FileRef{Domain: "d", FileID: "f"}}).Negative() {
		t.Error("version-0 PeerDelta should be negative")
	}
	if (&PeerDelta{Version: 3}).Negative() {
		t.Error("version-3 PeerDelta should not be negative")
	}
}

// TestPeerFramePropertyRoundTrip: any PeerNotify/PeerDelta/PeerChunk
// survives the codec, traced or untraced.
func TestPeerFramePropertyRoundTrip(t *testing.T) {
	f := func(dom, file string, have, want uint64, enc []byte, comp bool, sum uint32, hash [16]byte, clen uint32, traceID uint64) bool {
		ref := FileRef{Domain: dom, FileID: file}
		tc := TraceContext{TraceID: traceID, SpanID: 1}
		for _, m := range []Message{
			&PeerHello{Instance: dom},
			&PeerNotify{File: ref, HaveVersion: have, WantVersion: want},
			&PeerDelta{File: ref, BaseVersion: have, Version: want, Encoded: enc, Compressed: comp},
			&PeerChunk{File: ref, Version: want, Sum: sum, Chunks: []ChunkRef{{Hash: hash, Len: clen}}},
		} {
			buf := MarshalTraced(m, tc)
			got, gotTC, err := UnmarshalTraced(buf)
			if err != nil {
				return false
			}
			if tc.Valid() && gotTC != tc {
				return false
			}
			if hex.EncodeToString(Marshal(got)) != hex.EncodeToString(Marshal(m)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// TestPeerFramesUntracedByteIdentical pins the exact wire bytes of the v5
// peer kinds, untraced and traced. Peer frames carrying no trace context
// must stay byte-identical to what the original v5 encoder produced — the
// trace header is strictly opt-in, present only when the 0x80 kind bit is
// set — and the traced encoding must be exactly that header (flagged kind +
// uvarint trace/span ids) followed by the identical untraced body.
func TestPeerFramesUntracedByteIdentical(t *testing.T) {
	ref := FileRef{Domain: "nfs.purdue", FileID: "arthur:/u/comer/heat.f"}
	tc := TraceContext{TraceID: 0xA11CE, SpanID: 3}
	golden := []struct {
		msg            Message
		hex, tracedHex string
	}{
		{&PeerHello{Instance: "super2"},
			"1706737570657232",
			"97cea3280306737570657232"},
		{&PeerNotify{File: ref, HaveVersion: 6, WantVersion: 7},
			"180a6e66732e707572647565166172746875723a2f752f636f6d65722f686561742e660607",
			"98cea328030a6e66732e707572647565166172746875723a2f752f636f6d65722f686561742e660607"},
		{&PeerDelta{File: ref, BaseVersion: 6, Version: 7, Encoded: []byte{1, 2, 3}, Compressed: true},
			"190a6e66732e707572647565166172746875723a2f752f636f6d65722f686561742e6606070301020301",
			"99cea328030a6e66732e707572647565166172746875723a2f752f636f6d65722f686561742e6606070301020301"},
		{&PeerChunk{File: ref, Version: 7, Sum: 0xFEEDF00D, Chunks: []ChunkRef{{Hash: [16]byte{1, 2, 3}, Len: 1024}}},
			"1a0a6e66732e707572647565166172746875723a2f752f636f6d65722f686561742e66070df0edfe01010203000000000000000000000000008008",
			"9acea328030a6e66732e707572647565166172746875723a2f752f636f6d65722f686561742e66070df0edfe01010203000000000000000000000000008008"},
	}
	for _, g := range golden {
		if got := hex.EncodeToString(Marshal(g.msg)); got != g.hex {
			t.Errorf("%s untraced frame changed:\n got %s\nwant %s", g.msg.Kind(), got, g.hex)
		}
		// A zero context must produce the untraced bytes, not a degenerate
		// header — this is what keeps untraced peer traffic v5-identical.
		if got := hex.EncodeToString(MarshalTraced(g.msg, TraceContext{})); got != g.hex {
			t.Errorf("%s zero-context MarshalTraced diverged from Marshal:\n got %s\nwant %s", g.msg.Kind(), got, g.hex)
		}
		if got := hex.EncodeToString(MarshalTraced(g.msg, tc)); got != g.tracedHex {
			t.Errorf("%s traced frame changed:\n got %s\nwant %s", g.msg.Kind(), got, g.tracedHex)
		}
		// Structural pin: the traced frame is the flagged kind byte, the two
		// uvarint ids, then the untraced body verbatim.
		untraced, traced := Marshal(g.msg), MarshalTraced(g.msg, tc)
		if traced[0] != untraced[0]|0x80 {
			t.Errorf("%s traced kind byte = %#x, want %#x", g.msg.Kind(), traced[0], untraced[0]|0x80)
		}
		body := traced[1:]
		for i := 0; i < 2; i++ { // skip the two uvarints
			n := 0
			for body[n]&0x80 != 0 {
				n++
			}
			body = body[n+1:]
		}
		if hex.EncodeToString(body) != hex.EncodeToString(untraced[1:]) {
			t.Errorf("%s traced body diverges from untraced body", g.msg.Kind())
		}
	}
}

// FuzzTracedPeerFrames seeds every truncation of the trace-context-bearing
// (0x80-bit) peer frames: the trace header adds a second variable-length
// region before the body, so cuts through the header and through the body
// shifted by it are distinct corpus territory from the untraced seeds in
// FuzzUnmarshal. The invariants mirror that fuzzer's: no panic, and any
// frame that decodes re-encodes stably with the same context.
func FuzzTracedPeerFrames(f *testing.F) {
	ref := FileRef{Domain: "nfs.purdue", FileID: "arthur:/u/comer/heat.f"}
	tc := TraceContext{TraceID: 0xA11CE, SpanID: 3}
	seeds := []Message{
		&PeerHello{Instance: "super2"},
		&PeerNotify{File: ref, HaveVersion: 6, WantVersion: 7},
		&PeerDelta{File: ref, BaseVersion: 6, Version: 7, Encoded: []byte{1, 2, 3}, Compressed: true},
		&PeerDelta{File: ref}, // negative answer
		&PeerChunk{File: ref, Version: 7, Sum: 0xFEEDF00D, Chunks: []ChunkRef{{Hash: [16]byte{1, 2, 3}, Len: 1024}}},
	}
	for _, m := range seeds {
		full := MarshalTraced(m, tc)
		for cut := 0; cut <= len(full); cut++ {
			f.Add(full[:cut])
		}
		// Maximal ids exercise the longest uvarint header encodings.
		f.Add(MarshalTraced(m, TraceContext{TraceID: ^uint64(0), SpanID: ^uint64(0)}))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		m, gotTC, err := UnmarshalTraced(data)
		if err != nil {
			return
		}
		re := MarshalTraced(m, gotTC)
		m2, tc2, err := UnmarshalTraced(re)
		if err != nil {
			t.Fatalf("re-encoded frame failed to decode: %v", err)
		}
		if tc2 != gotTC {
			t.Fatalf("trace context unstable: %+v -> %+v", gotTC, tc2)
		}
		if hex.EncodeToString(Marshal(m2)) != hex.EncodeToString(Marshal(m)) {
			t.Fatalf("message body unstable across re-encode")
		}
	})
}
