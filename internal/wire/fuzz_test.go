package wire

import (
	"bytes"
	"testing"
)

// FuzzUnmarshal explores the protocol decoder with arbitrary frames. The
// invariants: never panic, and any frame that decodes re-encodes to a
// payload that decodes to the same message (idempotent round trip).
func FuzzUnmarshal(f *testing.F) {
	for _, m := range sampleMessages() {
		f.Add(Marshal(m))
	}
	f.Add([]byte{})
	f.Add([]byte{0xFF})
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := Unmarshal(data)
		if err != nil {
			return
		}
		re := Marshal(m)
		m2, err := Unmarshal(re)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if !bytes.Equal(Marshal(m2), re) {
			t.Fatalf("round trip not stable")
		}
	})
}

// FuzzStreamFraming explores the length-prefixed stream codec.
func FuzzStreamFraming(f *testing.F) {
	f.Add([]byte("hello"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, payload []byte) {
		if len(payload) > MaxFrame {
			return
		}
		var buf bytes.Buffer
		sc := NewStreamConn(nopCloser{&buf})
		if err := sc.Send(payload); err != nil {
			t.Fatalf("send: %v", err)
		}
		got, err := sc.Recv()
		if err != nil {
			t.Fatalf("recv: %v", err)
		}
		if !bytes.Equal(got, payload) {
			t.Fatalf("frame round trip mismatch")
		}
	})
}

type nopCloser struct{ *bytes.Buffer }

func (nopCloser) Close() error { return nil }
