package wire

import (
	"bytes"
	"testing"
)

// FuzzUnmarshal explores the protocol decoder with arbitrary frames — with
// and without the optional trace-context header. The invariants: never
// panic, and any frame that decodes re-encodes (with its decoded context)
// to a payload that decodes to the same message and context (idempotent
// round trip).
func FuzzUnmarshal(f *testing.F) {
	for _, m := range sampleMessages() {
		f.Add(Marshal(m))
		f.Add(MarshalTraced(m, TraceContext{TraceID: 0xA11CE, SpanID: 3}))
	}
	f.Add([]byte{})
	f.Add([]byte{0xFF})
	f.Add([]byte{byte(KindBye) | traceFlag})          // flag with no header
	f.Add([]byte{byte(KindBye) | traceFlag, 1, 2})    // minimal traced frame
	f.Add([]byte{byte(KindNotify) | traceFlag, 0, 0}) // zero trace id
	f.Fuzz(func(t *testing.T, data []byte) {
		m, tc, err := UnmarshalTraced(data)
		if err != nil {
			return
		}
		re := MarshalTraced(m, tc)
		m2, tc2, err := UnmarshalTraced(re)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if tc2 != tc {
			t.Fatalf("trace context not stable: %+v != %+v", tc2, tc)
		}
		if !bytes.Equal(MarshalTraced(m2, tc2), re) {
			t.Fatalf("round trip not stable")
		}
		// The untraced decoder must accept the same frame, yielding the
		// same message with the header stripped.
		if m3, err := Unmarshal(data); err != nil {
			t.Fatalf("Unmarshal rejected a frame UnmarshalTraced accepted: %v", err)
		} else if !bytes.Equal(Marshal(m3), Marshal(m)) {
			t.Fatalf("traced/untraced decoders disagree on the message")
		}
	})
}

// FuzzStreamFraming explores the length-prefixed stream codec.
func FuzzStreamFraming(f *testing.F) {
	f.Add([]byte("hello"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, payload []byte) {
		if len(payload) > MaxFrame {
			return
		}
		var buf bytes.Buffer
		sc := NewStreamConn(nopCloser{&buf})
		if err := sc.Send(payload); err != nil {
			t.Fatalf("send: %v", err)
		}
		got, err := sc.Recv()
		if err != nil {
			t.Fatalf("recv: %v", err)
		}
		if !bytes.Equal(got, payload) {
			t.Fatalf("frame round trip mismatch")
		}
	})
}

type nopCloser struct{ *bytes.Buffer }

func (nopCloser) Close() error { return nil }
