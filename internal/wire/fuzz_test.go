package wire

import (
	"bytes"
	"testing"
)

// FuzzUnmarshal explores the protocol decoder with arbitrary frames — with
// and without the optional trace-context header. The invariants: never
// panic, and any frame that decodes re-encodes (with its decoded context)
// to a payload that decodes to the same message and context (idempotent
// round trip).
func FuzzUnmarshal(f *testing.F) {
	for _, m := range sampleMessages() {
		f.Add(Marshal(m))
		f.Add(MarshalTraced(m, TraceContext{TraceID: 0xA11CE, SpanID: 3}))
	}
	f.Add([]byte{})
	f.Add([]byte{0xFF})
	f.Add([]byte{byte(KindBye) | traceFlag})          // flag with no header
	f.Add([]byte{byte(KindBye) | traceFlag, 1, 2})    // minimal traced frame
	f.Add([]byte{byte(KindNotify) | traceFlag, 0, 0}) // zero trace id
	// Truncated peer frames (v5): every cut of each peer kind's sample, so
	// the decoder's count guards and hash reads are probed from the corpus.
	ref := FileRef{Domain: "nfs.purdue", FileID: "arthur:/u/comer/heat.f"}
	for _, m := range []Message{
		&PeerHello{Instance: "shadow-b"},
		&PeerNotify{File: ref, HaveVersion: 6, WantVersion: 7},
		&PeerDelta{File: ref, BaseVersion: 6, Version: 7, Encoded: []byte{1, 2, 3}, Compressed: true},
		&PeerChunk{File: ref, Version: 7, Sum: 0xFEEDF00D, Chunks: []ChunkRef{{Hash: [16]byte{1, 2, 3}, Len: 1024}}},
	} {
		full := Marshal(m)
		for cut := 0; cut < len(full); cut++ {
			f.Add(full[:cut])
		}
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		m, tc, err := UnmarshalTraced(data)
		if err != nil {
			return
		}
		re := MarshalTraced(m, tc)
		m2, tc2, err := UnmarshalTraced(re)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if tc2 != tc {
			t.Fatalf("trace context not stable: %+v != %+v", tc2, tc)
		}
		if !bytes.Equal(MarshalTraced(m2, tc2), re) {
			t.Fatalf("round trip not stable")
		}
		// The untraced decoder must accept the same frame, yielding the
		// same message with the header stripped.
		if m3, err := Unmarshal(data); err != nil {
			t.Fatalf("Unmarshal rejected a frame UnmarshalTraced accepted: %v", err)
		} else if !bytes.Equal(Marshal(m3), Marshal(m)) {
			t.Fatalf("traced/untraced decoders disagree on the message")
		}
	})
}

// FuzzUnmarshalInto checks that the preallocated decode path agrees with
// the allocating one on every input: same accept/reject decision, same
// message value, same trace context. Seeds include truncated frames at
// several cut points — the crash class this decoder historically risks.
func FuzzUnmarshalInto(f *testing.F) {
	for _, m := range sampleMessages() {
		full := MarshalTraced(m, TraceContext{TraceID: 7, SpanID: 9})
		f.Add(full)
		for _, n := range []int{0, 1, 2, len(full) / 2, len(full) - 1} {
			if n >= 0 && n < len(full) {
				f.Add(full[:n])
			}
		}
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		want, wantTC, wantErr := UnmarshalTraced(data)
		if len(data) == 0 {
			if wantErr == nil {
				t.Fatal("empty frame accepted")
			}
			return
		}
		into := newMessage(Kind(data[0] &^ traceFlag))
		if into == nil {
			return // unknown kind; UnmarshalInto has no target to try
		}
		tc, err := UnmarshalInto(into, data)
		if (err == nil) != (wantErr == nil) {
			t.Fatalf("decoders disagree: UnmarshalInto err=%v, UnmarshalTraced err=%v", err, wantErr)
		}
		if err != nil {
			return
		}
		if tc != wantTC {
			t.Fatalf("trace context %+v, want %+v", tc, wantTC)
		}
		if !bytes.Equal(MarshalTraced(into, tc), MarshalTraced(want, wantTC)) {
			t.Fatalf("decoders disagree on the message:\n got %#v\nwant %#v", into, want)
		}
	})
}

// FuzzStreamFraming explores the length-prefixed stream codec.
func FuzzStreamFraming(f *testing.F) {
	f.Add([]byte("hello"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, payload []byte) {
		if len(payload) > MaxFrame {
			return
		}
		var buf bytes.Buffer
		sc := NewStreamConn(nopCloser{&buf})
		if err := sc.Send(payload); err != nil {
			t.Fatalf("send: %v", err)
		}
		got, err := sc.Recv()
		if err != nil {
			t.Fatalf("recv: %v", err)
		}
		if !bytes.Equal(got, payload) {
			t.Fatalf("frame round trip mismatch")
		}
	})
}

type nopCloser struct{ *bytes.Buffer }

func (nopCloser) Close() error { return nil }
