package wire

// Protocol version 5: cluster peer frames. Shadowd instances in a cluster
// open ordinary protocol sessions to each other and mark them server-to-
// server with a PeerHello. On peer sessions the file-placement ring (see
// internal/cluster) names one instance as each file's owner; non-owners
// fetch a hot file from its owner with PeerNotify instead of pulling it
// from the client a second time. The owner answers with the smallest thing
// that works: a PeerDelta forwarding the very delta the client sent it, a
// PeerChunk manifest resolved against the requester's chunk store (gaps
// travel as ordinary ChunkReq/ChunkData on the same session), or a
// PeerDelta with Version 0 — "I can't serve this, pull it from the client
// yourself". Full file bodies never cross a peer link: there is no peer
// full-file frame at all.

// PeerProtocolVersion is the first protocol version with the cluster peer
// frames; instances peer only when both ends advertise it. Older instances
// answer HelloOK with their lower version and the dialer simply does not
// peer with them — single-server traffic is untouched.
const PeerProtocolVersion = 5

// PeerHello marks an established session as server-to-server. It follows
// the ordinary Hello/HelloOK exchange (which already negotiated the
// protocol version); Instance is the sender's cluster member name, which
// the receiver uses to place the session on its ring.
type PeerHello struct {
	// Instance is the dialing server's cluster member name.
	Instance string
}

// Kind implements Message.
func (*PeerHello) Kind() Kind { return KindPeerHello }

func (m *PeerHello) encode(e *encoder) { e.string(m.Instance) }
func (m *PeerHello) decode(d *decoder) { m.Instance = d.string() }

// PeerNotify asks a file's owner for a version: "I need WantVersion of
// File and hold HaveVersion (0 if none)". The owner answers with a
// PeerDelta or PeerChunk for exactly (HaveVersion, WantVersion-or-newer),
// or a negative PeerDelta when it cannot serve the file.
type PeerNotify struct {
	File        FileRef
	HaveVersion uint64
	WantVersion uint64
}

// Kind implements Message.
func (*PeerNotify) Kind() Kind { return KindPeerNotify }

func (m *PeerNotify) encode(e *encoder) {
	e.fileRef(m.File)
	e.uvarint(m.HaveVersion)
	e.uvarint(m.WantVersion)
}

func (m *PeerNotify) decode(d *decoder) {
	m.File = d.fileRef()
	m.HaveVersion = d.uvarint()
	m.WantVersion = d.uvarint()
}

// PeerDelta forwards a version delta between peers — typically the very
// FILE_DELTA frame body the owner received from the client, re-sent
// verbatim (Difference Based Content Networking style: diffs propagate
// node-to-node, full content does not).
//
// Version 0 is the negative answer: the owner cannot serve the requested
// file (evicted, never seen, or no usable base) and the requester should
// pull from the client itself. A negative answer carries no delta bytes.
type PeerDelta struct {
	File        FileRef
	BaseVersion uint64
	Version     uint64
	Encoded     []byte
	Compressed  bool
}

// Kind implements Message.
func (*PeerDelta) Kind() Kind { return KindPeerDelta }

// Negative reports whether the frame is the "can't serve" answer.
func (m *PeerDelta) Negative() bool { return m.Version == 0 }

func (m *PeerDelta) encode(e *encoder) {
	e.fileRef(m.File)
	e.uvarint(m.BaseVersion)
	e.uvarint(m.Version)
	e.bytes(m.Encoded)
	e.bool(m.Compressed)
}

func (m *PeerDelta) decode(d *decoder) {
	m.File = d.fileRef()
	m.BaseVersion = d.uvarint()
	m.Version = d.uvarint()
	m.Encoded = d.bytes()
	m.Compressed = d.bool()
}

// PeerChunk is the owner's manifest answer when it holds the wanted version
// but no delta from the requester's base: the version as content-addressed
// chunk refs, exactly like a FileManifest but flowing server-to-server.
// The requester resolves refs against its own chunk store and requests only
// the gaps with a ChunkReq on the same peer session; Sum verifies the
// assembled content.
type PeerChunk struct {
	File    FileRef
	Version uint64
	Sum     uint32
	Chunks  []ChunkRef
}

// Kind implements Message.
func (*PeerChunk) Kind() Kind { return KindPeerChunk }

// PayloadLen approximates the frame's transfer payload: the encoded refs
// (for byte accounting, not exact encoding size).
func (m *PeerChunk) PayloadLen() int { return len(m.Chunks) * chunkRefWireLen }

func (m *PeerChunk) encode(e *encoder) {
	e.fileRef(m.File)
	e.uvarint(m.Version)
	e.uint32(m.Sum)
	e.uvarint(uint64(len(m.Chunks)))
	for _, c := range m.Chunks {
		e.rawHash(c.Hash)
		e.uvarint(uint64(c.Len))
	}
}

func (m *PeerChunk) decode(d *decoder) {
	m.File = d.fileRef()
	m.Version = d.uvarint()
	m.Sum = d.uint32()
	n := d.uvarint()
	if d.err == nil && n > uint64(len(d.buf))/chunkRefWireLen {
		d.fail("chunk count exceeds frame")
		return
	}
	m.Chunks = make([]ChunkRef, 0, n)
	for i := uint64(0); i < n && d.err == nil; i++ {
		var c ChunkRef
		c.Hash = d.rawHash()
		c.Len = uint32(d.uvarint())
		m.Chunks = append(m.Chunks, c)
	}
}
