package wire

// Protocol version 4: directory reconciliation frames. A v4 client opens a
// workspace sync by sending a TreeHead — the Merkle-style summary of one
// directory tree, where each leaf is the fingerprint of a file's chunk
// manifest and each interior node hashes its children in sorted name order.
// When the server's summary of the same tree matches, the exchange ends in
// one round trip (TreeDiff with InSync set). Otherwise the two sides walk
// only the divergent subtrees: the client asks for directory listings with
// TreeDiff.Want, the server answers with TreeDiff.Dirs, and the changed
// leaves the walk uncovers travel as one BatchNotify instead of a per-file
// notify storm. The pulls, transfers and acks a BatchNotify provokes ride
// the existing per-file machinery (pipelined session writer, flight
// coalescing, chunk transfer), so tree sync changes how divergence is
// *discovered*, not how bytes move.

// TreeProtocolVersion is the first protocol version with the directory
// reconciliation frames; peers use them only when both ends advertise it
// (the server echoes the agreed version on HelloOK.Protocol).
const TreeProtocolVersion = 4

// treeEntryWireLen is the minimum encoded size of one TreeEntry (one name
// length byte, the hash, the dir flag) — the count-guard floor for
// directory-listing decoding.
const treeEntryWireLen = 1 + chunkHashLen + 1

// notifyEntryWireLen is the minimum encoded size of one NotifyEntry (two
// string length bytes for the file ref, version, size, checksum).
const notifyEntryWireLen = 2 + 1 + 1 + 4

// TreeHead announces one side's Merkle summary of a workspace: the root
// directory (as a file-id prefix in the session's naming domain), the root
// hash, and the number of files beneath it. The receiver compares against
// its own summary of the same root and answers with a TreeDiff.
type TreeHead struct {
	// Root is the canonical file-id prefix of the workspace directory
	// ("host:/abs/path" after alias and mount resolution, no trailing
	// slash); the files of the workspace are exactly the ids beneath it.
	Root string
	// Hash is the Merkle root: interior nodes hash their children in
	// sorted name order, leaves are chunk-manifest fingerprints.
	Hash [chunkHashLen]byte
	// Count is the number of files in the tree (0 for an empty workspace).
	Count uint32
}

// Kind implements Message.
func (*TreeHead) Kind() Kind { return KindTreeHead }

func (m *TreeHead) encode(e *encoder) {
	e.string(m.Root)
	e.rawHash(m.Hash)
	e.uvarint(uint64(m.Count))
}

func (m *TreeHead) decode(d *decoder) {
	m.Root = d.string()
	m.Hash = d.rawHash()
	m.Count = uint32(d.uvarint())
}

// TreeEntry is one name in a directory listing: a file (leaf fingerprint)
// or a subdirectory (interior hash).
type TreeEntry struct {
	Name string
	Hash [chunkHashLen]byte
	Dir  bool
}

// TreeDir is one directory's listing, addressed by its slash path relative
// to the workspace root ("" is the root itself).
type TreeDir struct {
	Path    string
	Entries []TreeEntry
}

// TreeDiff carries one step of the reconciliation walk, in either
// direction. As a request (client to server) Want lists the relative
// directory paths whose listings the client needs — every directory whose
// hash differed at the previous level. As a reply (server to client) Dirs
// holds those listings, or InSync reports that the roots already match and
// no walk is needed. A requested directory the server's tree lacks comes
// back as an empty listing, which the client reads as "everything beneath
// is missing on the server".
type TreeDiff struct {
	Root   string
	Want   []string
	Dirs   []TreeDir
	InSync bool
}

// Kind implements Message.
func (*TreeDiff) Kind() Kind { return KindTreeDiff }

func (m *TreeDiff) encode(e *encoder) {
	e.string(m.Root)
	e.uvarint(uint64(len(m.Want)))
	for _, w := range m.Want {
		e.string(w)
	}
	e.uvarint(uint64(len(m.Dirs)))
	for _, dir := range m.Dirs {
		e.string(dir.Path)
		e.uvarint(uint64(len(dir.Entries)))
		for _, ent := range dir.Entries {
			e.string(ent.Name)
			e.rawHash(ent.Hash)
			e.bool(ent.Dir)
		}
	}
	e.bool(m.InSync)
}

func (m *TreeDiff) decode(d *decoder) {
	m.Root = d.string()
	n := d.uvarint()
	if d.err == nil && n > uint64(len(d.buf)) {
		d.fail("want count exceeds frame")
		return
	}
	m.Want = make([]string, 0, n)
	for i := uint64(0); i < n && d.err == nil; i++ {
		m.Want = append(m.Want, d.string())
	}
	n = d.uvarint()
	if d.err == nil && n > uint64(len(d.buf))/2 {
		d.fail("dir count exceeds frame")
		return
	}
	m.Dirs = make([]TreeDir, 0, n)
	for i := uint64(0); i < n && d.err == nil; i++ {
		var dir TreeDir
		dir.Path = d.string()
		en := d.uvarint()
		if d.err == nil && en > uint64(len(d.buf))/treeEntryWireLen {
			d.fail("entry count exceeds frame")
			return
		}
		dir.Entries = make([]TreeEntry, 0, en)
		for j := uint64(0); j < en && d.err == nil; j++ {
			var ent TreeEntry
			ent.Name = d.string()
			ent.Hash = d.rawHash()
			ent.Dir = d.bool()
			dir.Entries = append(dir.Entries, ent)
		}
		m.Dirs = append(m.Dirs, dir)
	}
	m.InSync = d.bool()
}

// NotifyEntry is one file's notification inside a BatchNotify — the same
// facts a per-file Notify carries.
type NotifyEntry struct {
	File    FileRef
	Version uint64
	Size    int64
	Sum     uint32
}

// BatchNotify announces every divergent file a tree walk uncovered in one
// frame: the files whose new versions the server should pull, and the files
// the server still summarizes but the client no longer has (the server
// drops them from its cache so the next walk converges). The server answers
// each notify exactly as it answers a per-file Notify — pull now, defer, or
// ack immediately when its cache is already current — so batching changes
// the control-message count, not the transfer semantics.
type BatchNotify struct {
	Notifies []NotifyEntry
	Removed  []FileRef
}

// Kind implements Message.
func (*BatchNotify) Kind() Kind { return KindBatchNotify }

func (m *BatchNotify) encode(e *encoder) {
	e.uvarint(uint64(len(m.Notifies)))
	for _, n := range m.Notifies {
		e.fileRef(n.File)
		e.uvarint(n.Version)
		e.uvarint(uint64(n.Size))
		e.uint32(n.Sum)
	}
	e.uvarint(uint64(len(m.Removed)))
	for _, r := range m.Removed {
		e.fileRef(r)
	}
}

func (m *BatchNotify) decode(d *decoder) {
	n := d.uvarint()
	if d.err == nil && n > uint64(len(d.buf))/notifyEntryWireLen {
		d.fail("notify count exceeds frame")
		return
	}
	m.Notifies = make([]NotifyEntry, 0, n)
	for i := uint64(0); i < n && d.err == nil; i++ {
		var ne NotifyEntry
		ne.File = d.fileRef()
		ne.Version = d.uvarint()
		ne.Size = int64(d.uvarint())
		ne.Sum = d.uint32()
		m.Notifies = append(m.Notifies, ne)
	}
	n = d.uvarint()
	if d.err == nil && n > uint64(len(d.buf))/2 {
		d.fail("removed count exceeds frame")
		return
	}
	m.Removed = make([]FileRef, 0, n)
	for i := uint64(0); i < n && d.err == nil; i++ {
		m.Removed = append(m.Removed, d.fileRef())
	}
}
