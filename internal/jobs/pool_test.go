package jobs

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestPoolRunsEverything(t *testing.T) {
	p := NewPool(4)
	var count atomic.Int64
	for i := 0; i < 100; i++ {
		if err := p.Submit(func() { count.Add(1) }); err != nil {
			t.Fatal(err)
		}
	}
	p.Close()
	if count.Load() != 100 {
		t.Fatalf("ran %d tasks, want 100", count.Load())
	}
}

func TestPoolBoundsConcurrency(t *testing.T) {
	const workers = 3
	p := NewPool(workers)
	defer p.Close()

	var cur, peak atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 50; i++ {
		wg.Add(1)
		err := p.Submit(func() {
			defer wg.Done()
			n := cur.Add(1)
			for {
				old := peak.Load()
				if n <= old || peak.CompareAndSwap(old, n) {
					break
				}
			}
			time.Sleep(time.Millisecond)
			cur.Add(-1)
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	wg.Wait()
	if got := peak.Load(); got > workers {
		t.Fatalf("peak concurrency %d exceeds %d workers", got, workers)
	}
}

func TestPoolSubmitAfterClose(t *testing.T) {
	p := NewPool(1)
	p.Close()
	if err := p.Submit(func() {}); !errors.Is(err, ErrPoolClosed) {
		t.Fatalf("Submit after Close = %v, want ErrPoolClosed", err)
	}
}

func TestPoolCloseIdempotent(t *testing.T) {
	p := NewPool(2)
	if err := p.Submit(func() {}); err != nil {
		t.Fatal(err)
	}
	p.Close()
	p.Close() // must not panic or deadlock
}

func TestPoolLoad(t *testing.T) {
	p := NewPool(1)
	defer p.Close()
	release := make(chan struct{})
	started := make(chan struct{})
	if err := p.Submit(func() { close(started); <-release }); err != nil {
		t.Fatal(err)
	}
	<-started
	if err := p.Submit(func() {}); err != nil {
		t.Fatal(err)
	}
	// One running, one queued.
	deadline := time.After(2 * time.Second)
	for {
		queued, running := p.Load()
		if queued == 1 && running == 1 {
			break
		}
		select {
		case <-deadline:
			t.Fatalf("Load = (%d, %d), want (1, 1)", queued, running)
		default:
			time.Sleep(time.Millisecond)
		}
	}
	close(release)
}

func TestPoolMinimumOneWorker(t *testing.T) {
	p := NewPool(0)
	var ran atomic.Bool
	if err := p.Submit(func() { ran.Store(true) }); err != nil {
		t.Fatal(err)
	}
	p.Close()
	if !ran.Load() {
		t.Fatal("task never ran with clamped worker count")
	}
}
