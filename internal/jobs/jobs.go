// Package jobs implements the batch subsystem that plays the supercomputer's
// part: parsing job command files, executing their commands over submitted
// data files, and bounding concurrent execution.
//
// The paper's prototype used "a remote UNIX system" as the supercomputer and
// a job command file containing "one or more lines where each line specifies
// a command (along with its arguments) to be executed at the remote host"
// (§6.2). This package provides a deterministic, sandboxed interpreter for
// such command files: commands read only the submitted input files and write
// only to the job's stdout/stderr, so job results are a pure function of
// (script, inputs) — which the integration tests exploit by comparing remote
// results against local execution.
package jobs

import (
	"bytes"
	"errors"
	"fmt"
	"hash/crc32"
	"math/rand"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"time"
)

// ErrBadScript reports an unparsable or unsupported job command file.
var ErrBadScript = errors.New("jobs: bad script")

// Command is one parsed job command.
type Command struct {
	Name string
	Args []string
}

// String renders the command as typed.
func (c Command) String() string {
	if len(c.Args) == 0 {
		return c.Name
	}
	return c.Name + " " + strings.Join(c.Args, " ")
}

// knownCommands lists the interpreter's vocabulary.
var knownCommands = map[string]bool{
	"cat": true, "wc": true, "grep": true, "sort": true, "uniq": true,
	"head": true, "tail": true, "rev": true, "checksum": true,
	"echo": true, "expand": true, "matmul": true, "sleep": true,
	"stall": true, "stats": true, "colsum": true,
}

// Commands returns the interpreter's vocabulary, sorted.
func Commands() []string {
	out := make([]string, 0, len(knownCommands))
	for c := range knownCommands {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}

// ParseScript validates a job command file and returns its commands. Blank
// lines and '#' comments are allowed. Unknown commands are rejected here, at
// submit time, so the user learns about typos before any file transfer.
func ParseScript(script []byte) ([]Command, error) {
	var cmds []Command
	for ln, raw := range strings.Split(string(script), "\n") {
		line := strings.TrimSpace(raw)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields, err := splitFields(line)
		if err != nil {
			return nil, fmt.Errorf("%w: line %d: %v", ErrBadScript, ln+1, err)
		}
		name := fields[0]
		if !knownCommands[name] {
			return nil, fmt.Errorf("%w: line %d: unknown command %q", ErrBadScript, ln+1, name)
		}
		cmds = append(cmds, Command{Name: name, Args: fields[1:]})
	}
	if len(cmds) == 0 {
		return nil, fmt.Errorf("%w: no commands", ErrBadScript)
	}
	return cmds, nil
}

// splitFields splits on spaces, honouring double quotes.
func splitFields(line string) ([]string, error) {
	var fields []string
	var cur strings.Builder
	inQuote := false
	flush := func() {
		if cur.Len() > 0 {
			fields = append(fields, cur.String())
			cur.Reset()
		}
	}
	for _, r := range line {
		switch {
		case r == '"':
			if inQuote {
				fields = append(fields, cur.String())
				cur.Reset()
			}
			inQuote = !inQuote
		case r == ' ' || r == '\t':
			if inQuote {
				cur.WriteRune(r)
			} else {
				flush()
			}
		default:
			cur.WriteRune(r)
		}
	}
	if inQuote {
		return nil, errors.New("unterminated quote")
	}
	flush()
	if len(fields) == 0 {
		return nil, errors.New("empty command")
	}
	return fields, nil
}

// Request is one job to execute.
type Request struct {
	// Script is the job command file.
	Script []byte
	// Commands, when non-nil, is the already-parsed form of Script; Execute
	// uses it directly instead of re-parsing. Callers that validate scripts
	// at submit time (the server) pass the parse result through so each
	// distinct script is parsed once, not once per run.
	Commands []Command
	// Inputs maps the names commands use to file contents.
	Inputs map[string][]byte
}

// Result is a finished job's outcome.
type Result struct {
	Stdout   []byte
	Stderr   []byte
	ExitCode int32
	// CPUTime is the simulated compute time the job consumed; the server
	// charges it to the supercomputer's virtual clock.
	CPUTime time.Duration
}

// Execute runs a job to completion. Command failures (missing files, bad
// arguments) are reported on stderr and in the exit code; execution
// continues with the next command, like a batch stream.
func Execute(req Request) Result {
	var res Result
	cmds := req.Commands
	if cmds == nil {
		var err error
		cmds, err = ParseScript(req.Script)
		if err != nil {
			res.Stderr = []byte(err.Error() + "\n")
			res.ExitCode = 2
			return res
		}
	}
	var stdout, stderr bytes.Buffer
	exec := &execution{inputs: req.Inputs, stdout: &stdout, stderr: &stderr}
	failed := 0
	for _, cmd := range cmds {
		if err := exec.run(cmd); err != nil {
			fmt.Fprintf(&stderr, "%s: %v\n", cmd.Name, err)
			failed++
		}
	}
	res.Stdout = stdout.Bytes()
	res.Stderr = stderr.Bytes()
	res.CPUTime = exec.cpu
	if failed > 0 {
		res.ExitCode = 1
	}
	return res
}

// Limits on resource-shaped commands.
const (
	maxExpandOutput = 32 << 20
	maxMatmulN      = 512
	maxSleep        = time.Hour
)

type execution struct {
	inputs map[string][]byte
	stdout *bytes.Buffer
	stderr *bytes.Buffer
	cpu    time.Duration
}

func (e *execution) input(name string) ([]byte, error) {
	content, ok := e.inputs[name]
	if !ok {
		return nil, fmt.Errorf("no such input file %q", name)
	}
	return content, nil
}

// lines splits content into lines without terminators.
func lines(content []byte) []string {
	s := string(content)
	s = strings.TrimSuffix(s, "\n")
	if s == "" {
		return nil
	}
	return strings.Split(s, "\n")
}

func (e *execution) run(cmd Command) error {
	switch cmd.Name {
	case "cat":
		return e.cat(cmd.Args)
	case "wc":
		return e.wc(cmd.Args)
	case "grep":
		return e.grep(cmd.Args)
	case "sort":
		return e.sortCmd(cmd.Args)
	case "uniq":
		return e.uniq(cmd.Args)
	case "head":
		return e.headTail(cmd.Args, true)
	case "tail":
		return e.headTail(cmd.Args, false)
	case "rev":
		return e.rev(cmd.Args)
	case "checksum":
		return e.checksum(cmd.Args)
	case "echo":
		fmt.Fprintln(e.stdout, strings.Join(cmd.Args, " "))
		return nil
	case "expand":
		return e.expand(cmd.Args)
	case "matmul":
		return e.matmul(cmd.Args)
	case "sleep":
		return e.sleep(cmd.Args)
	case "stall":
		return e.stall(cmd.Args)
	case "stats":
		return e.stats(cmd.Args)
	case "colsum":
		return e.colsum(cmd.Args)
	default:
		return fmt.Errorf("unknown command")
	}
}

func (e *execution) cat(args []string) error {
	if len(args) == 0 {
		return errors.New("usage: cat FILE...")
	}
	for _, name := range args {
		content, err := e.input(name)
		if err != nil {
			return err
		}
		e.stdout.Write(content)
	}
	return nil
}

func (e *execution) wc(args []string) error {
	if len(args) == 0 {
		return errors.New("usage: wc FILE...")
	}
	for _, name := range args {
		content, err := e.input(name)
		if err != nil {
			return err
		}
		nl := bytes.Count(content, []byte("\n"))
		words := len(bytes.Fields(content))
		fmt.Fprintf(e.stdout, "%7d %7d %7d %s\n", nl, words, len(content), name)
	}
	return nil
}

func (e *execution) grep(args []string) error {
	if len(args) < 2 {
		return errors.New("usage: grep PATTERN FILE...")
	}
	re, err := regexp.Compile(args[0])
	if err != nil {
		return fmt.Errorf("bad pattern: %v", err)
	}
	for _, name := range args[1:] {
		content, err := e.input(name)
		if err != nil {
			return err
		}
		for _, l := range lines(content) {
			if re.MatchString(l) {
				fmt.Fprintln(e.stdout, l)
			}
		}
	}
	return nil
}

func (e *execution) sortCmd(args []string) error {
	if len(args) != 1 {
		return errors.New("usage: sort FILE")
	}
	content, err := e.input(args[0])
	if err != nil {
		return err
	}
	ls := lines(content)
	sort.Strings(ls)
	e.cpu += time.Duration(len(ls)) * 10 * time.Microsecond
	for _, l := range ls {
		fmt.Fprintln(e.stdout, l)
	}
	return nil
}

func (e *execution) uniq(args []string) error {
	if len(args) != 1 {
		return errors.New("usage: uniq FILE")
	}
	content, err := e.input(args[0])
	if err != nil {
		return err
	}
	var prev string
	first := true
	for _, l := range lines(content) {
		if first || l != prev {
			fmt.Fprintln(e.stdout, l)
		}
		prev, first = l, false
	}
	return nil
}

func (e *execution) headTail(args []string, head bool) error {
	n := 10
	var file string
	switch len(args) {
	case 1:
		file = args[0]
	case 2:
		if !strings.HasPrefix(args[0], "-") {
			return errors.New("usage: head|tail [-N] FILE")
		}
		v, err := strconv.Atoi(args[0][1:])
		if err != nil || v < 0 {
			return fmt.Errorf("bad count %q", args[0])
		}
		n, file = v, args[1]
	default:
		return errors.New("usage: head|tail [-N] FILE")
	}
	content, err := e.input(file)
	if err != nil {
		return err
	}
	ls := lines(content)
	if n > len(ls) {
		n = len(ls)
	}
	var sel []string
	if head {
		sel = ls[:n]
	} else {
		sel = ls[len(ls)-n:]
	}
	for _, l := range sel {
		fmt.Fprintln(e.stdout, l)
	}
	return nil
}

func (e *execution) rev(args []string) error {
	if len(args) != 1 {
		return errors.New("usage: rev FILE")
	}
	content, err := e.input(args[0])
	if err != nil {
		return err
	}
	ls := lines(content)
	for i := len(ls) - 1; i >= 0; i-- {
		fmt.Fprintln(e.stdout, ls[i])
	}
	return nil
}

func (e *execution) checksum(args []string) error {
	if len(args) == 0 {
		return errors.New("usage: checksum FILE...")
	}
	for _, name := range args {
		content, err := e.input(name)
		if err != nil {
			return err
		}
		sum := crc32.Checksum(content, crc32.MakeTable(crc32.Castagnoli))
		fmt.Fprintf(e.stdout, "%08x %s\n", sum, name)
	}
	return nil
}

// expand repeats a file FACTOR times — a stand-in for jobs that generate
// large output (the paper's motivation for reverse shadow processing).
func (e *execution) expand(args []string) error {
	if len(args) != 2 {
		return errors.New("usage: expand FACTOR FILE")
	}
	factor, err := strconv.Atoi(args[0])
	if err != nil || factor < 1 {
		return fmt.Errorf("bad factor %q", args[0])
	}
	content, err := e.input(args[1])
	if err != nil {
		return err
	}
	if factor*len(content) > maxExpandOutput {
		return fmt.Errorf("output would exceed %d bytes", maxExpandOutput)
	}
	for i := 0; i < factor; i++ {
		e.stdout.Write(content)
	}
	return nil
}

// matmul multiplies two deterministic pseudo-random N×N matrices — the
// stand-in for a real scientific computation. It charges simulated CPU time
// proportional to N³.
func (e *execution) matmul(args []string) error {
	if len(args) != 2 {
		return errors.New("usage: matmul N SEED")
	}
	n, err := strconv.Atoi(args[0])
	if err != nil || n < 1 || n > maxMatmulN {
		return fmt.Errorf("bad dimension %q (1..%d)", args[0], maxMatmulN)
	}
	seed, err := strconv.ParseInt(args[1], 10, 64)
	if err != nil {
		return fmt.Errorf("bad seed %q", args[1])
	}
	rng := rand.New(rand.NewSource(seed))
	a := make([]float64, n*n)
	b := make([]float64, n*n)
	for i := range a {
		a[i] = rng.Float64()
		b[i] = rng.Float64()
	}
	c := make([]float64, n*n)
	for i := 0; i < n; i++ {
		for k := 0; k < n; k++ {
			aik := a[i*n+k]
			for j := 0; j < n; j++ {
				c[i*n+j] += aik * b[k*n+j]
			}
		}
	}
	var trace float64
	for i := 0; i < n; i++ {
		trace += c[i*n+i]
	}
	e.cpu += time.Duration(n*n*n) * time.Nanosecond
	fmt.Fprintf(e.stdout, "matmul n=%d seed=%d trace=%.6f\n", n, seed, trace)
	return nil
}

func (e *execution) sleep(args []string) error {
	if len(args) != 1 {
		return errors.New("usage: sleep DURATION")
	}
	d, err := time.ParseDuration(args[0])
	if err != nil || d < 0 {
		return fmt.Errorf("bad duration %q", args[0])
	}
	if d > maxSleep {
		return fmt.Errorf("sleep longer than %v", maxSleep)
	}
	e.cpu += d
	return nil
}

// maxStall caps the wall-clock stall command.
const maxStall = 2 * time.Second

// stall occupies the executor for real wall-clock time (unlike sleep, which
// charges only virtual time). The flow-control experiments use it to hold a
// processor busy while other protocol activity happens.
func (e *execution) stall(args []string) error {
	if len(args) != 1 {
		return errors.New("usage: stall DURATION")
	}
	d, err := time.ParseDuration(args[0])
	if err != nil || d < 0 {
		return fmt.Errorf("bad duration %q", args[0])
	}
	if d > maxStall {
		return fmt.Errorf("stall longer than %v", maxStall)
	}
	time.Sleep(d)
	e.cpu += d
	return nil
}

// numericFields extracts the float64 value of every whitespace-separated
// token that parses as a number, line by line.
func numericFields(content []byte, column int) []float64 {
	var out []float64
	for _, l := range lines(content) {
		fields := strings.Fields(l)
		if column > 0 {
			if column > len(fields) {
				continue
			}
			fields = fields[column-1 : column]
		}
		for _, f := range fields {
			if v, err := strconv.ParseFloat(f, 64); err == nil {
				out = append(out, v)
			}
		}
	}
	return out
}

// stats summarizes the numeric tokens of a data file — the kind of
// post-processing a scientist runs on simulation output.
func (e *execution) stats(args []string) error {
	if len(args) != 1 {
		return errors.New("usage: stats FILE")
	}
	content, err := e.input(args[0])
	if err != nil {
		return err
	}
	vals := numericFields(content, 0)
	if len(vals) == 0 {
		fmt.Fprintf(e.stdout, "stats %s: no numeric data\n", args[0])
		return nil
	}
	minV, maxV, sum := vals[0], vals[0], 0.0
	for _, v := range vals {
		if v < minV {
			minV = v
		}
		if v > maxV {
			maxV = v
		}
		sum += v
	}
	e.cpu += time.Duration(len(vals)) * time.Microsecond
	fmt.Fprintf(e.stdout, "stats %s: n=%d min=%g max=%g mean=%.6g\n",
		args[0], len(vals), minV, maxV, sum/float64(len(vals)))
	return nil
}

// colsum sums one whitespace-separated numeric column.
func (e *execution) colsum(args []string) error {
	if len(args) != 2 {
		return errors.New("usage: colsum COLUMN FILE")
	}
	col, err := strconv.Atoi(args[0])
	if err != nil || col < 1 {
		return fmt.Errorf("bad column %q", args[0])
	}
	content, err := e.input(args[1])
	if err != nil {
		return err
	}
	vals := numericFields(content, col)
	sum := 0.0
	for _, v := range vals {
		sum += v
	}
	e.cpu += time.Duration(len(vals)) * time.Microsecond
	fmt.Fprintf(e.stdout, "colsum %d %s: n=%d sum=%.6g\n", col, args[1], len(vals), sum)
	return nil
}

// InputNames returns the file names a parsed script references, in first-use
// order. The server uses it to verify a submit request supplies every file
// its script needs.
func InputNames(cmds []Command) []string {
	seen := make(map[string]bool)
	var out []string
	add := func(name string) {
		if !seen[name] {
			seen[name] = true
			out = append(out, name)
		}
	}
	for _, cmd := range cmds {
		switch cmd.Name {
		case "cat", "wc", "checksum", "sort", "uniq", "rev", "stats":
			for _, a := range cmd.Args {
				add(a)
			}
		case "grep":
			if len(cmd.Args) > 1 {
				for _, a := range cmd.Args[1:] {
					add(a)
				}
			}
		case "head", "tail":
			if len(cmd.Args) > 0 {
				last := cmd.Args[len(cmd.Args)-1]
				if !strings.HasPrefix(last, "-") {
					add(last)
				}
			}
		case "expand", "colsum":
			if len(cmd.Args) == 2 {
				add(cmd.Args[1])
			}
		}
	}
	return out
}
