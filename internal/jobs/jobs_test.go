package jobs

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"
)

func run(t *testing.T, script string, inputs map[string][]byte) Result {
	t.Helper()
	return Execute(Request{Script: []byte(script), Inputs: inputs})
}

func TestParseScript(t *testing.T) {
	cmds, err := ParseScript([]byte("# header\nwc a.dat\n\ngrep x b.dat\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(cmds) != 2 || cmds[0].Name != "wc" || cmds[1].Args[0] != "x" {
		t.Fatalf("cmds = %+v", cmds)
	}
}

func TestParseScriptQuotedArgs(t *testing.T) {
	cmds, err := ParseScript([]byte(`grep "two words" file.txt` + "\n"))
	if err != nil {
		t.Fatal(err)
	}
	if cmds[0].Args[0] != "two words" {
		t.Fatalf("quoted arg = %q", cmds[0].Args[0])
	}
}

func TestParseScriptErrors(t *testing.T) {
	tests := []struct {
		name   string
		script string
	}{
		{name: "unknown command", script: "launch missiles\n"},
		{name: "empty", script: "\n# only comments\n"},
		{name: "unterminated quote", script: "grep \"oops file\n"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := ParseScript([]byte(tt.script)); !errors.Is(err, ErrBadScript) {
				t.Fatalf("err = %v, want ErrBadScript", err)
			}
		})
	}
}

func TestCommandString(t *testing.T) {
	c := Command{Name: "wc", Args: []string{"a", "b"}}
	if c.String() != "wc a b" {
		t.Fatalf("String = %q", c.String())
	}
	if (Command{Name: "echo"}).String() != "echo" {
		t.Fatal("argless String wrong")
	}
}

func TestCommandsSorted(t *testing.T) {
	cmds := Commands()
	if len(cmds) < 10 {
		t.Fatalf("vocabulary too small: %v", cmds)
	}
	for i := 1; i < len(cmds); i++ {
		if cmds[i-1] >= cmds[i] {
			t.Fatalf("not sorted: %v", cmds)
		}
	}
}

func TestExecuteBasicCommands(t *testing.T) {
	inputs := map[string][]byte{
		"data": []byte("banana\napple\ncherry\napple\n"),
	}
	tests := []struct {
		name      string
		script    string
		wantOut   string
		wantInErr string
		wantExit  int32
	}{
		{name: "cat", script: "cat data\n", wantOut: "banana\napple\ncherry\napple\n"},
		{name: "wc", script: "wc data\n", wantOut: "      4       4      26 data\n"},
		{name: "grep", script: "grep an data\n", wantOut: "banana\n"},
		{name: "grep regexp", script: "grep ^a data\n", wantOut: "apple\napple\n"},
		{name: "sort", script: "sort data\n", wantOut: "apple\napple\nbanana\ncherry\n"},
		{name: "uniq after sort", script: "uniq data\n", wantOut: "banana\napple\ncherry\napple\n"},
		{name: "head", script: "head -2 data\n", wantOut: "banana\napple\n"},
		{name: "tail", script: "tail -1 data\n", wantOut: "apple\n"},
		{name: "rev", script: "rev data\n", wantOut: "apple\ncherry\napple\nbanana\n"},
		{name: "echo", script: "echo hello world\n", wantOut: "hello world\n"},
		{name: "expand", script: "expand 2 data\n", wantOut: "banana\napple\ncherry\napple\nbanana\napple\ncherry\napple\n"},
		{name: "missing file", script: "cat ghost\n", wantInErr: "no such input file", wantExit: 1},
		{name: "bad grep pattern", script: "grep ( data\n", wantInErr: "bad pattern", wantExit: 1},
		{name: "bad usage", script: "sort\n", wantInErr: "usage", wantExit: 1},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			res := run(t, tt.script, inputs)
			if string(res.Stdout) != tt.wantOut {
				t.Errorf("stdout = %q, want %q", res.Stdout, tt.wantOut)
			}
			if tt.wantInErr != "" && !strings.Contains(string(res.Stderr), tt.wantInErr) {
				t.Errorf("stderr = %q, want contains %q", res.Stderr, tt.wantInErr)
			}
			if res.ExitCode != tt.wantExit {
				t.Errorf("exit = %d, want %d", res.ExitCode, tt.wantExit)
			}
		})
	}
}

func TestExecuteContinuesAfterFailure(t *testing.T) {
	res := run(t, "cat ghost\necho still here\n", nil)
	if !strings.Contains(string(res.Stdout), "still here") {
		t.Fatal("execution stopped at first failure")
	}
	if res.ExitCode != 1 {
		t.Fatalf("exit = %d, want 1", res.ExitCode)
	}
}

func TestExecuteChecksumDeterministic(t *testing.T) {
	inputs := map[string][]byte{"f": []byte("abc")}
	a := run(t, "checksum f\n", inputs)
	b := run(t, "checksum f\n", inputs)
	if !bytes.Equal(a.Stdout, b.Stdout) {
		t.Fatal("checksum not deterministic")
	}
	if !strings.Contains(string(a.Stdout), " f\n") {
		t.Fatalf("stdout = %q", a.Stdout)
	}
}

func TestExecuteMatmulDeterministic(t *testing.T) {
	a := run(t, "matmul 16 7\n", nil)
	b := run(t, "matmul 16 7\n", nil)
	if !bytes.Equal(a.Stdout, b.Stdout) {
		t.Fatal("matmul not deterministic")
	}
	c := run(t, "matmul 16 8\n", nil)
	if bytes.Equal(a.Stdout, c.Stdout) {
		t.Fatal("matmul ignores seed")
	}
	if a.CPUTime <= 0 {
		t.Fatal("matmul charged no CPU time")
	}
}

func TestExecuteMatmulLimits(t *testing.T) {
	res := run(t, "matmul 100000 1\n", nil)
	if res.ExitCode == 0 {
		t.Fatal("oversized matmul succeeded")
	}
}

func TestExecuteSleepChargesVirtualCPU(t *testing.T) {
	start := time.Now()
	res := run(t, "sleep 5s\n", nil)
	if wall := time.Since(start); wall > time.Second {
		t.Fatalf("sleep actually slept %v of wall time", wall)
	}
	if res.CPUTime != 5*time.Second {
		t.Fatalf("CPUTime = %v, want 5s", res.CPUTime)
	}
}

func TestExecuteExpandLimit(t *testing.T) {
	inputs := map[string][]byte{"big": make([]byte, 1<<20)}
	res := run(t, "expand 100 big\n", inputs)
	if res.ExitCode == 0 {
		t.Fatal("expand over the output cap succeeded")
	}
}

func TestExecuteBadScriptExit2(t *testing.T) {
	res := run(t, "not-a-command\n", nil)
	if res.ExitCode != 2 {
		t.Fatalf("exit = %d, want 2", res.ExitCode)
	}
}

func TestExecutePureFunction(t *testing.T) {
	// Same script + same inputs => identical results, the property the
	// integration tests rely on to check remote against local runs.
	inputs := map[string][]byte{"d": []byte("z\ny\nx\n")}
	script := "sort d\nwc d\nchecksum d\nmatmul 8 3\n"
	a, b := run(t, script, inputs), run(t, script, inputs)
	if !bytes.Equal(a.Stdout, b.Stdout) || !bytes.Equal(a.Stderr, b.Stderr) || a.ExitCode != b.ExitCode {
		t.Fatal("Execute is not deterministic")
	}
}

func TestInputNames(t *testing.T) {
	cmds, err := ParseScript([]byte("wc a b\ngrep pat c\nhead -3 d\nexpand 2 e\nsort a\necho hi\nmatmul 4 1\n"))
	if err != nil {
		t.Fatal(err)
	}
	got := InputNames(cmds)
	want := []string{"a", "b", "c", "d", "e"}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("InputNames = %v, want %v", got, want)
	}
}

func TestInputNamesDedupes(t *testing.T) {
	cmds, _ := ParseScript([]byte("wc a\ncat a a\n"))
	if got := InputNames(cmds); len(got) != 1 || got[0] != "a" {
		t.Fatalf("InputNames = %v, want [a]", got)
	}
}

func TestExecuteStats(t *testing.T) {
	inputs := map[string][]byte{
		"d": []byte("sample 1.5 note\nsample 2.5 note\nsample 4.0 note\n"),
	}
	res := run(t, "stats d\n", inputs)
	if res.ExitCode != 0 {
		t.Fatalf("stats failed: %s", res.Stderr)
	}
	want := "stats d: n=3 min=1.5 max=4 mean=2.66667\n"
	if string(res.Stdout) != want {
		t.Fatalf("stats = %q, want %q", res.Stdout, want)
	}
}

func TestExecuteStatsNoNumbers(t *testing.T) {
	res := run(t, "stats d\n", map[string][]byte{"d": []byte("words only\n")})
	if res.ExitCode != 0 || !strings.Contains(string(res.Stdout), "no numeric data") {
		t.Fatalf("stats = %q (exit %d)", res.Stdout, res.ExitCode)
	}
}

func TestExecuteColsum(t *testing.T) {
	inputs := map[string][]byte{
		"d": []byte("a 1 10\nb 2 20\nc 3 30\n"),
	}
	res := run(t, "colsum 2 d\ncolsum 3 d\n", inputs)
	if res.ExitCode != 0 {
		t.Fatalf("colsum failed: %s", res.Stderr)
	}
	want := "colsum 2 d: n=3 sum=6\ncolsum 3 d: n=3 sum=60\n"
	if string(res.Stdout) != want {
		t.Fatalf("colsum = %q, want %q", res.Stdout, want)
	}
}

func TestExecuteColsumErrors(t *testing.T) {
	inputs := map[string][]byte{"d": []byte("a 1\n")}
	for _, script := range []string{"colsum d\n", "colsum x d\n", "colsum 0 d\n", "colsum 2 ghost\n"} {
		if res := run(t, script, inputs); res.ExitCode == 0 {
			t.Errorf("script %q succeeded, want failure", script)
		}
	}
	// A column beyond a row's width skips that row rather than failing.
	res := run(t, "colsum 9 d\n", inputs)
	if res.ExitCode != 0 || !strings.Contains(string(res.Stdout), "n=0") {
		t.Fatalf("wide colsum = %q (exit %d)", res.Stdout, res.ExitCode)
	}
}

func TestInputNamesStatsColsum(t *testing.T) {
	cmds, err := ParseScript([]byte("stats a\ncolsum 2 b\n"))
	if err != nil {
		t.Fatal(err)
	}
	got := InputNames(cmds)
	if fmt.Sprint(got) != "[a b]" {
		t.Fatalf("InputNames = %v", got)
	}
}

func TestExecuteStallOccupiesWallClock(t *testing.T) {
	start := time.Now()
	res := run(t, "stall 50ms\n", nil)
	if res.ExitCode != 0 {
		t.Fatalf("stall failed: %s", res.Stderr)
	}
	if time.Since(start) < 50*time.Millisecond {
		t.Fatal("stall did not occupy wall-clock time")
	}
	if res.CPUTime != 50*time.Millisecond {
		t.Fatalf("CPUTime = %v", res.CPUTime)
	}
	if bad := run(t, "stall 99h\n", nil); bad.ExitCode == 0 {
		t.Fatal("excessive stall accepted")
	}
}
