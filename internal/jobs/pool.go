package jobs

import (
	"errors"
	"sync"
)

// ErrPoolClosed reports submission to a closed pool.
var ErrPoolClosed = errors.New("jobs: pool closed")

// Pool runs queued work with bounded concurrency — the server's admission
// control. The paper's demand-driven design lets the remote host "decide
// when is the best time to ... schedule and run the jobs" by monitoring its
// load; Pool is that mechanism: at most workers jobs run at once, the rest
// wait in FIFO order.
type Pool struct {
	tasks chan func()
	wg    sync.WaitGroup

	mu      sync.Mutex
	closed  bool
	queued  int
	running int
}

// poolBacklog bounds the queue; submissions beyond it block, applying
// backpressure instead of growing without bound.
const poolBacklog = 1024

// NewPool starts a pool of the given concurrency (minimum 1).
func NewPool(workers int) *Pool {
	if workers < 1 {
		workers = 1
	}
	p := &Pool{tasks: make(chan func(), poolBacklog)}
	p.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go p.worker()
	}
	return p
}

func (p *Pool) worker() {
	defer p.wg.Done()
	for task := range p.tasks {
		p.mu.Lock()
		p.queued--
		p.running++
		p.mu.Unlock()
		task()
		p.mu.Lock()
		p.running--
		p.mu.Unlock()
	}
}

// Submit queues work. It blocks when the backlog is full.
func (p *Pool) Submit(task func()) error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return ErrPoolClosed
	}
	p.queued++
	p.mu.Unlock()
	p.tasks <- task
	return nil
}

// Load returns the queued and running task counts — the load signal the
// server's flow-control policy consults.
func (p *Pool) Load() (queued, running int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.queued, p.running
}

// Close stops intake and waits for queued work to drain.
func (p *Pool) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		p.wg.Wait()
		return
	}
	p.closed = true
	p.mu.Unlock()
	close(p.tasks)
	p.wg.Wait()
}
