package admin

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"shadowedit/internal/obs"
	"shadowedit/internal/server"
	"shadowedit/internal/trace"
	"shadowedit/internal/wire"
)

func newTestHandler(t *testing.T) (*server.Server, http.Handler) {
	t.Helper()
	cfg := server.Defaults("admin-test")
	cfg.Obs = obs.New(nil, nil)
	srv := server.New(cfg)
	t.Cleanup(func() { srv.Close() })
	return srv, NewHandler(Options{Server: srv})
}

func get(t *testing.T, h http.Handler, path string) (int, string, http.Header) {
	t.Helper()
	req := httptest.NewRequest("GET", path, nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	res := rec.Result()
	body, err := io.ReadAll(res.Body)
	if err != nil {
		t.Fatalf("read %s body: %v", path, err)
	}
	return res.StatusCode, string(body), res.Header
}

func TestHealthz(t *testing.T) {
	_, h := newTestHandler(t)
	code, body, hdr := get(t, h, "/healthz")
	if code != http.StatusOK {
		t.Fatalf("/healthz status = %d", code)
	}
	if ct := hdr.Get("Content-Type"); !strings.Contains(ct, "application/json") {
		t.Fatalf("/healthz content type = %q", ct)
	}
	var v struct {
		Status   string `json:"status"`
		Server   string `json:"server"`
		Sessions int    `json:"sessions"`
	}
	if err := json.Unmarshal([]byte(body), &v); err != nil {
		t.Fatalf("/healthz not JSON: %v\n%s", err, body)
	}
	if v.Status != "ok" || v.Server != "admin-test" {
		t.Fatalf("/healthz = %+v", v)
	}
}

func TestMetricsContent(t *testing.T) {
	srv, h := newTestHandler(t)

	// Give the counters and one histogram something to show.
	srv.Observer().SubmitAck.Observe(3 * time.Millisecond)
	srv.Observer().Cycle.Observe(250 * time.Millisecond)
	id := srv.Directory().Intern(wire.FileRef{Domain: "d", FileID: "ws:/home/u/a.c"})
	if err := srv.Cache().Put(id, 1, []byte("hello")); err != nil {
		t.Fatal(err)
	}

	code, body, hdr := get(t, h, "/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status = %d", code)
	}
	if ct := hdr.Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Fatalf("/metrics content type = %q", ct)
	}
	// Every Snapshot counter must be present, plus gauges and histograms.
	for _, want := range []string{
		"shadow_delta_bytes_total", "shadow_full_bytes_total",
		"shadow_control_bytes_total", "shadow_output_bytes_total",
		"shadow_messages_total", "shadow_delta_sends_total",
		"shadow_full_sends_total", "shadow_busy_seconds_total",
		"shadow_cache_hits_total", "shadow_cache_misses_total",
		"shadow_cache_evictions_total", "shadow_cache_rejected_total",
		"shadow_pulls_issued_total", "shadow_pulls_deferred_total",
		"shadow_pulls_coalesced_total", "shadow_reconnects_total",
		"shadow_retries_total", "shadow_full_fallbacks_total",
		"shadow_dropped_frames_total",
		"shadow_sessions", "shadow_cache_bytes 5", "shadow_cache_entries 1",
		"shadow_jobs{state=\"queued\"}",
		"# TYPE shadow_submit_ack_seconds histogram",
		"shadow_submit_ack_seconds_count 1",
		"shadow_cycle_seconds_count 1",
		"le=\"+Inf\"",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	// Histogram bucket lines must be cumulative and end at the count.
	if !strings.Contains(body, "shadow_submit_ack_seconds_bucket{le=\"+Inf\"} 1") {
		t.Errorf("submit_ack +Inf bucket wrong:\n%s", body)
	}
}

func TestCachezConcurrent(t *testing.T) {
	srv, h := newTestHandler(t)

	// Hammer the cache from writers while readers scrape /cachez — the
	// snapshot path must be race-free (run under -race in CI).
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 400; i++ {
				ref := wire.FileRef{Domain: "d", FileID: fmt.Sprintf("ws:/f%d-%d", w, i%64)}
				id := srv.Directory().Intern(ref)
				_ = srv.Cache().Put(id, uint64(i), []byte(strings.Repeat("x", 64)))
				if i%3 == 0 {
					_, _ = srv.Cache().Get(id)
				}
			}
		}(w)
	}
	for i := 0; i < 25; i++ {
		code, body, _ := get(t, h, "/cachez")
		if code != http.StatusOK {
			t.Fatalf("/cachez status = %d", code)
		}
		if !strings.Contains(body, "shadow cache:") {
			t.Fatalf("/cachez body unexpected:\n%s", body)
		}
		code, body, _ = get(t, h, "/cachez?format=json")
		if code != http.StatusOK {
			t.Fatalf("/cachez json status = %d", code)
		}
		var v cacheView
		if err := json.Unmarshal([]byte(body), &v); err != nil {
			t.Fatalf("/cachez json: %v", err)
		}
	}
	wg.Wait()

	// After the dust settles, the JSON view should name interned files.
	_, body, _ := get(t, h, "/cachez?format=json")
	var v cacheView
	if err := json.Unmarshal([]byte(body), &v); err != nil {
		t.Fatal(err)
	}
	if v.Entries == 0 || len(v.Files) == 0 {
		t.Fatalf("expected cached entries, got %+v", v)
	}
	if v.Files[0].File == "" {
		t.Fatalf("cache entry missing reverse-resolved name: %+v", v.Files[0])
	}
}

func TestMetricsCanonicalBuckets(t *testing.T) {
	srv, h := newTestHandler(t)
	srv.Observer().SubmitAck.Observe(3 * time.Millisecond)

	_, body, _ := get(t, h, "/metrics")
	// The export grid is fixed: every instance emits the same 32 le bounds
	// (2^12..2^43 ns), occupied or not, so fleets aggregate bucket-by-bucket.
	var bucketLines int
	for _, line := range strings.Split(body, "\n") {
		if strings.HasPrefix(line, "shadow_submit_ack_seconds_bucket{") &&
			!strings.Contains(line, "+Inf") {
			bucketLines++
		}
	}
	if want := histHiExp - histLoExp + 1; bucketLines != want {
		t.Fatalf("submit_ack bucket lines = %d, want the fixed grid of %d", bucketLines, want)
	}
	// 3ms < 2^22 ns (~4.19ms): that bound and every later one must already
	// hold the sample, cumulatively.
	if !strings.Contains(body, "shadow_submit_ack_seconds_bucket{le=\"0.004194304\"} 1") {
		t.Fatalf("cumulative count missing at the 2^22ns bound:\n%s", body)
	}
	if !strings.Contains(body, "shadow_submit_ack_seconds_bucket{le=\"0.002097152\"} 0") {
		t.Fatalf("bound below the sample should read 0:\n%s", body)
	}
}

// newTracedHandler builds a handler over a server whose observer has a
// tracer attached, plus the observer for minting test traces.
func newTracedHandler(t *testing.T) (*server.Server, *obs.Observer, http.Handler) {
	t.Helper()
	cfg := server.Defaults("admin-trace-test")
	cfg.Obs = obs.New(nil, nil)
	cfg.Obs.SetTracer(trace.New(trace.Config{}))
	srv := server.New(cfg)
	t.Cleanup(func() { srv.Close() })
	return srv, cfg.Obs, NewHandler(Options{Server: srv})
}

func TestTracez(t *testing.T) {
	_, o, h := newTracedHandler(t)

	// Assemble one completed trace through the observer hooks.
	root := o.StartTrace("cycle")
	child := o.StartSpan(root.Context(), "server.pull").SetSession(7).SetFile("d//ws:/a.c").Annotate("immediate")
	child.Finish()
	root.SetJob(3).Finish()
	o.EndTrace(root.Context())

	code, body, _ := get(t, h, "/tracez")
	if code != http.StatusOK || !strings.Contains(body, "cycle traces: 1 completed") {
		t.Fatalf("/tracez = %d:\n%s", code, body)
	}
	if !strings.Contains(body, "job=3") {
		t.Fatalf("/tracez list missing job attribution:\n%s", body)
	}

	id := fmt.Sprintf("%d", root.Trace)
	code, body, _ = get(t, h, "/tracez?id="+id)
	if code != http.StatusOK || !strings.Contains(body, "server.pull") || !strings.Contains(body, "(immediate)") {
		t.Fatalf("/tracez?id = %d:\n%s", code, body)
	}

	code, body, hdr := get(t, h, "/tracez?id="+id+"&format=chrome")
	if code != http.StatusOK {
		t.Fatalf("/tracez chrome = %d", code)
	}
	if ct := hdr.Get("Content-Type"); !strings.Contains(ct, "application/json") {
		t.Fatalf("chrome export content type = %q", ct)
	}
	var chrome struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
			Tid  uint64 `json:"tid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(body), &chrome); err != nil {
		t.Fatalf("chrome export not JSON: %v\n%s", err, body)
	}
	if len(chrome.TraceEvents) != 2 || chrome.TraceEvents[0].Ph != "X" {
		t.Fatalf("chrome export events = %+v", chrome.TraceEvents)
	}

	code, body, _ = get(t, h, "/tracez?id="+id+"&format=json")
	if code != http.StatusOK {
		t.Fatalf("/tracez json = %d", code)
	}
	var rec trace.Record
	if err := json.Unmarshal([]byte(body), &rec); err != nil || len(rec.Spans) != 2 {
		t.Fatalf("/tracez json record: %v / %+v", err, rec)
	}

	if code, _, _ := get(t, h, "/tracez?id=999999"); code != http.StatusNotFound {
		t.Fatalf("unknown trace id = %d, want 404", code)
	}
	if code, _, _ := get(t, h, "/tracez?id=bogus"); code != http.StatusBadRequest {
		t.Fatalf("bad trace id = %d, want 400", code)
	}
}

func TestTracezDisabled(t *testing.T) {
	_, h := newTestHandler(t)
	code, body, _ := get(t, h, "/tracez")
	if code != http.StatusOK || !strings.Contains(body, "tracing disabled") {
		t.Fatalf("/tracez without tracer = %d:\n%s", code, body)
	}
}

func TestFlightz(t *testing.T) {
	_, _, h := newTracedHandler(t)
	code, body, _ := get(t, h, "/flightz")
	if code != http.StatusOK || !strings.Contains(body, "0 live session recorders, 0 retained dumps") {
		t.Fatalf("/flightz = %d:\n%s", code, body)
	}
	code, body, _ = get(t, h, "/flightz?format=json")
	if code != http.StatusOK {
		t.Fatalf("/flightz json = %d", code)
	}
	var v flightzView
	if err := json.Unmarshal([]byte(body), &v); err != nil {
		t.Fatalf("/flightz json: %v", err)
	}
}

func TestSessionzAndPprof(t *testing.T) {
	_, h := newTestHandler(t)
	code, body, _ := get(t, h, "/sessionz")
	if code != http.StatusOK || !strings.Contains(body, "sessions attached") {
		t.Fatalf("/sessionz = %d:\n%s", code, body)
	}
	code, body, _ = get(t, h, "/sessionz?format=json")
	if code != http.StatusOK {
		t.Fatalf("/sessionz json = %d", code)
	}
	var v sessionView
	if err := json.Unmarshal([]byte(body), &v); err != nil {
		t.Fatalf("/sessionz json: %v", err)
	}
	code, _, _ = get(t, h, "/debug/pprof/")
	if code != http.StatusOK {
		t.Fatalf("/debug/pprof/ = %d", code)
	}
}
