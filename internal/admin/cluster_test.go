package admin

import (
	"encoding/json"
	"errors"
	"net/http"
	"strings"
	"testing"
	"time"

	"shadowedit/internal/metrics"
	"shadowedit/internal/obs"
	"shadowedit/internal/server"
)

// cannedMember fabricates the scope=self answer a remote member would give.
func cannedMember(t *testing.T, name string, messages int64, cycles []time.Duration, loads map[string]int64, hot []server.HeatEntry) []byte {
	t.Helper()
	var h obs.Histogram
	for _, d := range cycles {
		h.Observe(d)
	}
	var touches int64
	for _, n := range loads {
		touches += n
	}
	m := memberStatus{
		Member:     name,
		Server:     name,
		Healthy:    true,
		Sessions:   1,
		Counters:   metrics.Snapshot{Messages: messages},
		Histograms: map[string]obs.HistogramSnapshot{"cycle": h.Snapshot()},
		Heat:       server.HeatStats{Touches: touches, Top: hot, OwnerLoads: loads},
	}
	body, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	return body
}

func newClusterHandler(t *testing.T, fetch func(member, url string) ([]byte, error)) (*server.Server, http.Handler) {
	t.Helper()
	cfg := server.Defaults("super1")
	cfg.Obs = obs.New(nil, nil)
	srv := server.New(cfg)
	t.Cleanup(func() { srv.Close() })
	h := NewHandler(Options{
		Server:      srv,
		Peers:       map[string]string{"super2": "http://h2:9090", "super3": "http://h3:9090"},
		FetchMember: fetch,
	})
	return srv, h
}

func TestClusterzScopeSelf(t *testing.T) {
	srv, h := newClusterHandler(t, func(member, url string) ([]byte, error) {
		t.Fatalf("scope=self must not scrape peers (asked for %s)", member)
		return nil, nil
	})
	srv.Observer().Cycle.Observe(40 * time.Millisecond)
	code, body, _ := get(t, h, "/clusterz.json?scope=self")
	if code != http.StatusOK {
		t.Fatalf("scope=self status = %d", code)
	}
	var m memberStatus
	if err := json.Unmarshal([]byte(body), &m); err != nil {
		t.Fatalf("scope=self not a memberStatus: %v\n%s", err, body)
	}
	if m.Member != "super1" || !m.Healthy {
		t.Fatalf("self snapshot = %+v", m)
	}
	if m.Histograms["cycle"].Count != 1 {
		t.Fatalf("self cycle histogram count = %d, want 1", m.Histograms["cycle"].Count)
	}
}

func TestClusterzFleetMerge(t *testing.T) {
	peers := map[string][]byte{}
	_, h := newClusterHandler(t, func(member, url string) ([]byte, error) {
		if !strings.Contains(url, "/clusterz.json?scope=self") {
			return nil, errors.New("wrong scrape path: " + url)
		}
		body, ok := peers[member]
		if !ok {
			return nil, errors.New("unknown member " + member)
		}
		return body, nil
	})
	peers["super2"] = cannedMember(t, "super2", 10,
		[]time.Duration{20 * time.Millisecond, 30 * time.Millisecond},
		map[string]int64{"super2": 6},
		[]server.HeatEntry{{File: "d/ws:/u/a.f", Owner: "super2", Touches: 6}})
	peers["super3"] = cannedMember(t, "super3", 7,
		[]time.Duration{25 * time.Millisecond},
		map[string]int64{"super2": 2, "super3": 4},
		[]server.HeatEntry{
			{File: "d/ws:/u/a.f", Owner: "super2", Touches: 2},
			{File: "d/ws:/u/b.f", Owner: "super3", Touches: 4},
		})

	code, body, _ := get(t, h, "/clusterz.json")
	if code != http.StatusOK {
		t.Fatalf("/clusterz.json status = %d", code)
	}
	var v clusterView
	if err := json.Unmarshal([]byte(body), &v); err != nil {
		t.Fatalf("/clusterz.json: %v\n%s", err, body)
	}
	if v.Self != "super1" || v.Fleet.Members != 3 || v.Fleet.Healthy != 3 {
		t.Fatalf("fleet header = self=%q members=%d healthy=%d", v.Self, v.Fleet.Members, v.Fleet.Healthy)
	}
	// The merged counter must be exactly the member sum (self contributes 0).
	var sum int64
	for _, m := range v.Members {
		sum += m.Counters.Messages
	}
	if v.Fleet.Counters.Messages != 17 || sum != 17 {
		t.Fatalf("merged messages = %d (member sum %d), want 17", v.Fleet.Counters.Messages, sum)
	}
	// Histograms merge bucket-by-bucket: three cycle samples total.
	if v.Fleet.Latencies["cycle"].Count != 3 {
		t.Fatalf("merged cycle count = %d, want 3", v.Fleet.Latencies["cycle"].Count)
	}
	if p50 := v.Fleet.Latencies["cycle"].P50NS; p50 < int64(15*time.Millisecond) || p50 > int64(40*time.Millisecond) {
		t.Fatalf("merged cycle p50 = %v", time.Duration(p50))
	}
	// Heat: owner loads sum across members, hot files dedup by name.
	if v.Ring.OwnerLoads["super2"] != 8 || v.Ring.OwnerLoads["super3"] != 4 {
		t.Fatalf("owner loads = %v", v.Ring.OwnerLoads)
	}
	if v.Fleet.Imbalance <= 1 {
		t.Fatalf("imbalance = %v, want > 1 for uneven loads", v.Fleet.Imbalance)
	}
	if len(v.Fleet.HotFiles) != 2 || v.Fleet.HotFiles[0].File != "d/ws:/u/a.f" || v.Fleet.HotFiles[0].Touches != 8 {
		t.Fatalf("hot files = %+v", v.Fleet.HotFiles)
	}

	// The text rendering names every member and the imbalance gauge.
	code, text, _ := get(t, h, "/clusterz")
	if code != http.StatusOK {
		t.Fatalf("/clusterz status = %d", code)
	}
	for _, want := range []string{"super1", "super2", "super3", "imbalance", "fleet latency", "hot files"} {
		if !strings.Contains(text, want) {
			t.Errorf("/clusterz text missing %q:\n%s", want, text)
		}
	}
}

func TestClusterzUnreachableMember(t *testing.T) {
	good := cannedMember(t, "super2", 5, nil, nil, nil)
	_, h := newClusterHandler(t, func(member, url string) ([]byte, error) {
		if member == "super2" {
			return good, nil
		}
		return nil, errors.New("connection refused")
	})
	code, body, _ := get(t, h, "/clusterz.json")
	if code != http.StatusOK {
		t.Fatalf("/clusterz.json status = %d", code)
	}
	var v clusterView
	if err := json.Unmarshal([]byte(body), &v); err != nil {
		t.Fatal(err)
	}
	if v.Fleet.Members != 3 || v.Fleet.Healthy != 2 {
		t.Fatalf("members=%d healthy=%d, want 3/2", v.Fleet.Members, v.Fleet.Healthy)
	}
	var down *memberStatus
	for i := range v.Members {
		if v.Members[i].Member == "super3" {
			down = &v.Members[i]
		}
	}
	if down == nil || down.Healthy || !strings.Contains(down.Error, "connection refused") {
		t.Fatalf("down row = %+v", down)
	}
	// The dead member is a row, not a poisoned sum.
	if v.Fleet.Counters.Messages != 5 {
		t.Fatalf("merged messages = %d, want 5", v.Fleet.Counters.Messages)
	}
	code, text, _ := get(t, h, "/clusterz")
	if code != http.StatusOK || !strings.Contains(text, "DOWN") {
		t.Fatalf("/clusterz text must mark the dead member:\n%s", text)
	}
}

func TestClusterzUnclustered(t *testing.T) {
	_, h := newTestHandler(t)
	code, body, _ := get(t, h, "/clusterz.json")
	if code != http.StatusOK {
		t.Fatalf("/clusterz.json status = %d", code)
	}
	var v clusterView
	if err := json.Unmarshal([]byte(body), &v); err != nil {
		t.Fatal(err)
	}
	if v.Fleet.Members != 1 || v.Fleet.Healthy != 1 {
		t.Fatalf("standalone fleet = %d/%d, want 1/1", v.Fleet.Members, v.Fleet.Healthy)
	}
	if len(v.Ring.Members) != 1 || v.Ring.Members[0] != "admin-test" {
		t.Fatalf("standalone ring = %v", v.Ring.Members)
	}
}

func TestPeerz(t *testing.T) {
	_, h := newTestHandler(t)
	code, body, _ := get(t, h, "/peerz")
	if code != http.StatusOK || !strings.Contains(body, "not clustered") {
		t.Fatalf("/peerz = %d:\n%s", code, body)
	}
	code, body, _ = get(t, h, "/peerz?format=json")
	if code != http.StatusOK {
		t.Fatalf("/peerz json = %d", code)
	}
	var v peerzView
	if err := json.Unmarshal([]byte(body), &v); err != nil {
		t.Fatalf("/peerz json: %v", err)
	}
	if len(v.Links) != 0 || len(v.Sessions) != 0 {
		t.Fatalf("unclustered peerz = %+v", v)
	}
}

func TestMetricsHeatSeries(t *testing.T) {
	_, h := newTestHandler(t)
	code, body, _ := get(t, h, "/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status = %d", code)
	}
	for _, want := range []string{
		"shadow_file_touches_total 0",
		"# TYPE shadow_ring_imbalance gauge",
		"shadow_ring_imbalance 0",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}
