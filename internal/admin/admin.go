// Package admin serves shadowd's operator endpoint: a plain-HTTP surface
// for inspecting a running shadow server without attaching a client to it.
//
// The handler exposes:
//
//   - /healthz   — liveness plus a one-look summary (sessions, jobs, cache)
//   - /metrics   — the full metrics.Snapshot and every obs latency
//     histogram in Prometheus text exposition format
//   - /cachez    — the best-effort cache, shard by shard, with eviction
//     pressure (bytes vs. capacity, evictions, rejected puts)
//   - /sessionz  — attached sessions with in-flight pulls, deferred
//     notifies and outbound queue depth, plus job lifecycle counts
//   - /tracez    — completed cycle traces, slowest first; ?id=N shows one
//     trace's span timeline, and ?id=N&format=chrome exports it as Chrome
//     trace-event JSON (loadable in Perfetto)
//   - /flightz   — per-session and per-peer-link flight recorders (recent
//     protocol events) and the dumps retained from sessions that
//     disconnected, faulted, or had a job fail — and from peer links that
//     died or fell back to the client path
//   - /peerz     — this member's peer mesh: outbound links with protocol
//     version and per-link fetch counters, inbound peer sessions with
//     served/declined counts
//   - /clusterz  — the whole fleet: every member's health, merged counters
//     and latency histograms, the hash ring with per-owner heat and the
//     imbalance gauge; /clusterz.json is the JSON alias, and
//     ?scope=self answers with just this member's snapshot (the unit the
//     aggregation is built from)
//   - /debug/pprof/* — the standard Go profiler endpoints
//
// /cachez, /sessionz, /tracez, /flightz, /peerz and /clusterz render text
// for eyes and, with ?format=json, JSON for tooling. The package depends
// only on the server's read-side accessors (Sessions, JobCounts, Metrics,
// Cache, Directory, Observer, SessionFlights, FlightDumps, PeerLinks,
// PeerSessions, PeerFlights, HeatStats), so serving it never perturbs the
// message hot paths beyond the cost of those snapshots.
package admin

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/pprof"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"

	"shadowedit/internal/metrics"
	"shadowedit/internal/obs"
	"shadowedit/internal/server"
	"shadowedit/internal/trace"
	"shadowedit/internal/wire"
)

// Options configures the admin handler.
type Options struct {
	// Server is the shadow server to expose. Required.
	Server *server.Server
	// Obs overrides the observer whose histograms /metrics renders;
	// nil uses Server.Observer().
	Obs *obs.Observer
	// Start anchors the uptime gauge; the zero value means "now".
	Start time.Time
	// Peers maps cluster member names to the base URL of their admin
	// endpoints (e.g. "http://super2:9090"). /clusterz scrapes each
	// peer's /clusterz.json?scope=self and merges; empty means this
	// member renders a single-member fleet.
	Peers map[string]string
	// FetchMember overrides how /clusterz fetches a peer snapshot —
	// tests inject httptest round-trips here. Nil uses a plain HTTP GET
	// with a short timeout.
	FetchMember func(member, url string) ([]byte, error)
}

// handler holds the resolved options.
type handler struct {
	srv   *server.Server
	obs   *obs.Observer
	start time.Time
	peers map[string]string
	fetch func(member, url string) ([]byte, error)
}

// NewHandler builds the admin endpoint's HTTP handler.
func NewHandler(opts Options) http.Handler {
	h := &handler{srv: opts.Server, obs: opts.Obs, start: opts.Start, peers: opts.Peers, fetch: opts.FetchMember}
	if h.obs == nil && h.srv != nil {
		h.obs = h.srv.Observer()
	}
	if h.start.IsZero() {
		h.start = time.Now()
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", h.healthz)
	mux.HandleFunc("/metrics", h.metrics)
	mux.HandleFunc("/cachez", h.cachez)
	mux.HandleFunc("/sessionz", h.sessionz)
	mux.HandleFunc("/tracez", h.tracez)
	mux.HandleFunc("/flightz", h.flightz)
	mux.HandleFunc("/peerz", h.peerz)
	mux.HandleFunc("/clusterz", h.clusterz)
	mux.HandleFunc("/clusterz.json", h.clusterz)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// healthz reports liveness with a compact JSON summary.
func (h *handler) healthz(w http.ResponseWriter, _ *http.Request) {
	jobs := make(map[string]int)
	for state, n := range h.srv.JobCounts() {
		jobs[state.String()] = n
	}
	st := h.srv.Cache().Stats()
	body := struct {
		Status        string         `json:"status"`
		Server        string         `json:"server"`
		UptimeSeconds float64        `json:"uptime_seconds"`
		Sessions      int            `json:"sessions"`
		Jobs          map[string]int `json:"jobs"`
		CacheEntries  int            `json:"cache_entries"`
		CacheBytes    int64          `json:"cache_bytes"`
	}{
		Status:        "ok",
		Server:        h.srv.Name(),
		UptimeSeconds: time.Since(h.start).Seconds(),
		Sessions:      h.srv.SessionCount(),
		Jobs:          jobs,
		CacheEntries:  st.Entries,
		CacheBytes:    st.Bytes,
	}
	writeJSON(w, body)
}

// metrics renders every counter, gauge and histogram in Prometheus text
// exposition format, by hand — the repo takes no dependencies.
func (h *handler) metrics(w http.ResponseWriter, _ *http.Request) {
	var b strings.Builder
	snap := h.srv.Metrics()
	writeCounters(&b, snap)
	h.writeGauges(&b)
	if h.obs != nil {
		writeHistogram(&b, "shadow_submit_ack_seconds", "Server latency from receiving a SUBMIT to enqueueing its SUBMIT_OK.", h.obs.SubmitAck.Snapshot())
		writeHistogram(&b, "shadow_pull_arrival_seconds", "Server latency from issuing a PULL to the requested content arriving.", h.obs.PullArrival.Snapshot())
		writeHistogram(&b, "shadow_job_lifetime_seconds", "Latency from a job becoming runnable to its completion.", h.obs.JobLifetime.Snapshot())
		writeHistogram(&b, "shadow_cycle_seconds", "Full edit-submit-fetch cycle latency as the client sees it.", h.obs.Cycle.Snapshot())
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_, _ = w.Write([]byte(b.String()))
}

// counterSpec names one Snapshot field for exposition.
type counterSpec struct {
	name, help string
	value      int64
}

// counterSpecs enumerates every metrics.Snapshot field. OBSERVABILITY.md
// documents each; keep the three in sync.
func counterSpecs(s metrics.Snapshot) []counterSpec {
	return []counterSpec{
		{"shadow_delta_bytes_total", "Payload bytes moved as shadow deltas.", s.DeltaBytes},
		{"shadow_full_bytes_total", "Payload bytes moved as full-content transfers.", s.FullBytes},
		{"shadow_control_bytes_total", "Payload bytes in control messages (notify, pull, ack, submit, status).", s.ControlBytes},
		{"shadow_output_bytes_total", "Job output bytes delivered to clients.", s.OutputBytes},
		{"shadow_messages_total", "Protocol messages counted on the transfer paths.", s.Messages},
		{"shadow_delta_sends_total", "Transfers that went as deltas.", s.DeltaSends},
		{"shadow_full_sends_total", "Transfers that went as full copies.", s.FullSends},
		{"shadow_busy_seconds_total", "Simulated compute time charged (diff runs, job CPU).", int64(s.Busy.Seconds())},
		{"shadow_cache_hits_total", "Shadow cache lookups that found a usable entry.", s.CacheHits},
		{"shadow_cache_misses_total", "Shadow cache lookups that missed.", s.CacheMisses},
		{"shadow_cache_evictions_total", "Entries evicted from the best-effort cache.", s.CacheEvictions},
		{"shadow_cache_rejected_total", "Puts the cache refused (content could not fit).", s.CacheRejected},
		{"shadow_pulls_issued_total", "File retrievals requested from clients.", s.PullsIssued},
		{"shadow_pulls_deferred_total", "Pulls postponed by the demand-driven policy.", s.PullsDeferred},
		{"shadow_pulls_coalesced_total", "Pulls satisfied by another session's in-flight fetch.", s.PullsCoalesced},
		{"shadow_reconnects_total", "Sessions re-established after connection loss.", s.Reconnects},
		{"shadow_retries_total", "Request attempts retried after transient failures.", s.Retries},
		{"shadow_full_fallbacks_total", "Delta transfers degraded to full copies (base evicted or lost).", s.FullFallbacks},
		{"shadow_dropped_frames_total", "Frames lost to fault injection.", s.DroppedFrames},
		{"shadow_manifest_bytes_total", "Payload bytes moved as chunk manifests (protocol v3).", s.ManifestBytes},
		{"shadow_chunk_bytes_total", "Payload bytes moved as chunk data (inline and requested).", s.ChunkBytes},
		{"shadow_manifest_sends_total", "Transfers that went as chunk manifests.", s.ManifestSends},
		{"shadow_chunk_sends_total", "CHUNK_DATA frames received.", s.ChunkSends},
		{"shadow_chunks_requested_total", "Chunk hashes asked for via CHUNK_REQ.", s.ChunksRequested},
		{"shadow_rehydrations_total", "Versions completed by fetching only their missing chunks.", s.Rehydrations},
		{"shadow_peer_forwards_total", "File versions served to or from a cluster peer as deltas or manifests.", s.PeerForwards},
		{"shadow_peer_delta_bytes_total", "Payload bytes moved as peer-forwarded deltas (protocol v5).", s.PeerDeltaBytes},
		{"shadow_peer_manifest_bytes_total", "Payload bytes moved as peer chunk manifests (protocol v5).", s.PeerManifestBytes},
		{"shadow_peer_chunk_bytes_total", "Payload bytes moved as peer-fetched chunk data (protocol v5).", s.PeerChunkBytes},
		{"shadow_peer_full_transfers_total", "Full file bodies crossing peer links (structurally zero; proves the negative).", s.PeerFullTransfers},
		{"shadow_peer_negatives_total", "Peer fetches the owner declined (requester pulls from the client).", s.PeerNegatives},
		{"shadow_delta_bytes_saved_total", "Full-content bytes peer forwarding avoided re-pulling from clients.", s.DeltaBytesSaved},
		{"shadow_owner_misses_total", "Requests that fell through a file's ring owner to a successor.", s.OwnerMisses},
		{"shadow_ring_rebalances_total", "Flights re-homed after a peer link died.", s.RingRebalances},
		{"shadow_file_touches_total", "File demand events feeding the ring heat view (notifies and job inputs).", s.FileTouches},
	}
}

func writeCounters(b *strings.Builder, s metrics.Snapshot) {
	for _, c := range counterSpecs(s) {
		fmt.Fprintf(b, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", c.name, c.help, c.name, c.name, c.value)
	}
}

func (h *handler) writeGauges(b *strings.Builder) {
	gauge := func(name, help string, v float64) {
		fmt.Fprintf(b, "# HELP %s %s\n# TYPE %s gauge\n%s %g\n", name, help, name, name, v)
	}
	gauge("shadow_uptime_seconds", "Seconds since the server started.", time.Since(h.start).Seconds())
	gauge("shadow_sessions", "Attached client sessions.", float64(h.srv.SessionCount()))
	gauge("shadow_inflight_fetches", "Coalesced file retrievals currently outstanding.", float64(h.srv.InFlightFetches()))
	queued, running := h.srv.Load()
	gauge("shadow_pool_queued", "Jobs waiting for a processor slot.", float64(queued))
	gauge("shadow_pool_running", "Jobs executing right now.", float64(running))
	st := h.srv.Cache().Stats()
	gauge("shadow_cache_entries", "Entries in the best-effort cache.", float64(st.Entries))
	gauge("shadow_cache_bytes", "Unique content bytes held by the cache's chunk store.", float64(st.Bytes))
	gauge("shadow_cache_capacity_bytes", "Configured cache capacity (0 = unbounded).", float64(max64(h.srv.Cache().Capacity(), 0)))
	gauge("shadow_cache_unique_bytes", "Unique chunk bytes resident (each stored once however many files reference it).", float64(st.Bytes))
	gauge("shadow_cache_logical_bytes", "Sum of cached files' content lengths — what a whole-file cache would hold.", float64(st.LogicalBytes))
	gauge("shadow_cache_dedup_ratio", "Logical over unique cache bytes (1 when empty or dedup-free).", st.DedupRatio())
	gauge("shadow_chunk_store_chunks", "Unique chunks resident in the content-addressed store.", float64(h.srv.Cache().ChunkStore().Stats().Chunks))
	// Capacity footprint: what each attached session costs the process.
	// ReadMemStats stops the world briefly, which a scrape endpoint can
	// afford; the per-session derivations are what the capacity benchmark
	// tracks in BENCH_server.json, exported live here.
	var mem runtime.MemStats
	runtime.ReadMemStats(&mem)
	goroutines := runtime.NumGoroutine()
	gauge("shadow_goroutines", "Goroutines in the server process.", float64(goroutines))
	gauge("shadow_heap_inuse_bytes", "Resident heap bytes (runtime.MemStats.HeapInuse).", float64(mem.HeapInuse))
	if n := h.srv.SessionCount(); n > 0 {
		gauge("shadow_goroutines_per_session", "Process goroutines divided by attached sessions.", float64(goroutines)/float64(n))
		gauge("shadow_heap_inuse_bytes_per_session", "Resident heap bytes divided by attached sessions.", float64(mem.HeapInuse)/float64(n))
	}
	gauge("shadow_ring_imbalance", "Hottest ring owner's file demand over the mean (1 = even, 0 = idle).", h.srv.HeatStats(0).Imbalance)
	counts := h.srv.JobCounts()
	fmt.Fprintf(b, "# HELP shadow_jobs Submitted jobs by lifecycle state.\n# TYPE shadow_jobs gauge\n")
	for _, state := range []wire.JobState{wire.JobQueued, wire.JobFetching, wire.JobRunning, wire.JobDone, wire.JobFailed} {
		fmt.Fprintf(b, "shadow_jobs{state=%q} %d\n", state.String(), counts[state])
	}
}

// The canonical histogram export grid: cumulative counts at every
// power-of-two bound from 2^12 ns (≈4.1µs) to 2^43 ns (≈2.4h). The bound
// set is fixed — it does not depend on which buckets hold samples — so
// every instance emits the same 32 `le` values and an external aggregator
// can sum the series bucket-by-bucket across a fleet of shadow servers.
const (
	histLoExp = 12
	histHiExp = 43
)

// writeHistogram renders one obs histogram in Prometheus histogram syntax
// on the canonical power-of-two grid. The counts are exact (powers of two
// are octave boundaries of the underlying log-linear histogram), cumulative
// as the exposition format requires, and +Inf closes the series.
func writeHistogram(b *strings.Builder, name, help string, s obs.HistogramSnapshot) {
	fmt.Fprintf(b, "# HELP %s %s\n# TYPE %s histogram\n", name, help, name)
	for _, bk := range s.Pow2Buckets(histLoExp, histHiExp) {
		fmt.Fprintf(b, "%s_bucket{le=%q} %d\n", name, formatSeconds(bk.Le), bk.Count)
	}
	fmt.Fprintf(b, "%s_bucket{le=\"+Inf\"} %d\n", name, s.Count)
	fmt.Fprintf(b, "%s_sum %g\n", name, s.Sum.Seconds())
	fmt.Fprintf(b, "%s_count %d\n", name, s.Count)
}

// formatSeconds renders a nanosecond bound as seconds with enough precision
// to keep distinct buckets distinct.
func formatSeconds(ns uint64) string {
	return fmt.Sprintf("%.9g", float64(ns)/1e9)
}

// cacheView is /cachez's JSON shape.
type cacheView struct {
	Policy        string `json:"policy"`
	CapacityBytes int64  `json:"capacity_bytes"`
	Bytes         int64  `json:"bytes"`
	Entries       int    `json:"entries"`
	Hits          int64  `json:"hits"`
	Misses        int64  `json:"misses"`
	Evictions     int64  `json:"evictions"`
	Rejected      int64  `json:"rejected"`
	// The content-addressed chunk store behind the entries: unique vs
	// logical bytes is the measured sub-file dedup.
	Chunks       int              `json:"chunks"`
	UniqueBytes  int64            `json:"unique_bytes"`
	LogicalBytes int64            `json:"logical_bytes"`
	DedupRatio   float64          `json:"dedup_ratio"`
	ChunkPuts    int64            `json:"chunk_puts"`
	ChunkDups    int64            `json:"chunk_dups"`
	ChunkFrees   int64            `json:"chunk_frees"`
	Files        []cacheEntryView `json:"files"`
}

type cacheEntryView struct {
	Shard    int    `json:"shard"`
	ID       uint64 `json:"id"`
	File     string `json:"file,omitempty"`
	Version  uint64 `json:"version"`
	Bytes    int    `json:"bytes"`
	Pins     int    `json:"pins"`
	LastUsed int64  `json:"last_used_seq"`
}

func (h *handler) cacheView() cacheView {
	c := h.srv.Cache()
	st := c.Stats()
	cs := c.ChunkStore().Stats()
	v := cacheView{
		Policy:        c.Policy().String(),
		CapacityBytes: c.Capacity(),
		Bytes:         st.Bytes,
		Entries:       st.Entries,
		Hits:          st.Hits,
		Misses:        st.Misses,
		Evictions:     st.Evictions,
		Rejected:      st.Rejected,
		Chunks:        cs.Chunks,
		UniqueBytes:   cs.UniqueBytes,
		LogicalBytes:  st.LogicalBytes,
		DedupRatio:    st.DedupRatio(),
		ChunkPuts:     cs.Puts,
		ChunkDups:     cs.Dups,
		ChunkFrees:    cs.Frees,
	}
	entries := c.Entries()
	sort.Slice(entries, func(a, b int) bool {
		if entries[a].Shard != entries[b].Shard {
			return entries[a].Shard < entries[b].Shard
		}
		return entries[a].ID < entries[b].ID
	})
	for _, e := range entries {
		ev := cacheEntryView{
			Shard:    e.Shard,
			ID:       uint64(e.ID),
			Version:  e.Version,
			Bytes:    e.Size,
			Pins:     e.Pins,
			LastUsed: e.LastUsed,
		}
		if ref, ok := h.srv.Directory().RefOf(e.ID); ok {
			ev.File = ref.String()
		}
		v.Files = append(v.Files, ev)
	}
	return v
}

// cachez shows the best-effort cache shard by shard.
func (h *handler) cachez(w http.ResponseWriter, r *http.Request) {
	v := h.cacheView()
	if wantJSON(r) {
		writeJSON(w, v)
		return
	}
	var b strings.Builder
	capStr := "unbounded"
	if v.CapacityBytes > 0 {
		capStr = fmt.Sprintf("%d bytes (%.1f%% full)", v.CapacityBytes, 100*float64(v.Bytes)/float64(v.CapacityBytes))
	}
	fmt.Fprintf(&b, "shadow cache: %d entries, %d bytes, capacity %s, policy %s\n", v.Entries, v.Bytes, capStr, v.Policy)
	fmt.Fprintf(&b, "pressure: %d hits, %d misses, %d evictions, %d rejected puts\n", v.Hits, v.Misses, v.Evictions, v.Rejected)
	fmt.Fprintf(&b, "chunks: %d unique holding %d bytes for %d logical (dedup %.2fx); %d puts, %d dup hits, %d frees\n\n",
		v.Chunks, v.UniqueBytes, v.LogicalBytes, v.DedupRatio, v.ChunkPuts, v.ChunkDups, v.ChunkFrees)
	shard := -1
	for _, e := range v.Files {
		if e.Shard != shard {
			shard = e.Shard
			fmt.Fprintf(&b, "shard %d:\n", shard)
		}
		name := e.File
		if name == "" {
			name = fmt.Sprintf("shadow-id %d", e.ID)
		}
		fmt.Fprintf(&b, "  %s v%d  %d bytes  pins=%d  lastused=%d\n", name, e.Version, e.Bytes, e.Pins, e.LastUsed)
	}
	writeText(w, b.String())
}

// sessionView is /sessionz's JSON shape.
type sessionView struct {
	Sessions        []server.SessionInfo `json:"sessions"`
	Jobs            map[string]int       `json:"jobs"`
	InFlightFetches int                  `json:"inflight_fetches"`
}

// sessionz shows attached sessions and job lifecycle counts.
func (h *handler) sessionz(w http.ResponseWriter, r *http.Request) {
	v := sessionView{
		Sessions:        h.srv.Sessions(),
		Jobs:            make(map[string]int),
		InFlightFetches: h.srv.InFlightFetches(),
	}
	for state, n := range h.srv.JobCounts() {
		v.Jobs[state.String()] = n
	}
	if wantJSON(r) {
		writeJSON(w, v)
		return
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%d sessions attached, %d fetches in flight\n", len(v.Sessions), v.InFlightFetches)
	for _, s := range v.Sessions {
		who := "(handshaking)"
		if s.User != "" {
			who = fmt.Sprintf("%s@%s domain=%s", s.User, s.ClientHost, s.Domain)
		}
		fmt.Fprintf(&b, "  session %d: %s  pulls-in-flight=%d deferred-notifies=%d queued-writes=%d\n",
			s.ID, who, s.PullsInFlight, s.DeferredNotifies, s.QueuedWrites)
	}
	states := make([]string, 0, len(v.Jobs))
	for s := range v.Jobs {
		states = append(states, s)
	}
	sort.Strings(states)
	b.WriteString("jobs:")
	if len(states) == 0 {
		b.WriteString(" none")
	}
	for _, s := range states {
		fmt.Fprintf(&b, " %s=%d", s, v.Jobs[s])
	}
	b.WriteString("\n")
	writeText(w, b.String())
}

// traceSummary is one /tracez list row.
type traceSummary struct {
	ID       uint64 `json:"id"`
	Name     string `json:"name"`
	StartNS  int64  `json:"start_ns"`
	DurNS    int64  `json:"duration_ns"`
	Spans    int    `json:"spans"`
	Session  uint64 `json:"session,omitempty"`
	Job      uint64 `json:"job,omitempty"`
	RootFile string `json:"file,omitempty"`
}

// tracezView is /tracez's JSON list shape.
type tracezView struct {
	Stats  trace.Stats    `json:"stats"`
	Traces []traceSummary `json:"traces"`
}

// tracer returns the tracer the admin surface reads from (nil = off).
func (h *handler) tracer() *trace.Tracer {
	if h.obs == nil {
		return nil
	}
	return h.obs.Tracer()
}

// tracez lists completed cycle traces slowest first (?n bounds the list,
// default 32). ?id=N renders one trace's span timeline; with &format=chrome
// it exports Chrome trace-event JSON, with &format=json the raw record.
func (h *handler) tracez(w http.ResponseWriter, r *http.Request) {
	tr := h.tracer()
	if tr == nil {
		writeText(w, "tracing disabled (start shadowd with -trace, or attach a tracer to the observer)\n")
		return
	}
	if idStr := r.URL.Query().Get("id"); idStr != "" {
		id, err := strconv.ParseUint(idStr, 10, 64)
		if err != nil {
			http.Error(w, "bad trace id: "+idStr, http.StatusBadRequest)
			return
		}
		rec, ok := tr.Lookup(id)
		if !ok {
			http.Error(w, fmt.Sprintf("trace %d not found (not completed yet, or evicted)", id), http.StatusNotFound)
			return
		}
		switch r.URL.Query().Get("format") {
		case "chrome":
			w.Header().Set("Content-Type", "application/json")
			w.Header().Set("Content-Disposition", fmt.Sprintf("attachment; filename=trace-%d.json", id))
			_ = trace.WriteChrome(w, rec)
		case "json":
			writeJSON(w, rec)
		default:
			writeText(w, renderTrace(rec))
		}
		return
	}
	n := 32
	if ns := r.URL.Query().Get("n"); ns != "" {
		if v, err := strconv.Atoi(ns); err == nil {
			n = v
		}
	}
	recs := tr.Slowest(n)
	v := tracezView{Stats: tr.Stats(), Traces: make([]traceSummary, 0, len(recs))}
	for _, rec := range recs {
		v.Traces = append(v.Traces, summarize(rec))
	}
	if wantJSON(r) {
		writeJSON(w, v)
		return
	}
	var b strings.Builder
	st := v.Stats
	fmt.Fprintf(&b, "cycle traces: %d completed, %d active (minted %d, unsampled %d, spans %d, dropped %d, evicted %d)\n",
		st.Completed, st.Active, st.Minted, st.Unsampled, st.Spans, st.DroppedSpans, st.Evicted)
	b.WriteString("slowest first; /tracez?id=N for the timeline, &format=chrome for Perfetto\n\n")
	for _, t := range v.Traces {
		fmt.Fprintf(&b, "  trace %-6d %-12s %10v  %d spans", t.ID, t.Name, time.Duration(t.DurNS), t.Spans)
		if t.Job != 0 {
			fmt.Fprintf(&b, "  job=%d", t.Job)
		}
		if t.RootFile != "" {
			fmt.Fprintf(&b, "  file=%s", t.RootFile)
		}
		b.WriteString("\n")
	}
	writeText(w, b.String())
}

// summarize derives a list row from a trace record.
func summarize(rec trace.Record) traceSummary {
	start, end := rec.Bounds()
	s := traceSummary{
		ID:      rec.ID,
		Name:    rec.Name(),
		StartNS: start.Nanoseconds(),
		DurNS:   (end - start).Nanoseconds(),
		Spans:   len(rec.Spans),
	}
	for _, sp := range rec.Spans {
		if s.Session == 0 && sp.Session != 0 {
			s.Session = sp.Session
		}
		if s.Job == 0 && sp.Job != 0 {
			s.Job = sp.Job
		}
		if s.RootFile == "" && sp.File != "" {
			s.RootFile = sp.File
		}
	}
	return s
}

// renderTrace renders one trace's spans as a text timeline, offsets
// relative to the trace's earliest start.
func renderTrace(rec trace.Record) string {
	start, end := rec.Bounds()
	var b strings.Builder
	fmt.Fprintf(&b, "trace %d (%s): %d spans, %v\n", rec.ID, rec.Name(), len(rec.Spans), end-start)
	for _, sp := range rec.Spans {
		fmt.Fprintf(&b, "  [+%-10v %10v] %-20s", sp.Start-start, sp.End-sp.Start, sp.Name)
		if sp.Session != 0 {
			fmt.Fprintf(&b, " session=%d", sp.Session)
		}
		if sp.Job != 0 {
			fmt.Fprintf(&b, " job=%d", sp.Job)
		}
		if sp.File != "" {
			fmt.Fprintf(&b, " file=%s", sp.File)
		}
		if sp.Detail != "" {
			fmt.Fprintf(&b, " (%s)", sp.Detail)
		}
		b.WriteString("\n")
	}
	return b.String()
}

// flightzView is /flightz's JSON shape.
type flightzView struct {
	Live  []server.SessionFlight `json:"live"`
	Peers []server.SessionFlight `json:"peer_links"`
	Dumps []server.FlightDump    `json:"dumps"`
}

// flightz shows each live session's flight recorder, each live peer link's
// recorder, and the dumps retained from sessions or links that died,
// faulted, or fell back to the client path.
func (h *handler) flightz(w http.ResponseWriter, r *http.Request) {
	v := flightzView{Live: h.srv.SessionFlights(), Peers: h.srv.PeerFlights(), Dumps: h.srv.FlightDumps()}
	if wantJSON(r) {
		writeJSON(w, v)
		return
	}
	var b strings.Builder
	if h.tracer() == nil {
		b.WriteString("flight recorders off (tracing disabled)\n")
	}
	fmt.Fprintf(&b, "%d live session recorders, %d retained dumps, %d peer-link recorders\n", len(v.Live), len(v.Dumps), len(v.Peers))
	for _, f := range v.Live {
		fmt.Fprintf(&b, "\nsession %d (%s@%s): %d events\n", f.Session, f.User, f.Host, len(f.Events))
		writeFlightEvents(&b, f.Events)
	}
	for _, f := range v.Peers {
		fmt.Fprintf(&b, "\npeer link %d -> %s: %d events\n", f.Session, f.Host, len(f.Events))
		writeFlightEvents(&b, f.Events)
	}
	for _, d := range v.Dumps {
		fmt.Fprintf(&b, "\ndump: session %d (%s@%s) reason=%q at %v, %d events\n",
			d.Session, d.User, d.Host, d.Reason, d.At, len(d.Events))
		writeFlightEvents(&b, d.Events)
	}
	writeText(w, b.String())
}

func writeFlightEvents(b *strings.Builder, events []trace.Event) {
	for _, e := range events {
		fmt.Fprintf(b, "  [%10v] %-5s %-14s", time.Duration(e.At), e.Kind, e.Name)
		if e.Trace != 0 {
			fmt.Fprintf(b, " trace=%d", e.Trace)
		}
		if e.Detail != "" {
			fmt.Fprintf(b, " (%s)", e.Detail)
		}
		b.WriteString("\n")
	}
}

func wantJSON(r *http.Request) bool {
	return r.URL.Query().Get("format") == "json"
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeText(w http.ResponseWriter, s string) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	_, _ = w.Write([]byte(s))
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
