// Cluster-facing admin views: /peerz (this member's peer links) and
// /clusterz (the whole fleet through one member's eyes).
//
// /clusterz makes each shadow server its own fleet aggregator. A member
// answers ?scope=self with its local snapshot — counters, the four latency
// histograms as raw bucket arrays, and ring heat — and answers the plain
// request by scraping every configured peer's scope=self endpoint and
// merging: counters field-wise via metrics.Merge, histograms bucket-by-
// bucket (exact, because every member exports the same fixed power-of-two
// grid), and heat by summing per-owner loads and re-deriving the imbalance
// gauge. Operators point a browser or curl at any member and see the
// cluster as one system, with no external scraper in the loop. A member
// that cannot be reached renders as an unhealthy row rather than failing
// the whole view.
package admin

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"time"

	"shadowedit/internal/cluster"
	"shadowedit/internal/metrics"
	"shadowedit/internal/obs"
	"shadowedit/internal/server"
)

// hotN bounds the hot-file lists a member reports and the fleet view renders.
const hotN = 16

// memberStatus is one member's row in the /clusterz view — also the exact
// shape a member answers for ?scope=self, so fleet aggregation is "fetch
// this struct from every peer and merge".
type memberStatus struct {
	Member        string                           `json:"member"`
	Server        string                           `json:"server"`
	URL           string                           `json:"url,omitempty"`
	Healthy       bool                             `json:"healthy"`
	Error         string                           `json:"error,omitempty"`
	UptimeSeconds float64                          `json:"uptime_seconds"`
	Sessions      int                              `json:"sessions"`
	Counters      metrics.Snapshot                 `json:"counters"`
	Histograms    map[string]obs.HistogramSnapshot `json:"histograms"`
	Heat          server.HeatStats                 `json:"heat"`
}

// latencySummary is one merged histogram's headline quantiles.
type latencySummary struct {
	Count  uint64 `json:"count"`
	P50NS  int64  `json:"p50_ns"`
	P90NS  int64  `json:"p90_ns"`
	P99NS  int64  `json:"p99_ns"`
	MeanNS int64  `json:"mean_ns"`
}

// ringView is the placement slice of /clusterz: who is in the ring and how
// the fleet's file demand lands on them.
type ringView struct {
	Members    []string         `json:"members"`
	OwnerLoads map[string]int64 `json:"owner_loads"`
	Imbalance  float64          `json:"imbalance"`
}

// fleetView is the merged half of /clusterz.
type fleetView struct {
	Members   int                       `json:"members"`
	Healthy   int                       `json:"healthy"`
	Sessions  int                       `json:"sessions"`
	Counters  metrics.Snapshot          `json:"counters"`
	Latencies map[string]latencySummary `json:"latencies"`
	HotFiles  []server.HeatEntry        `json:"hot_files"`
	Imbalance float64                   `json:"imbalance"`
}

// clusterView is /clusterz's JSON shape.
type clusterView struct {
	Self    string         `json:"self"`
	Members []memberStatus `json:"members"`
	Ring    ringView       `json:"ring"`
	Fleet   fleetView      `json:"fleet"`
}

// selfStatus builds this member's scope=self snapshot.
func (h *handler) selfStatus() memberStatus {
	return memberStatus{
		Member:        h.srv.Name(),
		Server:        h.srv.Name(),
		Healthy:       true,
		UptimeSeconds: time.Since(h.start).Seconds(),
		Sessions:      h.srv.SessionCount(),
		Counters:      h.srv.Metrics(),
		Histograms:    h.histogramSnapshots(),
		Heat:          h.srv.HeatStats(hotN),
	}
}

// histogramSnapshots names the observer's latency histograms for export.
// The raw bucket arrays travel in scope=self answers so the aggregating
// member can merge them exactly.
func (h *handler) histogramSnapshots() map[string]obs.HistogramSnapshot {
	m := make(map[string]obs.HistogramSnapshot)
	if h.obs != nil {
		m["submit_ack"] = h.obs.SubmitAck.Snapshot()
		m["pull_arrival"] = h.obs.PullArrival.Snapshot()
		m["job_lifetime"] = h.obs.JobLifetime.Snapshot()
		m["cycle"] = h.obs.Cycle.Snapshot()
	}
	return m
}

// defaultFetch is the peer scraper used when Options.FetchMember is nil.
func defaultFetch(_ string, url string) ([]byte, error) {
	c := &http.Client{Timeout: 2 * time.Second}
	resp, err := c.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("status %s", resp.Status)
	}
	return io.ReadAll(io.LimitReader(resp.Body, 16<<20))
}

// gatherMembers returns the fleet's member rows: self first, then every
// configured peer in name order. Scrape failures become unhealthy rows.
func (h *handler) gatherMembers() []memberStatus {
	rows := []memberStatus{h.selfStatus()}
	names := make([]string, 0, len(h.peers))
	for name := range h.peers {
		names = append(names, name)
	}
	sort.Strings(names)
	fetch := h.fetch
	if fetch == nil {
		fetch = defaultFetch
	}
	for _, name := range names {
		url := strings.TrimSuffix(h.peers[name], "/") + "/clusterz.json?scope=self"
		row := memberStatus{Member: name, URL: url}
		body, err := fetch(name, url)
		if err == nil {
			err = json.Unmarshal(body, &row)
		}
		if err != nil {
			rows = append(rows, memberStatus{Member: name, URL: url, Healthy: false, Error: err.Error()})
			continue
		}
		row.Member, row.URL = name, url
		rows = append(rows, row)
	}
	return rows
}

// mergeFleet folds the healthy members' snapshots into one fleet view:
// counters by field-wise sum, histograms bucket-by-bucket, heat by owner.
func mergeFleet(rows []memberStatus) (fleetView, ringView) {
	f := fleetView{Members: len(rows), Latencies: make(map[string]latencySummary)}
	hists := make(map[string]*obs.HistogramSnapshot)
	loads := make(map[string]int64)
	hot := make(map[string]*server.HeatEntry)
	for i := range rows {
		m := &rows[i]
		if !m.Healthy {
			continue
		}
		f.Healthy++
		f.Sessions += m.Sessions
		f.Counters = metrics.Merge(f.Counters, m.Counters)
		for name, hs := range m.Histograms {
			hs := hs
			if acc, ok := hists[name]; ok {
				acc.Merge(&hs)
			} else {
				hists[name] = &hs
			}
		}
		for owner, n := range m.Heat.OwnerLoads {
			loads[owner] += n
		}
		for _, e := range m.Heat.Top {
			if acc, ok := hot[e.File]; ok {
				acc.Touches += e.Touches
			} else {
				e := e
				hot[e.File] = &e
			}
		}
	}
	for name, hs := range hists {
		f.Latencies[name] = latencySummary{
			Count:  hs.Count,
			P50NS:  hs.Quantile(0.50).Nanoseconds(),
			P90NS:  hs.Quantile(0.90).Nanoseconds(),
			P99NS:  hs.Quantile(0.99).Nanoseconds(),
			MeanNS: hs.Mean().Nanoseconds(),
		}
	}
	for _, e := range hot {
		f.HotFiles = append(f.HotFiles, *e)
	}
	sort.Slice(f.HotFiles, func(a, b int) bool {
		if f.HotFiles[a].Touches != f.HotFiles[b].Touches {
			return f.HotFiles[a].Touches > f.HotFiles[b].Touches
		}
		return f.HotFiles[a].File < f.HotFiles[b].File
	})
	if len(f.HotFiles) > hotN {
		f.HotFiles = f.HotFiles[:hotN]
	}
	f.Imbalance = cluster.Imbalance(loads)
	return f, ringView{OwnerLoads: loads, Imbalance: f.Imbalance}
}

// clusterz serves the fleet view. ?scope=self answers with this member's
// snapshot only (the unit of aggregation); otherwise the handler scrapes
// every configured peer and merges. The /clusterz.json alias and
// ?format=json render JSON; the default is text for eyes.
func (h *handler) clusterz(w http.ResponseWriter, r *http.Request) {
	if r.URL.Query().Get("scope") == "self" {
		writeJSON(w, h.selfStatus())
		return
	}
	rows := h.gatherMembers()
	fleet, ring := mergeFleet(rows)
	ring.Members = h.srv.ClusterMembers()
	if ring.Members == nil {
		ring.Members = []string{h.srv.Name()}
	}
	v := clusterView{Self: h.srv.Name(), Members: rows, Ring: ring, Fleet: fleet}
	if wantJSON(r) || strings.HasSuffix(r.URL.Path, ".json") {
		writeJSON(w, v)
		return
	}
	var b strings.Builder
	fmt.Fprintf(&b, "cluster: %d members, %d healthy (viewed from %s)\n", fleet.Members, fleet.Healthy, v.Self)
	for _, m := range v.Members {
		if !m.Healthy {
			fmt.Fprintf(&b, "  %-12s DOWN  %s (%s)\n", m.Member, m.URL, m.Error)
			continue
		}
		where := "(self)"
		if m.URL != "" {
			where = m.URL
		}
		fmt.Fprintf(&b, "  %-12s up    sessions=%d uptime=%.1fs messages=%d peer-forwards=%d  %s\n",
			m.Member, m.Sessions, m.UptimeSeconds, m.Counters.Messages, m.Counters.PeerForwards, where)
	}
	fmt.Fprintf(&b, "\nring: %s  imbalance=%.2f\n", strings.Join(ring.Members, " "), ring.Imbalance)
	owners := make([]string, 0, len(ring.OwnerLoads))
	for o := range ring.OwnerLoads {
		owners = append(owners, o)
	}
	sort.Strings(owners)
	for _, o := range owners {
		fmt.Fprintf(&b, "  owner %-12s %d touches\n", o, ring.OwnerLoads[o])
	}
	c := fleet.Counters
	fmt.Fprintf(&b, "\nfleet counters: %d sessions, %d messages, %d delta bytes, %d full bytes, %d peer forwards, %d peer negatives, %d file touches\n",
		fleet.Sessions, c.Messages, c.DeltaBytes, c.FullBytes, c.PeerForwards, c.PeerNegatives, c.FileTouches)
	names := make([]string, 0, len(fleet.Latencies))
	for n := range fleet.Latencies {
		names = append(names, n)
	}
	sort.Strings(names)
	b.WriteString("fleet latency (merged bucket-exact):\n")
	for _, n := range names {
		l := fleet.Latencies[n]
		fmt.Fprintf(&b, "  %-12s n=%-6d p50=%-10v p90=%-10v p99=%v\n",
			n, l.Count, time.Duration(l.P50NS), time.Duration(l.P90NS), time.Duration(l.P99NS))
	}
	if len(fleet.HotFiles) > 0 {
		fmt.Fprintf(&b, "hot files (fleet top %d):\n", len(fleet.HotFiles))
		for _, e := range fleet.HotFiles {
			fmt.Fprintf(&b, "  %6d  %-12s %s\n", e.Touches, e.Owner, e.File)
		}
	}
	writeText(w, b.String())
}

// peerzView is /peerz's JSON shape.
type peerzView struct {
	Links    []server.PeerLinkInfo    `json:"links"`
	Sessions []server.PeerSessionInfo `json:"sessions"`
}

// peerz shows this member's side of the peer mesh: outbound links with
// their protocol version and per-link fetch counters, and inbound peer
// sessions with what this member served or declined for them.
func (h *handler) peerz(w http.ResponseWriter, r *http.Request) {
	v := peerzView{Links: h.srv.PeerLinks(), Sessions: h.srv.PeerSessions()}
	if wantJSON(r) {
		writeJSON(w, v)
		return
	}
	var b strings.Builder
	if len(v.Links) == 0 && len(v.Sessions) == 0 {
		b.WriteString("not clustered (no peer links or peer sessions)\n")
	}
	if len(v.Links) > 0 {
		fmt.Fprintf(&b, "outbound peer links (%d):\n", len(v.Links))
		for _, l := range v.Links {
			fmt.Fprintf(&b, "  %-12s %-4s proto=v%d fetching=%d deltas-in=%d chunks-in=%d negatives-in=%d fallbacks=%d\n",
				l.Member, l.State, l.Protocol, l.Fetching, l.DeltasIn, l.ChunksIn, l.NegativesIn, l.Fallbacks)
		}
	}
	if len(v.Sessions) > 0 {
		fmt.Fprintf(&b, "inbound peer sessions (%d):\n", len(v.Sessions))
		for _, s := range v.Sessions {
			fmt.Fprintf(&b, "  session %-4d instance=%-12s served=%d declined=%d\n",
				s.Session, s.Instance, s.Served, s.Declined)
		}
	}
	writeText(w, b.String())
}
