package obs

import (
	"bytes"
	"log/slog"
	"testing"
	"time"

	"shadowedit/internal/trace"
	"shadowedit/internal/wire"
)

func TestNilObserverIsSafeAndFree(t *testing.T) {
	var o *Observer
	if o.Now() != 0 {
		t.Fatal("nil observer Now() != 0")
	}
	o.ObserveSubmitAck(0)
	o.ObservePullArrival(0)
	o.ObserveJobLifetime(0)
	o.ObserveCycle(0)
	if o.LogEnabled(slog.LevelError) {
		t.Fatal("nil observer reports logging enabled")
	}
	o.Log(slog.LevelInfo, "ignored")
	if o.Logger() != nil {
		t.Fatal("nil observer has a logger")
	}

	// The disabled path is the session hot path with observability off: it
	// must not allocate.
	allocs := testing.AllocsPerRun(1000, func() {
		start := o.Now()
		o.ObserveSubmitAck(start)
		o.ObservePullArrival(start)
		o.ObserveJobLifetime(start)
		o.ObserveCycle(start)
		if o.LogEnabled(slog.LevelDebug) {
			o.Log(slog.LevelDebug, "pull", slog.Uint64("session", 1))
		}
	})
	if allocs != 0 {
		t.Fatalf("disabled instrumentation allocates %.1f times per op, want 0", allocs)
	}
}

func TestEnabledHistogramPathDoesNotAllocate(t *testing.T) {
	o := New(nil, nil)
	allocs := testing.AllocsPerRun(1000, func() {
		start := o.Now()
		o.ObserveSubmitAck(start)
		o.ObserveCycle(start)
	})
	if allocs != 0 {
		t.Fatalf("histogram recording allocates %.1f times per op, want 0", allocs)
	}
}

func TestObserverClockAndLogging(t *testing.T) {
	var vt time.Duration
	var buf bytes.Buffer
	logger := slog.New(slog.NewTextHandler(&buf, &slog.HandlerOptions{Level: slog.LevelDebug}))
	o := New(logger, func() time.Duration { return vt })

	start := o.Now()
	vt = 250 * time.Millisecond
	o.ObserveCycle(start)
	snap := o.Cycle.Snapshot()
	if snap.Count != 1 {
		t.Fatalf("cycle count = %d, want 1", snap.Count)
	}
	if q := snap.Quantile(0.5); q < 230*time.Millisecond || q > 270*time.Millisecond {
		t.Fatalf("cycle p50 = %v, want ~250ms", q)
	}

	if !o.LogEnabled(slog.LevelDebug) {
		t.Fatal("debug logging should be enabled")
	}
	o.Log(slog.LevelInfo, "pull issued", slog.Uint64("session", 7), slog.String("file", "dom/f1"))
	if got := buf.String(); !bytes.Contains([]byte(got), []byte("pull issued")) ||
		!bytes.Contains([]byte(got), []byte("session=7")) {
		t.Fatalf("structured event not emitted: %q", got)
	}
}

// BenchmarkDisabledInstrumentation measures the instrumented hot-path
// pattern with observability off — the acceptance bar is zero allocations
// (run with -benchmem).
func BenchmarkDisabledInstrumentation(b *testing.B) {
	var o *Observer
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		start := o.Now()
		o.ObserveSubmitAck(start)
		if o.LogEnabled(slog.LevelDebug) {
			o.Log(slog.LevelDebug, "submit", slog.Uint64("job", uint64(i)))
		}
	}
}

// BenchmarkEnabledHistogram measures recording cost with histograms live.
func BenchmarkEnabledHistogram(b *testing.B) {
	o := New(nil, nil)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		o.ObserveSubmitAck(o.Now())
	}
}

func TestObserverTracerHooks(t *testing.T) {
	var now time.Duration
	o := New(nil, func() time.Duration { return now })

	// No tracer attached: every hook is inert.
	if o.Tracer() != nil || o.StartTrace("cycle") != nil {
		t.Fatal("tracing active without a tracer")
	}
	if o.StartSpan(wire.TraceContext{TraceID: 1, SpanID: 1}, "s") != nil {
		t.Fatal("StartSpan active without a tracer")
	}
	o.EndTrace(wire.TraceContext{TraceID: 1})

	tr := trace.New(trace.Config{})
	o.SetTracer(tr)
	if o.Tracer() != tr {
		t.Fatal("Tracer() lost the tracer")
	}
	root := o.StartTrace("cycle")
	if root == nil {
		t.Fatal("StartTrace nil with tracer attached")
	}
	now = 5 * time.Millisecond
	child := o.StartSpan(root.Context(), "server.pull")
	now = 8 * time.Millisecond
	child.Finish()
	root.Finish()
	o.EndTrace(root.Context())
	o.EndTrace(root.Context()) // idempotent

	rec, ok := tr.Lookup(root.Trace)
	if !ok || len(rec.Spans) != 2 {
		t.Fatalf("trace = %+v, %v", rec, ok)
	}
	// Spans were stamped by the observer's clock; Lookup returns them in
	// canonical start order, so the root (started at 0) comes first.
	if rec.Spans[0].Name != "cycle" || rec.Spans[0].End != 8*time.Millisecond {
		t.Fatalf("root span = %q %v..%v, want cycle ..8ms", rec.Spans[0].Name, rec.Spans[0].Start, rec.Spans[0].End)
	}
	if rec.Spans[1].Start != 5*time.Millisecond || rec.Spans[1].End != 8*time.Millisecond {
		t.Fatalf("span stamps = %v..%v, want 5ms..8ms", rec.Spans[1].Start, rec.Spans[1].End)
	}

	// Nil observer: all hooks inert.
	var n *Observer
	n.SetTracer(tr)
	if n.Tracer() != nil || n.StartTrace("x") != nil {
		t.Fatal("nil observer traced")
	}
	n.EndTrace(root.Context())
}
