// Package obs is the observability layer shared by the server, the client
// and the bench harness: structured event logging (log/slog, leveled, with
// per-session and per-file attribution) plus lock-free latency histograms
// for the paper's central observable — how long the edit–submit–fetch cycle
// and its component legs take.
//
// The paper evaluates shadow editing by per-cycle elapsed time and traffic
// breakdown; internal/metrics carries the aggregate counters, and this
// package adds the distributions: submit→ack, pull→arrival, job
// queue→complete, and full-cycle latency, each with mergeable p50/p90/p99.
//
// Everything is opt-in and nil-safe: a nil *Observer is a valid, disabled
// observer whose methods return immediately, so instrumented hot paths pay
// one pointer test and zero allocations when observability is off. Event
// logging is additionally guarded by LogEnabled so callers never build
// slog attributes for a disabled or filtered level.
package obs

import (
	"context"
	"log/slog"
	"time"

	"shadowedit/internal/trace"
	"shadowedit/internal/wire"
)

// Observer carries an instrumentation configuration: an optional structured
// logger and a monotonic clock, plus the service's latency histograms.
// Construct with New; a nil *Observer disables everything.
type Observer struct {
	logger *slog.Logger
	clock  func() time.Duration
	tracer *trace.Tracer

	// SubmitAck is the server-side latency from receiving a SUBMIT to
	// enqueueing its SUBMIT_OK — the user-visible submission ack time.
	SubmitAck Histogram
	// PullArrival is the server-side latency from issuing a PULL to the
	// requested content arriving (delta applied or full copy stored).
	PullArrival Histogram
	// JobLifetime is the latency from a job becoming runnable (all inputs
	// in hand, queued for a processor) to its completion.
	JobLifetime Histogram
	// Cycle is the full edit–submit–fetch cycle as the client sees it:
	// submit issued to output delivered.
	Cycle Histogram
}

// New returns an Observer. logger may be nil (no event logging; histograms
// still record). clock supplies monotonic time for histogram stamps — pass
// a netsim host's Now for deterministic virtual-time measurements; nil uses
// the wall clock (monotonic since construction).
func New(logger *slog.Logger, clock func() time.Duration) *Observer {
	o := &Observer{logger: logger, clock: clock}
	if o.clock == nil {
		epoch := time.Now()
		o.clock = func() time.Duration { return time.Since(epoch) }
	}
	return o
}

// Now returns the observer's monotonic time, for later use as a histogram
// stamp. On a nil observer it returns 0 without touching any clock.
func (o *Observer) Now() time.Duration {
	if o == nil {
		return 0
	}
	return o.clock()
}

// ObserveSubmitAck records a submit→ack latency begun at start (a stamp
// from Now). No-op on a nil observer.
func (o *Observer) ObserveSubmitAck(start time.Duration) {
	if o == nil {
		return
	}
	o.SubmitAck.Observe(o.clock() - start)
}

// ObservePullArrival records a pull→arrival latency begun at start.
func (o *Observer) ObservePullArrival(start time.Duration) {
	if o == nil {
		return
	}
	o.PullArrival.Observe(o.clock() - start)
}

// ObserveJobLifetime records a queue→complete latency begun at start.
func (o *Observer) ObserveJobLifetime(start time.Duration) {
	if o == nil {
		return
	}
	o.JobLifetime.Observe(o.clock() - start)
}

// ObserveCycle records a full-cycle latency begun at start.
func (o *Observer) ObserveCycle(start time.Duration) {
	if o == nil {
		return
	}
	o.Cycle.Observe(o.clock() - start)
}

// SetTracer attaches a cycle tracer. Call during setup, before the observer
// is shared across goroutines; a nil tracer (the default) disables tracing
// while histograms and logging keep working. Several observers may share
// one tracer — each stamps its spans with its own clock, which is how an
// in-process simulation assembles client and server spans into one
// virtual-time trace.
func (o *Observer) SetTracer(t *trace.Tracer) {
	if o != nil {
		o.tracer = t
	}
}

// Tracer returns the attached tracer (nil when tracing is off or the
// observer is nil).
func (o *Observer) Tracer() *trace.Tracer {
	if o == nil {
		return nil
	}
	return o.tracer
}

// StartTrace mints a new cycle trace, stamping its root span with this
// observer's clock. Returns nil — a valid, inert span — when the observer
// is nil, tracing is off, or the sampling rate skips this cycle.
func (o *Observer) StartTrace(name string) *trace.Span {
	if o == nil || o.tracer == nil {
		return nil
	}
	return o.tracer.StartTrace(name, o.clock)
}

// StartSpan opens a child span under a propagated wire context, stamped
// with this observer's clock. Returns nil when tracing is off or the
// context is invalid (the peer did not trace this cycle).
func (o *Observer) StartSpan(parent wire.TraceContext, name string) *trace.Span {
	if o == nil || o.tracer == nil {
		return nil
	}
	return o.tracer.StartSpan(parent, name, o.clock)
}

// EndTrace marks a propagated trace complete, moving it to the tracer's
// finished ring. Safe to call from both ends of a cycle — completion is
// idempotent — and a no-op for invalid contexts or disabled tracing.
func (o *Observer) EndTrace(tc wire.TraceContext) {
	if o == nil || o.tracer == nil || !tc.Valid() {
		return
	}
	o.tracer.EndTrace(tc.TraceID)
}

// LogEnabled reports whether events at the given level would be emitted.
// Hot paths guard attribute construction with it, so a disabled observer
// (or a filtered level) costs one branch and no allocation.
func (o *Observer) LogEnabled(level slog.Level) bool {
	return o != nil && o.logger != nil && o.logger.Enabled(context.Background(), level)
}

// Log emits one structured event. Callers on hot paths must guard with
// LogEnabled before building attrs.
func (o *Observer) Log(level slog.Level, msg string, attrs ...slog.Attr) {
	if o == nil || o.logger == nil {
		return
	}
	o.logger.LogAttrs(context.Background(), level, msg, attrs...)
}

// Logger returns the underlying structured logger (nil when logging is
// disabled or the observer is nil).
func (o *Observer) Logger() *slog.Logger {
	if o == nil {
		return nil
	}
	return o.logger
}
