package obs

import (
	"math/rand"
	"sort"
	"sync"
	"testing"
	"time"
)

func TestBucketIndexMonotonicAndInBounds(t *testing.T) {
	prev := -1
	for _, v := range []uint64{0, 1, 2, 15, 16, 17, 31, 32, 63, 64, 1 << 20, 1<<20 + 1, 1 << 40, 1<<62 + 12345} {
		idx := bucketIndex(v)
		if idx < 0 || idx >= NumBuckets {
			t.Fatalf("bucketIndex(%d) = %d out of [0,%d)", v, idx, NumBuckets)
		}
		if idx < prev {
			t.Fatalf("bucketIndex not monotone at %d: %d < %d", v, idx, prev)
		}
		prev = idx
	}
}

func TestBucketBoundsContainValue(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 100_000; i++ {
		v := uint64(rng.Int63())
		idx := bucketIndex(v)
		lo, hi := bucketBounds(idx)
		if v < lo || v > hi {
			t.Fatalf("value %d landed in bucket %d = [%d,%d]", v, idx, lo, hi)
		}
	}
}

func TestBucketBoundsPartition(t *testing.T) {
	// Consecutive buckets must tile the value space with no gaps/overlaps.
	for idx := 0; idx < NumBuckets-1; idx++ {
		_, hi := bucketBounds(idx)
		lo, _ := bucketBounds(idx + 1)
		if lo != hi+1 {
			t.Fatalf("gap between bucket %d (hi=%d) and %d (lo=%d)", idx, hi, idx+1, lo)
		}
	}
}

// TestQuantileRelativeError: histogram quantiles stay within the bucketing
// resolution (1/subBuckets plus half a bucket) of the exact order statistic.
func TestQuantileRelativeError(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var h Histogram
	samples := make([]time.Duration, 0, 20_000)
	for i := 0; i < cap(samples); i++ {
		// Log-uniform over 1µs .. ~10s, the range real cycles live in.
		d := time.Duration(float64(time.Microsecond) * float64(uint64(1)<<uint(rng.Intn(24))) * (1 + rng.Float64()))
		samples = append(samples, d)
		h.Observe(d)
	}
	sort.Slice(samples, func(a, b int) bool { return samples[a] < samples[b] })
	snap := h.Snapshot()
	for _, q := range []float64{0.01, 0.10, 0.50, 0.90, 0.99, 1.0} {
		rank := int(q*float64(len(samples))+0.5) - 1
		if rank < 0 {
			rank = 0
		}
		exact := float64(samples[rank])
		got := float64(snap.Quantile(q))
		if got < exact/(1+2.0/subBuckets) || got > exact*(1+2.0/subBuckets) {
			t.Errorf("q=%.2f: histogram %v vs exact %v exceeds resolution", q, time.Duration(got), time.Duration(exact))
		}
	}
}

// TestMergeEquivalence: merging snapshots of two histograms must be
// indistinguishable from one histogram having observed both sample sets.
func TestMergeEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	var a, b, both Histogram
	for i := 0; i < 5000; i++ {
		d := time.Duration(rng.Int63n(int64(10 * time.Second)))
		if i%3 == 0 {
			a.Observe(d)
		} else {
			b.Observe(d)
		}
		both.Observe(d)
	}
	sa, sb, sboth := a.Snapshot(), b.Snapshot(), both.Snapshot()
	sa.Merge(&sb)
	if sa.Count != sboth.Count || sa.Sum != sboth.Sum {
		t.Fatalf("merge count/sum mismatch: %d/%v vs %d/%v", sa.Count, sa.Sum, sboth.Count, sboth.Sum)
	}
	if sa.Counts != sboth.Counts {
		t.Fatal("merged bucket counts differ from combined histogram")
	}
	for _, q := range []float64{0.5, 0.9, 0.99} {
		if sa.Quantile(q) != sboth.Quantile(q) {
			t.Fatalf("q=%v: merged %v vs combined %v", q, sa.Quantile(q), sboth.Quantile(q))
		}
	}
}

func TestQuantileEdgeCases(t *testing.T) {
	var h Histogram
	snap := h.Snapshot()
	if got := snap.Quantile(0.5); got != 0 {
		t.Fatalf("empty histogram quantile = %v, want 0", got)
	}
	if snap.Mean() != 0 || snap.Min() != 0 || snap.Max() != 0 {
		t.Fatal("empty histogram mean/min/max not zero")
	}
	h.Observe(42 * time.Millisecond)
	snap = h.Snapshot()
	for _, q := range []float64{0.0001, 0.5, 1.0} {
		got := snap.Quantile(q)
		lo, hi := bucketBounds(bucketIndex(uint64(42 * time.Millisecond)))
		if got < time.Duration(lo) || got > time.Duration(hi) {
			t.Fatalf("single-sample quantile(%v) = %v outside its bucket [%d,%d]", q, got, lo, hi)
		}
	}
	h.Observe(-time.Second) // clamps to zero
	if snap := h.Snapshot(); snap.Min() != 0 {
		t.Fatalf("negative observation should clamp to 0, min = %v", snap.Min())
	}
}

func TestHistogramConcurrentObserve(t *testing.T) {
	var h Histogram
	const workers, per = 8, 10_000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(time.Duration(w*1000+i) * time.Microsecond)
			}
		}(w)
	}
	wg.Wait()
	snap := h.Snapshot()
	if snap.Count != workers*per {
		t.Fatalf("count = %d, want %d", snap.Count, workers*per)
	}
	var fromBuckets uint64
	for _, c := range snap.Counts {
		fromBuckets += c
	}
	if fromBuckets != snap.Count {
		t.Fatalf("bucket sum %d != count %d", fromBuckets, snap.Count)
	}
}

func TestResetAndMean(t *testing.T) {
	var h Histogram
	h.Observe(10 * time.Millisecond)
	h.Observe(30 * time.Millisecond)
	if snap := h.Snapshot(); snap.Mean() != 20*time.Millisecond {
		t.Fatalf("mean = %v, want 20ms", snap.Mean())
	}
	h.Reset()
	if snap := h.Snapshot(); snap.Count != 0 || snap.Sum != 0 {
		t.Fatalf("after reset: count=%d sum=%v", snap.Count, snap.Sum)
	}
}

func TestPow2BucketsExactAgainstBruteForce(t *testing.T) {
	var h Histogram
	rng := rand.New(rand.NewSource(41))
	var samples []uint64
	for i := 0; i < 5000; i++ {
		// Spread across many octaves, including exact powers of two —
		// the boundary cases the export convention must get right.
		v := uint64(rng.Int63n(1 << uint(10+rng.Intn(30))))
		if i%97 == 0 {
			v = 1 << uint(rng.Intn(40))
		}
		samples = append(samples, v)
		h.Observe(time.Duration(v))
	}
	snap := h.Snapshot()
	buckets := snap.Pow2Buckets(12, 43)
	if len(buckets) != 32 {
		t.Fatalf("len = %d, want 32", len(buckets))
	}
	for i, b := range buckets {
		if want := uint64(1) << uint(12+i); b.Le != want {
			t.Fatalf("bucket %d: Le = %d, want %d", i, b.Le, want)
		}
		var brute uint64
		for _, v := range samples {
			if v < b.Le {
				brute++
			}
		}
		if b.Count != brute {
			t.Fatalf("le=%d: count = %d, brute force = %d", b.Le, b.Count, brute)
		}
	}
	// Cumulative counts are monotone and bounded by the total.
	for i := 1; i < len(buckets); i++ {
		if buckets[i].Count < buckets[i-1].Count {
			t.Fatalf("not monotone at %d", i)
		}
	}
	if last := buckets[len(buckets)-1].Count; last > snap.Count {
		t.Fatalf("last bucket %d exceeds count %d", last, snap.Count)
	}
}

func TestPow2BucketsEdges(t *testing.T) {
	var h Histogram
	h.Observe(0)
	h.Observe(1)
	snap := h.Snapshot()
	if got := snap.Pow2Buckets(5, 4); got != nil {
		t.Fatalf("inverted range = %v, want nil", got)
	}
	full := snap.Pow2Buckets(-10, 99) // clamps to [0, 63]
	if len(full) != 64 {
		t.Fatalf("clamped len = %d, want 64", len(full))
	}
	if full[0].Le != 1 || full[0].Count != 1 {
		t.Fatalf("le=1 bucket = %+v, want count 1 (only the 0 sample)", full[0])
	}
	if full[1].Le != 2 || full[1].Count != 2 {
		t.Fatalf("le=2 bucket = %+v, want count 2", full[1])
	}
	if full[63].Count != 2 {
		t.Fatalf("top bucket count = %d, want 2", full[63].Count)
	}
}
