package obs

import (
	"fmt"
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

// The histogram is log-linear ("HDR-lite"): values are nanosecond durations
// bucketed by their power-of-two octave, with subBuckets linear sub-buckets
// per octave. Relative quantile error is therefore bounded by
// 1/subBuckets (6.25%), while Observe stays a handful of atomic adds — no
// lock, no allocation — so it can sit on the server's per-message paths.
const (
	subBits    = 4
	subBuckets = 1 << subBits // linear sub-buckets per power-of-two octave

	// NumBuckets spans the full non-negative int64 nanosecond range:
	// sub-bucket-exact values below subBuckets ns, then one octave per
	// leading-bit position up to 2^63 ns (~292 years).
	NumBuckets = (64-subBits)*subBuckets + subBuckets
)

// bucketIndex maps a non-negative nanosecond value to its bucket.
func bucketIndex(v uint64) int {
	if v < subBuckets {
		return int(v)
	}
	exp := bits.Len64(v) - 1
	return (exp-subBits+1)*subBuckets + int((v>>(uint(exp)-subBits))&(subBuckets-1))
}

// bucketBounds returns the inclusive [lo, hi] nanosecond range of a bucket.
func bucketBounds(idx int) (lo, hi uint64) {
	if idx < subBuckets {
		return uint64(idx), uint64(idx)
	}
	oct := idx / subBuckets
	sub := uint64(idx % subBuckets)
	exp := uint(oct + subBits - 1)
	width := uint64(1) << (exp - subBits)
	lo = uint64(1)<<exp + sub*width
	return lo, lo + width - 1
}

// BucketBounds exposes a bucket's inclusive nanosecond range (rendering
// layers — the Prometheus endpoint — need the bucket geometry).
func BucketBounds(idx int) (lo, hi uint64) { return bucketBounds(idx) }

// Histogram is a lock-free latency histogram. The zero value is ready to
// use; Observe may be called from any number of goroutines concurrently.
type Histogram struct {
	count  atomic.Uint64
	sum    atomic.Int64
	counts [NumBuckets]atomic.Uint64
}

// Observe records one duration. Negative durations clamp to zero.
func (h *Histogram) Observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	h.counts[bucketIndex(uint64(d))].Add(1)
	h.count.Add(1)
	h.sum.Add(int64(d))
}

// Snapshot copies the current state. Concurrent Observes may or may not be
// included; the copy itself is not a consistent cut (a racing Observe can be
// present in one counter and absent from another by at most one sample),
// which is harmless for monitoring and absent entirely in quiesced readers
// like the benchmark harness.
func (h *Histogram) Snapshot() HistogramSnapshot {
	var s HistogramSnapshot
	s.Count = h.count.Load()
	s.Sum = time.Duration(h.sum.Load())
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	return s
}

// Reset zeroes the histogram.
func (h *Histogram) Reset() {
	h.count.Store(0)
	h.sum.Store(0)
	for i := range h.counts {
		h.counts[i].Store(0)
	}
}

// HistogramSnapshot is an immutable view of a Histogram, mergeable with
// other snapshots (shard-per-goroutine recorders combine into one
// distribution) and queryable for quantiles.
type HistogramSnapshot struct {
	Counts [NumBuckets]uint64
	Count  uint64
	Sum    time.Duration
}

// Merge adds another snapshot's samples into s.
func (s *HistogramSnapshot) Merge(o *HistogramSnapshot) {
	s.Count += o.Count
	s.Sum += o.Sum
	for i := range s.Counts {
		s.Counts[i] += o.Counts[i]
	}
}

// Quantile returns the q-quantile (0 < q <= 1) as the midpoint of the bucket
// holding the sample of that rank — within 1/subBuckets of the exact order
// statistic. Zero samples yield zero.
func (s *HistogramSnapshot) Quantile(q float64) time.Duration {
	if s.Count == 0 {
		return 0
	}
	rank := uint64(math.Ceil(q * float64(s.Count)))
	if rank < 1 {
		rank = 1
	}
	if rank > s.Count {
		rank = s.Count
	}
	var cum uint64
	for i, c := range s.Counts {
		cum += c
		if cum >= rank {
			lo, hi := bucketBounds(i)
			return time.Duration(lo + (hi-lo)/2)
		}
	}
	return 0 // unreachable: cum reaches Count
}

// Pow2Bucket is one cumulative export bucket: Count samples fell strictly
// below Le nanoseconds.
type Pow2Bucket struct {
	// Le is the bucket's upper bound in nanoseconds, always a power of two.
	Le uint64
	// Count is the cumulative number of samples below Le.
	Count uint64
}

// Pow2Buckets returns cumulative counts at the power-of-two bounds
// 2^loExp .. 2^hiExp nanoseconds (inclusive range of exponents, each
// clamped to [0, 63]). Because every power of two is an octave boundary of
// the underlying log-linear histogram, the counts are exact, not
// interpolated — and since the bound set is fixed by (loExp, hiExp) alone,
// exports from different instances carry identical `le` grids and can be
// summed bucket-by-bucket by an external aggregator.
//
// Samples are integer nanoseconds, so "strictly below 2^k ns" equals
// "at most 2^k - 1 ns"; the distinction only matters for a sample landing
// exactly on a bound.
func (s *HistogramSnapshot) Pow2Buckets(loExp, hiExp int) []Pow2Bucket {
	if loExp < 0 {
		loExp = 0
	}
	if hiExp > 63 {
		hiExp = 63
	}
	if hiExp < loExp {
		return nil
	}
	out := make([]Pow2Bucket, 0, hiExp-loExp+1)
	var cum uint64
	next := 0 // first bucket index not yet accumulated
	for k := loExp; k <= hiExp; k++ {
		bound := uint64(1) << uint(k)
		// bucketIndex(bound) is the first bucket holding values >= bound:
		// octave boundaries begin their own bucket.
		edge := bucketIndex(bound)
		for ; next < edge; next++ {
			cum += s.Counts[next]
		}
		out = append(out, Pow2Bucket{Le: bound, Count: cum})
	}
	return out
}

// Mean returns the exact mean of the recorded samples (the sum is tracked
// exactly, not bucketed).
func (s *HistogramSnapshot) Mean() time.Duration {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / time.Duration(s.Count)
}

// Min returns the lower bound of the first occupied bucket (0 when empty).
func (s *HistogramSnapshot) Min() time.Duration {
	for i, c := range s.Counts {
		if c > 0 {
			lo, _ := bucketBounds(i)
			return time.Duration(lo)
		}
	}
	return 0
}

// Max returns the upper bound of the last occupied bucket (0 when empty).
func (s *HistogramSnapshot) Max() time.Duration {
	for i := NumBuckets - 1; i >= 0; i-- {
		if s.Counts[i] > 0 {
			_, hi := bucketBounds(i)
			return time.Duration(hi)
		}
	}
	return 0
}

// String renders the count and the classic percentile trio.
func (s *HistogramSnapshot) String() string {
	return fmt.Sprintf("n=%d p50=%v p90=%v p99=%v",
		s.Count, s.Quantile(0.50), s.Quantile(0.90), s.Quantile(0.99))
}
