package workload

import (
	"bytes"
	"fmt"
	"testing"

	"shadowedit/internal/diff"
	"shadowedit/internal/jobs"
)

func TestFileExactSize(t *testing.T) {
	g := NewGenerator(1)
	for _, size := range []int{1, 10, 100, 1024, 10 * 1024, 100 * 1024} {
		t.Run(fmt.Sprint(size), func(t *testing.T) {
			f := g.File(size)
			if len(f) != size {
				t.Fatalf("File(%d) returned %d bytes", size, len(f))
			}
			if f[len(f)-1] != '\n' {
				t.Error("file not newline-terminated")
			}
		})
	}
}

func TestFileDeterministicBySeed(t *testing.T) {
	a := NewGenerator(42).File(4096)
	b := NewGenerator(42).File(4096)
	if !bytes.Equal(a, b) {
		t.Fatal("same seed produced different files")
	}
	c := NewGenerator(43).File(4096)
	if bytes.Equal(a, c) {
		t.Fatal("different seeds produced identical files")
	}
}

func TestFileLooksLikeText(t *testing.T) {
	f := NewGenerator(7).File(8192)
	lines := bytes.Split(bytes.TrimSuffix(f, []byte("\n")), []byte("\n"))
	if len(lines) < 50 {
		t.Fatalf("only %d lines in 8K file", len(lines))
	}
	for i, l := range lines {
		if len(l) > 120 {
			t.Fatalf("line %d too long: %d bytes", i, len(l))
		}
	}
}

func TestModifyTouchesRoughlyPercent(t *testing.T) {
	g := NewGenerator(11)
	base := g.File(100 * 1024)
	for _, p := range []float64{1, 5, 10, 20, 40, 80} {
		t.Run(fmt.Sprintf("%g%%", p), func(t *testing.T) {
			mod := g.Modify(base, p, EditMixed)
			frac := ModifiedFraction(base, mod) * 100
			// The target is approximate; allow generous bounds but
			// require the right order of magnitude.
			if frac < p/3 || frac > p*3+2 {
				t.Fatalf("asked for %g%%, measured %.2f%%", p, frac)
			}
		})
	}
}

func TestModifyPreservesOriginal(t *testing.T) {
	g := NewGenerator(3)
	base := g.File(4096)
	orig := append([]byte(nil), base...)
	_ = g.Modify(base, 50, EditMixed)
	if !bytes.Equal(base, orig) {
		t.Fatal("Modify mutated its input")
	}
}

func TestModifyZeroPercentIsCopy(t *testing.T) {
	g := NewGenerator(4)
	base := g.File(1024)
	mod := g.Modify(base, 0, EditMixed)
	if !bytes.Equal(mod, base) {
		t.Fatal("Modify(0%) changed content")
	}
	mod[0] = 'X'
	if base[0] == 'X' {
		t.Fatal("Modify(0%) aliases its input")
	}
}

func TestModifyKinds(t *testing.T) {
	g := NewGenerator(5)
	base := g.File(16 * 1024)
	baseLines := bytes.Count(base, []byte("\n"))

	ins := g.Modify(base, 10, EditInsert)
	if bytes.Count(ins, []byte("\n")) <= baseLines {
		t.Error("EditInsert did not add lines")
	}
	del := g.Modify(base, 10, EditDelete)
	if bytes.Count(del, []byte("\n")) >= baseLines {
		t.Error("EditDelete did not remove lines")
	}
	rep := g.Modify(base, 10, EditReplace)
	if bytes.Count(rep, []byte("\n")) != baseLines {
		t.Error("EditReplace changed the line count")
	}
	if len(rep) == len(base) && bytes.Equal(rep, base) {
		t.Error("EditReplace changed nothing")
	}
}

func TestModifyDeltaScalesWithPercent(t *testing.T) {
	// The premise behind Figure 1: delta size grows with % modified and
	// stays far below file size for small percentages.
	g := NewGenerator(6)
	base := g.File(50 * 1024)
	var prev int
	for _, p := range []float64{1, 10, 40} {
		mod := g.Modify(base, p, EditMixed)
		d, err := diff.Compute(diff.HuntMcIlroy, base, mod)
		if err != nil {
			t.Fatal(err)
		}
		ws := d.WireSize()
		if ws <= prev {
			t.Errorf("delta size did not grow: %d bytes at %g%% (prev %d)", ws, p, prev)
		}
		prev = ws
	}
	mod := g.Modify(base, 1, EditMixed)
	d, err := diff.Compute(diff.HuntMcIlroy, base, mod)
	if err != nil {
		t.Fatal(err)
	}
	if d.WireSize() > len(base)/10 {
		t.Errorf("1%% delta is %d bytes of a %d byte file", d.WireSize(), len(base))
	}
}

func TestModifiedFractionBounds(t *testing.T) {
	g := NewGenerator(8)
	base := g.File(2048)
	if f := ModifiedFraction(base, base); f != 0 {
		t.Errorf("ModifiedFraction(x, x) = %v, want 0", f)
	}
	other := NewGenerator(9).File(2048)
	if f := ModifiedFraction(base, other); f < 0.5 {
		t.Errorf("ModifiedFraction of unrelated files = %v, want high", f)
	}
	if f := ModifiedFraction(base, nil); f != 0 {
		t.Errorf("ModifiedFraction(x, empty) = %v, want 0", f)
	}
}

func TestJobScript(t *testing.T) {
	s := JobScript("a.dat", "b.dat")
	want := "wc a.dat\nwc b.dat\nchecksum a.dat\n"
	if string(s) != want {
		t.Fatalf("JobScript = %q, want %q", s, want)
	}
	if len(JobScript()) != 0 {
		t.Fatal("JobScript() with no files should be empty")
	}
}

func TestPaperParameterSpace(t *testing.T) {
	if len(FigureSizes) != 3 || FigureSizes[2] != 500*1024 {
		t.Error("FigureSizes does not match the paper")
	}
	if len(TableSizes) != 4 || TableSizes[0] != 10*1024 {
		t.Error("TableSizes does not match the paper")
	}
	if TablePercents[0] != 1 || TablePercents[len(TablePercents)-1] != 20 {
		t.Error("TablePercents does not match the paper")
	}
}

func TestTableShape(t *testing.T) {
	g := NewGenerator(12)
	table := g.Table(50, 3)
	lines := bytes.Split(bytes.TrimSuffix(table, []byte("\n")), []byte("\n"))
	if len(lines) != 50 {
		t.Fatalf("rows = %d, want 50", len(lines))
	}
	for i, l := range lines {
		fields := bytes.Fields(l)
		if len(fields) != 4 { // label + 3 columns
			t.Fatalf("row %d has %d fields: %q", i, len(fields), l)
		}
	}
	// Deterministic per seed.
	if !bytes.Equal(NewGenerator(12).Table(50, 3), table) {
		t.Fatal("Table not deterministic")
	}
}

func TestTableFeedsStatsCommands(t *testing.T) {
	g := NewGenerator(13)
	table := g.Table(20, 2)
	res := jobsExecute(t, "stats t.dat\ncolsum 2 t.dat\n", map[string][]byte{"t.dat": table})
	if res.ExitCode != 0 {
		t.Fatalf("stats over table failed: %s", res.Stderr)
	}
	if !bytes.Contains(res.Stdout, []byte("n=40")) { // 20 rows x 2 numeric cols
		t.Fatalf("stats output: %s", res.Stdout)
	}
}

// jobsExecute runs a script through the batch executor.
func jobsExecute(t *testing.T, script string, inputs map[string][]byte) jobs.Result {
	t.Helper()
	return jobs.Execute(jobs.Request{Script: []byte(script), Inputs: inputs})
}

func TestSharedVariantRedundancy(t *testing.T) {
	common := NewGenerator(20).File(64 * 1024)
	a := NewGenerator(21).SharedVariant(common, 0.9)
	b := NewGenerator(22).SharedVariant(common, 0.9)

	// Size stays in the common content's ballpark.
	for _, v := range [][]byte{a, b} {
		if len(v) < len(common)*8/10 || len(v) > len(common)*12/10 {
			t.Fatalf("variant size %d drifted from %d", len(v), len(common))
		}
	}
	// Roughly redundancy of each variant's bytes are common lines; the two
	// variants share those lines with each other too.
	if f := ModifiedFraction(common, a); f < 0.02 || f > 0.3 {
		t.Fatalf("variant differs from common by %.2f, want ~0.1", f)
	}
	if f := ModifiedFraction(a, b); f > 0.3 {
		t.Fatalf("two variants differ by %.2f, want ~0.2 at most", f)
	}
	// Full redundancy is a byte-for-byte copy; zero shares nothing but
	// structure.
	if !bytes.Equal(NewGenerator(23).SharedVariant(common, 1), common) {
		t.Fatal("redundancy 1 must reproduce the common content")
	}
	if f := ModifiedFraction(common, NewGenerator(24).SharedVariant(common, 0)); f < 0.9 {
		t.Fatalf("redundancy 0 still shares %.2f", 1-f)
	}
	// Deterministic per seed.
	if !bytes.Equal(NewGenerator(21).SharedVariant(common, 0.9), a) {
		t.Fatal("SharedVariant not deterministic")
	}
}
