// Package workload generates the synthetic editing workloads used by the
// experiments. The paper evaluates with "files of different sizes (ranging
// from 10K to 500K bytes)" where "the amount of text modified varied from 1%
// of the text to 80% of the text" between submissions. This package produces
// deterministic, seedable files of an exact byte size and applies edits that
// touch a requested percentage of the bytes, mimicking a scientist revising
// program and data files between runs.
package workload

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
)

// Paper parameter space: file sizes and modification percentages used in
// Figures 1–3.
var (
	// FigureSizes are the file sizes plotted in Figures 1 and 2.
	FigureSizes = []int{100 * 1024, 200 * 1024, 500 * 1024}
	// TableSizes are the file sizes tabulated in Figure 3.
	TableSizes = []int{10 * 1024, 50 * 1024, 100 * 1024, 500 * 1024}
	// SweepPercents are the modification percentages swept in Figures 1–2.
	SweepPercents = []float64{1, 5, 10, 20, 40, 60, 80}
	// TablePercents are the modification percentages of Figure 3.
	TablePercents = []float64{1, 5, 10, 20}
)

// Generator produces deterministic synthetic files and edits.
type Generator struct {
	rng *rand.Rand
	// arena backs the lines a single Modify builds; join copies them into
	// the returned file, so the arena is recycled wholesale on the next
	// Modify instead of allocating per edited line.
	arena []byte
}

// NewGenerator returns a generator seeded for reproducible output.
func NewGenerator(seed int64) *Generator {
	return &Generator{rng: rand.New(rand.NewSource(seed))}
}

// words is the vocabulary for synthetic "scientific" text: plausible tokens
// from a numerical program and its data.
var words = []string{
	"velocity", "pressure", "gradient", "tensor", "iterate", "converge",
	"matrix", "eigenvalue", "boundary", "mesh", "node", "flux", "solver",
	"residual", "epsilon", "delta", "alpha", "beta", "gamma", "lambda",
	"0.001", "1.5e-6", "42", "3.14159", "grid(i,j)", "call", "subroutine",
	"do", "continue", "end", "real*8", "integer", "dimension", "common",
}

// File generates a text file of exactly size bytes made of newline-terminated
// lines of space-separated tokens (roughly 40–70 bytes per line, like source
// code or columned data).
func (g *Generator) File(size int) []byte {
	var buf bytes.Buffer
	buf.Grow(size + 80)
	ln := 0
	for buf.Len() < size {
		ln++
		fmt.Fprintf(&buf, "%05d", ln)
		target := 40 + g.rng.Intn(31)
		for {
			w := words[g.rng.Intn(len(words))]
			if buf.Len()+len(w)+2 >= size {
				break
			}
			lineLen := buf.Len() - lineStart(&buf)
			if lineLen+len(w)+1 > target {
				break
			}
			buf.WriteByte(' ')
			buf.WriteString(w)
		}
		buf.WriteByte('\n')
	}
	out := buf.Bytes()
	if len(out) > size {
		out = out[:size]
		// Keep the invariant that the file is newline-terminated so
		// line-oriented edits behave uniformly.
		out[size-1] = '\n'
	}
	return out
}

func lineStart(buf *bytes.Buffer) int {
	b := buf.Bytes()
	i := bytes.LastIndexByte(b, '\n')
	return i + 1
}

// Table generates a columned numeric data file of the given shape: rows
// lines, each with a row label and cols floating-point values. The shape
// suits the jobs package's stats/colsum commands and mimics instrument or
// simulation output.
func (g *Generator) Table(rows, cols int) []byte {
	var buf bytes.Buffer
	for r := 0; r < rows; r++ {
		fmt.Fprintf(&buf, "r%05d", r)
		for c := 0; c < cols; c++ {
			fmt.Fprintf(&buf, " %9.4f", g.rng.Float64()*1000)
		}
		buf.WriteByte('\n')
	}
	return buf.Bytes()
}

// EditKind selects the mix of edit operations Modify applies.
type EditKind int

// Edit mixes.
const (
	// EditReplace rewrites lines in place (same line count).
	EditReplace EditKind = iota + 1
	// EditMixed applies a mix of replacements, insertions and deletions,
	// the realistic case for an editing session.
	EditMixed
	// EditInsert only inserts new lines.
	EditInsert
	// EditDelete only deletes lines.
	EditDelete
)

// Modify returns an edited copy of content in which approximately percent% of
// the bytes are affected, emulating one editing session. Edits cluster into
// contiguous runs (as human edits do) spread across the file. The original is
// not modified.
func (g *Generator) Modify(content []byte, percent float64, kind EditKind) []byte {
	g.arena = g.arena[:0]
	lines := splitLines(content)
	if len(lines) == 0 || percent <= 0 {
		return append([]byte(nil), content...)
	}
	budget := int(float64(len(content)) * percent / 100)
	if budget <= 0 {
		budget = 1
	}

	out := make([][]byte, len(lines))
	copy(out, lines)
	spent := 0
	guard := 0
	for spent < budget && guard < 10*len(lines)+100 {
		guard++
		// Pick a cluster of 1–8 lines at a random position.
		runLen := 1 + g.rng.Intn(8)
		if runLen > len(out) {
			runLen = len(out)
		}
		pos := 0
		if len(out) > runLen {
			pos = g.rng.Intn(len(out) - runLen)
		}
		op := kind
		if kind == EditMixed {
			switch g.rng.Intn(10) {
			case 0:
				op = EditDelete
			case 1, 2:
				op = EditInsert
			default:
				op = EditReplace
			}
		}
		switch op {
		case EditReplace:
			for i := pos; i < pos+runLen; i++ {
				nl := g.editedLine(out[i])
				spent += len(nl)
				out[i] = nl
			}
		case EditInsert:
			ins := make([][]byte, runLen)
			for i := range ins {
				ins[i] = g.freshLine()
				spent += len(ins[i])
			}
			out = append(out[:pos], append(ins, out[pos:]...)...)
		case EditDelete:
			if len(out) <= runLen {
				continue
			}
			for i := pos; i < pos+runLen; i++ {
				spent += len(out[i])
			}
			out = append(out[:pos], out[pos+runLen:]...)
		}
	}
	return join(out)
}

// editedLine returns a changed version of a line, preserving its rough shape.
// The tag is formatted by hand — byte-identical to the former
// fmt.Sprintf("~v%04d", n) but without its allocations, and drawing the RNG
// exactly once keeps every seeded workload's output unchanged.
func (g *Generator) editedLine(line []byte) []byte {
	nl := g.carve(len(line))
	copy(nl, line)
	// Tweak a token region deterministically per call.
	var tag [6]byte
	tag[0], tag[1] = '~', 'v'
	putDigits4(tag[2:], g.rng.Intn(10000))
	if len(nl) > len(tag)+1 {
		copy(nl[len(nl)-1-len(tag):len(nl)-1], tag[:])
	} else {
		nl = append(tag[:], '\n')
	}
	return nl
}

// carve returns an n-byte slice out of the Modify arena, growing it in
// chunks; carved lines stay valid until the next Modify call resets it.
func (g *Generator) carve(n int) []byte {
	if cap(g.arena)-len(g.arena) < n {
		size := 64 << 10
		if n > size {
			size = n
		}
		g.arena = make([]byte, 0, size)
	}
	off := len(g.arena)
	g.arena = g.arena[:off+n]
	return g.arena[off : off+n : off+n]
}

// freshLine returns a brand-new line. Formatting is by hand but draws the
// RNG in the same order as the former fmt-based version, so seeded output is
// byte-identical; the line is built in a single pre-sized allocation.
func (g *Generator) freshLine() []byte {
	// Worst case: "+new" + 4 digits + 7 tokens of <= 10 bytes each plus a
	// space, and the newline — comfortably under 96 bytes, so the build
	// buffer stays on the stack and the line lands in the arena.
	var sbuf [96]byte
	line := append(sbuf[:0], "+new"...)
	var d [4]byte
	putDigits4(d[:], g.rng.Intn(10000))
	line = append(line, d[:]...)
	for i, n := 0, 3+g.rng.Intn(5); i < n; i++ {
		line = append(line, ' ')
		line = append(line, words[g.rng.Intn(len(words))]...)
	}
	line = append(line, '\n')
	out := g.carve(len(line))
	copy(out, line)
	return out
}

// putDigits4 writes v (0..9999) as four zero-padded decimal digits.
func putDigits4(dst []byte, v int) {
	dst[0] = byte('0' + v/1000%10)
	dst[1] = byte('0' + v/100%10)
	dst[2] = byte('0' + v/10%10)
	dst[3] = byte('0' + v%10)
}

// SharedVariant returns one user's copy of common content: the file is cut
// into line-aligned blocks of roughly blockLen bytes, and each block is kept
// verbatim with probability redundancy or replaced by freshly generated lines
// of similar length otherwise. Variants produced by different generators from
// the same common content therefore share ~redundancy of their bytes block
// for block — the cross-user redundancy profile of a community editing the
// same source tree, which is what sub-file deduplication exploits. Replaced
// blocks keep their byte budget within a line, so variants stay close to
// common's size.
func (g *Generator) SharedVariant(common []byte, redundancy float64) []byte {
	const blockLen = 2048
	lines := splitLines(common)
	out := make([]byte, 0, len(common)+256)
	i := 0
	for i < len(lines) {
		// Gather one block of whole lines.
		blockStart := i
		blockBytes := 0
		for i < len(lines) && blockBytes < blockLen {
			blockBytes += len(lines[i])
			i++
		}
		if g.rng.Float64() < redundancy {
			for _, l := range lines[blockStart:i] {
				out = append(out, l...)
			}
			continue
		}
		// Private block: fresh lines totalling about the same bytes, so the
		// variant's size tracks the common content's.
		g.arena = g.arena[:0]
		for spent := 0; spent < blockBytes; {
			l := g.freshLine()
			spent += len(l)
			out = append(out, l...)
		}
	}
	return out
}

// ModifiedFraction reports the fraction of bytes of b that are not part of a
// longest common subsequence with a — a measure of how much Modify actually
// changed. It is O(lines²) and intended for tests, not production.
func ModifiedFraction(a, b []byte) float64 {
	if len(b) == 0 {
		return 0
	}
	la, lb := splitLines(a), splitLines(b)
	common := make(map[string]int, len(la))
	for _, l := range la {
		common[string(l)]++
	}
	matched := 0
	for _, l := range lb {
		if common[string(l)] > 0 {
			common[string(l)]--
			matched += len(l)
		}
	}
	return 1 - float64(matched)/float64(len(b))
}

func splitLines(content []byte) [][]byte {
	if len(content) == 0 {
		return nil
	}
	// Count lines first so one allocation fits.
	n := bytes.Count(content, []byte{'\n'})
	if content[len(content)-1] != '\n' {
		n++
	}
	lines := make([][]byte, 0, n)
	for len(content) > 0 {
		i := bytes.IndexByte(content, '\n')
		if i < 0 {
			lines = append(lines, content)
			break
		}
		lines = append(lines, content[:i+1])
		content = content[i+1:]
	}
	return lines
}

func join(lines [][]byte) []byte {
	total := 0
	for _, l := range lines {
		total += len(l)
	}
	out := make([]byte, 0, total)
	for _, l := range lines {
		out = append(out, l...)
	}
	return out
}

// MonorepoFile is one file of a generated source tree: its slash path
// relative to the tree root, and its content.
type MonorepoFile struct {
	Path    string
	Content []byte
}

// Monorepo generates a source tree of n files of the given size, laid out as
// nested packages ("src/pkg042/f03.f") of about twenty files each — the
// shape of a large shared codebase whose sparse edits directory
// reconciliation is built for. Output is deterministic per generator seed.
// The method draws the RNG only through File, so it can be added to a seeded
// workload without perturbing other draws only if called in a fixed order,
// like every other generator method.
func (g *Generator) Monorepo(n, fileSize int) []MonorepoFile {
	const perPkg = 20
	files := make([]MonorepoFile, n)
	for i := range files {
		files[i] = MonorepoFile{
			Path:    fmt.Sprintf("src/pkg%03d/f%02d.f", i/perPkg, i%perPkg),
			Content: g.File(fileSize),
		}
	}
	return files
}

// SparseEdit picks k distinct file indices out of n and returns them sorted —
// the files one editing session touches in a monorepo. Deterministic per
// generator state.
func (g *Generator) SparseEdit(n, k int) []int {
	if k > n {
		k = n
	}
	picked := make(map[int]bool, k)
	out := make([]int, 0, k)
	for len(out) < k {
		i := g.rng.Intn(n)
		if !picked[i] {
			picked[i] = true
			out = append(out, i)
		}
	}
	sort.Ints(out)
	return out
}

// JobScript returns a small job command file exercising the executor over the
// named data files — the "set of commands" a paper user submits with a job.
func JobScript(files ...string) []byte {
	var buf bytes.Buffer
	for _, f := range files {
		fmt.Fprintf(&buf, "wc %s\n", f)
	}
	if len(files) > 0 {
		fmt.Fprintf(&buf, "checksum %s\n", files[0])
	}
	return buf.Bytes()
}
