package naming

import (
	"errors"
	"testing"

	"shadowedit/internal/wire"
)

func tildeRig() (*Universe, *TildeSpace) {
	u := NewUniverse("dom")
	u.AddHost("alpha")
	u.AddHost("beta")
	u.DefineTree("cs.proj.solver", "alpha", "/export/solver")
	ts := u.NewTildeSpace()
	ts.Bind("~solver", "cs.proj.solver")
	return u, ts
}

func TestTildeResolve(t *testing.T) {
	_, ts := tildeRig()
	n, err := ts.Resolve("~solver/src/main.f")
	if err != nil {
		t.Fatal(err)
	}
	want := Name{Host: "alpha", Path: "/export/solver/src/main.f"}
	if n != want {
		t.Fatalf("Resolve = %v, want %v", n, want)
	}
}

func TestTildeResolveTreeRootItself(t *testing.T) {
	_, ts := tildeRig()
	n, err := ts.Resolve("~solver")
	if err != nil {
		t.Fatal(err)
	}
	if n.Path != "/export/solver" {
		t.Fatalf("Resolve(~solver) = %v", n)
	}
}

func TestTildeFileRefIndependentOfLocation(t *testing.T) {
	u, ts := tildeRig()
	ref1, err := ts.FileRef("~solver/src/main.f")
	if err != nil {
		t.Fatal(err)
	}
	want := wire.FileRef{Domain: "dom", FileID: "~cs.proj.solver:/src/main.f"}
	if ref1 != want {
		t.Fatalf("FileRef = %v, want %v", ref1, want)
	}
	// Migrate the tree to another machine: "the files may migrate from a
	// machine to another without altering the user's view."
	u.DefineTree("cs.proj.solver", "beta", "/disk2/solver")
	ref2, err := ts.FileRef("~solver/src/main.f")
	if err != nil {
		t.Fatal(err)
	}
	if ref2 != ref1 {
		t.Fatalf("FileRef changed across migration: %v -> %v", ref1, ref2)
	}
	// Resolution, however, now lands on the new host.
	n, err := ts.Resolve("~solver/src/main.f")
	if err != nil {
		t.Fatal(err)
	}
	if n.Host != "beta" || n.Path != "/disk2/solver/src/main.f" {
		t.Fatalf("post-migration Resolve = %v", n)
	}
}

func TestTildeDifferentUsersSameFile(t *testing.T) {
	// "Different users may refer to the same file by different tilde
	// names" — both must produce the same FileRef.
	u, ts1 := tildeRig()
	ts2 := u.NewTildeSpace()
	ts2.Bind("~work", "cs.proj.solver")
	r1, err := ts1.FileRef("~solver/a.f")
	if err != nil {
		t.Fatal(err)
	}
	r2, err := ts2.FileRef("~work/a.f")
	if err != nil {
		t.Fatal(err)
	}
	if r1 != r2 {
		t.Fatalf("same file, different refs: %v vs %v", r1, r2)
	}
}

func TestTildeReadWrite(t *testing.T) {
	u, ts := tildeRig()
	if err := ts.WriteFile("~solver/data.in", []byte("42\n")); err != nil {
		t.Fatal(err)
	}
	// Visible through the ordinary name space too.
	got, err := u.ReadFile("alpha", "/export/solver/data.in")
	if err != nil || string(got) != "42\n" {
		t.Fatalf("cross-view read = %q, %v", got, err)
	}
	back, err := ts.ReadFile("~solver/data.in")
	if err != nil || string(back) != "42\n" {
		t.Fatalf("tilde read = %q, %v", back, err)
	}
}

func TestTildeMigrationMovesView(t *testing.T) {
	u, ts := tildeRig()
	if err := ts.WriteFile("~solver/f", []byte("on alpha\n")); err != nil {
		t.Fatal(err)
	}
	// Simulate migration: admin copies the content and re-defines the
	// tree (the registry models only names, not data movement).
	if err := u.WriteFile("beta", "/disk2/solver/f", []byte("on beta\n")); err != nil {
		t.Fatal(err)
	}
	u.DefineTree("cs.proj.solver", "beta", "/disk2/solver")
	got, err := ts.ReadFile("~solver/f")
	if err != nil || string(got) != "on beta\n" {
		t.Fatalf("post-migration read = %q, %v", got, err)
	}
}

func TestTildeErrors(t *testing.T) {
	u, ts := tildeRig()
	if _, err := ts.Resolve("/not/tilde"); err == nil {
		t.Error("non-tilde name accepted")
	}
	if _, err := ts.Resolve("~unbound/x"); !errors.Is(err, ErrUnknownTree) {
		t.Errorf("unbound tilde err = %v", err)
	}
	ts.Bind("~ghost", "tree.that.is.not.defined")
	if _, err := ts.Resolve("~ghost/x"); !errors.Is(err, ErrUnknownTree) {
		t.Errorf("undefined tree err = %v", err)
	}
	if _, err := ts.FileRef("~ghost/x"); !errors.Is(err, ErrUnknownTree) {
		t.Errorf("undefined tree FileRef err = %v", err)
	}
	_ = u
}

func TestTildePathCleaning(t *testing.T) {
	_, ts := tildeRig()
	a, err := ts.FileRef("~solver/src/../src/./main.f")
	if err != nil {
		t.Fatal(err)
	}
	b, err := ts.FileRef("~solver/src/main.f")
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("uncleaned path produced different ref: %v vs %v", a, b)
	}
}

func TestTildeMountUnderTree(t *testing.T) {
	// The tree root can itself sit on a mounted file system; ordinary
	// resolution continues below the root.
	u, ts := tildeRig()
	alpha, _ := u.Host("alpha")
	alpha.Mount("/export/solver/shared", "beta", "/real/shared")
	n, err := ts.Resolve("~solver/shared/lib.f")
	if err != nil {
		t.Fatal(err)
	}
	if n.Host != "beta" || n.Path != "/real/shared/lib.f" {
		t.Fatalf("Resolve through mount = %v", n)
	}
}

func TestTreeRoot(t *testing.T) {
	u, _ := tildeRig()
	root, ok := u.TreeRoot("cs.proj.solver")
	if !ok || root.Host != "alpha" {
		t.Fatalf("TreeRoot = %v, %v", root, ok)
	}
	if _, ok := u.TreeRoot("nope"); ok {
		t.Fatal("TreeRoot found undefined tree")
	}
}

func TestIsTilde(t *testing.T) {
	if !IsTilde("~x/y") || IsTilde("/x/y") || IsTilde("") {
		t.Fatal("IsTilde misclassifies")
	}
}
