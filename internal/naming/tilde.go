package naming

import (
	"fmt"
	"path"
	"strings"
	"sync"

	"shadowedit/internal/wire"
)

// Tilde naming, after Comer & Murtagh's Tilde file system, which §5.3
// discusses as an alternative name space: "Tilde scheme organizes the
// directory system into a set of logically independent directory trees
// called tilde trees. Files within a tree are accessed using the tree's
// tilde name and a pathname within that tree. ... The actual location of
// the files is of no consequence to the user and the files may migrate from
// a machine to another without altering the user's view."
//
// Here a tilde tree has a globally unique absolute name and a current root
// location (host, path) that may change (migration). Each user holds a
// TildeSpace binding personal tilde names to absolute tree names. A file
// named "~src/solver/main.f" resolves through the user's binding and the
// tree's current root; its protocol file id is derived from the *absolute
// tree name*, not the current host — so a migrated tree keeps its shadow
// cache entries valid.

// ErrUnknownTree reports an unbound tilde name or unregistered tree.
var ErrUnknownTree = fmt.Errorf("naming: unknown tilde tree")

// treeRegistry is the universe-wide table of tilde trees.
type treeRegistry struct {
	mu    sync.RWMutex
	roots map[string]Name // absolute tree name -> current root
}

// DefineTree registers (or migrates) the tilde tree with the given absolute
// name so that it currently lives at (host, rootPath). Re-defining an
// existing tree moves it: names keep resolving, now to the new location.
func (u *Universe) DefineTree(absName, host, rootPath string) {
	u.trees().define(absName, Name{Host: host, Path: path.Clean(rootPath)})
}

// TreeRoot returns the current root of a tilde tree.
func (u *Universe) TreeRoot(absName string) (Name, bool) {
	return u.trees().root(absName)
}

func (u *Universe) trees() *treeRegistry {
	u.mu.Lock()
	defer u.mu.Unlock()
	if u.tildeTrees == nil {
		u.tildeTrees = &treeRegistry{roots: make(map[string]Name)}
	}
	return u.tildeTrees
}

func (r *treeRegistry) define(absName string, root Name) {
	r.mu.Lock()
	r.roots[absName] = root
	r.mu.Unlock()
}

func (r *treeRegistry) root(absName string) (Name, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	n, ok := r.roots[absName]
	return n, ok
}

// TildeSpace is one user's view of the tilde name space: "Each user
// specifies his own tilde trees that reflects his personal view of the
// hierarchy in the file system."
type TildeSpace struct {
	universe *Universe

	mu    sync.RWMutex
	binds map[string]string // tilde name -> absolute tree name
}

// NewTildeSpace creates an empty per-user binding table.
func (u *Universe) NewTildeSpace() *TildeSpace {
	return &TildeSpace{universe: u, binds: make(map[string]string)}
}

// Bind maps a personal tilde name to an absolute tree name. "Different
// users may refer to the same file by different tilde names."
func (ts *TildeSpace) Bind(tildeName, absTreeName string) {
	ts.mu.Lock()
	ts.binds[strings.TrimPrefix(tildeName, "~")] = absTreeName
	ts.mu.Unlock()
}

// IsTilde reports whether a file name is in tilde form ("~tree/path").
func IsTilde(name string) bool { return strings.HasPrefix(name, "~") }

// split separates "~tree/with/path" into the tree's absolute name and the
// cleaned path within the tree.
func (ts *TildeSpace) split(name string) (absTree, sub string, err error) {
	if !IsTilde(name) {
		return "", "", fmt.Errorf("naming: %q is not a tilde name", name)
	}
	body := strings.TrimPrefix(name, "~")
	tilde, rest, _ := strings.Cut(body, "/")
	ts.mu.RLock()
	absTree, ok := ts.binds[tilde]
	ts.mu.RUnlock()
	if !ok {
		return "", "", fmt.Errorf("%w: %q not bound", ErrUnknownTree, tilde)
	}
	sub = path.Clean("/" + rest)
	return absTree, sub, nil
}

// Resolve maps a tilde name to its current canonical (host, path) location,
// following the tree's root and then the ordinary resolution algorithm
// (symlinks, mounts, aliases under the root still apply).
func (ts *TildeSpace) Resolve(name string) (Name, error) {
	absTree, sub, err := ts.split(name)
	if err != nil {
		return Name{}, err
	}
	root, ok := ts.universe.trees().root(absTree)
	if !ok {
		return Name{}, fmt.Errorf("%w: tree %q not defined", ErrUnknownTree, absTree)
	}
	return ts.universe.Resolve(root.Host, path.Join(root.Path, sub))
}

// FileRef maps a tilde name to its protocol (domain id, file id) pair. The
// file id is built from the tree's absolute name and the path within the
// tree — NOT the current host — so it survives tree migration: the shadow
// server keeps recognizing the file after the tree moves, and cached
// versions stay usable for delta transfer.
func (ts *TildeSpace) FileRef(name string) (wire.FileRef, error) {
	absTree, sub, err := ts.split(name)
	if err != nil {
		return wire.FileRef{}, err
	}
	if _, ok := ts.universe.trees().root(absTree); !ok {
		return wire.FileRef{}, fmt.Errorf("%w: tree %q not defined", ErrUnknownTree, absTree)
	}
	return wire.FileRef{
		Domain: ts.universe.domain,
		FileID: "~" + absTree + ":" + sub,
	}, nil
}

// ReadFileRef reads the current content of a file given its protocol
// reference — the inverse of FileRef/Universe.FileRef. It understands both
// ordinary ("host:/path") and tilde ("~tree:/path") file ids; the client
// uses it to answer server pulls for files its version store no longer (or
// never) retained, for example after a restart.
func (u *Universe) ReadFileRef(ref wire.FileRef) ([]byte, error) {
	if ref.Domain != u.domain {
		return nil, fmt.Errorf("naming: ref %s belongs to domain %q, not %q", ref, ref.Domain, u.domain)
	}
	if strings.HasPrefix(ref.FileID, "~") {
		absTree, sub, ok := strings.Cut(strings.TrimPrefix(ref.FileID, "~"), ":")
		if !ok {
			return nil, fmt.Errorf("naming: malformed tilde file id %q", ref.FileID)
		}
		root, found := u.trees().root(absTree)
		if !found {
			return nil, fmt.Errorf("%w: %q", ErrUnknownTree, absTree)
		}
		return u.ReadFile(root.Host, path.Join(root.Path, sub))
	}
	host, p, ok := strings.Cut(ref.FileID, ":")
	if !ok {
		return nil, fmt.Errorf("naming: malformed file id %q", ref.FileID)
	}
	return u.ReadFile(host, p)
}

// ReadFile reads a file by tilde name.
func (ts *TildeSpace) ReadFile(name string) ([]byte, error) {
	n, err := ts.Resolve(name)
	if err != nil {
		return nil, err
	}
	return ts.universe.ReadFile(n.Host, n.Path)
}

// WriteFile writes a file by tilde name.
func (ts *TildeSpace) WriteFile(name string, content []byte) error {
	n, err := ts.Resolve(name)
	if err != nil {
		return err
	}
	return ts.universe.WriteFile(n.Host, n.Path, content)
}
