// Package naming implements the paper's name resolution design (§5.3, §6.5).
//
// A supercomputer serves clients from heterogeneous environments, so a file
// name typed at a user site must be reduced to a globally unique name before
// it reaches the server — otherwise the same file submitted under two names
// (aliases, symlinks, or NFS mounts seen from different hosts) would be
// cached twice, wasting space and risking incoherent updates.
//
// Following the paper, a client's name space is a *domain* plus a unique file
// id within it. This package models an NFS universe (hosts with symlink
// tables, hard-link aliases and NFS mount tables) and implements the paper's
// iterative resolution algorithm: resolve aliases and symbolic links to an
// absolute path on the local host; if any prefix of that path belongs to a
// mounted file system, consult the mount table and continue resolution on
// the exporting host; iterate (NFS permits no circularities) until the name
// reduces to a unique (host, path) pair within the domain.
//
// The Directory type is the server half: one mapping per domain from file
// ids to cached shadow identifiers, so a file submitted from two different
// hosts of one NFS domain has a single cached copy.
package naming

import (
	"errors"
	"fmt"
	"path"
	"sort"
	"strings"
	"sync"

	"shadowedit/internal/wire"
)

// Errors reported by resolution.
var (
	// ErrNotAbsolute reports a relative path with no working directory.
	ErrNotAbsolute = errors.New("naming: path not absolute")
	// ErrUnknownHost reports a host absent from the universe.
	ErrUnknownHost = errors.New("naming: unknown host")
	// ErrTooManyLinks reports a symlink or mount cycle (NFS forbids
	// circularities; we detect rather than hang).
	ErrTooManyLinks = errors.New("naming: too many levels of links or mounts")
	// ErrNotExist reports a missing file.
	ErrNotExist = errors.New("naming: file does not exist")
)

// Name is a resolved, canonical (host, path) pair — unique within a domain.
type Name struct {
	Host string
	Path string
}

// String renders the name as host:path, the file-id form used on the wire.
func (n Name) String() string { return n.Host + ":" + n.Path }

// Universe is one naming domain: a set of hosts cross-mounting each other's
// file systems, as in the paper's NFS environment.
type Universe struct {
	domain string

	mu         sync.RWMutex
	hosts      map[string]*FS
	tildeTrees *treeRegistry
}

// NewUniverse creates an empty domain with the given globally unique id
// ("an internet network number may serve as a unique domain id").
func NewUniverse(domain string) *Universe {
	return &Universe{domain: domain, hosts: make(map[string]*FS)}
}

// Domain returns the domain id.
func (u *Universe) Domain() string { return u.domain }

// AddHost adds (or returns) a host.
func (u *Universe) AddHost(name string) *FS {
	u.mu.Lock()
	defer u.mu.Unlock()
	if fs, ok := u.hosts[name]; ok {
		return fs
	}
	fs := &FS{
		host:     name,
		mounts:   make(map[string]Name),
		symlinks: make(map[string]string),
		aliases:  make(map[string]string),
		files:    make(map[string][]byte),
	}
	u.hosts[name] = fs
	return fs
}

// Host looks up a host by name.
func (u *Universe) Host(name string) (*FS, bool) {
	u.mu.RLock()
	defer u.mu.RUnlock()
	fs, ok := u.hosts[name]
	return fs, ok
}

// resolutionBudget bounds symlink expansions plus mount hops.
const resolutionBudget = 64

// Resolve reduces (host, path) to its canonical Name using the paper's
// algorithm. path must be absolute.
func (u *Universe) Resolve(host, p string) (Name, error) {
	if !path.IsAbs(p) {
		return Name{}, fmt.Errorf("%w: %q", ErrNotAbsolute, p)
	}
	budget := resolutionBudget
	curHost, curPath := host, p
	for {
		fs, ok := u.Host(curHost)
		if !ok {
			return Name{}, fmt.Errorf("%w: %q", ErrUnknownHost, curHost)
		}
		resolved, err := fs.resolveLocal(curPath, &budget)
		if err != nil {
			return Name{}, err
		}
		// Longest mount-point prefix, if any, moves resolution to the
		// exporting host.
		if mp, target, ok := fs.mountFor(resolved); ok {
			if budget--; budget <= 0 {
				return Name{}, ErrTooManyLinks
			}
			rest := strings.TrimPrefix(resolved, mp)
			curHost = target.Host
			curPath = path.Join(target.Path, rest)
			continue
		}
		// Hard-link aliases reduce to the file's basic name — which may
		// itself contain symlinks, mounts or further aliases, so feed
		// it back through the loop rather than returning it raw.
		if canon, ok := fs.aliasFor(resolved); ok && canon != resolved {
			if budget--; budget <= 0 {
				return Name{}, ErrTooManyLinks
			}
			curPath = canon
			continue
		}
		return Name{Host: curHost, Path: resolved}, nil
	}
}

// FileRef resolves (host, path) and wraps it as the protocol's (domain id,
// file id) pair.
func (u *Universe) FileRef(host, p string) (wire.FileRef, error) {
	n, err := u.Resolve(host, p)
	if err != nil {
		return wire.FileRef{}, err
	}
	return wire.FileRef{Domain: u.domain, FileID: n.String()}, nil
}

// WriteFile stores content at the canonical location of (host, path), so
// writes through any alias or mount hit one copy.
func (u *Universe) WriteFile(host, p string, content []byte) error {
	n, err := u.Resolve(host, p)
	if err != nil {
		return err
	}
	fs, ok := u.Host(n.Host)
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownHost, n.Host)
	}
	fs.mu.Lock()
	fs.files[n.Path] = append([]byte(nil), content...)
	fs.mu.Unlock()
	return nil
}

// ReadFile reads the content at the canonical location of (host, path).
func (u *Universe) ReadFile(host, p string) ([]byte, error) {
	n, err := u.Resolve(host, p)
	if err != nil {
		return nil, err
	}
	fs, ok := u.Host(n.Host)
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownHost, n.Host)
	}
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	content, ok := fs.files[n.Path]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotExist, n)
	}
	return append([]byte(nil), content...), nil
}

// FilesUnder resolves (host, p) as a directory and returns its canonical
// Name together with the sorted slash paths, relative to it, of every file
// physically stored beneath it on the resolved host. Files reachable only
// through symlinks or mounts that lead *out* of the directory are not
// enumerated — a workspace is the subtree under its canonical root, which
// keeps the client's and the server's notion of membership identical.
func (u *Universe) FilesUnder(host, p string) (Name, []string, error) {
	n, err := u.Resolve(host, p)
	if err != nil {
		return Name{}, nil, err
	}
	fs, ok := u.Host(n.Host)
	if !ok {
		return Name{}, nil, fmt.Errorf("%w: %q", ErrUnknownHost, n.Host)
	}
	fs.mu.RLock()
	var rels []string
	for fp := range fs.files {
		if fp != n.Path && underneath(n.Path, fp) {
			rels = append(rels, strings.TrimPrefix(fp, n.Path+"/"))
		}
	}
	fs.mu.RUnlock()
	sort.Strings(rels)
	return n, rels, nil
}

// RemoveFile deletes the file at the canonical location of (host, path).
// Removing a file that does not exist is not an error.
func (u *Universe) RemoveFile(host, p string) error {
	n, err := u.Resolve(host, p)
	if err != nil {
		return err
	}
	fs, ok := u.Host(n.Host)
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownHost, n.Host)
	}
	fs.mu.Lock()
	delete(fs.files, n.Path)
	fs.mu.Unlock()
	return nil
}

// FS models one host's file name space: its local files plus the tables the
// resolution algorithm consults.
type FS struct {
	host string

	mu       sync.RWMutex
	mounts   map[string]Name   // mount point -> exported (host, path)
	symlinks map[string]string // absolute path -> target (abs or relative)
	aliases  map[string]string // hard link path -> canonical path
	files    map[string][]byte
}

// Host returns the host name.
func (fs *FS) Host() string { return fs.host }

// Mount records that remote (host, path) is mounted at mountPoint, like an
// entry in an NFS mount table.
func (fs *FS) Mount(mountPoint, remoteHost, remotePath string) {
	fs.mu.Lock()
	fs.mounts[path.Clean(mountPoint)] = Name{Host: remoteHost, Path: path.Clean(remotePath)}
	fs.mu.Unlock()
}

// Symlink records a symbolic link. target may be absolute or relative to the
// link's directory.
func (fs *FS) Symlink(link, target string) {
	fs.mu.Lock()
	fs.symlinks[path.Clean(link)] = target
	fs.mu.Unlock()
}

// HardLink records that linkPath is an additional name (hard link) for
// canonicalPath; resolution reduces it to the canonical ("basic") name.
func (fs *FS) HardLink(linkPath, canonicalPath string) {
	fs.mu.Lock()
	fs.aliases[path.Clean(linkPath)] = path.Clean(canonicalPath)
	fs.mu.Unlock()
}

// resolveLocal expands symlinks component by component and lexically cleans
// the path, charging each expansion against budget.
func (fs *FS) resolveLocal(p string, budget *int) (string, error) {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	// Fast path: an already-clean absolute path that touches no symlink
	// resolves to itself. Probing the symlink table with prefix substrings
	// of p costs nothing — string slicing does not copy — so the common
	// case (every name a workstation submits, steady state) performs no
	// allocation at all. path.Clean returns its argument unchanged (and
	// unallocated) when the path is already clean.
	if path.IsAbs(p) && path.Clean(p) == p {
		hit := false
		if len(fs.symlinks) > 0 {
			for i := 1; i < len(p) && !hit; i++ {
				if p[i] == '/' {
					_, hit = fs.symlinks[p[:i]]
				}
			}
			if !hit {
				_, hit = fs.symlinks[p]
			}
		}
		if !hit {
			return p, nil
		}
	}
	comps := strings.Split(path.Clean(p), "/")
	resolved := "/"
	for i := 0; i < len(comps); i++ {
		c := comps[i]
		switch c {
		case "", ".":
			continue
		case "..":
			resolved = path.Dir(resolved)
			continue
		}
		cand := path.Join(resolved, c)
		target, ok := fs.symlinks[cand]
		if !ok {
			resolved = cand
			continue
		}
		if *budget--; *budget <= 0 {
			return "", ErrTooManyLinks
		}
		if !path.IsAbs(target) {
			target = path.Join(resolved, target)
		}
		// Restart with the expanded target followed by the remaining
		// components.
		rest := comps[i+1:]
		comps = append(strings.Split(path.Clean(target), "/"), rest...)
		resolved = "/"
		i = -1
	}
	return resolved, nil
}

// aliasFor returns the canonical path if p is a recorded hard link.
func (fs *FS) aliasFor(p string) (string, bool) {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	canon, ok := fs.aliases[p]
	return canon, ok
}

// mountFor returns the longest mount-point prefix of p (at a component
// boundary) and its export target.
func (fs *FS) mountFor(p string) (mountPoint string, target Name, ok bool) {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	best := ""
	for mp := range fs.mounts {
		if !underneath(mp, p) {
			continue
		}
		if len(mp) > len(best) {
			best = mp
		}
	}
	if best == "" {
		return "", Name{}, false
	}
	return best, fs.mounts[best], true
}

// underneath reports whether p equals prefix or lies beneath it.
func underneath(prefix, p string) bool {
	if prefix == "/" {
		return true
	}
	if !strings.HasPrefix(p, prefix) {
		return false
	}
	return len(p) == len(prefix) || p[len(prefix)] == '/'
}

// ShadowID identifies a cached shadow file at the server.
type ShadowID uint64

// Directory is the server-side mapping from (domain id, file id) pairs to
// shadow identifiers: "for each domain, it maintains a directory that maps
// each file identifier within that domain into the unique identifier of the
// cached version".
type Directory struct {
	mu      sync.Mutex
	domains map[string]map[string]ShadowID
	next    ShadowID
	// refs is the reverse mapping, indexed by ShadowID-1 (ids are allocated
	// sequentially from 1); it lets operator views name cached entries.
	refs []wire.FileRef
}

// NewDirectory returns an empty directory.
func NewDirectory() *Directory {
	return &Directory{domains: make(map[string]map[string]ShadowID)}
}

// Lookup finds the shadow id for a file reference.
func (d *Directory) Lookup(ref wire.FileRef) (ShadowID, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	dom, ok := d.domains[ref.Domain]
	if !ok {
		return 0, false
	}
	id, ok := dom[ref.FileID]
	return id, ok
}

// Intern returns the shadow id for a file reference, allocating one on first
// use.
func (d *Directory) Intern(ref wire.FileRef) ShadowID {
	d.mu.Lock()
	defer d.mu.Unlock()
	dom, ok := d.domains[ref.Domain]
	if !ok {
		dom = make(map[string]ShadowID)
		d.domains[ref.Domain] = dom
	}
	if id, ok := dom[ref.FileID]; ok {
		return id
	}
	d.next++
	dom[ref.FileID] = d.next
	d.refs = append(d.refs, ref)
	return d.next
}

// RefOf returns the file reference a shadow id was interned for — the
// reverse of Intern, used when presenting cache contents to operators.
func (d *Directory) RefOf(id ShadowID) (wire.FileRef, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if id < 1 || int(id) > len(d.refs) {
		return wire.FileRef{}, false
	}
	return d.refs[id-1], true
}

// IDsUnder returns the interned files of one domain whose file ids lie
// beneath the given prefix (a canonical "host:/abs/dir" with no trailing
// slash), as parallel slices of slash paths relative to the prefix and
// their shadow ids. This is the server half of directory reconciliation:
// the files the server summarizes for a workspace are exactly the ids it
// has ever interned beneath the workspace root.
func (d *Directory) IDsUnder(domain, prefix string) (rels []string, ids []ShadowID) {
	d.mu.Lock()
	defer d.mu.Unlock()
	for fileID, id := range d.domains[domain] {
		if len(fileID) > len(prefix)+1 && fileID[len(prefix)] == '/' &&
			strings.HasPrefix(fileID, prefix) {
			rels = append(rels, fileID[len(prefix)+1:])
			ids = append(ids, id)
		}
	}
	return rels, ids
}

// Domains lists the known domain ids, sorted.
func (d *Directory) Domains() []string {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]string, 0, len(d.domains))
	for dom := range d.domains {
		out = append(out, dom)
	}
	sort.Strings(out)
	return out
}

// Len returns the total number of interned files across domains.
func (d *Directory) Len() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	n := 0
	for _, dom := range d.domains {
		n += len(dom)
	}
	return n
}
