package naming

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"shadowedit/internal/wire"
)

// paperUniverse builds the example from §5.3 of the paper: machine C exports
// /usr; machine A mounts it as /proj1, machine B mounts it as /others, so
// /proj1/foo on A and /others/foo on B are the same file /usr/foo on C.
func paperUniverse() *Universe {
	u := NewUniverse("nfs.purdue")
	u.AddHost("c")
	a := u.AddHost("a")
	b := u.AddHost("b")
	a.Mount("/proj1", "c", "/usr")
	b.Mount("/others", "c", "/usr")
	return u
}

func TestPaperNFSExample(t *testing.T) {
	u := paperUniverse()
	na, err := u.Resolve("a", "/proj1/foo")
	if err != nil {
		t.Fatal(err)
	}
	nb, err := u.Resolve("b", "/others/foo")
	if err != nil {
		t.Fatal(err)
	}
	nc, err := u.Resolve("c", "/usr/foo")
	if err != nil {
		t.Fatal(err)
	}
	if na != nb || nb != nc {
		t.Fatalf("the same file resolved differently: a=%v b=%v c=%v", na, nb, nc)
	}
	if na.Host != "c" || na.Path != "/usr/foo" {
		t.Fatalf("canonical name = %v, want c:/usr/foo", na)
	}
}

func TestResolveTable(t *testing.T) {
	u := NewUniverse("dom")
	h := u.AddHost("h")
	u.AddHost("srv")
	h.Symlink("/tmp/link", "/real/file")
	h.Symlink("/rel", "sub/leaf") // relative target
	h.Symlink("/chain1", "/chain2")
	h.Symlink("/chain2", "/final")
	h.HardLink("/alias/name", "/basic/name")
	h.Mount("/mnt", "srv", "/export")
	h.Symlink("/intomnt", "/mnt/data")

	tests := []struct {
		name string
		give string
		want Name
	}{
		{name: "plain", give: "/plain/file", want: Name{Host: "h", Path: "/plain/file"}},
		{name: "dot segments", give: "/a/./b/../c", want: Name{Host: "h", Path: "/a/c"}},
		{name: "trailing slash", give: "/a/b/", want: Name{Host: "h", Path: "/a/b"}},
		{name: "symlink", give: "/tmp/link", want: Name{Host: "h", Path: "/real/file"}},
		{name: "symlink parent", give: "/tmp/link/deeper", want: Name{Host: "h", Path: "/real/file/deeper"}},
		{name: "relative symlink", give: "/rel", want: Name{Host: "h", Path: "/sub/leaf"}},
		{name: "symlink chain", give: "/chain1", want: Name{Host: "h", Path: "/final"}},
		{name: "hard link", give: "/alias/name", want: Name{Host: "h", Path: "/basic/name"}},
		{name: "mount", give: "/mnt/data/x", want: Name{Host: "srv", Path: "/export/data/x"}},
		{name: "mount root", give: "/mnt", want: Name{Host: "srv", Path: "/export"}},
		{name: "symlink into mount", give: "/intomnt", want: Name{Host: "srv", Path: "/export/data"}},
		{name: "dotdot above root", give: "/../x", want: Name{Host: "h", Path: "/x"}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, err := u.Resolve("h", tt.give)
			if err != nil {
				t.Fatalf("Resolve(%q): %v", tt.give, err)
			}
			if got != tt.want {
				t.Fatalf("Resolve(%q) = %v, want %v", tt.give, got, tt.want)
			}
		})
	}
}

func TestResolveDoesNotTreatSiblingAsMount(t *testing.T) {
	u := NewUniverse("dom")
	h := u.AddHost("h")
	u.AddHost("srv")
	h.Mount("/mnt", "srv", "/export")
	got, err := u.Resolve("h", "/mntx/file")
	if err != nil {
		t.Fatal(err)
	}
	if got.Host != "h" || got.Path != "/mntx/file" {
		t.Fatalf("sibling of mount point resolved as mount: %v", got)
	}
}

func TestResolveLongestMountWins(t *testing.T) {
	u := NewUniverse("dom")
	h := u.AddHost("h")
	u.AddHost("s1")
	u.AddHost("s2")
	h.Mount("/data", "s1", "/d1")
	h.Mount("/data/deep", "s2", "/d2")
	got, err := u.Resolve("h", "/data/deep/file")
	if err != nil {
		t.Fatal(err)
	}
	if got.Host != "s2" || got.Path != "/d2/file" {
		t.Fatalf("Resolve = %v, want s2:/d2/file", got)
	}
}

func TestResolveMountChains(t *testing.T) {
	// a mounts b's /mid, which is itself a mount of c's /root.
	u := NewUniverse("dom")
	a := u.AddHost("a")
	b := u.AddHost("b")
	u.AddHost("c")
	a.Mount("/m", "b", "/mid")
	b.Mount("/mid", "c", "/root")
	got, err := u.Resolve("a", "/m/f")
	if err != nil {
		t.Fatal(err)
	}
	if got.Host != "c" || got.Path != "/root/f" {
		t.Fatalf("Resolve = %v, want c:/root/f", got)
	}
}

func TestResolveErrors(t *testing.T) {
	u := NewUniverse("dom")
	h := u.AddHost("h")
	h.Symlink("/loop", "/loop")
	h.Symlink("/ping", "/pong")
	h.Symlink("/pong", "/ping")
	h.Mount("/badmnt", "ghost", "/x")

	tests := []struct {
		name string
		host string
		path string
		want error
	}{
		{name: "relative path", host: "h", path: "x/y", want: ErrNotAbsolute},
		{name: "unknown host", host: "nope", path: "/x", want: ErrUnknownHost},
		{name: "self symlink loop", host: "h", path: "/loop", want: ErrTooManyLinks},
		{name: "mutual symlink loop", host: "h", path: "/ping", want: ErrTooManyLinks},
		{name: "mount to unknown host", host: "h", path: "/badmnt/f", want: ErrUnknownHost},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := u.Resolve(tt.host, tt.path)
			if !errors.Is(err, tt.want) {
				t.Fatalf("Resolve(%s, %q) err = %v, want %v", tt.host, tt.path, err, tt.want)
			}
		})
	}
}

func TestMountCycleDetected(t *testing.T) {
	u := NewUniverse("dom")
	a := u.AddHost("a")
	b := u.AddHost("b")
	a.Mount("/m", "b", "/m")
	b.Mount("/m", "a", "/m")
	if _, err := u.Resolve("a", "/m/x"); !errors.Is(err, ErrTooManyLinks) {
		t.Fatalf("mount cycle err = %v, want ErrTooManyLinks", err)
	}
}

func TestFileRef(t *testing.T) {
	u := paperUniverse()
	ref, err := u.FileRef("a", "/proj1/foo")
	if err != nil {
		t.Fatal(err)
	}
	want := wire.FileRef{Domain: "nfs.purdue", FileID: "c:/usr/foo"}
	if ref != want {
		t.Fatalf("FileRef = %v, want %v", ref, want)
	}
}

func TestWriteReadThroughAliases(t *testing.T) {
	u := paperUniverse()
	if err := u.WriteFile("a", "/proj1/foo", []byte("data-v1")); err != nil {
		t.Fatal(err)
	}
	got, err := u.ReadFile("b", "/others/foo")
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "data-v1" {
		t.Fatalf("read through alias = %q, want %q", got, "data-v1")
	}
	// Writing through the other alias updates the same file.
	if err := u.WriteFile("b", "/others/foo", []byte("data-v2")); err != nil {
		t.Fatal(err)
	}
	got, err = u.ReadFile("c", "/usr/foo")
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "data-v2" {
		t.Fatalf("read canonical = %q, want %q", got, "data-v2")
	}
}

func TestReadFileNotExist(t *testing.T) {
	u := paperUniverse()
	if _, err := u.ReadFile("a", "/proj1/ghost"); !errors.Is(err, ErrNotExist) {
		t.Fatalf("err = %v, want ErrNotExist", err)
	}
}

func TestReadFileReturnsCopy(t *testing.T) {
	u := paperUniverse()
	if err := u.WriteFile("c", "/usr/f", []byte("abc")); err != nil {
		t.Fatal(err)
	}
	got, err := u.ReadFile("c", "/usr/f")
	if err != nil {
		t.Fatal(err)
	}
	got[0] = 'X'
	again, err := u.ReadFile("c", "/usr/f")
	if err != nil {
		t.Fatal(err)
	}
	if string(again) != "abc" {
		t.Fatal("ReadFile aliased internal storage")
	}
}

func TestAddHostIdempotent(t *testing.T) {
	u := NewUniverse("d")
	if u.AddHost("x") != u.AddHost("x") {
		t.Fatal("AddHost returned different FS for same name")
	}
}

func TestResolutionIdempotent(t *testing.T) {
	// Property: resolving a canonical name yields itself.
	u := paperUniverse()
	ha, _ := u.Host("a")
	ha.Symlink("/s", "/proj1/dir")
	inputs := []struct{ host, path string }{
		{"a", "/proj1/foo"},
		{"a", "/s/x"},
		{"b", "/others/sub/../foo"},
		{"c", "/usr/foo"},
	}
	for _, in := range inputs {
		n1, err := u.Resolve(in.host, in.path)
		if err != nil {
			t.Fatalf("Resolve(%s, %s): %v", in.host, in.path, err)
		}
		n2, err := u.Resolve(n1.Host, n1.Path)
		if err != nil {
			t.Fatalf("re-Resolve(%v): %v", n1, err)
		}
		if n1 != n2 {
			t.Fatalf("resolution not idempotent: %v -> %v", n1, n2)
		}
	}
}

func TestDirectoryInternStable(t *testing.T) {
	d := NewDirectory()
	ref1 := wire.FileRef{Domain: "dom1", FileID: "c:/usr/foo"}
	ref2 := wire.FileRef{Domain: "dom1", FileID: "c:/usr/bar"}
	ref3 := wire.FileRef{Domain: "dom2", FileID: "c:/usr/foo"} // other domain

	id1 := d.Intern(ref1)
	if got := d.Intern(ref1); got != id1 {
		t.Fatal("Intern not stable")
	}
	if d.Intern(ref2) == id1 {
		t.Fatal("different files share a shadow id")
	}
	if d.Intern(ref3) == id1 {
		t.Fatal("same file id in different domains shares a shadow id")
	}
	if d.Len() != 3 {
		t.Fatalf("Len = %d, want 3", d.Len())
	}
	doms := d.Domains()
	if len(doms) != 2 || doms[0] != "dom1" || doms[1] != "dom2" {
		t.Fatalf("Domains = %v", doms)
	}
}

func TestDirectoryLookup(t *testing.T) {
	d := NewDirectory()
	ref := wire.FileRef{Domain: "d", FileID: "f"}
	if _, ok := d.Lookup(ref); ok {
		t.Fatal("Lookup found unseen ref")
	}
	id := d.Intern(ref)
	got, ok := d.Lookup(ref)
	if !ok || got != id {
		t.Fatalf("Lookup = (%v, %v), want (%v, true)", got, ok, id)
	}
}

func TestDirectoryConcurrentIntern(t *testing.T) {
	d := NewDirectory()
	done := make(chan ShadowID, 32)
	for i := 0; i < 32; i++ {
		go func() {
			done <- d.Intern(wire.FileRef{Domain: "d", FileID: "same"})
		}()
	}
	first := <-done
	for i := 1; i < 32; i++ {
		if id := <-done; id != first {
			t.Fatal("concurrent Intern returned different ids for one file")
		}
	}
	if d.Len() != 1 {
		t.Fatalf("Len = %d, want 1", d.Len())
	}
}

func TestNameString(t *testing.T) {
	n := Name{Host: "h", Path: "/p/q"}
	if n.String() != "h:/p/q" {
		t.Fatalf("String = %q", n.String())
	}
}

func TestManyHostsManyMounts(t *testing.T) {
	// A chain of 10 hosts each mounting the next; resolution walks to
	// the end within budget.
	u := NewUniverse("chain")
	for i := 0; i < 10; i++ {
		u.AddHost(fmt.Sprintf("h%d", i))
	}
	for i := 0; i < 9; i++ {
		fs, _ := u.Host(fmt.Sprintf("h%d", i))
		fs.Mount("/next", fmt.Sprintf("h%d", i+1), "/next")
	}
	last, _ := u.Host("h9")
	_ = last
	got, err := u.Resolve("h0", "/next/file")
	if err != nil {
		t.Fatal(err)
	}
	if got.Host != "h9" || got.Path != "/next/file" {
		t.Fatalf("Resolve = %v, want h9:/next/file", got)
	}
}

func TestPropertyResolutionAlwaysTerminates(t *testing.T) {
	// Random universes with arbitrary (possibly cyclic) symlink and
	// mount tables: Resolve must always return — a canonical name or an
	// error — never hang or panic. Non-error results must be idempotent.
	rng := rand.New(rand.NewSource(77))
	comps := []string{"a", "b", "c", "d"}
	randPath := func() string {
		n := rng.Intn(3) + 1
		p := ""
		for i := 0; i < n; i++ {
			p += "/" + comps[rng.Intn(len(comps))]
		}
		return p
	}
	for trial := 0; trial < 200; trial++ {
		u := NewUniverse("dom")
		hosts := []string{"h0", "h1", "h2"}
		for _, h := range hosts {
			u.AddHost(h)
		}
		for i := 0; i < 6; i++ {
			fs, _ := u.Host(hosts[rng.Intn(len(hosts))])
			switch rng.Intn(3) {
			case 0:
				target := randPath()
				if rng.Intn(2) == 0 {
					target = target[1:] // relative
				}
				fs.Symlink(randPath(), target)
			case 1:
				fs.Mount(randPath(), hosts[rng.Intn(len(hosts))], randPath())
			case 2:
				fs.HardLink(randPath(), randPath())
			}
		}
		for probe := 0; probe < 10; probe++ {
			host := hosts[rng.Intn(len(hosts))]
			name, err := u.Resolve(host, randPath())
			if err != nil {
				continue // cycles and budgets are legitimate errors
			}
			again, err := u.Resolve(name.Host, name.Path)
			if err != nil {
				t.Fatalf("trial %d: canonical name %v failed to re-resolve: %v", trial, name, err)
			}
			if again != name {
				t.Fatalf("trial %d: resolution not idempotent: %v -> %v", trial, name, again)
			}
		}
	}
}
