package chunk

import (
	"bytes"
	"fmt"
	"math/rand"
	"sync"
	"testing"
)

func TestStorePutRefRelease(t *testing.T) {
	s := NewStore()
	data := []byte("the quick brown fox")
	h := HashOf(data)

	if s.Ref(h) {
		t.Fatal("Ref on an absent chunk succeeded")
	}
	s.Put(h, data)
	if got, ok := s.Get(h); !ok || !bytes.Equal(got, data) {
		t.Fatal("Get after Put failed")
	}
	if s.UniqueBytes() != int64(len(data)) || s.Len() != 1 {
		t.Fatalf("bytes=%d len=%d after one Put", s.UniqueBytes(), s.Len())
	}

	// A second Put of identical content is a dedup hit, not a second copy.
	s.Put(h, data)
	if s.UniqueBytes() != int64(len(data)) || s.Len() != 1 {
		t.Fatalf("bytes=%d len=%d after duplicate Put", s.UniqueBytes(), s.Len())
	}
	if !s.Ref(h) {
		t.Fatal("Ref on a resident chunk failed")
	}

	// Three references held; the chunk survives until the last drops.
	s.Release(h)
	s.Release(h)
	if _, ok := s.Get(h); !ok {
		t.Fatal("chunk freed while still referenced")
	}
	s.Release(h)
	if _, ok := s.Get(h); ok {
		t.Fatal("chunk survived its last Release")
	}
	if s.UniqueBytes() != 0 || s.Len() != 0 {
		t.Fatalf("bytes=%d len=%d after last Release", s.UniqueBytes(), s.Len())
	}
	st := s.Stats()
	if st.Puts != 1 || st.Dups != 2 || st.Frees != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestStorePutCopiesData(t *testing.T) {
	s := NewStore()
	buf := []byte("mutable transient buffer")
	h := HashOf(buf)
	s.Put(h, buf)
	buf[0] = 'X'
	if got, _ := s.Get(h); got[0] == 'X' {
		t.Fatal("store aliases the caller's buffer")
	}
}

func TestStoreManifestRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	content := make([]byte, 20000)
	rng.Read(content)
	s := NewStore()
	m := s.AddManifest(content, DefaultParams)
	got, ok := s.Assemble(m)
	if !ok || !bytes.Equal(got, content) {
		t.Fatal("Assemble does not reproduce the content")
	}
	// A second manifest of the same content doubles nothing.
	m2 := s.AddManifest(content, DefaultParams)
	if s.UniqueBytes() != int64(len(content)) {
		t.Fatalf("unique bytes %d after duplicate manifest, want %d", s.UniqueBytes(), len(content))
	}
	s.ReleaseManifest(m)
	if got, ok := s.Assemble(m2); !ok || !bytes.Equal(got, content) {
		t.Fatal("second manifest broken after first released")
	}
	s.ReleaseManifest(m2)
	if s.UniqueBytes() != 0 || s.Len() != 0 {
		t.Fatalf("store not empty after all releases: %d bytes", s.UniqueBytes())
	}
}

// TestStoreRepeatedChunkRefcount pins the per-occurrence refcount contract: a
// manifest referencing the same chunk k times holds k references, and
// releasing the manifest drops all of them.
func TestStoreRepeatedChunkRefcount(t *testing.T) {
	s := NewStore()
	// Content whose chunks repeat: one Max-sized uniform run, three times.
	run := bytes.Repeat([]byte{7}, DefaultParams.Max)
	content := bytes.Repeat(run, 3)
	m := s.AddManifest(content, DefaultParams)
	if len(m) < 3 {
		t.Fatalf("expected ≥3 refs, got %d", len(m))
	}
	if s.UniqueBytes() >= int64(len(content)) {
		t.Fatalf("no dedup on repeated content: %d unique bytes", s.UniqueBytes())
	}
	s.ReleaseManifest(m)
	if s.Len() != 0 {
		t.Fatalf("%d chunks leaked after releasing a repeating manifest", s.Len())
	}
}

// TestStorePinnedChunkSurvivesRelease is the in-flight-transfer regression: a
// transfer that Ref'd a chunk keeps it alive through the eviction of every
// cache entry that referenced it.
func TestStorePinnedChunkSurvivesRelease(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	content := make([]byte, 8000)
	rng.Read(content)
	s := NewStore()
	m := s.AddManifest(content, DefaultParams)

	// The transfer pins one chunk...
	pinned := m[len(m)/2].Hash
	if !s.Ref(pinned) {
		t.Fatal("pin failed")
	}
	// ...then the cache entry is evicted.
	s.ReleaseManifest(m)
	if _, ok := s.Get(pinned); !ok {
		t.Fatal("pinned chunk freed by manifest release")
	}
	if s.Len() != 1 {
		t.Fatalf("%d chunks resident, want only the pinned one", s.Len())
	}
	s.Release(pinned)
	if s.Len() != 0 || s.UniqueBytes() != 0 {
		t.Fatal("store not empty after pin released")
	}
}

// TestStressStoreConcurrent hammers the store with concurrent manifest adds,
// assembles, pins and releases — run with -race, mirroring the cache's stress
// suite. The final invariant: once every holder releases, the store drains to
// exactly zero.
func TestStressStoreConcurrent(t *testing.T) {
	const (
		workers = 8
		ops     = 400
		files   = 12
	)
	s := NewStore()

	// A shared pool of contents; workers repeatedly add/release manifests of
	// them so refcounts cross shard and goroutine boundaries constantly.
	contents := make([][]byte, files)
	seed := rand.New(rand.NewSource(13))
	for i := range contents {
		contents[i] = make([]byte, 4000+seed.Intn(8000))
		seed.Read(contents[i])
	}

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(100 + w)))
			held := make([]Manifest, 0, 8)
			heldIdx := make([]int, 0, 8)
			for op := 0; op < ops; op++ {
				switch rng.Intn(4) {
				case 0, 1: // add a manifest
					i := rng.Intn(files)
					held = append(held, s.AddManifest(contents[i], DefaultParams))
					heldIdx = append(heldIdx, i)
				case 2: // release one
					if len(held) > 0 {
						j := rng.Intn(len(held))
						s.ReleaseManifest(held[j])
						held[j] = held[len(held)-1]
						held = held[:len(held)-1]
						heldIdx[j] = heldIdx[len(heldIdx)-1]
						heldIdx = heldIdx[:len(heldIdx)-1]
					}
				case 3: // assemble and verify one
					if len(held) > 0 {
						j := rng.Intn(len(held))
						got, ok := s.Assemble(held[j])
						if !ok {
							panic("assemble of a held manifest failed")
						}
						if !bytes.Equal(got, contents[heldIdx[j]]) {
							panic(fmt.Sprintf("worker %d: assembled content differs", w))
						}
					}
				}
			}
			for _, m := range held {
				s.ReleaseManifest(m)
			}
		}(w)
	}
	wg.Wait()

	if s.Len() != 0 || s.UniqueBytes() != 0 {
		t.Fatalf("store leaked: %d chunks, %d bytes", s.Len(), s.UniqueBytes())
	}
	st := s.Stats()
	if st.Puts != st.Frees {
		t.Fatalf("puts %d != frees %d after full drain", st.Puts, st.Frees)
	}
}
