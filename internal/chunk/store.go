package chunk

import (
	"sync"
	"sync/atomic"
)

// storeShards spreads the hash space over independent locks, sized like the
// cache's shard table so concurrent sessions rarely collide.
const storeShards = 16

// StoreStats is a point-in-time view of a Store.
type StoreStats struct {
	// Chunks is the number of unique chunks resident.
	Chunks int
	// UniqueBytes is the total content bytes of resident chunks — each
	// stored once however many manifests reference it.
	UniqueBytes int64
	// Puts counts insertions of chunks the store had not seen.
	Puts int64
	// Dups counts references taken on chunks already resident — the
	// store's deduplication hits.
	Dups int64
	// Frees counts chunks released when their last reference dropped.
	Frees int64
}

// Store is a hash-addressed, refcounted chunk store. Every operation that
// hands out a chunk takes a reference; Release drops one, and a chunk's
// bytes are freed exactly when its last reference goes. A reference is
// therefore also a pin: an in-flight transfer holding refs on its chunks is
// immune to cache eviction, which only ever releases the references a cache
// entry's manifest holds.
type Store struct {
	shards [storeShards]storeShard

	uniqueBytes atomic.Int64
	chunks      atomic.Int64
	puts        atomic.Int64
	dups        atomic.Int64
	frees       atomic.Int64
}

type storeShard struct {
	mu     sync.Mutex
	chunks map[Hash]*chunkEntry
}

type chunkEntry struct {
	data []byte
	refs int64 // guarded by the shard mutex
}

// NewStore returns an empty store.
func NewStore() *Store {
	s := &Store{}
	for i := range s.shards {
		s.shards[i].chunks = make(map[Hash]*chunkEntry)
	}
	return s
}

// shardOf picks the shard for a hash. The hash is already uniform, so the
// leading byte is as good a selector as any mix.
func (s *Store) shardOf(h Hash) *storeShard {
	return &s.shards[h[0]&(storeShards-1)]
}

// Put inserts data under h (the caller has already hashed it) and returns
// with one reference held by the caller. If the chunk is already resident
// the data is ignored and its refcount incremented — the dedup hit. New
// chunks copy data, so callers may hand in sub-slices of transient buffers.
func (s *Store) Put(h Hash, data []byte) {
	sh := s.shardOf(h)
	sh.mu.Lock()
	if e, ok := sh.chunks[h]; ok {
		e.refs++
		sh.mu.Unlock()
		s.dups.Add(1)
		return
	}
	owned := make([]byte, len(data))
	copy(owned, data)
	sh.chunks[h] = &chunkEntry{data: owned, refs: 1}
	sh.mu.Unlock()
	s.uniqueBytes.Add(int64(len(owned)))
	s.chunks.Add(1)
	s.puts.Add(1)
}

// Ref takes one reference on h if it is resident, reporting whether it was.
// The caller that gets true owns a reference it must eventually Release.
func (s *Store) Ref(h Hash) bool {
	sh := s.shardOf(h)
	sh.mu.Lock()
	e, ok := sh.chunks[h]
	if ok {
		e.refs++
	}
	sh.mu.Unlock()
	if ok {
		s.dups.Add(1)
	}
	return ok
}

// Get returns the chunk's content without touching its refcount. The bytes
// are the store's own and must not be modified; the caller must hold a
// reference (directly or through a manifest) for as long as it reads them.
func (s *Store) Get(h Hash) ([]byte, bool) {
	sh := s.shardOf(h)
	sh.mu.Lock()
	e, ok := sh.chunks[h]
	sh.mu.Unlock()
	if !ok {
		return nil, false
	}
	return e.data, true
}

// Release drops one reference on h, freeing the chunk when it was the last.
func (s *Store) Release(h Hash) {
	sh := s.shardOf(h)
	sh.mu.Lock()
	e, ok := sh.chunks[h]
	if !ok {
		sh.mu.Unlock()
		return
	}
	e.refs--
	freed := e.refs <= 0
	if freed {
		delete(sh.chunks, h)
	}
	sh.mu.Unlock()
	if freed {
		s.uniqueBytes.Add(-int64(len(e.data)))
		s.chunks.Add(-1)
		s.frees.Add(1)
	}
}

// AddManifest splits content, stores every chunk (taking one reference per
// manifest entry) and returns the manifest. This is how whole content enters
// the store: the returned manifest owns one reference per ref, released as a
// unit with ReleaseManifest.
func (s *Store) AddManifest(content []byte, p Params) Manifest {
	m := Split(content, p)
	off := 0
	for _, r := range m {
		s.Put(r.Hash, content[off:off+int(r.Len)])
		off += int(r.Len)
	}
	return m
}

// ReleaseManifest drops the one-reference-per-entry a manifest holds.
func (s *Store) ReleaseManifest(m Manifest) {
	for _, r := range m {
		s.Release(r.Hash)
	}
}

// AppendAssemble reconstructs the manifest's content into dst and returns
// the extended slice. The caller must hold references on every chunk (a
// cache entry's manifest qualifies). It reports ok=false — with dst
// untouched in length beyond what was appended — if a chunk is missing,
// which indicates a refcounting bug or an incomplete assembly.
func (s *Store) AppendAssemble(dst []byte, m Manifest) ([]byte, bool) {
	for _, r := range m {
		data, ok := s.Get(r.Hash)
		if !ok {
			return dst, false
		}
		dst = append(dst, data...)
	}
	return dst, true
}

// Assemble reconstructs the manifest's content into a fresh buffer.
func (s *Store) Assemble(m Manifest) ([]byte, bool) {
	out, ok := s.AppendAssemble(make([]byte, 0, m.TotalLen()), m)
	if !ok {
		return nil, false
	}
	return out, true
}

// UniqueBytes returns the resident unique-chunk byte total.
func (s *Store) UniqueBytes() int64 { return s.uniqueBytes.Load() }

// Len returns the number of resident unique chunks.
func (s *Store) Len() int { return int(s.chunks.Load()) }

// Stats returns a point-in-time view.
func (s *Store) Stats() StoreStats {
	return StoreStats{
		Chunks:      int(s.chunks.Load()),
		UniqueBytes: s.uniqueBytes.Load(),
		Puts:        s.puts.Load(),
		Dups:        s.dups.Load(),
		Frees:       s.frees.Load(),
	}
}
