package chunk

import (
	"bytes"
	"math/rand"
	"testing"
)

// randomContent builds pseudo-random bytes — the content class the splitter's
// expected-chunk-size math is calibrated for.
func randomContent(rng *rand.Rand, n int) []byte {
	b := make([]byte, n)
	rng.Read(b)
	return b
}

// reassemble checks a manifest tiles its content exactly and every ref's hash
// matches the slice it covers, returning the concatenation.
func reassemble(t *testing.T, m Manifest, content []byte) {
	t.Helper()
	off := 0
	for i, r := range m {
		if off+int(r.Len) > len(content) {
			t.Fatalf("ref %d overruns content: off %d + len %d > %d", i, off, r.Len, len(content))
		}
		if got := HashOf(content[off : off+int(r.Len)]); got != r.Hash {
			t.Fatalf("ref %d hash mismatch", i)
		}
		off += int(r.Len)
	}
	if off != len(content) {
		t.Fatalf("manifest covers %d of %d bytes", off, len(content))
	}
}

func TestSplitTilesContent(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{0, 1, 255, 256, 257, 1024, 4096, 4097, 65536} {
		content := randomContent(rng, n)
		m := Split(content, DefaultParams)
		reassemble(t, m, content)
		if m.TotalLen() != int64(n) {
			t.Fatalf("n=%d: TotalLen = %d", n, m.TotalLen())
		}
	}
}

func TestSplitRespectsBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	content := randomContent(rng, 1<<18)
	m := Split(content, DefaultParams)
	if len(m) < 2 {
		t.Fatalf("256 KB split into %d chunks", len(m))
	}
	for i, r := range m {
		if int(r.Len) > DefaultParams.Max {
			t.Fatalf("chunk %d is %d bytes, max %d", i, r.Len, DefaultParams.Max)
		}
		// Every chunk but the last respects Min (the tail is whatever
		// remains).
		if i < len(m)-1 && int(r.Len) < DefaultParams.Min {
			t.Fatalf("chunk %d is %d bytes, min %d", i, r.Len, DefaultParams.Min)
		}
	}
	// Average should land within a factor of ~2 of the target on random
	// content; wild deviation means the boundary condition is broken.
	avg := float64(len(content)) / float64(len(m))
	if avg < float64(DefaultParams.Avg)/2 || avg > float64(DefaultParams.Avg)*3 {
		t.Fatalf("mean chunk size %.0f, target %d", avg, DefaultParams.Avg)
	}
}

func TestSplitDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	content := randomContent(rng, 32768)
	a := Split(content, DefaultParams)
	b := Split(content, DefaultParams)
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("ref %d differs", i)
		}
	}
}

// TestSingleEditLocality is the property the whole design rests on: a single
// byte edit perturbs only a bounded window of chunks — everything before the
// edit keeps its refs verbatim, and the splitter resynchronizes after it, so
// the delta-as-chunks transfer ships O(1) chunks per clustered edit.
func TestSingleEditLocality(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	const size = 1 << 16
	for trial := 0; trial < 50; trial++ {
		content := randomContent(rng, size)
		base := Split(content, DefaultParams)
		baseSet := make(map[Hash]bool, len(base))
		for _, r := range base {
			baseSet[r.Hash] = true
		}

		edited := append([]byte(nil), content...)
		pos := rng.Intn(size)
		switch rng.Intn(3) {
		case 0: // replace
			edited[pos] ^= byte(1 + rng.Intn(255))
		case 1: // insert
			edited = append(edited[:pos], append([]byte{byte(rng.Intn(256))}, edited[pos:]...)...)
		case 2: // delete
			edited = append(edited[:pos], edited[pos+1:]...)
		}

		m := Split(edited, DefaultParams)
		reassemble(t, m, edited)
		fresh := 0
		for _, r := range m {
			if !baseSet[r.Hash] {
				fresh++
			}
		}
		// The edit can dirty the chunk it lands in plus the resync window
		// after it. With Max=4x Avg, a generous bound is 4 fresh chunks;
		// shipping more would mean boundaries depend on position, not
		// content.
		if fresh > 4 {
			t.Fatalf("trial %d: single edit at %d dirtied %d chunks (of %d)",
				trial, pos, fresh, len(m))
		}
	}
}

// TestBoundaryContentDefined pins that boundaries depend only on content:
// the same bytes reached through a different prefix chunk identically once
// the splitter resynchronizes. Concatenating two files must reuse the second
// file's chunks from (at worst) a small resync window in.
func TestBoundaryContentDefined(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a := randomContent(rng, 16384)
	b := randomContent(rng, 16384)
	bSet := make(map[Hash]bool)
	for _, r := range Split(b, DefaultParams) {
		bSet[r.Hash] = true
	}
	joined := append(append([]byte(nil), a...), b...)
	m := Split(joined, DefaultParams)
	reassemble(t, m, joined)
	// Count refs from b's second half that survive in the concatenation —
	// the splitter must have resynchronized well before then.
	reused := 0
	for _, r := range m {
		if bSet[r.Hash] {
			reused++
		}
	}
	if reused < len(bSet)/2 {
		t.Fatalf("only %d of %d of b's chunks reused after concatenation", reused, len(bSet))
	}
}

func TestAppendExtendsManifest(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	a := randomContent(rng, 8192)
	b := randomContent(rng, 8192)
	m := Split(a, DefaultParams)
	n := len(m)
	m = Append(m, b, DefaultParams)
	if len(m) <= n {
		t.Fatal("Append added no refs")
	}
	// The appended region tiles b exactly.
	reassemble(t, m[n:], b)
}

func TestManifestHelpers(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	content := randomContent(rng, 8192)
	m := Split(content, DefaultParams)
	if !m.Contains(m[0].Hash) {
		t.Fatal("Contains misses a present hash")
	}
	if m.Contains(HashOf([]byte("absent"))) {
		t.Fatal("Contains finds an absent hash")
	}
	c := m.Clone()
	c[0].Len++
	if m[0].Len == c[0].Len {
		t.Fatal("Clone shares backing storage")
	}
	if Manifest(nil).Clone() != nil {
		t.Fatal("nil Clone must stay nil")
	}
}

func TestBadParamsPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on non-power-of-two Avg")
		}
	}()
	Split([]byte("x"), Params{Min: 1, Avg: 3, Max: 10})
}

// FuzzSplitStability drives the splitter with arbitrary content and a random
// single-byte perturbation, checking the invariants that matter for the
// protocol: manifests tile their content, respect Max, and an edit never
// invalidates chunks strictly before the byte it touched.
func FuzzSplitStability(f *testing.F) {
	f.Add([]byte("hello world"), uint16(3))
	f.Add(bytes.Repeat([]byte{0}, 5000), uint16(100))
	f.Add(bytes.Repeat([]byte("abc"), 3000), uint16(4000))
	f.Fuzz(func(t *testing.T, content []byte, editPos uint16) {
		if len(content) > 1<<20 {
			return
		}
		m := Split(content, DefaultParams)
		off := 0
		for _, r := range m {
			if int(r.Len) > DefaultParams.Max || r.Len == 0 {
				t.Fatalf("chunk len %d out of range", r.Len)
			}
			off += int(r.Len)
		}
		if off != len(content) {
			t.Fatalf("manifest covers %d of %d bytes", off, len(content))
		}
		if len(content) == 0 {
			return
		}
		pos := int(editPos) % len(content)
		edited := append([]byte(nil), content...)
		edited[pos] ^= 0x5a
		em := Split(edited, DefaultParams)
		// Chunks that end strictly before the edited byte must be identical:
		// the gear window never looks forward.
		eoff := 0
		for i, r := range em {
			if eoff+int(r.Len) > pos {
				break
			}
			if i >= len(m) || m[i] != r {
				t.Fatalf("chunk %d (ends at %d, edit at %d) changed", i, eoff+int(r.Len), pos)
			}
			eoff += int(r.Len)
		}
	})
}
