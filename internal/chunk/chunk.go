// Package chunk implements content-defined chunking and a hash-addressed,
// refcounted chunk store — the sub-file deduplication layer beneath the
// shadow cache and the v3 transfer path.
//
// A file's content is split at boundaries chosen by a rolling (gear) hash of
// the bytes themselves, so an insertion or deletion only reshuffles the
// chunks it touches: the chunks before the edit keep their boundaries
// verbatim, and the splitter resynchronizes within a chunk or two after it
// (the edit-robustness that recursive content-dependent shingling is after).
// Each chunk is addressed by a truncated SHA-256 of its content, a file
// becomes a Manifest — an ordered list of (hash, length) refs — and identical
// chunks across users, files and versions are stored once in a refcounted
// Store. Byte accounting, eviction and wire transfer all move to unique-chunk
// granularity: the cache charges only unique bytes, eviction frees a chunk
// only when its last referencing manifest is gone, and a transfer ships only
// the chunks the receiver does not already hold.
package chunk

import (
	"crypto/sha256"
	"fmt"
)

// HashSize is the size of a chunk address: SHA-256 truncated to 16 bytes.
// 128 bits keeps accidental collision probability negligible (~2^-64 at a
// billion chunks) while halving manifest size on the wire.
const HashSize = 16

// Hash addresses one chunk by its content.
type Hash [HashSize]byte

// HashOf computes the content address of data.
func HashOf(data []byte) Hash {
	sum := sha256.Sum256(data)
	var h Hash
	copy(h[:], sum[:HashSize])
	return h
}

// String renders the hash in hex (diagnostics, /cachez).
func (h Hash) String() string { return fmt.Sprintf("%x", h[:]) }

// Ref is one manifest entry: a chunk's address and its length. Offsets are
// implicit — the chunks of a manifest are contiguous, so a ref's offset is
// the prefix sum of the lengths before it.
type Ref struct {
	Hash Hash
	Len  uint32
}

// Manifest is a file's content as an ordered list of chunk refs.
type Manifest []Ref

// TotalLen returns the logical content length the manifest describes.
func (m Manifest) TotalLen() int64 {
	var n int64
	for _, r := range m {
		n += int64(r.Len)
	}
	return n
}

// Contains reports whether the manifest references h. Manifests are short
// (tens of entries), so a linear scan beats building a map — and allocates
// nothing.
func (m Manifest) Contains(h Hash) bool {
	for _, r := range m {
		if r.Hash == h {
			return true
		}
	}
	return false
}

// Fingerprint condenses the manifest into one content address: the hash of
// its refs in order (each ref's hash and length). Two files have equal
// fingerprints exactly when their chunkings — and therefore, for one set of
// Params, their contents — are equal, which is what makes a fingerprint
// usable as a Merkle leaf in directory reconciliation. The empty manifest
// (an empty file) has a well-defined fingerprint too.
func (m Manifest) Fingerprint() Hash {
	h := sha256.New()
	var buf [HashSize + 4]byte
	for _, r := range m {
		copy(buf[:HashSize], r.Hash[:])
		buf[HashSize] = byte(r.Len)
		buf[HashSize+1] = byte(r.Len >> 8)
		buf[HashSize+2] = byte(r.Len >> 16)
		buf[HashSize+3] = byte(r.Len >> 24)
		h.Write(buf[:])
	}
	var sum [sha256.Size]byte
	var out Hash
	copy(out[:], h.Sum(sum[:0])[:HashSize])
	return out
}

// Clone returns an independent copy of the manifest.
func (m Manifest) Clone() Manifest {
	if m == nil {
		return nil
	}
	out := make(Manifest, len(m))
	copy(out, m)
	return out
}

// Params bound the splitter's chunk sizes. Avg must be a power of two: it
// becomes the boundary mask, giving an expected chunk size of Avg bytes on
// random content.
type Params struct {
	Min int // no boundary before Min bytes
	Avg int // expected chunk size; must be a power of two
	Max int // forced boundary at Max bytes
}

// DefaultParams suits the service's file sizes (KB to tens of KB): small
// enough that a clustered edit dirties only a chunk or two of an 8 KB file,
// large enough that manifests stay tens of entries.
var DefaultParams = Params{Min: 256, Avg: 1024, Max: 4096}

// validate panics on malformed params — these are programmer constants, not
// runtime input.
func (p Params) validate() {
	if p.Min <= 0 || p.Max < p.Min || p.Avg < p.Min || p.Avg > p.Max || p.Avg&(p.Avg-1) != 0 {
		panic(fmt.Sprintf("chunk: bad params %+v", p))
	}
}

// gearTable is the splitter's byte-to-noise mapping, generated
// deterministically (splitmix64) so every build — both ends of the wire —
// chunks identically.
var gearTable = func() [256]uint64 {
	var t [256]uint64
	x := uint64(0x9e3779b97f4a7c15)
	for i := range t {
		x += 0x9e3779b97f4a7c15
		z := x
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		t[i] = z ^ (z >> 31)
	}
	return t
}()

// Append splits data into content-defined chunks and appends their refs to
// dst, returning the extended slice. The boundary test consults only the
// trailing bytes of the rolling window, so equal content always yields equal
// boundaries regardless of what preceded a forced cut.
func Append(dst Manifest, data []byte, p Params) Manifest {
	p.validate()
	mask := uint64(p.Avg - 1)
	for len(data) > 0 {
		n := cut(data, p, mask)
		dst = append(dst, Ref{Hash: HashOf(data[:n]), Len: uint32(n)})
		data = data[n:]
	}
	return dst
}

// Split is Append into a fresh manifest.
func Split(data []byte, p Params) Manifest {
	if len(data) == 0 {
		return nil
	}
	// Pre-size for the expected chunk count to keep Split at one allocation.
	return Append(make(Manifest, 0, len(data)/p.Avg+2), data, p)
}

// cut returns the length of the next chunk at the head of data: the first
// position past Min where the gear hash lands on the mask, or Max, or the
// end of data.
func cut(data []byte, p Params, mask uint64) int {
	n := len(data)
	if n <= p.Min {
		return n
	}
	if n > p.Max {
		n = p.Max
	}
	var h uint64
	// Warm the window over the Min prefix so the boundary decision at i
	// depends only on content, never on position relative to a prior cut.
	for i := p.Min - 64; i < p.Min; i++ {
		if i >= 0 {
			h = h<<1 + gearTable[data[i]]
		}
	}
	for i := p.Min; i < n; i++ {
		h = h<<1 + gearTable[data[i]]
		if h&mask == 0 {
			return i + 1
		}
	}
	return n
}
