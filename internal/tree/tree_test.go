package tree

import (
	"fmt"
	"reflect"
	"testing"

	"shadowedit/internal/chunk"
)

func h(s string) chunk.Hash { return chunk.HashOf([]byte(s)) }

func TestBuildEmpty(t *testing.T) {
	a := Build(nil)
	b := Build([]Leaf{})
	if a.Count() != 0 || b.Count() != 0 {
		t.Fatalf("empty tree counts: %d, %d", a.Count(), b.Count())
	}
	if a.Root() != b.Root() {
		t.Fatalf("empty trees disagree on root hash")
	}
	if es, ok := a.Entries(""); !ok || len(es) != 0 {
		t.Fatalf("empty tree root listing: %v, %v", es, ok)
	}
}

func TestBuildCanonical(t *testing.T) {
	leaves := []Leaf{
		{Path: "src/pkg0/a.f", Hash: h("a")},
		{Path: "src/pkg0/b.f", Hash: h("b")},
		{Path: "src/pkg1/c.f", Hash: h("c")},
		{Path: "run.job", Hash: h("j")},
	}
	t1 := Build(leaves)
	// Reversed insertion order must produce the identical summary.
	rev := make([]Leaf, len(leaves))
	for i, lf := range leaves {
		rev[len(leaves)-1-i] = lf
	}
	t2 := Build(rev)
	if t1.Root() != t2.Root() {
		t.Fatalf("leaf order changed the root hash")
	}
	if t1.Count() != 4 {
		t.Fatalf("count = %d, want 4", t1.Count())
	}
	if got := t1.FilesUnder(""); !reflect.DeepEqual(got, []string{"run.job", "src/pkg0/a.f", "src/pkg0/b.f", "src/pkg1/c.f"}) {
		t.Fatalf("FilesUnder root = %v", got)
	}
	if got := t1.FilesUnder("src/pkg1"); !reflect.DeepEqual(got, []string{"src/pkg1/c.f"}) {
		t.Fatalf("FilesUnder src/pkg1 = %v", got)
	}
}

func TestContentChangePropagatesToRoot(t *testing.T) {
	base := []Leaf{
		{Path: "src/pkg0/a.f", Hash: h("a")},
		{Path: "src/pkg1/c.f", Hash: h("c")},
	}
	t1 := Build(base)
	edited := []Leaf{
		{Path: "src/pkg0/a.f", Hash: h("a２")},
		{Path: "src/pkg1/c.f", Hash: h("c")},
	}
	t2 := Build(edited)
	if t1.Root() == t2.Root() {
		t.Fatalf("edit did not change the root hash")
	}
	// Only the edited branch's hashes differ: pkg1 is untouched.
	e1, _ := t1.Entries("src")
	e2, _ := t2.Entries("src")
	if e1[0].Hash == e2[0].Hash {
		t.Fatalf("pkg0 hash unchanged after edit")
	}
	if e1[1].Hash != e2[1].Hash {
		t.Fatalf("pkg1 hash changed without an edit")
	}
}

func TestDiffIdentical(t *testing.T) {
	a := Build([]Leaf{{Path: "x/y.f", Hash: h("y")}})
	la, _ := a.Entries("")
	d := Diff("", la, la)
	if len(d.ChangedFiles)+len(d.RemovedFiles)+len(d.WalkBoth)+len(d.LocalOnly)+len(d.RemoteOnly) != 0 {
		t.Fatalf("identical listings produced a delta: %+v", d)
	}
}

func TestDiffRenameIsDeletePlusAdd(t *testing.T) {
	local := Build([]Leaf{{Path: "new.f", Hash: h("same")}})
	remote := Build([]Leaf{{Path: "old.f", Hash: h("same")}})
	le, _ := local.Entries("")
	re, _ := remote.Entries("")
	d := Diff("", le, re)
	if !reflect.DeepEqual(d.ChangedFiles, []string{"new.f"}) {
		t.Fatalf("changed = %v, want [new.f]", d.ChangedFiles)
	}
	if !reflect.DeepEqual(d.RemovedFiles, []string{"old.f"}) {
		t.Fatalf("removed = %v, want [old.f]", d.RemovedFiles)
	}
}

func TestDiffOneSidedDirs(t *testing.T) {
	local := Build([]Leaf{
		{Path: "both/a.f", Hash: h("a")},
		{Path: "mine/b.f", Hash: h("b")},
	})
	remote := Build([]Leaf{
		{Path: "both/a.f", Hash: h("a")},
		{Path: "theirs/c.f", Hash: h("c")},
	})
	le, _ := local.Entries("")
	re, _ := remote.Entries("")
	d := Diff("", le, re)
	if !reflect.DeepEqual(d.LocalOnly, []string{"mine"}) {
		t.Fatalf("local-only = %v, want [mine]", d.LocalOnly)
	}
	if !reflect.DeepEqual(d.RemoteOnly, []string{"theirs"}) {
		t.Fatalf("remote-only = %v, want [theirs]", d.RemoteOnly)
	}
	if len(d.WalkBoth) != 0 || len(d.ChangedFiles) != 0 || len(d.RemovedFiles) != 0 {
		t.Fatalf("unexpected delta: %+v", d)
	}
}

func TestDiffFileReplacedByDir(t *testing.T) {
	local := Build([]Leaf{{Path: "x/inner.f", Hash: h("i")}})
	remote := Build([]Leaf{{Path: "x", Hash: h("x-file")}})
	le, _ := local.Entries("")
	re, _ := remote.Entries("")
	d := Diff("", le, re)
	if !reflect.DeepEqual(d.LocalOnly, []string{"x"}) || !reflect.DeepEqual(d.RemovedFiles, []string{"x"}) {
		t.Fatalf("kind flip delta: %+v", d)
	}
}

// TestWalkVisitsOnlyDivergence pins the core reconciliation property on a
// wide tree: the number of directories a walk must fetch is proportional to
// the divergence, not the file count.
func TestWalkVisitsOnlyDivergence(t *testing.T) {
	mk := func(edit int) *Tree {
		var leaves []Leaf
		for p := 0; p < 50; p++ {
			for f := 0; f < 20; f++ {
				content := fmt.Sprintf("pkg%d/file%d", p, f)
				if p == 7 && f == edit {
					content += " edited"
				}
				leaves = append(leaves, Leaf{
					Path: fmt.Sprintf("src/pkg%02d/f%02d.f", p, f),
					Hash: h(content),
				})
			}
		}
		return Build(leaves)
	}
	local, remote := mk(3), mk(-1)
	fetched := 0
	frontier := []string{""}
	var changed []string
	for len(frontier) > 0 {
		var next []string
		for _, dir := range frontier {
			fetched++
			le, _ := local.Entries(dir)
			re, _ := remote.Entries(dir)
			d := Diff(dir, le, re)
			changed = append(changed, d.ChangedFiles...)
			next = append(next, d.WalkBoth...)
			next = append(next, d.RemoteOnly...)
		}
		frontier = next
	}
	if !reflect.DeepEqual(changed, []string{"src/pkg07/f03.f"}) {
		t.Fatalf("changed = %v", changed)
	}
	// Root, src, and the one divergent package: 3 fetches for 1000 files.
	if fetched != 3 {
		t.Fatalf("walk fetched %d directories, want 3", fetched)
	}
}
