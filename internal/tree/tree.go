// Package tree builds Merkle-style summaries of workspace file sets for
// directory reconciliation (protocol v4). A summary's leaves are files —
// each identified by its slash path relative to the workspace root and
// hashed by its chunk-manifest fingerprint — and its interior nodes are
// directories, hashed over their children in sorted name order. Two sides
// holding the same summary root therefore hold byte-identical file sets,
// and when the roots differ, walking only the directories whose hashes
// differ reaches every divergent file in communication proportional to the
// difference, not the workspace size.
package tree

import (
	"encoding/binary"
	"path"
	"sort"
	"strings"

	"shadowedit/internal/chunk"
)

// Leaf is one file in a summary: its slash path relative to the workspace
// root (no leading slash) and the fingerprint of its chunk manifest.
type Leaf struct {
	Path string
	Hash chunk.Hash
}

// Entry is one name in a directory node: a file (leaf hash) or a
// subdirectory (interior hash).
type Entry struct {
	Name string
	Hash chunk.Hash
	Dir  bool
}

// Tree is an immutable summary. The zero value is not usable; Build returns
// a valid tree for any leaf set, including the empty one.
type Tree struct {
	dirs  map[string][]Entry // relative dir path ("" = root) → sorted entries
	root  chunk.Hash
	count int
}

// Build constructs the summary of the given leaves. Leaf order does not
// matter; the result is canonical. Paths must be clean relative slash paths
// ("src/pkg/a.f"); a directory exists in the tree exactly when a leaf lies
// beneath it, so empty directories — invisible to reconciliation — are not
// represented.
func Build(leaves []Leaf) *Tree {
	t := &Tree{dirs: map[string][]Entry{"": nil}, count: len(leaves)}
	type childSet map[string]Entry
	children := map[string]childSet{"": {}}
	ensure := func(dir string) childSet {
		cs, ok := children[dir]
		if !ok {
			cs = childSet{}
			children[dir] = cs
		}
		return cs
	}
	for _, lf := range leaves {
		// Register the file with its parent, and every ancestor directory
		// with its own parent.
		dir, name := split(lf.Path)
		ensure(dir)[name] = Entry{Name: name, Hash: lf.Hash}
		for dir != "" {
			parent, dname := split(dir)
			cs := ensure(parent)
			if _, ok := cs[dname]; !ok {
				cs[dname] = Entry{Name: dname, Dir: true}
			}
			dir = parent
		}
	}
	// Hash bottom-up: deepest directories first, so a directory's entry in
	// its parent carries its finished hash.
	paths := make([]string, 0, len(children))
	for p := range children {
		paths = append(paths, p)
	}
	sort.Slice(paths, func(i, j int) bool { return depth(paths[i]) > depth(paths[j]) })
	hashes := make(map[string]chunk.Hash, len(paths))
	for _, p := range paths {
		cs := children[p]
		entries := make([]Entry, 0, len(cs))
		for _, e := range cs {
			if e.Dir {
				e.Hash = hashes[path.Join(p, e.Name)]
			}
			entries = append(entries, e)
		}
		sort.Slice(entries, func(i, j int) bool { return entries[i].Name < entries[j].Name })
		t.dirs[p] = entries
		hashes[p] = hashEntries(entries)
	}
	t.root = hashes[""]
	return t
}

// hashEntries computes a directory's interior hash: each child's
// length-prefixed name, kind flag and hash, in sorted name order.
func hashEntries(entries []Entry) chunk.Hash {
	var buf []byte
	for _, e := range entries {
		buf = binary.AppendUvarint(buf, uint64(len(e.Name)))
		buf = append(buf, e.Name...)
		if e.Dir {
			buf = append(buf, 1)
		} else {
			buf = append(buf, 0)
		}
		buf = append(buf, e.Hash[:]...)
	}
	return chunk.HashOf(buf)
}

// Root returns the summary's root hash.
func (t *Tree) Root() chunk.Hash { return t.root }

// Count returns the number of files summarized.
func (t *Tree) Count() int { return t.count }

// Entries returns a directory's sorted children and whether the directory
// exists in the tree. The returned slice is owned by the tree; callers must
// not modify it.
func (t *Tree) Entries(dir string) ([]Entry, bool) {
	es, ok := t.dirs[dir]
	return es, ok
}

// FilesUnder returns the relative paths of every file at or beneath dir, in
// sorted order; nil when the directory does not exist.
func (t *Tree) FilesUnder(dir string) []string {
	es, ok := t.dirs[dir]
	if !ok {
		return nil
	}
	var out []string
	for _, e := range es {
		p := path.Join(dir, e.Name)
		if e.Dir {
			out = append(out, t.FilesUnder(p)...)
		} else {
			out = append(out, p)
		}
	}
	return out
}

// DirDelta classifies the divergence between local and remote listings of
// one directory: the files to (re)notify, the files only the remote side
// still has, and the subdirectories each further step of the walk must
// visit.
type DirDelta struct {
	// ChangedFiles are relative paths present locally whose remote hash is
	// absent or different — the files to notify.
	ChangedFiles []string
	// RemovedFiles are relative paths only the remote side lists.
	RemovedFiles []string
	// WalkBoth are subdirectories present on both sides with differing
	// hashes — the next level of the remote walk.
	WalkBoth []string
	// LocalOnly are subdirectories only the local side has; everything
	// beneath them is changed and can be enumerated locally.
	LocalOnly []string
	// RemoteOnly are subdirectories only the remote side has; their
	// listings must be fetched to enumerate the removals beneath them.
	RemoteOnly []string
}

// Diff merges one directory's local and remote listings (both sorted by
// name, either possibly nil) into a DirDelta. dir is the directory's
// relative path, used to qualify the returned paths.
func Diff(dir string, local, remote []Entry) DirDelta {
	var d DirDelta
	i, j := 0, 0
	for i < len(local) || j < len(remote) {
		switch {
		case j >= len(remote) || (i < len(local) && local[i].Name < remote[j].Name):
			e := local[i]
			i++
			if e.Dir {
				d.LocalOnly = append(d.LocalOnly, path.Join(dir, e.Name))
			} else {
				d.ChangedFiles = append(d.ChangedFiles, path.Join(dir, e.Name))
			}
		case i >= len(local) || local[i].Name > remote[j].Name:
			e := remote[j]
			j++
			if e.Dir {
				d.RemoteOnly = append(d.RemoteOnly, path.Join(dir, e.Name))
			} else {
				d.RemovedFiles = append(d.RemovedFiles, path.Join(dir, e.Name))
			}
		default:
			le, re := local[i], remote[j]
			i++
			j++
			p := path.Join(dir, le.Name)
			switch {
			case le.Dir != re.Dir:
				// A file replaced a directory (or vice versa): everything
				// local beneath the name is new, everything remote is gone.
				if le.Dir {
					d.LocalOnly = append(d.LocalOnly, p)
				} else {
					d.ChangedFiles = append(d.ChangedFiles, p)
				}
				if re.Dir {
					d.RemoteOnly = append(d.RemoteOnly, p)
				} else {
					d.RemovedFiles = append(d.RemovedFiles, p)
				}
			case le.Hash == re.Hash:
				// Identical subtree or file: skip.
			case le.Dir:
				d.WalkBoth = append(d.WalkBoth, p)
			default:
				d.ChangedFiles = append(d.ChangedFiles, p)
			}
		}
	}
	return d
}

// split separates a relative path into its parent directory and final name.
func split(p string) (dir, name string) {
	if i := strings.LastIndexByte(p, '/'); i >= 0 {
		return p[:i], p[i+1:]
	}
	return "", p
}

// depth counts a relative path's separators ("" is the root at depth 0).
func depth(p string) int {
	if p == "" {
		return 0
	}
	return strings.Count(p, "/") + 1
}
