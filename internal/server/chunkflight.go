package server

import (
	"sync"

	"shadowedit/internal/chunk"
	"shadowedit/internal/naming"
)

// chunkFlights coalesces concurrent chunk fetches across sessions — the
// chunk-granularity sibling of cache.Flights. When several users upload
// near-identical content at once, every session's manifest is missing the
// same chunks; without coalescing the server would ask each client for all
// of them and receive the shared content once per user. Instead, the first
// assembly to miss a chunk claims the fetch and every later assembly
// enrolls as a waiter: when the chunk arrives (by any road — the claimed
// ChunkReq answer or another session's inline data), waiters resolve against
// the store without another byte on the wire.
//
// A claim can die with its assembly (abort, supersession, session teardown)
// or come back unanswered; the flight is then failed and its waiters poked,
// and the first waiter still needing the chunk claims a fresh fetch from its
// own client — which advertised the chunk in its manifest and so can supply
// it. Waiters always re-check the store before waiting again, so a stale
// flight never strands an assembly.
type chunkFlights struct {
	mu      sync.Mutex
	pending map[chunk.Hash]*chunkFlight
}

type chunkFlight struct {
	owner   *session
	waiters []chunkWaiter
}

// chunkWaiter names one assembly awaiting a chunk: the session and the file
// whose pendingAssembly lists the hash as missing.
type chunkWaiter struct {
	ss *session
	id naming.ShadowID
}

func newChunkFlights() *chunkFlights {
	return &chunkFlights{pending: make(map[chunk.Hash]*chunkFlight)}
}

// claim makes (ss, id) the fetcher for h when no fetch is in flight,
// reporting true; otherwise the assembly is enrolled as a waiter and claim
// reports false. May be called with ss.mu held (flights.mu is interior to
// every session mutex).
func (f *chunkFlights) claim(h chunk.Hash, ss *session, id naming.ShadowID) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	if fl, ok := f.pending[h]; ok {
		fl.waiters = append(fl.waiters, chunkWaiter{ss: ss, id: id})
		return false
	}
	f.pending[h] = &chunkFlight{owner: ss}
	return true
}

// arrived retires the flight for h (the chunk is now in the store) and
// returns the waiters to poke. Callers must notify with no session mutex
// held. The chunk may have arrived from a session other than the claimed
// owner (inline data races the fetch); popping on first arrival is correct
// either way — the superseded answer admits as a duplicate Put.
func (f *chunkFlights) arrived(h chunk.Hash) []chunkWaiter {
	return f.pop(h)
}

// fail retires the flight for h without the chunk and returns the waiters,
// who re-resolve: against the store first, then by claiming a fresh fetch.
func (f *chunkFlights) fail(h chunk.Hash) []chunkWaiter {
	return f.pop(h)
}

func (f *chunkFlights) pop(h chunk.Hash) []chunkWaiter {
	f.mu.Lock()
	fl := f.pending[h]
	if fl != nil {
		delete(f.pending, h)
	}
	f.mu.Unlock()
	if fl == nil {
		return nil
	}
	return fl.waiters
}
