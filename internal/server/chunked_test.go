package server

import (
	"bytes"
	"testing"
	"time"

	"shadowedit/internal/chunk"
	"shadowedit/internal/diff"
	"shadowedit/internal/wire"
)

// manifestFor splits content and builds the v3 wire frames for it: the
// manifest (without inline chunks) and the per-chunk payloads by hash.
func manifestFor(ref wire.FileRef, version uint64, content []byte) (*wire.FileManifest, map[chunk.Hash][]byte) {
	m := chunk.Split(content, chunk.DefaultParams)
	fm := &wire.FileManifest{File: ref, Version: version, Sum: diff.Checksum(content)}
	payload := make(map[chunk.Hash][]byte, len(m))
	off := 0
	for _, r := range m {
		fm.Chunks = append(fm.Chunks, wire.ChunkRef{Hash: r.Hash, Len: r.Len})
		payload[r.Hash] = content[off : off+int(r.Len)]
		off += int(r.Len)
	}
	return fm, payload
}

// inlineAll attaches every chunk's bytes to the manifest.
func inlineAll(fm *wire.FileManifest, payload map[chunk.Hash][]byte) {
	seen := make(map[chunk.Hash]bool)
	for i, c := range fm.Chunks {
		h := chunk.Hash(c.Hash)
		if seen[h] {
			continue
		}
		seen[h] = true
		fm.Inline = append(fm.Inline, wire.InlineChunk{Index: uint32(i), Data: payload[h]})
	}
}

// chunkContent builds content big enough to split into several chunks.
func chunkContent(seed byte, n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(int(seed) + i*7 + i>>6)
	}
	return b
}

func TestHelloEchoesNegotiatedProtocol(t *testing.T) {
	r := newRig(t, Config{})
	r.send(t, &wire.Hello{Protocol: wire.ProtocolVersion, User: "u", Domain: "d", ClientHost: "ws"})
	ok, isOK := r.recv(t).(*wire.HelloOK)
	if !isOK {
		t.Fatalf("hello reply = %#v", ok)
	}
	if ok.Protocol != wire.ProtocolVersion {
		t.Fatalf("HelloOK.Protocol = %d, want %d", ok.Protocol, wire.ProtocolVersion)
	}
}

func TestHelloClassicClientGetsNoProtocolField(t *testing.T) {
	r := newRig(t, Config{})
	r.send(t, &wire.Hello{Protocol: 2, User: "u", Domain: "d", ClientHost: "ws"})
	ok, isOK := r.recv(t).(*wire.HelloOK)
	if !isOK {
		t.Fatalf("hello reply = %#v", ok)
	}
	if ok.Protocol != 0 {
		t.Fatalf("HelloOK.Protocol = %d, want 0 for a v2 client", ok.Protocol)
	}
}

func TestChunkedInlineManifestStores(t *testing.T) {
	r := newRig(t, Config{})
	r.hello(t)
	content := chunkContent(1, 8192)
	fm, payload := manifestFor(testRef, 1, content)
	inlineAll(fm, payload)
	r.send(t, fm)
	ack, ok := r.recv(t).(*wire.FileAck)
	if !ok || ack.Version != 1 {
		t.Fatalf("reply = %#v, want ack v1", ack)
	}
	id := r.srv.dir.Intern(testRef)
	e, ok := r.srv.cache.Get(id)
	if !ok || !bytes.Equal(e.Content, content) {
		t.Fatal("cache does not hold the assembled content")
	}
	if got := r.srv.Metrics().ManifestSends; got != 1 {
		t.Fatalf("manifest count = %d, want 1", got)
	}
}

func TestChunkedMissingChunksFetched(t *testing.T) {
	r := newRig(t, Config{})
	r.hello(t)
	content := chunkContent(2, 8192)
	fm, payload := manifestFor(testRef, 1, content)
	// No inline chunks: the server must request every gap.
	r.send(t, fm)
	req, ok := r.recv(t).(*wire.ChunkReq)
	if !ok {
		t.Fatalf("reply = %#v, want ChunkReq", req)
	}
	if len(req.Hashes) != len(payload) {
		t.Fatalf("requested %d chunks, want %d", len(req.Hashes), len(payload))
	}
	cd := &wire.ChunkData{File: testRef, Version: 1}
	for _, hb := range req.Hashes {
		cd.Chunks = append(cd.Chunks, wire.ChunkBlob{Hash: hb, Data: payload[chunk.Hash(hb)]})
	}
	r.send(t, cd)
	ack, isAck := r.recv(t).(*wire.FileAck)
	if !isAck || ack.Version != 1 {
		t.Fatalf("reply = %#v, want ack v1", ack)
	}
	id := r.srv.dir.Intern(testRef)
	if e, ok := r.srv.cache.Get(id); !ok || !bytes.Equal(e.Content, content) {
		t.Fatal("cache does not hold the assembled content")
	}
	snap := r.srv.Metrics()
	if snap.Rehydrations != 1 {
		t.Fatalf("rehydrations = %d, want 1", snap.Rehydrations)
	}
	if snap.ChunksRequested != int64(len(payload)) {
		t.Fatalf("chunks requested = %d, want %d", snap.ChunksRequested, len(payload))
	}
}

func TestChunkedCrossFileDedupNoRefetch(t *testing.T) {
	r := newRig(t, Config{})
	r.hello(t)
	content := chunkContent(3, 8192)
	fmA, payload := manifestFor(testRef, 1, content)
	inlineAll(fmA, payload)
	r.send(t, fmA)
	if ack, ok := r.recv(t).(*wire.FileAck); !ok || ack.Version != 1 {
		t.Fatalf("reply = %#v, want ack", ack)
	}
	// A second file with identical content, nothing inlined: every chunk is
	// already resident, so the manifest alone must complete the transfer.
	refB := wire.FileRef{Domain: "d", FileID: "ws:/u/g.dat"}
	fmB, _ := manifestFor(refB, 1, content)
	r.send(t, fmB)
	if ack, ok := r.recv(t).(*wire.FileAck); !ok || ack.Version != 1 {
		t.Fatalf("reply = %#v, want ack without any ChunkReq", ack)
	}
	idB := r.srv.dir.Intern(refB)
	if e, ok := r.srv.cache.Get(idB); !ok || !bytes.Equal(e.Content, content) {
		t.Fatal("cache does not hold B's content")
	}
	st := r.srv.cache.Stats()
	if st.LogicalBytes != 2*int64(len(content)) {
		t.Fatalf("logical bytes = %d, want %d", st.LogicalBytes, 2*len(content))
	}
	if st.Bytes != int64(len(content)) {
		t.Fatalf("unique bytes = %d, want %d (identical content stored once)", st.Bytes, len(content))
	}
}

func TestChunkedIncompleteAnswerFallsBackToFullPull(t *testing.T) {
	r := newRig(t, Config{})
	r.hello(t)
	content := chunkContent(4, 8192)
	fm, payload := manifestFor(testRef, 1, content)
	r.send(t, fm)
	req, ok := r.recv(t).(*wire.ChunkReq)
	if !ok || len(req.Hashes) < 2 {
		t.Fatalf("reply = %#v, want ChunkReq for several chunks", req)
	}
	// Answer with all but one chunk — as a client whose store moved on would.
	cd := &wire.ChunkData{File: testRef, Version: 1}
	for _, hb := range req.Hashes[1:] {
		cd.Chunks = append(cd.Chunks, wire.ChunkBlob{Hash: hb, Data: payload[chunk.Hash(hb)]})
	}
	r.send(t, cd)
	pull, isPull := r.recv(t).(*wire.Pull)
	if !isPull {
		t.Fatalf("reply = %#v, want full Pull fallback", pull)
	}
	if pull.HaveVersion != 0 || pull.WantVersion != 1 {
		t.Fatalf("pull = %+v, want full pull of v1", pull)
	}
	// The aborted assembly must have released its pins: flushing the cache
	// leaves the store empty.
	r.srv.cache.Flush()
	if got := r.srv.cache.Bytes(); got != 0 {
		t.Fatalf("chunk store holds %d bytes after aborted assembly", got)
	}
}

func TestChunkedEvictionRehydratesOnlyMissingChunks(t *testing.T) {
	r := newRig(t, Config{})
	r.hello(t)
	content := chunkContent(5, 16384)
	fm, payload := manifestFor(testRef, 1, content)
	inlineAll(fm, payload)
	r.send(t, fm)
	if ack, ok := r.recv(t).(*wire.FileAck); !ok || ack.Version != 1 {
		t.Fatalf("reply = %#v, want ack", ack)
	}
	// Disk pressure: the entry is evicted and its chunks freed.
	id := r.srv.dir.Intern(testRef)
	r.srv.cache.Evict(id)
	if got := r.srv.cache.Bytes(); got != 0 {
		t.Fatalf("store holds %d bytes after eviction", got)
	}
	// Version 2 appends to the same content; the server lost everything, so
	// it must request the chunks — and only the chunks — it is missing.
	content2 := append(append([]byte(nil), content...), chunkContent(6, 2048)...)
	fm2, payload2 := manifestFor(testRef, 2, content2)
	r.send(t, fm2)
	req, ok := r.recv(t).(*wire.ChunkReq)
	if !ok {
		t.Fatalf("reply = %#v, want ChunkReq", req)
	}
	cd := &wire.ChunkData{File: testRef, Version: 2}
	for _, hb := range req.Hashes {
		cd.Chunks = append(cd.Chunks, wire.ChunkBlob{Hash: hb, Data: payload2[chunk.Hash(hb)]})
	}
	r.send(t, cd)
	if ack, isAck := r.recv(t).(*wire.FileAck); !isAck || ack.Version != 2 {
		t.Fatalf("reply = %#v, want ack v2", ack)
	}
	if e, ok := r.srv.cache.Get(id); !ok || !bytes.Equal(e.Content, content2) {
		t.Fatal("cache does not hold the rehydrated content")
	}
	if got := r.srv.Metrics().Rehydrations; got != 1 {
		t.Fatalf("rehydrations = %d, want 1", got)
	}
}

// secondSession dials another connection to the rig's server and completes
// the v3 handshake, modelling a second concurrent user.
func (r *rig) secondSession(t *testing.T) *rig {
	t.Helper()
	conn, err := r.host.Dial("super", 1)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = conn.Close() })
	r2 := &rig{srv: r.srv, conn: conn, host: r.host}
	r2.hello(t)
	return r2
}

// waitForWaiters blocks until n chunk flights have at least one enrolled
// waiter — the observable sign that a second manifest coalesced its gaps
// onto fetches already in flight.
func waitForWaiters(t *testing.T, srv *Server, n int) {
	t.Helper()
	for i := 0; i < 5000; i++ {
		srv.chunkFl.mu.Lock()
		waited := 0
		for _, fl := range srv.chunkFl.pending {
			if len(fl.waiters) > 0 {
				waited++
			}
		}
		srv.chunkFl.mu.Unlock()
		if waited >= n {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("second session never enrolled as chunk-flight waiter")
}

func TestChunkedConcurrentUploadCoalesces(t *testing.T) {
	r := newRig(t, Config{})
	r.hello(t)
	r2 := r.secondSession(t)

	// Two users upload identical fresh content at the same time. The first
	// manifest claims every chunk fetch; the second must ride those flights
	// and never see a ChunkReq of its own.
	content := chunkContent(8, 8192)
	refB := wire.FileRef{Domain: "d", FileID: "ws:/u/g.dat"}
	fmA, payload := manifestFor(testRef, 1, content)
	fmB, _ := manifestFor(refB, 1, content)

	r.send(t, fmA)
	req, ok := r.recv(t).(*wire.ChunkReq)
	if !ok {
		t.Fatalf("reply = %#v, want ChunkReq", req)
	}
	r2.send(t, fmB)
	waitForWaiters(t, r.srv, len(req.Hashes))

	cd := &wire.ChunkData{File: testRef, Version: 1}
	for _, hb := range req.Hashes {
		cd.Chunks = append(cd.Chunks, wire.ChunkBlob{Hash: hb, Data: payload[chunk.Hash(hb)]})
	}
	r.send(t, cd)
	if ack, isAck := r.recv(t).(*wire.FileAck); !isAck || ack.Version != 1 {
		t.Fatalf("owner reply = %#v, want ack v1", ack)
	}
	// The waiter's very next frame is its ack: the owner's chunks completed
	// its assembly with no second fetch round.
	if ack, isAck := r2.recv(t).(*wire.FileAck); !isAck || ack.Version != 1 {
		t.Fatalf("waiter reply = %#v, want ack v1 with no ChunkReq", ack)
	}
	for _, ref := range []wire.FileRef{testRef, refB} {
		id := r.srv.dir.Intern(ref)
		if e, ok := r.srv.cache.Get(id); !ok || !bytes.Equal(e.Content, content) {
			t.Fatalf("cache does not hold %v", ref)
		}
	}
	snap := r.srv.Metrics()
	if snap.ChunksRequested != int64(len(payload)) {
		t.Fatalf("chunks requested = %d, want %d (one fetch per unique chunk)",
			snap.ChunksRequested, len(payload))
	}
	st := r.srv.cache.Stats()
	if st.Bytes != int64(len(content)) || st.LogicalBytes != 2*int64(len(content)) {
		t.Fatalf("unique/logical = %d/%d, want %d/%d",
			st.Bytes, st.LogicalBytes, len(content), 2*len(content))
	}
}

func TestChunkedOwnerDeathFailsOverToWaiter(t *testing.T) {
	r := newRig(t, Config{})
	r.hello(t)
	r2 := r.secondSession(t)

	content := chunkContent(9, 8192)
	refB := wire.FileRef{Domain: "d", FileID: "ws:/u/g.dat"}
	fmA, _ := manifestFor(testRef, 1, content)
	fmB, payload := manifestFor(refB, 1, content)

	r.send(t, fmA)
	req, ok := r.recv(t).(*wire.ChunkReq)
	if !ok {
		t.Fatalf("reply = %#v, want ChunkReq", req)
	}
	r2.send(t, fmB)
	waitForWaiters(t, r.srv, len(req.Hashes))

	// The owner dies without answering. Its flights fail over: the waiter
	// must be asked for the chunks its own manifest advertised, and complete
	// at chunk granularity — never with a whole-file fallback.
	_ = r.conn.Close()
	got := make(map[chunk.Hash][]byte)
	for len(got) < len(payload) {
		m := r2.recv(t)
		cr, isReq := m.(*wire.ChunkReq)
		if !isReq {
			t.Fatalf("waiter got %#v, want ChunkReq after owner death", m)
		}
		for _, hb := range cr.Hashes {
			h := chunk.Hash(hb)
			got[h] = payload[h]
		}
	}
	cd := &wire.ChunkData{File: refB, Version: 1}
	for h, data := range got {
		cd.Chunks = append(cd.Chunks, wire.ChunkBlob{Hash: h, Data: data})
	}
	r2.send(t, cd)
	if ack, isAck := r2.recv(t).(*wire.FileAck); !isAck || ack.Version != 1 {
		t.Fatalf("waiter reply = %#v, want ack v1", ack)
	}
	idB := r.srv.dir.Intern(refB)
	if e, ok := r.srv.cache.Get(idB); !ok || !bytes.Equal(e.Content, content) {
		t.Fatal("cache does not hold the failed-over content")
	}
	if snap := r.srv.Metrics(); snap.FullFallbacks != 0 {
		t.Fatalf("full fallbacks = %d, want 0", snap.FullFallbacks)
	}
}

func TestChunkedBadInlineHashRejected(t *testing.T) {
	r := newRig(t, Config{})
	r.hello(t)
	content := chunkContent(7, 4096)
	fm, payload := manifestFor(testRef, 1, content)
	inlineAll(fm, payload)
	fm.Inline[0].Data = append([]byte(nil), fm.Inline[0].Data...)
	fm.Inline[0].Data[0] ^= 0xff // corrupt: data no longer matches its address
	r.send(t, fm)
	if em, ok := r.recv(t).(*wire.ErrorMsg); !ok || em.Code != wire.CodeBadRequest {
		t.Fatalf("reply = %#v, want bad-request error", em)
	}
	// Nothing poisoned, nothing pinned.
	r.srv.cache.Flush()
	if got := r.srv.cache.Bytes(); got != 0 {
		t.Fatalf("chunk store holds %d bytes after rejected manifest", got)
	}
}
