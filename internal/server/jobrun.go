package server

import (
	"fmt"

	"shadowedit/internal/core"
	"shadowedit/internal/jobs"
	"shadowedit/internal/wire"
)

// feedWaitingJobs delivers a freshly arrived file version to every job still
// waiting for it. A newer version than requested also satisfies the wait:
// the cache holds only the latest version, and by connection ordering a
// newer version means the user resubmitted meanwhile — running with fresher
// input matches what a new submit would see.
func (s *Server) feedWaitingJobs(ref wire.FileRef, version uint64, content []byte) {
	key := ref.String()
	s.mu.Lock()
	waiting := make([]*job, 0, 2)
	for _, j := range s.jobs {
		j.mu.Lock()
		want, ok := j.waiting[key]
		if ok && version >= want {
			j.snapshot[j.byRef[key]] = content
			delete(j.waiting, key)
			waiting = append(waiting, j)
		}
		j.mu.Unlock()
	}
	s.mu.Unlock()
	for _, j := range waiting {
		s.maybeSchedule(j)
	}
}

// maybeSchedule queues the job for execution once every input is in hand.
func (s *Server) maybeSchedule(j *job) {
	j.mu.Lock()
	if j.state != wire.JobFetching && j.state != wire.JobQueued {
		j.mu.Unlock()
		return
	}
	if len(j.waiting) > 0 {
		j.mu.Unlock()
		return
	}
	j.state = wire.JobQueued
	j.detail = "waiting for a processor"
	j.mu.Unlock()

	if err := s.pool.Submit(func() { s.runJob(j) }); err != nil {
		j.setState(wire.JobFailed, "server shutting down")
	}
}

// runJob executes a ready job on the simulated supercomputer and delivers
// its output.
func (s *Server) runJob(j *job) {
	j.mu.Lock()
	if j.state != wire.JobQueued {
		j.mu.Unlock()
		return
	}
	j.state = wire.JobRunning
	j.detail = "executing"
	inputs := make(map[string][]byte, len(j.snapshot))
	for name, content := range j.snapshot {
		inputs[name] = content
	}
	script := j.script
	j.mu.Unlock()

	s.logf("job %d: running for %s@%s", j.id, j.owner.user, j.owner.host)
	res := jobs.Execute(jobs.Request{Script: script, Inputs: inputs})
	s.cfg.Clock.Process(res.CPUTime)

	j.mu.Lock()
	j.result = res
	j.state = wire.JobDone
	j.detail = fmt.Sprintf("exit %d, %d output bytes", res.ExitCode, len(res.Stdout))
	if res.ExitCode != 0 {
		j.detail = fmt.Sprintf("exit %d (errors), %d output bytes", res.ExitCode, len(res.Stdout))
	}
	j.mu.Unlock()
	s.logf("job %d: done (exit %d, %d output bytes, %v cpu)", j.id, res.ExitCode, len(res.Stdout), res.CPUTime)

	s.deliverOutput(j)

	// A finished job frees capacity: the load-aware policy may now pull
	// deferred updates.
	s.mu.Lock()
	sessions := make([]*session, 0, len(s.sessions))
	for _, ss := range s.sessions {
		sessions = append(sessions, ss)
	}
	s.mu.Unlock()
	for _, ss := range sessions {
		ss.drainDeferred()
	}
}

// deliverOutput pushes a finished job's results to the right client. "When
// remote execution of a job completes, the shadow server contacts the client
// to transfer the output" (§6.2); with RouteHost set, delivery goes to a
// session from that host instead (§8.3 output routing). Output for a client
// that is not connected — routed hosts without a session, or submitters that
// disconnected mid-job — is held and flushed when a matching session says
// hello.
func (s *Server) deliverOutput(j *job) {
	if j.routeHost != "" {
		s.deliverOrHold(j,
			func(ss *session) bool { return ss.clientHost == j.routeHost },
			func() { s.routed[j.routeHost] = append(s.routed[j.routeHost], j.id) },
			fmt.Sprintf("done; output held for host %q", j.routeHost))
		return
	}
	s.deliverOrHold(j,
		func(ss *session) bool { return ss.identity() == j.owner },
		func() { s.undelivered[j.owner] = append(s.undelivered[j.owner], j.id) },
		"done; output held until the client reconnects")
}

// deliverOrHold sends a job's output to a live session matching the
// predicate, or records it in a hold queue. The lookup and the queueing
// happen under the server mutex — the same mutex the hello handler holds
// while it registers a session's identity and drains the queue — so an
// output can never fall between "no session yet" and "queue already
// drained". Dead sessions discovered mid-send are dropped and the lookup
// retried, so a racing disconnect degrades to queueing, never to loss.
func (s *Server) deliverOrHold(j *job, match func(*session) bool, hold func(), holdMsg string) {
	for {
		s.mu.Lock()
		var target *session
		for _, sess := range s.sessions {
			if !match(sess) {
				continue
			}
			if target == nil || sess.id > target.id {
				target = sess
			}
		}
		if target == nil {
			hold()
			s.mu.Unlock()
			j.setState(wire.JobDone, holdMsg)
			return
		}
		s.mu.Unlock()
		if s.sendOutput(target, j, false) == nil {
			return
		}
		// The chosen session died mid-send; forget it and look again.
		s.dropSession(target)
	}
}

// deliverRoutedTo flushes outputs held for the host a new session arrived
// from. Caller must hold s.mu.
func (s *Server) deliverRoutedToLocked(ss *session) []uint64 {
	if ss.clientHost == "" {
		return nil
	}
	ids := s.routed[ss.clientHost]
	delete(s.routed, ss.clientHost)
	return ids
}

// deliverUndeliveredToLocked takes outputs that completed while their owner
// was disconnected. Caller must hold s.mu.
func (s *Server) deliverUndeliveredToLocked(ss *session) []uint64 {
	owner := ss.identity()
	ids := s.undelivered[owner]
	delete(s.undelivered, owner)
	return ids
}

// repullWaitingInputs re-issues pulls for inputs of the owner's jobs that
// are still waiting for file content — the previous session may have died
// with pulls outstanding, which would otherwise strand the jobs in the
// fetching state forever.
func (s *Server) repullWaitingInputs(ss *session) {
	for _, j := range s.jobsOfOwner(ss.identity()) {
		j.mu.Lock()
		var pending []wire.JobInput
		for _, in := range j.inputs {
			if want, ok := j.waiting[in.File.String()]; ok {
				pending = append(pending, wire.JobInput{File: in.File, Version: want})
			}
		}
		j.mu.Unlock()
		for _, in := range pending {
			// The content may have arrived just as the old session
			// died; feed it straight from the cache rather than
			// asking the client again.
			id := s.dir.Intern(in.File)
			if e, ok := s.cache.Get(id); ok && e.Version >= in.Version {
				s.feedWaitingJobs(in.File, e.Version, e.Content)
				continue
			}
			if ss.pullFile(in.File, in.Version) != nil {
				return
			}
		}
	}
}

// sendHeld transmits previously held outputs to a freshly identified
// session. Failed sends re-enter the hold queues via deliverOutput's normal
// path.
func (s *Server) sendHeld(ss *session, ids []uint64) {
	for _, id := range ids {
		j, ok := s.lookupJob(id)
		if !ok {
			continue
		}
		if s.sendOutput(ss, j, false) != nil {
			// This session is already gone again; requeue for the
			// next one.
			s.dropSession(ss)
			s.deliverOutput(j)
		}
	}
}

// sendOutput transmits a job's results to a session, using reverse shadow
// processing when the submitter asked for it and the receiving session holds
// the previous output of the same script.
func (s *Server) sendOutput(target *session, j *job, forceFull bool) error {
	j.mu.Lock()
	res := j.result
	state := j.state
	scriptSum := j.scriptSum
	wantDelta := j.wantOutputDelta
	j.mu.Unlock()

	mode := wire.OutputFull
	payload := res.Stdout
	compressOn := s.cfg.Compress

	if compressOn || (wantDelta && !forceFull) {
		var prev []byte
		if wantDelta && !forceFull {
			prev = target.prevOutput(scriptSum)
		}
		m, p, err := core.OutputTransfer(prev, res.Stdout, s.cfg.Algorithm, compressOn, s.cfg.Clock)
		if err == nil {
			mode, payload = m, p
		} else {
			compressOn = false
		}
	}

	s.counters.AddOutput(len(payload) + len(res.Stderr))
	return target.send(&wire.Output{
		Job:        j.id,
		State:      state,
		ExitCode:   res.ExitCode,
		Mode:       mode,
		Stdout:     payload,
		Stderr:     res.Stderr,
		Compressed: compressOn,
	})
}
