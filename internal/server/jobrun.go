package server

import (
	"fmt"
	"log/slog"

	"shadowedit/internal/cache"
	"shadowedit/internal/core"
	"shadowedit/internal/jobs"
	"shadowedit/internal/naming"
	"shadowedit/internal/wire"
)

// addWaiter indexes a job under the file it is waiting for, so the file's
// arrival touches exactly the jobs that want it.
func (s *Server) addWaiter(id naming.ShadowID, j *job) {
	s.waitMu.Lock()
	s.waiters[id] = append(s.waiters[id], j)
	s.waitMu.Unlock()
}

// feedWaitingJobs delivers a freshly arrived file version to every job still
// waiting for it. A newer version than requested also satisfies the wait:
// the cache holds only the latest version, and by connection ordering a
// newer version means the user resubmitted meanwhile — running with fresher
// input matches what a new submit would see. The waiters index makes this
// O(jobs waiting for this file), not O(all jobs ever submitted). The file is
// named by its interned id (callers always hold it already; taking it avoids
// a re-intern on this per-arrival path).
func (s *Server) feedWaitingJobs(id naming.ShadowID, version uint64, content []byte) {
	// Peer requests parked on this arrival are answered first (a no-op
	// outside a cluster): the owner that pulled once now forwards the
	// version to every instance that asked while the pull was in flight.
	s.feedPeerWaiters(id, version)
	s.waitMu.Lock()
	list := s.waiters[id]
	if len(list) == 0 {
		s.waitMu.Unlock()
		return
	}
	// Nearly always one job waits per arrival; the stack array keeps the
	// common case allocation-free.
	var readyArr [4]*job
	ready := readyArr[:0]
	remaining := list[:0]
	for _, j := range list {
		j.mu.Lock()
		want, ok := j.waiting[id]
		switch {
		case ok && version >= want:
			j.snapshot[j.byRef[id]] = content
			delete(j.waiting, id)
			ready = append(ready, j)
		case ok:
			remaining = append(remaining, j) // still needs a newer version
		}
		j.mu.Unlock()
	}
	// Keep the (empty) slice in the map rather than deleting the entry: a
	// file is waited on again every cycle, and retaining the slice's
	// capacity makes the next addWaiter append allocation-free. Growth is
	// bounded by the number of distinct files, like the directory itself.
	s.waiters[id] = remaining
	s.waitMu.Unlock()
	for _, j := range ready {
		s.maybeSchedule(j)
	}
}

// maybeSchedule queues the job for execution once every input is in hand.
func (s *Server) maybeSchedule(j *job) {
	j.mu.Lock()
	if j.state != wire.JobFetching && j.state != wire.JobQueued {
		j.mu.Unlock()
		return
	}
	if len(j.waiting) > 0 {
		j.mu.Unlock()
		return
	}
	j.state = wire.JobQueued
	j.detail = "waiting for a processor"
	if s.cfg.Obs != nil && !j.queuedStamped {
		j.queuedAt = s.cfg.Obs.Now()
		j.queuedStamped = true
	}
	if j.waitSpan == nil {
		j.waitSpan = s.cfg.Obs.StartSpan(j.tc, "server.job-wait").SetJob(j.id)
	}
	j.mu.Unlock()

	if s.cfg.Obs.LogEnabled(slog.LevelDebug) {
		s.cfg.Obs.Log(slog.LevelDebug, "job runnable",
			slog.Uint64("job", j.id), slog.String("user", j.owner.user))
	}
	if err := s.pool.Submit(func() { s.runJob(j) }); err != nil {
		j.setState(wire.JobFailed, "server shutting down")
	}
}

// runJob executes a ready job on the simulated supercomputer and delivers
// its output.
func (s *Server) runJob(j *job) {
	j.mu.Lock()
	if j.state != wire.JobQueued {
		j.mu.Unlock()
		return
	}
	j.state = wire.JobRunning
	j.detail = "executing"
	// Once running, feedWaitingJobs no longer writes the snapshot (the
	// waiting set is empty), so the executor can read it directly — no
	// defensive copy on the per-job hot path.
	inputs := j.snapshot
	script := j.script
	cmds := j.cmds
	waitSpan := j.waitSpan
	j.waitSpan = nil
	j.mu.Unlock()
	waitSpan.Finish()
	runSpan := s.cfg.Obs.StartSpan(j.tc, "server.job-run").SetJob(j.id)

	if s.cfg.Logf != nil {
		s.logf("job %d: running for %s@%s", j.id, j.owner.user, j.owner.host)
	}
	res := jobs.Execute(jobs.Request{Script: script, Commands: cmds, Inputs: inputs})
	s.cfg.Clock.Process(res.CPUTime)
	if runSpan != nil {
		runSpan.Annotate(fmt.Sprintf("exit %d", res.ExitCode)).Finish()
	}

	j.mu.Lock()
	j.result = res
	j.state = wire.JobDone
	// detail is rendered lazily by status(): a STATUS_REQ is rare, while
	// formatting two Sprintfs per finished job is pure hot-path cost.
	j.detail = ""
	queuedAt, stamped := j.queuedAt, j.queuedStamped
	j.mu.Unlock()
	if stamped {
		s.cfg.Obs.ObserveJobLifetime(queuedAt)
	}
	if s.cfg.Logf != nil {
		s.logf("job %d: done (exit %d, %d output bytes, %v cpu)", j.id, res.ExitCode, len(res.Stdout), res.CPUTime)
	}
	if s.cfg.Obs.LogEnabled(slog.LevelInfo) {
		s.cfg.Obs.Log(slog.LevelInfo, "job done",
			slog.Uint64("job", j.id), slog.String("user", j.owner.user),
			slog.Int("exit", int(res.ExitCode)), slog.Int("stdout_bytes", len(res.Stdout)),
			slog.Duration("cpu", res.CPUTime))
	}
	if res.ExitCode != 0 {
		// A failing job dumps the submitter's flight recorder: the events
		// leading up to the failure are exactly what a postmortem wants,
		// and the session stays alive (no dumpOnce).
		if sess := j.submitterSession(); sess != nil && sess.rec != nil {
			sess.record("job", "failed", j.tc, fmt.Sprintf("job %d exit %d", j.id, res.ExitCode))
			s.recordFlightDump(sess, fmt.Sprintf("job %d failed (exit %d)", j.id, res.ExitCode))
		}
	}

	s.deliverOutput(j)

	// A finished job frees capacity: the load-aware policy may now pull
	// deferred updates.
	if s.cfg.Pull == PullLoadAware {
		for _, ss := range s.sessions.snapshot() {
			ss.drainDeferred()
		}
	}
}

// deliverOutput pushes a finished job's results to the right client. "When
// remote execution of a job completes, the shadow server contacts the client
// to transfer the output" (§6.2); with RouteHost set, delivery goes to a
// session from that host instead (§8.3 output routing). Output for a client
// that is not connected — routed hosts without a session, or submitters that
// disconnected mid-job — is held and flushed when a matching session says
// hello.
func (s *Server) deliverOutput(j *job) {
	if j.routeHost != "" {
		s.deliverOrHold(j,
			func(ss *session) bool { return ss.clientHost == j.routeHost },
			func() { s.routed[j.routeHost] = append(s.routed[j.routeHost], j.id) },
			fmt.Sprintf("done; output held for host %q", j.routeHost))
		return
	}
	s.deliverOrHold(j,
		func(ss *session) bool { return ss.identity() == j.owner },
		func() { s.undelivered[j.owner] = append(s.undelivered[j.owner], j.id) },
		"done; output held until the client reconnects")
}

// deliverOrHold sends a job's output to a live session matching the
// predicate, or records it in a hold queue. The lookup and the queueing
// happen under deliverMu — the same mutex the hello handler holds while it
// registers a session's identity and drains the queue — so an output can
// never fall between "no session yet" and "queue already drained". Dead
// sessions discovered mid-send are dropped and the lookup retried, so a
// racing disconnect degrades to queueing, never to loss.
func (s *Server) deliverOrHold(j *job, match func(*session) bool, hold func(), holdMsg string) {
	for {
		s.deliverMu.Lock()
		var target *session
		for _, sess := range s.sessions.snapshot() {
			if !match(sess) {
				continue
			}
			if target == nil || sess.id > target.id {
				target = sess
			}
		}
		if target == nil {
			hold()
			s.deliverMu.Unlock()
			j.setState(wire.JobDone, holdMsg)
			return
		}
		s.deliverMu.Unlock()
		if s.sendOutput(target, j, false) == nil {
			return
		}
		// The chosen session died mid-send; forget it and look again.
		s.dropSession(target)
	}
}

// deliverRoutedToLocked flushes outputs held for the host a new session
// arrived from. Caller must hold deliverMu.
func (s *Server) deliverRoutedToLocked(ss *session) []uint64 {
	if ss.clientHost == "" {
		return nil
	}
	ids := s.routed[ss.clientHost]
	delete(s.routed, ss.clientHost)
	return ids
}

// deliverUndeliveredToLocked takes outputs that completed while their owner
// was disconnected. Caller must hold deliverMu.
func (s *Server) deliverUndeliveredToLocked(ss *session) []uint64 {
	owner := ss.identity()
	ids := s.undelivered[owner]
	delete(s.undelivered, owner)
	return ids
}

// repullWaitingInputs re-issues pulls for inputs of the owner's jobs that
// are still waiting for file content — the previous session may have died
// with pulls outstanding, which would otherwise strand the jobs in the
// fetching state forever.
func (s *Server) repullWaitingInputs(ss *session) {
	for _, j := range s.jobsOfOwner(ss.identity()) {
		j.mu.Lock()
		var pending []wire.JobInput
		for _, in := range j.inputs {
			if want, ok := j.waiting[s.dir.Intern(in.File)]; ok {
				pending = append(pending, wire.JobInput{File: in.File, Version: want})
			}
		}
		j.mu.Unlock()
		for _, in := range pending {
			// The content may have arrived just as the old session
			// died; feed it straight from the cache rather than
			// asking the client again.
			id := s.dir.Intern(in.File)
			if e, ok := s.cache.Get(id); ok && e.Version >= in.Version {
				s.feedWaitingJobs(id, e.Version, e.Content)
				continue
			}
			if ss.pullFile(in.File, in.Version, j.tc) != nil {
				return
			}
		}
	}
}

// repullPending re-homes fetches that a dying session (or peer link — both
// own flights by id) owned: any job still waiting for one of the released
// files gets the pull re-issued through its own (surviving) session, so
// pulls that coalesced behind the dead session do not strand live jobs.
func (s *Server) repullPending(deadID uint64, pending []cache.PendingFetch) {
	for _, p := range pending {
		id := s.dir.Intern(p.Ref)
		if e, ok := s.cache.Peek(id); ok && e.Version >= p.Want {
			s.feedWaitingJobs(id, e.Version, e.Content)
			continue
		}
		tried := map[uint64]bool{deadID: true}
		for {
			target, owners := s.repullTarget(id, tried)
			if target == nil {
				// Every waiter's submitting session is gone too: a
				// job outlives its connection, and a re-attached
				// client holds a session this fetch never saw.
				// Without this fallback the interleaving "new
				// session's hello coalesces on the old session's
				// flight, then the old session dies" strands the job
				// in fetching forever — the released flight would be
				// dropped on the floor because only stale j.sess
				// pointers were consulted.
				target = s.liveSessionOf(owners, tried)
			}
			if target == nil {
				// No live session for any waiter: the fetch is
				// dropped here, and the owner's next hello re-pulls
				// it (repullWaitingInputs). Peers parked on the
				// abandoned flight are declined now — their links are
				// healthy, so no teardown would ever answer them —
				// and fall back to pulling from their own clients.
				s.declinePeerWaiters(id)
				break
			}
			if target.pullFile(p.Ref, p.Want, p.TC) == nil {
				break
			}
			// The chosen session died between being picked and the
			// send. Its own ReleaseOwner pass may already have run and
			// missed the flight our pull just registered on it, so
			// undo that registration ourselves and try the next
			// candidate.
			tried[target.id] = true
			s.flights.Release(id, target.id)
		}
	}
}

// repullTarget scans the jobs waiting on the file for one whose submitting
// session is still live (and not in skip). When none is, it returns the
// waiters' owner identities so the caller can fall back to any live session
// of the same client.
func (s *Server) repullTarget(id naming.ShadowID, skip map[uint64]bool) (*session, []identity) {
	s.waitMu.Lock()
	defer s.waitMu.Unlock()
	var owners []identity
	for _, j := range s.waiters[id] {
		j.mu.Lock()
		_, waiting := j.waiting[id]
		sess := j.sess
		owner := j.owner
		j.mu.Unlock()
		if !waiting {
			continue
		}
		if sess != nil && !skip[sess.id] && !sess.dead.Load() {
			return sess, nil
		}
		owners = append(owners, owner)
	}
	return nil, owners
}

// liveSessionOf returns the newest live session belonging to one of the
// given identities, excluding the skip set. Identity reads share deliverMu
// with handleHello's registration, so a session that has said hello is
// visible here.
func (s *Server) liveSessionOf(owners []identity, skip map[uint64]bool) *session {
	if len(owners) == 0 {
		return nil
	}
	want := make(map[identity]bool, len(owners))
	for _, o := range owners {
		want[o] = true
	}
	s.deliverMu.Lock()
	defer s.deliverMu.Unlock()
	var target *session
	for _, sess := range s.sessions.snapshot() {
		if skip[sess.id] || sess.dead.Load() || !want[sess.identity()] {
			continue
		}
		if target == nil || sess.id > target.id {
			target = sess
		}
	}
	return target
}

// sendHeld transmits previously held outputs to a freshly identified
// session. Failed sends re-enter the hold queues via deliverOutput's normal
// path.
func (s *Server) sendHeld(ss *session, ids []uint64) {
	for _, id := range ids {
		j, ok := s.lookupJob(id)
		if !ok {
			continue
		}
		if s.sendOutput(ss, j, false) != nil {
			// This session is already gone again; requeue for the
			// next one.
			s.dropSession(ss)
			s.deliverOutput(j)
		}
	}
}

// sendOutput transmits a job's results to a session, using reverse shadow
// processing when the submitter asked for it and the receiving session holds
// the previous output of the same script. The send is synchronous — the
// caller's hold-and-requeue logic needs the real transport outcome.
func (s *Server) sendOutput(target *session, j *job, forceFull bool) error {
	j.mu.Lock()
	res := j.result
	state := j.state
	scriptSum := j.scriptSum
	wantDelta := j.wantOutputDelta
	j.mu.Unlock()

	mode := wire.OutputFull
	payload := res.Stdout
	compressOn := s.cfg.Compress

	if compressOn || (wantDelta && !forceFull) {
		var prev []byte
		if wantDelta && !forceFull {
			prev = target.prevOutput(scriptSum)
		}
		m, p, err := core.OutputTransfer(prev, res.Stdout, s.cfg.Algorithm, compressOn, s.cfg.Clock)
		if err == nil {
			mode, payload = m, p
		} else {
			compressOn = false
		}
	}

	s.counters.AddOutput(len(payload) + len(res.Stderr))
	modeName := "full"
	if mode == wire.OutputDelta {
		modeName = "delta"
	}
	osp := s.cfg.Obs.StartSpan(j.tc, "server.output").
		SetSession(target.id).SetJob(j.id).Annotate(modeName)
	stamp := s.cfg.Obs.Now()
	err := target.sendSync(&wire.Output{
		Job:        j.id,
		State:      state,
		ExitCode:   res.ExitCode,
		Mode:       mode,
		Stdout:     payload,
		Stderr:     res.Stderr,
		Compressed: compressOn,
	}, ctxOr(osp, j.tc))
	if err != nil {
		osp.Annotate(modeName + "; send failed")
	}
	if target.vt != nil {
		// Virtual time: the writer charges the line with the enqueue-time
		// stamp, and reading the shared simulated clock after the flush
		// would race the receive loop advancing it on the next arrival —
		// end the span at the same instant the transmission is scheduled.
		osp.FinishAt(stamp)
	} else {
		osp.Finish()
	}
	if err == nil {
		// The cycle's server-side work is complete once the output is on
		// the wire; completion is idempotent, so the client closing its own
		// view of the trace is harmless.
		s.cfg.Obs.EndTrace(j.tc)
	}
	return err
}

// submitterSession returns the session the job was submitted on, if it is
// still the one registered (the job keeps the pointer; a dead session still
// identifies the ring to dump).
func (j *job) submitterSession() *session {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.sess
}
