package server

// Protocol v4 directory reconciliation, server side. The server's summary of
// a workspace is built from its own directory and cache: the files of the
// workspace are the ids ever interned beneath the root, and each leaf hash
// is the cached manifest's fingerprint — computed with the same chunking
// parameters the client splits with, so identical content yields identical
// leaves. Files the cache has evicted are simply absent from the summary;
// the client sees them as divergent and renotifies, and the pulls repair the
// cache. The summary is a snapshot: it is built when a TREE_HEAD arrives and
// consulted for the TREE_DIFF walk that follows, so one walk sees one
// consistent tree even while other sessions keep writing.

import (
	"fmt"
	"log/slog"

	"shadowedit/internal/chunk"
	"shadowedit/internal/tree"
	"shadowedit/internal/wire"
)

// buildTree summarizes the server's view of the workspace under root (a
// canonical "host:/abs/dir" file-id prefix) in the session's domain.
func (ss *session) buildTree(root string) *tree.Tree {
	rels, ids := ss.srv.dir.IDsUnder(ss.domain, root)
	leaves := make([]tree.Leaf, 0, len(rels))
	for i, rel := range rels {
		if _, fp, ok := ss.srv.cache.Fingerprint(ids[i]); ok {
			leaves = append(leaves, tree.Leaf{Path: rel, Hash: fp})
		}
	}
	return tree.Build(leaves)
}

// handleTreeHead opens a reconciliation walk: build this side's summary,
// report InSync when the roots already match, and otherwise answer with the
// root directory's listing so the first level of the walk costs no extra
// round trip.
func (ss *session) handleTreeHead(m *wire.TreeHead, tc wire.TraceContext) error {
	ss.srv.counters.AddControl(0)
	sp := ss.srv.cfg.Obs.StartSpan(tc, "server.tree-head").SetSession(ss.id)
	defer sp.Finish()
	t := ss.buildTree(m.Root)
	ss.mu.Lock()
	ss.trees[m.Root] = t
	ss.mu.Unlock()
	if ss.srv.cfg.Obs.LogEnabled(slog.LevelDebug) {
		ss.srv.cfg.Obs.Log(slog.LevelDebug, "tree head",
			slog.Uint64("session", ss.id), slog.String("root", m.Root),
			slog.Int("client_files", int(m.Count)), slog.Int("server_files", t.Count()))
	}
	if t.Root() == chunk.Hash(m.Hash) {
		sp.Annotate("in-sync")
		return ss.sendTraced(&wire.TreeDiff{Root: m.Root, InSync: true}, tc)
	}
	sp.Annotate("divergent")
	reply := &wire.TreeDiff{Root: m.Root}
	appendListing(reply, t, "")
	return ss.sendTraced(reply, tc)
}

// handleTreeDiff answers one step of the walk: the listings of every
// directory the client asked for. A directory this side's summary lacks
// comes back as an empty listing — "nothing beneath it here".
func (ss *session) handleTreeDiff(m *wire.TreeDiff, tc wire.TraceContext) error {
	ss.srv.counters.AddControl(0)
	sp := ss.srv.cfg.Obs.StartSpan(tc, "server.tree-diff").SetSession(ss.id)
	defer sp.Finish()
	ss.mu.Lock()
	t := ss.trees[m.Root]
	ss.mu.Unlock()
	if t == nil {
		// A walk step without a preceding head (reconnect mid-walk):
		// summarize now. The client compares hashes either way.
		t = ss.buildTree(m.Root)
		ss.mu.Lock()
		ss.trees[m.Root] = t
		ss.mu.Unlock()
	}
	reply := &wire.TreeDiff{Root: m.Root, Dirs: make([]wire.TreeDir, 0, len(m.Want))}
	for _, dir := range m.Want {
		appendListing(reply, t, dir)
	}
	return ss.sendTraced(reply, tc)
}

// appendListing appends one directory's listing (possibly empty) to a
// TreeDiff reply.
func appendListing(reply *wire.TreeDiff, t *tree.Tree, dir string) {
	es, _ := t.Entries(dir)
	td := wire.TreeDir{Path: dir, Entries: make([]wire.TreeEntry, len(es))}
	for i, e := range es {
		td.Entries[i] = wire.TreeEntry{Name: e.Name, Hash: e.Hash, Dir: e.Dir}
	}
	reply.Dirs = append(reply.Dirs, td)
}

// handleBatchNotify absorbs the walk's outcome: one frame carrying every
// divergent file. Each notify is answered exactly like a per-file notify
// with one difference — the client is actively waiting for the whole batch
// to be acknowledged, so pulls bypass the lazy/load-aware deferral policy,
// and a file whose cached version is already current is acknowledged
// immediately (the per-file path stays silent there, because a per-file
// notifier never waits). Removed files are dropped from the cache so the
// next walk's summaries agree.
//
// The pulls themselves are windowed, not fired here: a batch can name a
// whole workspace, and this dispatch loop is the only reader of the
// connection — flooding the downlink with pulls while the client floods the
// uplink with answers nobody is reading would wedge both directions.
func (ss *session) handleBatchNotify(m *wire.BatchNotify, tc wire.TraceContext) error {
	ss.srv.counters.AddControl(0)
	sp := ss.srv.cfg.Obs.StartSpan(tc, "server.batch-notify").SetSession(ss.id)
	defer sp.Finish()
	if sp != nil {
		sp.Annotate(fmt.Sprintf("%d notifies, %d removed", len(m.Notifies), len(m.Removed)))
	}
	ss.mu.Lock()
	for _, ne := range m.Notifies {
		ss.batchQueue = append(ss.batchQueue, batchEntry{ne: ne, tc: tc})
	}
	ss.mu.Unlock()
	evicted := 0
	for _, ref := range m.Removed {
		if id, ok := ss.srv.dir.Lookup(ref); ok {
			if ss.srv.cache.Evict(id) {
				evicted++
			}
		}
	}
	// The session's summaries are stale the moment the batch lands (pulls
	// and evictions change the cache); drop them so the next walk starts
	// from a fresh snapshot.
	ss.mu.Lock()
	clear(ss.trees)
	ss.mu.Unlock()
	ss.srv.logf("session %d: batch notify: %d files, %d removed (%d evicted)",
		ss.id, len(m.Notifies), len(m.Removed), evicted)
	return ss.pumpBatch()
}

// batchPullWindow bounds how many batch pulls are outstanding at once. Well
// under the outbound queue depth and the transport's in-flight capacity, so
// the window can never wedge the pipe, but deep enough to keep a slow link's
// pull→answer pipeline full.
const batchPullWindow = 32

// batchEntry is one BATCH_NOTIFY file waiting for its windowed pull.
type batchEntry struct {
	ne wire.NotifyEntry
	tc wire.TraceContext
}

// batchArrived notes that a file's content landed (delta, full copy, or
// chunk manifest) and, if it was a batch pull, admits the next queued entry.
func (ss *session) batchArrived(ref wire.FileRef) error {
	ss.mu.Lock()
	idle := len(ss.batchInflight) == 0 && len(ss.batchQueue) == 0
	ss.mu.Unlock()
	if idle {
		return nil
	}
	id := ss.srv.dir.Intern(ref)
	ss.mu.Lock()
	delete(ss.batchInflight, id)
	ss.mu.Unlock()
	return ss.pumpBatch()
}

// pumpBatch issues queued batch pulls up to the window. Entries the cache
// already covers are acknowledged on the spot; the rest are pulled and
// acknowledged by the normal apply path when their content arrives.
func (ss *session) pumpBatch() error {
	for {
		ss.mu.Lock()
		if len(ss.batchQueue) == 0 || len(ss.batchInflight) >= batchPullWindow {
			ss.mu.Unlock()
			return nil
		}
		e := ss.batchQueue[0]
		ss.batchQueue = ss.batchQueue[1:]
		ss.mu.Unlock()

		id := ss.srv.dir.Intern(e.ne.File)
		if have, ok := ss.srv.cache.Version(id); ok && have >= e.ne.Version {
			// Already current: re-check waiting jobs (same race close as
			// pullFile's short circuit) and acknowledge so the client's
			// sync completion does not stall on a file that needs no
			// transfer.
			if ent, ok := ss.srv.cache.Peek(id); ok {
				ss.srv.feedWaitingJobs(id, ent.Version, ent.Content)
			}
			if err := ss.sendTraced(&wire.FileAck{File: e.ne.File, Version: have}, e.tc); err != nil {
				return err
			}
			continue
		}
		if err := ss.pullFile(e.ne.File, e.ne.Version, e.tc); err != nil {
			return err
		}
		ss.mu.Lock()
		issued := ss.pulled[id] >= e.ne.Version
		if issued {
			// This session's own pull (new or already in flight) covers
			// the entry; its arrival opens the next window slot.
			ss.batchInflight[id] = struct{}{}
		}
		ss.mu.Unlock()
		if issued {
			continue
		}
		// pullFile sent nothing: either the content landed between the
		// check above and the pull (acknowledge now), or another session's
		// flight is fetching it — that arrival feeds jobs but not this
		// client's ack, a coalescing gap the client bounds with its sync
		// context.
		if have, ok := ss.srv.cache.Version(id); ok && have >= e.ne.Version {
			if err := ss.sendTraced(&wire.FileAck{File: e.ne.File, Version: have}, e.tc); err != nil {
				return err
			}
		}
	}
}
