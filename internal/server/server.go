// Package server implements the shadow server that runs at each
// supercomputer site (§6.1): it accepts connections from clients, maintains
// the per-domain shadow cache and its name directory, retrieves file updates
// under demand-driven flow control, schedules and executes batch jobs, and
// transfers results back to the appropriate client.
//
// The server core is built to scale with sessions: the session and job
// tables are lock-striped, counters are atomics, job waiting-sets are
// indexed by file so an arrival feeds exactly the jobs that want it, and
// each session writes through its own pipelined writer goroutine — no
// global mutex sits on the message hot path.
//
// Observability is layered on without touching that property: when
// Config.Obs carries an internal/obs Observer, the server records
// submit→ack, pull→arrival and job queue→complete latency histograms and
// emits structured per-session/per-file events; with Obs nil every
// instrumentation point is a single pointer test. The Sessions, JobCounts
// and Observer accessors feed the shadowd admin endpoint (/sessionz,
// /metrics) without exposing session internals.
package server

import (
	"errors"
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"shadowedit/internal/cache"
	"shadowedit/internal/cluster"
	"shadowedit/internal/core"
	"shadowedit/internal/diff"
	"shadowedit/internal/jobs"
	"shadowedit/internal/metrics"
	"shadowedit/internal/naming"
	"shadowedit/internal/obs"
	"shadowedit/internal/trace"
	"shadowedit/internal/wire"
)

// PullPolicy decides when the server retrieves a newly notified file version
// (§5.2): the demand-driven model leaves the timing entirely to the server.
type PullPolicy int

// Pull policies.
const (
	// PullEager retrieves updates as soon as the notify arrives, so they
	// travel in the background while the user keeps editing.
	PullEager PullPolicy = iota + 1
	// PullLazy retrieves updates only when a submitted job needs them.
	PullLazy
	// PullLoadAware behaves eagerly while the job queue is short and
	// defers retrievals while the host is busy — the overload protection
	// the paper credits the demand-driven design with.
	PullLoadAware
)

// String names the policy.
func (p PullPolicy) String() string {
	switch p {
	case PullEager:
		return "eager"
	case PullLazy:
		return "lazy"
	case PullLoadAware:
		return "load-aware"
	default:
		return fmt.Sprintf("pull-policy(%d)", int(p))
	}
}

// Config parametrizes a Server. The zero value is not valid; use Defaults.
type Config struct {
	// Name is the server's advertised host name.
	Name string
	// CacheCapacity bounds the shadow cache in bytes (<= 0: unbounded).
	CacheCapacity int64
	// CachePolicy selects the cache eviction policy.
	CachePolicy cache.Policy
	// Pull selects the update retrieval policy.
	Pull PullPolicy
	// LoadThreshold is the queued+running job count at which PullLoadAware
	// begins deferring retrievals.
	LoadThreshold int
	// MaxConcurrentJobs bounds simultaneous job execution.
	MaxConcurrentJobs int
	// Algorithm is the differencing algorithm for reverse shadow output.
	Algorithm diff.Algorithm
	// Compress enables compression of output transfers.
	Compress bool
	// Clock receives job CPU charges (the supercomputer's virtual clock
	// in simulations). Nil means no charging.
	Clock core.Clock
	// Logf, when set, receives one line per notable server event
	// (sessions, pulls, transfers, job transitions) — the operational
	// log a daemon writes. Nil disables logging.
	Logf func(format string, args ...any)
	// Obs, when set, records latency histograms (submit→ack,
	// pull→arrival, job queue→complete) and structured per-session
	// events. Nil keeps every instrumentation point down to one pointer
	// test with no allocation — hot paths stay as fast as before.
	Obs *obs.Observer
}

// Defaults returns a production-shaped configuration.
func Defaults(name string) Config {
	return Config{
		Name:              name,
		CacheCapacity:     0,
		CachePolicy:       cache.LRU,
		Pull:              PullEager,
		LoadThreshold:     4,
		MaxConcurrentJobs: 2,
		Algorithm:         diff.HuntMcIlroy,
		Compress:          false,
	}
}

// tableShards is the stripe count for the session and job tables.
const tableShards = 16

// sessionTable is a lock-striped map of live sessions with an atomic count.
type sessionTable struct {
	count  atomic.Int64
	shards [tableShards]struct {
		mu sync.RWMutex
		m  map[uint64]*session
	}
}

func (t *sessionTable) init() {
	for i := range t.shards {
		t.shards[i].m = make(map[uint64]*session)
	}
}

func (t *sessionTable) add(ss *session) {
	sh := &t.shards[ss.id%tableShards]
	sh.mu.Lock()
	sh.m[ss.id] = ss
	sh.mu.Unlock()
	t.count.Add(1)
}

// remove reports whether the session was present (so the first of several
// racing drops does the owner-release work exactly once).
func (t *sessionTable) remove(id uint64) bool {
	sh := &t.shards[id%tableShards]
	sh.mu.Lock()
	_, ok := sh.m[id]
	if ok {
		delete(sh.m, id)
	}
	sh.mu.Unlock()
	if ok {
		t.count.Add(-1)
	}
	return ok
}

func (t *sessionTable) len() int { return int(t.count.Load()) }

// snapshot returns the live sessions at one instant (shard by shard).
func (t *sessionTable) snapshot() []*session {
	out := make([]*session, 0, t.len())
	for i := range t.shards {
		sh := &t.shards[i]
		sh.mu.RLock()
		for _, ss := range sh.m {
			out = append(out, ss)
		}
		sh.mu.RUnlock()
	}
	return out
}

// jobTable is a lock-striped map of all submitted jobs.
type jobTable struct {
	shards [tableShards]struct {
		mu sync.RWMutex
		m  map[uint64]*job
	}
}

func (t *jobTable) init() {
	for i := range t.shards {
		t.shards[i].m = make(map[uint64]*job)
	}
}

func (t *jobTable) add(j *job) {
	sh := &t.shards[j.id%tableShards]
	sh.mu.Lock()
	sh.m[j.id] = j
	sh.mu.Unlock()
}

func (t *jobTable) get(id uint64) (*job, bool) {
	sh := &t.shards[id%tableShards]
	sh.mu.RLock()
	j, ok := sh.m[id]
	sh.mu.RUnlock()
	return j, ok
}

// forEach visits every job (shard by shard, no global order).
func (t *jobTable) forEach(f func(*job)) {
	for i := range t.shards {
		sh := &t.shards[i]
		sh.mu.RLock()
		for _, j := range sh.m {
			f(j)
		}
		sh.mu.RUnlock()
	}
}

// Server is one shadow server instance.
type Server struct {
	cfg      Config
	dir      *naming.Directory
	cache    *cache.Cache
	flights  *cache.Flights
	chunkFl  *chunkFlights
	pool     *jobs.Pool
	counters *metrics.Counters

	nextSession atomic.Uint64
	nextJob     atomic.Uint64
	sessions    sessionTable
	jobs        jobTable

	// waitMu guards waiters, the file-keyed index of jobs whose waiting
	// set references that file. feedWaitingJobs consults only the jobs
	// that actually want the arrived file — O(waiters), not O(all jobs).
	// Keyed by interned file id so the hot arrival path never builds a
	// string key.
	waitMu  sync.Mutex
	waiters map[naming.ShadowID][]*job

	// scriptMu guards scripts, the checksum-keyed cache of parsed job
	// scripts. Submissions repeat the same script across cycles (that is
	// what makes reverse shadow processing pay off), so each distinct
	// script is parsed once instead of once per submit. Entries carry the
	// script bytes to disarm checksum collisions.
	scriptMu sync.RWMutex
	scripts  map[uint32]*scriptEntry

	// deliverMu covers identity registration (hello) versus the
	// lookup-or-queue of finished outputs: an output completing
	// concurrently with a hello is either claimed by the hello or sees
	// the registered identity — never neither.
	deliverMu   sync.Mutex
	routed      map[string][]uint64   // client host -> undelivered routed job ids
	undelivered map[identity][]uint64 // owner -> outputs awaiting reconnection

	// tagMu guards submitTags, the per-identity idempotency map: client
	// tag -> job id. A client retrying a SUBMIT whose SUBMIT_OK was lost
	// sends the same tag and gets the already-created job back instead of
	// running it twice. The lock spans check+create+insert, so two racing
	// retries of one tag cannot both create a job.
	tagMu      sync.Mutex
	submitTags map[identity]map[uint64]uint64

	// startMu lets Close exclude concurrent session registration without
	// putting a mutex on any per-message path.
	startMu sync.RWMutex
	closed  atomic.Bool

	pullsIssued    atomic.Int64
	pullsDeferred  atomic.Int64
	pullsCoalesced atomic.Int64

	// flightMu guards flightDumps, the bounded list of recent flight-
	// recorder dumps (/flightz). Dumps are rare — disconnects, faults, job
	// failures — so a plain mutex is fine here.
	flightMu    sync.Mutex
	flightDumps []FlightDump

	// Cluster peering (see peer.go; all empty outside a cluster): the
	// immutable cluster view installed by JoinCluster, the outbound
	// peer links by member name, peer requests parked on in-flight
	// fetches, and the last client delta per file kept for verbatim
	// peer forwarding. The maps are initialized by New — never nil while
	// the server runs — so a stray peer frame on an unclustered server
	// can be refused without ever touching a nil map.
	clusterCfg  atomic.Pointer[clusterState]
	peerMu      sync.Mutex
	peerLinks   map[string]*peerLink
	peerWaitMu  sync.Mutex
	peerWaiters map[naming.ShadowID][]peerWant
	deltaMu     sync.Mutex
	lastDeltas  map[naming.ShadowID]*storedDelta

	// heat counts per-file demand (notifies received, job inputs gathered,
	// peer requests served) for the ring-heat telemetry on /clusterz.
	heat *cluster.Heat

	wg sync.WaitGroup
}

// maxFlightDumps bounds the retained dump list; older dumps fall off.
const maxFlightDumps = 32

// FlightDump is one session's flight-recorder contents, captured when the
// session disconnected, its writer faulted, or one of its jobs failed.
type FlightDump struct {
	// Session is the dumped session's id; User and Host its identity (empty
	// before HELLO).
	Session    uint64
	User, Host string
	// Reason says what triggered the dump.
	Reason string
	// At is the capture instant on the server's observer clock.
	At time.Duration
	// Events are the ring contents, oldest first.
	Events []trace.Event
}

// recordFlightDump snapshots a session's ring into the dump list.
func (s *Server) recordFlightDump(ss *session, reason string) {
	if ss.rec == nil {
		return
	}
	d := FlightDump{
		Session: ss.id,
		Reason:  reason,
		At:      s.cfg.Obs.Now(),
		Events:  ss.rec.Snapshot(),
	}
	s.deliverMu.Lock()
	d.User, d.Host = ss.user, ss.clientHost
	s.deliverMu.Unlock()
	s.appendFlightDump(d)
	s.logf("session %d: flight recorder dumped (%s, %d events)", ss.id, reason, len(d.Events))
}

// appendFlightDump retains one captured dump, oldest falling off past the
// bound. Shared by session dumps and peer-link dumps (peer.go).
func (s *Server) appendFlightDump(d FlightDump) {
	s.flightMu.Lock()
	s.flightDumps = append(s.flightDumps, d)
	if len(s.flightDumps) > maxFlightDumps {
		s.flightDumps = s.flightDumps[len(s.flightDumps)-maxFlightDumps:]
	}
	s.flightMu.Unlock()
}

// FlightDumps returns the retained dumps, oldest first.
func (s *Server) FlightDumps() []FlightDump {
	s.flightMu.Lock()
	defer s.flightMu.Unlock()
	return append([]FlightDump(nil), s.flightDumps...)
}

// SessionFlight is one live session's current flight-recorder contents.
type SessionFlight struct {
	Session    uint64
	User, Host string
	Events     []trace.Event
}

// SessionFlights snapshots the flight recorders of every live session,
// sorted by session id (/flightz). Empty when tracing is off.
func (s *Server) SessionFlights() []SessionFlight {
	live := s.sessions.snapshot()
	out := make([]SessionFlight, 0, len(live))
	for _, ss := range live {
		if ss.rec == nil {
			continue
		}
		sf := SessionFlight{Session: ss.id, Events: ss.rec.Snapshot()}
		s.deliverMu.Lock()
		sf.User, sf.Host = ss.user, ss.clientHost
		s.deliverMu.Unlock()
		out = append(out, sf)
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Session < out[b].Session })
	return out
}

// FlowStats reports how many update retrievals were issued and how many the
// pull policy postponed — the observable of the §5.2 flow-control design.
// Reads are atomic; they never contend with the dispatch path.
func (s *Server) FlowStats() (issued, deferred int64) {
	return s.pullsIssued.Load(), s.pullsDeferred.Load()
}

// logf emits one operational log line if logging is configured.
func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

// New creates a server from cfg.
func New(cfg Config) *Server {
	if cfg.MaxConcurrentJobs < 1 {
		cfg.MaxConcurrentJobs = 1
	}
	if cfg.Algorithm == 0 {
		cfg.Algorithm = diff.HuntMcIlroy
	}
	if cfg.Clock == nil {
		cfg.Clock = core.NopClock{}
	}
	s := &Server{
		cfg:         cfg,
		dir:         naming.NewDirectory(),
		cache:       cache.New(cfg.CacheCapacity, cfg.CachePolicy),
		flights:     cache.NewFlights(),
		chunkFl:     newChunkFlights(),
		pool:        jobs.NewPool(cfg.MaxConcurrentJobs),
		counters:    &metrics.Counters{},
		waiters:     make(map[naming.ShadowID][]*job),
		scripts:     make(map[uint32]*scriptEntry),
		routed:      make(map[string][]uint64),
		undelivered: make(map[identity][]uint64),
		submitTags:  make(map[identity]map[uint64]uint64),
		peerLinks:   make(map[string]*peerLink),
		peerWaiters: make(map[naming.ShadowID][]peerWant),
		lastDeltas:  make(map[naming.ShadowID]*storedDelta),
		heat:        cluster.NewHeat(),
	}
	s.sessions.init()
	s.jobs.init()
	return s
}

// Name returns the server's advertised name.
func (s *Server) Name() string { return s.cfg.Name }

// Cache exposes the shadow cache (read-mostly: stats, test injection of
// evictions — the paper's "remote machine ran out of disk space" scenario).
func (s *Server) Cache() *cache.Cache { return s.cache }

// Directory exposes the per-domain name directory.
func (s *Server) Directory() *naming.Directory { return s.dir }

// Metrics returns the server's transfer counters plus the cache and
// flow-control observables for the same run.
func (s *Server) Metrics() metrics.Snapshot {
	snap := s.counters.Snapshot()
	cs := s.cache.Stats()
	snap.CacheHits = cs.Hits
	snap.CacheMisses = cs.Misses
	snap.CacheEvictions = cs.Evictions
	snap.CacheRejected = cs.Rejected
	snap.PullsIssued = s.pullsIssued.Load()
	snap.PullsDeferred = s.pullsDeferred.Load()
	snap.PullsCoalesced = s.pullsCoalesced.Load()
	snap.FileTouches = s.heat.Total()
	return snap
}

// HeatEntry is one hot file resolved for display: its reference key, the
// ring member that owns it ("self"'s name when unclustered) and the demand
// it has accumulated.
type HeatEntry struct {
	File    string
	Owner   string
	Touches int64
}

// HeatStats summarizes the server's file-demand accounting for the admin
// ring-heat view.
type HeatStats struct {
	// Touches is the total demand recorded across all files.
	Touches int64
	// Top lists the n hottest files, most-touched first.
	Top []HeatEntry
	// OwnerLoads maps each ring member to the demand landing on files it
	// owns — as seen from this instance.
	OwnerLoads map[string]int64
	// Imbalance is max over mean of OwnerLoads (1.0 = perfectly even,
	// 0 = no demand).
	Imbalance float64
}

// HeatStats resolves the heat tracker's id-keyed counts into names and ring
// owners (render time only — the touch path never builds a string). n bounds
// the hot-file list; owner loads and imbalance always cover every file.
func (s *Server) HeatStats(n int) HeatStats {
	cs := s.clusterCfg.Load()
	owner := func(key string) string {
		if cs != nil {
			return cs.ring.Owner(key)
		}
		return s.cfg.Name
	}
	all := s.heat.Top(0)
	hs := HeatStats{Touches: s.heat.Total(), OwnerLoads: make(map[string]int64)}
	for _, fh := range all {
		ref, ok := s.dir.RefOf(naming.ShadowID(fh.ID))
		if !ok {
			continue
		}
		key := ref.String()
		own := owner(key)
		hs.OwnerLoads[own] += fh.Touches
		if n <= 0 || len(hs.Top) < n {
			hs.Top = append(hs.Top, HeatEntry{File: key, Owner: own, Touches: fh.Touches})
		}
	}
	hs.Imbalance = cluster.Imbalance(hs.OwnerLoads)
	return hs
}

// Load returns the job queue length and running count.
func (s *Server) Load() (queued, running int) { return s.pool.Load() }

// SessionCount returns the number of live sessions from an atomic counter.
func (s *Server) SessionCount() int { return s.sessions.len() }

// Observer returns the server's observability configuration (nil when
// Config.Obs was not set) — the admin endpoint renders its histograms.
func (s *Server) Observer() *obs.Observer { return s.cfg.Obs }

// SessionInfo is one live session's admin-visible state (/sessionz).
type SessionInfo struct {
	// ID is the server-assigned session id.
	ID uint64
	// User, ClientHost and Domain identify the client (empty until its
	// HELLO arrives).
	User, ClientHost, Domain string
	// PullsInFlight counts file retrievals this session has issued whose
	// content has not arrived yet.
	PullsInFlight int
	// DeferredNotifies counts notifies whose pulls the pull policy
	// postponed.
	DeferredNotifies int
	// QueuedWrites is the depth of the session's outbound pipeline.
	QueuedWrites int
}

// Sessions returns a point-in-time view of every attached session, sorted
// by id. Identity fields are read under the same lock the hello handler
// writes them under, so a concurrent registration is seen whole or not at
// all.
func (s *Server) Sessions() []SessionInfo {
	live := s.sessions.snapshot()
	out := make([]SessionInfo, 0, len(live))
	for _, ss := range live {
		info := SessionInfo{ID: ss.id, QueuedWrites: len(ss.out)}
		s.deliverMu.Lock()
		info.User, info.ClientHost, info.Domain = ss.user, ss.clientHost, ss.domain
		s.deliverMu.Unlock()
		ss.mu.Lock()
		info.PullsInFlight = len(ss.pulled)
		info.DeferredNotifies = len(ss.deferred)
		ss.mu.Unlock()
		out = append(out, info)
	}
	sort.Slice(out, func(a, b int) bool { return out[a].ID < out[b].ID })
	return out
}

// JobCounts tallies every submitted job by lifecycle state (/sessionz and
// /healthz reporting).
func (s *Server) JobCounts() map[wire.JobState]int {
	counts := make(map[wire.JobState]int)
	s.jobs.forEach(func(j *job) {
		j.mu.Lock()
		state := j.state
		j.mu.Unlock()
		counts[state]++
	})
	return counts
}

// InFlightFetches reports how many coalesced file retrievals are currently
// outstanding across all sessions.
func (s *Server) InFlightFetches() int { return s.flights.Len() }

// Acceptor yields inbound protocol connections; it abstracts the transport
// (netsim listener, TCP listener).
type Acceptor interface {
	Accept() (wire.Conn, error)
}

// AcceptorFunc adapts a function to Acceptor.
type AcceptorFunc func() (wire.Conn, error)

// Accept implements Acceptor.
func (f AcceptorFunc) Accept() (wire.Conn, error) { return f() }

// Serve accepts and serves connections until the acceptor fails (listener
// closed) or the server is closed. It blocks; run it in a goroutine.
func (s *Server) Serve(a Acceptor) error {
	for {
		conn, err := a.Accept()
		if err != nil {
			if s.isClosed() {
				return nil
			}
			return err
		}
		if !s.startSession(conn) {
			_ = conn.Close()
			return nil
		}
	}
}

// ServeConn serves a single pre-established connection (in-process setups);
// it returns when the session ends.
func (s *Server) ServeConn(conn wire.Conn) {
	if !s.startSession(conn) {
		_ = conn.Close()
		return
	}
	// startSession spawned the handler; nothing else to do. The method
	// exists so callers don't depend on session internals.
}

func (s *Server) startSession(conn wire.Conn) bool {
	s.startMu.RLock()
	defer s.startMu.RUnlock()
	if s.closed.Load() {
		return false
	}
	sess := newSession(s, conn, s.nextSession.Add(1))
	s.sessions.add(sess)
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		sess.run()
		s.logf("session %d: closed", sess.id)
	}()
	return true
}

// dropSession unregisters a session and re-homes any file retrievals it
// owned: pulls that coalesced behind this session's fetches would otherwise
// wait forever on a dead connection.
func (s *Server) dropSession(sess *session) {
	if !s.sessions.remove(sess.id) {
		return
	}
	s.purgePeerWaiters(sess)
	if pending := s.flights.ReleaseOwner(sess.id); len(pending) > 0 {
		s.repullPending(sess.id, pending)
	}
}

func (s *Server) isClosed() bool { return s.closed.Load() }

// Close stops the server: no new sessions, pipelined writers drain and
// flush, queued jobs drain, open sessions are disconnected.
func (s *Server) Close() {
	s.startMu.Lock()
	already := s.closed.Swap(true)
	s.startMu.Unlock()
	if already {
		return
	}
	for _, sess := range s.sessions.snapshot() {
		sess.shutdownWriter() // drain + flush pending writes, then close
	}
	s.closePeerLinks()
	s.wg.Wait()
	s.pool.Close()
}

// scriptEntry is one cached parse of a job script.
type scriptEntry struct {
	script []byte // the exact bytes parsed, to verify on checksum collision
	cmds   []jobs.Command
	names  []string // input names the commands reference
}

// parsedScript returns the parsed commands and referenced input names for
// script, from the checksum-keyed cache when the same bytes were parsed
// before. Colliding checksums (different bytes, same sum) fall through to a
// fresh parse and leave the cache entry alone.
func (s *Server) parsedScript(sum uint32, script []byte) ([]jobs.Command, []string, error) {
	s.scriptMu.RLock()
	e := s.scripts[sum]
	s.scriptMu.RUnlock()
	if e != nil && string(e.script) == string(script) {
		return e.cmds, e.names, nil
	}
	cmds, err := jobs.ParseScript(script)
	if err != nil {
		return nil, nil, err
	}
	names := jobs.InputNames(cmds)
	if e == nil {
		s.scriptMu.Lock()
		if _, ok := s.scripts[sum]; !ok {
			s.scripts[sum] = &scriptEntry{
				script: append([]byte(nil), script...),
				cmds:   cmds,
				names:  names,
			}
		}
		s.scriptMu.Unlock()
	}
	return cmds, names, nil
}

// identity names a client across sessions: a user at a workstation. Jobs
// belong to identities, not connections, so a client that reconnects after
// a network failure finds its jobs and receives outputs that completed
// while it was away.
type identity struct {
	user string
	host string
}

// job is one submitted batch job.
type job struct {
	id    uint64
	owner identity
	sess  *session
	// tc is the trace context of the cycle that submitted the job; every
	// job-side span and the output delivery hang off it. Immutable after
	// creation.
	tc wire.TraceContext

	script []byte
	// cmds is the parsed form of script, shared with the server's script
	// cache. Immutable after creation.
	cmds      []jobs.Command
	scriptSum uint32
	inputs    []wire.JobInput

	outputFile      string
	errorFile       string
	routeHost       string
	wantOutputDelta bool

	mu       sync.Mutex
	state    wire.JobState
	detail   string
	waiting  map[naming.ShadowID]uint64 // file id -> version still needed
	byRef    map[naming.ShadowID]string // file id -> input name
	snapshot map[string][]byte          // input name -> content
	result   jobs.Result
	// queuedAt stamps when the job became runnable (inputs all in hand),
	// feeding the queue→complete histogram. Stamped at most once, and only
	// when observability is on.
	queuedAt      time.Duration
	queuedStamped bool
	// gathered is set once a submit handler has walked every input —
	// snapshotting, registering waits, issuing pulls. Until then the job
	// is recoverable only by a retried submit re-driving gatherInputs.
	gathered bool
	// waitSpan is the open server.job-wait span, created when the job
	// becomes runnable and finished when a processor picks it up.
	waitSpan *trace.Span
	// lastFullStdout holds the most recent full stdout so re-sends and
	// reverse-shadow bases are available after delivery.
	delivered bool
}

func (j *job) setState(state wire.JobState, detail string) {
	j.mu.Lock()
	j.state = state
	j.detail = detail
	j.mu.Unlock()
}

func (j *job) status() wire.JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	detail := j.detail
	if detail == "" && j.state.Terminal() {
		// runJob leaves detail empty and status renders it on demand:
		// status queries are rare, finished jobs are the hot path.
		if j.result.ExitCode != 0 {
			detail = fmt.Sprintf("exit %d (errors), %d output bytes", j.result.ExitCode, len(j.result.Stdout))
		} else {
			detail = fmt.Sprintf("exit %d, %d output bytes", j.result.ExitCode, len(j.result.Stdout))
		}
	}
	return wire.JobStatus{Job: j.id, State: j.state, Detail: detail}
}

var errSessionGone = errors.New("server: session gone")

// lookupJob fetches a job by id.
func (s *Server) lookupJob(id uint64) (*job, bool) {
	return s.jobs.get(id)
}

// jobsOfOwner returns the jobs an identity submitted (across sessions),
// ascending by id.
func (s *Server) jobsOfOwner(owner identity) []*job {
	var out []*job
	s.jobs.forEach(func(j *job) {
		if j.owner == owner {
			out = append(out, j)
		}
	})
	sort.Slice(out, func(a, b int) bool { return out[a].id < out[b].id })
	return out
}

// unackedDone returns the owner's finished, unrouted jobs whose output was
// never acknowledged, excluding ids already scheduled for delivery. A
// re-attaching client gets these re-sent: the output (or its ack) may have
// died with the previous connection, and the server cannot tell which. The
// client deduplicates, so a redundant re-send costs bytes, never correctness.
func (s *Server) unackedDone(owner identity, exclude []uint64) []uint64 {
	skip := make(map[uint64]bool, len(exclude))
	for _, id := range exclude {
		skip[id] = true
	}
	var out []uint64
	for _, j := range s.jobsOfOwner(owner) {
		if j.routeHost != "" || skip[j.id] {
			continue
		}
		j.mu.Lock()
		resend := j.state.Terminal() && !j.delivered
		j.mu.Unlock()
		if resend {
			out = append(out, j.id)
		}
	}
	return out
}

// ignoreEOF maps clean disconnects to nil.
func ignoreEOF(err error) error {
	if errors.Is(err, io.EOF) {
		return nil
	}
	return err
}
