// Package server implements the shadow server that runs at each
// supercomputer site (§6.1): it accepts connections from clients, maintains
// the per-domain shadow cache and its name directory, retrieves file updates
// under demand-driven flow control, schedules and executes batch jobs, and
// transfers results back to the appropriate client.
package server

import (
	"errors"
	"fmt"
	"io"
	"sync"
	"sync/atomic"

	"shadowedit/internal/cache"
	"shadowedit/internal/core"
	"shadowedit/internal/diff"
	"shadowedit/internal/jobs"
	"shadowedit/internal/metrics"
	"shadowedit/internal/naming"
	"shadowedit/internal/wire"
)

// PullPolicy decides when the server retrieves a newly notified file version
// (§5.2): the demand-driven model leaves the timing entirely to the server.
type PullPolicy int

// Pull policies.
const (
	// PullEager retrieves updates as soon as the notify arrives, so they
	// travel in the background while the user keeps editing.
	PullEager PullPolicy = iota + 1
	// PullLazy retrieves updates only when a submitted job needs them.
	PullLazy
	// PullLoadAware behaves eagerly while the job queue is short and
	// defers retrievals while the host is busy — the overload protection
	// the paper credits the demand-driven design with.
	PullLoadAware
)

// String names the policy.
func (p PullPolicy) String() string {
	switch p {
	case PullEager:
		return "eager"
	case PullLazy:
		return "lazy"
	case PullLoadAware:
		return "load-aware"
	default:
		return fmt.Sprintf("pull-policy(%d)", int(p))
	}
}

// Config parametrizes a Server. The zero value is not valid; use Defaults.
type Config struct {
	// Name is the server's advertised host name.
	Name string
	// CacheCapacity bounds the shadow cache in bytes (<= 0: unbounded).
	CacheCapacity int64
	// CachePolicy selects the cache eviction policy.
	CachePolicy cache.Policy
	// Pull selects the update retrieval policy.
	Pull PullPolicy
	// LoadThreshold is the queued+running job count at which PullLoadAware
	// begins deferring retrievals.
	LoadThreshold int
	// MaxConcurrentJobs bounds simultaneous job execution.
	MaxConcurrentJobs int
	// Algorithm is the differencing algorithm for reverse shadow output.
	Algorithm diff.Algorithm
	// Compress enables compression of output transfers.
	Compress bool
	// Clock receives job CPU charges (the supercomputer's virtual clock
	// in simulations). Nil means no charging.
	Clock core.Clock
	// Logf, when set, receives one line per notable server event
	// (sessions, pulls, transfers, job transitions) — the operational
	// log a daemon writes. Nil disables logging.
	Logf func(format string, args ...any)
}

// Defaults returns a production-shaped configuration.
func Defaults(name string) Config {
	return Config{
		Name:              name,
		CacheCapacity:     0,
		CachePolicy:       cache.LRU,
		Pull:              PullEager,
		LoadThreshold:     4,
		MaxConcurrentJobs: 2,
		Algorithm:         diff.HuntMcIlroy,
		Compress:          false,
	}
}

// Server is one shadow server instance.
type Server struct {
	cfg      Config
	dir      *naming.Directory
	cache    *cache.Cache
	pool     *jobs.Pool
	counters *metrics.Counters

	mu          sync.Mutex
	nextSession uint64
	nextJob     uint64
	jobs        map[uint64]*job
	sessions    map[uint64]*session
	routed      map[string][]uint64   // client host -> undelivered routed job ids
	undelivered map[identity][]uint64 // owner -> outputs awaiting reconnection
	closed      bool

	pullsIssued   atomic.Int64
	pullsDeferred atomic.Int64

	wg sync.WaitGroup
}

// FlowStats reports how many update retrievals were issued and how many the
// pull policy postponed — the observable of the §5.2 flow-control design.
func (s *Server) FlowStats() (issued, deferred int64) {
	return s.pullsIssued.Load(), s.pullsDeferred.Load()
}

// logf emits one operational log line if logging is configured.
func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

// New creates a server from cfg.
func New(cfg Config) *Server {
	if cfg.MaxConcurrentJobs < 1 {
		cfg.MaxConcurrentJobs = 1
	}
	if cfg.Algorithm == 0 {
		cfg.Algorithm = diff.HuntMcIlroy
	}
	if cfg.Clock == nil {
		cfg.Clock = core.NopClock{}
	}
	return &Server{
		cfg:         cfg,
		dir:         naming.NewDirectory(),
		cache:       cache.New(cfg.CacheCapacity, cfg.CachePolicy),
		pool:        jobs.NewPool(cfg.MaxConcurrentJobs),
		counters:    &metrics.Counters{},
		jobs:        make(map[uint64]*job),
		sessions:    make(map[uint64]*session),
		routed:      make(map[string][]uint64),
		undelivered: make(map[identity][]uint64),
	}
}

// Name returns the server's advertised name.
func (s *Server) Name() string { return s.cfg.Name }

// Cache exposes the shadow cache (read-mostly: stats, test injection of
// evictions — the paper's "remote machine ran out of disk space" scenario).
func (s *Server) Cache() *cache.Cache { return s.cache }

// Directory exposes the per-domain name directory.
func (s *Server) Directory() *naming.Directory { return s.dir }

// Metrics returns the server's transfer counters.
func (s *Server) Metrics() metrics.Snapshot { return s.counters.Snapshot() }

// Load returns the job queue length and running count.
func (s *Server) Load() (queued, running int) { return s.pool.Load() }

// SessionCount returns the number of live sessions.
func (s *Server) SessionCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.sessions)
}

// Acceptor yields inbound protocol connections; it abstracts the transport
// (netsim listener, TCP listener).
type Acceptor interface {
	Accept() (wire.Conn, error)
}

// AcceptorFunc adapts a function to Acceptor.
type AcceptorFunc func() (wire.Conn, error)

// Accept implements Acceptor.
func (f AcceptorFunc) Accept() (wire.Conn, error) { return f() }

// Serve accepts and serves connections until the acceptor fails (listener
// closed) or the server is closed. It blocks; run it in a goroutine.
func (s *Server) Serve(a Acceptor) error {
	for {
		conn, err := a.Accept()
		if err != nil {
			if s.isClosed() {
				return nil
			}
			return err
		}
		if !s.startSession(conn) {
			_ = conn.Close()
			return nil
		}
	}
}

// ServeConn serves a single pre-established connection (in-process setups);
// it returns when the session ends.
func (s *Server) ServeConn(conn wire.Conn) {
	if !s.startSession(conn) {
		_ = conn.Close()
		return
	}
	// startSession spawned the handler; nothing else to do. The method
	// exists so callers don't depend on session internals.
}

func (s *Server) startSession(conn wire.Conn) bool {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return false
	}
	s.nextSession++
	sess := &session{
		srv:      s,
		conn:     conn,
		id:       s.nextSession,
		deferred: make(map[string]*wire.Notify),
		pulled:   make(map[string]uint64),
		outPrev:  make(map[uint32][]byte),
	}
	s.sessions[sess.id] = sess
	s.wg.Add(1)
	s.mu.Unlock()
	go func() {
		defer s.wg.Done()
		sess.run()
		s.logf("session %d: closed", sess.id)
	}()
	return true
}

func (s *Server) dropSession(sess *session) {
	s.mu.Lock()
	delete(s.sessions, sess.id)
	s.mu.Unlock()
}

func (s *Server) isClosed() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closed
}

// Close stops the server: no new sessions, queued jobs drain, open sessions
// are disconnected.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	open := make([]*session, 0, len(s.sessions))
	for _, sess := range s.sessions {
		open = append(open, sess)
	}
	s.mu.Unlock()

	for _, sess := range open {
		_ = sess.conn.Close()
	}
	s.wg.Wait()
	s.pool.Close()
}

// identity names a client across sessions: a user at a workstation. Jobs
// belong to identities, not connections, so a client that reconnects after
// a network failure finds its jobs and receives outputs that completed
// while it was away.
type identity struct {
	user string
	host string
}

// job is one submitted batch job.
type job struct {
	id    uint64
	owner identity
	sess  *session

	script    []byte
	scriptSum uint32
	inputs    []wire.JobInput

	outputFile      string
	errorFile       string
	routeHost       string
	wantOutputDelta bool

	mu       sync.Mutex
	state    wire.JobState
	detail   string
	waiting  map[string]uint64 // ref key -> version still needed
	byRef    map[string]string // ref key -> input name
	snapshot map[string][]byte // input name -> content
	result   jobs.Result
	// lastFullStdout holds the most recent full stdout so re-sends and
	// reverse-shadow bases are available after delivery.
	delivered bool
}

func (j *job) setState(state wire.JobState, detail string) {
	j.mu.Lock()
	j.state = state
	j.detail = detail
	j.mu.Unlock()
}

func (j *job) status() wire.JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	return wire.JobStatus{Job: j.id, State: j.state, Detail: j.detail}
}

var errSessionGone = errors.New("server: session gone")

// lookupJob fetches a job by id.
func (s *Server) lookupJob(id uint64) (*job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// jobsOfOwner returns the jobs an identity submitted (across sessions),
// ascending by id.
func (s *Server) jobsOfOwner(owner identity) []*job {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []*job
	for id := uint64(1); id <= s.nextJob; id++ {
		if j, ok := s.jobs[id]; ok && j.owner == owner {
			out = append(out, j)
		}
	}
	return out
}

// ignoreEOF maps clean disconnects to nil.
func ignoreEOF(err error) error {
	if errors.Is(err, io.EOF) {
		return nil
	}
	return err
}
