package server

// Cluster peering (protocol v5). A shadow-cache cluster is N servers, each
// running the unchanged single-server core, joined by a consistent-hash ring
// (internal/cluster) that names one instance as every (domain, file)'s
// owner. Clients route each file's traffic to its owner, so the owner's
// cache sees the client's deltas first; any other instance that needs the
// file — a job submitted there references it — fetches it from the owner
// over a peer session instead of pulling it from the client a second time.
//
// Peer sessions are ordinary protocol sessions: the dialing server sends a
// normal HELLO (negotiating v5 on the HelloOK trailing-optional field),
// then marks the session server-to-server with a PEER_HELLO. The owner
// answers a PEER_NOTIFY with the smallest thing that works:
//
//   - a PeerDelta forwarding the very FILE_DELTA body the client sent it,
//     verbatim, when its base is exactly what the requester holds;
//   - a PeerChunk manifest otherwise, which the requester resolves against
//     its own chunk store, fetching only the gaps with CHUNK_REQ/CHUNK_DATA
//     on the same session;
//   - a negative PeerDelta (Version 0) when it cannot serve — the requester
//     falls back to pulling from the client. Full file bodies never cross a
//     peer link; there is no peer full-file frame at all.
//
// The flight table extends single-winner coalescing across the cluster: a
// peer fetch is a flight owned by the peer link's pseudo-session id, so
// local demand coalesces onto one PEER_NOTIFY exactly as client pulls
// coalesce onto one PULL, and a dying link re-homes its flights through
// repullPending like a dying session does. An owner that is itself still
// pulling the wanted version parks the peer's request (peerWaiters) and
// answers on arrival — a file hot on many instances crosses the
// client-server edge exactly once.

// Peer traffic is traced like client traffic: PEER_NOTIFY, PEER_DELTA,
// PEER_CHUNK and the gap-fill CHUNK_REQ/CHUNK_DATA frames all carry the v2
// trace-context header when the triggering cycle is traced, so a cycle
// whose input lives on another member renders as one causal trace — the
// requester's peer.fetch span parenting the owner's peer.serve (and
// peer.chunks) spans. Untraced cycles carry a zero context, which encodes
// to the exact pre-trace bytes. Each link also keeps a session-style
// flight-recorder ring, dumped when the link dies or a fetch degrades to
// the client-pull path.

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"shadowedit/internal/cache"
	"shadowedit/internal/chunk"
	"shadowedit/internal/cluster"
	"shadowedit/internal/core"
	"shadowedit/internal/diff"
	"shadowedit/internal/naming"
	"shadowedit/internal/trace"
	"shadowedit/internal/wire"
)

// ClusterSpec configures a server's membership in a shadow-cache cluster.
type ClusterSpec struct {
	// Instance is this server's member name on the ring. It must appear in
	// Members.
	Instance string
	// Members are all cluster member names, including Instance. Every
	// instance must be configured with the same member list: the ring is
	// deterministic, so identical lists mean identical placement. The
	// virtual-node count is fixed at cluster.DefaultVirtualNodes on every
	// node — servers and clients build their rings independently, and a
	// configurable count either side could get wrong would silently break
	// the "no placement metadata crosses the wire" contract.
	Members []string
	// Dial opens a transport to a remote member, by name.
	Dial func(member string) (wire.Conn, error)
}

// clusterState is the immutable cluster view installed by JoinCluster.
type clusterState struct {
	ring     *cluster.Ring
	instance string
	dial     func(member string) (wire.Conn, error)
}

// JoinCluster places the server on a cluster ring. Call it after New and
// before Serve; a server that never joins behaves exactly as before (every
// file is "owned" locally and no peer traffic exists).
func (s *Server) JoinCluster(spec ClusterSpec) {
	// The peer maps themselves were already initialized by New, so peer
	// frames are map-safe even on a server that never joins. Dropping each
	// retained peer delta in lockstep with its cache entry bounds the
	// forwarding state by the cache's own footprint.
	s.cache.SetEvictHook(s.dropPeerDelta)
	s.clusterCfg.Store(&clusterState{
		ring:     cluster.NewRing(cluster.DefaultVirtualNodes, spec.Members...),
		instance: spec.Instance,
		dial:     spec.Dial,
	})
	s.logf("joined cluster as %s (%d members, %d vnodes)", spec.Instance, len(spec.Members), cluster.DefaultVirtualNodes)
}

// Clustered reports whether the server has joined a cluster.
func (s *Server) Clustered() bool { return s.clusterCfg.Load() != nil }

// Instance returns the server's cluster member name ("" when not clustered).
func (s *Server) Instance() string {
	if cs := s.clusterCfg.Load(); cs != nil {
		return cs.instance
	}
	return ""
}

// ownsFile reports whether this instance is ref's placement owner. A server
// outside any cluster owns everything — the pre-v5 behavior.
func (s *Server) ownsFile(ref wire.FileRef) bool {
	cs := s.clusterCfg.Load()
	return cs == nil || cs.ring.Owner(ref.String()) == cs.instance
}

// storedDelta is the most recent client FILE_DELTA seen for a file,
// retained (the decoded message owns its bytes, so aliasing is safe) to be
// forwarded verbatim to peers whose base matches. One delta per file: the
// footprint is one edit's worth of bytes per distinct hot file.
type storedDelta struct {
	base, version uint64
	encoded       []byte
	compressed    bool
	fullLen       int // applied content length, for bytes-saved accounting
}

// notePeerDelta captures a just-applied client delta for peer forwarding.
// A no-op outside a cluster.
func (s *Server) notePeerDelta(id naming.ShadowID, m *wire.FileDelta, fullLen int) {
	if s.clusterCfg.Load() == nil {
		return
	}
	s.deltaMu.Lock()
	s.lastDeltas[id] = &storedDelta{
		base:       m.BaseVersion,
		version:    m.Version,
		encoded:    m.Encoded,
		compressed: m.Compressed,
		fullLen:    fullLen,
	}
	s.deltaMu.Unlock()
}

func (s *Server) peerDeltaFor(id naming.ShadowID) *storedDelta {
	if s.clusterCfg.Load() == nil {
		return nil
	}
	s.deltaMu.Lock()
	d := s.lastDeltas[id]
	s.deltaMu.Unlock()
	return d
}

// dropPeerDelta is the cache's eviction hook: a file leaving the cache takes
// its retained forwarding delta with it, so lastDeltas can never outlive (or
// outgrow) the cache contents it shadows.
func (s *Server) dropPeerDelta(id naming.ShadowID) {
	s.deltaMu.Lock()
	delete(s.lastDeltas, id)
	s.deltaMu.Unlock()
}

// peerWant is one parked peer request: a peer session awaiting a version
// the owner is still fetching itself. sp is the owner-side peer.serve span,
// held open across the park so its duration covers the whole wait.
type peerWant struct {
	ss   *session
	ref  wire.FileRef
	have uint64
	want uint64
	tc   wire.TraceContext
	sp   *trace.Span
}

func (s *Server) addPeerWaiter(id naming.ShadowID, w peerWant) {
	s.peerWaitMu.Lock()
	s.peerWaiters[id] = append(s.peerWaiters[id], w)
	s.peerWaitMu.Unlock()
}

// feedPeerWaiters answers parked peer requests that an arrival satisfies.
// Called from feedWaitingJobs, so it rides the same arrival path jobs do.
// Waiters the arrival falls short of stay parked only while a fetch still
// covers their want; otherwise they are declined on the spot — a parked
// request must always end in an answer, or the requester's jobs hang on a
// healthy link forever.
func (s *Server) feedPeerWaiters(id naming.ShadowID, version uint64) {
	if s.clusterCfg.Load() == nil {
		return
	}
	s.peerWaitMu.Lock()
	list := s.peerWaiters[id]
	if len(list) == 0 {
		s.peerWaitMu.Unlock()
		return
	}
	pending, inFlight := s.flights.Pending(id)
	var ready, stranded []peerWant
	remaining := list[:0]
	for _, w := range list {
		switch {
		case version >= w.want:
			ready = append(ready, w)
		case inFlight && pending >= w.want:
			remaining = append(remaining, w)
		default:
			stranded = append(stranded, w)
		}
	}
	if len(remaining) == 0 {
		delete(s.peerWaiters, id)
	} else {
		s.peerWaiters[id] = remaining
	}
	s.peerWaitMu.Unlock()
	for _, w := range ready {
		if s.answerPeer(w.ss, id, w.ref, w.have, w.want, w.tc, w.sp) {
			w.ss.peerServed.Add(1)
			w.sp.Finish()
			s.cfg.Obs.EndTrace(w.tc)
		} else {
			// The arrival satisfied the wait but the content has already
			// moved on or out of the cache; decline, the peer re-pulls.
			s.declinePeer(w.ss, w.ref, w.tc, w.sp)
		}
	}
	for _, w := range stranded {
		// The arrival fell short and no in-flight fetch covers the want any
		// more: decline now rather than park on a fetch that will never run.
		s.declinePeer(w.ss, w.ref, w.tc, w.sp)
	}
}

// declinePeer sends the negative answer and closes the serve span, with the
// per-session and fleet counters that go with it.
func (s *Server) declinePeer(ss *session, ref wire.FileRef, tc wire.TraceContext, sp *trace.Span) {
	s.counters.AddPeerNegative()
	ss.peerDeclined.Add(1)
	sp.Annotate("declined").Finish()
	_ = ss.sendTraced(&wire.PeerDelta{File: ref}, ctxOr(sp, tc))
	s.cfg.Obs.EndTrace(tc)
}

// declinePeerWaiters negatively answers every parked peer request for id.
// Called when the fetch the waiters were parked on is abandoned with no
// replacement (repullPending finding no live session): the requesters' own
// links are healthy, so nothing else would ever answer them, and a negative
// delta sends each one back to its client pull — the documented degradation.
func (s *Server) declinePeerWaiters(id naming.ShadowID) {
	if s.clusterCfg.Load() == nil {
		return
	}
	s.peerWaitMu.Lock()
	list := s.peerWaiters[id]
	delete(s.peerWaiters, id)
	s.peerWaitMu.Unlock()
	for _, w := range list {
		s.declinePeer(w.ss, w.ref, w.tc, w.sp)
	}
}

// purgePeerWaiters drops a dead peer session's parked requests (its own
// server re-homes the fetches the link owned; an answer to a dead session
// would go nowhere).
func (s *Server) purgePeerWaiters(dead *session) {
	if s.clusterCfg.Load() == nil || !dead.peer.Load() {
		return
	}
	s.peerWaitMu.Lock()
	var dropped []peerWant
	for id, list := range s.peerWaiters {
		kept := list[:0]
		for _, w := range list {
			if w.ss != dead {
				kept = append(kept, w)
			} else {
				dropped = append(dropped, w)
			}
		}
		if len(kept) == 0 {
			delete(s.peerWaiters, id)
		} else {
			s.peerWaiters[id] = kept
		}
	}
	s.peerWaitMu.Unlock()
	for _, w := range dropped {
		w.sp.Annotate("requester-gone").Finish()
		s.cfg.Obs.EndTrace(w.tc)
	}
}

// handlePeerHello marks the session server-to-server. The protocol version
// was already negotiated by the ordinary HELLO exchange.
func (ss *session) handlePeerHello(m *wire.PeerHello) error {
	ss.srv.counters.AddControl(0)
	if !ss.srv.Clustered() {
		// A server that never joined a cluster has no ring and no peers.
		// Refuse the handshake (any v5 client can emit the frame) so the
		// session never gains peer standing and the peer-only handlers
		// below keep rejecting its frames.
		return fmt.Errorf("PEER_HELLO on an unclustered server")
	}
	ss.mu.Lock()
	ss.peerInstance = m.Instance
	ss.mu.Unlock()
	ss.peer.Store(true)
	ss.srv.logf("session %d: peer hello from instance %s", ss.id, m.Instance)
	return nil
}

// handlePeerNotify serves a peer's version request (owner side). The whole
// decision — answer, park, or decline — lives under one peer.serve span
// stitched into the requester's trace by the propagated context, so a
// cross-instance fetch is not a black hole in the cycle timeline.
func (ss *session) handlePeerNotify(m *wire.PeerNotify, tc wire.TraceContext) error {
	ss.srv.counters.AddControl(0)
	if !ss.peer.Load() {
		return fmt.Errorf("PEER_NOTIFY on a client session")
	}
	s := ss.srv
	id := s.dir.Intern(m.File)
	s.heat.Touch(uint64(id)) // peer demand heats the file like client demand
	sp := s.cfg.Obs.StartSpan(tc, "peer.serve").SetSession(ss.id)
	if sp != nil {
		sp.SetFile(m.File.String())
	}
	if s.answerPeer(ss, id, m.File, m.HaveVersion, m.WantVersion, tc, sp) {
		ss.peerServed.Add(1)
		sp.Finish()
		// The owner's share of a propagated trace is done once the answer is
		// out (a chunk gap-fill lands as late spans); without this the record
		// never completes on an owner with its own tracer, since only the
		// executing member reaches the job-delivery EndTrace. Idempotent, so
		// a shared tracer (netsim) is unaffected beyond completing earlier.
		s.cfg.Obs.EndTrace(tc)
		return nil
	}
	// Not servable right now. If a fetch covering the want is already in
	// flight here, park the request on the arrival instead of declining —
	// the cross-cluster half of flight coalescing. The span parks with it:
	// its duration then covers the wait the requester actually experienced.
	if want, ok := s.flights.Pending(id); ok && want >= m.WantVersion {
		sp.Annotate("parked")
		s.addPeerWaiter(id, peerWant{ss: ss, ref: m.File, have: m.HaveVersion, want: m.WantVersion, tc: tc, sp: sp})
		// The arrival may have beaten the registration; re-check so the
		// request cannot park forever on a retired flight.
		if v, ok := s.cache.Version(id); ok && v >= m.WantVersion {
			s.feedPeerWaiters(id, v)
		}
		return nil
	}
	s.counters.AddPeerNegative()
	ss.peerDeclined.Add(1)
	sp.Annotate("declined").Finish()
	err := ss.sendTraced(&wire.PeerDelta{File: m.File}, ctxOr(sp, tc))
	s.cfg.Obs.EndTrace(tc)
	return err
}

// answerPeer tries to serve (have → want-or-newer) of id to a peer session
// from local state, reporting whether an answer went out. Preference order:
// forward the client's delta verbatim, else send a chunk manifest. Send
// failures still count as answered — the dying session's teardown handles
// the rest. sp is the caller's peer.serve span: the answer frame carries
// its context (so the requester's downstream spans nest under it) and the
// annotation records which answer form won; the caller finishes it.
func (s *Server) answerPeer(ss *session, id naming.ShadowID, ref wire.FileRef, have, want uint64, tc wire.TraceContext, sp *trace.Span) bool {
	if d := s.peerDeltaFor(id); d != nil && have != 0 && d.base == have && d.version >= want {
		// A delta can encode larger than the content it produces (tiny
		// files, incompressible edits); the saved-bytes counter is a fleet
		// observable and must never go backwards, so clamp at zero.
		saved := d.fullLen - len(d.encoded)
		if saved < 0 {
			saved = 0
		}
		s.counters.AddPeerDelta(len(d.encoded))
		s.counters.AddPeerForward(saved)
		sp.Annotate("delta-forward")
		_ = ss.sendTraced(&wire.PeerDelta{
			File:        ref,
			BaseVersion: d.base,
			Version:     d.version,
			Encoded:     d.encoded,
			Compressed:  d.compressed,
		}, ctxOr(sp, tc))
		return true
	}
	ver, man, ok := s.cache.Manifest(id)
	if !ok || ver < want {
		return false
	}
	e, ok := s.cache.Peek(id)
	if !ok || e.Version != ver {
		return false // racing replacement; the peer falls back to the client
	}
	refs := make([]wire.ChunkRef, len(man))
	for i, r := range man {
		refs[i] = wire.ChunkRef{Hash: r.Hash, Len: r.Len}
	}
	pc := &wire.PeerChunk{File: ref, Version: ver, Sum: diff.Checksum(e.Content), Chunks: refs}
	s.counters.AddPeerManifest(pc.PayloadLen())
	s.counters.AddPeerForward(len(e.Content))
	sp.Annotate("manifest")
	_ = ss.sendTraced(pc, ctxOr(sp, tc))
	return true
}

// handlePeerChunkReq serves a peer's gap-fill request from the chunk store
// (owner side). Chunks no longer resident are omitted; the requester treats
// an incomplete answer as a decline and falls back to the client.
func (ss *session) handlePeerChunkReq(m *wire.ChunkReq, tc wire.TraceContext) error {
	if !ss.peer.Load() {
		return fmt.Errorf("CHUNK_REQ on a client session")
	}
	ss.srv.counters.AddControl(0)
	sp := ss.srv.cfg.Obs.StartSpan(tc, "peer.chunks").SetSession(ss.id)
	if sp != nil {
		sp.SetFile(m.File.String())
	}
	store := ss.srv.cache.ChunkStore()
	reply := &wire.ChunkData{File: m.File, Version: m.Version}
	for _, h := range m.Hashes {
		if data, ok := store.Get(chunk.Hash(h)); ok {
			reply.Chunks = append(reply.Chunks, wire.ChunkBlob{Hash: h, Data: data})
		}
	}
	if sp != nil {
		sp.Annotate(fmt.Sprintf("%d/%d chunks", len(reply.Chunks), len(m.Hashes)))
	}
	ss.srv.counters.AddPeerChunkData(reply.PayloadLen())
	err := ss.sendTraced(reply, ctxOr(sp, tc))
	sp.Finish()
	return err
}

// fetchInput retrieves a job input: from the file's ring owner over a peer
// link when another instance owns it, otherwise from the client (the
// classic pull). Peer sessions always pull locally — peer requests must
// never cascade instance-to-instance.
func (ss *session) fetchInput(ref wire.FileRef, want uint64, tc wire.TraceContext) error {
	if !ss.srv.ownsFile(ref) && !ss.peer.Load() {
		return ss.srv.peerFetch(ss, ref, want, tc)
	}
	return ss.pullFile(ref, want, tc)
}

// peerFetch asks ref's owner instance for a version, coalescing local
// demand through the flight table (the link's pseudo-session id owns the
// flight). Any failure to reach the owner degrades to a client pull through
// fallback — correctness never depends on the cluster.
func (s *Server) peerFetch(fallback *session, ref wire.FileRef, want uint64, tc wire.TraceContext) error {
	id := s.dir.Intern(ref)
	var have uint64
	if v, ok := s.cache.Version(id); ok {
		have = v
		if have >= want {
			if e, ok := s.cache.Peek(id); ok {
				s.feedWaitingJobs(id, e.Version, e.Content)
			}
			return nil
		}
	}
	cs := s.clusterCfg.Load()
	owner := cs.ring.Owner(ref.String())
	link, err := s.peerLinkTo(owner)
	if err != nil {
		s.counters.AddOwnerMiss()
		s.logf("peer fetch %s v%d: owner %s unreachable (%v); pulling from client", ref, want, owner, err)
		return fallback.pullFile(ref, want, tc)
	}
	if !s.flights.Begin(id, ref, want, link.id, tc) {
		// A fetch covering this version is in flight (peer or client);
		// its arrival feeds every waiting job.
		s.pullsCoalesced.Add(1)
		return nil
	}
	// The requester-side half of the cross-instance trace: peer.fetch opens
	// when the flight is won and closes when the answer lands (handleDelta /
	// finishAssembly) or the fetch degrades to a client pull. The PEER_NOTIFY
	// carries its context, so the owner's peer.serve nests under it.
	sp := s.cfg.Obs.StartSpan(tc, "peer.fetch")
	if sp != nil {
		sp.SetFile(ref.String())
		link.trackSpan(id, sp)
	}
	s.pullsIssued.Add(1)
	s.counters.AddControl(0)
	if err := link.send(&wire.PeerNotify{File: ref, HaveVersion: have, WantVersion: want}, ctxOr(sp, tc)); err != nil {
		link.takeSpan(id).Annotate("send failed").Finish()
		s.flights.Release(id, link.id)
		s.counters.AddOwnerMiss()
		return fallback.pullFile(ref, want, tc)
	}
	return nil
}

// peerLink is one outbound peer session to a remote instance: lazily
// dialed, shared by every local session that needs that owner. It has a
// pseudo-session id so the flight table and repullPending treat it exactly
// like a session.
type peerLink struct {
	srv    *Server
	member string
	id     uint64
	proto  int // remote's negotiated protocol version

	mu       sync.Mutex
	conn     wire.Conn
	dead     bool
	fetching map[naming.ShadowID]*peerAssembly
	spans    map[naming.ShadowID]*trace.Span // open peer.fetch spans by file

	// rec is the link's flight recorder (nil when tracing is off): the same
	// 256-entry wire-event ring sessions keep, dumped when the link dies or
	// a fetch falls back to the client path.
	rec *trace.Ring

	// Per-link answer accounting for /peerz (the fleet-summed counters on
	// the server cannot say which link a forward came over).
	deltasIn    atomic.Int64 // positive PEER_DELTA answers received
	chunksIn    atomic.Int64 // PEER_CHUNK manifest answers received
	negativesIn atomic.Int64 // negative PEER_DELTA answers received
	fallbacks   atomic.Int64 // fetches degraded to the client-pull path
}

// trackSpan registers an open peer.fetch span for a file in flight on the
// link; takeSpan removes and returns it (nil when none or the link already
// tore down). The map rides l.mu with the assembly table.
func (l *peerLink) trackSpan(id naming.ShadowID, sp *trace.Span) {
	l.mu.Lock()
	if l.spans == nil {
		l.spans = make(map[naming.ShadowID]*trace.Span)
	}
	l.spans[id] = sp
	l.mu.Unlock()
}

func (l *peerLink) takeSpan(id naming.ShadowID) *trace.Span {
	l.mu.Lock()
	sp := l.spans[id]
	delete(l.spans, id)
	l.mu.Unlock()
	return sp
}

// record appends a flight-recorder event; a no-op when tracing is off.
func (l *peerLink) record(kind, name string, tc wire.TraceContext, detail string) {
	if l.rec == nil {
		return
	}
	l.rec.Record(trace.Event{
		At:     int64(l.srv.cfg.Obs.Now()),
		Kind:   kind,
		Name:   name,
		Trace:  tc.TraceID,
		Detail: detail,
	})
}

// dumpFlight retains the link's ring under the session dump list, with the
// member name standing in for the client identity. Unlike a session's
// once-per-life dump, a link dumps on every fallback and on death — the
// global dump bound caps the cost.
func (l *peerLink) dumpFlight(reason string) {
	if l.rec == nil {
		return
	}
	l.srv.appendFlightDump(FlightDump{
		Session: l.id,
		User:    "peer",
		Host:    l.member,
		Reason:  reason,
		At:      l.srv.cfg.Obs.Now(),
		Events:  l.rec.Snapshot(),
	})
	l.srv.logf("peer %s: flight recorder dumped (%s)", l.member, reason)
}

// errNotClustered reports peer operations on an unclustered server.
var errNotClustered = errors.New("server: not in a cluster")

// peerLinkTo returns the (dialed-on-demand) link to a member. The dial and
// handshake run under peerMu: first-use only, and serializing racing dials
// is simpler than discarding a loser's session.
func (s *Server) peerLinkTo(member string) (*peerLink, error) {
	cs := s.clusterCfg.Load()
	if cs == nil {
		return nil, errNotClustered
	}
	if member == cs.instance {
		return nil, fmt.Errorf("server: %s asked to peer with itself", member)
	}
	s.peerMu.Lock()
	defer s.peerMu.Unlock()
	if s.peerLinks == nil {
		return nil, errNotClustered // shut down
	}
	if l := s.peerLinks[member]; l != nil {
		return l, nil
	}
	conn, err := cs.dial(member)
	if err != nil {
		return nil, err
	}
	if err := wire.Send(conn, &wire.Hello{
		Protocol:   wire.ProtocolVersion,
		User:       "shadowd",
		Domain:     "cluster",
		ClientHost: cs.instance,
	}); err != nil {
		_ = conn.Close()
		return nil, err
	}
	reply, err := wire.Recv(conn)
	if err != nil {
		_ = conn.Close()
		return nil, err
	}
	ok, isOK := reply.(*wire.HelloOK)
	if !isOK {
		_ = conn.Close()
		return nil, fmt.Errorf("peer %s: handshake answered with %v", member, reply.Kind())
	}
	if ok.Protocol < wire.PeerProtocolVersion {
		// The remote is an older build. Do not peer: the caller pulls from
		// the client instead, and the old instance's byte streams stay
		// exactly what a pre-v5 deployment produced.
		_ = conn.Close()
		return nil, fmt.Errorf("peer %s: speaks protocol %d, need %d", member, ok.Protocol, wire.PeerProtocolVersion)
	}
	if err := wire.Send(conn, &wire.PeerHello{Instance: cs.instance}); err != nil {
		_ = conn.Close()
		return nil, err
	}
	l := &peerLink{
		srv:      s,
		member:   member,
		id:       s.nextSession.Add(1),
		proto:    int(ok.Protocol),
		conn:     conn,
		fetching: make(map[naming.ShadowID]*peerAssembly),
	}
	if s.cfg.Obs.Tracer() != nil {
		l.rec = trace.NewRing(flightRingSize)
	}
	s.peerLinks[member] = l
	go l.readLoop()
	s.logf("peer %s: link up (session %d)", member, l.id)
	return l, nil
}

// send writes one frame on the link, flushing if the transport buffers.
// Concurrent senders (sessions issuing peer fetches, the read loop issuing
// chunk requests) serialize on l.mu.
func (l *peerLink) send(m wire.Message, tc wire.TraceContext) error {
	// Recorded before the bytes hit the wire, like session sends: a frame
	// the owner received is guaranteed to be in the ring.
	l.record("send", m.Kind().String(), tc, "")
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.dead {
		return errSessionGone
	}
	if err := wire.SendTraced(l.conn, m, tc); err != nil {
		l.dead = true
		_ = l.conn.Close() // wake the read loop; it runs the teardown
		return err
	}
	if f, ok := l.conn.(wire.Flusher); ok {
		if err := f.Flush(); err != nil {
			l.dead = true
			_ = l.conn.Close()
			return err
		}
	}
	return nil
}

// readLoop consumes the owner's answers. On transport failure it tears the
// link down and re-homes every flight the link owned.
func (l *peerLink) readLoop() {
	for {
		msg, tc, err := wire.RecvTracedReuse(l.conn)
		if err != nil {
			l.down(err)
			return
		}
		l.record("recv", msg.Kind().String(), tc, "")
		switch m := msg.(type) {
		case *wire.PeerDelta:
			l.handleDelta(m, tc)
		case *wire.PeerChunk:
			l.handleChunk(m, tc)
		case *wire.ChunkData:
			l.handleChunkData(m, tc)
		case *wire.ErrorMsg:
			l.srv.logf("peer %s: remote error %d: %s", l.member, m.Code, m.Text)
		default:
			// HelloOK re-sends, held-output frames for the shadowd pseudo
			// identity, and anything a future version adds: ignore.
		}
	}
}

// down removes the dead link and re-homes its in-flight fetches through
// surviving client sessions — exactly what dropSession does for a dead
// session. Runs only on the read-loop goroutine.
func (l *peerLink) down(err error) {
	s := l.srv
	l.record("fault", "link", wire.TraceContext{}, err.Error())
	l.mu.Lock()
	l.dead = true
	fetching := l.fetching
	l.fetching = nil
	spans := l.spans
	l.spans = nil
	l.mu.Unlock()
	_ = l.conn.Close()
	s.peerMu.Lock()
	if s.peerLinks[l.member] == l {
		delete(s.peerLinks, l.member)
	}
	s.peerMu.Unlock()
	// Every open peer.fetch closes here; the re-homed client pulls mint
	// their own spans under the original context.
	for _, sp := range spans {
		sp.Annotate("link-down").Finish()
	}
	l.dumpFlight(fmt.Sprintf("link down: %v", err))
	for _, pa := range fetching {
		s.releasePeerHeld(pa)
	}
	if pending := s.flights.ReleaseOwner(l.id); len(pending) > 0 {
		for range pending {
			s.counters.AddRingRebalance()
		}
		s.logf("peer %s: link down (%v); re-homing %d fetches", l.member, err, len(pending))
		s.repullPending(l.id, pending)
	} else {
		s.logf("peer %s: link down (%v)", l.member, err)
	}
}

// fallbackToClient re-homes one flight the peer could not serve onto a
// client pull. Harmless if the flight has since completed or changed owner:
// repullPending's pull coalesces onto whatever is in flight. The open
// peer.fetch span closes here with the fallback reason, and the re-homed
// pull inherits its context so the degradation stays inside the one trace;
// the link's ring is dumped so the frames leading up to the fallback are
// inspectable on /flightz.
func (s *Server) fallbackToClient(l *peerLink, id naming.ShadowID, ref wire.FileRef, tc wire.TraceContext, why string) {
	sp := l.takeSpan(id)
	sp.Annotate("fallback: " + why).Finish()
	l.fallbacks.Add(1)
	l.record("fault", "fallback", tc, why)
	l.dumpFlight("fallback: " + why)
	want, ok := s.flights.Pending(id)
	if !ok {
		return
	}
	s.flights.Release(id, l.id)
	s.logf("peer %s: cannot serve %s v%d (%s); pulling from client", l.member, ref, want, why)
	s.repullPending(l.id, []cache.PendingFetch{{Ref: ref, Want: want, TC: ctxOr(sp, tc)}})
}

// handleDelta applies a peer-forwarded delta (requester side).
func (l *peerLink) handleDelta(m *wire.PeerDelta, tc wire.TraceContext) {
	s := l.srv
	id := s.dir.Intern(m.File)
	if m.Negative() {
		l.negativesIn.Add(1)
		s.fallbackToClient(l, id, m.File, tc, "declined")
		return
	}
	l.deltasIn.Add(1)
	entry, ok := s.cache.Get(id)
	if ok && entry.Version >= m.Version {
		l.takeSpan(id).Annotate("already current").Finish()
		s.flights.Done(id, m.Version)
		s.feedWaitingJobs(id, entry.Version, entry.Content)
		return
	}
	if !ok || entry.Version != m.BaseVersion {
		s.fallbackToClient(l, id, m.File, tc, "base not cached")
		return
	}
	content, err := core.ApplyDelta(entry.Content, &wire.FileDelta{
		File:        m.File,
		BaseVersion: m.BaseVersion,
		Version:     m.Version,
		Encoded:     m.Encoded,
		Compressed:  m.Compressed,
	})
	if err != nil {
		s.fallbackToClient(l, id, m.File, tc, "delta did not apply")
		return
	}
	if err := s.cache.PutOwned(id, m.Version, content); err != nil && !errors.Is(err, cache.ErrTooLarge) {
		s.fallbackToClient(l, id, m.File, tc, err.Error())
		return
	}
	l.takeSpan(id).Annotate("delta").Finish()
	s.flights.Done(id, m.Version)
	s.feedWaitingJobs(id, m.Version, content)
}

// peerAssembly is one in-progress manifest answer: chunk references already
// pinned plus the gaps a single CHUNK_REQ round is filling.
type peerAssembly struct {
	ref      wire.FileRef
	version  uint64
	sum      uint32
	manifest chunk.Manifest
	held     []chunk.Hash
	missing  map[chunk.Hash]int
	tc       wire.TraceContext
}

// releasePeerHeld returns an abandoned assembly's chunk references.
func (s *Server) releasePeerHeld(pa *peerAssembly) {
	store := s.cache.ChunkStore()
	for _, h := range pa.held {
		store.Release(h)
	}
	pa.held = nil
}

// handleChunk resolves a peer manifest against the local chunk store
// (requester side), requesting only the gaps. One round: chunks the owner
// cannot supply mean a fallback, not a retry loop.
func (l *peerLink) handleChunk(m *wire.PeerChunk, tc wire.TraceContext) {
	s := l.srv
	id := s.dir.Intern(m.File)
	l.chunksIn.Add(1)
	if v, ok := s.cache.Version(id); ok && v >= m.Version {
		l.takeSpan(id).Annotate("already current").Finish()
		s.flights.Done(id, m.Version)
		return
	}
	store := s.cache.ChunkStore()
	pa := &peerAssembly{
		ref:      m.File,
		version:  m.Version,
		sum:      m.Sum,
		manifest: make(chunk.Manifest, len(m.Chunks)),
		missing:  make(map[chunk.Hash]int),
		tc:       tc,
	}
	for i, c := range m.Chunks {
		h := chunk.Hash(c.Hash)
		pa.manifest[i] = chunk.Ref{Hash: h, Len: c.Len}
		if store.Ref(h) {
			pa.held = append(pa.held, h)
		} else {
			pa.missing[h]++
		}
	}
	if len(pa.missing) == 0 {
		l.finishAssembly(id, pa)
		return
	}
	req := &wire.ChunkReq{File: m.File, Version: m.Version}
	for h := range pa.missing {
		req.Hashes = append(req.Hashes, h)
	}
	l.mu.Lock()
	if l.dead {
		l.mu.Unlock()
		s.releasePeerHeld(pa)
		return // down() re-homes the flight
	}
	if old := l.fetching[id]; old != nil {
		// Superseded by this newer manifest.
		defer s.releasePeerHeld(old)
	}
	l.fetching[id] = pa
	l.mu.Unlock()
	s.counters.AddChunksRequested(len(req.Hashes))
	_ = l.send(req, tc) // a failure tears the link down; down() re-homes
}

// handleChunkData completes (or abandons) a pending peer assembly
// (requester side).
func (l *peerLink) handleChunkData(m *wire.ChunkData, tc wire.TraceContext) {
	s := l.srv
	id := s.dir.Intern(m.File)
	l.mu.Lock()
	pa := l.fetching[id]
	if pa == nil || pa.version != m.Version {
		l.mu.Unlock()
		return // answer to a superseded request
	}
	delete(l.fetching, id) // pa is goroutine-local from here
	l.mu.Unlock()
	store := s.cache.ChunkStore()
	for _, blob := range m.Chunks {
		h := chunk.Hash(blob.Hash)
		if pa.missing[h] == 0 || chunk.HashOf(blob.Data) != h {
			continue
		}
		store.Put(h, blob.Data)
		pa.held = append(pa.held, h)
		for k := pa.missing[h]; k > 1; k-- {
			store.Ref(h)
			pa.held = append(pa.held, h)
		}
		delete(pa.missing, h)
	}
	if len(pa.missing) > 0 {
		// The owner no longer has some chunk (eviction race). Fall back.
		s.releasePeerHeld(pa)
		s.counters.AddFullFallback()
		s.fallbackToClient(l, id, pa.ref, tc, "incomplete chunk answer")
		return
	}
	l.finishAssembly(id, pa)
}

// finishAssembly verifies and installs a completed peer assembly, feeding
// the jobs that were waiting. References transfer to the cache entry.
func (l *peerLink) finishAssembly(id naming.ShadowID, pa *peerAssembly) {
	s := l.srv
	content, ok := s.cache.ChunkStore().Assemble(pa.manifest)
	if !ok || diff.Checksum(content) != pa.sum {
		s.releasePeerHeld(pa)
		s.counters.AddFullFallback()
		s.fallbackToClient(l, id, pa.ref, pa.tc, "checksum mismatch")
		return
	}
	s.cache.PutManifest(id, pa.version, pa.manifest)
	pa.held = nil // references now belong to the cache entry
	l.takeSpan(id).Annotate("chunks").Finish()
	s.flights.Done(id, pa.version)
	s.feedWaitingJobs(id, pa.version, content)
}

// ClusterMembers returns the cluster's member names in sorted order, or nil
// when the server is not clustered. The admin /clusterz view uses it to
// render the placement ring and find the peers to scrape.
func (s *Server) ClusterMembers() []string {
	cs := s.clusterCfg.Load()
	if cs == nil {
		return nil
	}
	return cs.ring.Members()
}

// PeerLinkInfo is one outbound peer link's admin-visible state (/peerz).
type PeerLinkInfo struct {
	// Member is the remote instance name; ID the link's pseudo-session id.
	Member string
	ID     uint64
	// State is "up" or "dead"; Protocol the remote's negotiated version.
	State    string
	Protocol int
	// Fetching counts manifest assemblies awaiting a chunk answer.
	Fetching int
	// Answer accounting, requester side: positive deltas, chunk manifests
	// and negative answers received, plus fetches that degraded to the
	// client-pull path.
	DeltasIn, ChunksIn, NegativesIn, Fallbacks int64
}

// PeerLinks returns a point-in-time view of every outbound peer link,
// sorted by member name.
func (s *Server) PeerLinks() []PeerLinkInfo {
	s.peerMu.Lock()
	links := make([]*peerLink, 0, len(s.peerLinks))
	for _, l := range s.peerLinks {
		links = append(links, l)
	}
	s.peerMu.Unlock()
	out := make([]PeerLinkInfo, 0, len(links))
	for _, l := range links {
		info := PeerLinkInfo{
			Member:      l.member,
			ID:          l.id,
			Protocol:    l.proto,
			DeltasIn:    l.deltasIn.Load(),
			ChunksIn:    l.chunksIn.Load(),
			NegativesIn: l.negativesIn.Load(),
			Fallbacks:   l.fallbacks.Load(),
		}
		l.mu.Lock()
		info.Fetching = len(l.fetching)
		if l.dead {
			info.State = "dead"
		} else {
			info.State = "up"
		}
		l.mu.Unlock()
		out = append(out, info)
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Member < out[b].Member })
	return out
}

// PeerSessionInfo is one inbound peer session's admin-visible state
// (/peerz, owner side): requests served and declined over it.
type PeerSessionInfo struct {
	Session          uint64
	Instance         string
	Served, Declined int64
}

// PeerSessions returns a point-in-time view of every inbound peer session,
// sorted by session id.
func (s *Server) PeerSessions() []PeerSessionInfo {
	live := s.sessions.snapshot()
	out := make([]PeerSessionInfo, 0, 2)
	for _, ss := range live {
		if !ss.peer.Load() {
			continue
		}
		info := PeerSessionInfo{
			Session:  ss.id,
			Served:   ss.peerServed.Load(),
			Declined: ss.peerDeclined.Load(),
		}
		ss.mu.Lock()
		info.Instance = ss.peerInstance
		ss.mu.Unlock()
		out = append(out, info)
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Session < out[b].Session })
	return out
}

// PeerFlights snapshots the live flight recorders of the outbound peer
// links, sorted by member name (/flightz). Empty when tracing is off.
func (s *Server) PeerFlights() []SessionFlight {
	s.peerMu.Lock()
	links := make([]*peerLink, 0, len(s.peerLinks))
	for _, l := range s.peerLinks {
		links = append(links, l)
	}
	s.peerMu.Unlock()
	out := make([]SessionFlight, 0, len(links))
	for _, l := range links {
		if l.rec == nil {
			continue
		}
		out = append(out, SessionFlight{Session: l.id, User: "peer", Host: l.member, Events: l.rec.Snapshot()})
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Host < out[b].Host })
	return out
}

// closePeerLinks tears down every outbound peer link (server shutdown).
func (s *Server) closePeerLinks() {
	s.peerMu.Lock()
	links := make([]*peerLink, 0, len(s.peerLinks))
	for _, l := range s.peerLinks {
		links = append(links, l)
	}
	s.peerLinks = nil
	s.peerMu.Unlock()
	for _, l := range links {
		l.mu.Lock()
		l.dead = true
		l.mu.Unlock()
		_ = l.conn.Close()
	}
}
