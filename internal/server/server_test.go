package server

import (
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"testing"
	"time"

	"shadowedit/internal/cache"
	"shadowedit/internal/diff"
	"shadowedit/internal/naming"
	"shadowedit/internal/netsim"
	"shadowedit/internal/wire"
)

// rig is a server plus a raw protocol connection, for driving the server at
// the wire level.
type rig struct {
	srv  *Server
	conn *netsim.Conn
	host *netsim.Host
}

func newRig(t *testing.T, cfg Config) *rig {
	t.Helper()
	nw := netsim.New()
	serverHost := nw.Host("super")
	clientHost := nw.Host("ws")
	nw.Connect(clientHost, serverHost, netsim.LAN)
	lst, err := serverHost.Listen(1)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Name == "" {
		cfg = Defaults("super")
	}
	srv := New(cfg)
	go func() {
		_ = srv.Serve(AcceptorFunc(func() (wire.Conn, error) {
			return lst.Accept()
		}))
	}()
	t.Cleanup(func() {
		_ = lst.Close()
		srv.Close()
	})
	conn, err := clientHost.Dial("super", 1)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = conn.Close() })
	return &rig{srv: srv, conn: conn, host: clientHost}
}

func (r *rig) send(t *testing.T, m wire.Message) {
	t.Helper()
	if err := wire.Send(r.conn, m); err != nil {
		t.Fatalf("send %v: %v", m.Kind(), err)
	}
}

func (r *rig) recv(t *testing.T) wire.Message {
	t.Helper()
	msg, err := wire.Recv(r.conn)
	if err != nil {
		t.Fatalf("recv: %v", err)
	}
	return msg
}

func (r *rig) hello(t *testing.T) {
	t.Helper()
	r.send(t, &wire.Hello{Protocol: wire.ProtocolVersion, User: "u", Domain: "d", ClientHost: "ws"})
	if m, ok := r.recv(t).(*wire.HelloOK); !ok {
		t.Fatalf("hello reply = %#v", m)
	}
}

var testRef = wire.FileRef{Domain: "d", FileID: "ws:/u/f.dat"}

// sendFull uploads content as a given version and consumes the ack.
func (r *rig) sendFull(t *testing.T, ref wire.FileRef, version uint64, content []byte) {
	t.Helper()
	r.send(t, &wire.FileFull{
		File: ref, Version: version, Content: content, Sum: diff.Checksum(content),
	})
	ack, ok := r.recv(t).(*wire.FileAck)
	if !ok || ack.Version != version {
		t.Fatalf("ack = %#v", ack)
	}
}

func TestHelloWrongProtocolRejected(t *testing.T) {
	r := newRig(t, Config{})
	r.send(t, &wire.Hello{Protocol: 999, User: "u"})
	if m, ok := r.recv(t).(*wire.ErrorMsg); !ok {
		t.Fatalf("reply = %#v, want error", m)
	}
	// The session is closed afterwards.
	if _, err := wire.Recv(r.conn); err == nil {
		t.Fatal("session stayed open after protocol mismatch")
	}
}

func TestDeltaWithoutBaseTriggersFullPull(t *testing.T) {
	r := newRig(t, Config{})
	r.hello(t)
	// A delta referencing a base the cache never saw.
	d, err := diff.Compute(diff.HuntMcIlroy, []byte("old\n"), []byte("new\n"))
	if err != nil {
		t.Fatal(err)
	}
	r.send(t, &wire.FileDelta{File: testRef, BaseVersion: 1, Version: 2, Encoded: d.Encode()})
	pull, ok := r.recv(t).(*wire.Pull)
	if !ok {
		t.Fatalf("reply = %#v, want Pull", pull)
	}
	if pull.HaveVersion != 0 || pull.WantVersion != 2 {
		t.Fatalf("pull = %+v, want full of v2", pull)
	}
}

func TestDeltaAgainstWrongContentTriggersFullPull(t *testing.T) {
	r := newRig(t, Config{})
	r.hello(t)
	r.sendFull(t, testRef, 1, []byte("cached content\n"))
	// Delta whose checksums reference different base bytes at version 1.
	d, err := diff.Compute(diff.HuntMcIlroy, []byte("other content\n"), []byte("new\n"))
	if err != nil {
		t.Fatal(err)
	}
	r.send(t, &wire.FileDelta{File: testRef, BaseVersion: 1, Version: 2, Encoded: d.Encode()})
	pull, ok := r.recv(t).(*wire.Pull)
	if !ok || pull.HaveVersion != 0 {
		t.Fatalf("reply = %#v, want full pull", pull)
	}
}

func TestCorruptDeltaReportsError(t *testing.T) {
	r := newRig(t, Config{})
	r.hello(t)
	r.sendFull(t, testRef, 1, []byte("content\n"))
	r.send(t, &wire.FileDelta{File: testRef, BaseVersion: 1, Version: 2, Encoded: []byte("garbage")})
	if m, ok := r.recv(t).(*wire.ErrorMsg); !ok {
		t.Fatalf("reply = %#v, want error", m)
	}
	// Session survives: a status query still works.
	r.send(t, &wire.StatusReq{All: true})
	if _, ok := r.recv(t).(*wire.StatusReply); !ok {
		t.Fatal("session did not survive corrupt delta")
	}
}

func TestFullWithBadChecksumReportsError(t *testing.T) {
	r := newRig(t, Config{})
	r.hello(t)
	r.send(t, &wire.FileFull{File: testRef, Version: 1, Content: []byte("x"), Sum: 12345})
	if m, ok := r.recv(t).(*wire.ErrorMsg); !ok {
		t.Fatalf("reply = %#v, want error", m)
	}
}

func TestStaleFullDoesNotRegressCache(t *testing.T) {
	r := newRig(t, Config{})
	r.hello(t)
	r.sendFull(t, testRef, 3, []byte("version three\n"))
	// A late full of version 2 arrives (reordered/overtaken transfer).
	r.send(t, &wire.FileFull{
		File: testRef, Version: 2,
		Content: []byte("version two\n"), Sum: diff.Checksum([]byte("version two\n")),
	})
	ack, ok := r.recv(t).(*wire.FileAck)
	if !ok {
		t.Fatalf("reply = %#v, want ack", ack)
	}
	if ack.Version != 3 {
		t.Fatalf("ack version = %d, want 3 (cache must keep the newer)", ack.Version)
	}
}

func TestDuplicateDeltaReAcked(t *testing.T) {
	r := newRig(t, Config{})
	r.hello(t)
	base := []byte("one\ntwo\n")
	next := []byte("one\nTWO\n")
	r.sendFull(t, testRef, 1, base)
	d, err := diff.Compute(diff.HuntMcIlroy, base, next)
	if err != nil {
		t.Fatal(err)
	}
	fd := &wire.FileDelta{File: testRef, BaseVersion: 1, Version: 2, Encoded: d.Encode()}
	r.send(t, fd)
	if ack, ok := r.recv(t).(*wire.FileAck); !ok || ack.Version != 2 {
		t.Fatalf("first delta reply = %#v", ack)
	}
	// The same delta again (duplicate answer to a duplicate pull).
	r.send(t, fd)
	ack, ok := r.recv(t).(*wire.FileAck)
	if !ok || ack.Version != 2 {
		t.Fatalf("duplicate delta reply = %#v, want idempotent ack", ack)
	}
}

func TestSubmitUnparsableScript(t *testing.T) {
	r := newRig(t, Config{})
	r.hello(t)
	r.send(t, &wire.Submit{Script: []byte("explode\n")})
	m, ok := r.recv(t).(*wire.ErrorMsg)
	if !ok || m.Code != wire.CodeBadRequest {
		t.Fatalf("reply = %#v, want bad request", m)
	}
}

func TestSubmitDuplicateInputNames(t *testing.T) {
	r := newRig(t, Config{})
	r.hello(t)
	r.send(t, &wire.Submit{
		Script: []byte("wc a\n"),
		Inputs: []wire.JobInput{
			{File: testRef, Version: 1, As: "a"},
			{File: wire.FileRef{Domain: "d", FileID: "other"}, Version: 1, As: "a"},
		},
	})
	if m, ok := r.recv(t).(*wire.ErrorMsg); !ok {
		t.Fatalf("reply = %#v, want error", m)
	}
}

func TestSubmitMissingReferencedInput(t *testing.T) {
	r := newRig(t, Config{})
	r.hello(t)
	r.send(t, &wire.Submit{Script: []byte("wc a b\n"), Inputs: []wire.JobInput{
		{File: testRef, Version: 1, As: "a"},
	}})
	if m, ok := r.recv(t).(*wire.ErrorMsg); !ok {
		t.Fatalf("reply = %#v, want error", m)
	}
}

func TestStatusUnknownJob(t *testing.T) {
	r := newRig(t, Config{})
	r.hello(t)
	r.send(t, &wire.StatusReq{Job: 42})
	m, ok := r.recv(t).(*wire.ErrorMsg)
	if !ok || m.Code != wire.CodeUnknownJob {
		t.Fatalf("reply = %#v, want unknown job", m)
	}
}

func TestStatusOtherSessionsJobHidden(t *testing.T) {
	// Session A submits; session B must not see or query A's job.
	nw := netsim.New()
	serverHost := nw.Host("super")
	a := nw.Host("a")
	b := nw.Host("b")
	nw.Connect(a, serverHost, netsim.LAN)
	nw.Connect(b, serverHost, netsim.LAN)
	lst, err := serverHost.Listen(1)
	if err != nil {
		t.Fatal(err)
	}
	srv := New(Defaults("super"))
	go func() {
		_ = srv.Serve(AcceptorFunc(func() (wire.Conn, error) { return lst.Accept() }))
	}()
	defer func() {
		_ = lst.Close()
		srv.Close()
	}()

	dial := func(h *netsim.Host) *netsim.Conn {
		c, err := h.Dial("super", 1)
		if err != nil {
			t.Fatal(err)
		}
		if err := wire.Send(c, &wire.Hello{Protocol: wire.ProtocolVersion, User: "u", ClientHost: h.Name()}); err != nil {
			t.Fatal(err)
		}
		if _, err := wire.Recv(c); err != nil {
			t.Fatal(err)
		}
		return c
	}
	connA := dial(a)
	defer connA.Close()
	connB := dial(b)
	defer connB.Close()

	if err := wire.Send(connA, &wire.Submit{Script: []byte("echo hi\n")}); err != nil {
		t.Fatal(err)
	}
	var jobID uint64
	for {
		m, err := wire.Recv(connA)
		if err != nil {
			t.Fatal(err)
		}
		if ok, is := m.(*wire.SubmitOK); is {
			jobID = ok.Job
			break
		}
	}
	if err := wire.Send(connB, &wire.StatusReq{Job: jobID}); err != nil {
		t.Fatal(err)
	}
	if m, err := wire.Recv(connB); err != nil {
		t.Fatal(err)
	} else if em, ok := m.(*wire.ErrorMsg); !ok || em.Code != wire.CodeUnknownJob {
		t.Fatalf("cross-session status = %#v, want unknown job", m)
	}
	if err := wire.Send(connB, &wire.StatusReq{All: true}); err != nil {
		t.Fatal(err)
	}
	if m, err := wire.Recv(connB); err != nil {
		t.Fatal(err)
	} else if sr, ok := m.(*wire.StatusReply); !ok || len(sr.Jobs) != 0 {
		t.Fatalf("cross-session StatusAll = %#v, want empty", m)
	}
}

func TestOutputFullReqUnknownJob(t *testing.T) {
	r := newRig(t, Config{})
	r.hello(t)
	r.send(t, &wire.OutputFullReq{Job: 7})
	if m, ok := r.recv(t).(*wire.ErrorMsg); !ok {
		t.Fatalf("reply = %#v, want error", m)
	}
}

func TestByeEndsSession(t *testing.T) {
	r := newRig(t, Config{})
	r.hello(t)
	r.send(t, &wire.Bye{})
	if _, err := wire.Recv(r.conn); err == nil {
		t.Fatal("session stayed open after bye")
	}
}

func TestUnexpectedMessageReportsError(t *testing.T) {
	r := newRig(t, Config{})
	r.hello(t)
	// A HelloOK from a client is nonsense.
	r.send(t, &wire.HelloOK{Session: 1})
	if m, ok := r.recv(t).(*wire.ErrorMsg); !ok {
		t.Fatalf("reply = %#v, want error", m)
	}
}

func TestRawGarbageDoesNotCrashServer(t *testing.T) {
	r := newRig(t, Config{})
	r.hello(t)
	if err := r.conn.Send([]byte{0xFF, 0x00, 0xEE}); err != nil {
		t.Fatal(err)
	}
	// Undecodable frames end the session (Recv fails server-side), but
	// the server itself survives and accepts new connections.
	conn2, err := r.host.Dial("super", 1)
	if err != nil {
		t.Fatal(err)
	}
	defer conn2.Close()
	if err := wire.Send(conn2, &wire.Hello{Protocol: wire.ProtocolVersion, User: "u2"}); err != nil {
		t.Fatal(err)
	}
	if _, err := wire.Recv(conn2); err != nil {
		t.Fatalf("server dead after garbage frame: %v", err)
	}
}

func TestEagerPullOnNotify(t *testing.T) {
	r := newRig(t, Config{})
	r.hello(t)
	r.send(t, &wire.Notify{File: testRef, Version: 1, Size: 10, Sum: 1})
	pull, ok := r.recv(t).(*wire.Pull)
	if !ok {
		t.Fatalf("reply = %#v, want pull", pull)
	}
	if pull.File != testRef || pull.WantVersion != 1 || pull.HaveVersion != 0 {
		t.Fatalf("pull = %+v", pull)
	}
	issued, deferred := r.srv.FlowStats()
	if issued != 1 || deferred != 0 {
		t.Fatalf("flow stats = (%d, %d)", issued, deferred)
	}
}

func TestLazyPolicyDefersUntilSubmit(t *testing.T) {
	cfg := Defaults("super")
	cfg.Pull = PullLazy
	r := newRig(t, cfg)
	r.hello(t)
	r.send(t, &wire.Notify{File: testRef, Version: 1, Size: 10, Sum: 1})
	// No pull yet: a status round trip confirms the notify was processed
	// and nothing else was sent before the reply.
	r.send(t, &wire.StatusReq{All: true})
	if m := r.recv(t); m.Kind() != wire.KindStatusReply {
		t.Fatalf("got %v before status reply; lazy policy pulled early", m.Kind())
	}
	if issued, deferred := r.srv.FlowStats(); issued != 0 || deferred != 1 {
		t.Fatalf("flow stats = (%d, %d), want (0, 1)", issued, deferred)
	}
	// Submit needing the file forces the pull.
	r.send(t, &wire.Submit{Script: []byte("wc f\n"), Inputs: []wire.JobInput{
		{File: testRef, Version: 1, As: "f"},
	}})
	sawPull := false
	for i := 0; i < 2; i++ {
		switch m := r.recv(t).(type) {
		case *wire.Pull:
			sawPull = true
		case *wire.SubmitOK:
		default:
			t.Fatalf("unexpected %v", m.Kind())
		}
	}
	if !sawPull {
		t.Fatal("submit did not trigger the deferred pull")
	}
}

func TestNotifyForCachedVersionNoPull(t *testing.T) {
	r := newRig(t, Config{})
	r.hello(t)
	r.sendFull(t, testRef, 2, []byte("content\n"))
	// Notify about a version the cache already has (client reconnected).
	r.send(t, &wire.Notify{File: testRef, Version: 2, Size: 8, Sum: 1})
	r.send(t, &wire.StatusReq{All: true})
	if m := r.recv(t); m.Kind() != wire.KindStatusReply {
		t.Fatalf("server pulled a version it already has: %v", m.Kind())
	}
}

func TestJobPipelineAtWireLevel(t *testing.T) {
	r := newRig(t, Config{})
	r.hello(t)
	content := []byte("delta\nalpha\n")
	r.sendFull(t, testRef, 1, content)
	r.send(t, &wire.Submit{Script: []byte("sort f.dat\n"), Inputs: []wire.JobInput{
		{File: testRef, Version: 1, As: "f.dat"},
	}})
	var output *wire.Output
	deadline := time.After(5 * time.Second)
	for output == nil {
		select {
		case <-deadline:
			t.Fatal("no output within deadline")
		default:
		}
		switch m := r.recv(t).(type) {
		case *wire.SubmitOK:
		case *wire.Output:
			output = m
		default:
			t.Fatalf("unexpected %v", m.Kind())
		}
	}
	if string(output.Stdout) != "alpha\ndelta\n" {
		t.Fatalf("stdout = %q", output.Stdout)
	}
	if output.State != wire.JobDone || output.ExitCode != 0 {
		t.Fatalf("output = %+v", output)
	}
}

// TestSubmitRetryRedrivesStrandedJob covers the mid-handler death window: a
// submit handler can create the job and then die before gathering inputs
// (its SUBMIT_OK send fails when the connection drops), leaving a job in
// the initial queued state with no waits registered. The client's retried
// submit hits the duplicate-tag path, which must re-drive input gathering —
// only re-acking the job id would strand it forever.
func TestSubmitRetryRedrivesStrandedJob(t *testing.T) {
	r := newRig(t, Config{})
	r.hello(t)
	script := []byte("sort f.dat\n")
	scriptSum := diff.Checksum(script)
	cmds, _, err := r.srv.parsedScript(scriptSum, script)
	if err != nil {
		t.Fatal(err)
	}
	inputs := []wire.JobInput{{File: testRef, Version: 1, As: "f.dat"}}
	owner := identity{user: "u", host: "ws"}
	live := r.srv.sessions.snapshot()
	if len(live) != 1 {
		t.Fatalf("live sessions = %d, want 1", len(live))
	}
	// Manufacture the stranded job exactly as handleSubmit leaves it when
	// the SUBMIT_OK send fails: created, tagged, never gathered.
	j := &job{
		sess:      live[0],
		owner:     owner,
		script:    script,
		cmds:      cmds,
		scriptSum: scriptSum,
		inputs:    inputs,
		state:     wire.JobQueued,
		waiting:   make(map[naming.ShadowID]uint64),
		byRef:     make(map[naming.ShadowID]string),
		snapshot:  make(map[string][]byte),
	}
	j.id = r.srv.nextJob.Add(1)
	r.srv.jobs.add(j)
	r.srv.tagMu.Lock()
	r.srv.submitTags[owner] = map[uint64]uint64{77: j.id}
	r.srv.tagMu.Unlock()

	// The retried submit must ack the existing job and then pull the
	// missing input.
	r.send(t, &wire.Submit{Script: script, Inputs: inputs, ClientTag: 77})
	sawPull := false
	for i := 0; i < 2; i++ {
		switch m := r.recv(t).(type) {
		case *wire.SubmitOK:
			if m.Job != j.id {
				t.Fatalf("re-ack named job %d, want %d", m.Job, j.id)
			}
		case *wire.Pull:
			sawPull = true
		default:
			t.Fatalf("unexpected %v", m.Kind())
		}
	}
	if !sawPull {
		t.Fatal("retried submit did not re-drive the input pull")
	}
	content := []byte("delta\nalpha\n")
	r.send(t, &wire.FileFull{
		File: testRef, Version: 1, Content: content, Sum: diff.Checksum(content),
	})
	deadline := time.After(5 * time.Second)
	for {
		select {
		case <-deadline:
			t.Fatal("stranded job never completed")
		default:
		}
		switch m := r.recv(t).(type) {
		case *wire.FileAck:
		case *wire.Output:
			if m.Job != j.id || m.State != wire.JobDone || string(m.Stdout) != "alpha\ndelta\n" {
				t.Fatalf("output = %+v", m)
			}
			return
		default:
			t.Fatalf("unexpected %v", m.Kind())
		}
	}
}

func TestServerCloseIdempotent(t *testing.T) {
	srv := New(Defaults("s"))
	srv.Close()
	srv.Close()
}

func TestPullPolicyString(t *testing.T) {
	tests := []struct {
		policy PullPolicy
		want   string
	}{
		{PullEager, "eager"},
		{PullLazy, "lazy"},
		{PullLoadAware, "load-aware"},
		{PullPolicy(9), "pull-policy(9)"},
	}
	for _, tt := range tests {
		if got := tt.policy.String(); got != tt.want {
			t.Errorf("%d.String() = %q, want %q", tt.policy, got, tt.want)
		}
	}
}

func TestCacheCapacityConfigHonored(t *testing.T) {
	cfg := Defaults("super")
	cfg.CacheCapacity = 10
	cfg.CachePolicy = cache.LargestFirst
	r := newRig(t, cfg)
	r.hello(t)
	// A file bigger than the whole cache is still acked (best effort)
	// but not cached.
	big := []byte("this content is bigger than ten bytes\n")
	r.sendFull(t, testRef, 1, big)
	if n := r.srv.Cache().Len(); n != 0 {
		t.Fatalf("cache holds %d entries, want 0", n)
	}
}

func TestLogfReceivesEvents(t *testing.T) {
	var mu sync.Mutex
	var lines []string
	cfg := Defaults("super")
	cfg.Logf = func(format string, args ...any) {
		mu.Lock()
		lines = append(lines, fmt.Sprintf(format, args...))
		mu.Unlock()
	}
	r := newRig(t, cfg)
	r.hello(t)
	r.send(t, &wire.Notify{File: testRef, Version: 1, Size: 4, Sum: 1})
	if _, ok := r.recv(t).(*wire.Pull); !ok {
		t.Fatal("no pull")
	}
	mu.Lock()
	defer mu.Unlock()
	joined := strings.Join(lines, "\n")
	for _, want := range []string{"hello from u@ws", "pull"} {
		if !strings.Contains(joined, want) {
			t.Fatalf("log missing %q:\n%s", want, joined)
		}
	}
}

func TestRandomProtocolSequencesNeverCrash(t *testing.T) {
	// Random (but decodable) message sequences with arbitrary field
	// values: the server must answer or ignore every one, never panic,
	// and keep serving. The sequences mix valid flows with nonsense
	// (acks for unknown jobs, deltas with wild versions, empty scripts).
	rng := rand.New(rand.NewSource(31337))
	r := newRig(t, Config{})
	r.hello(t)

	refs := []wire.FileRef{
		{Domain: "d", FileID: "ws:/a"},
		{Domain: "d", FileID: "ws:/b"},
		{Domain: "", FileID: ""},
	}
	randRef := func() wire.FileRef { return refs[rng.Intn(len(refs))] }
	randBytes := func(n int) []byte {
		b := make([]byte, rng.Intn(n))
		rng.Read(b)
		return b
	}

	drain := func() {
		// Consume whatever the server sent back so its writes never
		// block; bound the effort.
		for i := 0; i < 4; i++ {
			r.send(t, &wire.StatusReq{All: true})
			for {
				m := r.recv(t)
				if m.Kind() == wire.KindStatusReply {
					break
				}
			}
			return
		}
	}

	for op := 0; op < 300; op++ {
		switch rng.Intn(7) {
		case 0:
			r.send(t, &wire.Notify{File: randRef(), Version: uint64(rng.Intn(5)), Size: int64(rng.Intn(1000)), Sum: rng.Uint32()})
		case 1:
			r.send(t, &wire.FileDelta{File: randRef(), BaseVersion: uint64(rng.Intn(3)), Version: uint64(rng.Intn(5)), Encoded: randBytes(64)})
		case 2:
			content := randBytes(128)
			r.send(t, &wire.FileFull{File: randRef(), Version: uint64(rng.Intn(5)), Content: content, Sum: diff.Checksum(content)})
		case 3:
			r.send(t, &wire.Submit{Script: randBytes(32)})
		case 4:
			r.send(t, &wire.OutputAck{Job: uint64(rng.Intn(10))})
		case 5:
			r.send(t, &wire.OutputFullReq{Job: uint64(rng.Intn(10))})
		case 6:
			r.send(t, &wire.StatusReq{Job: uint64(rng.Intn(10))})
		}
		if op%25 == 24 {
			drain()
		}
	}
	drain()
	// The server is still healthy: a fresh connection completes a real
	// job end to end.
	conn2, err := r.host.Dial("super", 1)
	if err != nil {
		t.Fatal(err)
	}
	defer conn2.Close()
	if err := wire.Send(conn2, &wire.Hello{Protocol: wire.ProtocolVersion, User: "fresh", ClientHost: "ws"}); err != nil {
		t.Fatal(err)
	}
	if _, err := wire.Recv(conn2); err != nil {
		t.Fatal(err)
	}
	if err := wire.Send(conn2, &wire.Submit{Script: []byte("echo alive\n")}); err != nil {
		t.Fatal(err)
	}
	deadline := time.After(5 * time.Second)
	for {
		select {
		case <-deadline:
			t.Fatal("no output from healthy-check job")
		default:
		}
		m, err := wire.Recv(conn2)
		if err != nil {
			t.Fatal(err)
		}
		if out, ok := m.(*wire.Output); ok {
			if string(out.Stdout) != "alive\n" {
				t.Fatalf("healthy-check output = %q", out.Stdout)
			}
			return
		}
	}
}
