package server

// Protocol v3 arrivals: a client answers a pull with a FileManifest — the
// wanted version as content-addressed chunk refs, inlining the chunks it
// believes the server lacks. The server resolves every ref already resident
// in the shared chunk store (taking a reference, which pins the chunk against
// cache eviction for the life of the assembly), stores the inline chunks, and
// requests only the remaining gaps with a ChunkReq. A version therefore never
// travels wholesale: after eviction, re-fetching a file costs exactly the
// chunks that are actually gone.
//
// Gap fetches coalesce across sessions through srv.chunkFl: when many users
// upload near-identical fresh content at once, the first assembly to miss a
// chunk claims its fetch and the rest wait; one ChunkData answer completes
// every waiting assembly.
//
// Locking discipline, since chunk arrivals cross session boundaries:
//   - a pendingAssembly is mutated only under its session's ss.mu once it is
//     registered in ss.assembling (before registration it is goroutine-local);
//   - chunkFlights.mu and the chunk store's locks are interior to ss.mu —
//     they may be taken while holding one session mutex, never the reverse;
//   - no goroutine ever holds two session mutexes: waiter notifications
//     (resolveChunk on another session) run only with no mutex held.

import (
	"fmt"

	"shadowedit/internal/chunk"
	"shadowedit/internal/diff"
	"shadowedit/internal/naming"
	"shadowedit/internal/wire"
)

// pendingAssembly is one in-progress chunked arrival: the manifest of the
// incoming version plus the references already acquired on its chunks. The
// references are pins — cache pressure cannot free these chunks while the
// transfer is in flight — and are either transferred to the cache entry on
// completion or released on abort (incomplete answer, checksum mismatch,
// supersession, session death).
type pendingAssembly struct {
	ref     wire.FileRef
	version uint64
	sum     uint32
	// manifest lists every chunk of the incoming version in order.
	manifest chunk.Manifest
	// held records one entry per reference this assembly holds (a hash
	// appearing k times in the manifest is held k times once resolved).
	held []chunk.Hash
	// missing counts, per absent hash, how many manifest slots need it.
	missing map[chunk.Hash]int
	// owned lists the hashes whose cross-session fetch this assembly claimed
	// in srv.chunkFl; gaps absent from owned are riding another session's
	// flight. A hash in owned but no longer in missing has arrived.
	owned []chunk.Hash
	// awaiting counts ChunkReqs sent whose answers have not come back. Once
	// it reaches zero, an owned hash still missing means the client could not
	// supply it.
	awaiting int
	// fetched is set once the assembly needed chunks beyond the manifest's
	// own inline data: completing afterwards is a rehydration (the transfer
	// was repaired at chunk granularity).
	fetched bool
	tc      wire.TraceContext
}

// ownedMissing reports whether a hash this assembly claimed the fetch for is
// still missing.
func (pa *pendingAssembly) ownedMissing() bool {
	for _, h := range pa.owned {
		if pa.missing[h] > 0 {
			return true
		}
	}
	return false
}

// chunkNotice defers waiter notification for one arrived hash until the
// admitting goroutine has dropped its session mutex.
type chunkNotice struct {
	h       chunk.Hash
	waiters []chunkWaiter
}

// notifyWaiters pokes every waiter of every notice. Callers must hold no
// session mutex.
func notifyWaiters(notices []chunkNotice) {
	for _, n := range notices {
		for _, w := range n.waiters {
			w.ss.resolveChunk(w.id, n.h)
		}
	}
}

func (ss *session) handleFileManifest(m *wire.FileManifest, tc wire.TraceContext) error {
	ss.srv.counters.AddManifest(m.PayloadLen())
	sp := ss.srv.cfg.Obs.StartSpan(tc, "server.apply-manifest").SetSession(ss.id)
	if sp != nil {
		sp.SetFile(m.File.String())
	}
	defer sp.Finish()
	id := ss.srv.dir.Intern(m.File)
	if have, ok := ss.srv.cache.Version(id); ok && have >= m.Version {
		// Duplicate or overtaken transfer; re-acknowledge idempotently.
		sp.Annotate("duplicate")
		ss.abortAssembly(id, 0) // drop any older in-progress assembly too
		return ss.sendTraced(&wire.FileAck{File: m.File, Version: have}, tc)
	}
	// A newer manifest supersedes any assembly still in flight for the file.
	ss.abortAssembly(id, m.Version)

	store := ss.srv.cache.ChunkStore()
	pa := &pendingAssembly{
		ref:      m.File,
		version:  m.Version,
		sum:      m.Sum,
		manifest: make(chunk.Manifest, len(m.Chunks)),
		missing:  make(map[chunk.Hash]int),
		tc:       tc,
	}
	for i, c := range m.Chunks {
		h := chunk.Hash(c.Hash)
		pa.manifest[i] = chunk.Ref{Hash: h, Len: c.Len}
		if store.Ref(h) {
			pa.held = append(pa.held, h)
		} else {
			pa.missing[h]++
		}
	}
	var notices []chunkNotice
	for _, ic := range m.Inline {
		if int(ic.Index) >= len(pa.manifest) {
			notifyWaiters(notices)
			ss.releaseAssembly(pa)
			return fmt.Errorf("manifest for %s: inline index %d out of range", m.File, ic.Index)
		}
		want := pa.manifest[ic.Index]
		if pa.missing[want.Hash] == 0 {
			continue // already resident (or a duplicate inline)
		}
		ws, err := ss.admitChunk(pa, want.Hash, ic.Data)
		if len(ws) > 0 {
			notices = append(notices, chunkNotice{h: want.Hash, waiters: ws})
		}
		if err != nil {
			// Deliver what did arrive before dropping our pins, so waiters
			// can take their own references while the chunks are resident.
			notifyWaiters(notices)
			ss.releaseAssembly(pa)
			return fmt.Errorf("manifest for %s: %w", m.File, err)
		}
	}
	if len(pa.missing) == 0 {
		notifyWaiters(notices)
		sp.Annotate("complete")
		return ss.finishAssembly(id, pa)
	}
	// Gaps remain. The steady state (delta-as-chunks with the base cached)
	// never gets here; eviction recovery, cold caches, and concurrent
	// same-content uploads do. Register the assembly, then per gap either
	// claim the fetch or ride a flight another session already owns.
	pa.fetched = true
	gaps := make([]chunk.Hash, 0, len(pa.missing))
	for h := range pa.missing {
		gaps = append(gaps, h)
	}
	req := &wire.ChunkReq{File: m.File, Version: m.Version}
	ss.mu.Lock()
	ss.assembling[id] = pa
	for _, h := range gaps {
		// A waited-on chunk may have landed between the first pass and
		// registration; pin it now rather than wait on a retired flight.
		if store.Ref(h) {
			for k := pa.missing[h]; k > 1; k-- {
				store.Ref(h)
			}
			for k := pa.missing[h]; k > 0; k-- {
				pa.held = append(pa.held, h)
			}
			delete(pa.missing, h)
			continue
		}
		if ss.srv.chunkFl.claim(h, ss, id) {
			pa.owned = append(pa.owned, h)
			req.Hashes = append(req.Hashes, h)
		}
	}
	done := len(pa.missing) == 0
	if done {
		delete(ss.assembling, id)
	} else if len(req.Hashes) > 0 {
		pa.awaiting++
	}
	ss.mu.Unlock()
	notifyWaiters(notices)
	if done {
		sp.Annotate("complete")
		return ss.finishAssembly(id, pa)
	}
	if len(req.Hashes) == 0 {
		// Every gap is already in flight through another session; this
		// assembly completes when those chunks land, costing no wire bytes.
		sp.Annotate("chunks-coalesced")
		return nil
	}
	ss.srv.counters.AddChunksRequested(len(req.Hashes))
	sp.Annotate("chunks-requested")
	return ss.sendTraced(req, tc)
}

func (ss *session) handleChunkData(m *wire.ChunkData, tc wire.TraceContext) error {
	ss.srv.counters.AddChunkData(m.PayloadLen())
	sp := ss.srv.cfg.Obs.StartSpan(tc, "server.apply-chunks").SetSession(ss.id)
	if sp != nil {
		sp.SetFile(m.File.String())
	}
	defer sp.Finish()
	id := ss.srv.dir.Intern(m.File)
	ss.mu.Lock()
	pa := ss.assembling[id]
	if pa == nil || pa.version != m.Version {
		ss.mu.Unlock()
		sp.Annotate("stale")
		return nil // answer to a superseded request; already handled
	}
	if pa.awaiting > 0 {
		pa.awaiting--
	}
	var notices []chunkNotice
	var admitErr error
	for _, blob := range m.Chunks {
		h := chunk.Hash(blob.Hash)
		if pa.missing[h] == 0 {
			continue
		}
		ws, err := ss.admitChunk(pa, h, blob.Data)
		if len(ws) > 0 {
			notices = append(notices, chunkNotice{h: h, waiters: ws})
		}
		if err != nil {
			admitErr = fmt.Errorf("chunk data for %s: %w", m.File, err)
			break
		}
	}
	var done, incomplete bool
	switch {
	case admitErr != nil:
		delete(ss.assembling, id)
	case len(pa.missing) == 0:
		delete(ss.assembling, id)
		done = true
	case pa.awaiting == 0 && pa.ownedMissing():
		// Every request of ours is answered, yet chunks we asked for did
		// not come: the client no longer has them (its version store moved
		// on). Gaps riding other sessions' flights alone would keep the
		// assembly waiting instead.
		delete(ss.assembling, id)
		incomplete = true
	}
	ss.mu.Unlock()
	notifyWaiters(notices)
	switch {
	case admitErr != nil:
		ss.failAssembly(pa)
		return admitErr
	case done:
		sp.Annotate("complete")
		return ss.finishAssembly(id, pa)
	case incomplete:
		// Drop the assembly and fetch the file's current head whole — the
		// convergent fallback.
		sp.Annotate("incomplete")
		ss.failAssembly(pa)
		ss.srv.counters.AddFullFallback()
		return ss.forcePullFull(m.File, m.Version, tc)
	}
	sp.Annotate("waiting") // remaining gaps ride other sessions' flights
	return nil
}

// resolveChunk is the cross-session poke: the flight for h retired (the
// chunk arrived somewhere, or its fetch died) and this session's assembly
// for id was waiting on it. Resolve against the store first; if the chunk is
// not there after all, claim a fresh fetch from this session's own client —
// its manifest advertised the hash, so it can supply it.
func (ss *session) resolveChunk(id naming.ShadowID, h chunk.Hash) {
	store := ss.srv.cache.ChunkStore()
	ss.mu.Lock()
	pa := ss.assembling[id]
	if pa == nil || pa.missing[h] == 0 {
		ss.mu.Unlock()
		return
	}
	if !store.Ref(h) {
		claimed := ss.srv.chunkFl.claim(h, ss, id)
		if claimed {
			pa.owned = append(pa.owned, h)
			pa.awaiting++
		}
		ss.mu.Unlock()
		if claimed {
			ss.srv.counters.AddChunksRequested(1)
			_ = ss.sendTraced(&wire.ChunkReq{File: pa.ref, Version: pa.version,
				Hashes: [][chunk.HashSize]byte{h}}, pa.tc)
		}
		return
	}
	for k := pa.missing[h]; k > 1; k-- {
		store.Ref(h)
	}
	for k := pa.missing[h]; k > 0; k-- {
		pa.held = append(pa.held, h)
	}
	delete(pa.missing, h)
	done := len(pa.missing) == 0
	if done {
		delete(ss.assembling, id)
	}
	ss.mu.Unlock()
	if done {
		// A send failure here means this waiter session is dying; its
		// teardown releases the assembly state.
		_ = ss.finishAssembly(id, pa)
	}
}

// admitChunk verifies an arriving chunk's address against the assembly's
// manifest, stores it, and acquires one reference per manifest slot that
// needs it. The caller must have checked pa.missing[h] > 0, must hold ss.mu
// if pa is registered, and must deliver the returned waiters (via
// notifyWaiters) once no session mutex is held.
func (ss *session) admitChunk(pa *pendingAssembly, h chunk.Hash, data []byte) ([]chunkWaiter, error) {
	if chunk.HashOf(data) != h {
		return nil, fmt.Errorf("chunk %x: content does not match its address", h[:4])
	}
	store := ss.srv.cache.ChunkStore()
	store.Put(h, data)
	pa.held = append(pa.held, h)
	for k := pa.missing[h]; k > 1; k-- {
		store.Ref(h)
		pa.held = append(pa.held, h)
	}
	delete(pa.missing, h)
	return ss.srv.chunkFl.arrived(h), nil
}

// finishAssembly reassembles the completed version, verifies its whole-file
// checksum, installs the manifest in the cache (transferring this assembly's
// chunk references to the entry), and runs the shared arrival bookkeeping.
// The assembly must already be deregistered from ss.assembling.
func (ss *session) finishAssembly(id naming.ShadowID, pa *pendingAssembly) error {
	store := ss.srv.cache.ChunkStore()
	content, ok := store.Assemble(pa.manifest)
	if !ok || diff.Checksum(content) != pa.sum {
		// Lost a chunk we hold a reference on (a refcounting bug) or the
		// client's manifest did not describe the content it claimed;
		// either way the classic whole-file path repairs it.
		ss.releaseAssembly(pa)
		ss.srv.counters.AddFullFallback()
		return ss.forcePullFull(pa.ref, pa.version, pa.tc)
	}
	if pa.fetched {
		ss.srv.counters.AddRehydration()
	}
	ss.srv.cache.PutManifest(id, pa.version, pa.manifest)
	pa.held = nil // references now belong to the cache entry
	return ss.arrived(pa.ref, id, pa.version, content, pa.tc)
}

// abortAssembly drops an in-progress assembly for id whose version is below
// newer (0 = any), releasing its chunk references and failing any chunk
// flights it owned.
func (ss *session) abortAssembly(id naming.ShadowID, newer uint64) {
	ss.mu.Lock()
	pa := ss.assembling[id]
	if pa == nil || (newer != 0 && pa.version >= newer) {
		ss.mu.Unlock()
		return
	}
	delete(ss.assembling, id)
	ss.mu.Unlock()
	ss.failAssembly(pa)
}

// failAssembly disposes of a dead, already-deregistered assembly: chunk
// fetches it owned that never arrived are failed so their waiters can claim
// fresh fetches from their own clients, then its references are released.
// Callers must hold no session mutex.
func (ss *session) failAssembly(pa *pendingAssembly) {
	for _, h := range pa.owned {
		if pa.missing[h] == 0 {
			continue
		}
		for _, w := range ss.srv.chunkFl.fail(h) {
			w.ss.resolveChunk(w.id, h)
		}
	}
	pa.owned = nil
	ss.releaseAssembly(pa)
}

// releaseAssembly returns every chunk reference the assembly holds.
func (ss *session) releaseAssembly(pa *pendingAssembly) {
	store := ss.srv.cache.ChunkStore()
	for _, h := range pa.held {
		store.Release(h)
	}
	pa.held = nil
}

// releaseAssemblies drops every in-progress assembly (session teardown):
// the pins die with the session, so eviction regains its full freedom, and
// owned chunk flights fail over to their waiters.
func (ss *session) releaseAssemblies() {
	ss.mu.Lock()
	pending := make([]*pendingAssembly, 0, len(ss.assembling))
	for id, pa := range ss.assembling {
		pending = append(pending, pa)
		delete(ss.assembling, id)
	}
	ss.mu.Unlock()
	for _, pa := range pending {
		ss.failAssembly(pa)
	}
}
