package server

import (
	"errors"
	"testing"
	"time"

	"shadowedit/internal/diff"
	"shadowedit/internal/netsim"
	"shadowedit/internal/wire"
)

// joinTestCluster places a rig's server on a two-member ring whose remote
// member can never be dialed — enough to exercise every owner-side peer path
// without a second live server.
func joinTestCluster(srv *Server) {
	srv.JoinCluster(ClusterSpec{
		Instance: "super",
		Members:  []string{"super", "other"},
		Dial: func(string) (wire.Conn, error) {
			return nil, errors.New("unreachable")
		},
	})
}

// dialSecond opens another wire-level connection to the rig's server.
func (r *rig) dialSecond(t *testing.T) *netsim.Conn {
	t.Helper()
	conn, err := r.host.Dial("super", 1)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = conn.Close() })
	return conn
}

func sendOn(t *testing.T, conn *netsim.Conn, m wire.Message) {
	t.Helper()
	if err := wire.Send(conn, m); err != nil {
		t.Fatalf("send %v: %v", m.Kind(), err)
	}
}

func helloOn(t *testing.T, conn *netsim.Conn) {
	t.Helper()
	sendOn(t, conn, &wire.Hello{Protocol: wire.ProtocolVersion, User: "shadowd", Domain: "cluster", ClientHost: "other"})
	if m := recvWithin(t, conn, 5*time.Second); m.Kind() != wire.KindHelloOK {
		t.Fatalf("hello reply = %#v", m)
	}
}

// parkedPeerWaiters counts the parked peer requests across all files.
func parkedPeerWaiters(s *Server) int {
	s.peerWaitMu.Lock()
	defer s.peerWaitMu.Unlock()
	n := 0
	for _, list := range s.peerWaiters {
		n += len(list)
	}
	return n
}

// eventually polls cond until it holds or the deadline passes.
func eventually(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("condition never held: %s", what)
}

// TestPeerFramesOnUnclusteredServerRejected pins the crash a crafted v5
// client could trigger on a default single-server deployment: PEER_HELLO
// used to be accepted without checking cluster membership, after which a
// PEER_NOTIFY racing an in-flight fetch parked on the (nil, pre-JoinCluster)
// waiter map and panicked the whole process. The handshake is refused now,
// the session never gains peer standing, and the server keeps serving.
func TestPeerFramesOnUnclusteredServerRejected(t *testing.T) {
	r := newRig(t, Config{})
	r.hello(t)
	// Put a fetch in flight for the file — the state the old panic needed.
	r.send(t, &wire.Notify{File: testRef, Version: 1, Size: 4, Sum: 1})
	if m := r.recv(t); m.Kind() != wire.KindPull {
		t.Fatalf("notify reply = %v, want eager pull", m.Kind())
	}

	mal := r.dialSecond(t)
	helloOn(t, mal)
	sendOn(t, mal, &wire.PeerHello{Instance: "evil"})
	if m := recvWithin(t, mal, 5*time.Second); m.Kind() != wire.KindError {
		t.Fatalf("PEER_HELLO on unclustered server answered %v, want error", m.Kind())
	}
	sendOn(t, mal, &wire.PeerNotify{File: testRef, WantVersion: 1})
	if m := recvWithin(t, mal, 5*time.Second); m.Kind() != wire.KindError {
		t.Fatalf("PEER_NOTIFY without peer standing answered %v, want error", m.Kind())
	}

	// The server survived and still serves ordinary traffic.
	r.sendFull(t, testRef, 1, []byte("ok\n"))
}

// TestPeerWaiterDeclinedWhenFlightAbandoned covers the stranded-requester
// path: a peer request parked on an in-flight client pull whose session dies
// with no other session to re-home the fetch onto. The abandoned flight must
// decline the parked peer (negative PEER_DELTA) so the requester falls back
// to its own client instead of hanging on a healthy link forever.
func TestPeerWaiterDeclinedWhenFlightAbandoned(t *testing.T) {
	r := newRig(t, Config{})
	joinTestCluster(r.srv)
	r.hello(t)
	r.send(t, &wire.Notify{File: testRef, Version: 1, Size: 4, Sum: 1})
	if m := r.recv(t); m.Kind() != wire.KindPull {
		t.Fatalf("notify reply = %v, want eager pull", m.Kind())
	}

	peer := r.dialSecond(t)
	helloOn(t, peer)
	sendOn(t, peer, &wire.PeerHello{Instance: "other"})
	sendOn(t, peer, &wire.PeerNotify{File: testRef, WantVersion: 1})
	eventually(t, "peer request parked on the in-flight pull", func() bool {
		return parkedPeerWaiters(r.srv) == 1
	})

	// The pulling client dies; nothing else can re-home the fetch.
	_ = r.conn.Close()
	m := recvWithin(t, peer, 5*time.Second)
	pd, ok := m.(*wire.PeerDelta)
	if !ok || !pd.Negative() {
		t.Fatalf("abandoned waiter got %#v, want negative PeerDelta", m)
	}
	if parkedPeerWaiters(r.srv) != 0 {
		t.Fatal("declined waiter still parked")
	}
}

// TestDeadPeerSessionPurgedFromWaiters: a peer session that disconnects
// while parked must be removed from the waiter map, not retained until (or
// answered after) an arrival that can only fail to reach it.
func TestDeadPeerSessionPurgedFromWaiters(t *testing.T) {
	r := newRig(t, Config{})
	joinTestCluster(r.srv)
	r.hello(t)
	r.send(t, &wire.Notify{File: testRef, Version: 1, Size: 4, Sum: 1})
	if m := r.recv(t); m.Kind() != wire.KindPull {
		t.Fatalf("notify reply = %v, want eager pull", m.Kind())
	}

	peer := r.dialSecond(t)
	helloOn(t, peer)
	sendOn(t, peer, &wire.PeerHello{Instance: "other"})
	sendOn(t, peer, &wire.PeerNotify{File: testRef, WantVersion: 1})
	eventually(t, "peer request parked on the in-flight pull", func() bool {
		return parkedPeerWaiters(r.srv) == 1
	})

	_ = peer.Close()
	eventually(t, "dead peer session purged from waiters", func() bool {
		return parkedPeerWaiters(r.srv) == 0
	})

	// The pull's arrival finds no stale waiter and installs normally.
	r.sendFull(t, testRef, 1, []byte("late\n"))
}

// TestPeerForwardBytesSavedClamped: a delta that encodes larger than the
// content it produces (tiny file) must not drive the fleet-summed
// delta_bytes_saved counter negative when forwarded to a peer.
func TestPeerForwardBytesSavedClamped(t *testing.T) {
	r := newRig(t, Config{})
	joinTestCluster(r.srv)
	r.hello(t)
	r.sendFull(t, testRef, 1, []byte("a\n"))
	d, err := diff.Compute(diff.HuntMcIlroy, []byte("a\n"), []byte("b\n"))
	if err != nil {
		t.Fatal(err)
	}
	enc := d.Encode()
	if len(enc) <= 2 {
		t.Fatalf("delta encodes in %d bytes; test needs it larger than the 2-byte content", len(enc))
	}
	r.send(t, &wire.FileDelta{File: testRef, BaseVersion: 1, Version: 2, Encoded: enc})
	if ack, ok := r.recv(t).(*wire.FileAck); !ok || ack.Version != 2 {
		t.Fatalf("ack = %#v", ack)
	}

	peer := r.dialSecond(t)
	helloOn(t, peer)
	sendOn(t, peer, &wire.PeerHello{Instance: "other"})
	sendOn(t, peer, &wire.PeerNotify{File: testRef, HaveVersion: 1, WantVersion: 2})
	m := recvWithin(t, peer, 5*time.Second)
	if pd, ok := m.(*wire.PeerDelta); !ok || pd.Negative() {
		t.Fatalf("peer answer = %#v, want forwarded delta", m)
	}
	snap := r.srv.Metrics()
	if snap.PeerForwards != 1 {
		t.Fatalf("PeerForwards = %d, want 1", snap.PeerForwards)
	}
	if snap.DeltaBytesSaved != 0 {
		t.Fatalf("DeltaBytesSaved = %d, want 0 (clamped)", snap.DeltaBytesSaved)
	}
}

// TestPeerDeltaDroppedWithCacheEntry: the retained forwarding delta must
// leave with its cache entry, keeping lastDeltas bounded by the cache.
func TestPeerDeltaDroppedWithCacheEntry(t *testing.T) {
	srv := New(Defaults("super"))
	defer srv.Close()
	joinTestCluster(srv)
	id := srv.dir.Intern(testRef)
	if err := srv.cache.Put(id, 2, []byte("hello\n")); err != nil {
		t.Fatal(err)
	}
	srv.notePeerDelta(id, &wire.FileDelta{File: testRef, BaseVersion: 1, Version: 2, Encoded: []byte("e")}, 6)
	if srv.peerDeltaFor(id) == nil {
		t.Fatal("delta not retained")
	}
	if !srv.cache.Evict(id) {
		t.Fatal("evict reported the entry missing")
	}
	if srv.peerDeltaFor(id) != nil {
		t.Fatal("retained peer delta survived its cache entry's eviction")
	}
}
