package server

import (
	"testing"
	"time"

	"shadowedit/internal/diff"
	"shadowedit/internal/netsim"
	"shadowedit/internal/wire"
)

// dialSameIdentity opens a wire-level connection claiming the given
// (user, clientHost) identity, regardless of which simulated host carries it.
func dialSameIdentity(t *testing.T, nw *netsim.Network, serverHost *netsim.Host, simHost string) *netsim.Conn {
	t.Helper()
	host := nw.Host(simHost)
	nw.Connect(host, serverHost, netsim.LAN)
	conn, err := host.Dial("super", 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := wire.Send(conn, &wire.Hello{
		Protocol: wire.ProtocolVersion, User: "u", Domain: "d", ClientHost: "ws",
	}); err != nil {
		t.Fatal(err)
	}
	if m, err := wire.Recv(conn); err != nil {
		t.Fatal(err)
	} else if _, ok := m.(*wire.HelloOK); !ok {
		t.Fatalf("hello reply = %#v", m)
	}
	return conn
}

// recvWithin receives one message or fails the test after the timeout —
// a plain Recv would turn a regression into a hang.
func recvWithin(t *testing.T, conn *netsim.Conn, d time.Duration) wire.Message {
	t.Helper()
	type result struct {
		m   wire.Message
		err error
	}
	ch := make(chan result, 1)
	go func() {
		m, err := wire.Recv(conn)
		ch <- result{m, err}
	}()
	select {
	case r := <-ch:
		if r.err != nil {
			t.Fatalf("recv: %v", r.err)
		}
		return r.m
	case <-time.After(d):
		t.Fatalf("no message within %v", d)
		return nil
	}
}

// TestRepullSurvivesCoalescedOwnerDeath pins the reconnect interleaving that
// used to strand a job in fetching forever: session A owns the in-flight
// pull for a job input; the client re-attaches as session B, whose pull for
// the same input coalesces onto A's flight; then A dies. Releasing A's
// flight must re-issue the pull on B — B is not any waiter's submitting
// session (the job's sess pointer still names A), so the fallback has to
// find it by owner identity.
func TestRepullSurvivesCoalescedOwnerDeath(t *testing.T) {
	nw := netsim.New()
	serverHost := nw.Host("super")
	lst, err := serverHost.Listen(1)
	if err != nil {
		t.Fatal(err)
	}
	srv := New(Defaults("super"))
	go func() {
		_ = srv.Serve(AcceptorFunc(func() (wire.Conn, error) { return lst.Accept() }))
	}()
	t.Cleanup(func() {
		_ = lst.Close()
		srv.Close()
	})

	ref := wire.FileRef{Domain: "d", FileID: "ws:/d.dat"}
	content := []byte("input payload\n")

	connA := dialSameIdentity(t, nw, serverHost, "wsA")
	// A notifies v1: the eager policy pulls immediately; A now owns the
	// flight for (ref, v1) and deliberately never answers.
	if err := wire.Send(connA, &wire.Notify{File: ref, Version: 1, Size: int64(len(content)), Sum: diff.Checksum(content)}); err != nil {
		t.Fatal(err)
	}
	if m := recvWithin(t, connA, 5*time.Second); m.Kind() != wire.KindPull {
		t.Fatalf("expected pull on A, got %#v", m)
	}
	// A submits a job needing that input: the job registers as a waiter
	// with sess = A's session.
	if err := wire.Send(connA, &wire.Submit{
		Script: []byte("checksum d\n"),
		Inputs: []wire.JobInput{{File: ref, Version: 1, As: "d"}},
	}); err != nil {
		t.Fatal(err)
	}
	okMsg, ok := recvWithin(t, connA, 5*time.Second).(*wire.SubmitOK)
	if !ok {
		t.Fatalf("expected submit ok on A")
	}

	// The client re-attaches as B (same identity). B's hello re-pulls the
	// waiting input, which coalesces onto A's still-open flight: no Pull
	// reaches B yet. Round-trip a status request to prove the hello (and
	// its repull pass) fully completed.
	connB := dialSameIdentity(t, nw, serverHost, "wsB")
	if err := wire.Send(connB, &wire.StatusReq{Job: okMsg.Job}); err != nil {
		t.Fatal(err)
	}
	if m, ok := recvWithin(t, connB, 5*time.Second).(*wire.StatusReply); !ok {
		t.Fatalf("expected status reply on B, got %#v", m)
	} else if len(m.Jobs) != 1 || m.Jobs[0].State != wire.JobFetching {
		t.Fatalf("job status = %+v, want fetching", m.Jobs)
	}

	// A dies with the flight open. Releasing it must re-issue the pull on
	// B even though no waiter's session pointer names B.
	_ = connA.Close()
	m := recvWithin(t, connB, 5*time.Second)
	pull, ok := m.(*wire.Pull)
	if !ok || pull.File != ref || pull.WantVersion != 1 {
		t.Fatalf("expected re-issued pull on B, got %#v", m)
	}

	// B answers; the job must now run to completion and deliver on B.
	if err := wire.Send(connB, &wire.FileFull{File: ref, Version: 1, Content: content, Sum: diff.Checksum(content)}); err != nil {
		t.Fatal(err)
	}
	for {
		switch msg := recvWithin(t, connB, 5*time.Second).(type) {
		case *wire.FileAck:
			continue
		case *wire.Output:
			if msg.Job != okMsg.Job || msg.State != wire.JobDone {
				t.Fatalf("output = %+v", msg)
			}
			return
		default:
			t.Fatalf("unexpected message on B: %#v", msg)
		}
	}
}

// TestRepullFallsBackAcrossManyWaiters is the same scenario with several
// stranded jobs waiting on one input: one released flight must revive all of
// them through the surviving session.
func TestRepullFallsBackAcrossManyWaiters(t *testing.T) {
	nw := netsim.New()
	serverHost := nw.Host("super")
	lst, err := serverHost.Listen(1)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Defaults("super")
	cfg.MaxConcurrentJobs = 4
	srv := New(cfg)
	go func() {
		_ = srv.Serve(AcceptorFunc(func() (wire.Conn, error) { return lst.Accept() }))
	}()
	t.Cleanup(func() {
		_ = lst.Close()
		srv.Close()
	})

	ref := wire.FileRef{Domain: "d", FileID: "ws:/shared.dat"}
	content := []byte("shared input\n")

	connA := dialSameIdentity(t, nw, serverHost, "wsA")
	if err := wire.Send(connA, &wire.Notify{File: ref, Version: 1, Size: int64(len(content)), Sum: diff.Checksum(content)}); err != nil {
		t.Fatal(err)
	}
	if m := recvWithin(t, connA, 5*time.Second); m.Kind() != wire.KindPull {
		t.Fatalf("expected pull on A, got %#v", m)
	}
	const jobsN = 3
	for i := 0; i < jobsN; i++ {
		if err := wire.Send(connA, &wire.Submit{
			Script: []byte("checksum d\n"),
			Inputs: []wire.JobInput{{File: ref, Version: 1, As: "d"}},
		}); err != nil {
			t.Fatal(err)
		}
		if _, ok := recvWithin(t, connA, 5*time.Second).(*wire.SubmitOK); !ok {
			t.Fatalf("submit %d not acked", i)
		}
	}

	connB := dialSameIdentity(t, nw, serverHost, "wsB")
	if err := wire.Send(connB, &wire.StatusReq{All: true}); err != nil {
		t.Fatal(err)
	}
	if _, ok := recvWithin(t, connB, 5*time.Second).(*wire.StatusReply); !ok {
		t.Fatal("no status reply on B")
	}
	_ = connA.Close()

	if m := recvWithin(t, connB, 5*time.Second); m.Kind() != wire.KindPull {
		t.Fatalf("expected re-issued pull on B, got %#v", m)
	}
	if err := wire.Send(connB, &wire.FileFull{File: ref, Version: 1, Content: content, Sum: diff.Checksum(content)}); err != nil {
		t.Fatal(err)
	}
	gotOutputs := 0
	for gotOutputs < jobsN {
		switch msg := recvWithin(t, connB, 5*time.Second).(type) {
		case *wire.FileAck:
		case *wire.Output:
			if msg.State != wire.JobDone {
				t.Fatalf("output = %+v", msg)
			}
			gotOutputs++
		default:
			t.Fatalf("unexpected message on B: %#v", msg)
		}
	}
}
