package server

import (
	"errors"
	"fmt"
	"log/slog"
	"sync"
	"sync/atomic"
	"time"

	"shadowedit/internal/cache"
	"shadowedit/internal/core"
	"shadowedit/internal/diff"
	"shadowedit/internal/naming"
	"shadowedit/internal/trace"
	"shadowedit/internal/tree"
	"shadowedit/internal/wire"
)

// outQueueDepth bounds each session's outbound pipeline. Deep enough that
// notify/pull/delta bursts never stall the receive loop; a full queue means
// the peer is not draining and backpressure is the right behavior.
const outQueueDepth = 256

// outbound is one queued wire message. errc, when non-nil, makes the send
// synchronous: the writer flushes and reports the transport result — output
// delivery needs the error to trigger hold-and-requeue semantics.
type outbound struct {
	msg  wire.Message
	errc chan error
	// tc is the trace context the frame carries (zero = untraced frame,
	// byte-identical to the version-1 encoding).
	tc wire.TraceContext
	// stamp is the virtual instant the message was enqueued, captured when
	// the transport keeps virtual time (stamped). The writer transmits from
	// that instant, so pipelining never shifts simulated timing: by the
	// time the writer runs, the receive side may already have advanced the
	// host clock.
	stamp   time.Duration
	stamped bool
}

// session is one client connection's server-side state.
type session struct {
	srv  *Server
	conn wire.Conn
	id   uint64

	user       string
	domain     string
	clientHost string

	// mu guards the maps below: the session goroutine and pool workers
	// (job completion → drainDeferred/sendOutput) both touch them.
	mu sync.Mutex
	// deferred holds notifies whose pulls the load-aware policy postponed,
	// keyed by interned file id, each with the trace context it arrived
	// under so a drained pull stays part of the notifying cycle's trace.
	// (All per-file maps key on naming.ShadowID rather than ref.String():
	// interning is two map probes, while the string key costs a fresh
	// concatenation on every hot-path lookup.)
	deferred map[naming.ShadowID]deferredNotify
	// pulled tracks the highest version already requested per file, so
	// notify+submit bursts do not issue duplicate pulls (a duplicate
	// delta would look stale on arrival and trigger a wasteful full
	// retransmission).
	pulled map[naming.ShadowID]uint64
	// trees caches the workspace summaries built for v4 reconciliation
	// walks, keyed by workspace root. Each is a snapshot taken at
	// TREE_HEAD time and discarded when the walk's BATCH_NOTIFY lands.
	trees map[string]*tree.Tree
	// batchQueue and batchInflight window the pulls a BATCH_NOTIFY fans
	// out. The dispatch loop is the connection's only reader, so issuing a
	// workspace's worth of pulls from inside one handler would fill both
	// directions of the pipe and deadlock against the client answering
	// them; instead at most batchPullWindow pulls are outstanding, and each
	// arrival admits the next queued entry (see pumpBatch).
	batchQueue    []batchEntry
	batchInflight map[naming.ShadowID]struct{}
	// pulledAt stamps when each in-flight pull was issued, feeding the
	// pull→arrival histogram. Only populated when observability is on.
	pulledAt map[naming.ShadowID]time.Duration
	// pullSpan holds the open server.pull span per file, finished when the
	// content arrives. Only populated when tracing is on.
	pullSpan map[naming.ShadowID]*trace.Span
	// outPrev maps script checksum -> last acknowledged delivered stdout,
	// the base for reverse shadow processing.
	outPrev map[uint32][]byte
	// assembling holds this session's in-progress chunked arrivals (one per
	// file), each pinning the chunks it has resolved so far. Released on
	// completion, supersession, or session death.
	assembling map[naming.ShadowID]*pendingAssembly

	// The pipelined writer: every outbound message is enqueued on out and
	// written by one writer goroutine, which batches bursts into the
	// connection's buffer and flushes when the queue goes idle. Per-file
	// ordering is the queue order — exactly the order the handlers sent.
	out        chan outbound
	quit       chan struct{}
	quitOnce   sync.Once
	writerDone chan struct{}
	dead       atomic.Bool
	// peer marks a server-to-server session (a PEER_HELLO arrived);
	// peerInstance (under mu) is the remote's cluster member name.
	// peerServed/peerDeclined count the peer requests this session
	// answered positively and negatively (/peerz, owner side).
	peer         atomic.Bool
	peerInstance string
	peerServed   atomic.Int64
	peerDeclined atomic.Int64
	// vt is non-nil when conn is a virtual-time transport; outbound
	// messages are then stamped at enqueue (see outbound.stamp).
	vt wire.ScheduledSender

	// rec is the flight recorder: a lock-free ring of this session's recent
	// protocol events, dumped on disconnect, writer fault, or job failure.
	// Nil when tracing is off (a nil ring discards everything).
	rec *trace.Ring
	// dumpOnce ensures disconnect and fault dump the ring once, with the
	// first reason winning. Job-failure dumps bypass it: the session lives
	// on and may dump again later.
	dumpOnce sync.Once
}

// deferredNotify is a postponed pull: the notify and its trace context.
type deferredNotify struct {
	m  *wire.Notify
	tc wire.TraceContext
}

func newSession(srv *Server, conn wire.Conn, id uint64) *session {
	vt, _ := conn.(wire.ScheduledSender)
	ss := &session{
		srv:           srv,
		conn:          conn,
		id:            id,
		deferred:      make(map[naming.ShadowID]deferredNotify),
		pulled:        make(map[naming.ShadowID]uint64),
		trees:         make(map[string]*tree.Tree),
		batchInflight: make(map[naming.ShadowID]struct{}),
		pulledAt:      make(map[naming.ShadowID]time.Duration),
		pullSpan:      make(map[naming.ShadowID]*trace.Span),
		outPrev:       make(map[uint32][]byte),
		assembling:    make(map[naming.ShadowID]*pendingAssembly),
		out:           make(chan outbound, outQueueDepth),
		quit:          make(chan struct{}),
		writerDone:    make(chan struct{}),
		vt:            vt,
	}
	if srv.cfg.Obs.Tracer() != nil {
		ss.rec = trace.NewRing(flightRingSize)
	}
	return ss
}

// flightRingSize is each session's flight-recorder capacity.
const flightRingSize = 256

// record appends a flight-recorder event; a no-op when tracing is off.
func (ss *session) record(kind, name string, tc wire.TraceContext, detail string) {
	if ss.rec == nil {
		return
	}
	ss.rec.Record(trace.Event{
		At:     int64(ss.srv.cfg.Obs.Now()),
		Kind:   kind,
		Name:   name,
		Trace:  tc.TraceID,
		Detail: detail,
	})
}

// dumpFlight snapshots the flight recorder into the server's dump list.
// Used by the once-only disconnect/fault paths; job failures call the
// server's recordFlightDump directly.
func (ss *session) dumpFlight(reason string) {
	if ss.rec == nil {
		return
	}
	ss.dumpOnce.Do(func() { ss.srv.recordFlightDump(ss, reason) })
}

func (ss *session) prevOutput(scriptSum uint32) []byte {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	return ss.outPrev[scriptSum]
}

func (ss *session) setPrevOutput(scriptSum uint32, stdout []byte) {
	ss.mu.Lock()
	ss.outPrev[scriptSum] = stdout
	ss.mu.Unlock()
}

// run is the session's receive loop. It exits on disconnect or protocol
// failure; either way the pending writes drain and the session is
// unregistered.
func (ss *session) run() {
	go ss.writer()
	defer ss.srv.dropSession(ss)
	defer ss.dumpFlight("disconnect")
	defer ss.shutdownWriter()
	// In-flight chunked assemblies pin their chunks; a dead session must
	// not pin anything.
	defer ss.releaseAssemblies()
	// A session whose receive loop has exited can never converse again,
	// even if its writer never saw a send fail. Mark it dead first
	// (deferred last) so concurrent re-homing — repullPending choosing a
	// session for an orphaned fetch — never picks this one.
	defer ss.dead.Store(true)
	for {
		// Zero-copy receive: this loop is the connection's only reader, and
		// the decoded message owns all its bytes, so the raw frame buffer
		// is free to be recycled by the next iteration.
		msg, tc, err := wire.RecvTracedReuse(ss.conn)
		if err != nil {
			return // disconnect (io.EOF) or transport failure
		}
		ss.record("recv", msg.Kind().String(), tc, "")
		if err := ss.dispatch(msg, tc); err != nil {
			if errors.Is(err, errSessionGone) {
				return
			}
			// Protocol-level problems are reported to the client;
			// transport failures end the session.
			if sendErr := ss.sendError(wire.CodeBadRequest, err.Error()); sendErr != nil {
				return
			}
		}
	}
}

// writer drains the outbound queue into the connection. Messages written
// back to back stay in the connection's buffer; the buffer is flushed when
// the queue goes idle (and always before a synchronous send reports
// success), so bursts coalesce into single writes without ever delaying the
// last message of a burst.
func (ss *session) writer() {
	defer close(ss.writerDone)
	var sticky error
	// When the transport's Send copies the payload before returning, one
	// writer-owned scratch buffer serves every marshal — zero steady-state
	// allocation per message. Virtual-time transports retain the slice they
	// are handed (the simulated link delivers it later), so the stamped
	// path keeps its fresh per-message buffer and simulated figures stay
	// byte-identical.
	_, reuse := ss.conn.(wire.NonRetainingSender)
	var mbuf []byte
	fail := func(err error) {
		sticky = err
		ss.dead.Store(true)
		ss.record("fault", "writer", wire.TraceContext{}, err.Error())
		ss.dumpFlight("fault: " + err.Error())
		_ = ss.conn.Close() // wake the receive loop
	}
	flushNow := func() {
		if sticky == nil {
			if err := ss.flush(); err != nil {
				fail(err)
			}
		}
	}
	writeOne := func(ob outbound) {
		if sticky == nil {
			ss.record("send", ob.msg.Kind().String(), ob.tc, "")
			var err error
			switch {
			case ob.stamped:
				err = ss.vt.SendScheduled(wire.MarshalTraced(ob.msg, ob.tc), ob.stamp)
			case reuse:
				mbuf = wire.AppendMarshal(mbuf[:0], ob.msg, ob.tc)
				err = ss.conn.Send(mbuf)
				if cap(mbuf) > 64<<10 {
					mbuf = nil // don't pin a huge scratch after a big transfer
				}
			default:
				err = wire.SendTraced(ss.conn, ob.msg, ob.tc)
			}
			if err != nil {
				fail(err)
			}
		}
		if ob.errc != nil {
			flushNow()
			if sticky != nil {
				ob.errc <- errSessionGone
			} else {
				ob.errc <- nil
			}
		}
	}
	for {
		select {
		case ob := <-ss.out:
			writeOne(ob)
		drain:
			for {
				select {
				case ob := <-ss.out:
					writeOne(ob)
				default:
					break drain
				}
			}
			flushNow() // flush-on-idle
		case <-ss.quit:
			for {
				select {
				case ob := <-ss.out:
					writeOne(ob)
				default:
					flushNow()
					return
				}
			}
		}
	}
}

// flush pushes buffered frames to the transport, when it buffers at all.
func (ss *session) flush() error {
	if f, ok := ss.conn.(wire.Flusher); ok {
		return f.Flush()
	}
	return nil
}

// shutdownWriter stops the writer — draining and flushing whatever is
// queued — and then closes the connection. Safe to call more than once and
// from any goroutine.
func (ss *session) shutdownWriter() {
	ss.quitOnce.Do(func() { close(ss.quit) })
	<-ss.writerDone
	_ = ss.conn.Close()
}

func (ss *session) dispatch(msg wire.Message, tc wire.TraceContext) error {
	switch m := msg.(type) {
	case *wire.Hello:
		return ss.handleHello(m)
	case *wire.Notify:
		return ss.handleNotify(m, tc)
	case *wire.FileDelta:
		if err := ss.handleFileDelta(m, tc); err != nil {
			return err
		}
		return ss.batchArrived(m.File)
	case *wire.FileFull:
		if err := ss.handleFileFull(m, tc); err != nil {
			return err
		}
		return ss.batchArrived(m.File)
	case *wire.FileManifest:
		if err := ss.handleFileManifest(m, tc); err != nil {
			return err
		}
		return ss.batchArrived(m.File)
	case *wire.ChunkData:
		return ss.handleChunkData(m, tc)
	case *wire.Submit:
		return ss.handleSubmit(m, tc)
	case *wire.StatusReq:
		return ss.handleStatus(m)
	case *wire.OutputAck:
		return ss.handleOutputAck(m)
	case *wire.OutputFullReq:
		return ss.handleOutputFullReq(m)
	case *wire.TreeHead:
		return ss.handleTreeHead(m, tc)
	case *wire.TreeDiff:
		return ss.handleTreeDiff(m, tc)
	case *wire.BatchNotify:
		return ss.handleBatchNotify(m, tc)
	case *wire.PeerHello:
		return ss.handlePeerHello(m)
	case *wire.PeerNotify:
		return ss.handlePeerNotify(m, tc)
	case *wire.ChunkReq:
		return ss.handlePeerChunkReq(m, tc)
	case *wire.Bye:
		return errSessionGone
	default:
		return fmt.Errorf("unexpected message %v", msg.Kind())
	}
}

// send enqueues a message on the session's pipeline. It fails only when the
// session is already gone; transport failures surface through the receive
// loop (the writer closes the connection on error).
func (ss *session) send(m wire.Message) error {
	return ss.sendTraced(m, wire.TraceContext{})
}

// sendTraced enqueues a message carrying a trace context (zero = plain
// untraced frame).
func (ss *session) sendTraced(m wire.Message, tc wire.TraceContext) error {
	if ss.dead.Load() {
		return errSessionGone
	}
	select {
	case ss.out <- ss.stamped(outbound{msg: m, tc: tc}):
		return nil
	case <-ss.quit:
		return errSessionGone
	}
}

// stamped records the virtual enqueue time on ob when the transport keeps
// virtual time; on real transports it is the identity.
func (ss *session) stamped(ob outbound) outbound {
	if ss.vt != nil {
		ob.stamp = ss.vt.Now()
		ob.stamped = true
	}
	return ob
}

// errcPool recycles sendSync's single-use result channels. A channel is
// only returned to the pool once its answer has been received — an
// unanswered channel (writer raced out) is abandoned to the GC so a late
// reply can never leak into the next borrower.
var errcPool = sync.Pool{New: func() any { return make(chan error, 1) }}

// sendSync enqueues a message and waits for the writer to put it (and
// everything queued before it) on the wire, reporting the transport result.
// Output delivery uses it: a failed send must requeue the output for the
// next session, so "sent" has to mean sent.
func (ss *session) sendSync(m wire.Message, tc wire.TraceContext) error {
	if ss.dead.Load() {
		return errSessionGone
	}
	errc := errcPool.Get().(chan error)
	ob := ss.stamped(outbound{msg: m, errc: errc, tc: tc})
	select {
	case ss.out <- ob:
	case <-ss.quit:
		errcPool.Put(errc) // never enqueued, still clean
		return errSessionGone
	}
	select {
	case err := <-ob.errc:
		errcPool.Put(errc)
		return err
	case <-ss.writerDone:
		// The writer exited while we waited; it answered if it drained
		// our message before returning.
		select {
		case err := <-ob.errc:
			errcPool.Put(errc)
			return err
		default:
			return errSessionGone
		}
	}
}

func (ss *session) sendError(code uint32, text string) error {
	return ss.send(&wire.ErrorMsg{Code: code, Text: text})
}

func (ss *session) handleHello(m *wire.Hello) error {
	// Accept the whole supported range: version-1 peers never set the trace
	// flag, so their frames decode unchanged, and the body encodings are
	// identical across versions.
	if m.Protocol < wire.MinProtocolVersion || m.Protocol > wire.ProtocolVersion {
		_ = ss.sendError(wire.CodeBadRequest, fmt.Sprintf("protocol %d unsupported", m.Protocol))
		return errSessionGone
	}
	// Identity registration and the claim of held outputs share one
	// critical section with deliverOrHold's lookup-or-queue: an output
	// finishing concurrently with this hello is either claimed here or
	// sees the registered identity — it cannot fall in between.
	ss.srv.deliverMu.Lock()
	ss.user = m.User
	ss.domain = m.Domain
	ss.clientHost = m.ClientHost
	held := append(ss.srv.deliverRoutedToLocked(ss), ss.srv.deliverUndeliveredToLocked(ss)...)
	ss.srv.deliverMu.Unlock()
	// Outputs that were sent on a previous connection but never
	// acknowledged are re-sent too: the output or its ack may have died
	// with that connection (the client deduplicates).
	held = append(held, ss.srv.unackedDone(ss.identity(), held)...)
	ss.srv.logf("session %d: hello from %s@%s (domain %s), %d held outputs",
		ss.id, ss.user, ss.clientHost, ss.domain, len(held))
	reply := &wire.HelloOK{Session: ss.id, ServerName: ss.srv.cfg.Name}
	if m.Protocol >= wire.ChunkProtocolVersion {
		// Confirm the negotiated version — capped at what this server
		// implements, so a newer peer learns our real ceiling — so the
		// client knows chunk frames are understood here. Older clients get
		// the byte-identical classic reply (the field is trailing-optional
		// and encoded only when set).
		reply.Protocol = m.Protocol
		if reply.Protocol > wire.ProtocolVersion {
			reply.Protocol = wire.ProtocolVersion
		}
	}
	if err := ss.send(reply); err != nil {
		return err
	}
	// Deliver any output routed to this host before we were connected,
	// and any output that finished while this user was disconnected; then
	// restart any input retrievals the previous session left dangling.
	ss.srv.sendHeld(ss, held)
	ss.srv.repullWaitingInputs(ss)
	return nil
}

// identity returns the session's owner key.
func (ss *session) identity() identity {
	return identity{user: ss.user, host: ss.clientHost}
}

// handleNotify implements the demand-driven choice (§6.4): "The server ...
// may request the client to supply the updates immediately, or may postpone
// such a retrieval for a later time."
func (ss *session) handleNotify(m *wire.Notify, tc wire.TraceContext) error {
	ss.srv.counters.AddControl(0)
	// The notify span records the pull decision the instant it is made —
	// the paper's immediate/postpone choice is exactly what a trace reader
	// wants to see first. The String() rendering only happens when a span
	// actually exists: on trace-off runs it would be a per-notify
	// allocation for nobody.
	sp := ss.srv.cfg.Obs.StartSpan(tc, "server.notify").SetSession(ss.id)
	if sp != nil {
		sp.SetFile(m.File.String())
	}
	defer sp.Finish()
	// Every notify is one unit of demand for the ring-heat telemetry,
	// whether the pull happens now or is deferred.
	ss.srv.heat.Touch(uint64(ss.srv.dir.Intern(m.File)))
	// In a cluster, a notify for a file another instance owns is deferred
	// rather than pulled: the client routes the file's traffic to its
	// owner, so the owner is (or will be) fetching it, and this instance
	// peer-fetches on demand when a job here actually needs the file.
	if !ss.srv.ownsFile(m.File) && !ss.peer.Load() {
		sp.Annotate("deferred-nonowned")
		ss.deferNotify(m, tc)
		return nil
	}
	switch ss.srv.cfg.Pull {
	case PullLazy:
		sp.Annotate("deferred-lazy")
		ss.deferNotify(m, tc)
		return nil
	case PullLoadAware:
		queued, running := ss.srv.pool.Load()
		if queued+running >= ss.srv.cfg.LoadThreshold {
			sp.Annotate("deferred-load")
			ss.deferNotify(m, tc)
			return nil
		}
	}
	sp.Annotate("immediate")
	return ss.pullFile(m.File, m.Version, tc)
}

func (ss *session) deferNotify(m *wire.Notify, tc wire.TraceContext) {
	ss.srv.pullsDeferred.Add(1)
	id := ss.srv.dir.Intern(m.File)
	ss.mu.Lock()
	ss.deferred[id] = deferredNotify{m: m, tc: tc}
	ss.mu.Unlock()
}

// pullFile asks the client for a version, telling it which base we hold.
// Pulls already in flight for the same or a newer version are not repeated:
// the session's own pulled map suppresses same-session duplicates, and the
// server-wide flight table coalesces fetches across sessions — many clients
// notifying the same file cost one transfer.
func (ss *session) pullFile(ref wire.FileRef, want uint64, tc wire.TraceContext) error {
	id := ss.srv.dir.Intern(ref)
	var have uint64
	if v, ok := ss.srv.cache.Version(id); ok {
		have = v
		if have >= want {
			// Already current. Feed jobs that registered their wait
			// just as the content arrived — the arrival's feed can run
			// before the registration, and this is the re-check that
			// closes the window. (Version first: the common have < want
			// case must not pay for assembling content nobody reads.)
			if e, ok := ss.srv.cache.Peek(id); ok {
				ss.srv.feedWaitingJobs(id, e.Version, e.Content)
			}
			return nil
		}
	}
	ss.mu.Lock()
	if ss.pulled[id] >= want {
		ss.mu.Unlock()
		return nil // a pull covering this version is in flight
	}
	if !ss.srv.flights.Begin(id, ref, want, ss.id, tc) {
		delete(ss.deferred, id)
		ss.mu.Unlock()
		// Another session is already fetching this version; its arrival
		// feeds every waiting job, so no second transfer is needed.
		ss.srv.pullsCoalesced.Add(1)
		// Record the coalescing decision as an instant span: the cycle's
		// trace shows it waited on someone else's transfer.
		if csp := ss.srv.cfg.Obs.StartSpan(tc, "server.pull-coalesced"); csp != nil {
			csp.SetSession(ss.id).SetFile(ref.String())
			csp.Finish()
		}
		return nil
	}
	sp := ss.srv.cfg.Obs.StartSpan(tc, "server.pull").SetSession(ss.id)
	if sp != nil {
		sp.SetFile(ref.String())
	}
	ss.pulled[id] = want
	if ss.srv.cfg.Obs != nil {
		ss.pulledAt[id] = ss.srv.cfg.Obs.Now()
	}
	if sp != nil {
		ss.pullSpan[id] = sp
	}
	delete(ss.deferred, id)
	ss.mu.Unlock()
	ss.srv.pullsIssued.Add(1)
	if ss.srv.cfg.Logf != nil {
		ss.srv.logf("session %d: pull %s v%d (have v%d)", ss.id, ref, want, have)
	}
	if ss.srv.cfg.Obs.LogEnabled(slog.LevelDebug) {
		ss.srv.cfg.Obs.Log(slog.LevelDebug, "pull issued",
			slog.Uint64("session", ss.id), slog.String("file", ref.String()),
			slog.Uint64("want", want), slog.Uint64("have", have))
	}
	// The PULL frame carries the pull span's context, so the client's
	// answer becomes its child; without a server tracer the incoming
	// context is forwarded unchanged so propagation still works.
	return ss.sendTraced(&wire.Pull{File: ref, HaveVersion: have, WantVersion: want}, ctxOr(sp, tc))
}

// ctxOr returns sp's context, falling back to tc when the span is nil
// (tracing off on this side, or an unsampled cycle).
func ctxOr(sp *trace.Span, tc wire.TraceContext) wire.TraceContext {
	if c := sp.Context(); c.Valid() {
		return c
	}
	return tc
}

// drainDeferred issues pulls that were postponed, if the load allows now.
func (ss *session) drainDeferred() {
	if ss.srv.cfg.Pull == PullLazy {
		return
	}
	queued, running := ss.srv.pool.Load()
	if queued+running >= ss.srv.cfg.LoadThreshold {
		return
	}
	ss.mu.Lock()
	pending := make([]deferredNotify, 0, len(ss.deferred))
	for _, n := range ss.deferred {
		pending = append(pending, n)
	}
	ss.mu.Unlock()
	for _, n := range pending {
		if ss.fetchInput(n.m.File, n.m.Version, n.tc) != nil {
			return
		}
	}
}

func (ss *session) handleFileDelta(m *wire.FileDelta, tc wire.TraceContext) error {
	ss.srv.counters.AddDelta(len(m.Encoded))
	sp := ss.srv.cfg.Obs.StartSpan(tc, "server.apply-delta").SetSession(ss.id)
	if sp != nil {
		sp.SetFile(m.File.String())
	}
	defer sp.Finish()
	id := ss.srv.dir.Intern(m.File)
	entry, ok := ss.srv.cache.Get(id)
	if ok && entry.Version >= m.Version {
		// A duplicate or overtaken transfer; what we have is already
		// at least as new. Re-acknowledge idempotently.
		sp.Annotate("duplicate")
		return ss.sendTraced(&wire.FileAck{File: m.File, Version: entry.Version}, tc)
	}
	if !ok || entry.Version != m.BaseVersion {
		// Our base is gone or different — the best-effort cache at
		// work. Ask for the whole file.
		sp.Annotate("base-evicted")
		return ss.forcePullFull(m.File, m.Version, tc)
	}
	content, err := core.ApplyDelta(entry.Content, m)
	if errors.Is(err, core.ErrStaleBase) {
		sp.Annotate("stale-base")
		return ss.forcePullFull(m.File, m.Version, tc)
	}
	if err != nil {
		return fmt.Errorf("apply delta for %s: %w", m.File, err)
	}
	sp.Annotate("delta-applied")
	// Remember the client's delta for verbatim peer forwarding (a no-op
	// outside a cluster): the decoded message owns its bytes, so the
	// retained slice cannot be clobbered by the next frame.
	ss.srv.notePeerDelta(id, m, len(content))
	return ss.storeArrived(m.File, id, m.Version, content, tc)
}

// forcePullFull requests a complete copy, bypassing the duplicate-pull
// suppression (the previous pull's answer was unusable).
func (ss *session) forcePullFull(ref wire.FileRef, want uint64, tc wire.TraceContext) error {
	id := ss.srv.dir.Intern(ref)
	ss.mu.Lock()
	ss.pulled[id] = want
	if ss.srv.cfg.Obs != nil {
		ss.pulledAt[id] = ss.srv.cfg.Obs.Now()
	}
	// The superseded pull span (if any) ends here: its answer proved
	// unusable, and the fallback gets its own span.
	if old := ss.pullSpan[id]; old != nil {
		old.Annotate("superseded: base evicted").Finish()
		delete(ss.pullSpan, id)
	}
	sp := ss.srv.cfg.Obs.StartSpan(tc, "server.pull-full").SetSession(ss.id)
	if sp != nil {
		sp.SetFile(ref.String())
		ss.pullSpan[id] = sp
	}
	ss.mu.Unlock()
	ss.srv.flights.Force(id, ref, want, ss.id, tc)
	ss.srv.pullsIssued.Add(1)
	return ss.sendTraced(&wire.Pull{File: ref, HaveVersion: 0, WantVersion: want}, ctxOr(sp, tc))
}

func (ss *session) handleFileFull(m *wire.FileFull, tc wire.TraceContext) error {
	ss.srv.counters.AddFull(len(m.Content))
	sp := ss.srv.cfg.Obs.StartSpan(tc, "server.apply-full").SetSession(ss.id)
	if sp != nil {
		sp.SetFile(m.File.String())
	}
	defer sp.Finish()
	content, err := core.ApplyFull(m)
	if err != nil {
		return fmt.Errorf("apply full for %s: %w", m.File, err)
	}
	id := ss.srv.dir.Intern(m.File)
	if have, ok := ss.srv.cache.Version(id); ok && have > m.Version {
		// Overtaken by a newer version; do not regress the cache.
		sp.Annotate("overtaken")
		return ss.sendTraced(&wire.FileAck{File: m.File, Version: have}, tc)
	}
	return ss.storeArrived(m.File, id, m.Version, content, tc)
}

// storeArrived caches an arrived version (best effort), acknowledges it, and
// feeds any jobs waiting for the file.
func (ss *session) storeArrived(ref wire.FileRef, id naming.ShadowID, version uint64, content []byte, tc wire.TraceContext) error {
	// The applied content is a freshly built buffer, so the cache can own
	// it without the defensive copy.
	if err := ss.srv.cache.PutOwned(id, version, content); err != nil && !errors.Is(err, cache.ErrTooLarge) {
		return err
	}
	return ss.arrived(ref, id, version, content, tc)
}

// arrived runs the shared post-store bookkeeping for a version that just
// landed (whole-file or chunked): close the open pull, feed waiting jobs,
// acknowledge.
func (ss *session) arrived(ref wire.FileRef, id naming.ShadowID, version uint64, content []byte, tc wire.TraceContext) error {
	ss.srv.flights.Done(id, version)
	ss.mu.Lock()
	var issuedAt time.Duration
	var timed bool
	var psp *trace.Span
	if ss.pulled[id] <= version {
		// The arrival satisfies the open pull (if any); close its timing
		// and its span.
		issuedAt, timed = ss.pulledAt[id]
		psp = ss.pullSpan[id]
		delete(ss.pulled, id)
		delete(ss.pulledAt, id)
		delete(ss.pullSpan, id)
	}
	ss.mu.Unlock()
	psp.Finish()
	if timed {
		ss.srv.cfg.Obs.ObservePullArrival(issuedAt)
	}
	if ss.srv.cfg.Obs.LogEnabled(slog.LevelDebug) {
		ss.srv.cfg.Obs.Log(slog.LevelDebug, "file arrived",
			slog.Uint64("session", ss.id), slog.String("file", ref.String()),
			slog.Uint64("version", version), slog.Int("bytes", len(content)))
	}
	// Feed jobs before acknowledging: the ack can fail (the client may
	// have disconnected right after sending), but the content is here
	// and jobs waiting for it must proceed regardless.
	ss.srv.feedWaitingJobs(id, version, content)
	return ss.sendTraced(&wire.FileAck{File: ref, Version: version}, tc)
}

func (ss *session) handleSubmit(m *wire.Submit, tc wire.TraceContext) error {
	ackStart := ss.srv.cfg.Obs.Now()
	ss.srv.counters.AddControl(len(m.Script))
	sp := ss.srv.cfg.Obs.StartSpan(tc, "server.submit").SetSession(ss.id)
	defer sp.Finish()
	// Scripts repeat across submissions (the whole point of reverse shadow
	// processing), so parse results are cached by checksum server-wide.
	scriptSum := diff.Checksum(m.Script)
	cmds, inputNames, err := ss.srv.parsedScript(scriptSum, m.Script)
	if err != nil {
		return ss.sendError(wire.CodeBadRequest, err.Error())
	}
	// Every file the script references must be supplied.
	supplied := make(map[string]wire.JobInput, len(m.Inputs))
	for _, in := range m.Inputs {
		if _, dup := supplied[in.As]; dup {
			return ss.sendError(wire.CodeBadRequest, fmt.Sprintf("duplicate input name %q", in.As))
		}
		supplied[in.As] = in
	}
	for _, name := range inputNames {
		if _, ok := supplied[name]; !ok {
			return ss.sendError(wire.CodeBadRequest, fmt.Sprintf("script references %q but it was not submitted", name))
		}
	}

	// Idempotent retry detection: a tagged submission the server has seen
	// before is the client re-sending after a lost SUBMIT_OK, not a new
	// job. The lock spans check+create+insert so racing retries of one
	// tag resolve to one job.
	owner := ss.identity()
	if m.ClientTag != 0 {
		ss.srv.tagMu.Lock()
		if id, ok := ss.srv.submitTags[owner][m.ClientTag]; ok {
			ss.srv.tagMu.Unlock()
			ss.srv.logf("session %d: duplicate submit tag %d -> job %d", ss.id, m.ClientTag, id)
			sp.SetJob(id).Annotate("duplicate-tag")
			if err := ss.sendTraced(&wire.SubmitOK{Job: id}, tc); err != nil {
				return err
			}
			// The original handler can die between creating the job and
			// gathering its inputs (its SUBMIT_OK send fails when the
			// connection drops mid-handler), leaving the job stranded:
			// nothing would ever fetch its inputs or schedule it, while
			// the retrying client waits on it forever. Re-drive gathering
			// through this session.
			if j, ok := ss.srv.lookupJob(id); ok {
				j.mu.Lock()
				stranded := !j.gathered && !j.state.Terminal() && j.state != wire.JobRunning
				if stranded {
					j.state = wire.JobFetching
					j.detail = "collecting input files"
				}
				j.mu.Unlock()
				if stranded {
					return ss.gatherInputs(j, tc)
				}
			}
			return nil
		}
	}

	j := &job{
		sess:  ss,
		owner: owner,
		// The decoded message owns its bytes (messages are never pooled),
		// so the job can alias the script and inputs directly.
		script:          m.Script,
		cmds:            cmds,
		scriptSum:       scriptSum,
		inputs:          m.Inputs,
		outputFile:      m.OutputFile,
		errorFile:       m.ErrorFile,
		routeHost:       m.RouteHost,
		wantOutputDelta: m.WantOutputDelta,
		state:           wire.JobQueued,
		waiting:         make(map[naming.ShadowID]uint64),
		byRef:           make(map[naming.ShadowID]string),
		snapshot:        make(map[string][]byte),
		tc:              tc,
	}
	j.id = ss.srv.nextJob.Add(1)
	ss.srv.jobs.add(j)
	if m.ClientTag != 0 {
		tags := ss.srv.submitTags[owner]
		if tags == nil {
			tags = make(map[uint64]uint64)
			ss.srv.submitTags[owner] = tags
		}
		tags[m.ClientTag] = j.id
		ss.srv.tagMu.Unlock()
	}

	sp.SetJob(j.id)
	if err := ss.sendTraced(&wire.SubmitOK{Job: j.id}, tc); err != nil {
		return err
	}
	ss.srv.cfg.Obs.ObserveSubmitAck(ackStart)
	if ss.srv.cfg.Obs.LogEnabled(slog.LevelInfo) {
		ss.srv.cfg.Obs.Log(slog.LevelInfo, "job submitted",
			slog.Uint64("session", ss.id), slog.String("user", ss.user),
			slog.Uint64("job", j.id), slog.Int("inputs", len(m.Inputs)))
	}

	// Gather inputs: snapshot what the cache has, pull the rest on
	// demand. "The updates for the files involved may be obtained in the
	// background even before a submit request is received and processed"
	// — eager pulls often make this loop find everything cached already.
	j.setState(wire.JobFetching, "collecting input files")
	return ss.gatherInputs(j, tc)
}

// gatherInputs snapshots what the cache already holds for j's inputs, pulls
// the rest, and schedules the job once everything is in hand. Idempotent:
// inputs already snapshotted or registered as waiting are not re-registered,
// so a retried submit can re-drive a job whose first gathering was cut short
// by its session dying mid-handler.
func (ss *session) gatherInputs(j *job, tc wire.TraceContext) error {
	for _, in := range j.inputs {
		id := ss.srv.dir.Intern(in.File)
		// A job referencing a file is demand on it, whether or not a pull
		// results — that is exactly what ring-heat placement cares about.
		ss.srv.heat.Touch(uint64(id))
		j.mu.Lock()
		j.byRef[id] = in.As
		if _, have := j.snapshot[in.As]; have {
			j.mu.Unlock()
			continue
		}
		_, waiting := j.waiting[id]
		j.mu.Unlock()
		if !waiting {
			if e, ok := ss.srv.cache.Get(id); ok && e.Version >= in.Version {
				j.mu.Lock()
				j.snapshot[in.As] = e.Content
				j.mu.Unlock()
				continue
			}
			j.mu.Lock()
			j.waiting[id] = in.Version
			j.mu.Unlock()
			ss.srv.addWaiter(id, j)
		}
		// Pull even when a wait was already registered: on a re-drive the
		// session that issued the original pull may be gone, and a
		// duplicate answer is absorbed by the overtaken check. In a
		// cluster, inputs another instance owns come from that owner over
		// a peer link instead of from the client (fetchInput).
		if err := ss.fetchInput(in.File, in.Version, tc); err != nil {
			return err
		}
	}
	j.mu.Lock()
	j.gathered = true
	j.mu.Unlock()
	ss.srv.maybeSchedule(j)
	return nil
}

func (ss *session) handleStatus(m *wire.StatusReq) error {
	ss.srv.counters.AddControl(0)
	var reply wire.StatusReply
	if m.All {
		for _, j := range ss.srv.jobsOfOwner(ss.identity()) {
			reply.Jobs = append(reply.Jobs, j.status())
		}
		return ss.send(&reply)
	}
	j, ok := ss.srv.lookupJob(m.Job)
	if !ok || j.owner != ss.identity() {
		return ss.sendError(wire.CodeUnknownJob, fmt.Sprintf("job %d unknown", m.Job))
	}
	reply.Jobs = append(reply.Jobs, j.status())
	return ss.send(&reply)
}

func (ss *session) handleOutputAck(m *wire.OutputAck) error {
	j, ok := ss.srv.lookupJob(m.Job)
	if !ok {
		return nil
	}
	j.mu.Lock()
	j.delivered = true
	stdout := j.result.Stdout
	sum := j.scriptSum
	j.mu.Unlock()
	// The acknowledged stdout becomes the base for the next run's output
	// delta (reverse shadow processing).
	ss.setPrevOutput(sum, stdout)
	return nil
}

func (ss *session) handleOutputFullReq(m *wire.OutputFullReq) error {
	j, ok := ss.srv.lookupJob(m.Job)
	if !ok {
		return ss.sendError(wire.CodeUnknownJob, fmt.Sprintf("job %d unknown", m.Job))
	}
	return ss.srv.sendOutput(ss, j, true /* forceFull */)
}
