package server

import (
	"errors"
	"fmt"
	"sync"

	"shadowedit/internal/cache"
	"shadowedit/internal/core"
	"shadowedit/internal/diff"
	"shadowedit/internal/jobs"
	"shadowedit/internal/naming"
	"shadowedit/internal/wire"
)

// session is one client connection's server-side state.
type session struct {
	srv  *Server
	conn wire.Conn
	id   uint64

	user       string
	domain     string
	clientHost string

	// mu guards the maps below: the session goroutine and pool workers
	// (job completion → drainDeferred/sendOutput) both touch them.
	mu sync.Mutex
	// deferred holds notifies whose pulls the load-aware policy postponed,
	// keyed by file ref.
	deferred map[string]*wire.Notify
	// pulled tracks the highest version already requested per file, so
	// notify+submit bursts do not issue duplicate pulls (a duplicate
	// delta would look stale on arrival and trigger a wasteful full
	// retransmission).
	pulled map[string]uint64
	// outPrev maps script checksum -> last acknowledged delivered stdout,
	// the base for reverse shadow processing.
	outPrev map[uint32][]byte
}

func (ss *session) prevOutput(scriptSum uint32) []byte {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	return ss.outPrev[scriptSum]
}

func (ss *session) setPrevOutput(scriptSum uint32, stdout []byte) {
	ss.mu.Lock()
	ss.outPrev[scriptSum] = stdout
	ss.mu.Unlock()
}

// run is the session's receive loop. It exits on disconnect or protocol
// failure; either way the session is unregistered.
func (ss *session) run() {
	defer ss.srv.dropSession(ss)
	defer ss.conn.Close()
	for {
		msg, err := wire.Recv(ss.conn)
		if err != nil {
			return // disconnect (io.EOF) or transport failure
		}
		if err := ss.dispatch(msg); err != nil {
			if errors.Is(err, errSessionGone) {
				return
			}
			// Protocol-level problems are reported to the client;
			// transport failures end the session.
			if sendErr := ss.sendError(wire.CodeBadRequest, err.Error()); sendErr != nil {
				return
			}
		}
	}
}

func (ss *session) dispatch(msg wire.Message) error {
	switch m := msg.(type) {
	case *wire.Hello:
		return ss.handleHello(m)
	case *wire.Notify:
		return ss.handleNotify(m)
	case *wire.FileDelta:
		return ss.handleFileDelta(m)
	case *wire.FileFull:
		return ss.handleFileFull(m)
	case *wire.Submit:
		return ss.handleSubmit(m)
	case *wire.StatusReq:
		return ss.handleStatus(m)
	case *wire.OutputAck:
		return ss.handleOutputAck(m)
	case *wire.OutputFullReq:
		return ss.handleOutputFullReq(m)
	case *wire.Bye:
		return errSessionGone
	default:
		return fmt.Errorf("unexpected message %v", msg.Kind())
	}
}

func (ss *session) send(m wire.Message) error {
	if err := wire.Send(ss.conn, m); err != nil {
		return errSessionGone
	}
	return nil
}

func (ss *session) sendError(code uint32, text string) error {
	return ss.send(&wire.ErrorMsg{Code: code, Text: text})
}

func (ss *session) handleHello(m *wire.Hello) error {
	if m.Protocol != wire.ProtocolVersion {
		_ = ss.sendError(wire.CodeBadRequest, fmt.Sprintf("protocol %d unsupported", m.Protocol))
		return errSessionGone
	}
	// Identity registration and the claim of held outputs share one
	// critical section with deliverOrHold's lookup-or-queue: an output
	// finishing concurrently with this hello is either claimed here or
	// sees the registered identity — it cannot fall in between.
	ss.srv.mu.Lock()
	ss.user = m.User
	ss.domain = m.Domain
	ss.clientHost = m.ClientHost
	held := append(ss.srv.deliverRoutedToLocked(ss), ss.srv.deliverUndeliveredToLocked(ss)...)
	ss.srv.mu.Unlock()
	ss.srv.logf("session %d: hello from %s@%s (domain %s), %d held outputs",
		ss.id, ss.user, ss.clientHost, ss.domain, len(held))
	if err := ss.send(&wire.HelloOK{Session: ss.id, ServerName: ss.srv.cfg.Name}); err != nil {
		return err
	}
	// Deliver any output routed to this host before we were connected,
	// and any output that finished while this user was disconnected; then
	// restart any input retrievals the previous session left dangling.
	ss.srv.sendHeld(ss, held)
	ss.srv.repullWaitingInputs(ss)
	return nil
}

// identity returns the session's owner key.
func (ss *session) identity() identity {
	return identity{user: ss.user, host: ss.clientHost}
}

// handleNotify implements the demand-driven choice (§6.4): "The server ...
// may request the client to supply the updates immediately, or may postpone
// such a retrieval for a later time."
func (ss *session) handleNotify(m *wire.Notify) error {
	ss.srv.counters.AddControl(0)
	switch ss.srv.cfg.Pull {
	case PullLazy:
		ss.deferNotify(m)
		return nil
	case PullLoadAware:
		queued, running := ss.srv.pool.Load()
		if queued+running >= ss.srv.cfg.LoadThreshold {
			ss.deferNotify(m)
			return nil
		}
	}
	return ss.pullFile(m.File, m.Version)
}

func (ss *session) deferNotify(m *wire.Notify) {
	ss.srv.pullsDeferred.Add(1)
	ss.mu.Lock()
	ss.deferred[m.File.String()] = m
	ss.mu.Unlock()
}

// pullFile asks the client for a version, telling it which base we hold.
// Pulls already in flight for the same or a newer version are not repeated.
func (ss *session) pullFile(ref wire.FileRef, want uint64) error {
	id := ss.srv.dir.Intern(ref)
	var have uint64
	if e, ok := ss.srv.cache.Peek(id); ok {
		have = e.Version
	}
	if have >= want {
		return nil // already current
	}
	key := ref.String()
	ss.mu.Lock()
	if ss.pulled[key] >= want {
		ss.mu.Unlock()
		return nil // a pull covering this version is in flight
	}
	ss.pulled[key] = want
	delete(ss.deferred, key)
	ss.mu.Unlock()
	ss.srv.pullsIssued.Add(1)
	ss.srv.logf("session %d: pull %s v%d (have v%d)", ss.id, ref, want, have)
	return ss.send(&wire.Pull{File: ref, HaveVersion: have, WantVersion: want})
}

// drainDeferred issues pulls that were postponed, if the load allows now.
func (ss *session) drainDeferred() {
	if ss.srv.cfg.Pull == PullLazy {
		return
	}
	queued, running := ss.srv.pool.Load()
	if queued+running >= ss.srv.cfg.LoadThreshold {
		return
	}
	ss.mu.Lock()
	pending := make([]*wire.Notify, 0, len(ss.deferred))
	for _, n := range ss.deferred {
		pending = append(pending, n)
	}
	ss.mu.Unlock()
	for _, n := range pending {
		if ss.pullFile(n.File, n.Version) != nil {
			return
		}
	}
}

func (ss *session) handleFileDelta(m *wire.FileDelta) error {
	ss.srv.counters.AddDelta(len(m.Encoded))
	id := ss.srv.dir.Intern(m.File)
	entry, ok := ss.srv.cache.Get(id)
	if ok && entry.Version >= m.Version {
		// A duplicate or overtaken transfer; what we have is already
		// at least as new. Re-acknowledge idempotently.
		return ss.send(&wire.FileAck{File: m.File, Version: entry.Version})
	}
	if !ok || entry.Version != m.BaseVersion {
		// Our base is gone or different — the best-effort cache at
		// work. Ask for the whole file.
		return ss.forcePullFull(m.File, m.Version)
	}
	content, err := core.ApplyDelta(entry.Content, m)
	if errors.Is(err, core.ErrStaleBase) {
		return ss.forcePullFull(m.File, m.Version)
	}
	if err != nil {
		return fmt.Errorf("apply delta for %s: %w", m.File, err)
	}
	return ss.storeArrived(m.File, id, m.Version, content)
}

// forcePullFull requests a complete copy, bypassing the duplicate-pull
// suppression (the previous pull's answer was unusable).
func (ss *session) forcePullFull(ref wire.FileRef, want uint64) error {
	ss.mu.Lock()
	ss.pulled[ref.String()] = want
	ss.mu.Unlock()
	ss.srv.pullsIssued.Add(1)
	return ss.send(&wire.Pull{File: ref, HaveVersion: 0, WantVersion: want})
}

func (ss *session) handleFileFull(m *wire.FileFull) error {
	ss.srv.counters.AddFull(len(m.Content))
	content, err := core.ApplyFull(m)
	if err != nil {
		return fmt.Errorf("apply full for %s: %w", m.File, err)
	}
	id := ss.srv.dir.Intern(m.File)
	if entry, ok := ss.srv.cache.Peek(id); ok && entry.Version > m.Version {
		// Overtaken by a newer version; do not regress the cache.
		return ss.send(&wire.FileAck{File: m.File, Version: entry.Version})
	}
	return ss.storeArrived(m.File, id, m.Version, content)
}

// storeArrived caches an arrived version (best effort), acknowledges it, and
// feeds any jobs waiting for the file.
func (ss *session) storeArrived(ref wire.FileRef, id naming.ShadowID, version uint64, content []byte) error {
	if err := ss.srv.cache.Put(id, version, content); err != nil && !errors.Is(err, cache.ErrTooLarge) {
		return err
	}
	ss.mu.Lock()
	if ss.pulled[ref.String()] <= version {
		delete(ss.pulled, ref.String())
	}
	ss.mu.Unlock()
	// Feed jobs before acknowledging: the ack can fail (the client may
	// have disconnected right after sending), but the content is here
	// and jobs waiting for it must proceed regardless.
	ss.srv.feedWaitingJobs(ref, version, content)
	return ss.send(&wire.FileAck{File: ref, Version: version})
}

func (ss *session) handleSubmit(m *wire.Submit) error {
	ss.srv.counters.AddControl(len(m.Script))
	cmds, err := jobs.ParseScript(m.Script)
	if err != nil {
		return ss.sendError(wire.CodeBadRequest, err.Error())
	}
	// Every file the script references must be supplied.
	supplied := make(map[string]wire.JobInput, len(m.Inputs))
	for _, in := range m.Inputs {
		if _, dup := supplied[in.As]; dup {
			return ss.sendError(wire.CodeBadRequest, fmt.Sprintf("duplicate input name %q", in.As))
		}
		supplied[in.As] = in
	}
	for _, name := range jobs.InputNames(cmds) {
		if _, ok := supplied[name]; !ok {
			return ss.sendError(wire.CodeBadRequest, fmt.Sprintf("script references %q but it was not submitted", name))
		}
	}

	j := &job{
		sess:            ss,
		owner:           ss.identity(),
		script:          append([]byte(nil), m.Script...),
		scriptSum:       diff.Checksum(m.Script),
		inputs:          m.Inputs,
		outputFile:      m.OutputFile,
		errorFile:       m.ErrorFile,
		routeHost:       m.RouteHost,
		wantOutputDelta: m.WantOutputDelta,
		state:           wire.JobQueued,
		waiting:         make(map[string]uint64),
		byRef:           make(map[string]string),
		snapshot:        make(map[string][]byte),
	}
	ss.srv.mu.Lock()
	ss.srv.nextJob++
	j.id = ss.srv.nextJob
	ss.srv.jobs[j.id] = j
	ss.srv.mu.Unlock()

	if err := ss.send(&wire.SubmitOK{Job: j.id}); err != nil {
		return err
	}

	// Gather inputs: snapshot what the cache has, pull the rest on
	// demand. "The updates for the files involved may be obtained in the
	// background even before a submit request is received and processed"
	// — eager pulls often make this loop find everything cached already.
	j.setState(wire.JobFetching, "collecting input files")
	for _, in := range m.Inputs {
		id := ss.srv.dir.Intern(in.File)
		key := in.File.String()
		j.byRef[key] = in.As
		if e, ok := ss.srv.cache.Get(id); ok && e.Version >= in.Version {
			j.mu.Lock()
			j.snapshot[in.As] = e.Content
			j.mu.Unlock()
			continue
		}
		j.mu.Lock()
		j.waiting[key] = in.Version
		j.mu.Unlock()
		if err := ss.pullFile(in.File, in.Version); err != nil {
			return err
		}
	}
	ss.srv.maybeSchedule(j)
	return nil
}

func (ss *session) handleStatus(m *wire.StatusReq) error {
	ss.srv.counters.AddControl(0)
	var reply wire.StatusReply
	if m.All {
		for _, j := range ss.srv.jobsOfOwner(ss.identity()) {
			reply.Jobs = append(reply.Jobs, j.status())
		}
		return ss.send(&reply)
	}
	j, ok := ss.srv.lookupJob(m.Job)
	if !ok || j.owner != ss.identity() {
		return ss.sendError(wire.CodeUnknownJob, fmt.Sprintf("job %d unknown", m.Job))
	}
	reply.Jobs = append(reply.Jobs, j.status())
	return ss.send(&reply)
}

func (ss *session) handleOutputAck(m *wire.OutputAck) error {
	j, ok := ss.srv.lookupJob(m.Job)
	if !ok {
		return nil
	}
	j.mu.Lock()
	j.delivered = true
	stdout := j.result.Stdout
	sum := j.scriptSum
	j.mu.Unlock()
	// The acknowledged stdout becomes the base for the next run's output
	// delta (reverse shadow processing).
	ss.setPrevOutput(sum, stdout)
	return nil
}

func (ss *session) handleOutputFullReq(m *wire.OutputFullReq) error {
	j, ok := ss.srv.lookupJob(m.Job)
	if !ok {
		return ss.sendError(wire.CodeUnknownJob, fmt.Sprintf("job %d unknown", m.Job))
	}
	return ss.srv.sendOutput(ss, j, true /* forceFull */)
}
