package server

import (
	"strings"
	"testing"
	"time"

	"shadowedit/internal/diff"
	"shadowedit/internal/netsim"
	"shadowedit/internal/obs"
	"shadowedit/internal/trace"
	"shadowedit/internal/wire"
)

// flightStep is one expected (kind, name) flight-recorder entry.
type flightStep struct{ kind, name string }

// assertFlightSequence checks that events contain the steps as an ordered
// (not necessarily adjacent) subsequence and that timestamps never run
// backwards — the "coherent story" property the flight recorder exists for.
func assertFlightSequence(t *testing.T, events []trace.Event, steps []flightStep) {
	t.Helper()
	i := 0
	var prev int64
	for _, ev := range events {
		if ev.At < prev {
			t.Fatalf("flight recorder timestamps run backwards: %d after %d", ev.At, prev)
		}
		prev = ev.At
		if i < len(steps) && ev.Kind == steps[i].kind && ev.Name == steps[i].name {
			i++
		}
	}
	if i != len(steps) {
		t.Fatalf("flight recorder missing step %v\nrecorded: %s", steps[i], flightString(events))
	}
}

func flightString(events []trace.Event) string {
	var b strings.Builder
	for _, ev := range events {
		b.WriteString(ev.Kind + " " + ev.Name + "; ")
	}
	return b.String()
}

// TestFlightRecorderCoversRepullReHome replays the dead-owner re-homing
// scenario of TestRepullSurvivesCoalescedOwnerDeath with tracing on and
// asserts the observability side: the dead session's flight recorder is
// dumped on disconnect with the exchange that explains the stranded job
// (notify → pull → submit → submit-ok), and the surviving session's live
// recorder shows the re-homed pull being issued and answered through to
// output delivery.
func TestFlightRecorderCoversRepullReHome(t *testing.T) {
	nw := netsim.New()
	serverHost := nw.Host("super")
	lst, err := serverHost.Listen(1)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Defaults("super")
	cfg.Obs = obs.New(nil, nil)
	cfg.Obs.SetTracer(trace.New(trace.Config{}))
	srv := New(cfg)
	go func() {
		_ = srv.Serve(AcceptorFunc(func() (wire.Conn, error) { return lst.Accept() }))
	}()
	t.Cleanup(func() {
		_ = lst.Close()
		srv.Close()
	})

	ref := wire.FileRef{Domain: "d", FileID: "ws:/d.dat"}
	content := []byte("input payload\n")

	// Session A: notify (owns the flight, never answers the pull), then
	// submit a job needing that input.
	connA := dialSameIdentity(t, nw, serverHost, "wsA")
	if err := wire.Send(connA, &wire.Notify{File: ref, Version: 1, Size: int64(len(content)), Sum: diff.Checksum(content)}); err != nil {
		t.Fatal(err)
	}
	if m := recvWithin(t, connA, 5*time.Second); m.Kind() != wire.KindPull {
		t.Fatalf("expected pull on A, got %#v", m)
	}
	if err := wire.Send(connA, &wire.Submit{
		Script: []byte("checksum d\n"),
		Inputs: []wire.JobInput{{File: ref, Version: 1, As: "d"}},
	}); err != nil {
		t.Fatal(err)
	}
	okMsg, ok := recvWithin(t, connA, 5*time.Second).(*wire.SubmitOK)
	if !ok {
		t.Fatalf("expected submit ok on A")
	}

	// Session B re-attaches the same identity; the status round-trip proves
	// the hello (and its repull pass, which coalesces onto A's flight) is
	// fully done before A dies.
	connB := dialSameIdentity(t, nw, serverHost, "wsB")
	if err := wire.Send(connB, &wire.StatusReq{Job: okMsg.Job}); err != nil {
		t.Fatal(err)
	}
	if _, ok := recvWithin(t, connB, 5*time.Second).(*wire.StatusReply); !ok {
		t.Fatal("no status reply on B")
	}

	// A dies; the released flight re-issues the pull on B. The disconnect
	// dump happens before the session drops (and therefore before the
	// re-homed pull can reach B), so once the pull arrives the dump must
	// already be retained.
	_ = connA.Close()
	if m := recvWithin(t, connB, 5*time.Second); m.Kind() != wire.KindPull {
		t.Fatalf("expected re-issued pull on B, got %#v", m)
	}

	dumps := srv.FlightDumps()
	if len(dumps) != 1 {
		t.Fatalf("flight dumps = %d, want exactly A's disconnect dump", len(dumps))
	}
	d := dumps[0]
	if d.Reason != "disconnect" {
		t.Fatalf("dump reason = %q, want disconnect", d.Reason)
	}
	if d.User != "u" || d.Host != "ws" {
		t.Fatalf("dump identity = %q@%q, want u@ws", d.User, d.Host)
	}
	assertFlightSequence(t, d.Events, []flightStep{
		{"recv", "HELLO"},
		{"send", "HELLO_OK"},
		{"recv", "NOTIFY"},
		{"send", "PULL"},
		{"recv", "SUBMIT"},
		{"send", "SUBMIT_OK"},
	})

	// B answers the re-homed pull; the job runs and delivers on B.
	if err := wire.Send(connB, &wire.FileFull{File: ref, Version: 1, Content: content, Sum: diff.Checksum(content)}); err != nil {
		t.Fatal(err)
	}
drain:
	for {
		switch msg := recvWithin(t, connB, 5*time.Second).(type) {
		case *wire.FileAck:
		case *wire.Output:
			if msg.Job != okMsg.Job || msg.State != wire.JobDone {
				t.Fatalf("output = %+v", msg)
			}
			break drain
		default:
			t.Fatalf("unexpected message on B: %#v", msg)
		}
	}

	// The surviving session's live recorder tells the rest of the story:
	// its own handshake and status exchange, the re-homed pull it was
	// handed, the answer it gave, and the delivered output. Send events are
	// recorded before the bytes hit the wire, so receiving OUTPUT above
	// guarantees the ring already holds it.
	flights := srv.SessionFlights()
	if len(flights) != 1 {
		t.Fatalf("live session flights = %d, want only B", len(flights))
	}
	b := flights[0]
	if b.Session != d.Session+1 {
		t.Fatalf("surviving session id = %d, want %d (A was %d)", b.Session, d.Session+1, d.Session)
	}
	assertFlightSequence(t, b.Events, []flightStep{
		{"recv", "HELLO"},
		{"send", "HELLO_OK"},
		{"recv", "STATUS_REQ"},
		{"send", "STATUS_REPLY"},
		{"send", "PULL"},
		{"recv", "FILE_FULL"},
		{"send", "OUTPUT"},
	})
}
