package server

import (
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"

	"shadowedit/internal/diff"
	"shadowedit/internal/netsim"
	"shadowedit/internal/wire"
)

// multiRig is a server with K independent wire-level client connections.
type multiRig struct {
	srv   *Server
	conns []*netsim.Conn
}

func newMultiRig(t *testing.T, cfg Config, k int) *multiRig {
	t.Helper()
	nw := netsim.New()
	serverHost := nw.Host("super")
	lst, err := serverHost.Listen(1)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Name == "" {
		cfg = Defaults("super")
	}
	srv := New(cfg)
	go func() {
		_ = srv.Serve(AcceptorFunc(func() (wire.Conn, error) {
			return lst.Accept()
		}))
	}()
	t.Cleanup(func() {
		_ = lst.Close()
		srv.Close()
	})
	conns := make([]*netsim.Conn, k)
	for i := range conns {
		host := nw.Host(fmt.Sprintf("ws%d", i))
		nw.Connect(host, serverHost, netsim.LAN)
		conn, err := host.Dial("super", 1)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { _ = conn.Close() })
		if err := wire.Send(conn, &wire.Hello{
			Protocol: wire.ProtocolVersion, User: fmt.Sprintf("u%d", i),
			Domain: "d", ClientHost: fmt.Sprintf("ws%d", i),
		}); err != nil {
			t.Fatal(err)
		}
		if m, err := wire.Recv(conn); err != nil {
			t.Fatal(err)
		} else if _, ok := m.(*wire.HelloOK); !ok {
			t.Fatalf("hello reply = %#v", m)
		}
		conns[i] = conn
	}
	return &multiRig{srv: srv, conns: conns}
}

// TestConcurrentNotifyBurstCoalescesPulls races K sessions into notifying the
// same file version. The flight table must let exactly one pull onto the wire
// and coalesce the rest, and the one arrival must clear the flight for
// everyone. Run with -race this is also the session/flight interleaving
// soundness check.
func TestConcurrentNotifyBurstCoalescesPulls(t *testing.T) {
	const k = 8
	ref := wire.FileRef{Domain: "d", FileID: "shared:/proj/data.dat"}
	r := newMultiRig(t, Config{}, k)

	var wg sync.WaitGroup
	for _, conn := range r.conns {
		wg.Add(1)
		go func(conn *netsim.Conn) {
			defer wg.Done()
			if err := wire.Send(conn, &wire.Notify{File: ref, Version: 1, Size: 9, Sum: 1}); err != nil {
				t.Errorf("notify: %v", err)
			}
		}(conn)
	}
	wg.Wait()

	// Synchronize: a status round trip on each connection proves its notify
	// was handled; the winner sees the Pull first. Coalesced sessions must
	// see no Pull at all.
	winner := -1
	for i, conn := range r.conns {
		if err := wire.Send(conn, &wire.StatusReq{Job: 9999}); err != nil {
			t.Fatal(err)
		}
		for {
			m, err := wire.Recv(conn)
			if err != nil {
				t.Fatal(err)
			}
			switch msg := m.(type) {
			case *wire.Pull:
				if winner != -1 {
					t.Fatalf("sessions %d and %d both received a pull", winner, i)
				}
				if msg.File != ref || msg.WantVersion != 1 {
					t.Fatalf("pull = %+v", msg)
				}
				winner = i
				continue // the status reply is still coming
			case *wire.ErrorMsg:
				if msg.Code != wire.CodeUnknownJob {
					t.Fatalf("session %d: error %d %q", i, msg.Code, msg.Text)
				}
			default:
				t.Fatalf("session %d: unexpected %#v", i, m)
			}
			break
		}
	}
	if winner == -1 {
		t.Fatal("no session received a pull")
	}

	snap := r.srv.Metrics()
	if snap.PullsIssued != 1 || snap.PullsCoalesced != k-1 {
		t.Fatalf("pulls issued=%d coalesced=%d, want 1 and %d", snap.PullsIssued, snap.PullsCoalesced, k-1)
	}
	if n := r.srv.flights.Len(); n != 1 {
		t.Fatalf("flights in flight = %d, want 1", n)
	}

	// The single answer satisfies the flight; the ack flows back to the
	// session that transferred.
	body := []byte("v1 bytes\n")
	if err := wire.Send(r.conns[winner], &wire.FileFull{
		File: ref, Version: 1, Content: body, Sum: diff.Checksum(body),
	}); err != nil {
		t.Fatal(err)
	}
	if m, err := wire.Recv(r.conns[winner]); err != nil {
		t.Fatal(err)
	} else if ack, ok := m.(*wire.FileAck); !ok || ack.Version != 1 {
		t.Fatalf("ack = %#v", m)
	}
	if n := r.srv.flights.Len(); n != 0 {
		t.Fatalf("flights after arrival = %d, want 0", n)
	}

	// A repeat notify for the now-cached version must not pull again.
	quiet := (winner + 1) % k
	if err := wire.Send(r.conns[quiet], &wire.Notify{File: ref, Version: 1, Size: 9, Sum: diff.Checksum(body)}); err != nil {
		t.Fatal(err)
	}
	if err := wire.Send(r.conns[quiet], &wire.StatusReq{Job: 9999}); err != nil {
		t.Fatal(err)
	}
	if m, err := wire.Recv(r.conns[quiet]); err != nil {
		t.Fatal(err)
	} else if e, ok := m.(*wire.ErrorMsg); !ok || e.Code != wire.CodeUnknownJob {
		t.Fatalf("expected only the status reply, got %#v", m)
	}
	if snap := r.srv.Metrics(); snap.PullsIssued != 1 {
		t.Fatalf("cached-version notify re-pulled: issued=%d", snap.PullsIssued)
	}
}

// TestDeadOwnerReleasesFlight kills the session that owns an in-flight fetch
// and checks the flight table does not stay wedged: the released fetch is
// re-homed (or dropped) so a later notify can pull again.
func TestDeadOwnerReleasesFlight(t *testing.T) {
	const k = 2
	ref := wire.FileRef{Domain: "d", FileID: "shared:/proj/data.dat"}
	r := newMultiRig(t, Config{}, k)

	// Session 0 notifies and wins the flight.
	if err := wire.Send(r.conns[0], &wire.Notify{File: ref, Version: 1, Size: 9, Sum: 1}); err != nil {
		t.Fatal(err)
	}
	if m, err := wire.Recv(r.conns[0]); err != nil {
		t.Fatal(err)
	} else if _, ok := m.(*wire.Pull); !ok {
		t.Fatalf("expected pull, got %#v", m)
	}
	// Session 1's notify coalesces behind it.
	if err := wire.Send(r.conns[1], &wire.Notify{File: ref, Version: 1, Size: 9, Sum: 1}); err != nil {
		t.Fatal(err)
	}
	if err := wire.Send(r.conns[1], &wire.StatusReq{Job: 9999}); err != nil {
		t.Fatal(err)
	}
	if m, err := wire.Recv(r.conns[1]); err != nil {
		t.Fatal(err)
	} else if e, ok := m.(*wire.ErrorMsg); !ok || e.Code != wire.CodeUnknownJob {
		t.Fatalf("expected status reply, got %#v", m)
	}

	// Kill the owner without answering. Its flights must be released.
	_ = r.conns[0].Close()
	deadline := time.Now().Add(5 * time.Second)
	for r.srv.SessionCount() != 1 || r.srv.flights.Len() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("flight not released after owner death: sessions=%d flights=%d",
				r.srv.SessionCount(), r.srv.flights.Len())
		}
		runtime.Gosched()
	}

	// With the flight gone, session 1 can pull the file itself.
	if err := wire.Send(r.conns[1], &wire.Notify{File: ref, Version: 2, Size: 9, Sum: 2}); err != nil {
		t.Fatal(err)
	}
	if m, err := wire.Recv(r.conns[1]); err != nil {
		t.Fatal(err)
	} else if p, ok := m.(*wire.Pull); !ok || p.WantVersion != 2 {
		t.Fatalf("expected pull v2, got %#v", m)
	}
}
