package client

// Multi-server routing for a shadow-cache cluster: the client holds one
// ordinary Client per instance, all sharing a single version store and job
// database, and routes each file's traffic to the instance the placement
// ring (internal/cluster) names as its owner. Because the store is shared,
// committing a file through one member and answering another member's pull
// later both see the same versions — any session can serve any file.
//
// The client and the servers must agree on placement: both hash the file's
// canonical reference string onto the same ring — same member list, and a
// virtual-node count fixed at cluster.DefaultVirtualNodes on every node (it
// is deliberately not configurable: a count either side could get wrong
// would silently place files on the wrong owner) — so no placement metadata
// ever crosses the wire.

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"

	"shadowedit/internal/cluster"
	"shadowedit/internal/env"
	"shadowedit/internal/metrics"
	"shadowedit/internal/vcs"
	"shadowedit/internal/wire"
)

// ClusterMember names one shadowd instance and how to reach it.
type ClusterMember struct {
	// Name is the instance's cluster member name — it must match the
	// -instance name the server was started with, or placement disagrees.
	Name string
	// Dial opens a transport to the instance.
	Dial func() (wire.Conn, error)
}

// ClusterJob identifies a job within a cluster: the member that runs it and
// the member-local job id.
type ClusterJob struct {
	Member string
	Job    uint64
}

// ClusterClient is a workstation's connection to every instance of a
// shadow-cache cluster, routing per-file traffic to ring owners.
type ClusterClient struct {
	ring    *cluster.Ring
	order   []string // member names in the order given
	clients map[string]*Client
	misses  atomic.Int64
}

// ConnectCluster establishes a session with every cluster member. The
// per-member clients share one version store and job database (seeded from
// cfg.Store/cfg.Jobs when set, fresh otherwise); all other Config fields
// apply to each member alike, except Dial, which each member supplies.
func ConnectCluster(ctx context.Context, members []ClusterMember, cfg Config) (*ClusterClient, error) {
	if len(members) == 0 {
		return nil, errors.New("client: ConnectCluster needs at least one member")
	}
	if cfg.Store == nil {
		retain := cfg.Env.RetainVersions
		if retain == 0 {
			retain = env.Default(cfg.User).RetainVersions
		}
		cfg.Store = vcs.NewStore(retain)
	}
	if cfg.Jobs == nil {
		cfg.Jobs = env.NewJobDB()
	}
	cc := &ClusterClient{
		clients: make(map[string]*Client, len(members)),
	}
	names := make([]string, 0, len(members))
	for _, m := range members {
		if m.Name == "" || m.Dial == nil {
			cc.closeAll()
			return nil, errors.New("client: cluster member needs a name and a dial function")
		}
		if _, dup := cc.clients[m.Name]; dup {
			cc.closeAll()
			return nil, fmt.Errorf("client: duplicate cluster member %q", m.Name)
		}
		mcfg := cfg
		mcfg.Dial = m.Dial
		c, err := Connect(ctx, nil, mcfg)
		if err != nil {
			cc.closeAll()
			return nil, fmt.Errorf("client: connect to %s: %w", m.Name, err)
		}
		cc.clients[m.Name] = c
		names = append(names, m.Name)
	}
	cc.order = names
	cc.ring = cluster.NewRing(cluster.DefaultVirtualNodes, names...)
	return cc, nil
}

func (cc *ClusterClient) closeAll() {
	for _, c := range cc.clients {
		_ = c.Close()
	}
}

// Members returns the member names in connection order.
func (cc *ClusterClient) Members() []string {
	return append([]string(nil), cc.order...)
}

// Client returns the session to one member (nil if unknown) — escape hatch
// for member-local operations and tests.
func (cc *ClusterClient) Client(member string) *Client { return cc.clients[member] }

// OwnerMisses reports how many operations fell through from a file's ring
// owner to a successor because the owner's session was down.
func (cc *ClusterClient) OwnerMisses() int64 { return cc.misses.Load() }

// Owner reports the member the placement ring assigns the file to,
// ignoring liveness — for diagnosis and tests.
func (cc *ClusterClient) Owner(filePath string) (string, error) {
	ref, err := cc.clients[cc.order[0]].refFor(filePath)
	if err != nil {
		return "", err
	}
	return cc.ring.Owner(ref.String()), nil
}

// healthy reports whether a member's session can still serve requests.
func (c *Client) healthy() bool {
	select {
	case <-c.done:
		return false
	default:
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return !c.closed
}

// transientRouteErr reports an error worth routing around: the member was
// unreachable, not the request invalid.
func transientRouteErr(err error) bool {
	return errors.Is(err, ErrDisconnected) || errors.Is(err, ErrRetriesExhausted)
}

// withOwner resolves a local path to its ring owner and runs op there,
// falling through the successor list when a member is down or the operation
// fails with a connectivity error. Each hop past a candidate counts an
// owner miss — the same counter the servers keep, so a cluster-wide scrape
// shows both halves of a failover.
func (cc *ClusterClient) withOwner(filePath string, op func(member string, c *Client) error) error {
	// Any member resolves names identically (same Universe/Tilde config).
	probe := cc.clients[cc.order[0]]
	ref, err := probe.refFor(filePath)
	if err != nil {
		return err
	}
	lastErr := error(ErrDisconnected)
	for i, name := range cc.ring.Successors(ref.String()) {
		c := cc.clients[name]
		if c == nil {
			continue
		}
		if i > 0 {
			cc.misses.Add(1)
			c.counters.AddOwnerMiss()
		}
		if !c.healthy() {
			lastErr = fmt.Errorf("cluster member %s: %w", name, ErrDisconnected)
			continue
		}
		err := op(name, c)
		if err == nil || !transientRouteErr(err) {
			return err
		}
		lastErr = err
	}
	return lastErr
}

// CommitAndNotify registers the file's current content as a new version and
// notifies its ring owner — the single-file editing postprocessor, routed.
func (cc *ClusterClient) CommitAndNotify(filePath string) (NotifyResult, error) {
	var res NotifyResult
	err := cc.withOwner(filePath, func(_ string, c *Client) error {
		var err error
		res, err = c.CommitAndNotify(filePath)
		return err
	})
	return res, err
}

// Submit routes a job to the script's ring owner. Each data file is first
// committed and notified to its own owner, so by the time the executing
// instance gathers inputs, every owner holds (or is already pulling) the
// current version and non-owned inputs travel instance-to-instance as
// deltas — never from the client twice. The shared store makes the
// executing member's own notify pass a no-op for unchanged files.
func (cc *ClusterClient) Submit(ctx context.Context, scriptPath string, dataPaths []string, opts SubmitOptions) (ClusterJob, error) {
	for _, p := range dataPaths {
		p := p
		if err := cc.withOwner(p, func(_ string, c *Client) error {
			_, err := c.CommitAndNotify(p)
			return err
		}); err != nil {
			return ClusterJob{}, fmt.Errorf("client: notify %s owner: %w", p, err)
		}
	}
	var out ClusterJob
	err := cc.withOwner(scriptPath, func(member string, c *Client) error {
		job, err := c.Submit(ctx, scriptPath, dataPaths, opts)
		if err == nil {
			out = ClusterJob{Member: member, Job: job}
		}
		return err
	})
	return out, err
}

// memberOf returns the session a ClusterJob lives on.
func (cc *ClusterClient) memberOf(j ClusterJob) (*Client, error) {
	c := cc.clients[j.Member]
	if c == nil {
		return nil, fmt.Errorf("client: unknown cluster member %q", j.Member)
	}
	return c, nil
}

// Wait blocks until the job's output has been delivered (see Client.Wait).
func (cc *ClusterClient) Wait(ctx context.Context, j ClusterJob) (env.JobRecord, error) {
	c, err := cc.memberOf(j)
	if err != nil {
		return env.JobRecord{}, err
	}
	return c.Wait(ctx, j.Job)
}

// Status queries the job's state at the member that runs it.
func (cc *ClusterClient) Status(ctx context.Context, j ClusterJob) (wire.JobStatus, error) {
	c, err := cc.memberOf(j)
	if err != nil {
		return wire.JobStatus{}, err
	}
	return c.Status(ctx, j.Job)
}

// Fetch returns the job's record with its output, retrieving it if needed.
func (cc *ClusterClient) Fetch(ctx context.Context, j ClusterJob) (env.JobRecord, error) {
	c, err := cc.memberOf(j)
	if err != nil {
		return env.JobRecord{}, err
	}
	return c.Fetch(ctx, j.Job)
}

// Metrics returns each member session's transfer counters, keyed by member
// name. Cluster-wide totals are the field-wise sums: every counter counts
// one side of one transfer exactly once.
func (cc *ClusterClient) Metrics() map[string]metrics.Snapshot {
	out := make(map[string]metrics.Snapshot, len(cc.clients))
	for name, c := range cc.clients {
		out[name] = c.Metrics()
	}
	return out
}

// Close ends every member session, reporting the first error.
func (cc *ClusterClient) Close() error {
	var first error
	for _, name := range cc.order {
		if err := cc.clients[name].Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
