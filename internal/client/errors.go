package client

import (
	"context"
	"errors"
	"fmt"
)

// The client's error taxonomy. Every failure a caller can act on maps to
// one of these sentinels via errors.Is; wrapped causes stay reachable
// through errors.Unwrap (a deadline error, for example, matches both
// ErrDeadlineExceeded and context.DeadlineExceeded).
var (
	// ErrClosed reports use after Close.
	ErrClosed = errors.New("client: closed")
	// ErrDisconnected reports an operation that failed because the
	// connection to the server was lost (and, without a Dial function,
	// cannot come back).
	ErrDisconnected = errors.New("client: disconnected")
	// ErrNoSession is the historical name for ErrDisconnected.
	ErrNoSession = ErrDisconnected
	// ErrRetriesExhausted reports that reconnection or request retries
	// gave up after the configured number of attempts.
	ErrRetriesExhausted = errors.New("client: retries exhausted")
	// ErrDeadlineExceeded reports a per-RPC or caller deadline expiry.
	// Errors carrying it also match context.DeadlineExceeded.
	ErrDeadlineExceeded = errors.New("client: deadline exceeded")
	// ErrBaseEvicted reports a delta whose base version is gone — the
	// best-effort cache at work — when the full-transfer fallback could
	// not be arranged either.
	ErrBaseEvicted = errors.New("client: delta base evicted")
)

// taggedErr attaches an errors.Is-able sentinel to a cause without
// repeating the sentinel's text: the cause carries the full message, the
// tag carries the identity.
type taggedErr struct {
	tag   error
	cause error
}

func (e *taggedErr) Error() string        { return e.cause.Error() }
func (e *taggedErr) Unwrap() error        { return e.cause }
func (e *taggedErr) Is(target error) bool { return target == e.tag }

// tagErr wraps cause so errors.Is(err, tag) holds while the message and
// the rest of the chain stay those of cause.
func tagErr(tag, cause error) error {
	if cause == nil {
		return tag
	}
	return &taggedErr{tag: tag, cause: cause}
}

// transientErr marks a failure the session layer may retry: the connection
// died or an attempt timed out, but the client is neither closed nor given
// up. It never escapes to callers — retry loops unwrap it.
type transientErr struct{ cause error }

func (e *transientErr) Error() string { return e.cause.Error() }
func (e *transientErr) Unwrap() error { return e.cause }

// ctxErr wraps a context error for the caller: deadline expiries gain the
// ErrDeadlineExceeded tag (while still matching context.DeadlineExceeded
// through the chain), cancellations pass through matching context.Canceled.
func ctxErr(op string, err error) error {
	wrapped := fmt.Errorf("client: %s: %w", op, err)
	if errors.Is(err, context.DeadlineExceeded) {
		return tagErr(ErrDeadlineExceeded, wrapped)
	}
	return wrapped
}
