// Package client implements the shadow client that runs at a user's
// workstation (§6.1): it hides all communication detail, versions edited
// files, answers the server's demand-driven pulls with deltas, submits jobs,
// tracks their status, and receives their output.
//
// The session layer is fault tolerant: with a Dial function configured, a
// lost connection is re-established with exponential backoff, the session is
// resumed against the server's identity-keyed state (held outputs are
// re-delivered, dangling pulls re-issued), and interrupted requests are
// retried idempotently. Every blocking call takes a context and returns
// errors from the package's typed taxonomy (ErrDisconnected,
// ErrRetriesExhausted, ErrDeadlineExceeded, ErrBaseEvicted).
package client

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"math/rand"
	"path"
	"sync"
	"time"

	"shadowedit/internal/core"
	"shadowedit/internal/diff"
	"shadowedit/internal/env"
	"shadowedit/internal/metrics"
	"shadowedit/internal/naming"
	"shadowedit/internal/obs"
	"shadowedit/internal/trace"
	"shadowedit/internal/vcs"
	"shadowedit/internal/wire"
)

// RetryPolicy shapes reconnection and request retries: exponential backoff
// with seeded jitter, bounded by MaxAttempts. The zero value selects the
// defaults noted on each field.
type RetryPolicy struct {
	// MaxAttempts bounds reconnect attempts per outage and retries per
	// request (default 8).
	MaxAttempts int
	// BaseDelay is the first backoff delay (default 50ms).
	BaseDelay time.Duration
	// MaxDelay caps the backoff (default 5s).
	MaxDelay time.Duration
	// Multiplier grows the delay each attempt (default 2).
	Multiplier float64
	// Jitter randomizes each delay by ±Jitter fraction (default 0.2).
	Jitter float64
	// Seed seeds the jitter RNG for reproducible simulations; 0 derives a
	// stable seed from the client's identity.
	Seed int64
}

// withDefaults fills unset fields.
func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 8
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = 50 * time.Millisecond
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = 5 * time.Second
	}
	if p.Multiplier < 1 {
		p.Multiplier = 2
	}
	if p.Jitter <= 0 {
		p.Jitter = 0.2
	}
	return p
}

// Config parametrizes a Client.
type Config struct {
	// User is the submitting user.
	User string
	// Universe is the local naming domain and file storage.
	Universe *naming.Universe
	// Host is the workstation's name within the universe.
	Host string
	// Env holds the user's shadow environment (customization).
	Env env.Environment
	// WorkDir is where job results are written when output file names are
	// relative; defaults to /home/<user>.
	WorkDir string
	// Tilde optionally holds the user's tilde-tree bindings; file names
	// of the form "~tree/path" resolve through it (§5.3 Tilde naming).
	Tilde *naming.TildeSpace
	// Store optionally seeds the version store — typically one restored
	// with vcs.Load after a client restart, so retained versions (and
	// with them the ability to answer pulls with deltas) survive. Nil
	// creates a fresh store.
	Store *vcs.Store
	// Jobs optionally seeds the job database — typically one restored
	// with env.LoadJobDB, so job records survive restarts. Nil creates a
	// fresh database.
	Jobs *env.JobDB
	// Clock receives local compute charges (diff runs) in simulations.
	Clock core.Clock
	// Chunked opts this client into protocol v3 chunk transfers when the
	// server confirms the version: pulls are answered with content-addressed
	// chunk manifests (inlining only the chunks new against the server's
	// base) instead of line deltas, and the server fetches missing chunks
	// individually instead of whole files. Off, the classic delta/full
	// protocol is spoken regardless of what the server supports.
	Chunked bool
	// PerFileSync forces Workspace.Sync onto the classic one-notify-per-
	// file path even against a v4 server — the degraded mode spoken to
	// older servers, kept reachable for comparison and diagnosis.
	PerFileSync bool

	// Dial, when set, enables the fault-tolerant session layer: a lost
	// connection is redialed with backoff, the session resumed, and
	// interrupted requests retried (submissions carry idempotency tags).
	// Without it the client behaves as before — one connection, and a
	// disconnect ends the session with ErrDisconnected.
	Dial func() (wire.Conn, error)
	// Retry shapes reconnection and retry backoff; zero-value fields take
	// the documented defaults.
	Retry RetryPolicy
	// RPCTimeout bounds each attempt of a synchronous round trip (submit,
	// status). An attempt that exceeds it severs the suspect connection
	// and retries over a fresh one. Zero disables per-attempt deadlines;
	// callers still bound calls with their context.
	RPCTimeout time.Duration
	// Sleep, when set, replaces real sleeping during backoff — simulated
	// deployments advance the workstation's virtual clock instead, so
	// backoff escapes link-flap windows in virtual time. It must respect
	// ctx cancellation. Nil sleeps on the wall clock.
	Sleep func(ctx context.Context, d time.Duration) error

	// Obs, when set, records the full edit–submit–fetch cycle latency
	// (Submit called → output delivered) in its Cycle histogram. Nil keeps
	// the submit and delivery paths free of any instrumentation cost.
	Obs *obs.Observer
}

// SubmitOptions are the per-submission optional arguments of the submit
// command (§6.2): result file names, an alternate execution host is chosen
// by connecting to a different server, and output routing.
type SubmitOptions struct {
	// OutputFile and ErrorFile override the environment's defaults.
	OutputFile string
	ErrorFile  string
	// RouteHost delivers output to a session from another host.
	RouteHost string
	// OutputDelta requests reverse shadow processing for this job; the
	// environment's WantOutputDelta is the default.
	OutputDelta *bool
}

// Client is one workstation's connection to one shadow server. A user may
// hold several clients, one per supercomputer.
type Client struct {
	cfg      Config
	store    *vcs.Store
	jobdb    *env.JobDB
	counters *metrics.Counters

	// serverName is written once during the initial handshake (before any
	// other goroutine exists) and read-only afterwards.
	serverName string
	// serverProto is the protocol version the server confirmed on HELLO_OK
	// (0 = a classic server that never echoes one). Guarded by mu: each
	// reconnect renegotiates it.
	serverProto uint32

	retry RetryPolicy

	// lifeCtx cancels the supervisor's sleeps and redials when the client
	// closes.
	lifeCtx  context.Context
	lifeStop context.CancelFunc

	reqMu sync.Mutex // serializes synchronous request/response exchanges

	mu       sync.Mutex
	conn     wire.Conn     // current transport; nil while disconnected
	connDown chan struct{} // closed when the current conn is torn down
	connUp   chan struct{} // closed once a conn is live; remade when it dies
	session  uint64
	awaiting chan wire.Message // live only while a request is outstanding
	replyCh  chan wire.Message // reused across attempts; drained at install
	pending  *pendingSubmit    // submit in flight, installed on SUBMIT_OK
	outPrev  map[uint32][]byte // script checksum -> last received stdout
	jobMeta  map[uint64]jobMeta
	jobDone  map[uint64]chan struct{}
	// cycleStart stamps when Submit was called for each job still awaiting
	// output, feeding the full-cycle histogram. Populated only when
	// cfg.Obs is set; presence in the map means "timed".
	cycleStart map[uint64]time.Duration
	// cycleSpan holds each traced cycle's root span until its output is
	// delivered, keyed by job id like cycleStart. Populated only when the
	// observer has a tracer and the cycle was sampled.
	cycleSpan map[uint64]*trace.Span
	delivered []uint64      // job ids delivered but not yet taken by WaitAny
	arrivals  chan struct{} // signaled on each delivery
	// ackSignal wakes awaitAcks after each FileAck is applied to the
	// store (buffered: a signal is never lost, dozens coalesce into one
	// wakeup and the waiter rescans).
	ackSignal chan struct{}
	closed    bool
	lastErr   error // final error; set when the client finishes
	lastDrop  error // why the current connection died (supervisor scratch)
	tagBase   uint64
	nextTag   uint64
	rng       *rand.Rand // backoff jitter, guarded by mu

	done      chan struct{} // closed when the client is permanently finished
	doneOnce  sync.Once
	superDone chan struct{} // supervisor exited
}

type jobMeta struct {
	scriptSum  uint32
	outputFile string
	errorFile  string
}

// pendingSubmit carries a submit's metadata from the caller to the read
// loop, which installs it under the job id the moment SUBMIT_OK arrives.
// Registration must not wait for the caller to resume: the job's OUTPUT can
// follow SUBMIT_OK immediately, and an output for an unregistered job would
// be mistaken for one whose delta base is gone. Output and error file names
// are kept unexpanded ("" = the environment default with %J = job id),
// since the job id is unknown until the reply.
type pendingSubmit struct {
	scriptSum  uint32
	outputFile string
	errorFile  string
	// cycleStart carries the Submit-call stamp for the full-cycle
	// histogram; cycleTimed distinguishes a real stamp from an untimed
	// submission (a virtual clock legitimately reads 0).
	cycleStart time.Duration
	cycleTimed bool
	// span is the cycle's root trace span (nil when untraced); the read
	// loop parks it in cycleSpan under the job id so handleOutput can
	// close the trace on delivery.
	span *trace.Span
}

// expand resolves the metadata against a now-known job id.
func (p *pendingSubmit) expand(e env.Environment, job uint64) jobMeta {
	m := jobMeta{scriptSum: p.scriptSum, outputFile: p.outputFile, errorFile: p.errorFile}
	if m.outputFile == "" {
		m.outputFile = e.ExpandOutput(job)
	}
	if m.errorFile == "" {
		m.errorFile = e.ExpandError(job)
	}
	return m
}

// Connect establishes a session: it sends HELLO over conn (dialing one via
// cfg.Dial when conn is nil), waits for HELLO_OK, and starts the background
// supervisor that answers server pulls and — with cfg.Dial set — re-dials
// and resumes the session after connection loss. ctx bounds only the
// handshake.
func Connect(ctx context.Context, conn wire.Conn, cfg Config) (*Client, error) {
	if cfg.Universe == nil {
		return nil, errors.New("client: Config.Universe is required")
	}
	if cfg.User == "" {
		cfg.User = cfg.Env.User
	}
	if cfg.Env.User == "" {
		cfg.Env = env.Default(cfg.User)
	}
	if err := cfg.Env.Validate(); err != nil {
		return nil, err
	}
	if cfg.WorkDir == "" {
		cfg.WorkDir = "/home/" + cfg.User
	}
	if cfg.Clock == nil {
		cfg.Clock = core.NopClock{}
	}

	store := cfg.Store
	if store == nil {
		store = vcs.NewStore(cfg.Env.RetainVersions)
	} else {
		store.SetRetain(cfg.Env.RetainVersions)
	}
	jobdb := cfg.Jobs
	if jobdb == nil {
		jobdb = env.NewJobDB()
	}
	if conn == nil {
		if cfg.Dial == nil {
			return nil, errors.New("client: Connect needs a connection or Config.Dial")
		}
		var err error
		conn, err = cfg.Dial()
		if err != nil {
			return nil, fmt.Errorf("client: dial: %w", err)
		}
	}
	c := &Client{
		cfg:        cfg,
		store:      store,
		jobdb:      jobdb,
		counters:   &metrics.Counters{},
		retry:      cfg.Retry.withDefaults(),
		outPrev:    make(map[uint32][]byte),
		jobMeta:    make(map[uint64]jobMeta),
		jobDone:    make(map[uint64]chan struct{}),
		cycleStart: make(map[uint64]time.Duration),
		cycleSpan:  make(map[uint64]*trace.Span),
		arrivals:   make(chan struct{}, 1),
		ackSignal:  make(chan struct{}, 1),
		connDown:   make(chan struct{}),
		connUp:     make(chan struct{}),
		done:       make(chan struct{}),
		superDone:  make(chan struct{}),
	}
	c.rng = rand.New(rand.NewSource(c.jitterSeed()))
	c.lifeCtx, c.lifeStop = context.WithCancel(context.Background())

	// The handshake honors ctx by severing the transport on expiry.
	stop := context.AfterFunc(ctx, func() { _ = conn.Close() })
	err := c.handshake(conn)
	stop()
	if err != nil {
		c.lifeStop()
		_ = conn.Close()
		if ctx.Err() != nil {
			return nil, ctxErr("connect", ctx.Err())
		}
		return nil, err
	}
	c.installConn(conn)
	go c.supervise(conn)
	return c, nil
}

// jitterSeed derives a stable per-identity seed when the policy leaves it 0.
func (c *Client) jitterSeed() int64 {
	if c.retry.Seed != 0 {
		return c.retry.Seed
	}
	h := fnv.New64a()
	_, _ = h.Write([]byte(c.cfg.User))
	_, _ = h.Write([]byte{0})
	_, _ = h.Write([]byte(c.cfg.Host))
	return int64(h.Sum64() | 1)
}

// ServerName returns the connected server's advertised name.
func (c *Client) ServerName() string { return c.serverName }

// chunkedActive reports whether chunk transfers are negotiated on the
// current session: the client opted in and the server confirmed v3+.
func (c *Client) chunkedActive() bool {
	if !c.cfg.Chunked {
		return false
	}
	c.mu.Lock()
	proto := c.serverProto
	c.mu.Unlock()
	return proto >= wire.ChunkProtocolVersion
}

// Store exposes the version store (tests and the editor integration).
func (c *Client) Store() *vcs.Store { return c.store }

// Jobs exposes the client's job database.
func (c *Client) Jobs() *env.JobDB { return c.jobdb }

// Metrics returns the client's transfer counters.
func (c *Client) Metrics() metrics.Snapshot { return c.counters.Snapshot() }

// Environment returns the active shadow environment.
func (c *Client) Environment() env.Environment { return c.cfg.Env }

// CommitAndNotify registers the current content of the named local file as a
// new version and notifies the server (the shadow editor's postprocessor
// calls this at the end of every editing session). Unchanged content sends
// nothing — the result's WireBytes is then 0. A changed file begins a traced
// "notify" cycle when tracing is on: the NOTIFY carries the minted context,
// so the server's pull decision and cache apply join the same causal trace.
// This is the single-file degenerate case of Workspace.Sync; both report
// through the same NotifyResult shape.
func (c *Client) CommitAndNotify(filePath string) (NotifyResult, error) {
	return c.commitAndNotify(filePath, wire.TraceContext{}, true)
}

// commitAndNotify is CommitAndNotify with an inherited trace context. A
// valid tc means the caller (a submit cycle) already owns the trace. With
// mint set and no inherited context, a changed file mints a standalone
// "notify" trace for the send, ended immediately — the client's part of a
// notify-only cycle is over once the NOTIFY is on the wire, and the
// server's spans append to the completed record when the deployment shares
// one tracer. Submit passes mint=false: its cycle's sampling decision
// (root span or nil) covers the notifies it issues.
func (c *Client) commitAndNotify(filePath string, tc wire.TraceContext, mint bool) (NotifyResult, error) {
	ref, err := c.refFor(filePath)
	if err != nil {
		return NotifyResult{}, err
	}
	content, err := c.readFile(filePath)
	if err != nil {
		return NotifyResult{}, err
	}
	version, changed := c.store.Commit(ref, content)
	if !changed {
		return NotifyResult{File: ref, Version: version}, nil
	}
	var sp *trace.Span
	if mint && !tc.Valid() {
		sp = c.cfg.Obs.StartTrace("notify").SetFile(ref.String())
		tc = sp.Context()
	}
	notify := &wire.Notify{
		File:    ref,
		Version: version,
		Size:    int64(len(content)),
		Sum:     diff.Checksum(content),
	}
	c.counters.AddControl(0)
	err = c.sendTraced(notify, tc)
	if sp != nil {
		if err != nil {
			sp.Annotate("send failed")
		}
		sp.Finish()
		c.cfg.Obs.EndTrace(sp.Context())
	}
	if err != nil {
		return NotifyResult{}, err
	}
	return NotifyResult{File: ref, Version: version, WireBytes: len(wire.MarshalTraced(notify, tc))}, nil
}

// Submit sends a job: scriptPath names the job command file, dataPaths the
// data files its commands read (referenced by base name). It returns the
// server-assigned job id. With Config.Dial set, a submission interrupted by
// connection loss is retried over the re-established session under an
// idempotency tag, so the job runs exactly once.
func (c *Client) Submit(ctx context.Context, scriptPath string, dataPaths []string, opts SubmitOptions) (uint64, error) {
	cycleStart := c.cfg.Obs.Now()
	// The root span of the whole edit–submit–fetch cycle: minted here,
	// closed by handleOutput when the job's output is delivered. Retries
	// reuse it — however many attempts, it is one cycle.
	root := c.cfg.Obs.StartTrace("cycle")
	job, err := c.submitRetrying(ctx, scriptPath, dataPaths, opts, cycleStart, root)
	if err != nil && root != nil {
		root.Annotate("submit failed: " + err.Error()).Finish()
		c.cfg.Obs.EndTrace(root.Context())
	}
	return job, err
}

// submitRetrying is Submit's retry loop, split out so the caller can close
// the cycle trace on terminal failure.
func (c *Client) submitRetrying(ctx context.Context, scriptPath string, dataPaths []string, opts SubmitOptions, cycleStart time.Duration, root *trace.Span) (uint64, error) {
	script, err := c.readFile(scriptPath)
	if err != nil {
		return 0, fmt.Errorf("client: read script: %w", err)
	}
	var tag uint64
	if c.cfg.Dial != nil {
		tag = c.newTag()
	}
	for attempt := 1; ; attempt++ {
		job, err := c.submitOnce(ctx, script, dataPaths, opts, tag, cycleStart, root)
		if err == nil {
			return job, nil
		}
		var tr *transientErr
		if !errors.As(err, &tr) {
			return 0, err
		}
		if c.cfg.Dial == nil {
			return 0, tr.cause
		}
		if attempt >= c.retry.MaxAttempts {
			return 0, tagErr(ErrRetriesExhausted,
				fmt.Errorf("client: submit failed after %d attempts: %w", attempt, tr.cause))
		}
		c.counters.AddRetry()
	}
}

// submitOnce performs one submission attempt over the current connection.
func (c *Client) submitOnce(ctx context.Context, script []byte, dataPaths []string, opts SubmitOptions, tag uint64, cycleStart time.Duration, root *trace.Span) (uint64, error) {
	_, down, err := c.waitConnected(ctx)
	if err != nil {
		return 0, err
	}
	inputs := make([]wire.JobInput, 0, len(dataPaths))
	for _, p := range dataPaths {
		res, err := c.commitAndNotify(p, root.Context(), false)
		if err != nil {
			if errors.Is(err, ErrDisconnected) && !errors.Is(err, ErrClosed) {
				c.awaitDown(ctx, down)
				return 0, &transientErr{cause: err}
			}
			return 0, fmt.Errorf("client: prepare %s: %w", p, err)
		}
		inputs = append(inputs, wire.JobInput{File: res.File, Version: res.Version, As: path.Base(p)})
	}
	wantDelta := c.cfg.Env.WantOutputDelta
	if opts.OutputDelta != nil {
		wantDelta = *opts.OutputDelta
	}
	req := &wire.Submit{
		Script:          script,
		Inputs:          inputs,
		OutputFile:      opts.OutputFile,
		ErrorFile:       opts.ErrorFile,
		RouteHost:       opts.RouteHost,
		WantOutputDelta: wantDelta,
		ClientTag:       tag,
	}
	// The read loop installs the job metadata as soon as SUBMIT_OK
	// arrives — before this goroutine resumes — because the job's OUTPUT
	// can be right behind it on the wire.
	p := &pendingSubmit{
		scriptSum:  diff.Checksum(script),
		outputFile: opts.OutputFile,
		errorFile:  opts.ErrorFile,
		cycleStart: cycleStart,
		cycleTimed: c.cfg.Obs != nil,
		span:       root,
	}
	c.mu.Lock()
	c.pending = p
	c.mu.Unlock()
	reply, err := c.attempt(ctx, req, root.Context())
	c.mu.Lock()
	c.pending = nil
	c.mu.Unlock()
	if err != nil {
		return 0, err
	}
	ok, isOK := reply.(*wire.SubmitOK)
	if !isOK {
		return 0, replyError(reply)
	}

	c.mu.Lock()
	meta, known := c.jobMeta[ok.Job]
	if !known {
		meta = p.expand(c.cfg.Env, ok.Job)
		c.jobMeta[ok.Job] = meta
	}
	if _, exists := c.jobDone[ok.Job]; !exists {
		c.jobDone[ok.Job] = make(chan struct{})
	}
	if p.cycleTimed {
		if _, stamped := c.cycleStart[ok.Job]; !stamped {
			c.cycleStart[ok.Job] = p.cycleStart
		}
	}
	if root != nil {
		if _, parked := c.cycleSpan[ok.Job]; !parked {
			c.cycleSpan[ok.Job] = root.SetJob(ok.Job)
		}
	}
	c.mu.Unlock()
	c.jobdb.Record(env.JobRecord{
		Server:     c.serverName,
		ID:         ok.Job,
		State:      wire.JobQueued,
		OutputFile: meta.outputFile,
		ErrorFile:  meta.errorFile,
	})
	return ok.Job, nil
}

// newTag mints a submission idempotency tag unique within this identity:
// the first session id keys the space, so a restarted client (fresh session)
// never collides with its predecessor's tags.
func (c *Client) newTag() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.tagBase == 0 {
		c.tagBase = c.session << 20
	}
	c.nextTag++
	return c.tagBase + c.nextTag
}

// Status queries one job's state at the server.
func (c *Client) Status(ctx context.Context, job uint64) (wire.JobStatus, error) {
	reply, err := c.roundTrip(ctx, &wire.StatusReq{Job: job})
	if err != nil {
		return wire.JobStatus{}, err
	}
	sr, ok := reply.(*wire.StatusReply)
	if !ok {
		return wire.JobStatus{}, replyError(reply)
	}
	if len(sr.Jobs) != 1 {
		return wire.JobStatus{}, fmt.Errorf("client: status returned %d entries", len(sr.Jobs))
	}
	st := sr.Jobs[0]
	c.jobdb.UpdateState(c.serverName, st.Job, st.State, st.Detail)
	return st, nil
}

// StatusAll queries every job of this session.
func (c *Client) StatusAll(ctx context.Context) ([]wire.JobStatus, error) {
	reply, err := c.roundTrip(ctx, &wire.StatusReq{All: true})
	if err != nil {
		return nil, err
	}
	sr, ok := reply.(*wire.StatusReply)
	if !ok {
		return nil, replyError(reply)
	}
	for _, st := range sr.Jobs {
		c.jobdb.UpdateState(c.serverName, st.Job, st.State, st.Detail)
	}
	return sr.Jobs, nil
}

// Wait blocks until the job's output has been delivered and returns its
// record. The system "retrieves the output at the end of job execution and
// notifies the user of job completion" — Wait is that notification. It
// returns promptly when ctx expires (ErrDeadlineExceeded on a deadline,
// context.Canceled on cancellation) and rides out reconnections: delivery
// resumes on the re-established session.
func (c *Client) Wait(ctx context.Context, job uint64) (env.JobRecord, error) {
	c.mu.Lock()
	done, ok := c.jobDone[job]
	if !ok {
		done = make(chan struct{})
		c.jobDone[job] = done
	}
	c.mu.Unlock()
	select {
	case <-done:
	case <-ctx.Done():
		return env.JobRecord{}, ctxErr("wait", ctx.Err())
	case <-c.done:
		if rec, ok := c.jobdb.Get(c.serverName, job); ok && rec.Delivered {
			return rec, nil
		}
		return env.JobRecord{}, c.sessionErr()
	}
	rec, ok := c.jobdb.Get(c.serverName, job)
	if !ok {
		return env.JobRecord{}, fmt.Errorf("client: job %d vanished", job)
	}
	return rec, nil
}

// WaitAny blocks until any job output is delivered to this session that no
// previous WaitAny call has returned — including output routed here from
// jobs submitted by other hosts (§8.3). It returns the job's record.
func (c *Client) WaitAny(ctx context.Context) (env.JobRecord, error) {
	for {
		c.mu.Lock()
		if len(c.delivered) > 0 {
			id := c.delivered[0]
			c.delivered = c.delivered[1:]
			c.mu.Unlock()
			rec, ok := c.jobdb.Get(c.serverName, id)
			if !ok {
				continue
			}
			return rec, nil
		}
		c.mu.Unlock()
		select {
		case <-c.arrivals:
		case <-ctx.Done():
			return env.JobRecord{}, ctxErr("wait-any", ctx.Err())
		case <-c.done:
			return env.JobRecord{}, c.sessionErr()
		}
	}
}

// Fetch returns a job's record with its output, retrieving it if it has not
// been delivered yet: delivered jobs return immediately from the local job
// database; finished-but-undelivered jobs get a full-output request; jobs
// still running are waited for.
func (c *Client) Fetch(ctx context.Context, job uint64) (env.JobRecord, error) {
	if rec, ok := c.jobdb.Get(c.serverName, job); ok && rec.Delivered {
		return rec, nil
	}
	st, err := c.Status(ctx, job)
	if err != nil {
		return env.JobRecord{}, err
	}
	if st.State.Terminal() {
		// Register interest before asking, so the delivery cannot slip
		// between the request and the wait.
		c.mu.Lock()
		if _, ok := c.jobDone[job]; !ok {
			c.jobDone[job] = make(chan struct{})
		}
		c.mu.Unlock()
		if rec, ok := c.jobdb.Get(c.serverName, job); ok && rec.Delivered {
			return rec, nil
		}
		// The explicit fetch is part of the cycle: if its root span is
		// still open, the request carries the cycle's context.
		c.mu.Lock()
		root := c.cycleSpan[job]
		c.mu.Unlock()
		if err := c.sendTraced(&wire.OutputFullReq{Job: job}, root.Context()); err != nil {
			return env.JobRecord{}, err
		}
	}
	return c.Wait(ctx, job)
}

// Bounce forcibly severs the current transport, as a mid-session network
// failure would. With Config.Dial set the client reconnects and resumes;
// without it the session ends. Chaos tests use it to inject disconnects.
func (c *Client) Bounce() {
	c.mu.Lock()
	conn := c.conn
	c.mu.Unlock()
	if conn != nil {
		_ = conn.Close()
	}
}

// Close ends the session.
func (c *Client) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	conn := c.conn
	c.mu.Unlock()
	c.lifeStop()
	var err error
	if conn != nil {
		_ = wire.Send(conn, &wire.Bye{})
		err = conn.Close()
	}
	<-c.superDone
	return err
}

// sessionErr reports why the client can no longer serve requests.
func (c *Client) sessionErr() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.lastErr != nil {
		return c.lastErr
	}
	if c.closed {
		return ErrClosed
	}
	return ErrDisconnected
}

// finish marks the client permanently done. The first non-nil error (unless
// the client was deliberately closed) becomes the answer every subsequent
// call reports.
func (c *Client) finish(err error) {
	c.mu.Lock()
	if err != nil && c.lastErr == nil && !c.closed {
		c.lastErr = err
	}
	c.mu.Unlock()
	c.doneOnce.Do(func() { close(c.done) })
}

// send transmits one message over the current connection. Transport
// failures are tagged ErrDisconnected — the session layer's cue that a
// retry (after reconnection) may succeed.
func (c *Client) send(m wire.Message) error {
	return c.sendTraced(m, wire.TraceContext{})
}

// sendTraced is send with a trace context stamped into the frame header
// (zero contexts produce the untraced v1 encoding, byte for byte).
func (c *Client) sendTraced(m wire.Message, tc wire.TraceContext) error {
	c.mu.Lock()
	conn, closed := c.conn, c.closed
	c.mu.Unlock()
	if closed {
		return ErrClosed
	}
	if conn == nil {
		return ErrDisconnected
	}
	if err := wire.SendShared(conn, m, tc); err != nil {
		// Sever the transport: a partial or refused write (a link-down
		// window, say) leaves the stream unusable, and closing it is what
		// engages the supervisor's backoff-and-reconnect path. Without
		// this a flapping link wedges the session — the connection looks
		// alive, so nothing retries and (in simulations) nothing advances
		// virtual time past the outage window.
		_ = conn.Close()
		return tagErr(ErrDisconnected, fmt.Errorf("client: send %v: %w", m.Kind(), err))
	}
	return nil
}

// awaitDown waits for the supervisor to reap a connection whose send just
// failed. Without this, retries would spin against the corpse — the dead
// conn stays installed until the read loop notices — and exhaust the retry
// budget in microseconds instead of riding out the outage.
func (c *Client) awaitDown(ctx context.Context, down chan struct{}) {
	select {
	case <-down:
	case <-c.done:
	case <-ctx.Done():
	}
}

// waitConnected blocks until a live connection exists, returning it with
// its down channel. It fails when the client is closed, finished, or ctx
// expires.
func (c *Client) waitConnected(ctx context.Context) (wire.Conn, chan struct{}, error) {
	for {
		c.mu.Lock()
		if c.closed {
			c.mu.Unlock()
			return nil, nil, ErrClosed
		}
		if c.conn != nil {
			conn, down := c.conn, c.connDown
			c.mu.Unlock()
			return conn, down, nil
		}
		up := c.connUp
		c.mu.Unlock()
		select {
		case <-up:
		case <-c.done:
			return nil, nil, c.sessionErr()
		case <-ctx.Done():
			return nil, nil, ctxErr("waiting for connection", ctx.Err())
		}
	}
}

// roundTrip performs one synchronous request/response exchange, retrying
// transient failures when the session layer can recover (Config.Dial set).
// Server pushes (pulls, acks, output) arriving in between are handled by
// the read loop without disturbing the pending request.
func (c *Client) roundTrip(ctx context.Context, req wire.Message) (wire.Message, error) {
	for attempt := 1; ; attempt++ {
		reply, err := c.attempt(ctx, req, wire.TraceContext{})
		if err == nil {
			return reply, nil
		}
		var tr *transientErr
		if !errors.As(err, &tr) {
			return nil, err
		}
		if c.cfg.Dial == nil {
			return nil, tr.cause
		}
		if attempt >= c.retry.MaxAttempts {
			return nil, tagErr(ErrRetriesExhausted,
				fmt.Errorf("client: %v failed after %d attempts: %w", req.Kind(), attempt, tr.cause))
		}
		c.counters.AddRetry()
	}
}

// attempt performs a single request/response exchange over the current
// connection, bounded by the per-RPC timeout. Connection loss and timeout
// surface as transientErr; the caller decides whether to retry. tc, when
// valid, rides the request frame (submits propagate their cycle trace).
func (c *Client) attempt(ctx context.Context, req wire.Message, tc wire.TraceContext) (wire.Message, error) {
	c.reqMu.Lock()
	defer c.reqMu.Unlock()

	conn, down, err := c.waitConnected(ctx)
	if err != nil {
		return nil, err
	}

	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, ErrClosed
	}
	// One reply channel serves every attempt (reqMu serializes them). A
	// reply deposited after a timed-out attempt abandoned the channel is
	// drained here before reuse; deposits happen under mu (see routeReply),
	// so nothing can slip in between the drain and the install.
	ch := c.replyCh
	if ch == nil {
		ch = make(chan wire.Message, 1)
		c.replyCh = ch
	}
	select {
	case <-ch:
	default:
	}
	c.awaiting = ch
	c.mu.Unlock()
	defer func() {
		c.mu.Lock()
		if c.awaiting == ch {
			c.awaiting = nil
		}
		c.mu.Unlock()
	}()

	attemptCtx := ctx
	if c.cfg.RPCTimeout > 0 {
		var cancel context.CancelFunc
		attemptCtx, cancel = context.WithTimeout(ctx, c.cfg.RPCTimeout)
		defer cancel()
	}

	if err := wire.SendShared(conn, req, tc); err != nil {
		// Sever the failed transport (see send) and wait for the
		// supervisor to reap it, so the retry runs against the next
		// session instead of spinning on the corpse.
		_ = conn.Close()
		c.awaitDown(ctx, down)
		return nil, &transientErr{cause: tagErr(ErrDisconnected,
			fmt.Errorf("client: send %v: %w", req.Kind(), err))}
	}
	select {
	case reply := <-ch:
		return reply, nil
	case <-down:
		return nil, &transientErr{cause: ErrDisconnected}
	case <-c.done:
		return nil, c.sessionErr()
	case <-attemptCtx.Done():
		if ctx.Err() != nil {
			// The caller's own context expired: report, don't retry.
			return nil, ctxErr(req.Kind().String(), ctx.Err())
		}
		// The per-RPC deadline expired: the connection is suspect.
		// Sever it — the supervisor redials — and let the caller retry.
		_ = conn.Close()
		return nil, &transientErr{cause: tagErr(ErrDeadlineExceeded,
			fmt.Errorf("client: %v: %w", req.Kind(), context.DeadlineExceeded))}
	}
}

func replyError(reply wire.Message) error {
	if em, ok := reply.(*wire.ErrorMsg); ok {
		return em
	}
	return fmt.Errorf("client: unexpected reply %v", reply.Kind())
}

// refFor resolves a local file name — ordinary or tilde — to its globally
// unique protocol reference.
func (c *Client) refFor(filePath string) (wire.FileRef, error) {
	if naming.IsTilde(filePath) {
		if c.cfg.Tilde == nil {
			return wire.FileRef{}, fmt.Errorf("client: tilde name %q but no tilde space configured", filePath)
		}
		return c.cfg.Tilde.FileRef(filePath)
	}
	return c.cfg.Universe.FileRef(c.cfg.Host, filePath)
}

// readFile reads a local file by ordinary or tilde name.
func (c *Client) readFile(filePath string) ([]byte, error) {
	if naming.IsTilde(filePath) {
		if c.cfg.Tilde == nil {
			return nil, fmt.Errorf("client: tilde name %q but no tilde space configured", filePath)
		}
		return c.cfg.Tilde.ReadFile(filePath)
	}
	return c.cfg.Universe.ReadFile(c.cfg.Host, filePath)
}
