// Package client implements the shadow client that runs at a user's
// workstation (§6.1): it hides all communication detail, versions edited
// files, answers the server's demand-driven pulls with deltas, submits jobs,
// tracks their status, and receives their output.
package client

import (
	"errors"
	"fmt"
	"path"
	"sync"

	"shadowedit/internal/core"
	"shadowedit/internal/diff"
	"shadowedit/internal/env"
	"shadowedit/internal/metrics"
	"shadowedit/internal/naming"
	"shadowedit/internal/vcs"
	"shadowedit/internal/wire"
)

// Errors reported by the client.
var (
	// ErrClosed reports use after Close.
	ErrClosed = errors.New("client: closed")
	// ErrNoSession reports a client whose connection ended.
	ErrNoSession = errors.New("client: session ended")
)

// Config parametrizes a Client.
type Config struct {
	// User is the submitting user.
	User string
	// Universe is the local naming domain and file storage.
	Universe *naming.Universe
	// Host is the workstation's name within the universe.
	Host string
	// Env holds the user's shadow environment (customization).
	Env env.Environment
	// WorkDir is where job results are written when output file names are
	// relative; defaults to /home/<user>.
	WorkDir string
	// Tilde optionally holds the user's tilde-tree bindings; file names
	// of the form "~tree/path" resolve through it (§5.3 Tilde naming).
	Tilde *naming.TildeSpace
	// Store optionally seeds the version store — typically one restored
	// with vcs.Load after a client restart, so retained versions (and
	// with them the ability to answer pulls with deltas) survive. Nil
	// creates a fresh store.
	Store *vcs.Store
	// Jobs optionally seeds the job database — typically one restored
	// with env.LoadJobDB, so job records survive restarts. Nil creates a
	// fresh database.
	Jobs *env.JobDB
	// Clock receives local compute charges (diff runs) in simulations.
	Clock core.Clock
}

// SubmitOptions are the per-submission optional arguments of the submit
// command (§6.2): result file names, an alternate execution host is chosen
// by connecting to a different server, and output routing.
type SubmitOptions struct {
	// OutputFile and ErrorFile override the environment's defaults.
	OutputFile string
	ErrorFile  string
	// RouteHost delivers output to a session from another host.
	RouteHost string
	// OutputDelta requests reverse shadow processing for this job; the
	// environment's WantOutputDelta is the default.
	OutputDelta *bool
}

// Client is one workstation's connection to one shadow server. A user may
// hold several clients, one per supercomputer.
type Client struct {
	cfg      Config
	conn     wire.Conn
	store    *vcs.Store
	jobdb    *env.JobDB
	counters *metrics.Counters

	session    uint64
	serverName string

	reqMu sync.Mutex // serializes synchronous request/response exchanges

	mu        sync.Mutex
	awaiting  chan wire.Message // live only while a request is outstanding
	pending   *pendingSubmit    // submit in flight, installed on SUBMIT_OK
	outPrev   map[uint32][]byte // script checksum -> last received stdout
	jobMeta   map[uint64]jobMeta
	jobDone   map[uint64]chan struct{}
	delivered []uint64      // job ids delivered but not yet taken by WaitAny
	arrivals  chan struct{} // signaled on each delivery
	closed    bool
	lastErr   error

	readerDone chan struct{}
}

type jobMeta struct {
	scriptSum  uint32
	outputFile string
	errorFile  string
}

// pendingSubmit carries a submit's metadata from the caller to the read
// loop, which installs it under the job id the moment SUBMIT_OK arrives.
// Registration must not wait for the caller to resume: the job's OUTPUT can
// follow SUBMIT_OK immediately, and an output for an unregistered job would
// be mistaken for one whose delta base is gone. Output and error file names
// are kept unexpanded ("" = the environment default with %J = job id),
// since the job id is unknown until the reply.
type pendingSubmit struct {
	scriptSum  uint32
	outputFile string
	errorFile  string
}

// expand resolves the metadata against a now-known job id.
func (p *pendingSubmit) expand(e env.Environment, job uint64) jobMeta {
	m := jobMeta{scriptSum: p.scriptSum, outputFile: p.outputFile, errorFile: p.errorFile}
	if m.outputFile == "" {
		m.outputFile = e.ExpandOutput(job)
	}
	if m.errorFile == "" {
		m.errorFile = e.ExpandError(job)
	}
	return m
}

// Connect establishes a session over conn: it sends HELLO, waits for
// HELLO_OK, and starts the background reader that answers server pulls.
func Connect(conn wire.Conn, cfg Config) (*Client, error) {
	if cfg.Universe == nil {
		return nil, errors.New("client: Config.Universe is required")
	}
	if cfg.User == "" {
		cfg.User = cfg.Env.User
	}
	if cfg.Env.User == "" {
		cfg.Env = env.Default(cfg.User)
	}
	if err := cfg.Env.Validate(); err != nil {
		return nil, err
	}
	if cfg.WorkDir == "" {
		cfg.WorkDir = "/home/" + cfg.User
	}
	if cfg.Clock == nil {
		cfg.Clock = core.NopClock{}
	}

	store := cfg.Store
	if store == nil {
		store = vcs.NewStore(cfg.Env.RetainVersions)
	} else {
		store.SetRetain(cfg.Env.RetainVersions)
	}
	jobdb := cfg.Jobs
	if jobdb == nil {
		jobdb = env.NewJobDB()
	}
	c := &Client{
		cfg:        cfg,
		conn:       conn,
		store:      store,
		jobdb:      jobdb,
		counters:   &metrics.Counters{},
		outPrev:    make(map[uint32][]byte),
		jobMeta:    make(map[uint64]jobMeta),
		jobDone:    make(map[uint64]chan struct{}),
		arrivals:   make(chan struct{}, 1),
		readerDone: make(chan struct{}),
	}
	hello := &wire.Hello{
		Protocol:   wire.ProtocolVersion,
		User:       cfg.User,
		Domain:     cfg.Universe.Domain(),
		ClientHost: cfg.Host,
	}
	if err := wire.Send(conn, hello); err != nil {
		return nil, fmt.Errorf("client: hello: %w", err)
	}
	reply, err := wire.Recv(conn)
	if err != nil {
		return nil, fmt.Errorf("client: hello: %w", err)
	}
	switch m := reply.(type) {
	case *wire.HelloOK:
		c.session = m.Session
		c.serverName = m.ServerName
	case *wire.ErrorMsg:
		return nil, fmt.Errorf("client: hello rejected: %w", m)
	default:
		return nil, fmt.Errorf("client: unexpected hello reply %v", reply.Kind())
	}
	go c.readLoop()
	return c, nil
}

// ServerName returns the connected server's advertised name.
func (c *Client) ServerName() string { return c.serverName }

// Store exposes the version store (tests and the editor integration).
func (c *Client) Store() *vcs.Store { return c.store }

// Jobs exposes the client's job database.
func (c *Client) Jobs() *env.JobDB { return c.jobdb }

// Metrics returns the client's transfer counters.
func (c *Client) Metrics() metrics.Snapshot { return c.counters.Snapshot() }

// Environment returns the active shadow environment.
func (c *Client) Environment() env.Environment { return c.cfg.Env }

// CommitAndNotify registers the current content of the named local file as a
// new version and notifies the server (the shadow editor's postprocessor
// calls this at the end of every editing session). Unchanged content sends
// nothing.
func (c *Client) CommitAndNotify(filePath string) (wire.FileRef, uint64, error) {
	ref, err := c.refFor(filePath)
	if err != nil {
		return wire.FileRef{}, 0, err
	}
	content, err := c.readFile(filePath)
	if err != nil {
		return wire.FileRef{}, 0, err
	}
	version, changed := c.store.Commit(ref, content)
	if !changed {
		return ref, version, nil
	}
	notify := &wire.Notify{
		File:    ref,
		Version: version,
		Size:    int64(len(content)),
		Sum:     diff.Checksum(content),
	}
	c.counters.AddControl(0)
	if err := c.send(notify); err != nil {
		return wire.FileRef{}, 0, err
	}
	return ref, version, nil
}

// Submit sends a job: scriptPath names the job command file, dataPaths the
// data files its commands read (referenced by base name). It returns the
// server-assigned job id.
func (c *Client) Submit(scriptPath string, dataPaths []string, opts SubmitOptions) (uint64, error) {
	script, err := c.readFile(scriptPath)
	if err != nil {
		return 0, fmt.Errorf("client: read script: %w", err)
	}
	inputs := make([]wire.JobInput, 0, len(dataPaths))
	for _, p := range dataPaths {
		ref, version, err := c.CommitAndNotify(p)
		if err != nil {
			return 0, fmt.Errorf("client: prepare %s: %w", p, err)
		}
		inputs = append(inputs, wire.JobInput{File: ref, Version: version, As: path.Base(p)})
	}
	wantDelta := c.cfg.Env.WantOutputDelta
	if opts.OutputDelta != nil {
		wantDelta = *opts.OutputDelta
	}
	req := &wire.Submit{
		Script:          script,
		Inputs:          inputs,
		OutputFile:      opts.OutputFile,
		ErrorFile:       opts.ErrorFile,
		RouteHost:       opts.RouteHost,
		WantOutputDelta: wantDelta,
	}
	// The read loop installs the job metadata as soon as SUBMIT_OK
	// arrives — before this goroutine resumes — because the job's OUTPUT
	// can be right behind it on the wire.
	p := &pendingSubmit{
		scriptSum:  diff.Checksum(script),
		outputFile: opts.OutputFile,
		errorFile:  opts.ErrorFile,
	}
	c.mu.Lock()
	c.pending = p
	c.mu.Unlock()
	reply, err := c.roundTrip(req)
	c.mu.Lock()
	c.pending = nil
	c.mu.Unlock()
	if err != nil {
		return 0, err
	}
	ok, isOK := reply.(*wire.SubmitOK)
	if !isOK {
		return 0, replyError(reply)
	}

	c.mu.Lock()
	meta, known := c.jobMeta[ok.Job]
	if !known {
		meta = p.expand(c.cfg.Env, ok.Job)
		c.jobMeta[ok.Job] = meta
	}
	if _, exists := c.jobDone[ok.Job]; !exists {
		c.jobDone[ok.Job] = make(chan struct{})
	}
	c.mu.Unlock()
	c.jobdb.Record(env.JobRecord{
		Server:     c.serverName,
		ID:         ok.Job,
		State:      wire.JobQueued,
		OutputFile: meta.outputFile,
		ErrorFile:  meta.errorFile,
	})
	return ok.Job, nil
}

// Status queries one job's state at the server.
func (c *Client) Status(job uint64) (wire.JobStatus, error) {
	reply, err := c.roundTrip(&wire.StatusReq{Job: job})
	if err != nil {
		return wire.JobStatus{}, err
	}
	sr, ok := reply.(*wire.StatusReply)
	if !ok {
		return wire.JobStatus{}, replyError(reply)
	}
	if len(sr.Jobs) != 1 {
		return wire.JobStatus{}, fmt.Errorf("client: status returned %d entries", len(sr.Jobs))
	}
	st := sr.Jobs[0]
	c.jobdb.UpdateState(c.serverName, st.Job, st.State, st.Detail)
	return st, nil
}

// StatusAll queries every job of this session.
func (c *Client) StatusAll() ([]wire.JobStatus, error) {
	reply, err := c.roundTrip(&wire.StatusReq{All: true})
	if err != nil {
		return nil, err
	}
	sr, ok := reply.(*wire.StatusReply)
	if !ok {
		return nil, replyError(reply)
	}
	for _, st := range sr.Jobs {
		c.jobdb.UpdateState(c.serverName, st.Job, st.State, st.Detail)
	}
	return sr.Jobs, nil
}

// Wait blocks until the job's output has been delivered and returns its
// record. The system "retrieves the output at the end of job execution and
// notifies the user of job completion" — Wait is that notification.
func (c *Client) Wait(job uint64) (env.JobRecord, error) {
	c.mu.Lock()
	done, ok := c.jobDone[job]
	if !ok {
		done = make(chan struct{})
		c.jobDone[job] = done
	}
	c.mu.Unlock()
	select {
	case <-done:
	case <-c.readerDone:
		if rec, ok := c.jobdb.Get(c.serverName, job); ok && rec.Delivered {
			return rec, nil
		}
		return env.JobRecord{}, c.sessionErr()
	}
	rec, ok := c.jobdb.Get(c.serverName, job)
	if !ok {
		return env.JobRecord{}, fmt.Errorf("client: job %d vanished", job)
	}
	return rec, nil
}

// WaitAny blocks until any job output is delivered to this session that no
// previous WaitAny call has returned — including output routed here from
// jobs submitted by other hosts (§8.3). It returns the job's record.
func (c *Client) WaitAny() (env.JobRecord, error) {
	for {
		c.mu.Lock()
		if len(c.delivered) > 0 {
			id := c.delivered[0]
			c.delivered = c.delivered[1:]
			c.mu.Unlock()
			rec, ok := c.jobdb.Get(c.serverName, id)
			if !ok {
				continue
			}
			return rec, nil
		}
		c.mu.Unlock()
		select {
		case <-c.arrivals:
		case <-c.readerDone:
			return env.JobRecord{}, c.sessionErr()
		}
	}
}

// Close ends the session.
func (c *Client) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	c.mu.Unlock()
	_ = wire.Send(c.conn, &wire.Bye{})
	err := c.conn.Close()
	<-c.readerDone
	return err
}

func (c *Client) sessionErr() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.lastErr != nil {
		return c.lastErr
	}
	if c.closed {
		return ErrClosed
	}
	return ErrNoSession
}

func (c *Client) send(m wire.Message) error {
	if err := wire.Send(c.conn, m); err != nil {
		return fmt.Errorf("client: send %v: %w", m.Kind(), err)
	}
	return nil
}

// roundTrip performs one synchronous request/response exchange. Server
// pushes (pulls, acks, output) arriving in between are handled by the read
// loop without disturbing the pending request.
func (c *Client) roundTrip(req wire.Message) (wire.Message, error) {
	c.reqMu.Lock()
	defer c.reqMu.Unlock()

	ch := make(chan wire.Message, 1)
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, ErrClosed
	}
	c.awaiting = ch
	c.mu.Unlock()
	defer func() {
		c.mu.Lock()
		c.awaiting = nil
		c.mu.Unlock()
	}()

	if err := c.send(req); err != nil {
		return nil, err
	}
	select {
	case reply := <-ch:
		return reply, nil
	case <-c.readerDone:
		return nil, c.sessionErr()
	}
}

func replyError(reply wire.Message) error {
	if em, ok := reply.(*wire.ErrorMsg); ok {
		return em
	}
	return fmt.Errorf("client: unexpected reply %v", reply.Kind())
}

// refFor resolves a local file name — ordinary or tilde — to its globally
// unique protocol reference.
func (c *Client) refFor(filePath string) (wire.FileRef, error) {
	if naming.IsTilde(filePath) {
		if c.cfg.Tilde == nil {
			return wire.FileRef{}, fmt.Errorf("client: tilde name %q but no tilde space configured", filePath)
		}
		return c.cfg.Tilde.FileRef(filePath)
	}
	return c.cfg.Universe.FileRef(c.cfg.Host, filePath)
}

// readFile reads a local file by ordinary or tilde name.
func (c *Client) readFile(filePath string) ([]byte, error) {
	if naming.IsTilde(filePath) {
		if c.cfg.Tilde == nil {
			return nil, fmt.Errorf("client: tilde name %q but no tilde space configured", filePath)
		}
		return c.cfg.Tilde.ReadFile(filePath)
	}
	return c.cfg.Universe.ReadFile(c.cfg.Host, filePath)
}
