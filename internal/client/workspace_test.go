package client

import (
	"context"
	"fmt"
	"testing"

	"shadowedit/internal/env"
	"shadowedit/internal/naming"
	"shadowedit/internal/netsim"
	"shadowedit/internal/server"
	"shadowedit/internal/wire"
)

// countConn wraps a wire.Conn and counts frames in both directions, so the
// tree walk's O(changed) promises can be asserted in frames rather than
// timings.
type countConn struct {
	inner  wire.Conn
	frames int
}

func (c *countConn) Send(payload []byte) error {
	c.frames++
	return c.inner.Send(payload)
}

func (c *countConn) Recv() ([]byte, error) {
	buf, err := c.inner.Recv()
	if err == nil {
		c.frames++
	}
	return buf, err
}

func (c *countConn) Close() error { return c.inner.Close() }

// wsRig is a client talking to a real server over a simulated LAN.
type wsRig struct {
	t        *testing.T
	cl       *Client
	universe *naming.Universe
	conn     *countConn
}

func newWorkspaceRig(t *testing.T, perFile bool) *wsRig {
	t.Helper()
	nw := netsim.New()
	srvHost := nw.Host("super")
	wsHost := nw.Host("ws")
	nw.Connect(wsHost, srvHost, netsim.LAN)
	lst, err := srvHost.Listen(1)
	if err != nil {
		t.Fatal(err)
	}
	scfg := server.Defaults("test")
	scfg.Clock = srvHost
	srv := server.New(scfg)
	go func() { _ = srv.Serve(server.AcceptorFunc(func() (wire.Conn, error) { return lst.Accept() })) }()
	t.Cleanup(func() { srv.Close(); _ = lst.Close() })

	universe := naming.NewUniverse("dom")
	universe.AddHost("ws")
	raw, err := wsHost.Dial("super", 1)
	if err != nil {
		t.Fatal(err)
	}
	conn := &countConn{inner: raw}
	cl, err := Connect(context.Background(), conn, Config{
		User: "u", Universe: universe, Host: "ws",
		Env: env.Default("u"), Clock: wsHost, PerFileSync: perFile,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = cl.Close() })
	return &wsRig{t: t, cl: cl, universe: universe, conn: conn}
}

func (r *wsRig) write(p, content string) {
	r.t.Helper()
	if err := r.universe.WriteFile("ws", p, []byte(content)); err != nil {
		r.t.Fatal(err)
	}
}

func (r *wsRig) sync(ws *Workspace) SyncStats {
	r.t.Helper()
	stats, err := ws.Sync(context.Background())
	if err != nil {
		r.t.Fatal(err)
	}
	return stats
}

const wsRoot = "/u/u/proj"

func TestWorkspaceSyncEmpty(t *testing.T) {
	r := newWorkspaceRig(t, false)
	stats := r.sync(r.cl.Workspace(wsRoot))
	if stats.Files != 0 || stats.Changed != 0 || stats.Removed != 0 {
		t.Fatalf("empty workspace sync reported work: %+v", stats)
	}
}

func TestWorkspaceSyncUploadsAndConverges(t *testing.T) {
	r := newWorkspaceRig(t, false)
	r.write(wsRoot+"/a.f", "alpha\n")
	r.write(wsRoot+"/sub/b.f", "beta\n")
	ws := r.cl.Workspace(wsRoot)

	stats := r.sync(ws)
	if stats.Files != 2 || stats.Changed != 2 {
		t.Fatalf("first sync: want 2 files announced, got %+v", stats)
	}
	if stats.Mode != SyncTree {
		t.Fatalf("first sync mode = %v, want tree", stats.Mode)
	}

	// A second sync of an unchanged workspace is a head exchange and
	// nothing more: exactly two frames (TREE_HEAD out, TREE_DIFF back).
	before := r.conn.frames
	stats = r.sync(ws)
	if !stats.InSync || stats.Changed != 0 {
		t.Fatalf("identical resync not in sync: %+v", stats)
	}
	if got := r.conn.frames - before; got != 2 {
		t.Fatalf("identical resync used %d frames, want exactly 2", got)
	}
}

func TestWorkspaceSyncDeleteOneSide(t *testing.T) {
	r := newWorkspaceRig(t, false)
	r.write(wsRoot+"/keep.f", "keep\n")
	r.write(wsRoot+"/gone.f", "gone\n")
	ws := r.cl.Workspace(wsRoot)
	r.sync(ws)

	if err := r.universe.RemoveFile("ws", wsRoot+"/gone.f"); err != nil {
		t.Fatal(err)
	}
	stats := r.sync(ws)
	if stats.Removed != 1 || stats.Changed != 0 {
		t.Fatalf("delete sync: want 1 removed, 0 changed, got %+v", stats)
	}
	// The server evicted it: another sync has nothing left to reconcile.
	stats = r.sync(ws)
	if !stats.InSync {
		t.Fatalf("post-delete resync not in sync: %+v", stats)
	}
}

func TestWorkspaceSyncRename(t *testing.T) {
	r := newWorkspaceRig(t, false)
	r.write(wsRoot+"/old.f", "payload\n")
	ws := r.cl.Workspace(wsRoot)
	r.sync(ws)

	if err := r.universe.RemoveFile("ws", wsRoot+"/old.f"); err != nil {
		t.Fatal(err)
	}
	r.write(wsRoot+"/new.f", "payload\n")
	stats := r.sync(ws)
	if stats.Changed != 1 || stats.Removed != 1 {
		t.Fatalf("rename sync: want 1 changed + 1 removed, got %+v", stats)
	}
	stats = r.sync(ws)
	if !stats.InSync {
		t.Fatalf("post-rename resync not in sync: %+v", stats)
	}
}

func TestWorkspaceSyncOChangedFrames(t *testing.T) {
	// The property the walk promises: reconciling a big workspace costs
	// frames proportional to what changed, not to what exists. 10k files,
	// 10 edits — the per-file strategy would burn >10k frames here.
	const files, edits = 10000, 10
	r := newWorkspaceRig(t, false)
	for i := 0; i < files; i++ {
		r.write(fmt.Sprintf("%s/pkg%03d/f%02d.f", wsRoot, i/20, i%20), "v1\n")
	}
	ws := r.cl.Workspace(wsRoot)
	if stats := r.sync(ws); stats.Changed != files {
		t.Fatalf("prime announced %d files, want %d", stats.Changed, files)
	}

	for i := 0; i < edits; i++ {
		r.write(fmt.Sprintf("%s/pkg%03d/f%02d.f", wsRoot, i*50/20, (i*50)%20), "v2\n")
	}
	before := r.conn.frames
	stats := r.sync(ws)
	if stats.Changed != edits {
		t.Fatalf("sparse sync announced %d, want %d", stats.Changed, edits)
	}
	frames := r.conn.frames - before
	// Head exchange + a couple of walk levels + batch + per-edit
	// pull/answer/ack traffic. Generous bound, still ~two orders of
	// magnitude under per-file.
	if max := 20 + 10*edits; frames > max {
		t.Fatalf("sparse sync used %d frames for %d edits over %d files (want <= %d)",
			frames, edits, files, max)
	}
}

func TestWorkspaceSyncPerFileFallback(t *testing.T) {
	r := newWorkspaceRig(t, true)
	r.write(wsRoot+"/a.f", "one\n")
	r.write(wsRoot+"/b.f", "two\n")
	ws := r.cl.Workspace(wsRoot)

	stats := r.sync(ws)
	if stats.Mode != SyncPerFile {
		t.Fatalf("mode = %v, want per-file", stats.Mode)
	}
	if stats.Files != 2 || stats.Changed != 2 {
		t.Fatalf("per-file sync: %+v", stats)
	}

	// Unchanged resync announces every head again — the per-file strategy
	// cannot see that nothing diverged — but recommits nothing.
	stats = r.sync(ws)
	if stats.Changed != 0 || stats.InSync {
		t.Fatalf("per-file resync: %+v", stats)
	}

	r.write(wsRoot+"/a.f", "one more\n")
	stats = r.sync(ws)
	if stats.Changed != 1 {
		t.Fatalf("per-file edit sync: %+v", stats)
	}
	ref, err := r.universe.FileRef("ws", wsRoot+"/a.f")
	if err != nil {
		t.Fatal(err)
	}
	if v := r.cl.store.Acked(ref); v < 2 {
		t.Fatalf("edited file acked at v%d, want >= 2", v)
	}
}
