package client

import (
	"errors"
	"fmt"
	"path"

	"shadowedit/internal/core"
	"shadowedit/internal/trace"
	"shadowedit/internal/wire"
)

// readLoop is the client's background receiver for one connection: it
// answers server pulls (that is where shadow deltas are produced), applies
// acks to the version store, receives job output, and routes request replies
// to the waiting caller. It exits when the connection ends, recording the
// cause in lastDrop for the supervisor.
//
// The loop is the connection's only receiver, so it can use the reusable
// receive path: decoding copies every field out of the frame, so nothing
// aliases the connection's scratch once a message is dispatched.
func (c *Client) readLoop(conn wire.Conn) {
	for {
		msg, tc, err := wire.RecvTracedReuse(conn)
		if err != nil {
			c.mu.Lock()
			c.lastDrop = err
			c.mu.Unlock()
			return
		}
		switch m := msg.(type) {
		case *wire.Pull:
			c.handlePull(m, tc)
		case *wire.ChunkReq:
			c.handleChunkReq(m, tc)
		case *wire.FileAck:
			// Store first, signal second: a waiter woken by the signal
			// always observes the ack it was woken for.
			c.store.Ack(m.File, m.Version)
			select {
			case c.ackSignal <- struct{}{}:
			default:
			}
		case *wire.Output:
			c.handleOutput(m, tc)
		case *wire.SubmitOK, *wire.StatusReply, *wire.TreeDiff:
			c.routeReply(msg)
		case *wire.ErrorMsg:
			c.handleError(m)
		default:
			// Unknown pushes are ignored for forward compatibility.
		}
	}
}

// routeReply hands a response to the caller blocked in roundTrip, if any.
// A SUBMIT_OK additionally registers the pending submit's job metadata
// right here, before the caller resumes: the job's OUTPUT may be the very
// next message, and handleOutput must find the job known by then.
func (c *Client) routeReply(msg wire.Message) {
	c.mu.Lock()
	if ok, isOK := msg.(*wire.SubmitOK); isOK && c.pending != nil {
		if _, known := c.jobMeta[ok.Job]; !known {
			c.jobMeta[ok.Job] = c.pending.expand(c.cfg.Env, ok.Job)
		}
		if _, exists := c.jobDone[ok.Job]; !exists {
			c.jobDone[ok.Job] = make(chan struct{})
		}
		if c.pending.cycleTimed {
			if _, stamped := c.cycleStart[ok.Job]; !stamped {
				c.cycleStart[ok.Job] = c.pending.cycleStart
			}
		}
		if c.pending.span != nil {
			if _, parked := c.cycleSpan[ok.Job]; !parked {
				c.cycleSpan[ok.Job] = c.pending.span.SetJob(ok.Job)
			}
		}
		c.pending = nil
	}
	// The deposit happens under mu (safe: the send never blocks on a
	// buffered channel with a default case), so it is atomic with respect
	// to attempt's drain/install/clear of the shared reply channel — a
	// reply can never land in the channel after attempt has abandoned it.
	if ch := c.awaiting; ch != nil {
		select {
		case ch <- msg:
		default:
		}
	}
	c.mu.Unlock()
}

func (c *Client) handleError(m *wire.ErrorMsg) {
	c.mu.Lock()
	if ch := c.awaiting; ch != nil {
		select {
		case ch <- m:
			c.mu.Unlock()
			return
		default:
		}
	}
	if c.lastErr == nil {
		c.lastErr = m
	}
	c.mu.Unlock()
}

// handlePull answers a server pull with a delta when possible, a full copy
// otherwise. This runs in the background, so "the changes could be sent in
// the background while the user is modifying the second file" (§5.1).
// A traced pull (tc valid) gets a "client.answer-pull" span, and the reply
// frame propagates the cycle's context back so the server's apply joins it.
func (c *Client) handlePull(m *wire.Pull, tc wire.TraceContext) {
	sp := c.cfg.Obs.StartSpan(tc, "client.answer-pull")
	if sp != nil {
		sp.SetFile(m.File.String())
	}
	defer sp.Finish()
	if c.chunkedActive() && c.answerPullChunked(m, tc, sp) {
		return
	}
	reply, err := core.AnswerPull(c.store, m, c.cfg.Env.Algorithm, c.cfg.Env.Compress, c.cfg.Clock)
	if err != nil {
		// The version store cannot satisfy the pull — typically a
		// client that restarted without restoring state. The named
		// file still exists in the user's environment, so re-read it
		// from disk and register it at (at least) the version the
		// server expects; transparency means the user never has to
		// repair this by hand.
		if content, rerr := c.cfg.Universe.ReadFileRef(m.File); rerr == nil {
			c.store.CommitAtLeast(m.File, content, m.WantVersion)
			reply, err = core.AnswerPull(c.store, m, c.cfg.Env.Algorithm, c.cfg.Env.Compress, c.cfg.Clock)
			sp.Annotate("restored from disk")
		}
	}
	if err != nil {
		// Truly gone (file deleted locally). Tell the server so it
		// does not wait forever.
		sp.Annotate("unknown file")
		_ = c.sendTraced(&wire.ErrorMsg{Code: wire.CodeUnknownFile, Text: err.Error()}, ctxOr(sp, tc))
		return
	}
	switch r := reply.(type) {
	case *wire.FileDelta:
		c.counters.AddDelta(len(r.Encoded))
		sp.Annotate("delta")
	case *wire.FileFull:
		c.counters.AddFull(len(r.Content))
		sp.Annotate("full")
		if m.HaveVersion > 0 {
			// The server asked for a delta but the base is gone here:
			// the transfer degraded to a full copy.
			c.counters.AddFullFallback()
			sp.Annotate("full-fallback")
		}
	}
	_ = c.sendTraced(reply, ctxOr(sp, tc))
}

// ctxOr propagates sp's context, falling back to the incoming one when
// local tracing is off — a trace minted by the peer survives an untraced
// hop here.
func ctxOr(sp *trace.Span, tc wire.TraceContext) wire.TraceContext {
	if sp != nil {
		return sp.Context()
	}
	return tc
}

// handleOutput receives a finished job's results, reconstructing them from
// an output delta when reverse shadow processing is active. Duplicate
// deliveries (a reconnect can re-send an output whose ack was lost) are
// acked but not re-surfaced: jobDone closes exactly once.
func (c *Client) handleOutput(m *wire.Output, tc wire.TraceContext) {
	dsp := c.cfg.Obs.StartSpan(tc, "client.deliver").SetJob(m.Job)
	defer dsp.Finish()
	c.mu.Lock()
	meta, known := c.jobMeta[m.Job]
	c.mu.Unlock()

	var prev []byte
	if known {
		c.mu.Lock()
		prev = c.outPrev[meta.scriptSum]
		c.mu.Unlock()
	}
	stdout, err := core.ApplyOutput(m.Mode, m.Stdout, prev, m.Compressed)
	if errors.Is(err, core.ErrStaleBase) || (m.Mode == wire.OutputDelta && !known) {
		// Our base for the delta is gone: degrade gracefully to a full
		// transfer.
		c.counters.AddFullFallback()
		dsp.Annotate("base-evicted")
		if serr := c.sendTraced(&wire.OutputFullReq{Job: m.Job}, ctxOr(dsp, tc)); serr != nil {
			c.mu.Lock()
			if c.lastErr == nil && !c.closed {
				c.lastErr = tagErr(ErrBaseEvicted,
					fmt.Errorf("client: job %d: delta base evicted and full request failed: %w", m.Job, serr))
			}
			c.mu.Unlock()
		}
		return
	}
	if err != nil {
		c.mu.Lock()
		if c.lastErr == nil {
			c.lastErr = err
		}
		c.mu.Unlock()
		return
	}
	c.counters.AddOutput(len(m.Stdout) + len(m.Stderr))

	if known {
		c.mu.Lock()
		c.outPrev[meta.scriptSum] = stdout
		c.mu.Unlock()
	} else {
		// Routed output from a job submitted elsewhere; store under
		// default names.
		meta = jobMeta{
			outputFile: fmt.Sprintf("routed-job-%d.out", m.Job),
			errorFile:  fmt.Sprintf("routed-job-%d.err", m.Job),
		}
	}

	// A duplicate delivery must not rewrite result files or job records:
	// the first delivery already surfaced them to the user.
	c.mu.Lock()
	done, ok := c.jobDone[m.Job]
	if !ok {
		done = make(chan struct{})
		c.jobDone[m.Job] = done
	}
	duplicate := false
	select {
	case <-done:
		duplicate = true
	default:
	}
	c.mu.Unlock()
	if duplicate {
		dsp.Annotate("duplicate")
		_ = c.send(&wire.OutputAck{Job: m.Job})
		return
	}

	// Store results where the user asked ("optional arguments allow the
	// user to specify the names of files into which the system stores
	// output and error messages").
	if err := c.writeResult(meta.outputFile, stdout); err != nil {
		c.mu.Lock()
		if c.lastErr == nil {
			c.lastErr = err
		}
		c.mu.Unlock()
	}
	if len(m.Stderr) > 0 {
		if err := c.writeResult(meta.errorFile, m.Stderr); err != nil {
			c.mu.Lock()
			if c.lastErr == nil {
				c.lastErr = err
			}
			c.mu.Unlock()
		}
	}

	c.jobdb.SetOutput(c.serverName, m.Job, m.State, m.ExitCode, stdout, m.Stderr)
	_ = c.send(&wire.OutputAck{Job: m.Job})

	c.mu.Lock()
	cycleStart, timed := c.cycleStart[m.Job]
	delete(c.cycleStart, m.Job)
	root := c.cycleSpan[m.Job]
	delete(c.cycleSpan, m.Job)
	select {
	case <-done:
	default:
		close(done)
		c.delivered = append(c.delivered, m.Job)
	}
	c.mu.Unlock()
	if timed {
		c.cfg.Obs.ObserveCycle(cycleStart)
	}
	// Output delivered: the cycle is over. Close its root span and move the
	// trace to the completed ring; the server ends it too after a
	// successful send, and completion is idempotent.
	if root != nil {
		root.Annotate("delivered").Finish()
	}
	c.cfg.Obs.EndTrace(ctxOr(root, tc))
	select {
	case c.arrivals <- struct{}{}:
	default:
	}
}

// writeResult stores a result file, anchoring relative names in WorkDir.
func (c *Client) writeResult(name string, content []byte) error {
	p := name
	if !path.IsAbs(p) {
		p = path.Join(c.cfg.WorkDir, p)
	}
	return c.cfg.Universe.WriteFile(c.cfg.Host, p, content)
}
