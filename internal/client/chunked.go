package client

// Protocol v3 pull answering: instead of a line delta or a whole file, the
// client describes the wanted version as a manifest of content-addressed
// chunk refs. When the server's base version is retained here, the chunks
// absent from that base — the only ones the server can be missing — are
// inlined on the manifest, so the steady state stays one frame per transfer.
// With no usable base (first upload, or the base pruned here), nothing is
// inlined and the server requests exactly the chunks it lacks: content
// another user already uploaded is never sent again.

import (
	"shadowedit/internal/chunk"
	"shadowedit/internal/core"
	"shadowedit/internal/diff"
	"shadowedit/internal/trace"
	"shadowedit/internal/wire"
)

// answerPullChunked builds and sends the chunk-manifest answer to a pull.
// It reports false when the version store cannot satisfy the pull at all, in
// which case the caller falls back to the classic path (which also handles
// the restore-from-disk case).
func (c *Client) answerPullChunked(m *wire.Pull, tc wire.TraceContext, sp *trace.Span) bool {
	want := m.WantVersion
	manifest, content, err := c.store.ManifestFor(m.File, want)
	if err != nil {
		// The wanted version is gone (pruned past, or the pull raced a
		// newer commit); answer with the head instead — the server always
		// converges on the newest version.
		if head, ok := c.store.HeadShared(m.File); ok {
			want = head.Number
			manifest, content, err = c.store.ManifestFor(m.File, want)
		}
		if err != nil {
			return false
		}
	}
	// Chunking cost is charged like diff cost: the manifest split runs over
	// the same bytes a delta computation would.
	core.ChargeDiffCost(c.cfg.Clock, len(content))

	fm := &wire.FileManifest{File: m.File, Version: want, Sum: diff.Checksum(content)}
	fm.Chunks = make([]wire.ChunkRef, len(manifest))

	// The server's base tells us which chunks it (at worst) already holds;
	// fresh chunks ride inline so an incremental edit stays one frame. But
	// inlining is only a bet that the server lacks those chunks: when most
	// of the file is fresh relative to the base — a rewritten or brand-new
	// file — the bet is off, because another user may well have uploaded
	// the same content already. Then the manifest goes bare and the server
	// requests exactly its gaps, which is what makes a second user's
	// near-identical content cost a manifest plus only its private chunks.
	var base map[chunk.Hash]bool
	if m.HaveVersion > 0 {
		if bm, _, berr := c.store.ManifestFor(m.File, m.HaveVersion); berr == nil {
			base = make(map[chunk.Hash]bool, len(bm))
			for _, r := range bm {
				base[r.Hash] = true
			}
		}
	}
	fresh := 0
	for _, r := range manifest {
		if !base[r.Hash] {
			fresh++
		}
	}
	off := 0
	var inlined map[chunk.Hash]bool
	for i, r := range manifest {
		fm.Chunks[i] = wire.ChunkRef{Hash: r.Hash, Len: r.Len}
		data := content[off : off+int(r.Len)]
		off += int(r.Len)
		if base != nil && 2*fresh <= len(manifest) && !base[r.Hash] && !inlined[r.Hash] {
			if inlined == nil {
				inlined = make(map[chunk.Hash]bool)
			}
			inlined[r.Hash] = true
			fm.Inline = append(fm.Inline, wire.InlineChunk{Index: uint32(i), Data: data})
		}
	}
	c.counters.AddManifest(fm.PayloadLen())
	if sp != nil {
		if len(fm.Inline) > 0 {
			sp.Annotate("manifest+inline")
		} else {
			sp.Annotate("manifest")
		}
	}
	_ = c.sendTraced(fm, ctxOr(sp, tc))
	return true
}

// handleChunkReq answers the server's request for specific chunks of a file
// version, scanning the retained versions for each address. Chunks this
// store no longer has are omitted; the server treats an incomplete answer by
// re-pulling, which converges on the current head.
func (c *Client) handleChunkReq(m *wire.ChunkReq, tc wire.TraceContext) {
	sp := c.cfg.Obs.StartSpan(tc, "client.answer-chunks")
	if sp != nil {
		sp.SetFile(m.File.String())
	}
	defer sp.Finish()
	reply := &wire.ChunkData{File: m.File, Version: m.Version}
	reply.Chunks = make([]wire.ChunkBlob, 0, len(m.Hashes))
	for _, hb := range m.Hashes {
		if data, ok := c.store.ChunkByHash(m.File, chunk.Hash(hb)); ok {
			reply.Chunks = append(reply.Chunks, wire.ChunkBlob{Hash: hb, Data: data})
		}
	}
	if len(reply.Chunks) < len(m.Hashes) {
		sp.Annotate("partial")
	}
	c.counters.AddChunkData(reply.PayloadLen())
	_ = c.sendTraced(reply, ctxOr(sp, tc))
}
