package client

import (
	"context"

	"bytes"
	"errors"
	"testing"
	"time"

	"shadowedit/internal/diff"
	"shadowedit/internal/env"
	"shadowedit/internal/naming"
	"shadowedit/internal/netsim"
	"shadowedit/internal/obs"
	"shadowedit/internal/wire"
)

// fakeServer is a scripted wire-level peer for exercising the client.
type fakeServer struct {
	t    *testing.T
	conn *netsim.Conn
}

func newPair(t *testing.T) (*Client, *fakeServer, *naming.Universe) {
	t.Helper()
	nw := netsim.New()
	wsHost := nw.Host("ws")
	srvHost := nw.Host("super")
	nw.Connect(wsHost, srvHost, netsim.LAN)
	lst, err := srvHost.Listen(1)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = lst.Close() })

	accepted := make(chan *netsim.Conn, 1)
	go func() {
		c, err := lst.Accept()
		if err != nil {
			return
		}
		accepted <- c
	}()
	conn, err := wsHost.Dial("super", 1)
	if err != nil {
		t.Fatal(err)
	}

	universe := naming.NewUniverse("dom")
	universe.AddHost("ws")

	// Serve the hello by hand before Connect returns.
	done := make(chan *Client, 1)
	errCh := make(chan error, 1)
	go func() {
		// Every test runs with an observer attached, so the instrumented
		// paths (cycle stamping in particular) are exercised throughout.
		cl, err := Connect(context.Background(), conn, Config{
			User: "u", Universe: universe, Host: "ws", Obs: obs.New(nil, nil),
		})
		if err != nil {
			errCh <- err
			return
		}
		done <- cl
	}()
	srvConn := <-accepted
	fs := &fakeServer{t: t, conn: srvConn}
	if _, ok := fs.recv().(*wire.Hello); !ok {
		t.Fatal("client did not send hello")
	}
	fs.send(&wire.HelloOK{Session: 1, ServerName: "super"})
	select {
	case cl := <-done:
		t.Cleanup(func() { _ = cl.Close() })
		return cl, fs, universe
	case err := <-errCh:
		t.Fatal(err)
		return nil, nil, nil
	}
}

func (f *fakeServer) send(m wire.Message) {
	f.t.Helper()
	if err := wire.Send(f.conn, m); err != nil {
		f.t.Fatalf("fake server send: %v", err)
	}
}

func (f *fakeServer) recv() wire.Message {
	f.t.Helper()
	m, err := wire.Recv(f.conn)
	if err != nil {
		f.t.Fatalf("fake server recv: %v", err)
	}
	return m
}

func TestConnectRejectsMissingUniverse(t *testing.T) {
	if _, err := Connect(context.Background(), nil, Config{User: "u"}); err == nil {
		t.Fatal("Connect without universe succeeded")
	}
}

func TestCommitAndNotifySendsNotifyOnce(t *testing.T) {
	cl, fs, universe := newPair(t)
	if err := universe.WriteFile("ws", "/f", []byte("v1\n")); err != nil {
		t.Fatal(err)
	}
	res, err := cl.CommitAndNotify("/f")
	if err != nil {
		t.Fatal(err)
	}
	if res.Version != 1 || res.File.FileID != "ws:/f" || !res.Changed() {
		t.Fatalf("commit = %+v", res)
	}
	n, ok := fs.recv().(*wire.Notify)
	if !ok || n.Version != 1 || n.Size != 3 {
		t.Fatalf("notify = %#v", n)
	}
	// Unchanged content: no second notify; verify by round-tripping a
	// status request and seeing it arrive next.
	res, err = cl.CommitAndNotify("/f")
	if err != nil {
		t.Fatal(err)
	}
	if res.Changed() {
		t.Fatalf("unchanged recommit reported %d wire bytes", res.WireBytes)
	}
	go func() {
		// Answer the status request the test main goroutine sends.
	}()
	statusDone := make(chan error, 1)
	go func() {
		_, err := cl.StatusAll(context.Background())
		statusDone <- err
	}()
	if m := fs.recv(); m.Kind() != wire.KindStatusReq {
		t.Fatalf("expected status req next (no duplicate notify), got %v", m.Kind())
	}
	fs.send(&wire.StatusReply{})
	if err := <-statusDone; err != nil {
		t.Fatal(err)
	}
}

func TestClientAnswersPullWithDelta(t *testing.T) {
	cl, fs, universe := newPair(t)
	base := bytes.Repeat([]byte("line of stable content here\n"), 100)
	if err := universe.WriteFile("ws", "/f", base); err != nil {
		t.Fatal(err)
	}
	res, err := cl.CommitAndNotify("/f")
	if err != nil {
		t.Fatal(err)
	}
	ref := res.File
	fs.recv() // notify v1

	edited := append(append([]byte{}, base...), []byte("new tail line\n")...)
	if err := universe.WriteFile("ws", "/f", edited); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.CommitAndNotify("/f"); err != nil {
		t.Fatal(err)
	}
	fs.recv() // notify v2

	fs.send(&wire.Pull{File: ref, HaveVersion: 1, WantVersion: 2})
	fd, ok := fs.recv().(*wire.FileDelta)
	if !ok {
		t.Fatalf("pull answer = %#v, want delta", fd)
	}
	d, err := diff.Decode(fd.Encoded)
	if err != nil {
		t.Fatal(err)
	}
	got, err := d.Apply(base)
	if err != nil || !bytes.Equal(got, edited) {
		t.Fatalf("delta does not reconstruct: %v", err)
	}

	// Ack prunes: after acking v2, version 1 becomes prunable (retain
	// default is 1 so it may be retained; check the ack is recorded).
	fs.send(&wire.FileAck{File: ref, Version: 2})
	deadline := time.After(2 * time.Second)
	for cl.Store().Acked(ref) != 2 {
		select {
		case <-deadline:
			t.Fatal("ack never recorded")
		default:
			time.Sleep(time.Millisecond)
		}
	}
}

func TestClientAnswersPullForUnknownFileWithError(t *testing.T) {
	cl, fs, _ := newPair(t)
	_ = cl
	fs.send(&wire.Pull{File: wire.FileRef{Domain: "dom", FileID: "ghost"}, HaveVersion: 0, WantVersion: 1})
	m, ok := fs.recv().(*wire.ErrorMsg)
	if !ok || m.Code != wire.CodeUnknownFile {
		t.Fatalf("pull answer = %#v, want unknown-file error", m)
	}
}

func TestSubmitRoundTrip(t *testing.T) {
	cl, fs, universe := newPair(t)
	if err := universe.WriteFile("ws", "/run.job", []byte("wc d\n")); err != nil {
		t.Fatal(err)
	}
	if err := universe.WriteFile("ws", "/d", []byte("data\n")); err != nil {
		t.Fatal(err)
	}
	type result struct {
		job uint64
		err error
	}
	res := make(chan result, 1)
	go func() {
		job, err := cl.Submit(context.Background(), "/run.job", []string{"/d"}, SubmitOptions{})
		res <- result{job: job, err: err}
	}()
	if m := fs.recv(); m.Kind() != wire.KindNotify {
		t.Fatalf("expected notify for data file, got %v", m.Kind())
	}
	sub, ok := fs.recv().(*wire.Submit)
	if !ok {
		t.Fatalf("expected submit, got %#v", sub)
	}
	if len(sub.Inputs) != 1 || sub.Inputs[0].As != "d" {
		t.Fatalf("submit inputs = %+v", sub.Inputs)
	}
	fs.send(&wire.SubmitOK{Job: 99})
	r := <-res
	if r.err != nil || r.job != 99 {
		t.Fatalf("submit = %+v", r)
	}
	rec, ok := cl.Jobs().Get("super", 99)
	if !ok || rec.OutputFile != "job-99.out" {
		t.Fatalf("job record = %+v", rec)
	}
}

func TestSubmitServerError(t *testing.T) {
	cl, fs, universe := newPair(t)
	if err := universe.WriteFile("ws", "/run.job", []byte("wc d\n")); err != nil {
		t.Fatal(err)
	}
	if err := universe.WriteFile("ws", "/d", []byte("x\n")); err != nil {
		t.Fatal(err)
	}
	res := make(chan error, 1)
	go func() {
		_, err := cl.Submit(context.Background(), "/run.job", []string{"/d"}, SubmitOptions{})
		res <- err
	}()
	fs.recv() // notify
	fs.recv() // submit
	fs.send(&wire.ErrorMsg{Code: wire.CodeBadRequest, Text: "nope"})
	err := <-res
	var em *wire.ErrorMsg
	if !errors.As(err, &em) || em.Code != wire.CodeBadRequest {
		t.Fatalf("submit err = %v, want server error", err)
	}
}

func TestOutputDeliveryAndWait(t *testing.T) {
	cl, fs, universe := newPair(t)
	if err := universe.WriteFile("ws", "/run.job", []byte("echo hi\n")); err != nil {
		t.Fatal(err)
	}
	res := make(chan uint64, 1)
	go func() {
		job, err := cl.Submit(context.Background(), "/run.job", nil, SubmitOptions{})
		if err != nil {
			t.Error(err)
			return
		}
		res <- job
	}()
	fs.recv() // submit (no data files, so no notify)
	fs.send(&wire.SubmitOK{Job: 5})
	job := <-res

	fs.send(&wire.Output{
		Job: job, State: wire.JobDone, ExitCode: 0,
		Mode: wire.OutputFull, Stdout: []byte("hi\n"),
	})
	rec, err := cl.Wait(context.Background(), job)
	if err != nil {
		t.Fatal(err)
	}
	if string(rec.Stdout) != "hi\n" || !rec.Delivered {
		t.Fatalf("rec = %+v", rec)
	}
	if ack, ok := fs.recv().(*wire.OutputAck); !ok || ack.Job != job {
		t.Fatalf("expected output ack, got %#v", ack)
	}
	// Output file stored under the work dir.
	out, err := universe.ReadFile("ws", "/home/u/job-5.out")
	if err != nil || string(out) != "hi\n" {
		t.Fatalf("stored output: %q, %v", out, err)
	}
}

func TestOutputDeltaWithoutBaseRequestsFull(t *testing.T) {
	cl, fs, universe := newPair(t)
	if err := universe.WriteFile("ws", "/run.job", []byte("echo hi\n")); err != nil {
		t.Fatal(err)
	}
	res := make(chan uint64, 1)
	go func() {
		job, err := cl.Submit(context.Background(), "/run.job", nil, SubmitOptions{})
		if err != nil {
			t.Error(err)
			return
		}
		res <- job
	}()
	fs.recv()
	fs.send(&wire.SubmitOK{Job: 6})
	job := <-res

	// An output delta whose base the client does not hold.
	d, err := diff.Compute(diff.HuntMcIlroy, []byte("prev output\n"), []byte("new output\n"))
	if err != nil {
		t.Fatal(err)
	}
	fs.send(&wire.Output{Job: job, State: wire.JobDone, Mode: wire.OutputDelta, Stdout: d.Encode()})
	if req, ok := fs.recv().(*wire.OutputFullReq); !ok || req.Job != job {
		t.Fatalf("expected output full request, got %#v", req)
	}
	// Server resends in full; Wait completes.
	fs.send(&wire.Output{Job: job, State: wire.JobDone, Mode: wire.OutputFull, Stdout: []byte("new output\n")})
	rec, err := cl.Wait(context.Background(), job)
	if err != nil || string(rec.Stdout) != "new output\n" {
		t.Fatalf("rec = %+v err %v", rec, err)
	}
}

func TestRoutedOutputForUnknownJobStored(t *testing.T) {
	cl, fs, universe := newPair(t)
	fs.send(&wire.Output{Job: 77, State: wire.JobDone, Mode: wire.OutputFull, Stdout: []byte("routed\n")})
	rec, err := cl.Wait(context.Background(), 77)
	if err != nil {
		t.Fatal(err)
	}
	if string(rec.Stdout) != "routed\n" {
		t.Fatalf("rec = %+v", rec)
	}
	out, err := universe.ReadFile("ws", "/home/u/routed-job-77.out")
	if err != nil || string(out) != "routed\n" {
		t.Fatalf("routed output file: %q, %v", out, err)
	}
}

func TestWaitAfterDisconnectFails(t *testing.T) {
	cl, fs, _ := newPair(t)
	_ = fs.conn.Close()
	if _, err := cl.Wait(context.Background(), 123); err == nil {
		t.Fatal("Wait succeeded after disconnect")
	}
	if _, err := cl.StatusAll(context.Background()); err == nil {
		t.Fatal("StatusAll succeeded after disconnect")
	}
}

func TestStatusUpdatesJobDB(t *testing.T) {
	cl, fs, _ := newPair(t)
	done := make(chan error, 1)
	go func() {
		st, err := cl.Status(context.Background(), 4)
		if err == nil && st.State != wire.JobRunning {
			err = errors.New("wrong state")
		}
		done <- err
	}()
	if m := fs.recv(); m.Kind() != wire.KindStatusReq {
		t.Fatalf("got %v", m.Kind())
	}
	fs.send(&wire.StatusReply{Jobs: []wire.JobStatus{{Job: 4, State: wire.JobRunning, Detail: "busy"}}})
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	rec, ok := cl.Jobs().Get("super", 4)
	if !ok || rec.State != wire.JobRunning {
		t.Fatalf("jobdb rec = %+v", rec)
	}
}

func TestCloseIsIdempotent(t *testing.T) {
	cl, _, _ := newPair(t)
	if err := cl.Close(); err != nil {
		t.Fatal(err)
	}
	if err := cl.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestEnvironmentDefaultsApplied(t *testing.T) {
	cl, _, _ := newPair(t)
	environment := cl.Environment()
	if environment.User != "u" {
		t.Fatalf("env user = %q", environment.User)
	}
	if environment.Algorithm != diff.HuntMcIlroy {
		t.Fatal("default algorithm wrong")
	}
}

func TestConnectValidatesEnvironment(t *testing.T) {
	u := naming.NewUniverse("d")
	u.AddHost("ws")
	bad := env.Default("u")
	bad.RetainVersions = -1
	if _, err := Connect(context.Background(), nil, Config{User: "u", Universe: u, Host: "ws", Env: bad}); err == nil {
		t.Fatal("Connect with invalid environment succeeded")
	}
}

func TestWaitAnyReceivesRoutedOutputs(t *testing.T) {
	cl, fs, _ := newPair(t)
	fs.send(&wire.Output{Job: 31, State: wire.JobDone, Mode: wire.OutputFull, Stdout: []byte("one\n")})
	fs.send(&wire.Output{Job: 32, State: wire.JobDone, Mode: wire.OutputFull, Stdout: []byte("two\n")})
	got := map[uint64]string{}
	for i := 0; i < 2; i++ {
		rec, err := cl.WaitAny(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		got[rec.ID] = string(rec.Stdout)
	}
	if got[31] != "one\n" || got[32] != "two\n" {
		t.Fatalf("WaitAny results = %v", got)
	}
}

func TestWaitAnyAfterDisconnect(t *testing.T) {
	cl, fs, _ := newPair(t)
	_ = fs.conn.Close()
	if _, err := cl.WaitAny(context.Background()); err == nil {
		t.Fatal("WaitAny succeeded after disconnect")
	}
}

// TestCycleHistogramRecords: a submit→output round trip must land exactly one
// sample in the observer's full-cycle histogram, and a duplicate delivery
// must not add a second.
func TestCycleHistogramRecords(t *testing.T) {
	cl, fs, universe := newPair(t)
	if err := universe.WriteFile("ws", "/run.job", []byte("echo hi\n")); err != nil {
		t.Fatal(err)
	}
	res := make(chan uint64, 1)
	go func() {
		job, err := cl.Submit(context.Background(), "/run.job", nil, SubmitOptions{})
		if err != nil {
			t.Error(err)
			return
		}
		res <- job
	}()
	fs.recv() // submit
	fs.send(&wire.SubmitOK{Job: 7})
	job := <-res

	deliver := func() {
		fs.send(&wire.Output{Job: job, State: wire.JobDone, Mode: wire.OutputFull, Stdout: []byte("hi\n")})
		if _, err := cl.Wait(context.Background(), job); err != nil {
			t.Fatal(err)
		}
		if ack, ok := fs.recv().(*wire.OutputAck); !ok || ack.Job != job {
			t.Fatalf("expected output ack, got %#v", ack)
		}
	}
	deliver()
	if n := cl.cfg.Obs.Cycle.Snapshot().Count; n != 1 {
		t.Fatalf("cycle histogram count = %d after delivery, want 1", n)
	}
	deliver() // duplicate: acked, not re-surfaced, not re-timed
	if n := cl.cfg.Obs.Cycle.Snapshot().Count; n != 1 {
		t.Fatalf("cycle histogram count = %d after duplicate, want 1", n)
	}
}
