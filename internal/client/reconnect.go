package client

import (
	"context"
	"errors"
	"fmt"
	"time"

	"shadowedit/internal/wire"
)

// supervise owns the connection lifecycle: it runs the read loop, and when
// the connection dies either finishes the client (no Dial function, or
// deliberate Close) or re-establishes the session and carries on. It is the
// only goroutine that installs connections after Connect returns.
func (c *Client) supervise(conn wire.Conn) {
	defer close(c.superDone)
	for {
		c.readLoop(conn)
		_ = conn.Close()

		c.mu.Lock()
		cause := c.lastDrop
		c.conn = nil
		down := c.connDown
		c.connDown = make(chan struct{})
		c.connUp = make(chan struct{})
		closed := c.closed
		c.mu.Unlock()
		close(down)

		if closed {
			c.finish(nil)
			return
		}
		if cause == nil {
			cause = errors.New("connection closed")
		}
		if c.cfg.Dial == nil {
			c.finish(tagErr(ErrDisconnected,
				fmt.Errorf("client: connection lost: %w", cause)))
			return
		}
		next, err := c.reconnect(cause)
		if err != nil {
			c.mu.Lock()
			closed = c.closed
			c.mu.Unlock()
			if closed {
				c.finish(nil)
			} else {
				c.finish(err)
			}
			return
		}
		c.installConn(next)
		c.counters.AddReconnect()
		conn = next
	}
}

// installConn publishes a live connection and wakes waiters.
func (c *Client) installConn(conn wire.Conn) {
	c.mu.Lock()
	c.conn = conn
	up := c.connUp
	c.mu.Unlock()
	select {
	case <-up:
	default:
		close(up)
	}
}

// reconnect re-establishes the session with exponential backoff: dial,
// handshake, resync the server's view of our file heads. The server holds
// undelivered output and re-pulls dangling inputs on re-attach, so nothing
// is lost across the gap.
func (c *Client) reconnect(cause error) (wire.Conn, error) {
	delay := c.retry.BaseDelay
	for attempt := 1; ; attempt++ {
		if err := c.lifeCtx.Err(); err != nil {
			return nil, ErrClosed
		}
		conn, err := c.dialOnce()
		if err == nil {
			return conn, nil
		}
		if errors.Is(err, ErrClosed) {
			return nil, ErrClosed
		}
		if attempt >= c.retry.MaxAttempts {
			return nil, tagErr(ErrRetriesExhausted,
				fmt.Errorf("client: reconnect failed after %d attempts (%v): %w",
					attempt, cause, err))
		}
		if err := c.sleep(c.jittered(delay)); err != nil {
			return nil, ErrClosed
		}
		delay = time.Duration(float64(delay) * c.retry.Multiplier)
		if delay > c.retry.MaxDelay {
			delay = c.retry.MaxDelay
		}
	}
}

// dialOnce makes one full session-establishment attempt.
func (c *Client) dialOnce() (wire.Conn, error) {
	conn, err := c.cfg.Dial()
	if err != nil {
		return nil, fmt.Errorf("dial: %w", err)
	}
	if err := c.handshake(conn); err != nil {
		_ = conn.Close()
		return nil, err
	}
	if err := c.resync(conn); err != nil {
		_ = conn.Close()
		return nil, err
	}
	return conn, nil
}

// handshake sends HELLO and waits for HELLO_OK on a fresh connection.
func (c *Client) handshake(conn wire.Conn) error {
	hello := &wire.Hello{
		Protocol:   wire.ProtocolVersion,
		User:       c.cfg.User,
		Domain:     c.cfg.Universe.Domain(),
		ClientHost: c.cfg.Host,
	}
	if err := wire.Send(conn, hello); err != nil {
		return fmt.Errorf("client: hello: %w", err)
	}
	reply, err := wire.Recv(conn)
	if err != nil {
		return fmt.Errorf("client: handshake: %w", err)
	}
	switch m := reply.(type) {
	case *wire.HelloOK:
		c.mu.Lock()
		c.session = m.Session
		// The confirmed protocol version (0 from classic servers) gates
		// chunk transfers per session — renegotiated on every reconnect.
		c.serverProto = m.Protocol
		if c.tagBase == 0 {
			// First session id keys this client's idempotency-tag space.
			c.tagBase = m.Session << 20
		}
		c.mu.Unlock()
		if c.serverName == "" {
			c.serverName = m.ServerName
		}
		return nil
	case *wire.ErrorMsg:
		return fmt.Errorf("client: server refused session: %w", m)
	default:
		return fmt.Errorf("client: unexpected handshake reply %v", reply.Kind())
	}
}

// resync re-announces every known file head over a fresh connection, so the
// server learns about versions committed while we were disconnected (their
// NOTIFYs may have died with the old connection). Redundant notifies are
// harmless — the server pulls only what it is missing, on demand.
func (c *Client) resync(conn wire.Conn) error {
	for _, ref := range c.store.Files() {
		head, ok := c.store.Head(ref)
		if !ok {
			continue
		}
		n := &wire.Notify{
			File:    ref,
			Version: head.Number,
			Size:    int64(len(head.Content)),
			Sum:     head.Sum,
		}
		if err := wire.Send(conn, n); err != nil {
			return fmt.Errorf("client: resync notify: %w", err)
		}
		c.counters.AddControl(0)
	}
	return nil
}

// jittered randomizes d by ±Jitter.
func (c *Client) jittered(d time.Duration) time.Duration {
	c.mu.Lock()
	f := 1 + c.retry.Jitter*(2*c.rng.Float64()-1)
	c.mu.Unlock()
	j := time.Duration(float64(d) * f)
	if j <= 0 {
		j = d
	}
	return j
}

// sleep waits out a backoff delay, on the wall clock or — in simulations —
// by advancing the workstation's virtual clock, so backoff outlasts
// virtual-time flap windows. It returns early when the client closes.
func (c *Client) sleep(d time.Duration) error {
	if c.cfg.Sleep != nil {
		return c.cfg.Sleep(c.lifeCtx, d)
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-c.lifeCtx.Done():
		return context.Cause(c.lifeCtx)
	}
}
