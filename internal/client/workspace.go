package client

// Workspace-scale synchronization (protocol v4). A Workspace is a directory
// handle on the client: Sync reconciles everything beneath it with the
// server in O(difference) communication by exchanging Merkle-style tree
// summaries, and Submit resolves job paths relative to the synced root. The
// per-file CommitAndNotify remains the degenerate single-file case of the
// same machinery.

import (
	"context"
	"fmt"
	"sort"

	"shadowedit/internal/diff"
	"shadowedit/internal/tree"
	"shadowedit/internal/wire"
)

// NotifyResult reports what one commit-and-notify did: the file's protocol
// reference, the version now at the head of the local store, and how many
// bytes the notify frame occupied on the wire — 0 when the content was
// unchanged and nothing was sent.
type NotifyResult struct {
	File      wire.FileRef
	Version   uint64
	WireBytes int
}

// Changed reports whether the commit produced a new version (and therefore
// a notify on the wire).
func (r NotifyResult) Changed() bool { return r.WireBytes > 0 }

// SyncMode names the reconciliation strategy a Sync used.
type SyncMode string

const (
	// SyncTree is Merkle-tree reconciliation: O(difference) messages.
	SyncTree SyncMode = "tree"
	// SyncPerFile is the classic fallback — one notify per file — used
	// against pre-v4 servers or when Config.PerFileSync forces it.
	SyncPerFile SyncMode = "per-file"
)

// SyncStats summarizes one Sync call.
type SyncStats struct {
	// Files is how many local files the workspace holds.
	Files int
	// Changed is how many files were announced to the server (divergent
	// under tree sync; locally recommitted under per-file sync).
	Changed int
	// Removed is how many server-side files the workspace no longer has,
	// announced for eviction (tree sync only — per-file sync cannot see
	// them).
	Removed int
	// RoundTrips counts the synchronous exchanges the tree walk needed
	// (head + one per divergent level); 0 under per-file sync.
	RoundTrips int
	// InSync reports that the summary roots matched and nothing moved.
	InSync bool
	// Mode is the strategy used.
	Mode SyncMode
}

// Workspace is a tree-level handle on a local directory. Obtain one with
// Client.Workspace; the zero value is not usable.
type Workspace struct {
	c    *Client
	root string
}

// Workspace returns a handle on the directory tree rooted at root (a local
// path on the client's host, resolved through the same mounts and symlinks
// as any file name). The handle is cheap; the directory is enumerated at
// each Sync, so files created after the handle are picked up.
func (c *Client) Workspace(root string) *Workspace {
	return &Workspace{c: c, root: root}
}

// Root returns the workspace's root path as given.
func (w *Workspace) Root() string { return w.root }

// treeActive reports whether tree reconciliation is negotiated on the
// current session: the server confirmed v4+ and the client did not force
// the per-file path.
func (c *Client) treeActive() bool {
	if c.cfg.PerFileSync {
		return false
	}
	c.mu.Lock()
	proto := c.serverProto
	c.mu.Unlock()
	return proto >= wire.TreeProtocolVersion
}

// syncFile is one workspace file's commit outcome, keyed by relative path.
type syncFile struct {
	ref     wire.FileRef
	version uint64
	size    int64
	sum     uint32
	changed bool
}

// Sync reconciles the workspace with the server. Every file under the root
// is committed to the version store first (the local tree is always the
// truth); then, on a v4 session, client and server compare Merkle summaries
// and walk only divergent subtrees, so a 10k-file workspace with a handful
// of edits costs a handful of frames. The call returns once the server has
// acknowledged every file it was told about — afterwards a Submit's inputs
// are already cached server-side. Against an older server (or with
// Config.PerFileSync) it degrades to the classic resync: one notify per
// file, the server pulling what it is missing; acknowledgements are then
// awaited only for files this call recommitted.
//
// Sync runs until done or ctx expires; on a slow link bound it with a
// deadline. Files deleted locally are announced for server-side eviction
// under tree sync.
func (w *Workspace) Sync(ctx context.Context) (SyncStats, error) {
	c := w.c
	rootName, rels, err := c.cfg.Universe.FilesUnder(c.cfg.Host, w.root)
	if err != nil {
		return SyncStats{}, fmt.Errorf("client: sync %s: %w", w.root, err)
	}
	rootID := rootName.String()
	domain := c.cfg.Universe.Domain()

	// Commit the whole tree locally and build its summary.
	files := make(map[string]syncFile, len(rels))
	leaves := make([]tree.Leaf, 0, len(rels))
	for _, rel := range rels {
		content, err := c.cfg.Universe.ReadFile(rootName.Host, rootName.Path+"/"+rel)
		if err != nil {
			return SyncStats{}, fmt.Errorf("client: sync %s: %w", rel, err)
		}
		ref := wire.FileRef{Domain: domain, FileID: rootID + "/" + rel}
		version, changed := c.store.Commit(ref, content)
		m, _, err := c.store.ManifestFor(ref, version)
		if err != nil {
			return SyncStats{}, fmt.Errorf("client: sync %s: %w", rel, err)
		}
		files[rel] = syncFile{
			ref:     ref,
			version: version,
			size:    int64(len(content)),
			sum:     diff.Checksum(content),
			changed: changed,
		}
		leaves = append(leaves, tree.Leaf{Path: rel, Hash: m.Fingerprint()})
	}
	stats := SyncStats{Files: len(rels)}

	if !c.treeActive() {
		return c.syncPerFile(ctx, rels, files, stats)
	}
	return c.syncTree(ctx, rootID, tree.Build(leaves), files, stats)
}

// syncTree is the v4 path: head exchange, divergence walk, one batched
// notify, then ack completion.
func (c *Client) syncTree(ctx context.Context, rootID string, t *tree.Tree, files map[string]syncFile, stats SyncStats) (SyncStats, error) {
	stats.Mode = SyncTree
	head := &wire.TreeHead{Root: rootID, Hash: t.Root(), Count: uint32(t.Count())}
	c.counters.AddControl(0)
	reply, err := c.roundTrip(ctx, head)
	if err != nil {
		return stats, err
	}
	td, ok := reply.(*wire.TreeDiff)
	if !ok {
		return stats, replyError(reply)
	}
	stats.RoundTrips++
	if td.InSync {
		stats.InSync = true
		return stats, nil
	}

	// Walk: each reply's listings are diffed against the local summary;
	// subtrees that differ on both sides feed the next request, subtrees
	// only we have are enumerated locally, subtrees only the server has
	// are fetched to enumerate the removals beneath them.
	var changed, removed []string
	process := func(dirs []wire.TreeDir) (want []string) {
		for _, d := range dirs {
			local, _ := t.Entries(d.Path)
			remote := make([]tree.Entry, len(d.Entries))
			for i, e := range d.Entries {
				remote[i] = tree.Entry{Name: e.Name, Hash: e.Hash, Dir: e.Dir}
			}
			delta := tree.Diff(d.Path, local, remote)
			changed = append(changed, delta.ChangedFiles...)
			removed = append(removed, delta.RemovedFiles...)
			for _, lo := range delta.LocalOnly {
				changed = append(changed, t.FilesUnder(lo)...)
			}
			want = append(want, delta.WalkBoth...)
			want = append(want, delta.RemoteOnly...)
		}
		return want
	}
	want := process(td.Dirs)
	for len(want) > 0 {
		c.counters.AddControl(0)
		reply, err := c.roundTrip(ctx, &wire.TreeDiff{Root: rootID, Want: want})
		if err != nil {
			return stats, err
		}
		td, ok := reply.(*wire.TreeDiff)
		if !ok {
			return stats, replyError(reply)
		}
		stats.RoundTrips++
		want = process(td.Dirs)
	}

	sort.Strings(changed)
	batch := &wire.BatchNotify{
		Notifies: make([]wire.NotifyEntry, 0, len(changed)),
		Removed:  make([]wire.FileRef, 0, len(removed)),
	}
	await := make(map[wire.FileRef]uint64, len(changed))
	for _, rel := range changed {
		f := files[rel]
		batch.Notifies = append(batch.Notifies, wire.NotifyEntry{
			File: f.ref, Version: f.version, Size: f.size, Sum: f.sum,
		})
		await[f.ref] = f.version
	}
	domain := c.cfg.Universe.Domain()
	for _, rel := range removed {
		batch.Removed = append(batch.Removed, wire.FileRef{Domain: domain, FileID: rootID + "/" + rel})
	}
	stats.Changed = len(batch.Notifies)
	stats.Removed = len(batch.Removed)
	if len(batch.Notifies) == 0 && len(batch.Removed) == 0 {
		return stats, nil
	}
	// The batch begins a traced "sync" cycle like a notify does; the
	// server's pulls and applies join it.
	sp := c.cfg.Obs.StartTrace("sync")
	c.counters.AddControl(0)
	err = c.sendTraced(batch, sp.Context())
	if sp != nil {
		sp.Finish()
		c.cfg.Obs.EndTrace(sp.Context())
	}
	if err != nil {
		return stats, err
	}
	return stats, c.awaitAcks(ctx, await)
}

// syncPerFile is the pre-v4 fallback: announce every head (the server pulls
// whatever it is missing, exactly as after a reconnect), then wait for the
// files this call recommitted — the only ones the server is guaranteed to
// pull and acknowledge.
//
// Changed announcements are windowed: every notify of new content provokes
// a pull, and the read loop — the connection's only receiver — blocks
// sending the answers, so an unbounded stream of provoking notifies can
// wedge both directions of the pipe against a server that has stopped
// reading. Flushing acks every perFileWindow changed files keeps at most a
// window of pull traffic in flight. Unchanged notifies provoke nothing and
// flow freely.
func (c *Client) syncPerFile(ctx context.Context, rels []string, files map[string]syncFile, stats SyncStats) (SyncStats, error) {
	const perFileWindow = 32
	stats.Mode = SyncPerFile
	await := make(map[wire.FileRef]uint64)
	for _, rel := range rels {
		f := files[rel]
		n := &wire.Notify{File: f.ref, Version: f.version, Size: f.size, Sum: f.sum}
		c.counters.AddControl(0)
		if err := c.send(n); err != nil {
			return stats, err
		}
		if f.changed {
			stats.Changed++
			await[f.ref] = f.version
			if len(await) >= perFileWindow {
				if err := c.awaitAcks(ctx, await); err != nil {
					return stats, err
				}
			}
		}
	}
	return stats, c.awaitAcks(ctx, await)
}

// awaitAcks blocks until the store has acknowledgements at or above the
// wanted version for every listed file. The read loop signals ackSignal
// after each FileAck lands in the store (store first, signal second — no
// lost wakeups), so the scan shrinks as acks arrive. want is consumed.
func (c *Client) awaitAcks(ctx context.Context, want map[wire.FileRef]uint64) error {
	for {
		for ref, v := range want {
			if c.store.Acked(ref) >= v {
				delete(want, ref)
			}
		}
		if len(want) == 0 {
			return nil
		}
		select {
		case <-c.ackSignal:
		case <-ctx.Done():
			return ctxErr("sync", ctx.Err())
		case <-c.done:
			return c.sessionErr()
		}
	}
}

// Submit sends a job in the workspace's terms: script and data paths are
// resolved relative to the root (absolute paths pass through), so a caller
// that synced a tree submits with the same names it synced. Options are the
// same as Client.Submit.
func (w *Workspace) Submit(ctx context.Context, scriptPath string, dataPaths []string, opts SubmitOptions) (uint64, error) {
	data := make([]string, len(dataPaths))
	for i, p := range dataPaths {
		data[i] = w.join(p)
	}
	return w.c.Submit(ctx, w.join(scriptPath), data, opts)
}

// join anchors a workspace-relative path at the root.
func (w *Workspace) join(p string) string {
	if len(p) > 0 && p[0] == '/' {
		return p
	}
	return w.root + "/" + p
}
