package client

import (
	"context"
	"errors"
	"testing"
	"time"

	"shadowedit/internal/naming"
	"shadowedit/internal/netsim"
	"shadowedit/internal/wire"
)

// dialRig is a fake server the client can redial: every accepted connection
// is handed to the test for scripting.
type dialRig struct {
	t     *testing.T
	conns chan *netsim.Conn
	dial  func() (wire.Conn, error)
	close func()
}

func newDialRig(t *testing.T) (*dialRig, *naming.Universe) {
	t.Helper()
	nw := netsim.New()
	ws := nw.Host("ws")
	super := nw.Host("super")
	nw.Connect(ws, super, netsim.LAN)
	lst, err := super.Listen(1)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = lst.Close() })
	rig := &dialRig{t: t, conns: make(chan *netsim.Conn, 4)}
	go func() {
		for {
			c, err := lst.Accept()
			if err != nil {
				return
			}
			rig.conns <- c
		}
	}()
	rig.dial = func() (wire.Conn, error) { return ws.Dial("super", 1) }
	rig.close = func() { _ = lst.Close() }
	universe := naming.NewUniverse("dom")
	universe.AddHost("ws")
	return rig, universe
}

// connect starts Connect (which blocks on the handshake) and scripts the
// server half concurrently.
func (r *dialRig) connect(cfg Config) (*Client, *fakeServer) {
	r.t.Helper()
	type res struct {
		cl  *Client
		err error
	}
	done := make(chan res, 1)
	go func() {
		cl, err := Connect(context.Background(), nil, cfg)
		done <- res{cl, err}
	}()
	fs := r.accept(1)
	out := <-done
	if out.err != nil {
		r.t.Fatal(out.err)
	}
	r.t.Cleanup(func() { _ = out.cl.Close() })
	return out.cl, fs
}

// accept scripts the server side of one handshake and returns the session's
// connection.
func (r *dialRig) accept(session uint64) *fakeServer {
	r.t.Helper()
	var conn *netsim.Conn
	select {
	case conn = <-r.conns:
	case <-time.After(5 * time.Second):
		r.t.Fatal("client never dialed")
	}
	fs := &fakeServer{t: r.t, conn: conn}
	if _, ok := fs.recv().(*wire.Hello); !ok {
		r.t.Fatal("expected hello")
	}
	fs.send(&wire.HelloOK{Session: session, ServerName: "super"})
	return fs
}

// TestReconnectResumesSubmitExactlyOnce drops the connection after the
// client's SUBMIT but before SUBMIT_OK. The client must redial, say hello
// again, and re-submit under the same idempotency tag; a duplicate output
// delivery must be acknowledged but not applied twice.
func TestReconnectResumesSubmitExactlyOnce(t *testing.T) {
	rig, universe := newDialRig(t)
	if err := universe.WriteFile("ws", "/run.job", []byte("echo hi\n")); err != nil {
		t.Fatal(err)
	}
	cl, fs1 := rig.connect(Config{
		User: "u", Universe: universe, Host: "ws",
		Dial:  rig.dial,
		Retry: RetryPolicy{MaxAttempts: 10, BaseDelay: time.Millisecond, MaxDelay: 10 * time.Millisecond},
	})

	type result struct {
		job uint64
		err error
	}
	res := make(chan result, 1)
	go func() {
		job, err := cl.Submit(context.Background(), "/run.job", nil, SubmitOptions{})
		res <- result{job, err}
	}()

	sub1, ok := fs1.recv().(*wire.Submit)
	if !ok {
		t.Fatalf("expected submit, got %#v", sub1)
	}
	if sub1.ClientTag == 0 {
		t.Fatal("submit with Dial set carried no idempotency tag")
	}
	// The reply is lost with the connection.
	_ = fs1.conn.Close()

	fs2 := rig.accept(2)
	sub2, ok := fs2.recv().(*wire.Submit)
	if !ok {
		t.Fatalf("expected re-submit, got %#v", sub2)
	}
	if sub2.ClientTag != sub1.ClientTag {
		t.Fatalf("re-submit tag %d != original %d", sub2.ClientTag, sub1.ClientTag)
	}
	fs2.send(&wire.SubmitOK{Job: 7})
	r := <-res
	if r.err != nil || r.job != 7 {
		t.Fatalf("submit = %+v", r)
	}

	// Deliver the output twice, as a server re-attaching a session would
	// after an unacknowledged send: both must be acked, results applied once.
	out := &wire.Output{Job: 7, State: wire.JobDone, Mode: wire.OutputFull, Stdout: []byte("hi\n")}
	fs2.send(out)
	if ack, ok := fs2.recv().(*wire.OutputAck); !ok || ack.Job != 7 {
		t.Fatalf("expected ack, got %#v", ack)
	}
	fs2.send(out)
	if ack, ok := fs2.recv().(*wire.OutputAck); !ok || ack.Job != 7 {
		t.Fatalf("expected duplicate ack, got %#v", ack)
	}
	rec, err := cl.Wait(context.Background(), 7)
	if err != nil || string(rec.Stdout) != "hi\n" {
		t.Fatalf("wait = %+v, %v", rec, err)
	}

	snap := cl.Metrics()
	if snap.Reconnects != 1 {
		t.Fatalf("reconnects = %d, want 1", snap.Reconnects)
	}
	if snap.Retries == 0 {
		t.Fatal("interrupted submit recorded no retry")
	}
}

// TestReconnectResyncsFileHeads verifies the fresh session re-announces
// committed file versions, so notifies lost with the old connection are
// recovered.
func TestReconnectResyncsFileHeads(t *testing.T) {
	rig, universe := newDialRig(t)
	if err := universe.WriteFile("ws", "/f", []byte("v1\n")); err != nil {
		t.Fatal(err)
	}
	cl, fs1 := rig.connect(Config{
		User: "u", Universe: universe, Host: "ws",
		Dial:  rig.dial,
		Retry: RetryPolicy{MaxAttempts: 10, BaseDelay: time.Millisecond, MaxDelay: 10 * time.Millisecond},
	})
	if _, err := cl.CommitAndNotify("/f"); err != nil {
		t.Fatal(err)
	}
	if _, ok := fs1.recv().(*wire.Notify); !ok {
		t.Fatal("expected notify")
	}
	_ = fs1.conn.Close()

	fs2 := rig.accept(2)
	n, ok := fs2.recv().(*wire.Notify)
	if !ok || n.Version != 1 {
		t.Fatalf("resync notify = %#v", n)
	}
}

// TestReconnectGivesUpAfterMaxAttempts severs the connection and the
// listener: the supervisor must surface ErrRetriesExhausted to blocked
// callers instead of retrying forever.
func TestReconnectGivesUpAfterMaxAttempts(t *testing.T) {
	rig, universe := newDialRig(t)
	cl, fs := rig.connect(Config{
		User: "u", Universe: universe, Host: "ws",
		Dial:  rig.dial,
		Retry: RetryPolicy{MaxAttempts: 3, BaseDelay: time.Millisecond, MaxDelay: 2 * time.Millisecond},
	})
	rig.close() // no server to come back to
	_ = fs.conn.Close()

	_, err := cl.Wait(context.Background(), 1)
	if !errors.Is(err, ErrRetriesExhausted) {
		t.Fatalf("wait err = %v, want ErrRetriesExhausted", err)
	}
}

// TestWaitHonorsContext covers both cancellation and deadline expiry while a
// job is outstanding.
func TestWaitHonorsContext(t *testing.T) {
	cl, _, _ := newPair(t)

	ctx, cancel := context.WithCancel(context.Background())
	go func() { cancel() }()
	if _, err := cl.Wait(ctx, 42); !errors.Is(err, context.Canceled) {
		t.Fatalf("wait err = %v, want context.Canceled", err)
	}

	dctx, dcancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer dcancel()
	_, err := cl.Wait(dctx, 42)
	if !errors.Is(err, ErrDeadlineExceeded) {
		t.Fatalf("wait err = %v, want ErrDeadlineExceeded", err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("wait err = %v should also match context.DeadlineExceeded", err)
	}
}

// TestWaitAnyHonorsContext verifies WaitAny unblocks promptly on deadline.
func TestWaitAnyHonorsContext(t *testing.T) {
	cl, _, _ := newPair(t)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	start := time.Now()
	if _, err := cl.WaitAny(ctx); !errors.Is(err, ErrDeadlineExceeded) {
		t.Fatalf("waitany err = %v, want ErrDeadlineExceeded", err)
	}
	if time.Since(start) > 2*time.Second {
		t.Fatal("WaitAny did not return promptly")
	}
}

// TestSubmitWithoutDialStaysFatal pins the compatibility contract: without a
// Dial function a connection loss ends the session, no retries.
func TestSubmitWithoutDialStaysFatal(t *testing.T) {
	cl, fs, universe := newPair(t)
	if err := universe.WriteFile("ws", "/run.job", []byte("echo hi\n")); err != nil {
		t.Fatal(err)
	}
	res := make(chan error, 1)
	go func() {
		_, err := cl.Submit(context.Background(), "/run.job", nil, SubmitOptions{})
		res <- err
	}()
	sub, ok := fs.recv().(*wire.Submit)
	if !ok {
		t.Fatalf("expected submit, got %#v", sub)
	}
	if sub.ClientTag != 0 {
		t.Fatalf("submit without Dial carried tag %d, want 0", sub.ClientTag)
	}
	_ = fs.conn.Close()
	if err := <-res; !errors.Is(err, ErrDisconnected) {
		t.Fatalf("submit err = %v, want ErrDisconnected", err)
	}
	if n := cl.Metrics().Reconnects; n != 0 {
		t.Fatalf("reconnects = %d, want 0", n)
	}
}
