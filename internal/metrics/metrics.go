// Package metrics provides the byte, message and timing accounting shared by
// the client, the server and the experiment harness. The paper's evaluation
// reports total elapsed time per edit–submit–fetch cycle; the harness
// additionally reports the traffic breakdown that explains it (delta bytes
// vs. full bytes vs. control messages).
package metrics

import (
	"fmt"
	"sync"
	"time"
)

// Counters aggregates transfer activity. The zero value is ready to use.
type Counters struct {
	mu sync.Mutex

	deltaBytes   int64
	fullBytes    int64
	controlBytes int64
	outputBytes  int64
	messages     int64
	deltaSends   int64
	fullSends    int64
	busy         time.Duration
}

// AddDelta records a delta transfer of n payload bytes.
func (c *Counters) AddDelta(n int) {
	c.mu.Lock()
	c.deltaBytes += int64(n)
	c.deltaSends++
	c.messages++
	c.mu.Unlock()
}

// AddFull records a full-content transfer of n payload bytes.
func (c *Counters) AddFull(n int) {
	c.mu.Lock()
	c.fullBytes += int64(n)
	c.fullSends++
	c.messages++
	c.mu.Unlock()
}

// AddControl records a control message of n payload bytes (notify, pull,
// ack, submit, status).
func (c *Counters) AddControl(n int) {
	c.mu.Lock()
	c.controlBytes += int64(n)
	c.messages++
	c.mu.Unlock()
}

// AddOutput records delivered job output bytes.
func (c *Counters) AddOutput(n int) {
	c.mu.Lock()
	c.outputBytes += int64(n)
	c.messages++
	c.mu.Unlock()
}

// AddBusy accumulates virtual time spent.
func (c *Counters) AddBusy(d time.Duration) {
	c.mu.Lock()
	c.busy += d
	c.mu.Unlock()
}

// Snapshot is an immutable view of the counters.
type Snapshot struct {
	DeltaBytes   int64
	FullBytes    int64
	ControlBytes int64
	OutputBytes  int64
	Messages     int64
	DeltaSends   int64
	FullSends    int64
	Busy         time.Duration
}

// TotalBytes sums all payload bytes.
func (s Snapshot) TotalBytes() int64 {
	return s.DeltaBytes + s.FullBytes + s.ControlBytes + s.OutputBytes
}

// String renders a compact human-readable summary.
func (s Snapshot) String() string {
	return fmt.Sprintf("bytes: %d delta, %d full, %d control, %d output; msgs %d (%d delta, %d full sends)",
		s.DeltaBytes, s.FullBytes, s.ControlBytes, s.OutputBytes, s.Messages, s.DeltaSends, s.FullSends)
}

// Snapshot returns the current totals.
func (c *Counters) Snapshot() Snapshot {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Snapshot{
		DeltaBytes:   c.deltaBytes,
		FullBytes:    c.fullBytes,
		ControlBytes: c.controlBytes,
		OutputBytes:  c.outputBytes,
		Messages:     c.messages,
		DeltaSends:   c.deltaSends,
		FullSends:    c.fullSends,
		Busy:         c.busy,
	}
}

// Reset zeroes the counters.
func (c *Counters) Reset() {
	c.mu.Lock()
	c.deltaBytes, c.fullBytes, c.controlBytes, c.outputBytes = 0, 0, 0, 0
	c.messages, c.deltaSends, c.fullSends = 0, 0, 0
	c.busy = 0
	c.mu.Unlock()
}
