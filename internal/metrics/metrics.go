// Package metrics provides the byte, message and timing accounting shared by
// the client, the server and the experiment harness. The paper's evaluation
// reports total elapsed time per edit–submit–fetch cycle; the harness
// additionally reports the traffic breakdown that explains it (delta bytes
// vs. full bytes vs. control messages).
package metrics

import (
	"fmt"
	"reflect"
	"sync/atomic"
	"time"
)

// Counters aggregates transfer activity. The zero value is ready to use.
// All updates are atomic: counters sit on every message path, so they must
// never serialize concurrent sessions.
type Counters struct {
	deltaBytes   atomic.Int64
	fullBytes    atomic.Int64
	controlBytes atomic.Int64
	outputBytes  atomic.Int64
	messages     atomic.Int64
	deltaSends   atomic.Int64
	fullSends    atomic.Int64
	busyNanos    atomic.Int64

	reconnects    atomic.Int64
	retries       atomic.Int64
	fullFallbacks atomic.Int64
	droppedFrames atomic.Int64

	manifestBytes atomic.Int64
	chunkBytes    atomic.Int64
	manifestSends atomic.Int64
	chunkSends    atomic.Int64
	chunksAsked   atomic.Int64
	rehydrations  atomic.Int64

	peerForwards      atomic.Int64
	peerDeltaBytes    atomic.Int64
	peerManifestBytes atomic.Int64
	peerChunkBytes    atomic.Int64
	peerFullTransfers atomic.Int64
	deltaBytesSaved   atomic.Int64
	ownerMisses       atomic.Int64
	ringRebalances    atomic.Int64
	peerNegatives     atomic.Int64
}

// AddDelta records a delta transfer of n payload bytes.
func (c *Counters) AddDelta(n int) {
	c.deltaBytes.Add(int64(n))
	c.deltaSends.Add(1)
	c.messages.Add(1)
}

// AddFull records a full-content transfer of n payload bytes.
func (c *Counters) AddFull(n int) {
	c.fullBytes.Add(int64(n))
	c.fullSends.Add(1)
	c.messages.Add(1)
}

// AddControl records a control message of n payload bytes (notify, pull,
// ack, submit, status).
func (c *Counters) AddControl(n int) {
	c.controlBytes.Add(int64(n))
	c.messages.Add(1)
}

// AddOutput records delivered job output bytes.
func (c *Counters) AddOutput(n int) {
	c.outputBytes.Add(int64(n))
	c.messages.Add(1)
}

// AddBusy accumulates virtual time spent.
func (c *Counters) AddBusy(d time.Duration) {
	c.busyNanos.Add(int64(d))
}

// AddReconnect records one successful session re-establishment.
func (c *Counters) AddReconnect() { c.reconnects.Add(1) }

// AddRetry records one retried request attempt (after a transient failure).
func (c *Counters) AddRetry() { c.retries.Add(1) }

// AddFullFallback records a delta transfer that degraded to a full copy
// because its base was evicted or lost.
func (c *Counters) AddFullFallback() { c.fullFallbacks.Add(1) }

// AddDroppedFrames records frames lost by fault injection (filled in from
// link stats by harnesses that own the simulated network).
func (c *Counters) AddDroppedFrames(n int64) { c.droppedFrames.Add(n) }

// AddManifest records a chunk-manifest transfer whose refs and inline chunks
// total n payload bytes (protocol v3's delta-as-chunks answer to a pull).
func (c *Counters) AddManifest(n int) {
	c.manifestBytes.Add(int64(n))
	c.manifestSends.Add(1)
	c.messages.Add(1)
}

// AddChunkData records a chunk-data transfer of n payload bytes — the
// missing-chunks-only path that replaces whole-file retransmission.
func (c *Counters) AddChunkData(n int) {
	c.chunkBytes.Add(int64(n))
	c.chunkSends.Add(1)
	c.messages.Add(1)
}

// AddChunksRequested records n chunk hashes asked for via CHUNK_REQ.
func (c *Counters) AddChunksRequested(n int) { c.chunksAsked.Add(int64(n)) }

// AddRehydration records one file version completed by fetching only its
// missing chunks (an eviction or cold cache repaired without a full copy).
func (c *Counters) AddRehydration() { c.rehydrations.Add(1) }

// AddPeerForward records one file version served to (or from) a cluster
// peer as a delta or chunk manifest instead of a client pull; saved is the
// full-content byte count the peer transfer avoided re-sending (0 when
// unknown).
func (c *Counters) AddPeerForward(saved int) {
	c.peerForwards.Add(1)
	c.deltaBytesSaved.Add(int64(saved))
}

// AddPeerDelta records a peer-forwarded delta of n payload bytes.
func (c *Counters) AddPeerDelta(n int) {
	c.peerDeltaBytes.Add(int64(n))
	c.messages.Add(1)
}

// AddPeerManifest records a peer chunk manifest of n payload bytes.
func (c *Counters) AddPeerManifest(n int) {
	c.peerManifestBytes.Add(int64(n))
	c.messages.Add(1)
}

// AddPeerChunkData records peer-fetched chunk payload of n bytes.
func (c *Counters) AddPeerChunkData(n int) {
	c.peerChunkBytes.Add(int64(n))
	c.messages.Add(1)
}

// AddPeerFullTransfer records a full file body crossing a peer link. The
// peer protocol has no full-file frame, so this counter exists to prove a
// negative: it must stay zero, and the bench asserts it.
func (c *Counters) AddPeerFullTransfer() { c.peerFullTransfers.Add(1) }

// AddPeerNegative records a peer fetch the owner declined ("pull from the
// client yourself").
func (c *Counters) AddPeerNegative() { c.peerNegatives.Add(1) }

// AddOwnerMiss records a request routed to a file's ring owner that had to
// fall through to a successor because the owner was unreachable.
func (c *Counters) AddOwnerMiss() { c.ownerMisses.Add(1) }

// AddRingRebalance records one file fetch re-homed after a peer link died
// (cluster membership effectively changed for that flight).
func (c *Counters) AddRingRebalance() { c.ringRebalances.Add(1) }

// Snapshot is an immutable view of the counters. The cache and flow-control
// fields are filled in by holders that track them (the server); a bare
// Counters leaves them zero.
type Snapshot struct {
	DeltaBytes   int64
	FullBytes    int64
	ControlBytes int64
	OutputBytes  int64
	Messages     int64
	DeltaSends   int64
	FullSends    int64
	Busy         time.Duration

	// Cache efficacy for the same run (server-side).
	CacheHits      int64
	CacheMisses    int64
	CacheEvictions int64
	CacheRejected  int64

	// Flow control: pulls issued, deferred by policy, and coalesced into
	// another session's in-flight fetch.
	PullsIssued    int64
	PullsDeferred  int64
	PullsCoalesced int64

	// Fault tolerance: reconnects completed, request attempts retried,
	// delta transfers degraded to full copies, and frames lost by fault
	// injection.
	Reconnects    int64
	Retries       int64
	FullFallbacks int64
	DroppedFrames int64

	// Chunk transfer (protocol v3): manifest and chunk payload bytes,
	// frame counts, chunk hashes requested, and versions completed by
	// chunk-level rehydration instead of a full retransmit.
	ManifestBytes   int64
	ChunkBytes      int64
	ManifestSends   int64
	ChunkSends      int64
	ChunksRequested int64
	Rehydrations    int64

	// Cluster peering (protocol v5): versions forwarded between instances
	// as deltas or manifests, the peer payload byte breakdown, full bodies
	// crossing peer links (always zero by construction — recorded to prove
	// it), full-content bytes those forwards avoided, owner fall-throughs
	// on the client side, and flights re-homed after a peer died.
	PeerForwards      int64
	PeerDeltaBytes    int64
	PeerManifestBytes int64
	PeerChunkBytes    int64
	PeerFullTransfers int64
	PeerNegatives     int64
	DeltaBytesSaved   int64
	OwnerMisses       int64
	RingRebalances    int64

	// Ring heat (server-side fill-in): file-demand touches recorded by the
	// heat tracker — one per notify or job input examined. The per-file and
	// per-owner breakdown lives on the admin /clusterz surface; this total
	// makes fleet-wide demand summable like every other counter.
	FileTouches int64
}

// TotalBytes sums all payload bytes.
func (s Snapshot) TotalBytes() int64 {
	return s.DeltaBytes + s.FullBytes + s.ControlBytes + s.OutputBytes +
		s.ManifestBytes + s.ChunkBytes
}

// FileBytes sums the payload bytes of file-content transfers (delta, full,
// manifest and chunk frames) — the quantity chunk-level dedup reduces.
func (s Snapshot) FileBytes() int64 {
	return s.DeltaBytes + s.FullBytes + s.ManifestBytes + s.ChunkBytes
}

// String renders a compact human-readable summary.
func (s Snapshot) String() string {
	return fmt.Sprintf("bytes: %d delta, %d full, %d control, %d output; msgs %d (%d delta, %d full sends)",
		s.DeltaBytes, s.FullBytes, s.ControlBytes, s.OutputBytes, s.Messages, s.DeltaSends, s.FullSends)
}

// FaultString renders the fault-tolerance extension fields.
func (s Snapshot) FaultString() string {
	return fmt.Sprintf("faults: %d reconnects, %d retries, %d full fallbacks, %d dropped frames",
		s.Reconnects, s.Retries, s.FullFallbacks, s.DroppedFrames)
}

// CacheString renders the cache/flow extension fields.
func (s Snapshot) CacheString() string {
	return fmt.Sprintf("cache: %d hits, %d misses, %d evictions; pulls: %d issued, %d deferred, %d coalesced",
		s.CacheHits, s.CacheMisses, s.CacheEvictions, s.PullsIssued, s.PullsDeferred, s.PullsCoalesced)
}

// Merge returns the field-wise sum of two snapshots. Every Snapshot field
// is a monotonic total with send-side-only accounting on the peer paths, so
// summing across cluster members never double-counts a transfer; the admin
// /clusterz view uses this to read the fleet as one shadow cache.
// Implemented by reflection over the struct so a newly added counter can
// never be silently dropped from fleet sums.
func Merge(a, b Snapshot) Snapshot {
	va, vb := reflect.ValueOf(&a).Elem(), reflect.ValueOf(b)
	for i := 0; i < va.NumField(); i++ {
		f := va.Field(i)
		f.SetInt(f.Int() + vb.Field(i).Int())
	}
	return a
}

// Snapshot returns the current totals.
func (c *Counters) Snapshot() Snapshot {
	return Snapshot{
		DeltaBytes:   c.deltaBytes.Load(),
		FullBytes:    c.fullBytes.Load(),
		ControlBytes: c.controlBytes.Load(),
		OutputBytes:  c.outputBytes.Load(),
		Messages:     c.messages.Load(),
		DeltaSends:   c.deltaSends.Load(),
		FullSends:    c.fullSends.Load(),
		Busy:         time.Duration(c.busyNanos.Load()),

		Reconnects:    c.reconnects.Load(),
		Retries:       c.retries.Load(),
		FullFallbacks: c.fullFallbacks.Load(),
		DroppedFrames: c.droppedFrames.Load(),

		ManifestBytes:   c.manifestBytes.Load(),
		ChunkBytes:      c.chunkBytes.Load(),
		ManifestSends:   c.manifestSends.Load(),
		ChunkSends:      c.chunkSends.Load(),
		ChunksRequested: c.chunksAsked.Load(),
		Rehydrations:    c.rehydrations.Load(),

		PeerForwards:      c.peerForwards.Load(),
		PeerDeltaBytes:    c.peerDeltaBytes.Load(),
		PeerManifestBytes: c.peerManifestBytes.Load(),
		PeerChunkBytes:    c.peerChunkBytes.Load(),
		PeerFullTransfers: c.peerFullTransfers.Load(),
		PeerNegatives:     c.peerNegatives.Load(),
		DeltaBytesSaved:   c.deltaBytesSaved.Load(),
		OwnerMisses:       c.ownerMisses.Load(),
		RingRebalances:    c.ringRebalances.Load(),
	}
}

// Reset zeroes the counters.
func (c *Counters) Reset() {
	c.deltaBytes.Store(0)
	c.fullBytes.Store(0)
	c.controlBytes.Store(0)
	c.outputBytes.Store(0)
	c.messages.Store(0)
	c.deltaSends.Store(0)
	c.fullSends.Store(0)
	c.busyNanos.Store(0)
	c.reconnects.Store(0)
	c.retries.Store(0)
	c.fullFallbacks.Store(0)
	c.droppedFrames.Store(0)
	c.manifestBytes.Store(0)
	c.chunkBytes.Store(0)
	c.manifestSends.Store(0)
	c.chunkSends.Store(0)
	c.chunksAsked.Store(0)
	c.rehydrations.Store(0)
	c.peerForwards.Store(0)
	c.peerDeltaBytes.Store(0)
	c.peerManifestBytes.Store(0)
	c.peerChunkBytes.Store(0)
	c.peerFullTransfers.Store(0)
	c.peerNegatives.Store(0)
	c.deltaBytesSaved.Store(0)
	c.ownerMisses.Store(0)
	c.ringRebalances.Store(0)
}
