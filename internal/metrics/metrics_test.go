package metrics

import (
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCountersAccumulate(t *testing.T) {
	var c Counters
	c.AddDelta(100)
	c.AddDelta(50)
	c.AddFull(1000)
	c.AddControl(10)
	c.AddOutput(30)
	c.AddBusy(2 * time.Second)

	s := c.Snapshot()
	if s.DeltaBytes != 150 || s.FullBytes != 1000 || s.ControlBytes != 10 || s.OutputBytes != 30 {
		t.Fatalf("snapshot = %+v", s)
	}
	if s.Messages != 5 || s.DeltaSends != 2 || s.FullSends != 1 {
		t.Fatalf("message counts = %+v", s)
	}
	if s.TotalBytes() != 1190 {
		t.Fatalf("TotalBytes = %d, want 1190", s.TotalBytes())
	}
	if s.Busy != 2*time.Second {
		t.Fatalf("Busy = %v", s.Busy)
	}
}

func TestReset(t *testing.T) {
	var c Counters
	c.AddDelta(5)
	c.AddBusy(time.Second)
	c.Reset()
	s := c.Snapshot()
	if s.TotalBytes() != 0 || s.Messages != 0 || s.Busy != 0 {
		t.Fatalf("after reset: %+v", s)
	}
	// Counter must remain usable after Reset.
	c.AddFull(7)
	if c.Snapshot().FullBytes != 7 {
		t.Fatal("counter unusable after Reset")
	}
}

func TestString(t *testing.T) {
	var c Counters
	c.AddDelta(1)
	got := c.Snapshot().String()
	if !strings.Contains(got, "1 delta") {
		t.Fatalf("String = %q", got)
	}
}

func TestConcurrentUpdates(t *testing.T) {
	var c Counters
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.AddDelta(1)
				c.AddControl(1)
			}
		}()
	}
	wg.Wait()
	s := c.Snapshot()
	if s.DeltaBytes != 8000 || s.ControlBytes != 8000 || s.Messages != 16000 {
		t.Fatalf("lost updates: %+v", s)
	}
}

// TestMergeSumsEveryField fills every Snapshot field with a distinct value
// via reflection and asserts Merge doubles all of them — so a counter added
// later cannot silently fall out of fleet sums.
func TestMergeSumsEveryField(t *testing.T) {
	var a Snapshot
	v := reflect.ValueOf(&a).Elem()
	for i := 0; i < v.NumField(); i++ {
		v.Field(i).SetInt(int64(i + 1))
	}
	m := Merge(a, a)
	mv := reflect.ValueOf(m)
	for i := 0; i < mv.NumField(); i++ {
		if got, want := mv.Field(i).Int(), int64(2*(i+1)); got != want {
			t.Errorf("field %s: merged = %d, want %d", mv.Type().Field(i).Name, got, want)
		}
	}
}
