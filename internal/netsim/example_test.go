package netsim_test

import (
	"fmt"
	"log"
	"time"

	"shadowedit/internal/netsim"
)

// Example shows the virtual clock: shipping 12 KB over a 9600 bps line
// takes ten virtual seconds and essentially zero wall time.
func Example() {
	nw := netsim.New()
	ws := nw.Host("workstation")
	super := nw.Host("super")
	nw.Connect(ws, super, netsim.Spec{BitsPerSecond: 9600, OverheadBytes: 0})

	lst, err := super.Listen(1)
	if err != nil {
		log.Fatal(err)
	}
	defer lst.Close()
	received := make(chan int, 1)
	go func() {
		conn, err := lst.Accept()
		if err != nil {
			return
		}
		msg, err := conn.Recv()
		if err != nil {
			return
		}
		received <- len(msg)
	}()

	conn, err := ws.Dial("super", 1)
	if err != nil {
		log.Fatal(err)
	}
	defer conn.Close()
	if err := conn.Send(make([]byte, 12000)); err != nil {
		log.Fatal(err)
	}
	n := <-received
	fmt.Printf("delivered %d bytes; supercomputer clock: %v\n",
		n, super.Now().Round(time.Second))
	// Output:
	// delivered 12000 bytes; supercomputer clock: 10s
}
