// Package netsim is a discrete virtual-time network simulator.
//
// The paper evaluates shadow editing over two real long-haul networks: the
// Cypress network (9600 baud lines) and the ARPANET (56 kbps). Reproducing
// those experiments in real time would take minutes per data point, so this
// package models the quantities that dominated the paper's measurements —
// serialization delay (bytes × 8 / bandwidth), propagation latency, and
// per-message protocol overhead — under a virtual clock that advances only
// when simulated work happens.
//
// The model: every Host owns a virtual clock. Messages sent on a Conn carry a
// virtual arrival time computed from the sender's clock, the link's busy
// state (transmissions on one direction of a link serialize), the message
// size, and the link's bandwidth and latency. Receiving a message advances
// the receiver's clock to the arrival time. Sequential request–response
// protocols therefore accumulate exactly the round trips and transmission
// times they would on the real link, while wall-clock time stays in
// microseconds.
//
// Determinism is the load-bearing property: clocks advance only on
// simulated work, and fault injection draws from a seeded per-link stream
// evaluated at virtual send times, so a run is a pure function of its
// configuration and seed. That is what lets the figure harness assert
// byte-identical sweeps, the chaos gauntlet replay failures exactly, and
// the server benchmark report virtual-time latency percentiles that do not
// wobble with goroutine scheduling (see OBSERVABILITY.md). The one caveat:
// a host's clock is shared by everything that host does, so *concurrent*
// sessions against one server host see interleaving-dependent virtual
// times — deterministic measurements replay each session alone.
package netsim

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// Spec describes a link's characteristics.
type Spec struct {
	// BitsPerSecond is the line speed (9600 for Cypress, 56_000 for
	// ARPANET).
	BitsPerSecond int64
	// Latency is the one-way propagation delay.
	Latency time.Duration
	// OverheadBytes is charged per message for lower-layer framing
	// (TCP/IP headers and the like).
	OverheadBytes int
}

// Standard link specs used by the experiments.
var (
	// Cypress models the 9600 baud Cypress network of the paper's
	// Figure 1 (dial-up capillary connections to the Internet).
	Cypress = Spec{BitsPerSecond: 9600, Latency: 80 * time.Millisecond, OverheadBytes: 40}
	// ARPANET models the 56 kbps ARPANET path from Purdue to the
	// University of Illinois of Figures 2 and 3 ("a supercomputing site
	// close to Purdue"): high line speed, short propagation. The latency
	// is calibrated so the fixed per-cycle cost matches the paper's
	// small-file speedups (Figure 3's 10k column).
	ARPANET = Spec{BitsPerSecond: 56000, Latency: 18 * time.Millisecond, OverheadBytes: 40}
	// LAN models a fast local network, useful for tests that should not
	// be dominated by link time.
	LAN = Spec{BitsPerSecond: 10_000_000, Latency: time.Millisecond, OverheadBytes: 40}
)

// TransmitTime returns the serialization delay for a payload of n bytes.
func (s Spec) TransmitTime(n int) time.Duration {
	bits := 8 * int64(n+s.OverheadBytes)
	return time.Duration(bits * int64(time.Second) / s.BitsPerSecond)
}

// Network is a collection of hosts joined by point-to-point links.
type Network struct {
	mu    sync.Mutex
	hosts map[string]*Host
	links map[linkKey]*Link
}

type linkKey struct{ a, b string }

func keyFor(a, b string) linkKey {
	if a > b {
		a, b = b, a
	}
	return linkKey{a: a, b: b}
}

// New returns an empty network.
func New() *Network {
	return &Network{
		hosts: make(map[string]*Host),
		links: make(map[linkKey]*Link),
	}
}

// Host adds (or returns the existing) host with the given name.
func (n *Network) Host(name string) *Host {
	n.mu.Lock()
	defer n.mu.Unlock()
	if h, ok := n.hosts[name]; ok {
		return h
	}
	h := &Host{name: name, net: n, listeners: make(map[int]*Listener)}
	n.hosts[name] = h
	return h
}

// Connect joins two hosts with a link of the given spec. Both directions
// share the spec but serialize independently (full duplex). Connecting the
// same pair again replaces the spec.
func (n *Network) Connect(a, b *Host, spec Spec) *Link {
	n.mu.Lock()
	defer n.mu.Unlock()
	l := &Link{spec: spec}
	n.links[keyFor(a.name, b.name)] = l
	return l
}

func (n *Network) link(a, b string) (*Link, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	l, ok := n.links[keyFor(a, b)]
	return l, ok
}

// LinkBetween returns the link joining two hosts, if any — for inspecting
// stats or injecting outages.
func (n *Network) LinkBetween(a, b string) (*Link, bool) {
	return n.link(a, b)
}

// Host is a machine with a virtual clock.
type Host struct {
	name string
	net  *Network

	mu        sync.Mutex
	now       time.Duration
	listeners map[int]*Listener
}

// Name returns the host name.
func (h *Host) Name() string { return h.name }

// Now returns the host's virtual time.
func (h *Host) Now() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.now
}

// Process advances the host's virtual clock by d, modeling local computation
// (editing, diffing, job execution).
func (h *Host) Process(d time.Duration) {
	if d <= 0 {
		return
	}
	h.mu.Lock()
	h.now += d
	h.mu.Unlock()
}

// advanceTo moves the clock forward to t (never backward).
func (h *Host) advanceTo(t time.Duration) {
	h.mu.Lock()
	if t > h.now {
		h.now = t
	}
	h.mu.Unlock()
}

// Errors returned by the simulator.
var (
	// ErrNoRoute reports that no link joins the two hosts.
	ErrNoRoute = errors.New("netsim: no link between hosts")
	// ErrClosed reports use of a closed connection or listener.
	ErrClosed = errors.New("netsim: closed")
	// ErrRefused reports a dial to a port nobody listens on.
	ErrRefused = errors.New("netsim: connection refused")
)

// Listen starts accepting connections on the given port of the host.
func (h *Host) Listen(port int) (*Listener, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if _, busy := h.listeners[port]; busy {
		return nil, fmt.Errorf("netsim: %s port %d already in use", h.name, port)
	}
	l := &Listener{
		host:    h,
		port:    port,
		backlog: make(chan *Conn, 16),
		closed:  make(chan struct{}),
	}
	h.listeners[port] = l
	return l, nil
}

func (h *Host) listener(port int) (*Listener, bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	l, ok := h.listeners[port]
	return l, ok
}

func (h *Host) dropListener(port int) {
	h.mu.Lock()
	delete(h.listeners, port)
	h.mu.Unlock()
}

// Path finds the shortest link path (fewest hops) between two hosts, for
// multi-hop connections — e.g. a workstation reaching a supercomputer over
// a Cypress capillary link into an ARPANET backbone. Each returned hop is a
// link plus the direction of travel on it.
func (n *Network) Path(from, to string) ([]Hop, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, ok := n.hosts[from]; !ok {
		return nil, fmt.Errorf("%w: unknown host %q", ErrNoRoute, from)
	}
	if _, ok := n.hosts[to]; !ok {
		return nil, fmt.Errorf("%w: unknown host %q", ErrNoRoute, to)
	}
	if from == to {
		return nil, fmt.Errorf("%w: %s to itself", ErrNoRoute, from)
	}
	// Adjacency from the link table.
	adj := make(map[string][]string)
	for k := range n.links {
		adj[k.a] = append(adj[k.a], k.b)
		adj[k.b] = append(adj[k.b], k.a)
	}
	// BFS.
	prev := map[string]string{from: from}
	queue := []string{from}
	for len(queue) > 0 && prev[to] == "" {
		cur := queue[0]
		queue = queue[1:]
		for _, next := range adj[cur] {
			if _, seen := prev[next]; seen {
				continue
			}
			prev[next] = cur
			queue = append(queue, next)
		}
	}
	if _, ok := prev[to]; !ok {
		return nil, fmt.Errorf("%w: %s <-> %s", ErrNoRoute, from, to)
	}
	// Walk back and build hops.
	var rev []string
	for cur := to; cur != from; cur = prev[cur] {
		rev = append(rev, cur)
	}
	hops := make([]Hop, 0, len(rev))
	cur := from
	for i := len(rev) - 1; i >= 0; i-- {
		next := rev[i]
		l := n.links[keyFor(cur, next)]
		hops = append(hops, Hop{Link: l, Dir: dirBetween(cur, next)})
		cur = next
	}
	return hops, nil
}

// dirBetween gives the direction index for travel from a to b on their link
// (links store per-direction state keyed by lexical host order).
func dirBetween(from, to string) int {
	if from < to {
		return 0
	}
	return 1
}

// Dial opens a connection from h to the named host and port, routing over
// the fewest-hop link path (each intermediate hop stores and forwards,
// paying its own serialization and latency). It costs one round trip of
// virtual time, like a TCP handshake.
func (h *Host) Dial(remote string, port int) (*Conn, error) {
	h.net.mu.Lock()
	rh, ok := h.net.hosts[remote]
	h.net.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("%w: unknown host %q", ErrNoRoute, remote)
	}
	path, err := h.net.Path(h.name, remote)
	if err != nil {
		return nil, err
	}
	lst, ok := rh.listener(port)
	if !ok {
		return nil, fmt.Errorf("%w: %s:%d", ErrRefused, remote, port)
	}

	local, peer := newConnPath(h, rh, path)
	// Handshake: SYN out, ACK back — one RTT on the virtual clock.
	if err := local.send(nil, true); err != nil {
		return nil, err
	}
	select {
	case lst.backlog <- peer:
	default:
		local.Close()
		return nil, fmt.Errorf("%w: %s:%d backlog full", ErrRefused, remote, port)
	}
	if _, err := local.recvControl(); err != nil {
		_ = local.Close()
		return nil, fmt.Errorf("netsim: handshake: %w", err)
	}
	return local, nil
}

// Listener accepts simulated connections.
type Listener struct {
	host    *Host
	port    int
	backlog chan *Conn

	closeOnce sync.Once
	closed    chan struct{}
}

// Accept blocks until a connection arrives, completing the handshake. A
// handshake that fails — a fault dropped the SYN or ACK, or the line
// flapped — costs that one connection, not the listener: real accept loops
// survive failed handshakes, and so must simulated ones.
func (l *Listener) Accept() (*Conn, error) {
	for {
		select {
		case c := <-l.backlog:
			// Consume the SYN (advances our clock) and reply.
			if _, err := c.recvControl(); err != nil {
				_ = c.Close()
				continue
			}
			if err := c.send(nil, true); err != nil {
				_ = c.Close()
				continue
			}
			return c, nil
		case <-l.closed:
			return nil, ErrClosed
		}
	}
}

// Close stops the listener.
func (l *Listener) Close() error {
	l.closeOnce.Do(func() {
		close(l.closed)
		l.host.dropListener(l.port)
	})
	return nil
}

// Addr returns "host:port".
func (l *Listener) Addr() string { return fmt.Sprintf("%s:%d", l.host.name, l.port) }
