package netsim

import (
	"errors"
	"io"
	"sync"
	"time"
)

// Link is one point-to-point line. Each direction serializes its own
// transmissions (full duplex): a message cannot begin transmitting until the
// previous message on that direction has finished.
type Link struct {
	spec Spec

	mu        sync.Mutex
	busyUntil [2]time.Duration // per direction
	bytes     [2]int64
	messages  [2]int64
	down      bool
	faults    *faultState // nil unless SetFaults installed an active spec
}

// Spec returns the link's characteristics.
func (l *Link) Spec() Spec { return l.spec }

// ErrLinkDown reports a transmission attempt over a failed line.
var ErrLinkDown = errors.New("netsim: link down")

// SetDown fails or heals the line. While down, every Send over the link
// returns ErrLinkDown — modeling a long-haul line outage. Connections are
// not torn down: when the line heals, existing connections work again (the
// transport is reliable; only the line below it failed).
func (l *Link) SetDown(down bool) {
	l.mu.Lock()
	l.down = down
	l.mu.Unlock()
}

// Down reports whether the line is currently failed.
func (l *Link) Down() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.down
}

// transmit schedules a message of n bytes in the given direction starting no
// earlier than now, returning its virtual arrival time at the far end.
func (l *Link) transmit(dir int, now time.Duration, n int) (time.Duration, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.down {
		return 0, ErrLinkDown
	}
	var extra time.Duration
	var drop bool
	if l.faults != nil {
		var err error
		extra, drop, err = l.faults.inject(now)
		if err != nil {
			return 0, err
		}
	}
	start := now
	if l.busyUntil[dir] > start {
		start = l.busyUntil[dir]
	}
	done := start + l.spec.TransmitTime(n)
	l.busyUntil[dir] = done
	l.bytes[dir] += int64(n)
	l.messages[dir]++
	if drop {
		// The frame occupied the line and was lost at the far end.
		return 0, ErrFrameDropped
	}
	return done + l.spec.Latency + extra, nil
}

// Stats reports total payload bytes and messages carried, summed over both
// directions.
func (l *Link) Stats() (bytes, messages int64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.bytes[0] + l.bytes[1], l.messages[0] + l.messages[1]
}

// message is one simulated datagram with its virtual arrival time.
type message struct {
	payload []byte
	arrival time.Duration
	control bool // handshake marker, not delivered to Recv
}

// Hop is one step of a multi-hop route: a link and the direction of travel
// on it.
type Hop struct {
	Link *Link
	Dir  int
}

// Conn is one end of a simulated reliable message connection, possibly
// spanning several links (store-and-forward at each intermediate hop).
//
// Send and Recv move whole messages (the shadow protocol is message
// oriented); the wire package adapts this to its frame codec. Virtual time
// semantics: Send stamps the message using the sender's clock and every
// link along the path; Recv advances the receiver's clock to the arrival
// time.
type Conn struct {
	local  *Host
	remote *Host
	path   []Hop

	in  chan message
	out chan message

	closeOnce sync.Once
	closeCh   chan struct{}
	peer      *Conn
}

// connBuffer is the per-direction in-flight message capacity. The simulated
// transport never drops; senders block when far ahead of the receiver.
const connBuffer = 256

// newConnPath wires two connection halves together over a link path.
func newConnPath(a, b *Host, path []Hop) (*Conn, *Conn) {
	reverse := make([]Hop, len(path))
	for i, hop := range path {
		reverse[len(path)-1-i] = Hop{Link: hop.Link, Dir: 1 - hop.Dir}
	}
	ab := make(chan message, connBuffer)
	ba := make(chan message, connBuffer)
	ca := &Conn{local: a, remote: b, path: path, in: ba, out: ab, closeCh: make(chan struct{})}
	cb := &Conn{local: b, remote: a, path: reverse, in: ab, out: ba, closeCh: make(chan struct{})}
	ca.peer = cb
	cb.peer = ca
	return ca, cb
}

// LocalHost returns the host owning this end.
func (c *Conn) LocalHost() *Host { return c.local }

// RemoteHost returns the host at the far end.
func (c *Conn) RemoteHost() *Host { return c.remote }

// Now returns the local host's current virtual time.
func (c *Conn) Now() time.Duration { return c.local.Now() }

// Send transmits payload to the peer, consuming virtual transmission time on
// the link. The payload is copied; the caller may reuse it.
func (c *Conn) Send(payload []byte) error {
	return c.sendFrom(payload, c.local.Now(), false)
}

// SendScheduled transmits payload as if handed to the line at virtual time
// start. An asynchronous writer uses it to preserve the virtual moment a
// message was queued: the local clock may have advanced (the receive side
// runs concurrently) by the time the writer drains the queue. Per-direction
// line serialization makes an early start safe — transmission begins no
// earlier than the previous message on the direction finished.
func (c *Conn) SendScheduled(payload []byte, start time.Duration) error {
	return c.sendFrom(payload, start, false)
}

func (c *Conn) send(payload []byte, control bool) error {
	return c.sendFrom(payload, c.local.Now(), control)
}

func (c *Conn) sendFrom(payload []byte, start time.Duration, control bool) error {
	select {
	case <-c.closeCh:
		return ErrClosed
	case <-c.peer.closeCh:
		return ErrClosed
	default:
	}
	// Store and forward: each hop serializes the message on its own
	// line, starting no earlier than the previous hop delivered it.
	arrival := start
	for _, hop := range c.path {
		var err error
		arrival, err = hop.Link.transmit(hop.Dir, arrival, len(payload))
		if err != nil {
			if errors.Is(err, ErrFrameDropped) {
				// The stream lost a frame it cannot recover: both ends
				// see the connection die, like a TCP reset. Recovery is
				// the session layer's reconnect path.
				c.reset()
				return ErrReset
			}
			return err
		}
	}
	msg := message{
		payload: append([]byte(nil), payload...),
		arrival: arrival,
		control: control,
	}
	select {
	case c.out <- msg:
		return nil
	case <-c.peer.closeCh:
		return ErrClosed
	}
}

// Recv blocks for the next message, advances the local virtual clock to its
// arrival time and returns the payload. It returns io.EOF once the peer has
// closed and all in-flight messages are drained.
func (c *Conn) Recv() ([]byte, error) {
	for {
		m, err := c.recvRaw()
		if err != nil {
			return nil, err
		}
		if m.control {
			continue
		}
		return m.payload, nil
	}
}

// recvControl receives exactly one message, control or not (used by the
// handshake).
func (c *Conn) recvControl() (message, error) {
	return c.recvRaw()
}

func (c *Conn) recvRaw() (message, error) {
	select {
	case m := <-c.in:
		c.local.advanceTo(m.arrival)
		return m, nil
	default:
	}
	select {
	case m := <-c.in:
		c.local.advanceTo(m.arrival)
		return m, nil
	case <-c.closeCh:
		return message{}, ErrClosed
	case <-c.peer.closeCh:
		// Drain what was already in flight before reporting EOF.
		select {
		case m := <-c.in:
			c.local.advanceTo(m.arrival)
			return m, nil
		default:
			return message{}, io.EOF
		}
	}
}

// Close shuts down this end. The peer's pending Recv calls drain in-flight
// messages, then report io.EOF.
func (c *Conn) Close() error {
	c.closeOnce.Do(func() { close(c.closeCh) })
	return nil
}

// reset tears down both ends at once: a fault consumed a frame, so neither
// side can trust the stream any longer.
func (c *Conn) reset() {
	c.closeOnce.Do(func() { close(c.closeCh) })
	c.peer.closeOnce.Do(func() { close(c.peer.closeCh) })
}
