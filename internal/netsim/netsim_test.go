package netsim

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"sync"
	"testing"
	"time"
)

// pairOn builds a network of two hosts joined by spec and returns an
// established connection (client end, server end).
func pairOn(t *testing.T, spec Spec) (*Conn, *Conn, *Host, *Host) {
	t.Helper()
	nw := New()
	a, b := nw.Host("client"), nw.Host("super")
	nw.Connect(a, b, spec)
	lst, err := b.Listen(7)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { lst.Close() })

	type res struct {
		c   *Conn
		err error
	}
	acc := make(chan res, 1)
	go func() {
		c, err := lst.Accept()
		acc <- res{c: c, err: err}
	}()
	client, err := a.Dial("super", 7)
	if err != nil {
		t.Fatal(err)
	}
	r := <-acc
	if r.err != nil {
		t.Fatal(r.err)
	}
	return client, r.c, a, b
}

func TestTransmitTime(t *testing.T) {
	tests := []struct {
		name string
		spec Spec
		n    int
		want time.Duration
	}{
		{
			name: "cypress 1200 bytes/sec",
			spec: Spec{BitsPerSecond: 9600},
			n:    1200,
			want: time.Second,
		},
		{
			name: "overhead charged",
			spec: Spec{BitsPerSecond: 8000, OverheadBytes: 100},
			n:    900,
			want: time.Second,
		},
		{
			name: "zero payload still pays overhead",
			spec: Spec{BitsPerSecond: 8000, OverheadBytes: 40},
			n:    0,
			want: 40 * time.Millisecond,
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.spec.TransmitTime(tt.n); got != tt.want {
				t.Fatalf("TransmitTime(%d) = %v, want %v", tt.n, got, tt.want)
			}
		})
	}
}

func TestRoundTripAdvancesVirtualTime(t *testing.T) {
	spec := Spec{BitsPerSecond: 9600, Latency: 100 * time.Millisecond}
	client, server, ch, _ := pairOn(t, spec)

	// After the handshake the client has paid one round trip.
	if now := ch.Now(); now < 2*spec.Latency {
		t.Fatalf("post-handshake client clock %v, want >= %v", now, 2*spec.Latency)
	}
	start := ch.Now()

	payload := make([]byte, 1200) // 1 second at 9600 bps
	done := make(chan error, 1)
	go func() {
		msg, err := server.Recv()
		if err != nil {
			done <- err
			return
		}
		done <- server.Send(msg[:10])
	}()
	if err := client.Send(payload); err != nil {
		t.Fatal(err)
	}
	if _, err := client.Recv(); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}

	elapsed := ch.Now() - start
	// 1s transmit + 2×100ms latency + small reply transmit.
	if elapsed < 1200*time.Millisecond || elapsed > 1350*time.Millisecond {
		t.Fatalf("round trip virtual time %v, want ~1.2s", elapsed)
	}
}

func TestVirtualTimeScalesWithBandwidth(t *testing.T) {
	elapsedAt := func(spec Spec) time.Duration {
		client, server, ch, _ := pairOn(t, spec)
		start := ch.Now()
		go func() {
			msg, _ := server.Recv()
			_ = server.Send(msg[:1])
		}()
		if err := client.Send(make([]byte, 56000/8)); err != nil {
			t.Fatal(err)
		}
		if _, err := client.Recv(); err != nil {
			t.Fatal(err)
		}
		return ch.Now() - start
	}
	slow := elapsedAt(Cypress)
	fast := elapsedAt(ARPANET)
	ratio := float64(slow) / float64(fast)
	// Bandwidth ratio is 5.83×; latency dampens it a little.
	if ratio < 3 || ratio > 6.5 {
		t.Fatalf("cypress/arpanet time ratio = %.2f, want ~5", ratio)
	}
}

func TestLinkSerializesSameDirection(t *testing.T) {
	// Two back-to-back sends must serialize: the second arrives after
	// twice the transmit time.
	spec := Spec{BitsPerSecond: 9600, Latency: 0}
	client, server, _, sh := pairOn(t, spec)

	if err := client.Send(make([]byte, 1200)); err != nil { // 1s
		t.Fatal(err)
	}
	if err := client.Send(make([]byte, 1200)); err != nil { // +1s
		t.Fatal(err)
	}
	if _, err := server.Recv(); err != nil {
		t.Fatal(err)
	}
	if _, err := server.Recv(); err != nil {
		t.Fatal(err)
	}
	if now := sh.Now(); now < 2*time.Second {
		t.Fatalf("server clock after two 1s sends = %v, want >= 2s", now)
	}
}

func TestFullDuplexDirectionsIndependent(t *testing.T) {
	spec := Spec{BitsPerSecond: 9600, Latency: 0}
	client, server, ch, sh := pairOn(t, spec)
	base := ch.Now()

	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		_ = client.Send(make([]byte, 1200))
	}()
	go func() {
		defer wg.Done()
		_ = server.Send(make([]byte, 1200))
	}()
	wg.Wait()
	if _, err := client.Recv(); err != nil {
		t.Fatal(err)
	}
	if _, err := server.Recv(); err != nil {
		t.Fatal(err)
	}
	// Each direction pays ~1s; they must not sum to 2s on either clock.
	for name, h := range map[string]*Host{"client": ch, "server": sh} {
		if d := h.Now() - base; d > 1500*time.Millisecond {
			t.Errorf("%s clock advanced %v, want ~1s (directions must not serialize)", name, d)
		}
	}
}

func TestProcessAdvancesClock(t *testing.T) {
	nw := New()
	h := nw.Host("x")
	h.Process(3 * time.Second)
	if h.Now() != 3*time.Second {
		t.Fatalf("Now = %v, want 3s", h.Now())
	}
	h.Process(-time.Second)
	if h.Now() != 3*time.Second {
		t.Fatalf("negative Process moved the clock: %v", h.Now())
	}
}

func TestRecvAfterCloseDrainsThenEOF(t *testing.T) {
	client, server, _, _ := pairOn(t, LAN)
	if err := client.Send([]byte("one")); err != nil {
		t.Fatal(err)
	}
	if err := client.Send([]byte("two")); err != nil {
		t.Fatal(err)
	}
	client.Close()

	for _, want := range []string{"one", "two"} {
		got, err := server.Recv()
		if err != nil {
			t.Fatalf("Recv: %v", err)
		}
		if string(got) != want {
			t.Fatalf("Recv = %q, want %q", got, want)
		}
	}
	if _, err := server.Recv(); err != io.EOF {
		t.Fatalf("Recv after drain = %v, want io.EOF", err)
	}
	if err := server.Send([]byte("x")); !errors.Is(err, ErrClosed) {
		t.Fatalf("Send to closed peer = %v, want ErrClosed", err)
	}
}

func TestDialErrors(t *testing.T) {
	nw := New()
	a := nw.Host("a")
	b := nw.Host("b")

	if _, err := a.Dial("missing", 1); !errors.Is(err, ErrNoRoute) {
		t.Errorf("dial unknown host = %v, want ErrNoRoute", err)
	}
	if _, err := a.Dial("b", 1); !errors.Is(err, ErrNoRoute) {
		t.Errorf("dial unlinked host = %v, want ErrNoRoute", err)
	}
	nw.Connect(a, b, LAN)
	if _, err := a.Dial("b", 1); !errors.Is(err, ErrRefused) {
		t.Errorf("dial closed port = %v, want ErrRefused", err)
	}
}

func TestListenPortConflict(t *testing.T) {
	nw := New()
	h := nw.Host("h")
	l, err := h.Listen(9)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.Listen(9); err == nil {
		t.Fatal("second Listen on same port succeeded")
	}
	l.Close()
	l2, err := h.Listen(9)
	if err != nil {
		t.Fatalf("Listen after Close: %v", err)
	}
	l2.Close()
}

func TestListenerCloseUnblocksAccept(t *testing.T) {
	nw := New()
	h := nw.Host("h")
	nw.Connect(h, nw.Host("other"), LAN)
	l, err := h.Listen(5)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := l.Accept()
		done <- err
	}()
	l.Close()
	select {
	case err := <-done:
		if !errors.Is(err, ErrClosed) {
			t.Fatalf("Accept after Close = %v, want ErrClosed", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Accept did not unblock on Close")
	}
}

func TestLinkStats(t *testing.T) {
	nw := New()
	a, b := nw.Host("a"), nw.Host("b")
	link := nw.Connect(a, b, LAN)
	lst, err := b.Listen(1)
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		c, err := lst.Accept()
		if err != nil {
			return
		}
		for {
			if _, err := c.Recv(); err != nil {
				return
			}
		}
	}()
	c, err := a.Dial("b", 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Send(make([]byte, 100)); err != nil {
		t.Fatal(err)
	}
	if err := c.Send(make([]byte, 200)); err != nil {
		t.Fatal(err)
	}
	bytes, msgs := link.Stats()
	if bytes != 300 {
		t.Errorf("link bytes = %d, want 300 (control frames carry no payload)", bytes)
	}
	if msgs < 4 { // 2 data + 2 handshake
		t.Errorf("link messages = %d, want >= 4", msgs)
	}
}

func TestManyConnectionsConcurrently(t *testing.T) {
	nw := New()
	server := nw.Host("server")
	lst, err := server.Listen(80)
	if err != nil {
		t.Fatal(err)
	}
	defer lst.Close()

	go func() {
		for {
			c, err := lst.Accept()
			if err != nil {
				return
			}
			go func() {
				for {
					msg, err := c.Recv()
					if err != nil {
						return
					}
					if err := c.Send(msg); err != nil {
						return
					}
				}
			}()
		}
	}()

	const clients = 8
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for i := 0; i < clients; i++ {
		h := nw.Host(fmt.Sprintf("c%d", i))
		nw.Connect(h, server, LAN)
		wg.Add(1)
		go func(h *Host, i int) {
			defer wg.Done()
			c, err := h.Dial("server", 80)
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			for k := 0; k < 20; k++ {
				msg := []byte(fmt.Sprintf("m-%d-%d", i, k))
				if err := c.Send(msg); err != nil {
					errs <- err
					return
				}
				got, err := c.Recv()
				if err != nil {
					errs <- err
					return
				}
				if string(got) != string(msg) {
					errs <- fmt.Errorf("echo mismatch: %q != %q", got, msg)
					return
				}
			}
		}(h, i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestHostIdempotent(t *testing.T) {
	nw := New()
	if nw.Host("x") != nw.Host("x") {
		t.Fatal("Host(x) returned different hosts")
	}
}

func TestSendCopiesPayload(t *testing.T) {
	client, server, _, _ := pairOn(t, LAN)
	buf := []byte("hello")
	if err := client.Send(buf); err != nil {
		t.Fatal(err)
	}
	buf[0] = 'X'
	got, err := server.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "hello" {
		t.Fatalf("Recv = %q, want %q (Send must copy)", got, "hello")
	}
}

func TestLinkOutageAndHeal(t *testing.T) {
	nw := New()
	a, b := nw.Host("a"), nw.Host("b")
	link := nw.Connect(a, b, LAN)
	lst, err := b.Listen(1)
	if err != nil {
		t.Fatal(err)
	}
	defer lst.Close()
	go func() {
		c, err := lst.Accept()
		if err != nil {
			return
		}
		for {
			msg, err := c.Recv()
			if err != nil {
				return
			}
			_ = c.Send(msg)
		}
	}()
	c, err := a.Dial("b", 1)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Send([]byte("before")); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Recv(); err != nil {
		t.Fatal(err)
	}

	link.SetDown(true)
	if !link.Down() {
		t.Fatal("Down() false after SetDown(true)")
	}
	if err := c.Send([]byte("during")); !errors.Is(err, ErrLinkDown) {
		t.Fatalf("Send over failed line = %v, want ErrLinkDown", err)
	}
	// Dialing across the failed line also fails.
	if _, err := a.Dial("b", 1); !errors.Is(err, ErrLinkDown) {
		t.Fatalf("Dial over failed line = %v, want ErrLinkDown", err)
	}

	link.SetDown(false)
	if err := c.Send([]byte("after")); err != nil {
		t.Fatalf("Send after heal: %v", err)
	}
	got, err := c.Recv()
	if err != nil || string(got) != "after" {
		t.Fatalf("echo after heal = %q, %v", got, err)
	}
}

func TestPropertyClockMonotoneUnderRandomTraffic(t *testing.T) {
	// Random message sizes and directions: every host's virtual clock
	// only moves forward, and a message's arrival never precedes the
	// send-time plus its own transmission+latency.
	nw := New()
	a, b := nw.Host("a"), nw.Host("b")
	spec := Spec{BitsPerSecond: 56000, Latency: 10 * time.Millisecond, OverheadBytes: 40}
	nw.Connect(a, b, spec)
	lst, err := b.Listen(1)
	if err != nil {
		t.Fatal(err)
	}
	defer lst.Close()

	rng := rand.New(rand.NewSource(123))
	type obs struct {
		before time.Duration
		size   int
	}
	srvDone := make(chan error, 1)
	go func() {
		c, err := lst.Accept()
		if err != nil {
			srvDone <- err
			return
		}
		var last time.Duration
		for {
			_, err := c.Recv()
			now := b.Now()
			if err != nil {
				srvDone <- nil
				return
			}
			if now < last {
				srvDone <- fmt.Errorf("server clock went backward: %v -> %v", last, now)
				return
			}
			last = now
		}
	}()

	c, err := a.Dial("b", 1)
	if err != nil {
		t.Fatal(err)
	}
	var prev time.Duration
	for i := 0; i < 300; i++ {
		size := rng.Intn(4096)
		before := a.Now()
		if rng.Intn(5) == 0 {
			a.Process(time.Duration(rng.Intn(50)) * time.Millisecond)
		}
		if err := c.Send(make([]byte, size)); err != nil {
			t.Fatal(err)
		}
		now := a.Now()
		if now < prev || now < before {
			t.Fatalf("client clock went backward at %d: %v -> %v", i, prev, now)
		}
		prev = now
		_ = obs{before: before, size: size}
	}
	c.Close()
	if err := <-srvDone; err != nil {
		t.Fatal(err)
	}
	// The server's final clock must cover at least the serialization
	// time of everything sent.
	if b.Now() <= 0 {
		t.Fatal("server clock never advanced")
	}
}

func TestMultiHopRouting(t *testing.T) {
	// workstation --Cypress--> gateway --ARPANET--> super: the paper's
	// capillary topology. Dial routes through the gateway; transfer time
	// is dominated by the slow first hop but both hops charge their own
	// serialization and latency (store and forward).
	nw := New()
	ws := nw.Host("ws")
	gw := nw.Host("gateway")
	super := nw.Host("super")
	cypress := Spec{BitsPerSecond: 9600, Latency: 50 * time.Millisecond}
	arpanet := Spec{BitsPerSecond: 56000, Latency: 20 * time.Millisecond}
	nw.Connect(ws, gw, cypress)
	nw.Connect(gw, super, arpanet)

	lst, err := super.Listen(1)
	if err != nil {
		t.Fatal(err)
	}
	defer lst.Close()
	go func() {
		c, err := lst.Accept()
		if err != nil {
			return
		}
		for {
			msg, err := c.Recv()
			if err != nil {
				return
			}
			if err := c.Send(msg[:1]); err != nil {
				return
			}
		}
	}()

	c, err := ws.Dial("super", 1)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	start := ws.Now()
	payload := make([]byte, 1200) // 1s on Cypress, ~0.18s on ARPANET
	if err := c.Send(payload); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Recv(); err != nil {
		t.Fatal(err)
	}
	elapsed := ws.Now() - start
	// One way out: 1s + 50ms + ~0.18s + 20ms ≈ 1.25s; reply is small:
	// ~2x latencies + small serialization ≈ 0.15s. Total ≈ 1.4s.
	if elapsed < 1300*time.Millisecond || elapsed > 1700*time.Millisecond {
		t.Fatalf("two-hop round trip = %v, want ~1.4s", elapsed)
	}
}

func TestPathFinding(t *testing.T) {
	nw := New()
	a, b, c := nw.Host("a"), nw.Host("b"), nw.Host("c")
	nw.Host("island")
	nw.Connect(a, b, LAN)
	nw.Connect(b, c, LAN)
	nw.Connect(a, c, LAN) // direct shortcut

	hops, err := nw.Path("a", "c")
	if err != nil {
		t.Fatal(err)
	}
	if len(hops) != 1 {
		t.Fatalf("Path(a, c) = %d hops, want the 1-hop shortcut", len(hops))
	}
	if _, err := nw.Path("a", "island"); !errors.Is(err, ErrNoRoute) {
		t.Fatalf("Path to island = %v, want ErrNoRoute", err)
	}
	if _, err := nw.Path("a", "a"); !errors.Is(err, ErrNoRoute) {
		t.Fatalf("Path to self = %v, want ErrNoRoute", err)
	}
	if _, err := nw.Path("a", "ghost"); !errors.Is(err, ErrNoRoute) {
		t.Fatalf("Path to unknown = %v, want ErrNoRoute", err)
	}
}

func TestMultiHopMidLinkOutage(t *testing.T) {
	nw := New()
	ws, gw, super := nw.Host("ws"), nw.Host("gw"), nw.Host("super")
	nw.Connect(ws, gw, LAN)
	backbone := nw.Connect(gw, super, LAN)
	lst, err := super.Listen(1)
	if err != nil {
		t.Fatal(err)
	}
	defer lst.Close()
	go func() {
		c, err := lst.Accept()
		if err != nil {
			return
		}
		_, _ = c.Recv()
	}()
	c, err := ws.Dial("super", 1)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	backbone.SetDown(true)
	if err := c.Send([]byte("x")); !errors.Is(err, ErrLinkDown) {
		t.Fatalf("send over failed backbone = %v, want ErrLinkDown", err)
	}
}
