package netsim

import (
	"errors"
	"math/rand"
	"time"
)

// FaultSpec injects seeded, deterministic faults into one link. The zero
// value injects nothing and costs nothing: a link without faults never
// touches a random number generator, so zero-fault simulations produce
// byte-identical figures with or without this file compiled in.
//
// Faults model the failure modes of real long-haul lines:
//
//   - DropRate loses a fraction of frames. The transport is a reliable
//     message stream, so a lost frame is surfaced the way TCP surfaces
//     unrecoverable loss: the connection resets and both ends see an error.
//     Recovery is the session layer's job (reconnect + resume).
//   - SpikeRate/SpikeExtra adds a latency spike to a fraction of frames,
//     modeling congestion or routing transients.
//   - FlapPeriod/FlapDown takes the line down during the first FlapDown of
//     every FlapPeriod of virtual time — a deterministic periodic outage.
//     Transmissions attempted inside a window fail with ErrLinkDown.
type FaultSpec struct {
	// Seed seeds the link's private RNG; the same seed and traffic order
	// reproduce the same fault pattern.
	Seed int64
	// DropRate is the probability in [0,1) that a frame is lost in
	// transit, resetting the connection that carried it.
	DropRate float64
	// SpikeRate is the probability in [0,1) that a frame's delivery is
	// delayed by SpikeExtra beyond normal link timing.
	SpikeRate  float64
	SpikeExtra time.Duration
	// FlapPeriod/FlapDown define periodic outage windows in virtual time:
	// the line is down whenever now mod FlapPeriod < FlapDown. Both must
	// be positive for flapping to engage.
	FlapPeriod time.Duration
	FlapDown   time.Duration
}

// active reports whether the spec injects any fault at all.
func (f FaultSpec) active() bool {
	return f.DropRate > 0 || f.SpikeRate > 0 || (f.FlapPeriod > 0 && f.FlapDown > 0)
}

// faultState is a link's live fault machinery, guarded by the link mutex.
type faultState struct {
	spec FaultSpec
	rng  *rand.Rand

	dropped     int64
	spikes      int64
	flapRejects int64
}

// Fault errors.
var (
	// ErrFrameDropped reports a frame lost by fault injection; callers
	// normally see it wrapped in ErrReset.
	ErrFrameDropped = errors.New("netsim: frame dropped")
	// ErrReset reports a connection torn down because a frame it carried
	// was lost — the simulated analogue of a TCP reset after
	// unrecoverable loss.
	ErrReset = errors.New("netsim: connection reset")
)

// SetFaults installs (or, with a zero spec, removes) fault injection on the
// link. Safe to call concurrently with traffic; the new spec applies to
// subsequent transmissions.
func (l *Link) SetFaults(spec FaultSpec) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if !spec.active() {
		l.faults = nil
		return
	}
	l.faults = &faultState{spec: spec, rng: rand.New(rand.NewSource(spec.Seed))}
}

// FaultStats reports how many frames were dropped, spiked, and rejected by
// flap windows on this link.
func (l *Link) FaultStats() (dropped, spikes, flapRejects int64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.faults == nil {
		return 0, 0, 0
	}
	return l.faults.dropped, l.faults.spikes, l.faults.flapRejects
}

// inject decides one frame's fate under the link mutex. It returns the
// extra latency to add and whether the frame is dropped, or ErrLinkDown
// when the transmission start falls inside a flap window.
func (f *faultState) inject(start time.Duration) (extra time.Duration, drop bool, err error) {
	if f.spec.FlapPeriod > 0 && f.spec.FlapDown > 0 && start%f.spec.FlapPeriod < f.spec.FlapDown {
		f.flapRejects++
		return 0, false, ErrLinkDown
	}
	if f.spec.DropRate > 0 && f.rng.Float64() < f.spec.DropRate {
		f.dropped++
		return 0, true, nil
	}
	if f.spec.SpikeRate > 0 && f.rng.Float64() < f.spec.SpikeRate {
		f.spikes++
		return f.spec.SpikeExtra, false, nil
	}
	return 0, false, nil
}
