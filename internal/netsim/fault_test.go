package netsim

import (
	"errors"
	"io"
	"testing"
	"time"
)

// faultPair builds a two-host network whose single link carries the spec.
func faultPair(t *testing.T, spec FaultSpec) (*Host, *Host, *Link) {
	t.Helper()
	nw := New()
	a := nw.Host("a")
	b := nw.Host("b")
	link := nw.Connect(a, b, LAN)
	link.SetFaults(spec)
	return a, b, link
}

// dialPair opens a connection over the (possibly faulty) link, retrying past
// handshake losses.
func dialPair(t *testing.T, a, b *Host) (*Conn, *Conn) {
	t.Helper()
	lst, err := b.Listen(1)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = lst.Close() })
	accepted := make(chan *Conn, 1)
	go func() {
		c, err := lst.Accept()
		if err == nil {
			accepted <- c
		}
	}()
	for i := 0; ; i++ {
		conn, err := a.Dial("b", 1)
		if err == nil {
			return conn, <-accepted
		}
		if i > 100 {
			t.Fatalf("dial never succeeded: %v", err)
		}
		a.Process(50 * time.Millisecond)
	}
}

// TestFaultInjectionIsDeterministic runs the identical traffic pattern over
// two identically seeded links and requires identical fault decisions — the
// property the chaos figures rely on for reproducibility.
func TestFaultInjectionIsDeterministic(t *testing.T) {
	spec := FaultSpec{Seed: 11, DropRate: 0.2, SpikeRate: 0.3, SpikeExtra: 5 * time.Millisecond}
	run := func() (outcomes []string) {
		_, _, link := faultPair(t, spec)
		now := time.Duration(0)
		for i := 0; i < 200; i++ {
			_, err := link.transmit(0, now, 100)
			switch {
			case errors.Is(err, ErrFrameDropped):
				outcomes = append(outcomes, "drop")
			case err != nil:
				outcomes = append(outcomes, "err")
			default:
				outcomes = append(outcomes, "ok")
			}
			now += time.Millisecond
		}
		return outcomes
	}
	first, second := run(), run()
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("frame %d: %s vs %s — fault pattern not reproducible", i, first[i], second[i])
		}
	}
}

// TestDropResetsBothEnds loses a frame and requires the TCP-reset model:
// sender sees ErrReset, receiver's Recv fails, and the connection is dead
// for further use on either side.
func TestDropResetsBothEnds(t *testing.T) {
	a, b, link := faultPair(t, FaultSpec{})
	ca, cb := dialPair(t, a, b)
	link.SetFaults(FaultSpec{Seed: 1, DropRate: 1})

	if err := ca.Send([]byte("doomed")); !errors.Is(err, ErrReset) {
		t.Fatalf("send over dropping link = %v, want ErrReset", err)
	}
	if _, err := cb.Recv(); err == nil {
		t.Fatal("peer recv after reset succeeded")
	}
	if err := ca.Send([]byte("after")); err == nil {
		t.Fatal("send on reset connection succeeded")
	}
	if err := cb.Send([]byte("after")); err == nil {
		t.Fatal("peer send on reset connection succeeded")
	}
	dropped, _, _ := link.FaultStats()
	if dropped != 1 {
		t.Fatalf("dropped = %d, want 1", dropped)
	}
}

// TestFlapWindowRejectsThenHeals sends inside a down window (fails, counted)
// and after it (succeeds): the connection itself survives a flap.
func TestFlapWindowRejectsThenHeals(t *testing.T) {
	a, b, link := faultPair(t, FaultSpec{})
	ca, cb := dialPair(t, a, b)
	link.SetFaults(FaultSpec{FlapPeriod: 10 * time.Second, FlapDown: time.Second})

	// Clocks sit inside the first window (dial traffic consumed µs).
	if err := ca.Send([]byte("x")); !errors.Is(err, ErrLinkDown) {
		t.Fatalf("send in flap window = %v, want ErrLinkDown", err)
	}
	a.Process(2 * time.Second) // step past the window
	if err := ca.Send([]byte("healed")); err != nil {
		t.Fatalf("send after flap window: %v", err)
	}
	if got, err := cb.Recv(); err != nil || string(got) != "healed" {
		t.Fatalf("recv after heal = %q, %v", got, err)
	}
	_, _, flaps := link.FaultStats()
	if flaps != 1 {
		t.Fatalf("flap rejects = %d, want 1", flaps)
	}
}

// TestSpikeDelaysDelivery checks a spiked frame arrives later than the fault-
// free schedule but intact.
func TestSpikeDelaysDelivery(t *testing.T) {
	a, b, link := faultPair(t, FaultSpec{})
	ca, cb := dialPair(t, a, b)

	// Baseline delivery time without faults.
	if err := ca.Send([]byte("base")); err != nil {
		t.Fatal(err)
	}
	if _, err := cb.Recv(); err != nil {
		t.Fatal(err)
	}
	base := b.Now()

	link.SetFaults(FaultSpec{Seed: 3, SpikeRate: 1, SpikeExtra: 500 * time.Millisecond})
	if err := ca.Send([]byte("slow")); err != nil {
		t.Fatal(err)
	}
	got, err := cb.Recv()
	if err != nil || string(got) != "slow" {
		t.Fatalf("recv spiked = %q, %v", got, err)
	}
	if delta := b.Now() - base; delta < 500*time.Millisecond {
		t.Fatalf("spiked delivery advanced clock by %v, want >= 500ms", delta)
	}
	_, spikes, _ := link.FaultStats()
	if spikes != 1 {
		t.Fatalf("spikes = %d, want 1", spikes)
	}
}

// TestZeroSpecRemovesFaults installs then clears injection; traffic flows
// and no fault state remains.
func TestZeroSpecRemovesFaults(t *testing.T) {
	a, b, link := faultPair(t, FaultSpec{Seed: 5, DropRate: 1})
	link.SetFaults(FaultSpec{})
	ca, cb := dialPair(t, a, b)
	if err := ca.Send([]byte("clean")); err != nil {
		t.Fatal(err)
	}
	if got, err := cb.Recv(); err != nil || string(got) != "clean" {
		t.Fatalf("recv = %q, %v", got, err)
	}
	if d, s, f := link.FaultStats(); d != 0 || s != 0 || f != 0 {
		t.Fatalf("cleared link has stats %d/%d/%d", d, s, f)
	}
}

// TestAcceptSurvivesFailedHandshake drops the handshake of one dial and
// requires the listener to stay alive for the next.
func TestAcceptSurvivesFailedHandshake(t *testing.T) {
	a, b, link := faultPair(t, FaultSpec{})
	lst, err := b.Listen(1)
	if err != nil {
		t.Fatal(err)
	}
	defer lst.Close()
	accepted := make(chan *Conn, 2)
	go func() {
		for {
			c, err := lst.Accept()
			if err != nil {
				return
			}
			accepted <- c
		}
	}()

	link.SetFaults(FaultSpec{Seed: 9, DropRate: 1})
	if _, err := a.Dial("b", 1); err == nil {
		t.Fatal("dial over fully dropping link succeeded")
	}
	link.SetFaults(FaultSpec{})
	conn, err := a.Dial("b", 1)
	if err != nil {
		t.Fatalf("dial after heal: %v", err)
	}
	srv := <-accepted
	if err := conn.Send([]byte("hi")); err != nil {
		t.Fatal(err)
	}
	if got, err := srv.Recv(); err != nil || string(got) != "hi" {
		t.Fatalf("recv = %q, %v", got, err)
	}
	_ = conn.Close()
	if _, err := srv.Recv(); !errors.Is(err, io.EOF) {
		t.Fatalf("recv after close = %v, want EOF", err)
	}
}
