package experiment

import (
	"testing"
	"time"
)

// TestChaosSmallGauntlet runs a reduced chaos configuration (the full figure
// runs 12x200); it must complete every cycle with verified output. Sized to
// stay fast under -race.
func TestChaosSmallGauntlet(t *testing.T) {
	res, err := RunChaos(ChaosConfig{
		Sessions:    4,
		Cycles:      25,
		FileSize:    2 * 1024,
		Seed:        7,
		DropRate:    0.05,
		SpikeRate:   0.05,
		SpikeExtra:  20 * time.Millisecond,
		FlapPeriod:  30 * time.Second,
		FlapDown:    200 * time.Millisecond,
		Disconnects: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed() {
		t.Fatalf("chaos run failed acceptance: %s", res)
	}
	if res.Reconnects == 0 {
		t.Fatal("chaos run exercised no reconnects")
	}
	if res.Dropped == 0 {
		t.Fatal("chaos run dropped no frames")
	}
}

// TestChaosZeroFaultsIsClean runs the harness with no injection: nothing
// drops, nothing reconnects beyond the per-session forced bounce.
func TestChaosZeroFaultsIsClean(t *testing.T) {
	res, err := RunChaos(ChaosConfig{
		Sessions: 2, Cycles: 10, FileSize: 1024, Seed: 3, Disconnects: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed() {
		t.Fatalf("zero-fault chaos failed: %s", res)
	}
	if res.Dropped != 0 || res.Spikes != 0 || res.FlapRejects != 0 {
		t.Fatalf("zero-fault run recorded faults: %s", res)
	}
	// One forced disconnect per session, ridden out.
	if res.Reconnects != int64(res.Sessions) {
		t.Fatalf("reconnects = %d, want %d (one bounce per session)", res.Reconnects, res.Sessions)
	}
}
