// Capacity benchmark: how many concurrent shadow sessions one server
// process sustains, and what each costs. Where the server benchmark
// (serverbench.go) measures cycle throughput at modest session counts, this
// sweep connects fleets of 100–10,000 sessions over fd-free in-process
// pipes, measures the per-session goroutine and resident-heap footprint
// after priming, then drives a short churn phase for throughput under full
// fan-out. A second curve holds the fleet size fixed and sweeps GOMAXPROCS
// to expose scheduling behaviour.
package experiment

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"shadowedit/internal/client"
	"shadowedit/internal/env"
	"shadowedit/internal/naming"
	"shadowedit/internal/obs"
	"shadowedit/internal/server"
	"shadowedit/internal/workload"
)

// CapacityConfig parametrizes RunCapacitySweep.
type CapacityConfig struct {
	// Sessions are the fleet sizes of the capacity curve, run at the
	// process's current GOMAXPROCS.
	Sessions []int
	// Procs are the GOMAXPROCS values of the scheduling curve.
	Procs []int
	// ProcsSessions is the fleet size the scheduling curve runs at.
	ProcsSessions int
	// Cycles is the number of measured churn cycles per session (the
	// priming cycle is separate).
	Cycles int
	// FileSize is the per-session data file size in bytes. Capacity runs
	// default this small: the footprint of interest is the fixed
	// per-session cost, not the file content.
	FileSize int
	// EditPercent is the fraction of the file modified each cycle.
	EditPercent float64
	// Seed makes the workload reproducible.
	Seed int64
}

func (c CapacityConfig) withDefaults() CapacityConfig {
	if len(c.Sessions) == 0 {
		c.Sessions = []int{100, 1000, 5000, 10000}
	}
	if len(c.Procs) == 0 {
		c.Procs = []int{1, 2, 4, 8}
	}
	if c.ProcsSessions <= 0 {
		c.ProcsSessions = 1000
	}
	if c.Cycles <= 0 {
		c.Cycles = 2
	}
	if c.FileSize <= 0 {
		c.FileSize = 2 * 1024
	}
	if c.EditPercent <= 0 {
		c.EditPercent = 5
	}
	if c.Seed == 0 {
		c.Seed = 1987
	}
	return c
}

// RunCapacitySweep runs the two capacity curves and returns one result per
// cell: first the session sweep (label "capacity"), then the GOMAXPROCS
// sweep (label "capacity-procs"). When report is non-nil it is called with
// each cell as it completes, so long sweeps show progress.
func RunCapacitySweep(cfg CapacityConfig, report func(ServerBenchResult)) ([]ServerBenchResult, error) {
	cfg = cfg.withDefaults()
	var out []ServerBenchResult
	add := func(res ServerBenchResult, err error) error {
		if err != nil {
			return err
		}
		out = append(out, res)
		if report != nil {
			report(res)
		}
		return nil
	}
	baseProcs := runtime.GOMAXPROCS(0)
	for _, n := range cfg.Sessions {
		res, err := runCapacityCell(cfg, n, baseProcs)
		res.Label = "capacity"
		if err := add(res, err); err != nil {
			return out, fmt.Errorf("capacity %d sessions: %w", n, err)
		}
	}
	for _, p := range cfg.Procs {
		res, err := runCapacityCell(cfg, cfg.ProcsSessions, p)
		res.Label = "capacity-procs"
		if err := add(res, err); err != nil {
			return out, fmt.Errorf("capacity GOMAXPROCS=%d: %w", p, err)
		}
	}
	return out, nil
}

// runCapacityCell connects a fleet of sessions over pipes, measures its
// footprint, then churns every session concurrently.
func runCapacityCell(cfg CapacityConfig, sessions, procs int) (ServerBenchResult, error) {
	prev := runtime.GOMAXPROCS(procs)
	defer runtime.GOMAXPROCS(prev)

	// Footprint baseline before any benchmark state exists.
	runtime.GC()
	var ms0 runtime.MemStats
	runtime.ReadMemStats(&ms0)
	g0 := runtime.NumGoroutine()

	tr, err := newBenchTransport(ServerBenchConfig{Transport: "pipe", Sessions: sessions})
	if err != nil {
		return ServerBenchResult{}, err
	}
	defer tr.close()

	scfg := server.Defaults("bench")
	scfg.MaxConcurrentJobs = sessions
	scfg.Obs = obs.New(nil, nil)
	srv := server.New(scfg)
	go func() { _ = srv.Serve(tr.acceptor) }()
	defer srv.Close()

	universe := naming.NewUniverse("bench")
	type rig struct {
		cl       *client.Client
		host     string
		dataPath string
		jobPath  string
		gen      *workload.Generator
		content  []byte
	}
	rigs := make([]*rig, sessions)
	for i := range rigs {
		host := fmt.Sprintf("ws%d", i)
		universe.AddHost(host)
		rigs[i] = &rig{
			host:     host,
			dataPath: fmt.Sprintf("/u/u%d/data.dat", i),
			jobPath:  fmt.Sprintf("/u/u%d/run.job", i),
			gen:      workload.NewGenerator(cfg.Seed + int64(i)),
		}
	}

	// Connect and prime the fleet through a worker pool: sequential setup
	// of 10k sessions would dominate the run, and unbounded fan-out would
	// measure the scheduler's thundering herd rather than the server.
	connectStart := time.Now()
	workers := 8 * procs
	if workers > sessions {
		workers = sessions
	}
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < sessions; i += workers {
				r := rigs[i]
				r.content = r.gen.File(cfg.FileSize)
				if err := universe.WriteFile(r.host, r.jobPath, []byte("checksum data.dat\n")); err != nil {
					errs[w] = err
					return
				}
				if err := universe.WriteFile(r.host, r.dataPath, r.content); err != nil {
					errs[w] = err
					return
				}
				conn, err := tr.dial(i)
				if err != nil {
					errs[w] = err
					return
				}
				cl, err := client.Connect(context.Background(), conn, client.Config{
					User:     fmt.Sprintf("u%d", i),
					Universe: universe,
					Host:     r.host,
					Env:      env.Default(fmt.Sprintf("u%d", i)),
				})
				if err != nil {
					errs[w] = err
					return
				}
				r.cl = cl
				job, err := cl.Submit(context.Background(), r.jobPath, []string{r.dataPath}, client.SubmitOptions{})
				if err != nil {
					errs[w] = fmt.Errorf("prime submit: %w", err)
					return
				}
				if _, err := cl.Wait(context.Background(), job); err != nil {
					errs[w] = fmt.Errorf("prime wait: %w", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	connectSec := time.Since(connectStart).Seconds()
	defer func() {
		for _, r := range rigs {
			if r.cl != nil {
				_ = r.cl.Close()
			}
		}
	}()
	for _, err := range errs {
		if err != nil {
			return ServerBenchResult{}, err
		}
	}

	// Footprint: what the connected, primed fleet holds resident.
	runtime.GC()
	var msConn runtime.MemStats
	runtime.ReadMemStats(&msConn)
	goroutinesPer := float64(runtime.NumGoroutine()-g0) / float64(sessions)
	// Signed and clamped: a GC between cells can leave the baseline heap
	// above the post-connect figure, and the unsigned difference would
	// wrap to garbage.
	heapDelta := int64(msConn.HeapInuse) - int64(ms0.HeapInuse)
	if heapDelta < 0 {
		heapDelta = 0
	}
	residentKBPer := float64(heapDelta) / float64(sessions) / 1024

	// Churn: every session cycles concurrently — full fan-out, the load
	// shape the capacity claim is about.
	latencies := make([][]time.Duration, sessions)
	cellErrs := make([]error, sessions)
	var msA, msB runtime.MemStats
	runtime.ReadMemStats(&msA)
	start := time.Now()
	var cwg sync.WaitGroup
	for i, r := range rigs {
		cwg.Add(1)
		go func(i int, r *rig) {
			defer cwg.Done()
			lats := make([]time.Duration, 0, cfg.Cycles)
			for cyc := 0; cyc < cfg.Cycles; cyc++ {
				r.content = r.gen.Modify(r.content, cfg.EditPercent, workload.EditReplace)
				if err := universe.WriteFile(r.host, r.dataPath, r.content); err != nil {
					cellErrs[i] = err
					return
				}
				t0 := time.Now()
				job, err := r.cl.Submit(context.Background(), r.jobPath, []string{r.dataPath}, client.SubmitOptions{})
				if err != nil {
					cellErrs[i] = fmt.Errorf("cycle %d submit: %w", cyc, err)
					return
				}
				if _, err := r.cl.Wait(context.Background(), job); err != nil {
					cellErrs[i] = fmt.Errorf("cycle %d wait: %w", cyc, err)
					return
				}
				lats = append(lats, time.Since(t0))
			}
			latencies[i] = lats
		}(i, r)
	}
	cwg.Wait()
	elapsed := time.Since(start)
	runtime.ReadMemStats(&msB)
	for _, err := range cellErrs {
		if err != nil {
			return ServerBenchResult{}, err
		}
	}

	var all []time.Duration
	for _, lats := range latencies {
		all = append(all, lats...)
	}
	sort.Slice(all, func(a, b int) bool { return all[a] < all[b] })
	total := len(all)
	pct := func(p float64) float64 {
		if total == 0 {
			return 0
		}
		return float64(all[int(p*float64(total-1))]) / float64(time.Millisecond)
	}

	cstats := srv.Cache().Stats()
	issued, deferred := srv.FlowStats()
	// The server-side leg percentiles come from the run's Observer, exactly
	// as in RunServerBench — without this the capacity rows carry zeroed
	// submit-ack and job quantiles, which reads as "infinitely fast".
	ackSnap := scfg.Obs.SubmitAck.Snapshot()
	jobSnap := scfg.Obs.JobLifetime.Snapshot()
	return ServerBenchResult{
		Transport:            "pipe",
		Sessions:             sessions,
		CyclesPerSess:        cfg.Cycles,
		TotalCycles:          total,
		FileSize:             cfg.FileSize,
		ElapsedSec:           elapsed.Seconds(),
		CyclesPerSec:         float64(total) / elapsed.Seconds(),
		P50Ms:                pct(0.50),
		P90Ms:                pct(0.90),
		P99Ms:                pct(0.99),
		SubmitAckP50Ms:       ms(ackSnap.Quantile(0.50)),
		SubmitAckP99Ms:       ms(ackSnap.Quantile(0.99)),
		JobP50Ms:             ms(jobSnap.Quantile(0.50)),
		JobP99Ms:             ms(jobSnap.Quantile(0.99)),
		AllocsPerCycle:       float64(msB.Mallocs-msA.Mallocs) / float64(max(total, 1)),
		CacheHits:            cstats.Hits,
		CacheMisses:          cstats.Misses,
		CacheEvictions:       cstats.Evictions,
		PullsIssued:          issued,
		PullsDeferred:        deferred,
		GoMaxProcs:           procs,
		GoroutinesPerSession: goroutinesPer,
		ResidentKBPerSession: residentKBPer,
		ConnectSec:           connectSec,
	}, nil
}
