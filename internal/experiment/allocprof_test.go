package experiment

import (
	"os"
	"testing"
)

// TestAllocProfileRun is a profiling rig, enabled with SHADOW_ALLOCPROF=1:
// it runs the tcp server bench so -memprofile captures the per-cycle
// allocation sites.
func TestAllocProfileRun(t *testing.T) {
	if os.Getenv("SHADOW_ALLOCPROF") == "" {
		t.Skip("set SHADOW_ALLOCPROF=1 to run")
	}
	res, err := RunServerBench(ServerBenchConfig{
		Sessions:  8,
		Cycles:    500,
		FileSize:  8 * 1024,
		Transport: "tcp",
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("%s", res)
}
