// Package experiment regenerates the paper's evaluation: Figure 1 (Cypress
// transfer times), Figure 2 (ARPANET transfer times), Figure 3 (speedup
// factors), and the extension experiments for the future-work features
// (reverse shadow processing, delta algorithms, compression) plus ablations
// of the design choices (flow control, cache sizing).
//
// Methodology follows §8.1: "In each experiment, we submitted a job with a
// data file. After obtaining the results, we edited the data file and
// resubmitted the same job. We modified the data file by a different amount
// every time ... We measured the total amount of time spent in each case."
// The E-time (conventional batch) corresponds to a first submission, which
// transfers the entire file; the S-time is the shadow resubmission. Times
// are virtual seconds on the simulated link, which reproduce the
// serialization and round-trip delays that dominated the paper's
// measurements.
package experiment

import (
	"context"

	"fmt"
	"time"

	"shadowedit/internal/diff"
	"shadowedit/internal/netsim"
	"shadowedit/internal/workload"

	shadow "shadowedit"
)

// Config parametrizes one experiment run.
type Config struct {
	// Link is the simulated line (netsim.Cypress, netsim.ARPANET).
	Link netsim.Spec
	// Algorithm is the differencing algorithm (default Hunt–McIlroy).
	Algorithm diff.Algorithm
	// Compress turns on the compression layer.
	Compress bool
	// EditKind is the modification mix (default EditMixed).
	EditKind workload.EditKind
	// Seed makes runs reproducible.
	Seed int64
	// Workers bounds how many sweep cells run concurrently (0 means
	// GOMAXPROCS). Every cell builds its own rig and derives its own seed
	// from (Seed, size, percent), so results — and the rendered figures —
	// are byte-identical for any worker count.
	Workers int
}

func (c Config) withDefaults() Config {
	if c.Link.BitsPerSecond == 0 {
		c.Link = netsim.ARPANET
	}
	if c.Algorithm == 0 {
		c.Algorithm = diff.HuntMcIlroy
	}
	if c.EditKind == 0 {
		c.EditKind = workload.EditMixed
	}
	if c.Seed == 0 {
		c.Seed = 1987
	}
	return c
}

// Cycle is one measured edit–submit–fetch data point.
type Cycle struct {
	// Size is the data file size in bytes.
	Size int
	// Percent is the fraction of the file modified before resubmission.
	Percent float64
	// STime is the shadow resubmission time (delta transfer).
	STime time.Duration
	// ETime is the conventional batch time (entire file transferred),
	// measured by resubmitting through the baseline RJE client.
	ETime time.Duration
	// ShadowBytes and BatchBytes are the file payload bytes each moved
	// during the measured resubmission.
	ShadowBytes int64
	BatchBytes  int64
}

// Speedup is the paper's metric: E-time / S-time.
func (c Cycle) Speedup() float64 {
	if c.STime <= 0 {
		return 0
	}
	return float64(c.ETime) / float64(c.STime)
}

// jobScript is the fixed job used by all timing cycles; its output is tiny
// so measured time is transfer time, as in the paper.
const jobScript = "checksum data.dat\n"

// RunCycle measures one (size, percent) cell: prime both systems with a
// first submission, edit percent% of the file, resubmit through each, and
// time the resubmissions on the virtual clock.
func RunCycle(cfg Config, size int, percent float64) (Cycle, error) {
	cfg = cfg.withDefaults()
	gen := workload.NewGenerator(cfg.Seed + int64(size) + int64(percent*1000))
	content := gen.File(size)
	edited := gen.Modify(content, percent, cfg.EditKind)

	sTime, sBytes, err := shadowCycle(cfg, content, edited)
	if err != nil {
		return Cycle{}, fmt.Errorf("experiment: shadow cycle: %w", err)
	}
	eTime, eBytes, err := batchCycle(cfg, content, edited)
	if err != nil {
		return Cycle{}, fmt.Errorf("experiment: batch cycle: %w", err)
	}
	return Cycle{
		Size:        size,
		Percent:     percent,
		STime:       sTime,
		ETime:       eTime,
		ShadowBytes: sBytes,
		BatchBytes:  eBytes,
	}, nil
}

// shadowCycle measures the resubmission under shadow editing.
func shadowCycle(cfg Config, content, edited []byte) (time.Duration, int64, error) {
	cluster, ws, err := newRig(cfg)
	if err != nil {
		return 0, 0, err
	}
	defer cluster.Close()

	environment := shadow.DefaultEnvironment("sci")
	environment.Algorithm = cfg.Algorithm
	environment.Compress = cfg.Compress
	c, err := ws.ConnectSession(context.Background(), shadow.SessionConfig{Env: environment})
	if err != nil {
		return 0, 0, err
	}
	defer c.Close()

	if err := prime(ws, c, content); err != nil {
		return 0, 0, err
	}
	before := c.Metrics()

	// The measured cycle: edit, resubmit, fetch.
	if err := ws.WriteFile("/u/sci/data.dat", edited); err != nil {
		return 0, 0, err
	}
	start := ws.Host().Now()
	job, err := c.Submit(context.Background(), "/u/sci/run.job", []string{"/u/sci/data.dat"}, shadow.SubmitOptions{})
	if err != nil {
		return 0, 0, err
	}
	if _, err := c.Wait(context.Background(), job); err != nil {
		return 0, 0, err
	}
	elapsed := ws.Host().Now() - start
	after := c.Metrics()
	moved := (after.DeltaBytes + after.FullBytes) - (before.DeltaBytes + before.FullBytes)
	return elapsed, moved, nil
}

// batchCycle measures the resubmission under the conventional baseline.
func batchCycle(cfg Config, content, edited []byte) (time.Duration, int64, error) {
	cluster, ws, err := newRig(cfg)
	if err != nil {
		return 0, 0, err
	}
	defer cluster.Close()

	rc, err := ws.ConnectRJE("sci")
	if err != nil {
		return 0, 0, err
	}
	defer rc.Close()

	if err := ws.WriteFile("/u/sci/run.job", []byte(jobScript)); err != nil {
		return 0, 0, err
	}
	if err := ws.WriteFile("/u/sci/data.dat", content); err != nil {
		return 0, 0, err
	}
	job, err := rc.Submit("/u/sci/run.job", []string{"/u/sci/data.dat"})
	if err != nil {
		return 0, 0, err
	}
	if _, err := rc.Wait(job); err != nil {
		return 0, 0, err
	}
	before := rc.Metrics()

	if err := ws.WriteFile("/u/sci/data.dat", edited); err != nil {
		return 0, 0, err
	}
	start := ws.Host().Now()
	job2, err := rc.Submit("/u/sci/run.job", []string{"/u/sci/data.dat"})
	if err != nil {
		return 0, 0, err
	}
	if _, err := rc.Wait(job2); err != nil {
		return 0, 0, err
	}
	elapsed := ws.Host().Now() - start
	after := rc.Metrics()
	return elapsed, after.FullBytes - before.FullBytes, nil
}

func newRig(cfg Config) (*shadow.Cluster, *shadow.Workstation, error) {
	cluster, err := shadow.NewCluster(shadow.ClusterConfig{Link: cfg.Link})
	if err != nil {
		return nil, nil, err
	}
	return cluster, cluster.NewWorkstation("ws"), nil
}

// prime performs the first submission so the server cache holds the file.
func prime(ws *shadow.Workstation, c *shadow.Client, content []byte) error {
	if err := ws.WriteFile("/u/sci/run.job", []byte(jobScript)); err != nil {
		return err
	}
	if err := ws.WriteFile("/u/sci/data.dat", content); err != nil {
		return err
	}
	job, err := c.Submit(context.Background(), "/u/sci/run.job", []string{"/u/sci/data.dat"}, shadow.SubmitOptions{})
	if err != nil {
		return err
	}
	_, err = c.Wait(context.Background(), job)
	return err
}
