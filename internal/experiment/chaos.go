// Chaos harness: K concurrent sessions drive edit–submit–wait cycles over
// fault-injected links (frame drops, latency spikes, periodic flap windows)
// plus one forced mid-run disconnect per session, then verify that every job
// completed with byte-identical output to a fault-free reference execution.
// This is the acceptance gauntlet for the fault-tolerant session layer: drops
// reset connections, the client reconnects and resumes, idempotency tags keep
// re-submitted jobs single-run, and the server's held-output store preserves
// results across the gaps.
package experiment

import (
	"bytes"
	"context"
	"fmt"
	"sync"
	"time"

	"shadowedit/internal/client"
	"shadowedit/internal/env"
	"shadowedit/internal/jobs"
	"shadowedit/internal/metrics"
	"shadowedit/internal/naming"
	"shadowedit/internal/netsim"
	"shadowedit/internal/server"
	"shadowedit/internal/wire"
	"shadowedit/internal/workload"
)

// ChaosConfig parametrizes one chaos run.
type ChaosConfig struct {
	// Sessions is the number of concurrent client sessions.
	Sessions int
	// Cycles is the number of edit–submit–wait cycles per session.
	Cycles int
	// FileSize is the data file size in bytes.
	FileSize int
	// EditPercent is the fraction of the file modified each cycle.
	EditPercent float64
	// Seed makes both the workload and the fault pattern reproducible.
	Seed int64

	// DropRate is the per-frame loss probability on each session's link;
	// a lost frame resets the connection carrying it.
	DropRate float64
	// SpikeRate/SpikeExtra add latency spikes to a fraction of frames.
	SpikeRate  float64
	SpikeExtra time.Duration
	// FlapPeriod/FlapDown schedule periodic link outages in virtual time.
	FlapPeriod time.Duration
	FlapDown   time.Duration
	// Disconnects is the number of forced client-side disconnects per
	// session, spread evenly across the cycles.
	Disconnects int
}

func (c ChaosConfig) withDefaults() ChaosConfig {
	if c.Sessions <= 0 {
		c.Sessions = 12
	}
	if c.Cycles <= 0 {
		c.Cycles = 200
	}
	if c.FileSize <= 0 {
		c.FileSize = 4 * 1024
	}
	if c.EditPercent <= 0 {
		c.EditPercent = 5
	}
	if c.Seed == 0 {
		c.Seed = 7
	}
	if c.DropRate < 0 {
		c.DropRate = 0
	}
	if c.Disconnects < 0 {
		c.Disconnects = 0
	}
	return c
}

// ChaosResult aggregates one chaos run.
type ChaosResult struct {
	Sessions    int
	Cycles      int
	Completed   int   // cycles that finished with verified output
	Mismatches  int   // cycles whose output differed from the reference
	Reconnects  int64 // session re-establishments across all clients
	Retries     int64 // request retries across all clients
	Fallbacks   int64 // delta deliveries degraded to full transfers
	Dropped     int64 // frames lost by injection, summed over links
	Spikes      int64 // frames delayed by injected latency spikes
	FlapRejects int64 // transmissions refused inside flap windows
	ElapsedSec  float64
}

// String renders the summary line the chaos figure prints.
func (r ChaosResult) String() string {
	return fmt.Sprintf(
		"chaos: %d sessions x %d cycles: %d/%d verified, %d mismatches; "+
			"%d reconnects, %d retries, %d full-transfer fallbacks; "+
			"faults: %d dropped, %d spiked, %d flap-rejected (%.1fs)",
		r.Sessions, r.Cycles, r.Completed, r.Sessions*r.Cycles, r.Mismatches,
		r.Reconnects, r.Retries, r.Fallbacks,
		r.Dropped, r.Spikes, r.FlapRejects, r.ElapsedSec)
}

// Failed reports whether the run missed its acceptance bar: every cycle must
// complete and verify byte-identical.
func (r ChaosResult) Failed() bool {
	return r.Completed != r.Sessions*r.Cycles || r.Mismatches > 0
}

// RunChaos executes the chaos gauntlet and verifies every job output against
// a local fault-free reference execution.
func RunChaos(cfg ChaosConfig) (ChaosResult, error) {
	cfg = cfg.withDefaults()

	nw := netsim.New()
	super := nw.Host("super")
	lst, err := super.Listen(1)
	if err != nil {
		return ChaosResult{}, err
	}
	defer lst.Close()

	scfg := server.Defaults("chaos")
	scfg.MaxConcurrentJobs = cfg.Sessions
	srv := server.New(scfg)
	go func() { _ = srv.Serve(server.AcceptorFunc(func() (wire.Conn, error) { return lst.Accept() })) }()
	defer srv.Close()

	universe := naming.NewUniverse("chaos")
	script := []byte("checksum data.dat\n")

	type rig struct {
		host    *netsim.Host
		link    *netsim.Link
		cl      *client.Client
		gen     *workload.Generator
		dataP   string
		jobP    string
		content []byte
	}
	rigs := make([]*rig, cfg.Sessions)
	for i := range rigs {
		name := fmt.Sprintf("ws%d", i)
		user := fmt.Sprintf("u%d", i)
		host := nw.Host(name)
		link := nw.Connect(host, super, netsim.LAN)
		link.SetFaults(netsim.FaultSpec{
			Seed:       cfg.Seed + int64(i)*7919,
			DropRate:   cfg.DropRate,
			SpikeRate:  cfg.SpikeRate,
			SpikeExtra: cfg.SpikeExtra,
			FlapPeriod: cfg.FlapPeriod,
			FlapDown:   cfg.FlapDown,
		})
		universe.AddHost(name)
		r := &rig{
			host:  host,
			link:  link,
			gen:   workload.NewGenerator(cfg.Seed + int64(i)),
			dataP: fmt.Sprintf("/u/%s/data.dat", user),
			jobP:  fmt.Sprintf("/u/%s/run.job", user),
		}
		r.content = r.gen.File(cfg.FileSize)
		if err := universe.WriteFile(name, r.jobP, script); err != nil {
			return ChaosResult{}, err
		}
		if err := universe.WriteFile(name, r.dataP, r.content); err != nil {
			return ChaosResult{}, err
		}
		ccfg := client.Config{
			User:     user,
			Universe: universe,
			Host:     name,
			Env:      env.Default(user),
			Clock:    host,
			Dial:     func() (wire.Conn, error) { return host.Dial("super", 1) },
			Retry: client.RetryPolicy{
				MaxAttempts: 60,
				BaseDelay:   5 * time.Millisecond,
				MaxDelay:    250 * time.Millisecond,
				Seed:        cfg.Seed + int64(i) + 1,
			},
			RPCTimeout: 30 * time.Second,
			Sleep: func(ctx context.Context, d time.Duration) error {
				host.Process(d)
				return ctx.Err()
			},
		}
		// The initial connect may start inside a flap window or lose its
		// handshake to a drop; step virtual time forward and retry.
		var cl *client.Client
		for attempt := 0; ; attempt++ {
			cl, err = client.Connect(context.Background(), nil, ccfg)
			if err == nil {
				break
			}
			if attempt >= 100 {
				return ChaosResult{}, fmt.Errorf("chaos: session %d connect: %w", i, err)
			}
			host.Process(50 * time.Millisecond)
		}
		r.cl = cl
		rigs[i] = r
		defer cl.Close()
	}

	// Forced disconnects: Bounce() severs the live connection at evenly
	// spaced cycles; the supervisor must reconnect and resume.
	bounceAt := make(map[int]bool, cfg.Disconnects)
	for k := 1; k <= cfg.Disconnects; k++ {
		bounceAt[k*cfg.Cycles/(cfg.Disconnects+1)] = true
	}

	completed := make([]int, cfg.Sessions)
	mismatched := make([]int, cfg.Sessions)
	errs := make([]error, cfg.Sessions)
	start := time.Now()
	var wg sync.WaitGroup
	for i, r := range rigs {
		wg.Add(1)
		go func(i int, r *rig) {
			defer wg.Done()
			for cyc := 0; cyc < cfg.Cycles; cyc++ {
				if bounceAt[cyc] {
					r.cl.Bounce()
				}
				r.content = r.gen.Modify(r.content, cfg.EditPercent, workload.EditReplace)
				if err := universe.WriteFile(r.host.Name(), r.dataP, r.content); err != nil {
					errs[i] = err
					return
				}
				// The wall-clock deadline is a hang guard only; all
				// simulated waiting runs on virtual time.
				ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
				job, err := r.cl.Submit(ctx, r.jobP, []string{r.dataP}, client.SubmitOptions{})
				if err != nil {
					cancel()
					errs[i] = fmt.Errorf("cycle %d submit: %w", cyc, err)
					return
				}
				rec, err := r.cl.Wait(ctx, job)
				cancel()
				if err != nil {
					sctx, scancel := context.WithTimeout(context.Background(), 10*time.Second)
					st, serr := r.cl.Status(sctx, job)
					scancel()
					errs[i] = fmt.Errorf("cycle %d wait job %d: %w (server state: %v %q, status err: %v)",
						cyc, job, err, st.State, st.Detail, serr)
					return
				}
				want := jobs.Execute(jobs.Request{
					Script: script,
					Inputs: map[string][]byte{"data.dat": r.content},
				})
				if !bytes.Equal(rec.Stdout, want.Stdout) || rec.ExitCode != want.ExitCode {
					mismatched[i]++
				}
				completed[i]++
			}
		}(i, r)
	}
	wg.Wait()
	elapsed := time.Since(start)
	for i, err := range errs {
		if err != nil {
			return ChaosResult{}, fmt.Errorf("chaos: session %d: %w", i, err)
		}
	}

	res := ChaosResult{
		Sessions:   cfg.Sessions,
		Cycles:     cfg.Cycles,
		ElapsedSec: elapsed.Seconds(),
	}
	var snap metrics.Snapshot
	for i, r := range rigs {
		res.Completed += completed[i]
		res.Mismatches += mismatched[i]
		s := r.cl.Metrics()
		snap.Reconnects += s.Reconnects
		snap.Retries += s.Retries
		snap.FullFallbacks += s.FullFallbacks
		dropped, spikes, flaps := r.link.FaultStats()
		res.Dropped += dropped
		res.Spikes += spikes
		res.FlapRejects += flaps
	}
	res.Reconnects = snap.Reconnects
	res.Retries = snap.Retries
	res.Fallbacks = snap.FullFallbacks
	return res, nil
}
