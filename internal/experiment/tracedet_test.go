package experiment

import (
	"fmt"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"shadowedit/internal/admin"
	"shadowedit/internal/cluster"
	"shadowedit/internal/diff"
	"shadowedit/internal/netsim"
	"shadowedit/internal/obs"
	"shadowedit/internal/server"
	"shadowedit/internal/trace"
	"shadowedit/internal/wire"
	"shadowedit/internal/workload"
)

// runTracedChaosSession drives one seeded edit–submit–fetch workload over a
// simulated link with seeded latency-spike faults, tracing every cycle
// through one tracer shared by the client-side and server-side observers —
// each stamping spans with its own host's virtual clock, producing the
// single combined timeline the trace package doc promises. It returns the
// /tracez list body and the slowest trace's timeline body.
//
// The client side is driven in lockstep at the wire level rather than
// through the concurrent client package: byte-identical output requires a
// total order over link transmissions (the fault RNG and the per-direction
// line serialization both consume state in transmit order), and the real
// client's pipelined sends — SUBMIT racing the read loop's pull answer —
// make that order scheduling-dependent. Here every send waits for the
// server's reply, so the transmit order is forced by the protocol itself.
// Client spans are minted through a client observer with the same names the
// real client uses.
func runTracedChaosSession(t *testing.T, cycles int) (list, detail string) {
	t.Helper()
	nw := netsim.New()
	serverHost := nw.Host("super")
	ws := nw.Host("ws0")
	link := nw.Connect(ws, serverHost, netsim.LAN)
	// Seeded chaos: a quarter of the frames take a latency spike. The
	// link's RNG is driven by the seed and the (lockstep) traffic order.
	link.SetFaults(netsim.FaultSpec{Seed: 7, SpikeRate: 0.25, SpikeExtra: 4 * time.Millisecond})
	lst, err := serverHost.Listen(1)
	if err != nil {
		t.Fatal(err)
	}
	defer lst.Close()

	scfg := server.Defaults("det")
	scfg.Clock = serverHost
	scfg.Obs = obs.New(nil, serverHost.Now)
	tracer := trace.New(trace.Config{})
	scfg.Obs.SetTracer(tracer)
	srv := server.New(scfg)
	go func() { _ = srv.Serve(server.AcceptorFunc(func() (wire.Conn, error) { return lst.Accept() })) }()
	defer srv.Close()

	cobs := obs.New(nil, ws.Now)
	cobs.SetTracer(tracer)

	conn, err := ws.Dial("super", 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := wire.Send(conn, &wire.Hello{Protocol: wire.ProtocolVersion, User: "u0", Domain: "d", ClientHost: "ws0"}); err != nil {
		t.Fatal(err)
	}

	recv := func() (wire.Message, wire.TraceContext) {
		t.Helper()
		type result struct {
			m   wire.Message
			tc  wire.TraceContext
			err error
		}
		ch := make(chan result, 1)
		go func() {
			m, tc, err := wire.RecvTraced(conn)
			ch <- result{m, tc, err}
		}()
		select {
		case r := <-ch:
			if r.err != nil {
				t.Fatalf("recv: %v", r.err)
			}
			return r.m, r.tc
		case <-time.After(5 * time.Second):
			t.Fatal("no message within 5s")
			return nil, wire.TraceContext{}
		}
	}
	if m, _ := recv(); m.Kind() != wire.KindHelloOK {
		t.Fatalf("hello reply = %#v", m)
	}

	ref := wire.FileRef{Domain: "d", FileID: "ws0:/u/u0/data.dat"}
	gen := workload.NewGenerator(1987)
	content := gen.File(4 * 1024)

	for cyc := 0; cyc < cycles; cyc++ {
		if cyc > 0 {
			content = gen.Modify(content, 5, workload.EditReplace)
		}
		version := uint64(cyc + 1)
		root := cobs.StartTrace("cycle")
		if err := wire.SendTraced(conn, &wire.Notify{File: ref, Version: version, Size: int64(len(content)), Sum: diff.Checksum(content)}, root.Context()); err != nil {
			t.Fatal(err)
		}
		m, tc := recv()
		if m.Kind() != wire.KindPull {
			t.Fatalf("cycle %d: expected pull, got %#v", cyc, m)
		}
		asp := cobs.StartSpan(tc, "client.answer-pull").SetFile(ref.String()).Annotate("full")
		if err := wire.SendTraced(conn, &wire.FileFull{File: ref, Version: version, Content: content, Sum: diff.Checksum(content)}, asp.Context()); err != nil {
			t.Fatal(err)
		}
		asp.Finish()
		if m, _ := recv(); m.Kind() != wire.KindFileAck {
			t.Fatalf("cycle %d: expected file ack, got %#v", cyc, m)
		}
		if err := wire.SendTraced(conn, &wire.Submit{
			Script: []byte("checksum d\n"),
			Inputs: []wire.JobInput{{File: ref, Version: version, As: "d"}},
		}, root.Context()); err != nil {
			t.Fatal(err)
		}
		m, _ = recv()
		okMsg, ok := m.(*wire.SubmitOK)
		if !ok {
			t.Fatalf("cycle %d: expected submit ok, got %#v", cyc, m)
		}
		root.SetJob(okMsg.Job)
		m, otc := recv()
		out, ok := m.(*wire.Output)
		if !ok || out.State != wire.JobDone {
			t.Fatalf("cycle %d: expected done output, got %#v", cyc, m)
		}
		cobs.StartSpan(otc, "client.deliver").SetJob(out.Job).Finish()
		root.Annotate("delivered").Finish()
		cobs.EndTrace(root.Context())
	}

	// Quiesce before snapshotting: the server finishes its output span and
	// ends the trace *after* the delivery is on the wire, so the last
	// output can arrive while those calls are still in flight. Closing the
	// connection and then the server drains every session and job goroutine.
	_ = conn.Close()
	srv.Close()

	h := admin.NewHandler(admin.Options{Server: srv})
	get := func(url string) string {
		rr := httptest.NewRecorder()
		h.ServeHTTP(rr, httptest.NewRequest("GET", url, nil))
		if rr.Code != 200 {
			t.Fatalf("GET %s = %d:\n%s", url, rr.Code, rr.Body.String())
		}
		return rr.Body.String()
	}
	list = get("/tracez?n=0")
	slowest := tracer.Slowest(1)
	if len(slowest) == 0 {
		t.Fatal("no completed traces")
	}
	detail = get(fmt.Sprintf("/tracez?id=%d", slowest[0].ID))
	return list, detail
}

// TestTracezDeterministicUnderNetsimChaos is the acceptance check for
// simulated-time tracing: two runs of the same seeded chaos workload must
// render byte-identical /tracez bodies, list and timeline both. Span
// timestamps come from virtual clocks, ids from counters, and span ordering
// is canonicalized at the read path, so nothing wall-clock-dependent can
// leak into the output.
func TestTracezDeterministicUnderNetsimChaos(t *testing.T) {
	const cycles = 7
	list1, detail1 := runTracedChaosSession(t, cycles)
	list2, detail2 := runTracedChaosSession(t, cycles)

	// Sanity before byte-comparing: the runs actually traced the cycles.
	if !strings.Contains(list1, fmt.Sprintf("cycle traces: %d completed, 0 active", cycles)) {
		t.Fatalf("/tracez header unexpected:\n%s", list1)
	}
	if !strings.Contains(detail1, "server.job-run") || !strings.Contains(detail1, "client.deliver") {
		t.Fatalf("slowest timeline missing expected spans:\n%s", detail1)
	}

	if list1 != list2 {
		t.Fatalf("/tracez list differs between same-seed runs:\n--- run 1 ---\n%s\n--- run 2 ---\n%s", list1, list2)
	}
	if detail1 != detail2 {
		t.Fatalf("/tracez timeline differs between same-seed runs:\n--- run 1 ---\n%s\n--- run 2 ---\n%s", detail1, detail2)
	}
}

// runTracedPeerChaosSession extends the lockstep chaos driver across the
// peer hop: two peered members, with every job input owned by the member
// the job does NOT run on, so each cycle forces an instance-to-instance
// fetch whose peer frames carry the trace context. The client drives both
// members at the wire level in lockstep (the concurrency argument above
// applies unchanged); the peer link's own traffic is protocol-forced —
// notify, then the owner's answer, then any chunk fill — because the
// client is blocked waiting for the job output while it happens. Faults
// are seeded latency spikes on both the client link and the peer link.
func runTracedPeerChaosSession(t *testing.T, cycles int) (list, detail string) {
	t.Helper()
	nw := netsim.New()
	hostA := nw.Host("superA") // the executing member
	hostB := nw.Host("superB") // the data file's ring owner
	ws := nw.Host("ws0")
	linkA := nw.Connect(ws, hostA, netsim.LAN)
	nw.Connect(ws, hostB, netsim.LAN)
	peerLink := nw.Connect(hostA, hostB, netsim.LAN)
	linkA.SetFaults(netsim.FaultSpec{Seed: 7, SpikeRate: 0.25, SpikeExtra: 4 * time.Millisecond})
	peerLink.SetFaults(netsim.FaultSpec{Seed: 11, SpikeRate: 0.25, SpikeExtra: 2 * time.Millisecond})

	tracer := trace.New(trace.Config{})
	members := []string{"superA", "superB"}
	mkServer := func(name string, host *netsim.Host) *server.Server {
		scfg := server.Defaults(name)
		scfg.Clock = host
		scfg.Obs = obs.New(nil, host.Now)
		scfg.Obs.SetTracer(tracer)
		srv := server.New(scfg)
		srv.JoinCluster(server.ClusterSpec{
			Instance: name,
			Members:  members,
			Dial:     func(member string) (wire.Conn, error) { return host.Dial(member, 1) },
		})
		lst, err := host.Listen(1)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { _ = lst.Close() })
		go func() { _ = srv.Serve(server.AcceptorFunc(func() (wire.Conn, error) { return lst.Accept() })) }()
		return srv
	}
	srvA := mkServer("superA", hostA)
	srvB := mkServer("superB", hostB)
	defer srvA.Close()
	defer srvB.Close()

	// A file whose ring owner is superB — submitted to superA, every cycle
	// crosses the peer link. The client builds the same ring the servers do.
	ring := cluster.NewRing(cluster.DefaultVirtualNodes, members...)
	var ref wire.FileRef
	for i := 0; ; i++ {
		ref = wire.FileRef{Domain: "d", FileID: fmt.Sprintf("ws0:/u/u0/d%d.dat", i)}
		if ring.Owner(ref.String()) == "superB" {
			break
		}
		if i > 64 {
			t.Fatal("no superB-owned file in 64 tries")
		}
	}

	cobs := obs.New(nil, ws.Now)
	cobs.SetTracer(tracer)

	dial := func(name string) wire.Conn {
		conn, err := ws.Dial(name, 1)
		if err != nil {
			t.Fatal(err)
		}
		if err := wire.Send(conn, &wire.Hello{Protocol: wire.ProtocolVersion, User: "u0", Domain: "d", ClientHost: "ws0"}); err != nil {
			t.Fatal(err)
		}
		return conn
	}
	recv := func(conn wire.Conn) (wire.Message, wire.TraceContext) {
		t.Helper()
		type result struct {
			m   wire.Message
			tc  wire.TraceContext
			err error
		}
		ch := make(chan result, 1)
		go func() {
			m, tc, err := wire.RecvTraced(conn)
			ch <- result{m, tc, err}
		}()
		select {
		case r := <-ch:
			if r.err != nil {
				t.Fatalf("recv: %v", r.err)
			}
			return r.m, r.tc
		case <-time.After(5 * time.Second):
			t.Fatal("no message within 5s")
			return nil, wire.TraceContext{}
		}
	}
	connA, connB := dial("superA"), dial("superB")
	defer connA.Close()
	defer connB.Close()
	for _, c := range []wire.Conn{connA, connB} {
		if m, _ := recv(c); m.Kind() != wire.KindHelloOK {
			t.Fatalf("hello reply = %#v", m)
		}
	}

	gen := workload.NewGenerator(1987)
	content := gen.File(4 * 1024)
	for cyc := 0; cyc < cycles; cyc++ {
		if cyc > 0 {
			content = gen.Modify(content, 5, workload.EditReplace)
		}
		version := uint64(cyc + 1)
		root := cobs.StartTrace("cycle")
		// Edit leg: the owner learns the new version and pulls it.
		if err := wire.SendTraced(connB, &wire.Notify{File: ref, Version: version, Size: int64(len(content)), Sum: diff.Checksum(content)}, root.Context()); err != nil {
			t.Fatal(err)
		}
		m, tc := recv(connB)
		if m.Kind() != wire.KindPull {
			t.Fatalf("cycle %d: expected pull from owner, got %#v", cyc, m)
		}
		asp := cobs.StartSpan(tc, "client.answer-pull").SetFile(ref.String()).Annotate("full")
		if err := wire.SendTraced(connB, &wire.FileFull{File: ref, Version: version, Content: content, Sum: diff.Checksum(content)}, asp.Context()); err != nil {
			t.Fatal(err)
		}
		asp.Finish()
		if m, _ := recv(connB); m.Kind() != wire.KindFileAck {
			t.Fatalf("cycle %d: expected file ack, got %#v", cyc, m)
		}
		// Run leg: submit to the non-owner; it must peer-fetch the input.
		if err := wire.SendTraced(connA, &wire.Submit{
			Script: []byte("checksum d\n"),
			Inputs: []wire.JobInput{{File: ref, Version: version, As: "d"}},
		}, root.Context()); err != nil {
			t.Fatal(err)
		}
		m, _ = recv(connA)
		okMsg, ok := m.(*wire.SubmitOK)
		if !ok {
			t.Fatalf("cycle %d: expected submit ok, got %#v", cyc, m)
		}
		root.SetJob(okMsg.Job)
		m, otc := recv(connA)
		out, ok := m.(*wire.Output)
		if !ok || out.State != wire.JobDone {
			t.Fatalf("cycle %d: expected done output, got %#v", cyc, m)
		}
		cobs.StartSpan(otc, "client.deliver").SetJob(out.Job).Finish()
		root.Annotate("delivered").Finish()
		cobs.EndTrace(root.Context())
	}

	// Every cycle crossed the peer link: the owner forwarded, never a
	// client-path fallback.
	if srvB.Metrics().PeerForwards == 0 {
		t.Fatal("owner never forwarded to the executing member")
	}

	_ = connA.Close()
	_ = connB.Close()
	srvA.Close()
	srvB.Close()

	h := admin.NewHandler(admin.Options{Server: srvA})
	get := func(url string) string {
		rr := httptest.NewRecorder()
		h.ServeHTTP(rr, httptest.NewRequest("GET", url, nil))
		if rr.Code != 200 {
			t.Fatalf("GET %s = %d:\n%s", url, rr.Code, rr.Body.String())
		}
		return rr.Body.String()
	}
	list = get("/tracez?n=0")
	slowest := tracer.Slowest(1)
	if len(slowest) == 0 {
		t.Fatal("no completed traces")
	}
	detail = get(fmt.Sprintf("/tracez?id=%d", slowest[0].ID))
	return list, detail
}

// TestTracezPeerDeterministicUnderNetsimChaos extends the determinism
// guarantee to the peer hop: two runs of the same seeded chaos workload on
// separate two-member clusters must render byte-identical /tracez bodies,
// with the cross-instance peer spans included in the timeline.
func TestTracezPeerDeterministicUnderNetsimChaos(t *testing.T) {
	const cycles = 5
	list1, detail1 := runTracedPeerChaosSession(t, cycles)
	list2, detail2 := runTracedPeerChaosSession(t, cycles)

	if !strings.Contains(list1, fmt.Sprintf("cycle traces: %d completed, 0 active", cycles)) {
		t.Fatalf("/tracez header unexpected:\n%s", list1)
	}
	if !strings.Contains(detail1, "peer.fetch") || !strings.Contains(detail1, "peer.serve") {
		t.Fatalf("slowest timeline missing peer spans:\n%s", detail1)
	}
	if list1 != list2 {
		t.Fatalf("/tracez list differs between same-seed runs:\n--- run 1 ---\n%s\n--- run 2 ---\n%s", list1, list2)
	}
	if detail1 != detail2 {
		t.Fatalf("/tracez timeline differs between same-seed runs:\n--- run 1 ---\n%s\n--- run 2 ---\n%s", detail1, detail2)
	}
}
